package fabric

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"
)

// WorkerConfig tunes a merge worker.
type WorkerConfig struct {
	// ID names the worker in the cluster view. Default: hostname-pid.
	ID string
	// Parallelism bounds intra-merge worker pools (never affects merged
	// bytes). Default GOMAXPROCS.
	Parallelism int
	// PollWait is the long-poll duration per request. Default 10s.
	PollWait time.Duration
	// Logger receives worker lifecycle logs. Default slog.Default().
	Logger *slog.Logger
	// HTTPClient overrides the wire client (tests). Default: dedicated
	// client without a global timeout.
	HTTPClient *http.Client
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		c.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.PollWait <= 0 {
		c.PollWait = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Worker is one remote merge node: it joins a coordinator, long-polls
// for clique jobs, executes them against the coordinator's artifact
// store (over the blob passthrough) and reports completions. Dying at
// any point — mid-merge, mid-store, mid-complete — is safe: the
// coordinator's lease expires and the job re-runs elsewhere with
// byte-identical results.
type Worker struct {
	cfg    WorkerConfig
	client *Client
	exec   *Executor
	log    *slog.Logger
}

// NewWorker creates a worker for the coordinator at joinURL.
func NewWorker(joinURL string, cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	client := NewClient(joinURL, cfg.HTTPClient)
	return &Worker{
		cfg:    cfg,
		client: client,
		exec:   NewExecutor(client.BlobStore(), cfg.Parallelism),
		log:    cfg.Logger.With("worker", cfg.ID),
	}
}

// ID returns the worker's cluster identity.
func (w *Worker) ID() string { return w.cfg.ID }

// Run joins the coordinator and processes clique jobs until ctx is
// done. Transient wire errors back off and retry; a wire version
// mismatch is permanent and returned.
func (w *Worker) Run(ctx context.Context) error {
	ttl, err := w.joinWithRetry(ctx)
	if err != nil {
		return err
	}
	w.log.Info("joined fabric", "lease_ttl", ttl)
	backoff := time.Second
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		spec, err := w.client.Poll(w.cfg.ID, w.cfg.PollWait)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.log.Warn("poll failed; backing off", "error", err, "backoff", backoff)
			if !sleep(ctx, backoff) {
				return ctx.Err()
			}
			if backoff < 30*time.Second {
				backoff *= 2
			}
			// The coordinator may have restarted: re-join (best effort;
			// polls also refresh registration).
			w.client.Join(w.cfg.ID, "") //nolint:errcheck // next poll surfaces persistent failure
			continue
		}
		backoff = time.Second
		if spec == nil {
			continue // poll timeout; loop
		}
		w.runOne(ctx, spec)
	}
}

func (w *Worker) joinWithRetry(ctx context.Context) (time.Duration, error) {
	backoff := time.Second
	for {
		ttl, err := w.client.Join(w.cfg.ID, "")
		if err == nil {
			return ttl, nil
		}
		if errors.Is(err, context.Canceled) || ctx.Err() != nil {
			return 0, ctx.Err()
		}
		// A version conflict never heals; connection errors might.
		if isPermanent(err) {
			return 0, err
		}
		w.log.Warn("join failed; backing off", "error", err, "backoff", backoff)
		if !sleep(ctx, backoff) {
			return 0, ctx.Err()
		}
		if backoff < 30*time.Second {
			backoff *= 2
		}
	}
}

func isPermanent(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "version mismatch") || strings.Contains(msg, "invalid worker id")
}

func (w *Worker) runOne(ctx context.Context, spec *Spec) {
	start := time.Now()
	_, err := w.exec.Execute(ctx, spec)
	execErr := ""
	if err != nil {
		if ctx.Err() != nil {
			// Shutting down mid-merge: report nothing; the lease expiry
			// reschedules the job (the worker-death path, exercised on
			// purpose).
			w.log.Info("abandoning clique on shutdown", "key", spec.Key)
			return
		}
		execErr = err.Error()
		w.log.Warn("clique merge failed", "key", spec.Key, "error", err)
	} else {
		w.log.Info("clique merged", "key", spec.Key,
			"members", len(spec.Members), "elapsed_ms", time.Since(start).Milliseconds())
	}
	if err := w.client.Complete(w.cfg.ID, spec.Key, execErr); err != nil {
		w.log.Warn("completion report failed; lease will expire", "key", spec.Key, "error", err)
	}
}

func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
