package fabric

import (
	"context"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"modemerge/internal/core"
	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
)

const quickVerilog = `
module quick (clk, tclk, tmode, din, dout);
  input clk, tclk, tmode, din;
  output dout;
  wire gck, q1, n1;
  MUX2 ckmux (.I0(clk), .I1(tclk), .S(tmode), .Z(gck));
  DFF r1 (.CP(gck), .D(din), .Q(q1));
  INV u1 (.A(q1), .Z(n1));
  DFF r2 (.CP(gck), .D(n1), .Q(dout));
endmodule
`

const funcSDC = `
create_clock -name FCLK -period 2 [get_ports clk]
set_case_analysis 0 [get_ports tmode]
set_input_delay 0.4 -clock FCLK [get_ports din]
set_output_delay 0.4 -clock FCLK [get_ports dout]
`

const testSDC = `
create_clock -name TCLK -period 10 [get_ports tclk]
set_case_analysis 1 [get_ports tmode]
set_input_delay 1.0 -clock TCLK [get_ports din]
set_output_delay 1.0 -clock TCLK [get_ports dout]
set_multicycle_path 2 -setup -from [get_clocks TCLK]
`

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(discard{}, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// buildSpec prepares the quick design's two-mode clique job plus the
// locally-merged reference output to compare distributed results
// against.
func buildSpec(t *testing.T) (Spec, *graph.Graph, string) {
	t.Helper()
	design, err := netlist.ParseVerilog(quickVerilog, library.Default(), "")
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(design)
	if err != nil {
		t.Fatal(err)
	}
	group := make([]*sdc.Mode, 2)
	for i, m := range []Mode{{Name: "func", SDC: funcSDC}, {Name: "test", SDC: testSDC}} {
		mode, _, err := sdc.Parse(m.Name, m.SDC, design)
		if err != nil {
			t.Fatal(err)
		}
		group[i] = mode
	}
	opt := core.Options{}
	key := core.CliqueKey(g, opt, group)
	merged, _, err := core.MergeClique(context.Background(), g, group, opt)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Key:     key,
		Verilog: quickVerilog,
		Members: []Mode{{Name: "func", SDC: funcSDC}, {Name: "test", SDC: testSDC}},
	}
	return spec, g, sdc.Write(merged)
}

// TestExecutorMatchesLocalMerge: a spec round-tripped through the
// executor produces an artifact that decodes to byte-identical SDC.
func TestExecutorMatchesLocalMerge(t *testing.T) {
	spec, g, want := buildSpec(t)
	store := incr.NewMemStore()
	exec := NewExecutor(store, 2)
	art, err := exec.Execute(context.Background(), &spec)
	if err != nil {
		t.Fatal(err)
	}
	mode, report, err := core.DecodeCliqueArtifact(art, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := sdc.Write(mode); got != want {
		t.Fatalf("distributed merge diverged:\n got: %q\nwant: %q", got, want)
	}
	if report == nil {
		t.Fatal("artifact carries no report")
	}
	// The artifact is durable in the shared store under the clique key.
	if _, err := store.Stat(string(incr.GranClique), spec.Key); err != nil {
		t.Fatalf("artifact not in store: %v", err)
	}
	// Re-execution replays from the store (idempotent retry).
	art2, err := exec.Execute(context.Background(), &spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(art2) != string(art) {
		t.Fatal("re-execution produced different artifact bytes")
	}
}

// TestExecutorRejectsKeyMismatch: a corrupted spec key fails loudly
// instead of storing under the wrong address.
func TestExecutorRejectsKeyMismatch(t *testing.T) {
	spec, _, _ := buildSpec(t)
	spec.Key = incr.Hash("not", "the", "right", "key")
	exec := NewExecutor(incr.NewMemStore(), 1)
	if _, err := exec.Execute(context.Background(), &spec); err == nil ||
		!strings.Contains(err.Error(), "key mismatch") {
		t.Fatalf("Execute = %v, want key mismatch error", err)
	}
}

// TestCoordinatorLocalExec: a coordinator with only local executors
// completes jobs (a cluster of one still works).
func TestCoordinatorLocalExec(t *testing.T) {
	spec, g, want := buildSpec(t)
	c := NewCoordinator(incr.NewMemStore(), CoordinatorConfig{
		LocalExecutors: 1, Logger: quietLogger(),
	})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	art, err := c.Exec(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	mode, _, err := core.DecodeCliqueArtifact(art, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := sdc.Write(mode); got != want {
		t.Fatalf("local-executor merge diverged:\n got: %q\nwant: %q", got, want)
	}
	st := c.Status()
	if st.Completed != 1 || st.Steals != 0 {
		t.Fatalf("status = %+v, want completed=1 steals=0", st)
	}
}

// TestCoordinatorWorkerOverHTTP: a remote worker over the wire API
// executes the job; the coordinator has no local executors.
func TestCoordinatorWorkerOverHTTP(t *testing.T) {
	spec, g, want := buildSpec(t)
	c := NewCoordinator(incr.NewMemStore(), CoordinatorConfig{
		LocalExecutors: 0, Logger: quietLogger(),
	})
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	w := NewWorker(srv.URL, WorkerConfig{
		ID: "w1", Parallelism: 2, PollWait: 200 * time.Millisecond, Logger: quietLogger(),
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); w.Run(wctx) }() //nolint:errcheck // exits on cancel

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	art, err := c.Exec(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	mode, _, err := core.DecodeCliqueArtifact(art, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := sdc.Write(mode); got != want {
		t.Fatalf("remote merge diverged:\n got: %q\nwant: %q", got, want)
	}
	st := c.Status()
	if st.Steals != 1 || st.Completed != 1 {
		t.Fatalf("status = %+v, want steals=1 completed=1", st)
	}
	if len(st.Workers) != 1 || st.Workers[0].ID != "w1" || st.Workers[0].Completed != 1 {
		t.Fatalf("workers = %+v", st.Workers)
	}
	wcancel()
	wg.Wait()
}

// TestLargeSpecOverHTTP pins the wire size envelope: a spec whose
// netlist is several megabytes (real designs, not toy chains) must
// round-trip poll → execute → complete intact. Regression test for the
// client truncating poll responses at a smaller cap than the server's
// maxWireBytes, which silently burned every lease until the clique
// failed permanently.
func TestLargeSpecOverHTTP(t *testing.T) {
	spec, g, want := buildSpec(t)
	// Pad past any megabyte-scale cap; newlines are parser-neutral, so
	// the worker-side graph — and therefore the clique key — is unchanged.
	spec.Verilog = quickVerilog + strings.Repeat("\n", 4<<20)

	c := NewCoordinator(incr.NewMemStore(), CoordinatorConfig{
		LocalExecutors: 0, Logger: quietLogger(),
	})
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	w := NewWorker(srv.URL, WorkerConfig{
		ID: "w1", PollWait: 200 * time.Millisecond, Logger: quietLogger(),
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); w.Run(wctx) }() //nolint:errcheck // exits on cancel

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	art, err := c.Exec(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	mode, _, err := core.DecodeCliqueArtifact(art, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := sdc.Write(mode); got != want {
		t.Fatalf("large-spec merge diverged:\n got: %q\nwant: %q", got, want)
	}
	if st := c.Status(); st.Retries != 0 {
		t.Fatalf("large spec burned %d leases before completing: %+v", st.Retries, st)
	}
	wcancel()
	wg.Wait()
}

// TestWorkerDeathRetry: a worker claims a job and dies (never
// completes); the lease expires, the job requeues, and a healthy node
// finishes it with byte-identical output.
func TestWorkerDeathRetry(t *testing.T) {
	spec, g, want := buildSpec(t)
	c := NewCoordinator(incr.NewMemStore(), CoordinatorConfig{
		LocalExecutors: 0, LeaseTTL: 150 * time.Millisecond, MaxAttempts: 3,
		Logger: quietLogger(),
	})
	defer c.Close()

	if err := c.Join("doomed", ""); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		art, err := c.Exec(ctx, spec)
		if err != nil {
			t.Errorf("Exec: %v", err)
			return
		}
		mode, _, err := core.DecodeCliqueArtifact(art, g)
		if err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		if got := sdc.Write(mode); got != want {
			t.Errorf("post-death merge diverged:\n got: %q\nwant: %q", got, want)
		}
	}()

	// The doomed worker claims the job... and is never heard from again.
	var claimed *Spec
	for i := 0; i < 100 && claimed == nil; i++ {
		s, err := c.Claim(context.Background(), "doomed", 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		claimed = s
	}
	if claimed == nil || claimed.Key != spec.Key {
		t.Fatalf("doomed worker claimed %+v", claimed)
	}

	// After the lease expires the job is claimable again; a healthy
	// executor picks it up and completes.
	exec := NewExecutor(c.Store(), 2)
	if err := c.Join("healthy", ""); err != nil {
		t.Fatal(err)
	}
	var retried *Spec
	deadline := time.Now().Add(30 * time.Second)
	for retried == nil && time.Now().Before(deadline) {
		s, err := c.Claim(context.Background(), "healthy", 200*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		retried = s
	}
	if retried == nil {
		t.Fatal("lease never expired back into the queue")
	}
	if _, err := exec.Execute(context.Background(), retried); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("healthy", retried.Key, ""); err != nil {
		t.Fatal(err)
	}
	<-done
	st := c.Status()
	if st.Retries < 1 {
		t.Fatalf("status = %+v, want retries >= 1", st)
	}
}

// TestJobLostAfterMaxAttempts: a job claimed and abandoned repeatedly
// fails permanently with a descriptive error instead of looping forever.
func TestJobLostAfterMaxAttempts(t *testing.T) {
	spec, _, _ := buildSpec(t)
	c := NewCoordinator(incr.NewMemStore(), CoordinatorConfig{
		LocalExecutors: 0, LeaseTTL: 50 * time.Millisecond, MaxAttempts: 2,
		Logger: quietLogger(),
	})
	defer c.Close()
	if err := c.Join("blackhole", ""); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, err := c.Exec(ctx, spec)
		errCh <- err
	}()
	// Claim (and abandon) until the coordinator gives up on the job.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Claim(context.Background(), "blackhole", 50*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errCh:
			if err == nil || !strings.Contains(err.Error(), "lost after 2 attempts") {
				t.Fatalf("Exec = %v, want lost-after-attempts error", err)
			}
			return
		default:
		}
	}
	t.Fatal("job never failed permanently")
}

// TestConcurrentExecShareOneRun: identical keys submitted concurrently
// share one execution and all receive the same artifact.
func TestConcurrentExecShareOneRun(t *testing.T) {
	spec, _, _ := buildSpec(t)
	c := NewCoordinator(incr.NewMemStore(), CoordinatorConfig{
		LocalExecutors: 1, Logger: quietLogger(),
	})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const n = 4
	arts := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arts[i], errs[i] = c.Exec(ctx, spec)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("exec %d: %v", i, errs[i])
		}
		if string(arts[i]) != string(arts[0]) {
			t.Fatalf("exec %d received different bytes", i)
		}
	}
	if st := c.Status(); st.Completed > 1 {
		t.Fatalf("dedup failed: %d executions for one key", st.Completed)
	}
}
