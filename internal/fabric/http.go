package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"modemerge/internal/incr"
)

// Wire API, version 1. All routes live under /fabric/v1/ on the
// coordinator; workers are pure clients. The surface is deliberately
// tiny — join, poll, complete, plus a blob passthrough exporting the
// coordinator's artifact store — and versioned by path so a v2 can
// coexist during rolling upgrades. These are cluster-internal routes:
// they are documented in docs/api.md, not in the public OpenAPI
// document.
//
//	POST /fabric/v1/join      {worker_id, addr, version} → {lease_ttl_ms}
//	POST /fabric/v1/poll      {worker_id, wait_ms}       → 200 {spec} | 204
//	POST /fabric/v1/complete  {worker_id, key, error}    → 204
//	ANY  /fabric/v1/blobs/<granularity>/<key>            → incr blob protocol

const maxWireBytes = 64 << 20 // specs carry whole netlists

type joinRequest struct {
	WorkerID string `json:"worker_id"`
	Addr     string `json:"addr,omitempty"`
	Version  int    `json:"version"`
}

type joinResponse struct {
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

type pollRequest struct {
	WorkerID string `json:"worker_id"`
	WaitMS   int64  `json:"wait_ms,omitempty"`
}

type completeRequest struct {
	WorkerID string `json:"worker_id"`
	Key      string `json:"key"`
	Error    string `json:"error,omitempty"`
}

// Handler serves the fabric wire API over this coordinator. Mount it at
// the server root; it matches only /fabric/v1/ paths.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fabric/v1/join", func(w http.ResponseWriter, r *http.Request) {
		var req joinRequest
		if !decodeWire(w, r, &req) {
			return
		}
		if req.Version != WireVersion {
			httpError(w, http.StatusConflict,
				fmt.Sprintf("fabric wire version mismatch: coordinator %d, worker %d", WireVersion, req.Version))
			return
		}
		if err := c.Join(req.WorkerID, req.Addr); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, joinResponse{LeaseTTLMS: c.cfg.LeaseTTL.Milliseconds()})
	})
	mux.HandleFunc("POST /fabric/v1/poll", func(w http.ResponseWriter, r *http.Request) {
		var req pollRequest
		if !decodeWire(w, r, &req) {
			return
		}
		wait := time.Duration(req.WaitMS) * time.Millisecond
		if wait > 30*time.Second {
			wait = 30 * time.Second
		}
		spec, err := c.Claim(r.Context(), req.WorkerID, wait)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		if spec == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, spec)
	})
	mux.HandleFunc("POST /fabric/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if !decodeWire(w, r, &req) {
			return
		}
		if err := c.Complete(req.WorkerID, req.Key, req.Error); err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.Handle("/fabric/v1/blobs/", http.StripPrefix("/fabric/v1/blobs", incr.NewBlobHandler(c.store)))
	return mux
}

func decodeWire(w http.ResponseWriter, r *http.Request, into any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxWireBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "request too large")
		return false
	}
	if err := json.Unmarshal(body, into); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// Client is the worker side of the wire API.
type Client struct {
	base   string
	client *http.Client
}

// NewClient creates a wire client for the coordinator at baseURL (e.g.
// "http://coordinator:8080"). A nil httpClient uses a dedicated client
// with no global timeout (polls long-poll; per-call contexts bound
// them).
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), client: httpClient}
}

// BlobStore returns the coordinator's artifact store as seen over the
// blob passthrough.
func (cl *Client) BlobStore() incr.BlobStore {
	return incr.NewHTTPStore(cl.base+"/fabric/v1/blobs", nil)
}

func (cl *Client) post(path string, req, into any) (int, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := cl.client.Post(cl.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	// Same cap as the server's decodeWire: poll responses carry whole
	// netlists, so a tighter client-side limit would truncate big specs.
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxWireBytes))
	switch resp.StatusCode {
	case http.StatusOK:
		if into != nil {
			if err := json.Unmarshal(body, into); err != nil {
				return resp.StatusCode, fmt.Errorf("fabric: malformed response from %s: %w", path, err)
			}
		}
		return resp.StatusCode, nil
	case http.StatusNoContent:
		return resp.StatusCode, nil
	default:
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return resp.StatusCode, fmt.Errorf("fabric: %s: %s", path, e.Error)
		}
		return resp.StatusCode, fmt.Errorf("fabric: %s: unexpected status %s", path, resp.Status)
	}
}

// Join registers with the coordinator and returns its lease TTL.
func (cl *Client) Join(workerID, addr string) (time.Duration, error) {
	var resp joinResponse
	_, err := cl.post("/fabric/v1/join", joinRequest{WorkerID: workerID, Addr: addr, Version: WireVersion}, &resp)
	if err != nil {
		return 0, err
	}
	return time.Duration(resp.LeaseTTLMS) * time.Millisecond, nil
}

// Poll long-polls for the next clique job; nil spec means no work.
func (cl *Client) Poll(workerID string, wait time.Duration) (*Spec, error) {
	var spec Spec
	status, err := cl.post("/fabric/v1/poll", pollRequest{WorkerID: workerID, WaitMS: wait.Milliseconds()}, &spec)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return &spec, nil
}

// Complete reports one job's outcome (empty execErr = success; the
// artifact must already be in the shared store).
func (cl *Client) Complete(workerID, key, execErr string) error {
	_, err := cl.post("/fabric/v1/complete", completeRequest{WorkerID: workerID, Key: key, Error: execErr}, nil)
	return err
}
