// Package fabric is the distributed merge fabric: a coordinator that
// plans merge jobs and publishes per-clique work to a work-stealing
// queue, plus merge workers that pull clique jobs over a small
// versioned HTTP wire API and execute them against a shared
// content-addressed artifact store (incr.BlobStore).
//
// Safety argument, in one paragraph: a clique job is a pure function of
// its spec — design source, result-affecting options and member mode
// texts — and its artifact is stored under core.CliqueKey, a content
// address every node computes identically. Clique merges are
// deterministic at any parallelism (the engine's byte-identity
// guarantee), so executing a job twice writes the same bytes to the
// same key. A worker dying mid-merge therefore costs only time: the
// coordinator's lease expires, the job returns to the queue, and any
// other node (or the coordinator itself) re-runs it with no way to
// diverge. Output at any worker count, including across worker deaths,
// is byte-identical to the single-process path.
package fabric

import (
	"context"
	"fmt"
	"sync"

	"modemerge/internal/core"
	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

// WireVersion is the fabric wire API version, embedded in every route
// (/fabric/v1/...). Coordinator and worker must agree; the join
// handshake rejects mismatches.
const WireVersion = 1

// Mode is one member mode of a clique job.
type Mode struct {
	Name string `json:"name"`
	SDC  string `json:"sdc"`
}

// Corner mirrors library.Corner over the wire.
type Corner struct {
	Name        string  `json:"name"`
	DelayScale  float64 `json:"delay_scale,omitempty"`
	EarlyScale  float64 `json:"early_scale,omitempty"`
	LateScale   float64 `json:"late_scale,omitempty"`
	MarginScale float64 `json:"margin_scale,omitempty"`
	SDC         string  `json:"sdc,omitempty"`
}

// Spec is one self-contained clique merge job: everything a worker
// needs to reconstruct the design, re-parse the member modes and run
// core.MergeClique. Key is the clique's content address
// (core.CliqueKey) — the job's identity, its artifact's name in the
// shared store, and what makes retries idempotent.
type Spec struct {
	Key string `json:"key"`

	Verilog string `json:"verilog"`
	Top     string `json:"top,omitempty"`
	Library string `json:"library,omitempty"`

	MergedName          string   `json:"merged_name,omitempty"`
	Tolerance           float64  `json:"tolerance,omitempty"`
	MaxRefineIterations int      `json:"max_refine_iterations,omitempty"`
	STAWorkers          int      `json:"sta_workers,omitempty"`
	Corners             []Corner `json:"corners,omitempty"`

	Members []Mode `json:"members"`
}

// CoreCorners converts the wire corners back to library corners.
func (s *Spec) CoreCorners() []library.Corner {
	if len(s.Corners) == 0 {
		return nil
	}
	out := make([]library.Corner, len(s.Corners))
	for i, c := range s.Corners {
		out[i] = library.Corner{
			Name: c.Name, DelayScale: c.DelayScale, EarlyScale: c.EarlyScale,
			LateScale: c.LateScale, MarginScale: c.MarginScale, SDC: c.SDC,
		}
	}
	return out
}

// WireCorners converts library corners to their wire form.
func WireCorners(corners []library.Corner) []Corner {
	if len(corners) == 0 {
		return nil
	}
	out := make([]Corner, len(corners))
	for i, c := range corners {
		out[i] = Corner{
			Name: c.Name, DelayScale: c.DelayScale, EarlyScale: c.EarlyScale,
			LateScale: c.LateScale, MarginScale: c.MarginScale, SDC: c.SDC,
		}
	}
	return out
}

// Executor runs clique specs on one node: it reconstructs designs (with
// a small cache, since every clique of one job shares the design),
// merges via core.MergeClique, and guarantees the artifact is in the
// store under spec.Key before reporting success.
type Executor struct {
	store       incr.BlobStore
	cache       *incr.Cache
	parallelism int

	mu      sync.Mutex
	designs map[string]*prepared // keyed by design source hash
}

type prepared struct {
	design *netlist.Design
	graph  *graph.Graph
}

// NewExecutor creates an executor over the shared artifact store. The
// internal incremental cache (write-through to store) makes repeated
// cliques of one design cheap and publishes pair verdicts and clique
// artifacts for other nodes. parallelism bounds intra-merge worker
// pools; it never affects merged bytes.
func NewExecutor(store incr.BlobStore, parallelism int) *Executor {
	return &Executor{
		store:       store,
		cache:       incr.New(4096).WithStore(store),
		parallelism: parallelism,
		designs:     map[string]*prepared{},
	}
}

func (e *Executor) design(spec *Spec) (*prepared, error) {
	key := incr.Hash("lib", spec.Library, "top", spec.Top, "v", spec.Verilog)
	e.mu.Lock()
	p, ok := e.designs[key]
	e.mu.Unlock()
	if ok {
		return p, nil
	}
	lib := library.Default()
	if spec.Library != "" {
		parsed, err := library.Parse(spec.Library)
		if err != nil {
			return nil, fmt.Errorf("library: %w", err)
		}
		lib = parsed
	}
	design, err := netlist.ParseVerilog(spec.Verilog, lib, spec.Top)
	if err != nil {
		return nil, fmt.Errorf("verilog: %w", err)
	}
	if _, err := design.Validate(); err != nil {
		return nil, fmt.Errorf("design: %w", err)
	}
	g, err := graph.Build(design)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	p = &prepared{design: design, graph: g}
	e.mu.Lock()
	if len(e.designs) >= 8 { // tiny bound; specs of one job share a design
		clear(e.designs)
	}
	e.designs[key] = p
	e.mu.Unlock()
	return p, nil
}

// Options reconstructs the core options a spec encodes. The fields set
// here are exactly the result-affecting ones the coordinator hashed
// into spec.Key (plus parallelism knobs, which are excluded from the
// key because output is byte-identical across them).
func (e *Executor) Options(spec *Spec) core.Options {
	return core.Options{
		Tolerance:           spec.Tolerance,
		MaxRefineIterations: spec.MaxRefineIterations,
		MergedName:          spec.MergedName,
		Parallelism:         e.parallelism,
		Corners:             spec.CoreCorners(),
		STA:                 sta.Options{Workers: spec.STAWorkers},
		Cache:               e.cache,
	}
}

// Execute runs one clique job and returns the artifact bytes now
// guaranteed to be stored under (clique, spec.Key).
func (e *Executor) Execute(ctx context.Context, spec *Spec) ([]byte, error) {
	if len(spec.Members) < 2 {
		return nil, fmt.Errorf("fabric: clique job needs at least 2 members, got %d", len(spec.Members))
	}
	p, err := e.design(spec)
	if err != nil {
		return nil, err
	}
	group := make([]*sdc.Mode, len(spec.Members))
	for i, m := range spec.Members {
		mode, _, err := sdc.Parse(m.Name, m.SDC, p.design)
		if err != nil {
			return nil, fmt.Errorf("mode %s: %w", m.Name, err)
		}
		group[i] = mode
	}
	opt := e.Options(spec)
	if key := core.CliqueKey(p.graph, opt, group); key != spec.Key {
		// The job's identity must round-trip: a mismatch means the spec
		// was corrupted or coordinator and worker disagree on options.
		return nil, fmt.Errorf("fabric: clique key mismatch: spec %s, computed %s", spec.Key, key)
	}
	merged, report, err := core.MergeClique(ctx, p.graph, group, opt)
	if err != nil {
		return nil, err
	}
	// MergeClique already stored the artifact through the write-through
	// cache under the same content address; read it back so the bytes we
	// return are exactly the stored ones. If the store lost it (or the
	// cache skipped an unserializable report), re-encode and put
	// explicitly — success must imply the artifact is durable.
	if b, err := e.store.Get(string(incr.GranClique), spec.Key); err == nil {
		return b, nil
	}
	b, err := core.EncodeCliqueArtifact(merged, report, nil)
	if err != nil {
		return nil, fmt.Errorf("fabric: encoding artifact: %w", err)
	}
	if err := e.store.Put(string(incr.GranClique), spec.Key, b); err != nil {
		return nil, fmt.Errorf("fabric: storing artifact: %w", err)
	}
	return b, nil
}
