package fabric

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"modemerge/internal/incr"
)

// CoordinatorConfig tunes a Coordinator.
type CoordinatorConfig struct {
	// LeaseTTL is how long a claimed clique job may go without completion
	// before it is presumed lost (worker death) and requeued. Default 30s.
	LeaseTTL time.Duration
	// MaxAttempts bounds executions of one job across lease expiries
	// before it fails permanently. Default 3.
	MaxAttempts int
	// LocalExecutors is how many coordinator-side goroutines pull from
	// the same queue as remote workers, so a cluster of one still makes
	// progress. They claim under the reserved worker id "local". Default
	// 1; 0 disables local execution (pure dispatcher).
	LocalExecutors int
	// Logger receives fabric lifecycle logs. Default slog.Default().
	Logger *slog.Logger
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// LocalWorkerID is the worker id the coordinator's own executors claim
// under.
const LocalWorkerID = "local"

// ErrClosed rejects operations on a closed coordinator.
var ErrClosed = errors.New("fabric: coordinator closed")

// task is one queued clique job and its subscribers.
type task struct {
	spec     Spec
	attempts int
	lessee   string    // worker holding the lease ("" while pending)
	expiry   time.Time // lease deadline
	subs     []chan taskResult
}

type taskResult struct {
	artifact []byte
	err      error
}

// Coordinator owns the clique job queue: Exec enqueues and waits,
// workers claim jobs (remote via the wire API, local via executor
// goroutines), leases expire back into the queue on worker death, and
// every artifact round-trips through the shared blob store.
type Coordinator struct {
	cfg   CoordinatorConfig
	store incr.BlobStore
	exec  *Executor
	log   *slog.Logger

	mu      sync.Mutex
	closed  bool
	pending []*task          // FIFO; work-stealing pops the head
	byKey   map[string]*task // pending + leased tasks by clique key
	leased  map[string]*task // subset of byKey currently claimed
	workers map[string]*workerInfo
	waiters []chan *task // long-poll claimers, FIFO

	// counters (guarded by mu)
	steals    int64 // jobs claimed by remote workers
	retries   int64 // lease expiries requeued
	completed int64
	failed    int64

	stop chan struct{}
	wg   sync.WaitGroup
}

type workerInfo struct {
	id        string
	addr      string
	joined    time.Time
	lastSeen  time.Time
	active    int
	completed int64
}

// NewCoordinator starts a coordinator over the shared artifact store,
// including its lease reaper and any configured local executors.
func NewCoordinator(store incr.BlobStore, cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		store:   store,
		exec:    NewExecutor(store, 0),
		log:     cfg.Logger,
		byKey:   map[string]*task{},
		leased:  map[string]*task{},
		workers: map[string]*workerInfo{},
		stop:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.reaper()
	for i := 0; i < cfg.LocalExecutors; i++ {
		c.wg.Add(1)
		go c.localExecutor()
	}
	return c
}

// Store exposes the shared artifact store (for mounting the blob
// passthrough).
func (c *Coordinator) Store() incr.BlobStore { return c.store }

// Close stops the reaper and local executors and fails every queued and
// in-flight job with ErrClosed.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stop)
	var all []*task
	for _, t := range c.byKey {
		all = append(all, t)
	}
	c.pending = nil
	c.byKey = map[string]*task{}
	c.leased = map[string]*task{}
	for _, w := range c.waiters {
		close(w)
	}
	c.waiters = nil
	c.mu.Unlock()
	for _, t := range all {
		deliver(t, taskResult{err: ErrClosed})
	}
	c.wg.Wait()
}

func deliver(t *task, r taskResult) {
	for _, sub := range t.subs {
		sub <- r // buffered 1 per subscriber; never blocks
	}
	t.subs = nil
}

// Exec submits one clique job and blocks until its artifact is
// available (from any worker, or a local executor) or ctx is done.
// Identical keys submitted concurrently share one execution.
func (c *Coordinator) Exec(ctx context.Context, spec Spec) ([]byte, error) {
	if spec.Key == "" {
		return nil, fmt.Errorf("fabric: spec has no key")
	}
	// Artifact already in the store (an earlier job, another node): done.
	if b, err := c.store.Get(string(incr.GranClique), spec.Key); err == nil {
		return b, nil
	}
	sub := make(chan taskResult, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if t, ok := c.byKey[spec.Key]; ok {
		t.subs = append(t.subs, sub) // piggyback on the in-flight job
		c.mu.Unlock()
	} else {
		t := &task{spec: spec, subs: []chan taskResult{sub}}
		c.byKey[spec.Key] = t
		c.enqueueLocked(t)
		c.mu.Unlock()
	}
	select {
	case r := <-sub:
		return r.artifact, r.err
	case <-ctx.Done():
		// The job stays queued for other subscribers; our result slot is
		// buffered so completion never blocks on us.
		return nil, ctx.Err()
	}
}

// enqueueLocked puts t at the queue tail, handing it directly to a
// long-poll waiter when one is parked. Callers hold c.mu.
func (c *Coordinator) enqueueLocked(t *task) {
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		select {
		case w <- t:
			return
		default: // waiter gave up (poll timeout); try the next
		}
	}
	c.pending = append(c.pending, t)
}

// Join registers (or refreshes) a worker.
func (c *Coordinator) Join(workerID, addr string) error {
	if workerID == "" || workerID == LocalWorkerID {
		return fmt.Errorf("fabric: invalid worker id %q", workerID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	w, ok := c.workers[workerID]
	if !ok {
		w = &workerInfo{id: workerID, joined: time.Now()}
		c.workers[workerID] = w
		c.log.Info("fabric worker joined", "worker", workerID, "addr", addr)
	}
	w.addr = addr
	w.lastSeen = time.Now()
	return nil
}

// Claim hands the next pending clique job to workerID, long-polling up
// to wait. It returns (nil, nil) when no work arrived in time, and
// ErrClosed after Close.
func (c *Coordinator) Claim(ctx context.Context, workerID string, wait time.Duration) (*Spec, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.touchLocked(workerID)
	if len(c.pending) > 0 {
		t := c.pending[0]
		c.pending = c.pending[1:]
		spec := c.leaseLocked(t, workerID)
		c.mu.Unlock()
		return spec, nil
	}
	if wait <= 0 {
		c.mu.Unlock()
		return nil, nil
	}
	w := make(chan *task, 1)
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case t, ok := <-w:
		if !ok {
			return nil, ErrClosed
		}
		c.mu.Lock()
		c.touchLocked(workerID)
		spec := c.leaseLocked(t, workerID)
		c.mu.Unlock()
		return spec, nil
	case <-timer.C:
	case <-ctx.Done():
	}
	// Timed out or canceled: withdraw the waiter. A task may have been
	// handed to w concurrently — requeue it rather than lose it.
	c.mu.Lock()
	for i, waiter := range c.waiters {
		if waiter == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			break
		}
	}
	var stranded *Spec
	select {
	case t, ok := <-w:
		if ok && t != nil {
			spec := c.leaseLocked(t, workerID)
			stranded = spec
		}
	default:
	}
	c.mu.Unlock()
	if stranded != nil {
		return stranded, nil
	}
	return nil, ctx.Err()
}

// leaseLocked marks t claimed by workerID. Callers hold c.mu.
func (c *Coordinator) leaseLocked(t *task, workerID string) *Spec {
	t.lessee = workerID
	t.expiry = time.Now().Add(c.cfg.LeaseTTL)
	t.attempts++
	c.leased[t.spec.Key] = t
	if w, ok := c.workers[workerID]; ok {
		w.active++
	}
	if workerID != LocalWorkerID {
		c.steals++
	}
	spec := t.spec
	return &spec
}

func (c *Coordinator) touchLocked(workerID string) {
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = time.Now()
	}
}

// Complete reports one claimed job's outcome. On success the artifact
// must already be in the shared store under the clique key; the
// coordinator reads it back and fans it out to subscribers. A stale
// completion (lease already expired and job re-claimed or finished) is
// ignored — first outcome wins, which is safe because all outcomes for
// one key carry identical bytes.
func (c *Coordinator) Complete(workerID, key string, execErr string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.touchLocked(workerID)
	t, ok := c.leased[key]
	if !ok || t.lessee != workerID {
		c.mu.Unlock()
		return nil // stale or duplicate completion
	}
	delete(c.leased, key)
	delete(c.byKey, key)
	if w, ok := c.workers[workerID]; ok && w.active > 0 {
		w.active--
		if execErr == "" {
			w.completed++
		}
	}
	if execErr != "" {
		// A worker-reported merge error is deterministic (bad input, not
		// worker death): retrying elsewhere would fail identically, so
		// fail the job now.
		c.failed++
		c.mu.Unlock()
		deliver(t, taskResult{err: fmt.Errorf("fabric: clique %.12s failed on %s: %s", key, workerID, execErr)})
		return nil
	}
	c.mu.Unlock()

	b, err := c.store.Get(string(incr.GranClique), key)
	if err != nil {
		// Completion without a durable artifact: treat as a lost
		// execution and requeue (bounded by MaxAttempts).
		c.log.Warn("fabric completion without artifact", "worker", workerID, "key", key, "error", err)
		c.requeue(t, fmt.Sprintf("artifact missing after completion by %s", workerID))
		return nil
	}
	c.mu.Lock()
	c.completed++
	c.mu.Unlock()
	deliver(t, taskResult{artifact: b})
	return nil
}

// requeue returns a lost task to the queue, failing it permanently when
// attempts are exhausted.
func (c *Coordinator) requeue(t *task, why string) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if t.attempts >= c.cfg.MaxAttempts {
		attempts := t.attempts
		delete(c.byKey, t.spec.Key)
		c.failed++
		c.mu.Unlock()
		deliver(t, taskResult{err: fmt.Errorf(
			"fabric: clique %.12s lost after %d attempts (%s)", t.spec.Key, attempts, why)})
		return
	}
	t.lessee = ""
	attempts := t.attempts
	key := t.spec.Key
	c.retries++
	c.byKey[key] = t
	c.enqueueLocked(t)
	c.mu.Unlock()
	c.log.Warn("fabric clique requeued", "key", key, "attempts", attempts, "why", why)
}

// reaper expires leases whose worker went silent.
func (c *Coordinator) reaper() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		var expired []*task
		var lessees []string
		c.mu.Lock()
		for key, t := range c.leased {
			if now.After(t.expiry) {
				delete(c.leased, key)
				if w, ok := c.workers[t.lessee]; ok && w.active > 0 {
					w.active--
				}
				expired = append(expired, t)
				lessees = append(lessees, t.lessee)
			}
		}
		c.mu.Unlock()
		for i, t := range expired {
			c.requeue(t, fmt.Sprintf("lease expired (worker %s presumed dead)", lessees[i]))
		}
	}
}

// localExecutor is the coordinator's own merge worker: it claims from
// the same queue as remote workers, so work is stolen by whichever node
// is free first.
func (c *Coordinator) localExecutor() {
	defer c.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-c.stop
		cancel()
	}()
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		spec, err := c.Claim(ctx, LocalWorkerID, time.Second)
		if err != nil || spec == nil {
			if errors.Is(err, ErrClosed) {
				return
			}
			continue
		}
		_, execErr := c.exec.Execute(ctx, spec)
		msg := ""
		if execErr != nil {
			msg = execErr.Error()
		}
		c.Complete(LocalWorkerID, spec.Key, msg) //nolint:errcheck // closed coordinator drops outcomes by design
	}
}

// WorkerStatus is one worker's row in the cluster view.
type WorkerStatus struct {
	ID         string `json:"id"`
	Addr       string `json:"addr,omitempty"`
	LastSeenMS int64  `json:"last_seen_ms"`
	Active     int    `json:"active"`
	Completed  int64  `json:"completed"`
}

// InFlight is one claimed clique job in the cluster view.
type InFlight struct {
	Key      string `json:"key"`
	Worker   string `json:"worker"`
	Attempts int    `json:"attempts"`
	Members  int    `json:"members"`
}

// ClusterStatus is the coordinator's queue + registry snapshot, served
// at GET /v2/cluster.
type ClusterStatus struct {
	Enabled        bool           `json:"enabled"`
	LocalExecutors int            `json:"local_executors"`
	Workers        []WorkerStatus `json:"workers"`
	Pending        int            `json:"pending"`
	InFlight       []InFlight     `json:"in_flight"`
	Steals         int64          `json:"steals"`
	Retries        int64          `json:"retries"`
	Completed      int64          `json:"completed"`
	Failed         int64          `json:"failed"`
}

// Status snapshots the cluster for serving.
func (c *Coordinator) Status() ClusterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ClusterStatus{
		Enabled:        true,
		LocalExecutors: c.cfg.LocalExecutors,
		Workers:        []WorkerStatus{},
		Pending:        len(c.pending),
		InFlight:       []InFlight{},
		Steals:         c.steals,
		Retries:        c.retries,
		Completed:      c.completed,
		Failed:         c.failed,
	}
	now := time.Now()
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			ID: w.id, Addr: w.addr,
			LastSeenMS: now.Sub(w.lastSeen).Milliseconds(),
			Active:     w.active, Completed: w.completed,
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	for key, t := range c.leased {
		st.InFlight = append(st.InFlight, InFlight{
			Key: key, Worker: t.lessee, Attempts: t.attempts, Members: len(t.spec.Members),
		})
	}
	sort.Slice(st.InFlight, func(i, j int) bool { return st.InFlight[i].Key < st.InFlight[j].Key })
	return st
}
