package tcl

import (
	"strings"
	"testing"
)

// FuzzEvalTcl feeds arbitrary scripts to the interpreter. The property is
// simply "no panic, no hang": every input must either evaluate or return
// an error within the step/depth budgets.
func FuzzEvalTcl(f *testing.F) {
	seeds := []string{
		"set a 1\nset b [expr $a + 2]\nputs $b",
		"foreach p {a b c} {\n  set_thing 0.1 $p\n}",
		"foreach {k v} {a 1 b 2} { set $k $v }",
		"if {1 > 0} { set x yes } else { set x no }",
		"while {$i < 4} { incr i }",
		"for {set i 0} {$i < 3} {incr i} { puts $i }",
		"proc twice {x} { return [expr $x * 2] }\ntwice 21",
		"set l [list a {b c} \"d e\"]\nconcat $l f",
		"expr (1 + 2) * -3 <= 4 && \"ab\" eq \"ab\"",
		"# comment \\\ncontinued\nset x 1 ;# trailing",
		"set v ${weird}",
		"puts \"nested [list [expr 1+1]] done\"",
		"set a [",
		"{unbalanced",
		"\"unterminated",
		"expr ((((((1))))))",
		"create_clock -name CLK -period 2 [get_ports clk]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		i := New()
		i.MaxSteps = 10000
		// Stub the common SDC-shaped commands so scripts exercising them
		// reach deeper interpreter paths instead of "unknown command".
		nop := func(_ *Interp, args []string) (string, error) { return strings.Join(args, " "), nil }
		for _, name := range []string{"get_ports", "get_pins", "get_clocks", "set_thing", "create_clock"} {
			i.Register(name, nop)
		}
		_, _ = i.Eval(src) // must not panic or hang
	})
}

func TestEvalStepBudget(t *testing.T) {
	i := New()
	i.MaxSteps = 100
	_, err := i.Eval("while {1} { set x 1 }")
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("infinite loop not stopped by budget, err=%v", err)
	}
}

func TestEvalDepthLimit(t *testing.T) {
	i := New()
	_, err := i.Eval("proc p {} { p }\np")
	if err == nil || !strings.Contains(err.Error(), "too deeply") {
		t.Fatalf("unbounded recursion not stopped, err=%v", err)
	}
	i2 := New()
	deep := strings.Repeat("[concat ", 500) + "x" + strings.Repeat("]", 500)
	if _, err := i2.Eval("set a " + deep); err == nil {
		t.Fatal("deep bracket nesting not stopped")
	}
}

func TestExprDepthLimit(t *testing.T) {
	i := New()
	_, err := i.Eval("expr " + strings.Repeat("(", 100000) + "1" + strings.Repeat(")", 100000))
	if err == nil || !strings.Contains(err.Error(), "nested too deeply") {
		t.Fatalf("deep expr not stopped, err=%v", err)
	}
}
