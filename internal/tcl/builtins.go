package tcl

import (
	"fmt"
	"strconv"
	"strings"
)

func cmdSet(i *Interp, args []string) (string, error) {
	switch len(args) {
	case 1:
		v, ok := i.vars[args[0]]
		if !ok {
			return "", fmt.Errorf("can't read %q: no such variable", args[0])
		}
		return v, nil
	case 2:
		i.vars[args[0]] = args[1]
		return args[1], nil
	default:
		return "", fmt.Errorf("set: want 1 or 2 args, got %d", len(args))
	}
}

func cmdUnset(i *Interp, args []string) (string, error) {
	for _, a := range args {
		delete(i.vars, a)
	}
	return "", nil
}

func cmdList(_ *Interp, args []string) (string, error) {
	return JoinList(args), nil
}

func cmdConcat(_ *Interp, args []string) (string, error) {
	parts := make([]string, 0, len(args))
	for _, a := range args {
		a = strings.TrimSpace(a)
		if a != "" {
			parts = append(parts, a)
		}
	}
	return strings.Join(parts, " "), nil
}

func cmdPuts(_ *Interp, args []string) (string, error) {
	// SDC files occasionally puts progress messages; silently accept
	// (including the -nonewline flag) rather than pollute tool output.
	return "", nil
}

// cmdExpr implements a small Tcl expr: + - * / ( ) unary minus over
// numbers, comparison operators (< > <= >= == !=) returning 0/1, the
// string comparators eq/ne, and double-quoted or bare string operands.
// Comparisons are numeric when both sides parse as numbers, lexical
// otherwise.
func cmdExpr(_ *Interp, args []string) (string, error) {
	src := strings.Join(args, " ")
	e := &exprParser{src: src}
	v, err := e.parseCompare()
	if err != nil {
		return "", fmt.Errorf("expr %q: %w", src, err)
	}
	e.skipSpace()
	if !e.eof() {
		return "", fmt.Errorf("expr %q: trailing garbage at %q", src, e.src[e.pos:])
	}
	return v.text(), nil
}

// FormatNumber renders a float the way Tcl's expr would: integers without a
// decimal point.
func FormatNumber(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// exprValue is a number or a string operand.
type exprValue struct {
	num   float64
	str   string
	isNum bool
}

func numVal(v float64) exprValue { return exprValue{num: v, isNum: true} }
func strVal(s string) exprValue  { return exprValue{str: s} }
func boolVal(b bool) exprValue {
	if b {
		return numVal(1)
	}
	return numVal(0)
}

func (v exprValue) text() string {
	if v.isNum {
		return FormatNumber(v.num)
	}
	return v.str
}

// number coerces to a float, failing for non-numeric strings.
func (v exprValue) number() (float64, error) {
	if v.isNum {
		return v.num, nil
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(v.str), 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a number", v.str)
	}
	return f, nil
}

type exprParser struct {
	src   string
	pos   int
	depth int
}

// maxExprDepth bounds expression nesting ("((((…", "!!!!…") so malformed
// input fails with an error instead of exhausting the stack.
const maxExprDepth = 200

func (e *exprParser) eof() bool { return e.pos >= len(e.src) }

func (e *exprParser) skipSpace() {
	for !e.eof() && (e.src[e.pos] == ' ' || e.src[e.pos] == '\t') {
		e.pos++
	}
}

func (e *exprParser) parseCompare() (exprValue, error) {
	v, err := e.parseAddSub()
	if err != nil {
		return v, err
	}
	for {
		e.skipSpace()
		op := ""
		for _, cand := range []string{"<=", ">=", "==", "!=", "<", ">", "eq ", "ne "} {
			if strings.HasPrefix(e.src[e.pos:], cand) {
				op = strings.TrimSpace(cand)
				e.pos += len(cand)
				break
			}
		}
		if op == "" {
			return v, nil
		}
		r, err := e.parseAddSub()
		if err != nil {
			return v, err
		}
		v, err = compareValues(op, v, r)
		if err != nil {
			return v, err
		}
	}
}

// compareValues applies a comparison, numerically when possible.
func compareValues(op string, l, r exprValue) (exprValue, error) {
	if op == "eq" || op == "ne" {
		eq := l.text() == r.text()
		return boolVal(eq == (op == "eq")), nil
	}
	ln, lerr := l.number()
	rn, rerr := r.number()
	if lerr == nil && rerr == nil {
		switch op {
		case "<":
			return boolVal(ln < rn), nil
		case ">":
			return boolVal(ln > rn), nil
		case "<=":
			return boolVal(ln <= rn), nil
		case ">=":
			return boolVal(ln >= rn), nil
		case "==":
			return boolVal(ln == rn), nil
		case "!=":
			return boolVal(ln != rn), nil
		}
	}
	// String comparison for non-numeric operands.
	ls, rs := l.text(), r.text()
	switch op {
	case "<":
		return boolVal(ls < rs), nil
	case ">":
		return boolVal(ls > rs), nil
	case "<=":
		return boolVal(ls <= rs), nil
	case ">=":
		return boolVal(ls >= rs), nil
	case "==":
		return boolVal(ls == rs), nil
	case "!=":
		return boolVal(ls != rs), nil
	}
	return exprValue{}, fmt.Errorf("bad comparison %q", op)
}

func (e *exprParser) parseAddSub() (exprValue, error) {
	v, err := e.parseMulDiv()
	if err != nil {
		return v, err
	}
	for {
		e.skipSpace()
		if e.eof() {
			return v, nil
		}
		op := e.src[e.pos]
		if op != '+' && op != '-' {
			return v, nil
		}
		e.pos++
		r, err := e.parseMulDiv()
		if err != nil {
			return v, err
		}
		ln, err := v.number()
		if err != nil {
			return v, err
		}
		rn, err := r.number()
		if err != nil {
			return v, err
		}
		if op == '+' {
			v = numVal(ln + rn)
		} else {
			v = numVal(ln - rn)
		}
	}
}

func (e *exprParser) parseMulDiv() (exprValue, error) {
	v, err := e.parseUnary()
	if err != nil {
		return v, err
	}
	for {
		e.skipSpace()
		if e.eof() {
			return v, nil
		}
		op := e.src[e.pos]
		if op != '*' && op != '/' && op != '%' {
			return v, nil
		}
		e.pos++
		r, err := e.parseUnary()
		if err != nil {
			return v, err
		}
		ln, err := v.number()
		if err != nil {
			return v, err
		}
		rn, err := r.number()
		if err != nil {
			return v, err
		}
		switch op {
		case '*':
			v = numVal(ln * rn)
		case '%':
			if int64(rn) == 0 {
				return v, fmt.Errorf("division by zero")
			}
			v = numVal(float64(int64(ln) % int64(rn)))
		default:
			if rn == 0 {
				return v, fmt.Errorf("division by zero")
			}
			v = numVal(ln / rn)
		}
	}
}

func (e *exprParser) parseUnary() (exprValue, error) {
	e.skipSpace()
	if e.eof() {
		return exprValue{}, fmt.Errorf("unexpected end of expression")
	}
	if e.depth >= maxExprDepth {
		return exprValue{}, fmt.Errorf("expression nested too deeply")
	}
	e.depth++
	defer func() { e.depth-- }()
	switch e.src[e.pos] {
	case '-':
		e.pos++
		v, err := e.parseUnary()
		if err != nil {
			return v, err
		}
		n, err := v.number()
		if err != nil {
			return v, err
		}
		return numVal(-n), nil
	case '+':
		e.pos++
		return e.parseUnary()
	case '!':
		e.pos++
		v, err := e.parseUnary()
		if err != nil {
			return v, err
		}
		n, err := v.number()
		if err != nil {
			return v, err
		}
		return boolVal(n == 0), nil
	case '(':
		e.pos++
		v, err := e.parseCompare()
		if err != nil {
			return v, err
		}
		e.skipSpace()
		if e.eof() || e.src[e.pos] != ')' {
			return v, fmt.Errorf("missing )")
		}
		e.pos++
		return v, nil
	case '"':
		e.pos++
		start := e.pos
		for !e.eof() && e.src[e.pos] != '"' {
			e.pos++
		}
		if e.eof() {
			return exprValue{}, fmt.Errorf("unterminated string")
		}
		s := e.src[start:e.pos]
		e.pos++
		return strVal(s), nil
	}
	start := e.pos
	for !e.eof() {
		c := e.src[e.pos]
		if c >= '0' && c <= '9' || c == '.' ||
			(c == 'e' || c == 'E') && e.pos > start ||
			(c == '-' || c == '+') && e.pos > start && (e.src[e.pos-1] == 'e' || e.src[e.pos-1] == 'E') {
			e.pos++
			continue
		}
		break
	}
	if e.pos > start {
		if v, err := strconv.ParseFloat(e.src[start:e.pos], 64); err == nil {
			return numVal(v), nil
		}
		e.pos = start
	}
	// Bare word → string operand (identifiers, pin names, …).
	for !e.eof() {
		c := e.src[e.pos]
		if c == ' ' || c == '\t' || c == ')' || c == '(' ||
			strings.IndexByte("<>=!+-*/%\"", c) >= 0 {
			break
		}
		e.pos++
	}
	if e.pos == start {
		return exprValue{}, fmt.Errorf("expected operand at %q", e.src[start:])
	}
	word := e.src[start:e.pos]
	// "eq"/"ne" are operators, not operands; never reached here because
	// parseCompare consumes them with their trailing space first.
	return strVal(word), nil
}

// SplitList splits a Tcl list into its elements, honoring brace and quote
// grouping. Malformed trailing groups are returned as-is rather than
// erroring, matching the forgiving behaviour SDC consumers expect.
func SplitList(s string) []string {
	var out []string
	i := 0
	n := len(s)
	for i < n {
		for i < n && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
			i++
		}
		if i >= n {
			break
		}
		switch s[i] {
		case '{':
			depth := 1
			j := i + 1
			for j < n && depth > 0 {
				switch s[j] {
				case '{':
					depth++
				case '}':
					depth--
				}
				j++
			}
			if depth == 0 {
				out = append(out, s[i+1:j-1])
			} else {
				out = append(out, s[i+1:])
			}
			i = j
		case '"':
			j := i + 1
			for j < n && s[j] != '"' {
				j++
			}
			out = append(out, s[i+1:j])
			if j < n {
				j++
			}
			i = j
		default:
			j := i
			for j < n && s[j] != ' ' && s[j] != '\t' && s[j] != '\n' && s[j] != '\r' {
				j++
			}
			out = append(out, s[i:j])
			i = j
		}
	}
	return out
}

// JoinList builds a Tcl list from elements, brace-quoting any element that
// needs it.
func JoinList(elems []string) string {
	parts := make([]string, len(elems))
	for i, e := range elems {
		parts[i] = QuoteElem(e)
	}
	return strings.Join(parts, " ")
}

// QuoteElem quotes a single element for inclusion in a Tcl list.
func QuoteElem(e string) string {
	if e == "" {
		return "{}"
	}
	if strings.ContainsAny(e, " \t\n\r\"$[]{};\\") {
		return "{" + e + "}"
	}
	return e
}
