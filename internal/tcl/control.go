package tcl

import (
	"fmt"
	"strconv"
	"strings"
)

// Control-flow commands. Real-world SDC files are Tcl scripts and commonly
// wrap constraints in foreach loops over bus bits or if blocks keyed on a
// mode variable; the interpreter supports the forms those files use:
//
//	if {<expr>} { body } [elseif {<expr>} { body }]... [else { body }]
//	foreach var {a b c} { body }
//	foreach {a b} {1 2 3 4} { body }
//	while {<expr>} { body }
//	for {init} {<expr>} {next} { body }
//	proc name {args} { body }
//	break / continue / return [value]
func init() { registerControl = installControl }

// registerControl is called from New (kept as a hook so the core
// interpreter file stays independent of control flow).
var registerControl func(*Interp)

func installControl(i *Interp) {
	i.Register("if", cmdIf)
	i.Register("foreach", cmdForeach)
	i.Register("while", cmdWhile)
	i.Register("for", cmdFor)
	i.Register("proc", cmdProc)
	i.Register("break", func(*Interp, []string) (string, error) { return "", errBreak })
	i.Register("continue", func(*Interp, []string) (string, error) { return "", errContinue })
	i.Register("return", cmdReturn)
	i.Register("incr", cmdIncr)
}

// flow-control sentinel errors.
var (
	errBreak    = fmt.Errorf("break outside loop")
	errContinue = fmt.Errorf("continue outside loop")
)

// returnValue carries a proc return.
type returnValue struct{ value string }

func (r *returnValue) Error() string { return "return outside proc" }

func cmdReturn(_ *Interp, args []string) (string, error) {
	v := ""
	if len(args) > 0 {
		v = args[0]
	}
	return "", &returnValue{value: v}
}

// condTrue evaluates an expr-style condition word.
func condTrue(i *Interp, cond string) (bool, error) {
	// The condition may contain $var and [cmd] substitutions that the
	// brace word protected; run them through a quote-word evaluation.
	substituted, err := i.Eval("concat \"" + escapeForQuote(cond) + "\"")
	if err != nil {
		return false, err
	}
	res, err := cmdExpr(i, []string{substituted})
	if err != nil {
		return false, err
	}
	v, err := strconv.ParseFloat(res, 64)
	if err != nil {
		return false, fmt.Errorf("condition %q is not boolean", cond)
	}
	return v != 0, nil
}

// escapeForQuote protects quote characters when re-wrapping a brace body
// for substitution.
func escapeForQuote(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}

func cmdIf(i *Interp, args []string) (string, error) {
	// if cond body ?elseif cond body?... ?else body?
	pos := 0
	for {
		if pos+1 >= len(args) {
			return "", fmt.Errorf("if: missing condition or body")
		}
		ok, err := condTrue(i, args[pos])
		if err != nil {
			return "", err
		}
		body := args[pos+1]
		if body == "then" { // tolerate optional then
			pos++
			if pos+1 >= len(args) {
				return "", fmt.Errorf("if: missing body after then")
			}
			body = args[pos+1]
		}
		if ok {
			return i.Eval(body)
		}
		pos += 2
		if pos >= len(args) {
			return "", nil
		}
		switch args[pos] {
		case "elseif":
			pos++
			continue
		case "else":
			if pos+1 >= len(args) {
				return "", fmt.Errorf("if: missing else body")
			}
			return i.Eval(args[pos+1])
		default:
			return "", fmt.Errorf("if: expected elseif/else, got %q", args[pos])
		}
	}
}

func cmdForeach(i *Interp, args []string) (string, error) {
	if len(args) != 3 {
		return "", fmt.Errorf("foreach: want varlist list body")
	}
	vars := SplitList(args[0])
	if len(vars) == 0 {
		return "", fmt.Errorf("foreach: empty variable list")
	}
	items := SplitList(args[1])
	body := args[2]
	for pos := 0; pos < len(items); pos += len(vars) {
		for vi, v := range vars {
			val := ""
			if pos+vi < len(items) {
				val = items[pos+vi]
			}
			i.SetVar(v, val)
		}
		if _, err := i.Eval(body); err != nil {
			if err == errBreak || isWrapped(err, errBreak) {
				return "", nil
			}
			if err == errContinue || isWrapped(err, errContinue) {
				continue
			}
			return "", err
		}
	}
	return "", nil
}

func cmdWhile(i *Interp, args []string) (string, error) {
	if len(args) != 2 {
		return "", fmt.Errorf("while: want condition body")
	}
	const maxIterations = 1 << 20
	for iter := 0; ; iter++ {
		if iter > maxIterations {
			return "", fmt.Errorf("while: exceeded %d iterations", maxIterations)
		}
		ok, err := condTrue(i, args[0])
		if err != nil {
			return "", err
		}
		if !ok {
			return "", nil
		}
		if _, err := i.Eval(args[1]); err != nil {
			if err == errBreak || isWrapped(err, errBreak) {
				return "", nil
			}
			if err == errContinue || isWrapped(err, errContinue) {
				continue
			}
			return "", err
		}
	}
}

func cmdFor(i *Interp, args []string) (string, error) {
	if len(args) != 4 {
		return "", fmt.Errorf("for: want init condition next body")
	}
	if _, err := i.Eval(args[0]); err != nil {
		return "", err
	}
	const maxIterations = 1 << 20
	for iter := 0; ; iter++ {
		if iter > maxIterations {
			return "", fmt.Errorf("for: exceeded %d iterations", maxIterations)
		}
		ok, err := condTrue(i, args[1])
		if err != nil {
			return "", err
		}
		if !ok {
			return "", nil
		}
		if _, err := i.Eval(args[3]); err != nil {
			if err == errBreak || isWrapped(err, errBreak) {
				return "", nil
			}
			if err != errContinue && !isWrapped(err, errContinue) {
				return "", err
			}
		}
		if _, err := i.Eval(args[2]); err != nil {
			return "", err
		}
	}
}

func cmdIncr(i *Interp, args []string) (string, error) {
	if len(args) < 1 || len(args) > 2 {
		return "", fmt.Errorf("incr: want varName ?increment?")
	}
	cur, ok := i.Var(args[0])
	if !ok {
		cur = "0"
	}
	v, err := strconv.Atoi(strings.TrimSpace(cur))
	if err != nil {
		return "", fmt.Errorf("incr: %q is not an integer", cur)
	}
	by := 1
	if len(args) == 2 {
		by, err = strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("incr: bad increment %q", args[1])
		}
	}
	v += by
	out := strconv.Itoa(v)
	i.SetVar(args[0], out)
	return out, nil
}

// cmdProc defines a user procedure. Arguments may carry defaults
// ({name default}); "args" as the last parameter collects the rest.
func cmdProc(i *Interp, args []string) (string, error) {
	if len(args) != 3 {
		return "", fmt.Errorf("proc: want name arguments body")
	}
	name := args[0]
	params := SplitList(args[1])
	body := args[2]
	i.Register(name, func(i *Interp, callArgs []string) (string, error) {
		// Procs share the global variable scope (sufficient for SDC
		// helper procs, which overwhelmingly set design constraints).
		for pi, p := range params {
			parts := SplitList(p)
			pname := parts[0]
			if pname == "args" && pi == len(params)-1 {
				i.SetVar("args", JoinList(callArgs[min(pi, len(callArgs)):]))
				break
			}
			switch {
			case pi < len(callArgs):
				i.SetVar(pname, callArgs[pi])
			case len(parts) > 1:
				i.SetVar(pname, parts[1])
			default:
				return "", fmt.Errorf("%s: missing argument %q", name, pname)
			}
		}
		res, err := i.Eval(body)
		if err != nil {
			var rv *returnValue
			if asReturn(err, &rv) {
				return rv.value, nil
			}
			return "", err
		}
		return res, nil
	})
	return "", nil
}

// isWrapped reports whether err is an *Error wrapping target.
func isWrapped(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		w, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = w.Unwrap()
	}
	return false
}

// asReturn unwraps a returnValue.
func asReturn(err error, out **returnValue) bool {
	for err != nil {
		if rv, ok := err.(*returnValue); ok {
			*out = rv
			return true
		}
		w, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = w.Unwrap()
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
