// Package tcl implements the small Tcl subset needed to evaluate SDC
// (Synopsys Design Constraints) scripts: command parsing, brace and quote
// words, nested [command] substitution, $variable substitution, comments,
// backslash line continuation, and Tcl list handling.
//
// The interpreter is deliberately minimal — SDC files are Tcl scripts that
// consist almost entirely of straight command invocations with bracketed
// object queries, plus the occasional variable and expr. Everything a value
// touches is a string, exactly as in Tcl.
package tcl

import (
	"errors"
	"fmt"
	"strings"
)

// Command is the implementation of a Tcl command. It receives the fully
// substituted argument words (not including the command name) and returns
// the command result.
type Command func(i *Interp, args []string) (string, error)

// Interp is a Tcl interpreter instance. The zero value is not usable; call
// New.
type Interp struct {
	vars map[string]string
	cmds map[string]Command

	// Line is the 1-based line number of the command currently being
	// evaluated, for error reporting by registered commands.
	Line int

	// MaxSteps bounds the total number of command invocations per
	// top-level Eval, guarding against runaway loops in untrusted
	// scripts. 0 means unlimited.
	MaxSteps int
	// MaxDepth bounds Eval nesting (bracket substitution, control-flow
	// bodies, proc calls). 0 uses DefaultMaxDepth.
	MaxDepth int

	steps int
	depth int
}

// DefaultMaxDepth is the Eval nesting bound used when MaxDepth is 0. Real
// SDC scripts nest a handful of levels; the bound exists so pathological
// input exhausts a counter instead of the goroutine stack.
const DefaultMaxDepth = 100

// ErrTooDeep reports Eval nesting beyond MaxDepth.
var ErrTooDeep = errors.New("evaluation nested too deeply")

// ErrStepBudget reports a script exceeding MaxSteps command invocations.
var ErrStepBudget = errors.New("script exceeded its evaluation step budget")

// New returns an interpreter with the built-in commands registered: set,
// unset, list, concat, expr, puts, and the control-flow subset real SDC
// scripts use (if/elseif/else, foreach, while, for, proc, break,
// continue, return, incr — see control.go).
func New() *Interp {
	i := &Interp{
		vars: make(map[string]string),
		cmds: make(map[string]Command),
	}
	i.Register("set", cmdSet)
	i.Register("unset", cmdUnset)
	i.Register("list", cmdList)
	i.Register("expr", cmdExpr)
	i.Register("puts", cmdPuts)
	i.Register("concat", cmdConcat)
	if registerControl != nil {
		registerControl(i)
	}
	return i
}

// Register installs or replaces a command.
func (i *Interp) Register(name string, c Command) { i.cmds[name] = c }

// HasCommand reports whether name is a registered command.
func (i *Interp) HasCommand(name string) bool { _, ok := i.cmds[name]; return ok }

// SetVar sets a variable.
func (i *Interp) SetVar(name, value string) { i.vars[name] = value }

// Var returns a variable's value and whether it exists.
func (i *Interp) Var(name string) (string, bool) {
	v, ok := i.vars[name]
	return v, ok
}

// Error wraps an error with the script line it occurred on.
type Error struct {
	Line int
	Err  error
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %v", e.Line, e.Err) }

// Unwrap returns the underlying error.
func (e *Error) Unwrap() error { return e.Err }

// Eval evaluates a script and returns the result of the last command.
func (i *Interp) Eval(script string) (string, error) {
	maxDepth := i.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	if i.depth >= maxDepth {
		return "", &Error{Line: i.Line, Err: ErrTooDeep}
	}
	if i.depth == 0 {
		i.steps = 0
	}
	i.depth++
	defer func() { i.depth-- }()
	p := &parser{src: script, line: 1}
	result := ""
	for {
		words, line, err := p.nextCommand(i)
		if err != nil {
			return "", &Error{Line: line, Err: err}
		}
		if words == nil {
			return result, nil
		}
		if len(words) == 0 {
			continue
		}
		save := i.Line
		i.Line = line
		result, err = i.invoke(words)
		i.Line = save
		if err != nil {
			if _, ok := err.(*Error); ok {
				return "", err
			}
			return "", &Error{Line: line, Err: err}
		}
	}
}

func (i *Interp) invoke(words []string) (string, error) {
	if i.MaxSteps > 0 {
		i.steps++
		if i.steps > i.MaxSteps {
			return "", ErrStepBudget
		}
	}
	cmd, ok := i.cmds[words[0]]
	if !ok {
		return "", fmt.Errorf("unknown command %q", words[0])
	}
	return cmd(i, words[1:])
}

// parser walks a script, producing one command's substituted words at a
// time.
type parser struct {
	src  string
	pos  int
	line int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte { return p.src[p.pos] }

func (p *parser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
	}
	return c
}

// skipToCommand consumes whitespace, separators and comments until the
// start of the next command. Reports whether a command may follow.
func (p *parser) skipToCommand() bool {
	for !p.eof() {
		c := p.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ';':
			p.advance()
		case c == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n':
			p.advance()
			p.advance()
		case c == '#':
			for !p.eof() && p.peek() != '\n' {
				// A backslash-newline inside a comment continues the
				// comment, per Tcl.
				if p.peek() == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
					p.advance()
				}
				p.advance()
			}
		default:
			return true
		}
	}
	return false
}

// nextCommand parses and substitutes the next command. A nil words slice
// with nil error means end of script.
func (p *parser) nextCommand(i *Interp) (words []string, line int, err error) {
	if !p.skipToCommand() {
		return nil, p.line, nil
	}
	line = p.line
	words = []string{}
	for {
		// Skip intra-command whitespace.
		for !p.eof() {
			c := p.peek()
			if c == ' ' || c == '\t' || c == '\r' {
				p.advance()
				continue
			}
			if c == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
				p.advance()
				p.advance()
				continue
			}
			break
		}
		if p.eof() {
			return words, line, nil
		}
		c := p.peek()
		if c == '\n' || c == ';' {
			p.advance()
			return words, line, nil
		}
		w, err := p.word(i)
		if err != nil {
			return nil, line, err
		}
		words = append(words, w)
	}
}

// word parses a single word with substitution applied.
func (p *parser) word(i *Interp) (string, error) {
	switch p.peek() {
	case '{':
		return p.braceWord()
	case '"':
		return p.quoteWord(i)
	default:
		return p.bareWord(i)
	}
}

// braceWord parses {...}: no substitution, braces nest.
func (p *parser) braceWord() (string, error) {
	p.advance() // '{'
	depth := 1
	var b strings.Builder
	for !p.eof() {
		c := p.advance()
		switch c {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return b.String(), nil
			}
		case '\\':
			// Backslash-newline inside braces collapses to a space, other
			// backslash sequences are kept verbatim (Tcl brace semantics).
			if !p.eof() && p.peek() == '\n' {
				p.advance()
				b.WriteByte(' ')
				continue
			}
			b.WriteByte(c)
			continue
		}
		if depth > 0 {
			b.WriteByte(c)
		}
	}
	return "", fmt.Errorf("unterminated brace word")
}

// quoteWord parses "..." with $ and [] substitution.
func (p *parser) quoteWord(i *Interp) (string, error) {
	p.advance() // '"'
	var b strings.Builder
	for !p.eof() {
		c := p.peek()
		switch c {
		case '"':
			p.advance()
			return b.String(), nil
		case '$':
			v, err := p.varSubst(i)
			if err != nil {
				return "", err
			}
			b.WriteString(v)
		case '[':
			v, err := p.bracketSubst(i)
			if err != nil {
				return "", err
			}
			b.WriteString(v)
		case '\\':
			s, err := p.backslash()
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		default:
			b.WriteByte(p.advance())
		}
	}
	return "", fmt.Errorf("unterminated quoted word")
}

// bareWord parses an unquoted word with $ and [] substitution.
func (p *parser) bareWord(i *Interp) (string, error) {
	var b strings.Builder
	for !p.eof() {
		c := p.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ';':
			return b.String(), nil
		case c == '$':
			v, err := p.varSubst(i)
			if err != nil {
				return "", err
			}
			b.WriteString(v)
		case c == '[':
			v, err := p.bracketSubst(i)
			if err != nil {
				return "", err
			}
			b.WriteString(v)
		case c == '\\':
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
				return b.String(), nil
			}
			s, err := p.backslash()
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		default:
			b.WriteByte(p.advance())
		}
	}
	return b.String(), nil
}

// backslash consumes a backslash escape and returns its replacement.
func (p *parser) backslash() (string, error) {
	p.advance() // '\'
	if p.eof() {
		return "\\", nil
	}
	c := p.advance()
	switch c {
	case 'n':
		return "\n", nil
	case 't':
		return "\t", nil
	case 'r':
		return "\r", nil
	case '\n':
		return " ", nil
	default:
		return string(c), nil
	}
}

// varSubst consumes $name or ${name} and returns the variable value.
func (p *parser) varSubst(i *Interp) (string, error) {
	p.advance() // '$'
	if p.eof() {
		return "$", nil
	}
	var name string
	if p.peek() == '{' {
		p.advance()
		start := p.pos
		for !p.eof() && p.peek() != '}' {
			p.advance()
		}
		if p.eof() {
			return "", fmt.Errorf("unterminated ${...} variable reference")
		}
		name = p.src[start:p.pos]
		p.advance() // '}'
	} else {
		start := p.pos
		for !p.eof() && isVarChar(p.peek()) {
			p.advance()
		}
		name = p.src[start:p.pos]
	}
	if name == "" {
		return "$", nil
	}
	v, ok := i.vars[name]
	if !ok {
		return "", fmt.Errorf("can't read %q: no such variable", name)
	}
	return v, nil
}

func isVarChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// bracketSubst consumes [script] and returns its evaluation result.
func (p *parser) bracketSubst(i *Interp) (string, error) {
	p.advance() // '['
	start := p.pos
	depth := 1
	inBrace := 0
	for !p.eof() {
		c := p.peek()
		switch c {
		case '{':
			inBrace++
		case '}':
			if inBrace > 0 {
				inBrace--
			}
		case '[':
			if inBrace == 0 {
				depth++
			}
		case ']':
			if inBrace == 0 {
				depth--
				if depth == 0 {
					script := p.src[start:p.pos]
					p.advance() // ']'
					return i.Eval(script)
				}
			}
		}
		p.advance()
	}
	return "", fmt.Errorf("unterminated [ command substitution")
}
