package tcl

import (
	"strings"
	"testing"
)

func TestIf(t *testing.T) {
	cases := []struct{ script, want string }{
		{"set r 0\nif {1 < 2} { set r yes }\nset q $r", "yes"},
		{"set r keep\nif {1 > 2} { set r yes }\nset q $r", "keep"},
		{"set x 5\nif {$x == 5} { set r five } else { set r other }\nset q $r", "five"},
		{"set x 7\nif {$x == 5} { set r five } elseif {$x == 7} { set r seven } else { set r other }\nset q $r", "seven"},
		{"set x 9\nif {$x == 5} { set r five } elseif {$x == 7} { set r seven } else { set r other }\nset q $r", "other"},
		{"if {1} then { set r thenform }\nset q $r", "thenform"},
	}
	for _, c := range cases {
		if got := eval(t, c.script); got != c.want {
			t.Errorf("script %q = %q, want %q", c.script, got, c.want)
		}
	}
}

func TestIfErrors(t *testing.T) {
	i := New()
	for _, bad := range []string{
		"if {1}",

		"if {notanumber} { set a 1 }",
	} {
		if _, err := i.Eval(bad); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}
}

func TestForeach(t *testing.T) {
	got := eval(t, `
set acc ""
foreach x {a b c} { set acc "$acc$x" }
set r $acc
`)
	if got != "abc" {
		t.Errorf("foreach acc = %q", got)
	}
	// Multi-variable form.
	got = eval(t, `
set acc ""
foreach {k v} {a 1 b 2} { set acc "$acc$k=$v;" }
set r $acc
`)
	if got != "a=1;b=2;" {
		t.Errorf("foreach kv = %q", got)
	}
}

func TestForeachBreakContinue(t *testing.T) {
	got := eval(t, `
set acc ""
foreach x {a b c d} {
  if {$x == "c"} { break }
  set acc "$acc$x"
}
set r $acc
`)
	if got != "ab" {
		t.Errorf("string-compare break acc = %q", got)
	}
}

func TestForeachBreakNumeric(t *testing.T) {
	got := eval(t, `
set acc ""
foreach x {1 2 3 4} {
  if {$x == 3} { break }
  set acc "$acc$x"
}
set r $acc
`)
	if got != "12" {
		t.Errorf("break acc = %q", got)
	}
	got = eval(t, `
set acc ""
foreach x {1 2 3 4} {
  if {$x == 2} { continue }
  set acc "$acc$x"
}
set r $acc
`)
	if got != "134" {
		t.Errorf("continue acc = %q", got)
	}
}

func TestWhileAndIncr(t *testing.T) {
	got := eval(t, `
set i 0
set acc ""
while {$i < 4} {
  set acc "$acc$i"
  incr i
}
set r $acc
`)
	if got != "0123" {
		t.Errorf("while acc = %q", got)
	}
	if got := eval(t, "set i 10\nincr i -3"); got != "7" {
		t.Errorf("incr -3 = %q", got)
	}
	if got := eval(t, "incr fresh"); got != "1" {
		t.Errorf("incr on unset = %q", got)
	}
}

func TestFor(t *testing.T) {
	got := eval(t, `
set acc ""
for {set i 0} {$i < 3} {incr i} { set acc "$acc$i" }
set r $acc
`)
	if got != "012" {
		t.Errorf("for acc = %q", got)
	}
}

func TestProc(t *testing.T) {
	got := eval(t, `
proc double {x} { return [expr $x * 2] }
set r [double 21]
`)
	if got != "42" {
		t.Errorf("proc = %q", got)
	}
	// Default arguments.
	got = eval(t, `
proc scaled {x {factor 3}} { return [expr $x * $factor] }
set r [scaled 5]
`)
	if got != "15" {
		t.Errorf("proc default = %q", got)
	}
	// Missing required argument errors.
	i := New()
	if _, err := i.Eval("proc f {a b} { return $a }\nf 1"); err == nil {
		t.Error("missing arg accepted")
	}
}

func TestProcArgsCollector(t *testing.T) {
	got := eval(t, `
proc count {first args} { return "[llength_sim $args]" }
proc llength_sim {l} { set n 0; foreach _ $l { incr n }; return $n }
set r [count a b c d]
`)
	if got != "3" {
		t.Errorf("args collector = %q", got)
	}
}

func TestWhileRunaway(t *testing.T) {
	i := New()
	_, err := i.Eval("while {1} { set a 1 }")
	if err == nil || !strings.Contains(err.Error(), "iterations") {
		t.Errorf("runaway loop not caught: %v", err)
	}
}

func TestSDCStyleForeachLoop(t *testing.T) {
	// The realistic use: constraints emitted in a loop.
	i := New()
	var got []string
	i.Register("set_false_path", func(i *Interp, args []string) (string, error) {
		got = append(got, strings.Join(args, " "))
		return "", nil
	})
	script := `
foreach idx {0 1 2} {
  set_false_path -from reg_$idx/CP
}
`
	if _, err := i.Eval(script); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "-from reg_0/CP" || got[2] != "-from reg_2/CP" {
		t.Errorf("emitted = %v", got)
	}
}
