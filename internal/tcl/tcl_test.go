package tcl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func eval(t *testing.T, script string) string {
	t.Helper()
	i := New()
	got, err := i.Eval(script)
	if err != nil {
		t.Fatalf("Eval(%q): %v", script, err)
	}
	return got
}

func TestSetAndSubstitution(t *testing.T) {
	cases := []struct{ script, want string }{
		{`set a 5`, "5"},
		{"set a 5\nset b $a", "5"},
		{"set a 5\nset b ${a}x", "5x"},
		{`set a "hello world"`, "hello world"},
		{"set a {raw $notvar [nocmd]}", "raw $notvar [nocmd]"},
		{"set a 3\nset b [expr $a + 4]", "7"},
		{`set a "pre [expr 1+1] post"`, "pre 2 post"},
	}
	for _, c := range cases {
		if got := eval(t, c.script); got != c.want {
			t.Errorf("Eval(%q) = %q, want %q", c.script, got, c.want)
		}
	}
}

func TestCommandSeparators(t *testing.T) {
	if got := eval(t, "set a 1; set b 2; set c 3"); got != "3" {
		t.Errorf("semicolon separation: got %q", got)
	}
	if got := eval(t, "set a \\\n 42"); got != "42" {
		t.Errorf("line continuation: got %q", got)
	}
}

func TestComments(t *testing.T) {
	script := `
# a comment line
set a 1
# another comment with a continuation \
this is still comment
set b 2
`
	if got := eval(t, script); got != "2" {
		t.Errorf("got %q, want 2", got)
	}
}

func TestUnknownCommand(t *testing.T) {
	i := New()
	_, err := i.Eval("create_warp_drive 9")
	if err == nil {
		t.Fatal("expected error for unknown command")
	}
	var te *Error
	if !errors.As(err, &te) {
		t.Fatalf("expected *Error, got %T", err)
	}
	if te.Line != 1 {
		t.Errorf("error line = %d, want 1", te.Line)
	}
}

func TestErrorLineNumbers(t *testing.T) {
	i := New()
	_, err := i.Eval("set a 1\nset b 2\nbogus_cmd\n")
	var te *Error
	if !errors.As(err, &te) {
		t.Fatalf("expected *Error, got %v", err)
	}
	if te.Line != 3 {
		t.Errorf("error line = %d, want 3", te.Line)
	}
}

func TestRegisteredCommand(t *testing.T) {
	i := New()
	var gotArgs []string
	i.Register("get_ports", func(i *Interp, args []string) (string, error) {
		gotArgs = args
		return JoinList(args), nil
	})
	res, err := i.Eval(`get_ports {clk1 clk2} reset`)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotArgs) != 2 || gotArgs[0] != "clk1 clk2" || gotArgs[1] != "reset" {
		t.Errorf("args = %q", gotArgs)
	}
	if res != "{clk1 clk2} reset" {
		t.Errorf("result = %q", res)
	}
}

func TestNestedBrackets(t *testing.T) {
	i := New()
	i.Register("inner", func(i *Interp, args []string) (string, error) { return "X", nil })
	i.Register("outer", func(i *Interp, args []string) (string, error) {
		return "(" + strings.Join(args, ",") + ")", nil
	})
	got, err := i.Eval(`set r [outer [inner] [inner]]`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "(X,X)" {
		t.Errorf("got %q", got)
	}
}

func TestBracketWithBraces(t *testing.T) {
	i := New()
	i.Register("echo", func(i *Interp, args []string) (string, error) {
		return strings.Join(args, "|"), nil
	})
	// A brace word containing ] inside a bracket substitution must not
	// terminate the bracket early.
	got, err := i.Eval(`set r [echo {a]b} c]`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "a]b|c" {
		t.Errorf("got %q", got)
	}
}

func TestExpr(t *testing.T) {
	cases := []struct{ in, want string }{
		{"expr 1 + 2", "3"},
		{"expr 2 * 3 + 4", "10"},
		{"expr 2 + 3 * 4", "14"},
		{"expr (2 + 3) * 4", "20"},
		{"expr 10 / 4", "2.5"},
		{"expr -5 + 2", "-3"},
		{"expr 1.5 * 2", "3"},
		{"expr 3 < 4", "1"},
		{"expr 3 >= 4", "0"},
		{"expr 2 == 2", "1"},
		{"expr 1e3 + 1", "1001"},
	}
	for _, c := range cases {
		if got := eval(t, c.in); got != c.want {
			t.Errorf("%s = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	i := New()
	for _, bad := range []string{"expr 1 / 0", "expr (1 + 2", "expr 1 +", "expr abc + 1"} {
		if _, err := i.Eval(bad); err == nil {
			t.Errorf("%s: expected error", bad)
		}
	}
}

func TestUnterminated(t *testing.T) {
	i := New()
	for _, bad := range []string{`set a "unclosed`, `set a {unclosed`, `set a [set b`, `set a ${unclosed`} {
		if _, err := i.Eval(bad); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}
}

func TestUndefinedVariable(t *testing.T) {
	i := New()
	if _, err := i.Eval(`set a $nope`); err == nil {
		t.Fatal("expected error for undefined variable")
	}
}

func TestBackslashEscapes(t *testing.T) {
	if got := eval(t, `set a "x\ty"`); got != "x\ty" {
		t.Errorf("tab escape: %q", got)
	}
	if got := eval(t, `set a a\ b`); got != "a b" {
		t.Errorf("escaped space: %q", got)
	}
}

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a b c", []string{"a", "b", "c"}},
		{"{a b} c", []string{"a b", "c"}},
		{`"a b" c`, []string{"a b", "c"}},
		{"", nil},
		{"   ", nil},
		{"{nested {deep}} x", []string{"nested {deep}", "x"}},
		{"a\tb\nc", []string{"a", "b", "c"}},
	}
	for _, c := range cases {
		got := SplitList(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SplitList(%q) = %q, want %q", c.in, got, c.want)
			continue
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("SplitList(%q)[%d] = %q, want %q", c.in, j, got[j], c.want[j])
			}
		}
	}
}

func TestJoinSplitRoundTrip(t *testing.T) {
	f := func(elems []string) bool {
		// Elements containing braces/newlines are not guaranteed to round
		// trip through the simplified quoting; restrict to realistic SDC
		// object names.
		clean := make([]string, 0, len(elems))
		for _, e := range elems {
			if e == "" || strings.ContainsAny(e, "{}\"\\\n\r") {
				continue
			}
			clean = append(clean, e)
		}
		got := SplitList(JoinList(clean))
		if len(got) != len(clean) {
			return false
		}
		for i := range got {
			if got[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalNeverPanics(t *testing.T) {
	f := func(script string) bool {
		i := New()
		i.Register("get_ports", func(i *Interp, args []string) (string, error) {
			return JoinList(args), nil
		})
		_, _ = i.Eval(script) // must not panic, errors are fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLineTracking(t *testing.T) {
	i := New()
	var lines []int
	i.Register("mark", func(i *Interp, args []string) (string, error) {
		lines = append(lines, i.Line)
		return "", nil
	})
	_, err := i.Eval("mark\n\nmark\n# comment\nmark")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 5}
	if len(lines) != 3 || lines[0] != want[0] || lines[1] != want[1] || lines[2] != want[2] {
		t.Errorf("lines = %v, want %v", lines, want)
	}
}

func TestConcatAndUnset(t *testing.T) {
	i := New()
	got, err := i.Eval(`concat a "" {b c}  d`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "a b c d" {
		t.Errorf("concat = %q", got)
	}
	if _, err := i.Eval("set x 1\nunset x\nset y $x"); err == nil {
		t.Error("unset variable still readable")
	}
}

func TestQuoteElem(t *testing.T) {
	cases := map[string]string{
		"plain":   "plain",
		"":        "{}",
		"a b":     "{a b}",
		"d[3]":    "{d[3]}",
		"semi;":   "{semi;}",
		"dollar$": "{dollar$}",
	}
	for in, want := range cases {
		if got := QuoteElem(in); got != want {
			t.Errorf("QuoteElem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatNumber(t *testing.T) {
	if FormatNumber(3) != "3" || FormatNumber(2.5) != "2.5" || FormatNumber(-4) != "-4" {
		t.Error("FormatNumber wrong")
	}
}

func TestExprStrings(t *testing.T) {
	cases := []struct{ in, want string }{
		{`expr "abc" eq "abc"`, "1"},
		{`expr "abc" ne "abc"`, "0"},
		{`expr abc == abd`, "0"},
		{`expr abc < abd`, "1"},
		{`expr "5" == 5`, "1"}, // numeric when both coerce
		{`expr 7 % 3`, "1"},
		{`expr !0`, "1"},
		{`expr !3`, "0"},
	}
	for _, c := range cases {
		if got := eval(t, c.in); got != c.want {
			t.Errorf("%s = %q, want %q", c.in, got, c.want)
		}
	}
}
