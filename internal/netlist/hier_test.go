package netlist

import (
	"strings"
	"testing"

	"modemerge/internal/library"
)

// testMaster builds a small block master: clock buffer, two DFFs in a
// pipeline, one comb cell, plus a pure pass-through net (pt_in→pt_out).
func testMaster(t *testing.T) *Design {
	t.Helper()
	b := NewBuilder("blk", library.Default())
	b.Port("ck", In)
	b.Port("din", In)
	b.Port("pt_in", In)
	b.Port("dout", Out)
	b.PortOnNet("pt_out", Out, "pt_in")
	b.Inst("CLKBUF", "ckbuf", map[string]string{"A": "ck", "Z": "cknet"})
	b.Inst("DFF", "r0", map[string]string{"CP": "cknet", "D": "din", "Q": "n0"})
	b.Inst("AND2", "u0", map[string]string{"A": "n0", "B": "din", "Z": "n1"})
	b.Inst("DFF", "r1", map[string]string{"CP": "cknet", "D": "n1", "Q": "dout"})
	d, err := b.Build()
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	return d
}

func testHier(t *testing.T) *HierDesign {
	t.Helper()
	master := testMaster(t)
	tb := NewBuilder("top", library.Default())
	tb.Port("clk", In)
	tb.Port("in0", In)
	tb.Port("out0", Out)
	tb.Inst("CLKBUF", "topbuf", map[string]string{"A": "clk", "Z": "gclk"})
	tb.Inst("BUF", "obuf", map[string]string{"A": "b1_q", "Z": "out0"})
	// Nets only touched by block pins must still exist in the top design.
	tb.Net("b0_q")
	tb.Net("b0_pt")
	tb.Net("b1_pt")
	top := tb.MustBuild()
	return &HierDesign{
		Name: "top",
		Lib:  library.Default(),
		Top:  top,
		Blocks: []*BlockInst{
			{Name: "b0", Master: master, Binds: map[string]string{
				"ck": "gclk", "din": "in0", "dout": "b0_q", "pt_in": "in0", "pt_out": "b0_pt"}},
			{Name: "b1", Master: master, Binds: map[string]string{
				"ck": "gclk", "din": "b0_q", "dout": "b1_q", "pt_in": "b0_pt", "pt_out": "b1_pt"}},
		},
	}
}

func TestFlattenHier(t *testing.T) {
	h := testHier(t)
	flat, err := h.Flatten()
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	// Interior instances gain the block prefix.
	for _, name := range []string{"b0/r0", "b0/r1", "b1/u0", "topbuf", "obuf"} {
		if flat.InstByName(name) == nil {
			t.Errorf("missing instance %q", name)
		}
	}
	// Master port nets dissolve into bound top nets: b0's dout drives b1's din.
	r1, qpin, err := flat.FindPin("b0/r1/Q")
	if err != nil {
		t.Fatalf("find pin: %v", err)
	}
	if q := r1.Conns[qpin]; q.Name != "b0_q" {
		t.Errorf("b0/r1 Q on net %q, want b0_q", q.Name)
	}
	// Pass-through ports synthesize a feed BUF per block.
	if flat.InstByName("b0/__feed0") == nil || flat.InstByName("b1/__feed0") == nil {
		t.Errorf("missing feed-through BUFs")
	}
	st := flat.Stats()
	want := h.Stats()
	// Flatten adds one BUF per feed-through, which Stats does not count.
	if st.Cells != want.Cells+2 {
		t.Errorf("cells = %d, want %d + 2 feed BUFs", st.Cells, want.Cells)
	}
	if st.Sequential != want.Sequential {
		t.Errorf("regs = %d, want %d", st.Sequential, want.Sequential)
	}
}

func TestHierVerilogRoundTrip(t *testing.T) {
	h := testHier(t)
	text := WriteVerilogHier(h)
	h2, err := ParseVerilogHier(text, library.Default(), "top")
	if err != nil {
		t.Fatalf("parse hier: %v", err)
	}
	if len(h2.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(h2.Blocks))
	}
	if h2.Blocks[0].Master != h2.Blocks[1].Master {
		t.Errorf("block instances do not share one master design")
	}
	// Flattening the reparse matches flattening the original, module by
	// module (WriteVerilog is canonical for flat designs).
	f1, err := h.Flatten()
	if err != nil {
		t.Fatalf("flatten orig: %v", err)
	}
	f2, err := h2.Flatten()
	if err != nil {
		t.Fatalf("flatten reparse: %v", err)
	}
	if a, b := WriteVerilog(f1), WriteVerilog(f2); a != b {
		t.Errorf("flatten mismatch after round trip:\n%s", firstDiffLine(a, b))
	}
	// Byte-stable rendering.
	if text != WriteVerilogHier(h2) {
		t.Errorf("WriteVerilogHier not stable across round trip")
	}
}

func TestParseVerilogHierFlatEquivalence(t *testing.T) {
	// A hierarchical source parsed flat (ParseVerilog) and parsed
	// hierarchically + flattened must describe the same circuit.
	src := WriteVerilogHier(testHier(t))
	flat, err := ParseVerilog(src, library.Default(), "top")
	if err != nil {
		t.Fatalf("flat parse: %v", err)
	}
	h, err := ParseVerilogHier(src, library.Default(), "top")
	if err != nil {
		t.Fatalf("hier parse: %v", err)
	}
	hf, err := h.Flatten()
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	fs, hs := flat.Stats(), hf.Stats()
	// The flat elaborator dissolves pass-through nets by aliasing while
	// Flatten inserts feed BUFs, so allow exactly that delta.
	if hs.Sequential != fs.Sequential {
		t.Errorf("regs: flat %d vs hier %d", fs.Sequential, hs.Sequential)
	}
	if hs.Cells < fs.Cells || hs.Cells > fs.Cells+2 {
		t.Errorf("cells: flat %d vs hier %d (want equal up to 2 feed BUFs)", fs.Cells, hs.Cells)
	}
	for _, name := range []string{"b0/r0", "b1/r1", "b0/u0"} {
		if flat.InstByName(name) == nil {
			t.Errorf("flat parse missing %q", name)
		}
		if hf.InstByName(name) == nil {
			t.Errorf("hier flatten missing %q", name)
		}
	}
}

func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + al[i] + " != " + bl[i]
		}
	}
	return "length mismatch"
}
