package netlist

import (
	"fmt"
	"sort"
	"strings"

	"modemerge/internal/library"
)

// PortOnNet declares a top-level port attached to the named net rather
// than a same-named one. It exists for pass-through block masters,
// where one interior net carries both an input and an output port.
func (b *Builder) PortOnNet(name string, dir PortDir, netName string) *Port {
	if _, dup := b.d.portByName[name]; dup {
		b.errf("duplicate port %q", name)
		return b.d.portByName[name]
	}
	p := &Port{Name: name, Dir: dir, Net: b.Net(netName), Index: len(b.d.Ports)}
	p.Net.Ports = append(p.Net.Ports, p)
	b.d.Ports = append(b.d.Ports, p)
	b.d.portByName[name] = p
	return p
}

// BlockInst is one instantiation of a block master inside a hierarchical
// design's top level. Binds maps master port names to top-level net
// names; a missing binding leaves the port dangling (the flattened net
// is named "<inst>/<port>").
type BlockInst struct {
	Name   string
	Master *Design
	Binds  map[string]string
}

// BindOf returns the top net bound to the master port, or the dangling
// default name when unbound.
func (bi *BlockInst) BindOf(port string) string {
	if n, ok := bi.Binds[port]; ok && n != "" {
		return n
	}
	return bi.Name + "/" + port
}

// HierDesign is a two-level view of a design: a top level holding only
// leaf cells and ports, plus block instances of shared master designs.
// Block interiors deeper than one level are flattened into their
// masters. Flatten produces the equivalent flat Design with the same
// "<inst>/<name>" naming the Verilog elaborator uses, so modes written
// against the flat namespace apply unchanged.
type HierDesign struct {
	Name   string
	Lib    *library.Library
	Top    *Design
	Blocks []*BlockInst
}

// Masters returns the distinct block master designs, sorted by name.
func (h *HierDesign) Masters() []*Design {
	seen := map[string]*Design{}
	for _, b := range h.Blocks {
		seen[b.Master.Name] = b.Master
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Design, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out
}

// Stats aggregates design size across the top level and all block
// instances (each instance counts its master's full interior).
func (h *HierDesign) Stats() Stats {
	s := h.Top.Stats()
	for _, b := range h.Blocks {
		ms := b.Master.Stats()
		s.Cells += ms.Cells
		s.Nets += ms.Nets
		s.Sequential += ms.Sequential
	}
	return s
}

// Flatten expands every block instance into a flat Design. Master
// instance and net names gain an "<inst>/" prefix; master port nets
// dissolve into the bound top nets. A master net tying an input port
// directly to output ports (a feed-through) synthesizes a BUF per
// output port so the flat netlist keeps single-driver nets.
func (h *HierDesign) Flatten() (*Design, error) {
	b := NewBuilder(h.Name, h.Lib)
	for _, p := range h.Top.Ports {
		b.Port(p.Name, p.Dir)
	}
	for _, inst := range h.Top.Insts {
		conns := make(map[string]string, len(inst.Conns))
		for i, net := range inst.Conns {
			if net != nil {
				conns[inst.Cell.Pins[i].Name] = net.Name
			}
		}
		b.Inst(inst.Cell.Name, inst.Name, conns)
	}
	for _, blk := range h.Blocks {
		if err := flattenBlock(b, blk); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

func flattenBlock(b *Builder, blk *BlockInst) error {
	m := blk.Master
	for port := range blk.Binds {
		if m.PortByName(port) == nil {
			return fmt.Errorf("block %s: master %s has no port %q", blk.Name, m.Name, port)
		}
	}
	// Resolve every master net to a flat net name. Port nets take the
	// bound top net of their primary port; other attached ports become
	// feed-through BUFs driven from the primary.
	netName := make(map[string]string, len(m.Nets))
	type feed struct{ from, to string }
	var feeds []feed
	for _, n := range m.Nets {
		if len(n.Ports) == 0 {
			netName[n.Name] = blk.Name + "/" + n.Name
			continue
		}
		var ins, outs []*Port
		for _, p := range n.Ports {
			if p.Dir == In {
				ins = append(ins, p)
			} else {
				outs = append(outs, p)
			}
		}
		if len(ins) > 1 {
			return fmt.Errorf("block %s: master %s shorts input ports %q and %q",
				blk.Name, m.Name, ins[0].Name, ins[1].Name)
		}
		primary := ""
		rest := outs
		if len(ins) == 1 {
			primary = blk.BindOf(ins[0].Name)
		} else {
			primary = blk.BindOf(outs[0].Name)
			rest = outs[1:]
		}
		netName[n.Name] = primary
		for _, p := range rest {
			feeds = append(feeds, feed{from: primary, to: blk.BindOf(p.Name)})
		}
	}
	for _, inst := range m.Insts {
		conns := make(map[string]string, len(inst.Conns))
		for i, net := range inst.Conns {
			if net != nil {
				conns[inst.Cell.Pins[i].Name] = netName[net.Name]
			}
		}
		b.Inst(inst.Cell.Name, blk.Name+"/"+inst.Name, conns)
	}
	for i, f := range feeds {
		b.Inst("BUF", fmt.Sprintf("%s/__feed%d", blk.Name, i),
			map[string]string{"A": f.from, "Z": f.to})
	}
	return nil
}

// WriteVerilogHier renders a hierarchical design as structural Verilog:
// one module per distinct master (sorted by name) followed by the top
// module instantiating leaf cells and blocks. The rendering is
// deterministic, and ParseVerilogHier reads it back.
func WriteVerilogHier(h *HierDesign) string {
	var b strings.Builder
	for _, m := range h.Masters() {
		b.WriteString(WriteVerilog(m))
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "module %s (", h.Name)
	for i, p := range h.Top.Ports {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(escapeID(p.Name))
	}
	b.WriteString(");\n")
	for _, p := range h.Top.Ports {
		fmt.Fprintf(&b, "  %s %s;\n", p.Dir, escapeID(p.Name))
	}
	wires := map[string]bool{}
	for _, n := range h.Top.Nets {
		if h.Top.PortByName(n.Name) == nil {
			wires[n.Name] = true
		}
	}
	for _, blk := range h.Blocks {
		for _, p := range blk.Master.Ports {
			if n := blk.BindOf(p.Name); h.Top.PortByName(n) == nil {
				wires[n] = true
			}
		}
	}
	names := make([]string, 0, len(wires))
	for n := range wires {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  wire %s;\n", escapeID(n))
	}
	for _, inst := range h.Top.Insts {
		fmt.Fprintf(&b, "  %s %s (", inst.Cell.Name, escapeID(inst.Name))
		first := true
		for i, net := range inst.Conns {
			if net == nil {
				continue
			}
			if !first {
				b.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&b, ".%s(%s)", inst.Cell.Pins[i].Name, escapeID(net.Name))
		}
		b.WriteString(");\n")
	}
	for _, blk := range h.Blocks {
		fmt.Fprintf(&b, "  %s %s (", blk.Master.Name, escapeID(blk.Name))
		for i, p := range blk.Master.Ports {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, ".%s(%s)", escapeID(p.Name), escapeID(blk.BindOf(p.Name)))
		}
		b.WriteString(");\n")
	}
	b.WriteString("endmodule\n")
	return b.String()
}

// ParseVerilogHier parses hierarchical structural Verilog, keeping the
// top module's submodule instances as blocks instead of flattening
// them. Each distinct submodule elaborates standalone into a master
// Design (nested hierarchy below it flattens into the master); the top
// module's leaf cells and ports elaborate into the Top design. topName
// selects the top module; empty infers it like ParseVerilog.
func ParseVerilogHier(src string, lib *library.Library, topName string) (*HierDesign, error) {
	mods, err := parseModules(src)
	if err != nil {
		return nil, err
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("verilog: no modules found")
	}
	byName := make(map[string]*vmodule, len(mods))
	for _, m := range mods {
		if _, dup := byName[m.name]; dup {
			return nil, fmt.Errorf("verilog: duplicate module %q", m.name)
		}
		byName[m.name] = m
	}
	top := byName[topName]
	if topName == "" {
		instantiated := map[string]bool{}
		for _, m := range mods {
			for _, inst := range m.insts {
				instantiated[inst.module] = true
			}
		}
		var roots []*vmodule
		for _, m := range mods {
			if !instantiated[m.name] {
				roots = append(roots, m)
			}
		}
		if len(roots) != 1 {
			return nil, fmt.Errorf("verilog: cannot infer top module (%d candidates); pass a top name", len(roots))
		}
		top = roots[0]
	}
	if top == nil {
		return nil, fmt.Errorf("verilog: no module %q", topName)
	}

	// Elaborate each distinct submodule of the top as a standalone
	// master design.
	masters := map[string]*Design{}
	for _, inst := range top.insts {
		if lib.Cell(inst.module) != nil {
			continue
		}
		child, ok := byName[inst.module]
		if !ok {
			return nil, fmt.Errorf("verilog line %d: unknown cell or module %q", inst.line, inst.module)
		}
		if masters[inst.module] != nil {
			continue
		}
		me := &elaborator{lib: lib, modules: byName, slotName: []string{}, slotRank: []int{}, parent: []int{}}
		md, err := me.elaborate(child)
		if err != nil {
			return nil, fmt.Errorf("module %s: %w", inst.module, err)
		}
		masters[inst.module] = md
	}

	// Elaborate the top level alone: leaf cells and assigns as usual,
	// block instances recorded with their port-bit slots.
	e := &elaborator{lib: lib, modules: byName, slotName: []string{}, slotRank: []int{}, parent: []int{}}
	e.tie0, e.tie1 = -1, -1
	env := map[bitKey]int{}
	for _, pname := range top.ports {
		sig := top.signals[pname]
		if sig.dir < 0 {
			return nil, fmt.Errorf("verilog: top port %q has no direction", pname)
		}
		for _, bit := range sig.rng.bits() {
			flat := pname
			if bit >= 0 {
				flat = fmt.Sprintf("%s[%d]", pname, bit)
			}
			slot := e.newSlot(flat)
			env[bitKey{pname, bit}] = slot
			dir := In
			if sig.dir == 1 {
				dir = Out
			}
			e.topPorts = append(e.topPorts, flatPort{name: flat, dir: dir, slot: slot})
		}
	}
	for _, name := range top.sigDecl {
		sig := top.signals[name]
		for _, bit := range sig.rng.bits() {
			k := bitKey{name, bit}
			if _, bound := env[k]; bound {
				continue
			}
			flat := name
			if bit >= 0 {
				flat = fmt.Sprintf("%s[%d]", name, bit)
			}
			env[k] = e.newSlot(flat)
		}
	}
	for _, a := range top.assigns {
		lhs, err := e.exprSlots(top, "", env, a.lhs)
		if err != nil {
			return nil, err
		}
		rhs, err := e.exprSlots(top, "", env, a.rhs)
		if err != nil {
			return nil, err
		}
		if len(lhs) != len(rhs) {
			return nil, fmt.Errorf("verilog line %d: assign width mismatch %d vs %d", a.line, len(lhs), len(rhs))
		}
		for i := range lhs {
			if lhs[i] < 0 {
				return nil, fmt.Errorf("verilog line %d: assign to open bit", a.line)
			}
			if rhs[i] >= 0 {
				e.union(lhs[i], rhs[i])
			}
		}
	}
	type blockRec struct {
		name   string
		module string
		binds  map[string]int // master port bit name -> top slot
	}
	var blocks []blockRec
	for _, inst := range top.insts {
		if cell := lib.Cell(inst.module); cell != nil {
			if err := e.elabLeaf(top, "", env, inst, cell); err != nil {
				return nil, err
			}
			continue
		}
		child := byName[inst.module]
		rec := blockRec{name: inst.name, module: inst.module, binds: map[string]int{}}
		bind := func(portName string, expr vexpr) error {
			sig := child.signals[portName]
			if sig == nil {
				return fmt.Errorf("verilog line %d: module %q has no port %q", inst.line, child.name, portName)
			}
			slots, err := e.exprSlots(top, "", env, expr)
			if err != nil {
				return err
			}
			bits := sig.rng.bits()
			if len(slots) == 0 {
				return nil
			}
			if len(slots) != len(bits) {
				return fmt.Errorf("verilog line %d: port %q width %d connected to %d bits",
					inst.line, portName, len(bits), len(slots))
			}
			for i, bit := range bits {
				if slots[i] < 0 {
					continue
				}
				flat := portName
				if bit >= 0 {
					flat = fmt.Sprintf("%s[%d]", portName, bit)
				}
				rec.binds[flat] = slots[i]
			}
			return nil
		}
		if inst.pos != nil {
			if len(inst.pos) > len(child.ports) {
				return nil, fmt.Errorf("verilog line %d: %d positional connections for %d ports",
					inst.line, len(inst.pos), len(child.ports))
			}
			for i, expr := range inst.pos {
				if err := bind(child.ports[i], expr); err != nil {
					return nil, err
				}
			}
		} else {
			for _, c := range inst.named {
				if err := bind(c.pin, c.expr); err != nil {
					return nil, err
				}
			}
		}
		blocks = append(blocks, rec)
	}
	topDesign, err := e.materialize(top.name)
	if err != nil {
		return nil, err
	}
	// Resolve bind slots to the same net names materialize chose.
	rootName := map[int]string{}
	for _, p := range e.topPorts {
		rootName[e.find(p.slot)] = p.name
	}
	slotNet := func(slot int) string {
		r := e.find(slot)
		if n, ok := rootName[r]; ok {
			return n
		}
		return e.slotName[r]
	}
	h := &HierDesign{Name: top.name, Lib: lib, Top: topDesign}
	for _, rec := range blocks {
		bi := &BlockInst{Name: rec.name, Master: masters[rec.module], Binds: map[string]string{}}
		for port, slot := range rec.binds {
			bi.Binds[port] = slotNet(slot)
		}
		h.Blocks = append(h.Blocks, bi)
	}
	return h, nil
}
