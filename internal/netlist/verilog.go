package netlist

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"modemerge/internal/library"
)

// ParseVerilog parses a structural-Verilog subset and elaborates it into a
// flat Design. topName selects the top module; if empty, the single module
// that is never instantiated is chosen.
//
// Supported constructs: module/endmodule with either header-style or
// body-style port declarations, input/output/wire declarations with
// optional [msb:lsb] vectors, cell and module instances with named or
// positional connections, bit-selects, part-selects, concatenations,
// 1'b0/1'b1 tie literals, simple alias assigns (identifier to identifier),
// and // or /* */ comments. Hierarchy is flattened with '/'-joined names.
func ParseVerilog(src string, lib *library.Library, topName string) (*Design, error) {
	mods, err := parseModules(src)
	if err != nil {
		return nil, err
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("verilog: no modules found")
	}
	byName := make(map[string]*vmodule, len(mods))
	for _, m := range mods {
		if _, dup := byName[m.name]; dup {
			return nil, fmt.Errorf("verilog: duplicate module %q", m.name)
		}
		byName[m.name] = m
	}
	top := byName[topName]
	if topName == "" {
		instantiated := map[string]bool{}
		for _, m := range mods {
			for _, inst := range m.insts {
				instantiated[inst.module] = true
			}
		}
		var roots []*vmodule
		for _, m := range mods {
			if !instantiated[m.name] {
				roots = append(roots, m)
			}
		}
		if len(roots) != 1 {
			return nil, fmt.Errorf("verilog: cannot infer top module (%d candidates); pass a top name", len(roots))
		}
		top = roots[0]
	}
	if top == nil {
		return nil, fmt.Errorf("verilog: no module %q", topName)
	}
	e := &elaborator{lib: lib, modules: byName, slotName: []string{}, slotRank: []int{}, parent: []int{}}
	return e.elaborate(top)
}

// ---------- AST ----------

type vrange struct {
	vector   bool
	msb, lsb int
}

func (r vrange) width() int {
	if !r.vector {
		return 1
	}
	if r.msb >= r.lsb {
		return r.msb - r.lsb + 1
	}
	return r.lsb - r.msb + 1
}

// bits returns the bit indices msb-first.
func (r vrange) bits() []int {
	if !r.vector {
		return []int{-1}
	}
	var out []int
	if r.msb >= r.lsb {
		for i := r.msb; i >= r.lsb; i-- {
			out = append(out, i)
		}
	} else {
		for i := r.msb; i <= r.lsb; i++ {
			out = append(out, i)
		}
	}
	return out
}

type vsignal struct {
	name string
	rng  vrange
	dir  int // -1 wire, 0 input, 1 output
}

type vmodule struct {
	name    string
	line    int
	ports   []string // ordered port names
	signals map[string]*vsignal
	sigDecl []string // declaration order
	insts   []*vinst
	assigns []vassign
}

func (m *vmodule) declare(name string, rng vrange, dir int) {
	if s, ok := m.signals[name]; ok {
		// A port may be declared in the header list then given a direction
		// and range in the body.
		if dir >= 0 {
			s.dir = dir
		}
		if rng.vector {
			s.rng = rng
		}
		return
	}
	m.signals[name] = &vsignal{name: name, rng: rng, dir: dir}
	m.sigDecl = append(m.sigDecl, name)
}

type vinst struct {
	module string
	name   string
	line   int
	named  []vconn // named connections, or
	pos    []vexpr // positional connections
}

type vconn struct {
	pin  string
	expr vexpr
}

type vassign struct {
	lhs, rhs vexpr
	line     int
}

// vexpr is a connection expression.
type vexpr interface{ isExpr() }

type vexprEmpty struct{}
type vexprIdent struct{ name string }
type vexprBit struct {
	name string
	bit  int
}
type vexprSlice struct {
	name     string
	msb, lsb int
}
type vexprConst struct{ bits []byte } // msb-first, each 0 or 1
type vexprConcat struct{ parts []vexpr }

func (vexprEmpty) isExpr()  {}
func (vexprIdent) isExpr()  {}
func (vexprBit) isExpr()    {}
func (vexprSlice) isExpr()  {}
func (vexprConst) isExpr()  {}
func (vexprConcat) isExpr() {}

// ---------- tokenizer ----------

type vtok struct {
	text string
	line int
}

func vtokenize(src string) ([]vtok, error) {
	var toks []vtok
	line := 1
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, fmt.Errorf("verilog line %d: unterminated block comment", line)
			}
			i += 2
		case strings.IndexByte("()[]{},;.=:", c) >= 0:
			toks = append(toks, vtok{string(c), line})
			i++
		case c == '\\':
			// Escaped identifier: up to whitespace.
			j := i + 1
			for j < n && src[j] != ' ' && src[j] != '\t' && src[j] != '\n' && src[j] != '\r' {
				j++
			}
			toks = append(toks, vtok{src[i+1 : j], line})
			i = j
		default:
			j := i
			for j < n && isVlogWordChar(src[j]) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("verilog line %d: unexpected character %q", line, string(c))
			}
			toks = append(toks, vtok{src[i:j], line})
			i = j
		}
	}
	return toks, nil
}

func isVlogWordChar(c byte) bool {
	return c == '_' || c == '$' || c == '\'' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// ---------- parser ----------

type vparser struct {
	toks []vtok
	pos  int
}

func (p *vparser) errf(format string, args ...any) error {
	line := 0
	if p.pos < len(p.toks) {
		line = p.toks[p.pos].line
	} else if len(p.toks) > 0 {
		line = p.toks[len(p.toks)-1].line
	}
	return fmt.Errorf("verilog line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *vparser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos].text
	}
	return ""
}

func (p *vparser) next() (string, error) {
	if p.pos >= len(p.toks) {
		return "", p.errf("unexpected end of file")
	}
	t := p.toks[p.pos].text
	p.pos++
	return t, nil
}

func (p *vparser) expect(tok string) error {
	got, err := p.next()
	if err != nil {
		return err
	}
	if got != tok {
		p.pos--
		return p.errf("expected %q, got %q", tok, got)
	}
	return nil
}

func (p *vparser) accept(tok string) bool {
	if p.peek() == tok {
		p.pos++
		return true
	}
	return false
}

func parseModules(src string) ([]*vmodule, error) {
	toks, err := vtokenize(src)
	if err != nil {
		return nil, err
	}
	p := &vparser{toks: toks}
	var mods []*vmodule
	for p.pos < len(p.toks) {
		if err := p.expect("module"); err != nil {
			return nil, err
		}
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		mods = append(mods, m)
	}
	return mods, nil
}

func (p *vparser) parseModule() (*vmodule, error) {
	name, err := p.next()
	if err != nil {
		return nil, err
	}
	m := &vmodule{name: name, signals: map[string]*vsignal{}}
	if p.pos > 0 {
		m.line = p.toks[p.pos-1].line
	}
	if p.accept("(") {
		if err := p.parsePortList(m); err != nil {
			return nil, err
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t {
		case "endmodule":
			return m, nil
		case "input", "output", "wire":
			dir := -1
			if t == "input" {
				dir = 0
			} else if t == "output" {
				dir = 1
			}
			if err := p.parseDecl(m, dir); err != nil {
				return nil, err
			}
		case "assign":
			if err := p.parseAssign(m); err != nil {
				return nil, err
			}
		default:
			// Instance: <module> <name> ( conns ) ;
			if err := p.parseInst(m, t); err != nil {
				return nil, err
			}
		}
	}
}

// parsePortList handles both `(a, b, c)` and ANSI `(input clk, output [3:0] q)`.
func (p *vparser) parsePortList(m *vmodule) error {
	if p.accept(")") {
		return nil
	}
	dir := -1
	rng := vrange{}
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		switch t {
		case "input":
			dir, rng = 0, vrange{}
			continue
		case "output":
			dir, rng = 1, vrange{}
			continue
		case "wire":
			continue
		case "[":
			p.pos--
			r, err := p.parseRange()
			if err != nil {
				return err
			}
			rng = r
			continue
		}
		m.ports = append(m.ports, t)
		m.declare(t, rng, dir)
		if p.accept(")") {
			return nil
		}
		if err := p.expect(","); err != nil {
			return err
		}
	}
}

// parseRange parses [msb:lsb].
func (p *vparser) parseRange() (vrange, error) {
	if err := p.expect("["); err != nil {
		return vrange{}, err
	}
	msb, err := p.parseInt()
	if err != nil {
		return vrange{}, err
	}
	if err := p.expect(":"); err != nil {
		return vrange{}, err
	}
	lsb, err := p.parseInt()
	if err != nil {
		return vrange{}, err
	}
	if err := p.expect("]"); err != nil {
		return vrange{}, err
	}
	return vrange{vector: true, msb: msb, lsb: lsb}, nil
}

func (p *vparser) parseInt() (int, error) {
	t, err := p.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(t)
	if err != nil {
		p.pos--
		return 0, p.errf("expected integer, got %q", t)
	}
	return v, nil
}

// parseDecl parses the rest of `input|output|wire [range] a, b, c;`.
func (p *vparser) parseDecl(m *vmodule, dir int) error {
	rng := vrange{}
	if p.peek() == "[" {
		r, err := p.parseRange()
		if err != nil {
			return err
		}
		rng = r
	}
	for {
		name, err := p.next()
		if err != nil {
			return err
		}
		m.declare(name, rng, dir)
		t, err := p.next()
		if err != nil {
			return err
		}
		if t == ";" {
			return nil
		}
		if t != "," {
			p.pos--
			return p.errf("expected ',' or ';' in declaration, got %q", t)
		}
	}
}

func (p *vparser) parseAssign(m *vmodule) error {
	line := 0
	if p.pos > 0 {
		line = p.toks[p.pos-1].line
	}
	lhs, err := p.parseExpr()
	if err != nil {
		return err
	}
	if err := p.expect("="); err != nil {
		return err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	m.assigns = append(m.assigns, vassign{lhs: lhs, rhs: rhs, line: line})
	return nil
}

func (p *vparser) parseInst(m *vmodule, modName string) error {
	instName, err := p.next()
	if err != nil {
		return err
	}
	inst := &vinst{module: modName, name: instName}
	if p.pos > 0 {
		inst.line = p.toks[p.pos-1].line
	}
	if err := p.expect("("); err != nil {
		return err
	}
	if p.accept(")") {
		m.insts = append(m.insts, inst)
		return p.expect(";")
	}
	named := p.peek() == "."
	for {
		if named {
			if err := p.expect("."); err != nil {
				return err
			}
			pin, err := p.next()
			if err != nil {
				return err
			}
			if err := p.expect("("); err != nil {
				return err
			}
			var e vexpr = vexprEmpty{}
			if p.peek() != ")" {
				e, err = p.parseExpr()
				if err != nil {
					return err
				}
			}
			if err := p.expect(")"); err != nil {
				return err
			}
			inst.named = append(inst.named, vconn{pin: pin, expr: e})
		} else {
			var e vexpr = vexprEmpty{}
			if p.peek() != "," && p.peek() != ")" {
				var err error
				e, err = p.parseExpr()
				if err != nil {
					return err
				}
			}
			inst.pos = append(inst.pos, e)
		}
		if p.accept(")") {
			break
		}
		if err := p.expect(","); err != nil {
			return err
		}
	}
	m.insts = append(m.insts, inst)
	return p.expect(";")
}

// parseExpr parses a connection expression.
func (p *vparser) parseExpr() (vexpr, error) {
	if p.accept("{") {
		var parts []vexpr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
			if p.accept("}") {
				return vexprConcat{parts: parts}, nil
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
	}
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	// Sized literal like 1'b0, 4'b0101, 2'd3.
	if idx := strings.IndexByte(t, '\''); idx > 0 {
		width, err := strconv.Atoi(t[:idx])
		if err != nil || idx+1 >= len(t) {
			return nil, p.errf("bad literal %q", t)
		}
		base := t[idx+1]
		digits := t[idx+2:]
		var value uint64
		switch base {
		case 'b', 'B':
			value, err = strconv.ParseUint(digits, 2, 64)
		case 'd', 'D':
			value, err = strconv.ParseUint(digits, 10, 64)
		case 'h', 'H':
			value, err = strconv.ParseUint(digits, 16, 64)
		default:
			return nil, p.errf("bad literal base in %q", t)
		}
		if err != nil || width <= 0 || width > 64 {
			return nil, p.errf("bad literal %q", t)
		}
		bits := make([]byte, width)
		for i := 0; i < width; i++ {
			bits[width-1-i] = byte(value >> i & 1)
		}
		return vexprConst{bits: bits}, nil
	}
	if t == "" || !isIdentStart(t[0]) {
		p.pos--
		return nil, p.errf("expected expression, got %q", t)
	}
	if p.peek() != "[" {
		return vexprIdent{name: t}, nil
	}
	p.pos++ // '['
	a, err := p.parseInt()
	if err != nil {
		return nil, err
	}
	if p.accept(":") {
		b, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		return vexprSlice{name: t, msb: a, lsb: b}, nil
	}
	if err := p.expect("]"); err != nil {
		return nil, err
	}
	return vexprBit{name: t, bit: a}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// ---------- elaboration ----------

// bitKey names one bit of a declared signal within a module instance.
type bitKey struct {
	name string // signal name
	bit  int    // -1 for scalars
}

// elaborator flattens the module hierarchy into slots (electrical nodes)
// tracked by a union-find, then materializes a flat Design.
type elaborator struct {
	lib     *library.Library
	modules map[string]*vmodule

	parent   []int
	slotRank []int
	slotName []string // preferred flat name per slot

	leafInsts []flatInst
	tie0      int // slot of constant-0, -1 if unused
	tie1      int
	topPorts  []flatPort
}

type flatInst struct {
	cell  *library.Cell
	name  string
	conns []int // slot per cell pin, -1 unconnected
}

type flatPort struct {
	name string
	dir  PortDir
	slot int
}

func (e *elaborator) newSlot(name string) int {
	id := len(e.parent)
	e.parent = append(e.parent, id)
	e.slotRank = append(e.slotRank, 0)
	e.slotName = append(e.slotName, name)
	return id
}

func (e *elaborator) find(x int) int {
	for e.parent[x] != x {
		e.parent[x] = e.parent[e.parent[x]]
		x = e.parent[x]
	}
	return x
}

func (e *elaborator) union(a, b int) {
	ra, rb := e.find(a), e.find(b)
	if ra == rb {
		return
	}
	if e.slotRank[ra] < e.slotRank[rb] {
		ra, rb = rb, ra
	}
	e.parent[rb] = ra
	if e.slotRank[ra] == e.slotRank[rb] {
		e.slotRank[ra]++
	}
	// Prefer shorter (less hierarchical) names for the merged node.
	if better(e.slotName[rb], e.slotName[ra]) {
		e.slotName[ra] = e.slotName[rb]
	}
}

func better(a, b string) bool {
	da, db := strings.Count(a, "/"), strings.Count(b, "/")
	if da != db {
		return da < db
	}
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

func (e *elaborator) elaborate(top *vmodule) (*Design, error) {
	e.tie0, e.tie1 = -1, -1
	// Top-level ports: one slot per bit.
	env := map[bitKey]int{}
	for _, pname := range top.ports {
		sig := top.signals[pname]
		if sig.dir < 0 {
			return nil, fmt.Errorf("verilog: top port %q has no direction", pname)
		}
		for _, bit := range sig.rng.bits() {
			flat := pname
			if bit >= 0 {
				flat = fmt.Sprintf("%s[%d]", pname, bit)
			}
			slot := e.newSlot(flat)
			env[bitKey{pname, bit}] = slot
			dir := In
			if sig.dir == 1 {
				dir = Out
			}
			e.topPorts = append(e.topPorts, flatPort{name: flat, dir: dir, slot: slot})
		}
	}
	if err := e.elabModule(top, "", env, 0); err != nil {
		return nil, err
	}
	return e.materialize(top.name)
}

const maxDepth = 64

// elabModule walks one module instance. prefix is the hierarchical path
// ("" for top, otherwise "a/b/"), env maps port bits to parent slots.
func (e *elaborator) elabModule(m *vmodule, prefix string, env map[bitKey]int, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("verilog: hierarchy deeper than %d (recursive instantiation of %q?)", maxDepth, m.name)
	}
	// Create slots for all local signal bits not bound by ports.
	for _, name := range m.sigDecl {
		sig := m.signals[name]
		for _, bit := range sig.rng.bits() {
			k := bitKey{name, bit}
			if _, bound := env[k]; bound {
				continue
			}
			flat := prefix + name
			if bit >= 0 {
				flat = fmt.Sprintf("%s%s[%d]", prefix, name, bit)
			}
			env[k] = e.newSlot(flat)
		}
	}
	// Aliases.
	for _, a := range m.assigns {
		lhs, err := e.exprSlots(m, prefix, env, a.lhs)
		if err != nil {
			return err
		}
		rhs, err := e.exprSlots(m, prefix, env, a.rhs)
		if err != nil {
			return err
		}
		if len(lhs) != len(rhs) {
			return fmt.Errorf("verilog line %d: assign width mismatch %d vs %d", a.line, len(lhs), len(rhs))
		}
		for i := range lhs {
			if lhs[i] < 0 {
				return fmt.Errorf("verilog line %d: assign to open bit", a.line)
			}
			if rhs[i] < 0 {
				continue
			}
			e.union(lhs[i], rhs[i])
		}
	}
	// Instances.
	for _, inst := range m.insts {
		if cell := e.lib.Cell(inst.module); cell != nil {
			if err := e.elabLeaf(m, prefix, env, inst, cell); err != nil {
				return err
			}
			continue
		}
		child, ok := e.modules[inst.module]
		if !ok {
			return fmt.Errorf("verilog line %d: unknown cell or module %q", inst.line, inst.module)
		}
		childEnv := map[bitKey]int{}
		bind := func(portName string, expr vexpr) error {
			sig := child.signals[portName]
			if sig == nil {
				return fmt.Errorf("verilog line %d: module %q has no port %q", inst.line, child.name, portName)
			}
			slots, err := e.exprSlots(m, prefix, env, expr)
			if err != nil {
				return err
			}
			bits := sig.rng.bits()
			if len(slots) == 0 { // unconnected
				return nil
			}
			if len(slots) != len(bits) {
				return fmt.Errorf("verilog line %d: port %q width %d connected to %d bits",
					inst.line, portName, len(bits), len(slots))
			}
			for i, bit := range bits {
				if slots[i] >= 0 {
					childEnv[bitKey{portName, bit}] = slots[i]
				}
			}
			return nil
		}
		if inst.pos != nil {
			if len(inst.pos) > len(child.ports) {
				return fmt.Errorf("verilog line %d: %d positional connections for %d ports",
					inst.line, len(inst.pos), len(child.ports))
			}
			for i, expr := range inst.pos {
				if err := bind(child.ports[i], expr); err != nil {
					return err
				}
			}
		} else {
			for _, c := range inst.named {
				if err := bind(c.pin, c.expr); err != nil {
					return err
				}
			}
		}
		if err := e.elabModule(child, prefix+inst.name+"/", childEnv, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func (e *elaborator) elabLeaf(m *vmodule, prefix string, env map[bitKey]int, inst *vinst, cell *library.Cell) error {
	fi := flatInst{cell: cell, name: prefix + inst.name, conns: make([]int, len(cell.Pins))}
	for i := range fi.conns {
		fi.conns[i] = -1
	}
	bind := func(pinName string, expr vexpr) error {
		idx := -1
		for i, p := range cell.Pins {
			if p.Name == pinName {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("verilog line %d: cell %s has no pin %q", inst.line, cell.Name, pinName)
		}
		slots, err := e.exprSlots(m, prefix, env, expr)
		if err != nil {
			return err
		}
		if len(slots) == 0 {
			return nil
		}
		if len(slots) != 1 {
			return fmt.Errorf("verilog line %d: cell pin %s/%s connected to %d bits",
				inst.line, cell.Name, pinName, len(slots))
		}
		fi.conns[idx] = slots[0]
		return nil
	}
	if inst.pos != nil {
		if len(inst.pos) > len(cell.Pins) {
			return fmt.Errorf("verilog line %d: %d positional connections for cell %s with %d pins",
				inst.line, len(inst.pos), cell.Name, len(cell.Pins))
		}
		for i, expr := range inst.pos {
			if err := bind(cell.Pins[i].Name, expr); err != nil {
				return err
			}
		}
	} else {
		for _, c := range inst.named {
			if err := bind(c.pin, c.expr); err != nil {
				return err
			}
		}
	}
	e.leafInsts = append(e.leafInsts, fi)
	return nil
}

// exprSlots resolves a connection expression to slot ids (msb-first).
// Empty expressions resolve to nil; constant bits resolve to tie slots.
func (e *elaborator) exprSlots(m *vmodule, prefix string, env map[bitKey]int, expr vexpr) ([]int, error) {
	switch x := expr.(type) {
	case vexprEmpty:
		return nil, nil
	case vexprIdent:
		sig := m.signals[x.name]
		if sig == nil {
			return nil, fmt.Errorf("verilog: module %q: undeclared signal %q", m.name, x.name)
		}
		var out []int
		for _, bit := range sig.rng.bits() {
			out = append(out, env[bitKey{x.name, bit}])
		}
		return out, nil
	case vexprBit:
		sig := m.signals[x.name]
		if sig == nil {
			return nil, fmt.Errorf("verilog: module %q: undeclared signal %q", m.name, x.name)
		}
		if !sig.rng.vector {
			return nil, fmt.Errorf("verilog: bit-select on scalar %q", x.name)
		}
		slot, ok := env[bitKey{x.name, x.bit}]
		if !ok {
			return nil, fmt.Errorf("verilog: bit %s[%d] out of range", x.name, x.bit)
		}
		return []int{slot}, nil
	case vexprSlice:
		sig := m.signals[x.name]
		if sig == nil {
			return nil, fmt.Errorf("verilog: module %q: undeclared signal %q", m.name, x.name)
		}
		sub := vrange{vector: true, msb: x.msb, lsb: x.lsb}
		var out []int
		for _, bit := range sub.bits() {
			slot, ok := env[bitKey{x.name, bit}]
			if !ok {
				return nil, fmt.Errorf("verilog: bit %s[%d] out of range", x.name, bit)
			}
			out = append(out, slot)
		}
		return out, nil
	case vexprConst:
		var out []int
		for _, b := range x.bits {
			if b == 0 {
				if e.tie0 < 0 {
					e.tie0 = e.newSlot("__tie0")
				}
				out = append(out, e.tie0)
			} else {
				if e.tie1 < 0 {
					e.tie1 = e.newSlot("__tie1")
				}
				out = append(out, e.tie1)
			}
		}
		return out, nil
	case vexprConcat:
		var out []int
		for _, p := range x.parts {
			s, err := e.exprSlots(m, prefix, env, p)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("verilog: unsupported expression %T", expr)
	}
}

// materialize converts slots and leaf instances into a flat Design.
func (e *elaborator) materialize(topName string) (*Design, error) {
	b := NewBuilder(topName, e.lib)
	// Resolve final names per slot root: prefer top port names.
	rootName := map[int]string{}
	for _, p := range e.topPorts {
		if _, ok := rootName[e.find(p.slot)]; !ok {
			rootName[e.find(p.slot)] = p.name
		}
	}
	name := func(slot int) string {
		r := e.find(slot)
		if n, ok := rootName[r]; ok {
			return n
		}
		rootName[r] = e.slotName[r]
		return e.slotName[r]
	}
	// Ports first so the port nets adopt port names. Several ports may
	// alias to one slot (a pass-through module); the first port owns the
	// net name and later ports attach to the same net. Illegal shorts
	// (two shorted input ports = two drivers) are left for Validate.
	for _, p := range e.topPorts {
		if got := name(p.slot); got != p.name {
			b.PortOnNet(p.name, p.dir, got)
		} else {
			b.Port(p.name, p.dir)
		}
	}
	// Tie cells.
	if e.tie0 >= 0 {
		b.Inst("TIELO", "__tielo", map[string]string{"Z": name(e.tie0)})
	}
	if e.tie1 >= 0 {
		b.Inst("TIEHI", "__tiehi", map[string]string{"Z": name(e.tie1)})
	}
	for _, fi := range e.leafInsts {
		conns := map[string]string{}
		for i, slot := range fi.conns {
			if slot < 0 {
				continue
			}
			conns[fi.cell.Pins[i].Name] = name(slot)
		}
		b.Inst(fi.cell.Name, fi.name, conns)
	}
	return b.Build()
}

// WriteVerilog renders a flat design as a single structural-Verilog
// module, suitable for re-parsing. Net and instance names keep their
// hierarchical '/' characters via escaped identifiers.
func WriteVerilog(d *Design) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (", d.Name)
	for i, p := range d.Ports {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(escapeID(p.Name))
	}
	b.WriteString(");\n")
	for _, p := range d.Ports {
		fmt.Fprintf(&b, "  %s %s;\n", p.Dir, escapeID(p.Name))
	}
	names := make([]string, 0, len(d.Nets))
	for _, n := range d.Nets {
		if d.portByName[n.Name] == nil {
			names = append(names, n.Name)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  wire %s;\n", escapeID(n))
	}
	// A net carrying several ports (a pass-through) renders as assigns
	// from the net's name-owning port to the others, so re-parsing
	// reconstructs the aliasing.
	for _, n := range d.Nets {
		for _, p := range n.Ports {
			if p.Name != n.Name {
				fmt.Fprintf(&b, "  assign %s = %s;\n", escapeID(p.Name), escapeID(n.Name))
			}
		}
	}
	for _, inst := range d.Insts {
		fmt.Fprintf(&b, "  %s %s (", inst.Cell.Name, escapeID(inst.Name))
		first := true
		for i, net := range inst.Conns {
			if net == nil {
				continue
			}
			if !first {
				b.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&b, ".%s(%s)", inst.Cell.Pins[i].Name, escapeID(net.Name))
		}
		b.WriteString(");\n")
	}
	b.WriteString("endmodule\n")
	return b.String()
}

func escapeID(name string) string {
	plain := true
	for i := 0; i < len(name); i++ {
		if !isVlogWordChar(name[i]) || name[i] == '\'' {
			plain = false
			break
		}
	}
	if plain && len(name) > 0 && isIdentStart(name[0]) {
		return name
	}
	return "\\" + name + " "
}
