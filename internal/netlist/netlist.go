// Package netlist models a flat gate-level design: top-level ports,
// library-cell instances and the nets connecting them. Designs come from
// the builder API, from the structural-Verilog-subset parser (see
// ParseVerilog), or from the synthetic generator.
//
// Hierarchical Verilog input is elaborated and flattened; flat instance
// and net names join hierarchy levels with '/'. Pins are referenced as
// "instance/PIN".
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"modemerge/internal/library"
)

// PortDir is the direction of a top-level port.
type PortDir int8

// Port directions.
const (
	In PortDir = iota
	Out
)

func (d PortDir) String() string {
	if d == Out {
		return "output"
	}
	return "input"
}

// Port is a top-level design port. Each port is attached to exactly one
// net.
type Port struct {
	Name  string
	Dir   PortDir
	Net   *Net
	Index int // position in Design.Ports
}

// Instance is one placed library cell.
type Instance struct {
	Name  string
	Cell  *library.Cell
	Conns []*Net // one per cell pin, by pin index; nil = unconnected
	Index int    // position in Design.Insts
}

// PinName returns "inst/PIN" for the pin at index i.
func (inst *Instance) PinName(i int) string {
	return inst.Name + "/" + inst.Cell.Pins[i].Name
}

// Conn identifies one instance pin attached to a net.
type Conn struct {
	Inst *Instance
	Pin  int // index into Inst.Cell.Pins
}

// Net is an electrical node connecting instance pins and ports.
type Net struct {
	Name  string
	Index int // position in Design.Nets
	Conns []Conn
	Ports []*Port
}

// Fanout returns the number of input pins and output ports the net feeds.
func (n *Net) Fanout() int {
	count := 0
	for _, c := range n.Conns {
		if c.Inst.Cell.Pins[c.Pin].Dir == library.Input {
			count++
		}
	}
	for _, p := range n.Ports {
		if p.Dir == Out {
			count++
		}
	}
	return count
}

// LoadCap returns the total pin capacitance of the net's sinks.
func (n *Net) LoadCap() float64 {
	total := 0.0
	for _, c := range n.Conns {
		p := c.Inst.Cell.Pins[c.Pin]
		if p.Dir == library.Input {
			total += p.Cap
		}
	}
	return total
}

// Design is a flat elaborated design.
type Design struct {
	Name  string
	Lib   *library.Library
	Ports []*Port
	Insts []*Instance
	Nets  []*Net

	portByName map[string]*Port
	instByName map[string]*Instance
	netByName  map[string]*Net
}

// PortByName returns the named port, or nil.
func (d *Design) PortByName(name string) *Port { return d.portByName[name] }

// InstByName returns the named instance, or nil.
func (d *Design) InstByName(name string) *Instance { return d.instByName[name] }

// NetByName returns the named net, or nil.
func (d *Design) NetByName(name string) *Net { return d.netByName[name] }

// FindPin resolves "inst/PIN" to the instance and pin index. It returns an
// error for unknown instances or pins.
func (d *Design) FindPin(name string) (*Instance, int, error) {
	slash := strings.LastIndexByte(name, '/')
	if slash < 0 {
		return nil, 0, fmt.Errorf("pin name %q has no '/'", name)
	}
	inst := d.instByName[name[:slash]]
	if inst == nil {
		return nil, 0, fmt.Errorf("no instance %q", name[:slash])
	}
	pinName := name[slash+1:]
	for i, p := range inst.Cell.Pins {
		if p.Name == pinName {
			return inst, i, nil
		}
	}
	return nil, 0, fmt.Errorf("instance %q (cell %s) has no pin %q", inst.Name, inst.Cell.Name, pinName)
}

// Stats summarizes a design.
type Stats struct {
	Cells      int
	Sequential int
	Nets       int
	Ports      int
}

// Stats computes design statistics.
func (d *Design) Stats() Stats {
	s := Stats{Cells: len(d.Insts), Nets: len(d.Nets), Ports: len(d.Ports)}
	for _, inst := range d.Insts {
		if inst.Cell.Sequential {
			s.Sequential++
		}
	}
	return s
}

// Validate checks structural sanity: no multiply-driven nets, every net
// has a name, connections are direction-consistent. Floating input pins
// are reported in the returned warnings rather than as errors (tie cells
// are not mandatory in test designs).
func (d *Design) Validate() (warnings []string, err error) {
	for _, n := range d.Nets {
		drivers := 0
		for _, c := range n.Conns {
			if c.Inst.Cell.Pins[c.Pin].Dir == library.Output {
				drivers++
			}
		}
		for _, p := range n.Ports {
			if p.Dir == In {
				drivers++
			}
		}
		if drivers > 1 {
			return warnings, fmt.Errorf("net %q has %d drivers", n.Name, drivers)
		}
		if drivers == 0 && n.Fanout() > 0 {
			warnings = append(warnings, fmt.Sprintf("net %q is undriven", n.Name))
		}
	}
	for _, inst := range d.Insts {
		for i, net := range inst.Conns {
			if net == nil && inst.Cell.Pins[i].Dir == library.Input {
				warnings = append(warnings, fmt.Sprintf("pin %s is unconnected", inst.PinName(i)))
			}
		}
	}
	return warnings, nil
}

// Builder assembles a flat design programmatically. Nets are created on
// first reference; declaring a port creates (or adopts) the same-named
// net.
type Builder struct {
	d    *Design
	errs []error
}

// NewBuilder starts a design with the given name and library.
func NewBuilder(name string, lib *library.Library) *Builder {
	return &Builder{d: &Design{
		Name:       name,
		Lib:        lib,
		portByName: make(map[string]*Port),
		instByName: make(map[string]*Instance),
		netByName:  make(map[string]*Net),
	}}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Net returns the named net, creating it if needed.
func (b *Builder) Net(name string) *Net {
	if n, ok := b.d.netByName[name]; ok {
		return n
	}
	n := &Net{Name: name, Index: len(b.d.Nets)}
	b.d.Nets = append(b.d.Nets, n)
	b.d.netByName[name] = n
	return n
}

// Port declares a top-level port attached to the same-named net.
func (b *Builder) Port(name string, dir PortDir) *Port {
	if _, dup := b.d.portByName[name]; dup {
		b.errf("duplicate port %q", name)
		return b.d.portByName[name]
	}
	p := &Port{Name: name, Dir: dir, Net: b.Net(name), Index: len(b.d.Ports)}
	p.Net.Ports = append(p.Net.Ports, p)
	b.d.Ports = append(b.d.Ports, p)
	b.d.portByName[name] = p
	return p
}

// Inst places a cell instance with pin→net connections given by name.
// Unlisted pins are left unconnected.
func (b *Builder) Inst(cellName, instName string, conns map[string]string) *Instance {
	cell := b.d.Lib.Cell(cellName)
	if cell == nil {
		b.errf("instance %q: unknown cell %q", instName, cellName)
		return nil
	}
	if _, dup := b.d.instByName[instName]; dup {
		b.errf("duplicate instance %q", instName)
		return nil
	}
	inst := &Instance{Name: instName, Cell: cell, Conns: make([]*Net, len(cell.Pins)), Index: len(b.d.Insts)}
	// Connect in cell pin order, never conns map order: net creation
	// order and per-net Conns order must be deterministic — the timing
	// graph fingerprint (the design half of every incremental cache key)
	// hashes them in construction order.
	matched := 0
	for idx, p := range cell.Pins {
		netName, ok := conns[p.Name]
		if !ok {
			continue
		}
		matched++
		net := b.Net(netName)
		inst.Conns[idx] = net
		net.Conns = append(net.Conns, Conn{Inst: inst, Pin: idx})
	}
	if matched != len(conns) {
		unknown := make([]string, 0, len(conns))
		for pinName := range conns {
			if cell.Pin(pinName) == nil {
				unknown = append(unknown, pinName)
			}
		}
		sort.Strings(unknown)
		for _, pinName := range unknown {
			b.errf("instance %q: cell %s has no pin %q", instName, cellName, pinName)
		}
	}
	b.d.Insts = append(b.d.Insts, inst)
	b.d.instByName[instName] = inst
	return inst
}

// Build finalizes and validates the design.
func (b *Builder) Build() (*Design, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if _, err := b.d.Validate(); err != nil {
		return nil, err
	}
	return b.d, nil
}

// MustBuild is Build that panics on error; for tests and static examples.
func (b *Builder) MustBuild() *Design {
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d
}

// SortedInstNames returns all instance names sorted, for deterministic
// iteration in reports.
func (d *Design) SortedInstNames() []string {
	names := make([]string, len(d.Insts))
	for i, inst := range d.Insts {
		names[i] = inst.Name
	}
	sort.Strings(names)
	return names
}

// PinNet returns the name of the net attached to pin pinName of a
// previously placed instance.
func (b *Builder) PinNet(instName, pinName string) (string, error) {
	inst, ok := b.d.instByName[instName]
	if !ok {
		return "", fmt.Errorf("PinNet: no instance %q", instName)
	}
	for i, p := range inst.Cell.Pins {
		if p.Name == pinName {
			if inst.Conns[i] == nil {
				return "", fmt.Errorf("PinNet: %s/%s is unconnected", instName, pinName)
			}
			return inst.Conns[i].Name, nil
		}
	}
	return "", fmt.Errorf("PinNet: cell %s has no pin %q", inst.Cell.Name, pinName)
}

// MustPinNet is PinNet that panics on error; for generators.
func (b *Builder) MustPinNet(instName, pinName string) string {
	n, err := b.PinNet(instName, pinName)
	if err != nil {
		panic(err)
	}
	return n
}
