package netlist

import (
	"strings"
	"testing"

	"modemerge/internal/library"
)

func buildSmall(t *testing.T) *Design {
	t.Helper()
	b := NewBuilder("small", library.Default())
	b.Port("clk", In)
	b.Port("d", In)
	b.Port("q", Out)
	b.Inst("DFF", "r1", map[string]string{"CP": "clk", "D": "d", "Q": "n1"})
	b.Inst("INV", "inv1", map[string]string{"A": "n1", "Z": "n2"})
	b.Inst("DFF", "r2", map[string]string{"CP": "clk", "D": "n2", "Q": "q"})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuilderBasics(t *testing.T) {
	d := buildSmall(t)
	if got := d.Stats(); got.Cells != 3 || got.Sequential != 2 || got.Ports != 3 {
		t.Errorf("stats = %+v", got)
	}
	if d.InstByName("inv1") == nil || d.PortByName("clk") == nil || d.NetByName("n1") == nil {
		t.Fatal("lookups failed")
	}
	inst, pin, err := d.FindPin("inv1/A")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Name != "inv1" || inst.Cell.Pins[pin].Name != "A" {
		t.Errorf("FindPin returned %s pin %d", inst.Name, pin)
	}
	if _, _, err := d.FindPin("nosuch/A"); err == nil {
		t.Error("expected error for unknown instance")
	}
	if _, _, err := d.FindPin("inv1/NOPE"); err == nil {
		t.Error("expected error for unknown pin")
	}
	if _, _, err := d.FindPin("noslash"); err == nil {
		t.Error("expected error for missing slash")
	}
}

func TestNetConnectivity(t *testing.T) {
	d := buildSmall(t)
	clk := d.NetByName("clk")
	if clk.Fanout() != 2 {
		t.Errorf("clk fanout = %d, want 2", clk.Fanout())
	}
	if clk.LoadCap() <= 0 {
		t.Error("clk load cap must be positive")
	}
	n1 := d.NetByName("n1")
	drivers := 0
	for _, c := range n1.Conns {
		if c.Inst.Cell.Pins[c.Pin].Dir == library.Output {
			drivers++
		}
	}
	if drivers != 1 {
		t.Errorf("n1 has %d drivers", drivers)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad", library.Default())
	b.Port("p", In)
	b.Port("p", In)
	if _, err := b.Build(); err == nil {
		t.Error("duplicate port accepted")
	}

	b2 := NewBuilder("bad2", library.Default())
	b2.Inst("NOSUCHCELL", "x", nil)
	if _, err := b2.Build(); err == nil {
		t.Error("unknown cell accepted")
	}

	b3 := NewBuilder("bad3", library.Default())
	b3.Inst("INV", "a", map[string]string{"NOPE": "n"})
	if _, err := b3.Build(); err == nil {
		t.Error("unknown pin accepted")
	}

	b4 := NewBuilder("bad4", library.Default())
	b4.Inst("INV", "a", map[string]string{"Z": "n"})
	b4.Inst("INV", "b", map[string]string{"Z": "n"})
	if _, err := b4.Build(); err == nil {
		t.Error("multiply driven net accepted")
	}

	b5 := NewBuilder("bad5", library.Default())
	b5.Inst("INV", "a", map[string]string{"A": "x", "Z": "y"})
	b5.Inst("INV", "a", map[string]string{"A": "y", "Z": "z"})
	if _, err := b5.Build(); err == nil {
		t.Error("duplicate instance accepted")
	}
}

func TestValidateWarnings(t *testing.T) {
	b := NewBuilder("warn", library.Default())
	b.Inst("AND2", "g", map[string]string{"A": "in", "Z": "out"}) // B unconnected, in undriven
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	warnings, err := d.Validate()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(warnings, "\n")
	if !strings.Contains(joined, "g/B") {
		t.Errorf("expected unconnected-pin warning, got %q", joined)
	}
	if !strings.Contains(joined, "undriven") {
		t.Errorf("expected undriven-net warning, got %q", joined)
	}
}

const flatVerilog = `
// flat example
module top (clk, d, q);
  input clk, d;
  output q;
  wire n1, n2;
  DFF r1 (.CP(clk), .D(d), .Q(n1));
  INV inv1 (.A(n1), .Z(n2));
  DFF r2 (.CP(clk), .D(n2), .Q(q));
endmodule
`

func TestParseVerilogFlat(t *testing.T) {
	d, err := ParseVerilog(flatVerilog, library.Default(), "top")
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Cells != 3 || s.Sequential != 2 || s.Ports != 3 {
		t.Errorf("stats = %+v", s)
	}
	if d.InstByName("inv1") == nil {
		t.Error("inv1 missing")
	}
	// r1/Q and inv1/A share a net.
	r1 := d.InstByName("r1")
	inv1 := d.InstByName("inv1")
	var qNet, aNet *Net
	for i, p := range r1.Cell.Pins {
		if p.Name == "Q" {
			qNet = r1.Conns[i]
		}
	}
	for i, p := range inv1.Cell.Pins {
		if p.Name == "A" {
			aNet = inv1.Conns[i]
		}
	}
	if qNet == nil || qNet != aNet {
		t.Error("r1/Q and inv1/A not connected")
	}
}

const hierVerilog = `
module stage (input ck, input din, output dout);
  wire m;
  DFF r (.CP(ck), .D(din), .Q(m));
  INV i (.A(m), .Z(dout));
endmodule

module top (input clk, input d, output q);
  wire mid;
  stage s1 (.ck(clk), .din(d), .dout(mid));
  stage s2 (.ck(clk), .din(mid), .dout(q));
endmodule
`

func TestParseVerilogHierarchy(t *testing.T) {
	d, err := ParseVerilog(hierVerilog, library.Default(), "")
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Cells != 4 || s.Sequential != 2 {
		t.Errorf("stats = %+v", s)
	}
	if d.InstByName("s1/r") == nil || d.InstByName("s2/i") == nil {
		t.Error("flattened instance names missing")
	}
	// s1/i/Z connects to s2/r/D via net "mid".
	mid := d.NetByName("mid")
	if mid == nil {
		t.Fatal("net mid missing")
	}
	var pins []string
	for _, c := range mid.Conns {
		pins = append(pins, c.Inst.PinName(c.Pin))
	}
	joined := strings.Join(pins, ",")
	if !strings.Contains(joined, "s1/i/Z") || !strings.Contains(joined, "s2/r/D") {
		t.Errorf("net mid connects %q", joined)
	}
}

const vectorVerilog = `
module top (input clk, input [3:0] d, output [3:0] q);
  wire [3:0] n;
  DFF r0 (.CP(clk), .D(d[0]), .Q(n[0]));
  DFF r1 (.CP(clk), .D(d[1]), .Q(n[1]));
  DFF r2 (.CP(clk), .D(d[2]), .Q(n[2]));
  DFF r3 (.CP(clk), .D(d[3]), .Q(n[3]));
  assign q = n;
endmodule
`

func TestParseVerilogVectors(t *testing.T) {
	d, err := ParseVerilog(vectorVerilog, library.Default(), "top")
	if err != nil {
		t.Fatal(err)
	}
	if d.PortByName("d[2]") == nil || d.PortByName("q[0]") == nil {
		t.Fatal("vector ports not expanded")
	}
	// assign q = n merges each q[i] with n[i]; r0/Q must reach port q[0].
	r0 := d.InstByName("r0")
	var qNet *Net
	for i, p := range r0.Cell.Pins {
		if p.Name == "Q" {
			qNet = r0.Conns[i]
		}
	}
	found := false
	for _, p := range qNet.Ports {
		if p.Name == "q[0]" {
			found = true
		}
	}
	if !found {
		t.Errorf("r0/Q net %q does not reach port q[0]", qNet.Name)
	}
}

const tieVerilog = `
module top (input clk, output q);
  wire n;
  AND2 g (.A(1'b1), .B(clk), .Z(n));
  DFF r (.CP(n), .D(1'b0), .Q(q));
endmodule
`

func TestParseVerilogTies(t *testing.T) {
	d, err := ParseVerilog(tieVerilog, library.Default(), "top")
	if err != nil {
		t.Fatal(err)
	}
	if d.InstByName("__tiehi") == nil || d.InstByName("__tielo") == nil {
		t.Error("tie cells not created")
	}
}

const posVerilog = `
module top (a, z);
  input a;
  output z;
  INV i1 (a, z);
endmodule
`

func TestParseVerilogPositional(t *testing.T) {
	d, err := ParseVerilog(posVerilog, library.Default(), "top")
	if err != nil {
		t.Fatal(err)
	}
	i1 := d.InstByName("i1")
	if i1.Conns[0] == nil || i1.Conns[0].Name != "a" {
		t.Error("positional connection to A failed")
	}
}

const concatVerilog = `
module pair (input [1:0] din, output [1:0] dout);
  BUF b0 (.A(din[0]), .Z(dout[0]));
  BUF b1 (.A(din[1]), .Z(dout[1]));
endmodule

module top (input x, input y, output [1:0] z);
  pair p (.din({x, y}), .dout(z));
endmodule
`

func TestParseVerilogConcat(t *testing.T) {
	d, err := ParseVerilog(concatVerilog, library.Default(), "top")
	if err != nil {
		t.Fatal(err)
	}
	// {x,y}: x is msb → din[1]=x, din[0]=y. b1 reads din[1]=x.
	b1 := d.InstByName("p/b1")
	if b1.Conns[0].Name != "x" {
		t.Errorf("p/b1/A connected to %q, want x", b1.Conns[0].Name)
	}
	b0 := d.InstByName("p/b0")
	if b0.Conns[0].Name != "y" {
		t.Errorf("p/b0/A connected to %q, want y", b0.Conns[0].Name)
	}
}

func TestParseVerilogErrors(t *testing.T) {
	cases := []string{
		``,
		`module m (a); input a;`, // no endmodule
		`module m (a); input a; NOSUCH g (.A(a)); endmodule`,
		`module m (a); input a; INV g (.NOPE(a)); endmodule`,
		`module m (a); input a; INV g (.A(undeclared)); endmodule`,
		`module m (); wire w; assign w = {w, w}; endmodule`, // width mismatch
		`module m (a); input [1:0] a; INV g (.A(a)); endmodule`,
		`module a (); b i (); endmodule
		 module b (); a i (); endmodule`, // recursion, and no single top
	}
	for _, src := range cases {
		if _, err := ParseVerilog(src, library.Default(), ""); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseVerilogRecursionDepth(t *testing.T) {
	src := `module a (); a i (); endmodule`
	if _, err := ParseVerilog(src, library.Default(), "a"); err == nil {
		t.Error("recursive instantiation must error")
	}
}

func TestWriteVerilogRoundTrip(t *testing.T) {
	orig, err := ParseVerilog(hierVerilog, library.Default(), "")
	if err != nil {
		t.Fatal(err)
	}
	text := WriteVerilog(orig)
	re, err := ParseVerilog(text, library.Default(), "top")
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if re.Stats() != orig.Stats() {
		t.Errorf("stats changed: %+v vs %+v", re.Stats(), orig.Stats())
	}
	for _, inst := range orig.Insts {
		got := re.InstByName(inst.Name)
		if got == nil {
			t.Errorf("instance %q lost", inst.Name)
			continue
		}
		if got.Cell.Name != inst.Cell.Name {
			t.Errorf("instance %q cell %q != %q", inst.Name, got.Cell.Name, inst.Cell.Name)
		}
	}
}

func TestBlockComments(t *testing.T) {
	src := `/* header
	comment */ module top (input a, output z);
	INV i (.A(a), .Z(z)); /* inline */
	endmodule`
	if _, err := ParseVerilog(src, library.Default(), "top"); err != nil {
		t.Fatal(err)
	}
}

func TestPinNet(t *testing.T) {
	b := NewBuilder("p", library.Default())
	b.Port("clk", In)
	b.Inst("DFF", "r", map[string]string{"CP": "clk", "D": "din", "Q": "q"})
	net, err := b.PinNet("r", "Q")
	if err != nil || net != "q" {
		t.Errorf("PinNet = %q, %v", net, err)
	}
	if _, err := b.PinNet("nosuch", "Q"); err == nil {
		t.Error("unknown instance accepted")
	}
	if _, err := b.PinNet("r", "NOPE"); err == nil {
		t.Error("unknown pin accepted")
	}
	b.Inst("INV", "i", map[string]string{"Z": "z"})
	if _, err := b.PinNet("i", "A"); err == nil {
		t.Error("unconnected pin accepted")
	}
	if got := b.MustPinNet("r", "D"); got != "din" {
		t.Errorf("MustPinNet = %q", got)
	}
}

func TestWriteVerilogEscapedIdentifiers(t *testing.T) {
	// Hierarchical names with '/' and bus bits with '[]' must survive a
	// write/parse round trip via escaped identifiers.
	b := NewBuilder("esc", library.Default())
	b.Port("clk", In)
	b.Port("d[0]", In)
	b.Inst("DFF", "u_core/r1", map[string]string{"CP": "clk", "D": "d[0]", "Q": "core/q[3]"})
	b.Inst("INV", "u_core/i1", map[string]string{"A": "core/q[3]", "Z": "out_n"})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	text := WriteVerilog(d)
	re, err := ParseVerilog(text, library.Default(), "esc")
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if re.InstByName("u_core/r1") == nil {
		t.Error("escaped instance name lost")
	}
	if re.PortByName("d[0]") == nil {
		t.Error("escaped port name lost")
	}
	if re.NetByName("core/q[3]") == nil {
		t.Error("escaped net name lost")
	}
}

func TestStatsAndSortedNames(t *testing.T) {
	d := buildSmall(t)
	names := d.SortedInstNames()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}
