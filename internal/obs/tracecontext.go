package obs

import (
	"encoding/hex"
	"fmt"
	"math/rand/v2"
)

// TraceID is the 128-bit identity one trace carries across processes —
// the W3C Trace Context trace-id. The zero value is invalid per the
// spec and doubles as "no trace id assigned".
type TraceID [16]byte

// SpanID is the 64-bit identity of one span within a trace — the W3C
// Trace Context parent-id. The zero value is invalid.
type SpanID [8]byte

// IsValid reports whether the id is non-zero (the W3C validity rule).
func (t TraceID) IsValid() bool { return t != TraceID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsValid reports whether the id is non-zero.
func (s SpanID) IsValid() bool { return s != SpanID{} }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random valid trace id. math/rand/v2's global
// generator is seeded from OS entropy and safe for concurrent use;
// trace ids need uniqueness, not unpredictability.
func NewTraceID() TraceID {
	var t TraceID
	for !t.IsValid() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(a >> (8 * i))
			t[8+i] = byte(b >> (8 * i))
		}
	}
	return t
}

// NewSpanID returns a random valid span id.
func NewSpanID() SpanID {
	var s SpanID
	for !s.IsValid() {
		v := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(v >> (8 * i))
		}
	}
	return s
}

// ParseTraceID decodes 32 hex digits into a TraceID.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("trace id %q: want 32 hex digits", s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("trace id %q: %w", s, err)
	}
	if !t.IsValid() {
		return TraceID{}, fmt.Errorf("trace id %q: all-zero ids are invalid", s)
	}
	return t, nil
}

// ParseSpanID decodes 16 hex digits into a SpanID.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("span id %q: want 16 hex digits", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, fmt.Errorf("span id %q: %w", s, err)
	}
	if !id.IsValid() {
		return SpanID{}, fmt.Errorf("span id %q: all-zero ids are invalid", s)
	}
	return id, nil
}

// ParseTraceparent parses a W3C Trace Context traceparent header
// (version 00: "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>").
// Unknown future versions are accepted when they carry the version-00
// prefix fields, per the spec's forward-compatibility rule.
func ParseTraceparent(header string) (TraceID, SpanID, error) {
	if len(header) < 55 {
		return TraceID{}, SpanID{}, fmt.Errorf("traceparent %q: too short", header)
	}
	if header[2] != '-' || header[35] != '-' || header[52] != '-' {
		return TraceID{}, SpanID{}, fmt.Errorf("traceparent %q: malformed delimiters", header)
	}
	version := header[:2]
	if version == "ff" {
		return TraceID{}, SpanID{}, fmt.Errorf("traceparent %q: version ff is forbidden", header)
	}
	if version == "00" && len(header) != 55 {
		return TraceID{}, SpanID{}, fmt.Errorf("traceparent %q: version 00 must be exactly 55 bytes", header)
	}
	traceID, err := ParseTraceID(header[3:35])
	if err != nil {
		return TraceID{}, SpanID{}, err
	}
	spanID, err := ParseSpanID(header[36:52])
	if err != nil {
		return TraceID{}, SpanID{}, err
	}
	if _, err := hex.DecodeString(header[53:55]); err != nil {
		return TraceID{}, SpanID{}, fmt.Errorf("traceparent %q: bad flags", header)
	}
	return traceID, spanID, nil
}

// FormatTraceparent renders a version-00 traceparent header with the
// sampled flag set (everything this process traces is recorded).
func FormatTraceparent(traceID TraceID, spanID SpanID) string {
	return "00-" + traceID.String() + "-" + spanID.String() + "-01"
}
