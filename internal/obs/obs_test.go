package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// AssertWellFormed fails the test on the first structural violation in
// the span forest.
func AssertWellFormed(t *testing.T, roots []*SpanView) {
	t.Helper()
	if err := CheckWellFormed(roots); err != nil {
		t.Fatalf("trace not well-formed: %v", err)
	}
}

func TestSpanTreeNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("job")
	a := root.Child("prelim")
	a.Add("clocks_merged", 3)
	a.Add("clocks_merged", 2)
	a.Finish()
	b := root.Child("refine")
	c := b.Child("pass1")
	c.Finish()
	b.Finish()
	root.Finish()

	roots := tr.Tree()
	if len(roots) != 1 || roots[0].Name != "job" {
		t.Fatalf("roots = %+v, want single job root", roots)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Name != "prelim" || kids[1].Name != "refine" {
		t.Fatalf("children = %+v, want [prelim refine]", kids)
	}
	if kids[0].Counters["clocks_merged"] != 5 {
		t.Errorf("counter = %d, want 5", kids[0].Counters["clocks_merged"])
	}
	if len(kids[1].Children) != 1 || kids[1].Children[0].Name != "pass1" {
		t.Fatalf("refine children = %+v, want [pass1]", kids[1].Children)
	}
	AssertWellFormed(t, roots)
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer must produce nil spans")
	}
	// None of these may panic.
	s.Add("c", 1)
	s2 := s.Child("y")
	s2.Finish()
	s.Finish()
	if tree := tr.Tree(); tree != nil {
		t.Fatalf("nil tracer tree = %v, want nil", tree)
	}
	if tot := tr.StageTotals(); tot != nil {
		t.Fatalf("nil tracer totals = %v, want nil", tot)
	}
}

func TestUnfinishedSpanSurvivesTree(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("job")
	root.Child("open") // never finished
	roots := tr.Tree()
	if len(roots) != 1 || len(roots[0].Children) != 1 {
		t.Fatalf("tree = %+v", roots)
	}
	child := roots[0].Children[0]
	if child.Finished || child.DurationNS != 0 {
		t.Errorf("unfinished child = %+v, want Finished=false dur=0", child)
	}
}

func TestDoubleFinishKeepsFirstEnd(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("x")
	s.Finish()
	first := tr.Tree()[0].DurationNS
	time.Sleep(2 * time.Millisecond)
	s.Finish()
	if again := tr.Tree()[0].DurationNS; again != first {
		t.Errorf("second Finish changed duration: %d -> %d", first, again)
	}
}

func TestStageTotals(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("job")
	for i := 0; i < 3; i++ {
		s := root.Child("stage")
		s.Finish()
	}
	root.Finish()
	tot := tr.StageTotals()
	if tot["stage"].Count != 3 {
		t.Errorf("stage count = %d, want 3", tot["stage"].Count)
	}
	if tot["job"].Count != 1 {
		t.Errorf("job count = %d, want 1", tot["job"].Count)
	}
}

// TestConcurrentSpans hammers span creation/finish from many goroutines
// (run under -race in CI) and asserts the resulting forest is well
// formed.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("job")
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := root.Child("worker")
				s.Add("iter", 1)
				c := s.Child("inner")
				c.Finish()
				s.Finish()
			}
		}(g)
	}
	wg.Wait()
	root.Finish()
	roots := tr.Tree()
	AssertWellFormed(t, roots)
	n := 0
	var count func(vs []*SpanView)
	count = func(vs []*SpanView) {
		for _, v := range vs {
			n++
			count(v.Children)
		}
	}
	count(roots)
	if want := 1 + 16*50*2; n != want {
		t.Errorf("span count = %d, want %d", n, want)
	}
}

func TestSpanViewJSONRoundTrip(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("job")
	s.Add("n", 7)
	s.Finish()
	data, err := json.Marshal(tr.Tree())
	if err != nil {
		t.Fatal(err)
	}
	var back []*SpanView
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Counters["n"] != 7 {
		t.Fatalf("round trip = %s", data)
	}
}

func TestExplainText(t *testing.T) {
	e := &Explain{
		Merged: "func+test",
		Records: []Provenance{
			{Stage: "prelim/clock_union", Rule: "§3.1.1 clock union", Action: ActionRename,
				Constraint: "create_clock TCLK -> TCLK_1", Modes: []string{"test"},
				Detail: "name collision"},
			{Stage: "clock_refine", Rule: "§3.1.8 clock stop insertion", Action: ActionInsert,
				Constraint: "set_clock_sense -stop_propagation", Clocks: []string{"TCLK"},
				Pins: []string{"mux1/Z"}, Detail: "no individual mode propagates the clock here"},
		},
	}
	text := e.Text()
	for _, want := range []string{
		"merged mode func+test (2 records)",
		"[prelim/clock_union]",
		"[clock_refine]",
		"rename",
		"insert",
		"§3.1.8",
		"mux1/Z",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain text missing %q:\n%s", want, text)
		}
	}
}

func TestJoinBounded(t *testing.T) {
	if got := joinBounded([]string{"a", "b", "c"}, 2); got != "a b …+1" {
		t.Errorf("joinBounded = %q", got)
	}
	if got := joinBounded([]string{"a"}, 2); got != "a" {
		t.Errorf("joinBounded = %q", got)
	}
}
