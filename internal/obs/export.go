package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// SpanRecord is the flat, export-ready form of one finished span: the
// OTLP span fields (hex ids, unix-nano bounds, attributes) plus this
// tracer's domain counters. Records are self-contained — a collector
// can join them across processes on TraceID alone.
type SpanRecord struct {
	TraceID           string      `json:"traceId"`
	SpanID            string      `json:"spanId"`
	ParentSpanID      string      `json:"parentSpanId,omitempty"`
	Name              string      `json:"name"`
	StartTimeUnixNano int64       `json:"startTimeUnixNano"`
	EndTimeUnixNano   int64       `json:"endTimeUnixNano"`
	Attributes        []Attribute `json:"attributes,omitempty"`
}

// Attribute is one OTLP-style key/value: exactly one of the value
// fields is set.
type Attribute struct {
	Key   string         `json:"key"`
	Value AttributeValue `json:"value"`
}

// AttributeValue carries a string or integer value, OTLP-flavored.
type AttributeValue struct {
	StringValue string `json:"stringValue,omitempty"`
	IntValue    int64  `json:"intValue,omitempty"`
}

// Records snapshots the tracer's finished spans as flat export records,
// in span-start order. Unfinished spans are skipped — they will appear
// in a later snapshot once finished, so export after the root span is
// done. AllocBytes and the counters ride along as intValue attributes.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	traceID := t.traceID.String()
	parentSID := make(map[int64]SpanID, len(spans))
	for _, s := range spans {
		parentSID[s.id] = s.sid
	}
	out := make([]SpanRecord, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		if !s.finished {
			s.mu.Unlock()
			continue
		}
		r := SpanRecord{
			TraceID:           traceID,
			SpanID:            s.sid.String(),
			Name:              s.name,
			StartTimeUnixNano: s.start.UnixNano(),
			EndTimeUnixNano:   s.end.UnixNano(),
		}
		if p, ok := parentSID[s.parent]; ok && s.parent != s.id {
			r.ParentSpanID = p.String()
		}
		keys := make([]string, 0, len(s.attrs))
		for k := range s.attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			r.Attributes = append(r.Attributes, Attribute{Key: k, Value: AttributeValue{StringValue: s.attrs[k]}})
		}
		if alloc := int64(s.endAlloc - s.startAlloc); alloc != 0 {
			r.Attributes = append(r.Attributes, Attribute{Key: "alloc_bytes", Value: AttributeValue{IntValue: alloc}})
		}
		ckeys := make([]string, 0, len(s.counters))
		for k := range s.counters {
			ckeys = append(ckeys, k)
		}
		sort.Strings(ckeys)
		for _, k := range ckeys {
			r.Attributes = append(r.Attributes, Attribute{Key: "counter." + k, Value: AttributeValue{IntValue: s.counters[k]}})
		}
		s.mu.Unlock()
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].StartTimeUnixNano < out[j].StartTimeUnixNano
	})
	return out
}

// SpanExporter receives finished span batches — one batch per traced
// operation. Implementations must be safe for concurrent use; export
// happens off the merge hot path (after a job finishes), so a slow
// exporter delays nothing but its own caller.
type SpanExporter interface {
	ExportSpans(records []SpanRecord) error
}

// FileExporter appends span records to one file as NDJSON: one
// OTLP-flavored JSON object per line, so traces from many jobs (and
// many processes sharing the file via O_APPEND) interleave without
// framing. A nil *FileExporter is a no-op exporter.
type FileExporter struct {
	mu sync.Mutex
	f  *os.File
}

// NewFileExporter opens (creating or appending) the NDJSON trace file.
func NewFileExporter(path string) (*FileExporter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace export file: %w", err)
	}
	return &FileExporter{f: f}, nil
}

// ExportSpans writes one line per record. The batch is marshaled before
// the lock so concurrent exporters contend only on the write.
func (e *FileExporter) ExportSpans(records []SpanRecord) error {
	if e == nil || len(records) == 0 {
		return nil
	}
	buf := make([]byte, 0, 256*len(records))
	for _, r := range records {
		line, err := json.Marshal(r)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err := e.f.Write(buf)
	return err
}

// Close closes the underlying file.
func (e *FileExporter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.f.Close()
}
