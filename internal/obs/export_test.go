package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if !id.IsValid() {
		t.Fatal("NewTraceID returned the zero id")
	}
	parsed, err := ParseTraceID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != id {
		t.Errorf("round trip: %s != %s", parsed, id)
	}
	if _, err := ParseTraceID(strings.Repeat("0", 32)); err == nil {
		t.Error("all-zero trace id accepted")
	}
	if _, err := ParseTraceID("abc"); err == nil {
		t.Error("short trace id accepted")
	}
	if _, err := ParseTraceID(strings.Repeat("zz", 16)); err == nil {
		t.Error("non-hex trace id accepted")
	}
}

func TestSpanIDRoundTrip(t *testing.T) {
	id := NewSpanID()
	if !id.IsValid() {
		t.Fatal("NewSpanID returned the zero id")
	}
	parsed, err := ParseSpanID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != id {
		t.Errorf("round trip: %s != %s", parsed, id)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	traceID, spanID := NewTraceID(), NewSpanID()
	header := FormatTraceparent(traceID, spanID)
	if len(header) != 55 {
		t.Fatalf("traceparent %q is %d bytes, want 55", header, len(header))
	}
	gotTrace, gotSpan, err := ParseTraceparent(header)
	if err != nil {
		t.Fatal(err)
	}
	if gotTrace != traceID || gotSpan != spanID {
		t.Errorf("round trip: got %s/%s want %s/%s", gotTrace, gotSpan, traceID, spanID)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-abc",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // forbidden version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
	} {
		if _, _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
	// A future version with trailing members still parses (forward
	// compatibility).
	if _, _, err := ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-future"); err != nil {
		t.Errorf("future-version traceparent rejected: %v", err)
	}
}

func TestTracerCarriesTraceID(t *testing.T) {
	id := NewTraceID()
	tr := NewTracerWithID(id)
	if tr.TraceID() != id {
		t.Errorf("tracer trace id = %s, want %s", tr.TraceID(), id)
	}
	if !NewTracer().TraceID().IsValid() {
		t.Error("NewTracer has no valid trace id")
	}
	if NewTracerWithID(TraceID{}).TraceID() == (TraceID{}) {
		t.Error("zero trace id not replaced with a fresh one")
	}
	var nilTracer *Tracer
	if nilTracer.TraceID().IsValid() {
		t.Error("nil tracer reports a valid trace id")
	}
	if nilTracer.Records() != nil {
		t.Error("nil tracer records non-nil")
	}
}

func TestRecordsFlattenSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("job")
	root.SetAttr("design", "quick")
	child := root.Child("parse")
	child.Add("modes", 2)
	child.Finish()
	open := root.Child("still_running")
	_ = open
	root.Finish()

	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (unfinished span excluded)", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
		if r.TraceID != tr.TraceID().String() {
			t.Errorf("record %s has trace id %s, want %s", r.Name, r.TraceID, tr.TraceID())
		}
		if r.SpanID == "" || r.StartTimeUnixNano <= 0 || r.EndTimeUnixNano < r.StartTimeUnixNano {
			t.Errorf("record %s has bad identity/timing: %+v", r.Name, r)
		}
	}
	if byName["parse"].ParentSpanID != byName["job"].SpanID {
		t.Errorf("parse parent = %s, want job span %s", byName["parse"].ParentSpanID, byName["job"].SpanID)
	}
	attrs := map[string]AttributeValue{}
	for _, a := range byName["job"].Attributes {
		attrs[a.Key] = a.Value
	}
	if attrs["design"].StringValue != "quick" {
		t.Errorf("job attrs = %v, want design=quick", byName["job"].Attributes)
	}
	var sawCounter bool
	for _, a := range byName["parse"].Attributes {
		if a.Key == "counter.modes" && a.Value.IntValue == 2 {
			sawCounter = true
		}
	}
	if !sawCounter {
		t.Errorf("parse counters missing from attributes: %v", byName["parse"].Attributes)
	}
}

func TestFileExporterNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	exp, err := NewFileExporter(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer()
	root := tr.Start("job")
	root.Child("parse").Finish()
	root.Finish()
	if err := exp.ExportSpans(tr.Records()); err != nil {
		t.Fatal(err)
	}
	// A second batch appends.
	tr2 := NewTracer()
	tr2.Start("job").Finish()
	if err := exp.ExportSpans(tr2.Records()); err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	traceIDs := map[string]int{}
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var r SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d is not a span record: %v", lines, err)
		}
		traceIDs[r.TraceID]++
	}
	if lines != 3 {
		t.Errorf("exported %d lines, want 3", lines)
	}
	if traceIDs[tr.TraceID().String()] != 2 || traceIDs[tr2.TraceID().String()] != 1 {
		t.Errorf("trace id distribution = %v", traceIDs)
	}
}

func TestSpanViewCarriesIdentity(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("job")
	root.SetAttr("k", "v")
	child := root.Child("parse")
	child.Finish()
	root.Finish()
	tree := tr.Tree()
	if len(tree) != 1 {
		t.Fatalf("roots = %d", len(tree))
	}
	r := tree[0]
	if r.SpanID == "" || r.StartUnixNS == 0 || r.EndUnixNS == 0 {
		t.Errorf("root view missing identity/timestamps: %+v", r)
	}
	if r.Attrs["k"] != "v" {
		t.Errorf("root attrs = %v", r.Attrs)
	}
	if len(r.Children) != 1 || r.Children[0].ParentSpanID != r.SpanID {
		t.Errorf("child parent span id not linked: %+v", r.Children)
	}
}
