package obs

import (
	"fmt"
	"strings"
)

// Provenance actions: what happened to the constraint.
const (
	ActionInsert    = "insert"    // constraint added to the merged mode
	ActionDrop      = "drop"      // constraint of an individual mode not carried over
	ActionKeep      = "keep"      // constraint carried into the merged mode as-is
	ActionUniquify  = "uniquify"  // subset exception rewritten with a clock anchor
	ActionRename    = "rename"    // clock renamed during the union
	ActionTranslate = "translate" // constraint rewritten into a different command
)

// Provenance explains one constraint decision of the merge flow: which
// stage and paper rule produced it, what it did, and which clocks, pins
// and modes triggered it. The merged mode's explain report is the ordered
// list of these records.
type Provenance struct {
	// Stage is the flow stage, e.g. "prelim/clock_union" or "clock_refine".
	Stage string `json:"stage"`
	// Rule cites the paper rule, e.g. "§3.1.8 clock stop insertion".
	Rule string `json:"rule"`
	// Action is one of the Action* constants.
	Action string `json:"action"`
	// Constraint is the rendered SDC command (or a short description for
	// dropped constraints).
	Constraint string `json:"constraint"`
	// Clocks, Pins and Modes name the triggering objects, when relevant.
	// Clock names are in the merged namespace.
	Clocks []string `json:"clocks,omitempty"`
	Pins   []string `json:"pins,omitempty"`
	Modes  []string `json:"modes,omitempty"`
	// Detail is the human explanation of why.
	Detail string `json:"detail,omitempty"`
}

// Explain is the structured explain report of one merged mode.
type Explain struct {
	Merged  string       `json:"merged"`
	Records []Provenance `json:"records"`
}

// maxListedPins bounds pin lists in the text rendering; the JSON form
// always carries the full list.
const maxListedPins = 8

func joinBounded(items []string, max int) string {
	if len(items) <= max {
		return strings.Join(items, " ")
	}
	return strings.Join(items[:max], " ") + fmt.Sprintf(" …+%d", len(items)-max)
}

// Text renders the report for humans: records grouped by stage in first-
// appearance order, one line per record.
func (e *Explain) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explain: merged mode %s (%d records)\n", e.Merged, len(e.Records))
	var stages []string
	byStage := map[string][]Provenance{}
	for _, r := range e.Records {
		if _, ok := byStage[r.Stage]; !ok {
			stages = append(stages, r.Stage)
		}
		byStage[r.Stage] = append(byStage[r.Stage], r)
	}
	for _, stage := range stages {
		fmt.Fprintf(&b, "[%s]\n", stage)
		for _, r := range byStage[stage] {
			fmt.Fprintf(&b, "  %-9s %s", r.Action, r.Constraint)
			var ctx []string
			if len(r.Clocks) > 0 {
				ctx = append(ctx, "clocks: "+joinBounded(r.Clocks, maxListedPins))
			}
			if len(r.Pins) > 0 {
				ctx = append(ctx, "pins: "+joinBounded(r.Pins, maxListedPins))
			}
			if len(r.Modes) > 0 {
				ctx = append(ctx, "modes: "+joinBounded(r.Modes, maxListedPins))
			}
			if len(ctx) > 0 {
				fmt.Fprintf(&b, "  {%s}", strings.Join(ctx, "; "))
			}
			if r.Detail != "" {
				fmt.Fprintf(&b, "\n            (%s: %s)", r.Rule, r.Detail)
			} else if r.Rule != "" {
				fmt.Fprintf(&b, "\n            (%s)", r.Rule)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
