package obs

import "fmt"

// CheckWellFormed validates a span forest: every span is finished with a
// non-negative duration, children start no earlier than their parent and
// end no later than it, and sibling order is monotonic in start time.
// Orphan spans cannot occur in a Tree() result (unknown parents surface
// as roots), so any structural surprise here is a tracer bug. Returns
// the first violation found, nil when the forest is well formed.
func CheckWellFormed(roots []*SpanView) error {
	var walk func(v *SpanView, parent *SpanView) error
	walk = func(v, parent *SpanView) error {
		if !v.Finished {
			return fmt.Errorf("span %d (%s) not finished", v.ID, v.Name)
		}
		if v.DurationNS < 0 {
			return fmt.Errorf("span %d (%s) has negative duration %d", v.ID, v.Name, v.DurationNS)
		}
		if parent != nil {
			if v.StartNS < parent.StartNS {
				return fmt.Errorf("span %d (%s) starts at %d before parent %d (%s) at %d",
					v.ID, v.Name, v.StartNS, parent.ID, parent.Name, parent.StartNS)
			}
			if v.StartNS+v.DurationNS > parent.StartNS+parent.DurationNS {
				return fmt.Errorf("span %d (%s) ends after parent %d (%s)",
					v.ID, v.Name, parent.ID, parent.Name)
			}
		}
		prev := int64(-1)
		for _, c := range v.Children {
			if c.StartNS < prev {
				return fmt.Errorf("children of span %d (%s) out of start order", v.ID, v.Name)
			}
			prev = c.StartNS
			if err := walk(c, v); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, nil); err != nil {
			return err
		}
	}
	return nil
}
