package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// DurationBuckets are the default latency histogram bounds in seconds,
// spanning sub-millisecond parse steps to multi-minute merge jobs.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe
// calls. Bounds are inclusive upper limits; an implicit +Inf bucket
// catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending bounds
// (DurationBuckets when none are given).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough copy for serving: counts are
// read bucket by bucket, so a snapshot taken under concurrent writes can
// be off by in-flight observations but never corrupt.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // per-bucket, Counts[len(Bounds)] = +Inf
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Series is one sample of a counter or gauge family: label key/value
// pairs (k1, v1, k2, v2, …) plus the value.
type Series struct {
	Labels []string
	Value  float64
}

// HistSeries is one histogram of a histogram family.
type HistSeries struct {
	Labels []string
	Snap   HistogramSnapshot
}

// PromWriter renders metric families in the Prometheus text exposition
// format (version 0.0.4). Write errors are sticky; check Err once at the
// end.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Counter writes one counter family.
func (p *PromWriter) Counter(name, help string, series ...Series) {
	p.header(name, help, "counter")
	for _, s := range series {
		p.printf("%s%s %s\n", name, renderLabels(s.Labels), formatValue(s.Value))
	}
}

// Gauge writes one gauge family.
func (p *PromWriter) Gauge(name, help string, series ...Series) {
	p.header(name, help, "gauge")
	for _, s := range series {
		p.printf("%s%s %s\n", name, renderLabels(s.Labels), formatValue(s.Value))
	}
}

// Histogram writes one histogram family with cumulative buckets, _sum
// and _count per series.
func (p *PromWriter) Histogram(name, help string, series ...HistSeries) {
	p.header(name, help, "histogram")
	for _, s := range series {
		cum := uint64(0)
		for i, bound := range s.Snap.Bounds {
			cum += s.Snap.Counts[i]
			p.printf("%s_bucket%s %d\n", name,
				renderLabels(append(append([]string(nil), s.Labels...), "le", formatValue(bound))), cum)
		}
		if n := len(s.Snap.Bounds); n < len(s.Snap.Counts) {
			cum += s.Snap.Counts[n]
		}
		p.printf("%s_bucket%s %d\n", name,
			renderLabels(append(append([]string(nil), s.Labels...), "le", "+Inf")), cum)
		p.printf("%s_sum%s %s\n", name, renderLabels(s.Labels), formatValue(s.Snap.Sum))
		p.printf("%s_count%s %d\n", name, renderLabels(s.Labels), s.Snap.Count)
	}
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}
