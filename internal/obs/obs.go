// Package obs is the in-process observability substrate: a lightweight
// span/trace API for instrumenting the merge flow (wall time, heap
// allocation deltas, domain counters per stage), a Prometheus
// text-exposition writer with histogram support, and the provenance model
// behind explain reports. It depends only on the standard library and is
// designed so a nil Tracer or Span disables instrumentation at the call
// site with near-zero cost — production code never branches on "is
// tracing on".
package obs

import (
	"runtime/metrics"
	"sort"
	"sync"
	"time"
)

// heapAllocs reads the cumulative heap allocation counter. The sample
// slice is allocated per call so concurrent spans never share state; one
// small allocation per span boundary is far below the noise floor of the
// stages being measured.
func heapAllocs() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	return s[0].Value.Uint64()
}

// Tracer collects the spans of one traced operation (one merge job, one
// CLI run). All methods are safe for concurrent use and safe on a nil
// receiver, in which case every derived Span is nil and all recording is
// a no-op.
type Tracer struct {
	traceID TraceID // identity the whole trace shares; set at construction
	mu      sync.Mutex
	spans   []*Span
	nextID  int64
	origin  time.Time // start of the earliest span; zero until first Start
}

// NewTracer returns an empty tracer with a fresh random trace id.
func NewTracer() *Tracer { return &Tracer{traceID: NewTraceID()} }

// NewTracerWithID returns an empty tracer continuing the given trace —
// the id a /v2 request carried in its traceparent header, so one trace
// id follows a merge from the submitting client through every stage.
// An invalid (zero) id falls back to a fresh random one.
func NewTracerWithID(id TraceID) *Tracer {
	if !id.IsValid() {
		id = NewTraceID()
	}
	return &Tracer{traceID: id}
}

// TraceID returns the trace's 128-bit identity (zero on a nil tracer).
func (t *Tracer) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.traceID
}

// Start opens a root span. Finish it like any other span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0)
}

func (t *Tracer) newSpan(name string, parent int64) *Span {
	now := time.Now()
	s := &Span{
		tracer:     t,
		parent:     parent,
		name:       name,
		sid:        NewSpanID(),
		start:      now,
		startAlloc: heapAllocs(),
	}
	t.mu.Lock()
	t.nextID++
	s.id = t.nextID
	if t.origin.IsZero() {
		t.origin = now
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span is one timed stage. Counters accumulate domain quantities (clocks
// renamed, false paths added, …); attributes carry string-valued
// identity (the merged mode's name, the design). All methods are
// nil-safe.
type Span struct {
	tracer *Tracer
	id     int64
	parent int64
	name   string
	sid    SpanID
	start  time.Time

	startAlloc uint64

	mu       sync.Mutex
	counters map[string]int64
	attrs    map[string]string
	finished bool
	end      time.Time
	endAlloc uint64
}

// SpanID returns the span's 64-bit identity (zero on a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.sid
}

// Child opens a sub-span of s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.newSpan(name, s.id)
}

// Add accumulates a domain counter on the span.
func (s *Span) Add(counter string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = map[string]int64{}
	}
	s.counters[counter] += delta
	s.mu.Unlock()
}

// SetAttr records a string-valued attribute on the span. Last write per
// key wins.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Finish closes the span, recording its end time and allocation delta.
// Finishing twice keeps the first end.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	alloc := heapAllocs()
	s.mu.Lock()
	if !s.finished {
		s.finished = true
		s.end = time.Now()
		s.endAlloc = alloc
	}
	s.mu.Unlock()
}

// SpanView is the exported, JSON-friendly form of one span. AllocBytes is
// the process-wide heap allocation delta over the span's lifetime, so
// concurrently running spans each see the sum of all goroutines' work —
// an upper bound, exact only for serial stages.
type SpanView struct {
	ID           int64             `json:"id"`
	SpanID       string            `json:"span_id,omitempty"`
	ParentSpanID string            `json:"parent_span_id,omitempty"`
	Name         string            `json:"name"`
	StartNS      int64             `json:"start_ns"` // relative to the trace origin
	StartUnixNS  int64             `json:"start_unix_ns,omitempty"`
	EndUnixNS    int64             `json:"end_unix_ns,omitempty"`
	DurationNS   int64             `json:"duration_ns"`
	AllocBytes   int64             `json:"alloc_bytes"`
	Finished     bool              `json:"finished"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Counters     map[string]int64  `json:"counters,omitempty"`
	Children     []*SpanView       `json:"children,omitempty"`
}

// Tree snapshots the span forest: root spans in start order with children
// nested. Spans whose parent is unknown surface as roots so nothing is
// silently dropped. Safe to call while spans are still being recorded;
// unfinished spans report Finished=false with a zero duration.
func (t *Tracer) Tree() []*SpanView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	origin := t.origin
	t.mu.Unlock()

	views := make(map[int64]*SpanView, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		v := &SpanView{
			ID:          s.id,
			SpanID:      s.sid.String(),
			Name:        s.name,
			StartNS:     s.start.Sub(origin).Nanoseconds(),
			StartUnixNS: s.start.UnixNano(),
			Finished:    s.finished,
		}
		if s.finished {
			v.DurationNS = s.end.Sub(s.start).Nanoseconds()
			v.EndUnixNS = s.end.UnixNano()
			v.AllocBytes = int64(s.endAlloc - s.startAlloc)
		}
		if len(s.counters) > 0 {
			v.Counters = make(map[string]int64, len(s.counters))
			for k, c := range s.counters {
				v.Counters[k] = c
			}
		}
		if len(s.attrs) > 0 {
			v.Attrs = make(map[string]string, len(s.attrs))
			for k, a := range s.attrs {
				v.Attrs[k] = a
			}
		}
		s.mu.Unlock()
		views[v.ID] = v
	}
	var roots []*SpanView
	for _, s := range spans {
		v := views[s.id]
		if parent, ok := views[s.parent]; ok && s.parent != s.id {
			v.ParentSpanID = parent.SpanID
			parent.Children = append(parent.Children, v)
		} else {
			roots = append(roots, v)
		}
	}
	order := func(vs []*SpanView) {
		sort.Slice(vs, func(i, j int) bool {
			if vs[i].StartNS != vs[j].StartNS {
				return vs[i].StartNS < vs[j].StartNS
			}
			return vs[i].ID < vs[j].ID
		})
	}
	var rec func(vs []*SpanView)
	rec = func(vs []*SpanView) {
		order(vs)
		for _, v := range vs {
			rec(v.Children)
		}
	}
	rec(roots)
	return roots
}

// StageTotal aggregates all spans sharing one name.
type StageTotal struct {
	Count      int64 `json:"count"`
	TotalNS    int64 `json:"total_ns"`
	AllocBytes int64 `json:"alloc_bytes"`
}

// StageTotals folds the (finished) spans of the trace into per-name
// aggregates — the per-stage breakdown consumed by the benchmark
// artifact.
func (t *Tracer) StageTotals() map[string]StageTotal {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	out := map[string]StageTotal{}
	for _, s := range spans {
		s.mu.Lock()
		if s.finished {
			agg := out[s.name]
			agg.Count++
			agg.TotalNS += s.end.Sub(s.start).Nanoseconds()
			agg.AllocBytes += int64(s.endAlloc - s.startAlloc)
			out[s.name] = agg
		}
		s.mu.Unlock()
	}
	return out
}
