package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if got, want := s.Sum, 56.05; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	wantCounts := []uint64{1, 2, 1, 1} // ≤0.1, ≤1, ≤10, +Inf
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(1) // inclusive upper bound: lands in the ≤1 bucket
	if s := h.Snapshot(); s.Counts[0] != 1 {
		t.Errorf("boundary observation landed in %v", s.Counts)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DurationBuckets...)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
}

func TestPromWriterFormat(t *testing.T) {
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Counter("jobs_total", "Total jobs.",
		Series{Labels: []string{"state", "done"}, Value: 3},
		Series{Labels: []string{"state", "failed"}, Value: 1})
	pw.Gauge("jobs_running", "Currently running jobs.", Series{Value: 2})
	h := NewHistogram(0.5, 1)
	h.Observe(0.25)
	h.Observe(2)
	pw.Histogram("stage_seconds", "Stage latency.",
		HistSeries{Labels: []string{"stage", "prelim"}, Snap: h.Snapshot()})
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total Total jobs.",
		"# TYPE jobs_total counter",
		`jobs_total{state="done"} 3`,
		`jobs_total{state="failed"} 1`,
		"# TYPE jobs_running gauge",
		"jobs_running 2",
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="prelim",le="0.5"} 1`,
		`stage_seconds_bucket{stage="prelim",le="1"} 1`,
		`stage_seconds_bucket{stage="prelim",le="+Inf"} 2`,
		`stage_seconds_sum{stage="prelim"} 2.25`,
		`stage_seconds_count{stage="prelim"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromLabelEscaping(t *testing.T) {
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Counter("c", "help", Series{Labels: []string{"k", `va"l\ue` + "\n"}, Value: 1})
	if want := `c{k="va\"l\\ue\n"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("escaping: got %q, want to contain %q", b.String(), want)
	}
}
