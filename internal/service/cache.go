package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sync"

	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
)

// contentHash hashes an ordered list of strings with length prefixes, so
// no concatenation of parts can collide with a different split of the
// same bytes. It is the content address for both cache layers.
func contentHash(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// lruCache is a small thread-safe LRU keyed by content hash.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *lruEntry
	entries map[string]*list.Element
}

type lruEntry struct {
	key   string
	value any
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, order: list.New(), entries: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

func (c *lruCache) put(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).value = value
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, value: value})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*lruEntry).key)
	}
}

// preparedDesign is a parsed and graph-built design, shared read-only by
// every job that addresses the same (library, top, verilog) content.
type preparedDesign struct {
	lib    *library.Library
	design *netlist.Design
	graph  *graph.Graph
}

// designEntry carries the build-once state for one design key, so
// concurrent first submissions of the same design parse it exactly once
// (singleflight) while other designs build in parallel. done closes when
// the build finishes; prep/err are immutable after that.
type designEntry struct {
	once sync.Once
	done chan struct{}
	prep *preparedDesign
	err  error
}

// designCache content-addresses prepared designs.
type designCache struct {
	lru *lruCache
}

func newDesignCache(capacity int) *designCache {
	return &designCache{lru: newLRU(capacity)}
}

// get returns the prepared design for the key, building it at most once
// per entry via build. hit reports whether the entry already existed
// (even if its build is still in flight on another goroutine). The build
// runs on its own goroutine so a waiter whose ctx ends leaves promptly
// without aborting the shared entry for everyone else.
func (c *designCache) get(ctx context.Context, key string, build func() (*preparedDesign, error)) (prep *preparedDesign, hit bool, err error) {
	c.lru.mu.Lock()
	var entry *designEntry
	if el, ok := c.lru.entries[key]; ok {
		entry = el.Value.(*lruEntry).value.(*designEntry)
		c.lru.order.MoveToFront(el)
		hit = true
	} else {
		entry = &designEntry{done: make(chan struct{})}
		c.lru.entries[key] = c.lru.order.PushFront(&lruEntry{key: key, value: entry})
		for c.lru.order.Len() > c.lru.cap {
			last := c.lru.order.Back()
			c.lru.order.Remove(last)
			delete(c.lru.entries, last.Value.(*lruEntry).key)
		}
	}
	c.lru.mu.Unlock()

	entry.once.Do(func() {
		go func() {
			defer close(entry.done)
			entry.prep, entry.err = build()
		}()
	})
	select {
	case <-entry.done:
		if entry.err != nil && (errors.Is(entry.err, context.Canceled) || errors.Is(entry.err, context.DeadlineExceeded)) {
			// Only a build aborted by server shutdown lands here; drop
			// the entry so it cannot serve a stale cancellation error.
			c.evict(key, entry)
		}
		return entry.prep, hit, entry.err
	case <-ctx.Done():
		return nil, hit, ctx.Err()
	}
}

// evict removes the cache entry for key if it still is the given one (a
// newer rebuild under the same key is left alone).
func (c *designCache) evict(key string, entry *designEntry) {
	c.lru.mu.Lock()
	defer c.lru.mu.Unlock()
	if el, ok := c.lru.entries[key]; ok && el.Value.(*lruEntry).value.(*designEntry) == entry {
		c.lru.order.Remove(el)
		delete(c.lru.entries, key)
	}
}
