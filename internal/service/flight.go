package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"modemerge/internal/obs"
)

// The merge flight recorder captures a post-mortem bundle — span tree,
// stage counters, goroutine dump and (when the job was still running at
// the latency threshold) a CPU profile — for jobs that run slow, fail or
// panic. Recordings land in a bounded on-disk ring and are served at
// GET /v2/flights and GET /v2/jobs/{id}/flight.
//
// Capture is strictly off the result path: the watchdog samples the
// process while the job runs (profiling is free-running and changes no
// merge state), and the recording is written only after the job is
// already terminal, so a recording can never delay or alter a result.

// FlightConfig tunes the flight recorder. The zero value (empty Dir)
// disables recording entirely.
type FlightConfig struct {
	// Dir is the recording ring's directory; one subdirectory per flight.
	// Empty disables the recorder.
	Dir string
	// LatencyThreshold marks a job slow: jobs still running this long
	// after start get a mid-flight CPU profile + goroutine dump, and jobs
	// whose total elapsed time exceeds it are recorded. Default 30s.
	LatencyThreshold time.Duration
	// KeepLast bounds the ring: at most this many recordings on disk.
	// Default 16.
	KeepLast int
	// KeepSlowest protects the N slowest recordings (by elapsed time)
	// from eviction, so one burst of mildly-slow jobs cannot flush the
	// pathological outlier you actually want to inspect. Clamped below
	// KeepLast. Default 4.
	KeepSlowest int
	// ProfileWindow is how long the watchdog's CPU profile runs.
	// Default 2s.
	ProfileWindow time.Duration
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.LatencyThreshold <= 0 {
		c.LatencyThreshold = 30 * time.Second
	}
	if c.KeepLast <= 0 {
		c.KeepLast = 16
	}
	if c.KeepSlowest <= 0 {
		c.KeepSlowest = 4
	}
	if c.KeepSlowest >= c.KeepLast {
		c.KeepSlowest = c.KeepLast - 1
	}
	if c.ProfileWindow <= 0 {
		c.ProfileWindow = 2 * time.Second
	}
	return c
}

// FlightRecord is the flight.json payload of one recording — everything
// needed to diagnose the job after the fact without the process that ran
// it.
type FlightRecord struct {
	JobID      string    `json:"job_id"`
	TraceID    string    `json:"trace_id,omitempty"`
	Reason     string    `json:"reason"` // slow | failed | panic
	Status     Status    `json:"status"`
	Error      string    `json:"error,omitempty"`
	ElapsedMS  float64   `json:"elapsed_ms"`
	CapturedAt time.Time `json:"captured_at"`
	// StagesMS mirrors JobView.StagesMS: per-stage wall time in ms.
	StagesMS map[string]string `json:"stage_times_ms,omitempty"`
	// Spans is the job's full span tree at capture time.
	Spans []*obs.SpanView `json:"spans,omitempty"`
	// Panic and PanicStack are set when the worker recovered a panic.
	Panic      string `json:"panic,omitempty"`
	PanicStack string `json:"panic_stack,omitempty"`
	// GoroutineDump is the full-process goroutine dump taken by the
	// watchdog while the job was still running (empty when the job
	// finished before the latency threshold).
	GoroutineDump string `json:"goroutine_dump,omitempty"`
	// HasCPUProfile reports whether cpu.pprof sits next to flight.json.
	HasCPUProfile bool `json:"has_cpu_profile"`
}

// FlightSummary is one row of GET /v2/flights.
type FlightSummary struct {
	JobID      string    `json:"job_id"`
	TraceID    string    `json:"trace_id,omitempty"`
	Reason     string    `json:"reason"`
	Status     Status    `json:"status"`
	ElapsedMS  float64   `json:"elapsed_ms"`
	CapturedAt time.Time `json:"captured_at"`
}

// cpuProfileActive guards runtime/pprof.StartCPUProfile, which is
// process-global: only one profile can run at a time, so concurrent slow
// jobs share one capture window and the losers skip profiling.
var cpuProfileActive atomic.Bool

// flightWatch is the per-job watchdog state while the job runs.
type flightWatch struct {
	timer *time.Timer

	mu       sync.Mutex
	armed    bool          // the watchdog fired and a capture is under way
	captured chan struct{} // closed when the capture completes; nil until armed

	goroutines []byte
	profile    []byte
}

// FlightRecorder owns the on-disk recording ring. All methods are safe
// on a nil receiver (recording disabled).
type FlightRecorder struct {
	cfg    FlightConfig
	logger *slog.Logger

	mu      sync.Mutex
	watches map[string]*flightWatch // job id → active watchdog
	ring    []flightEntry           // recordings on disk, oldest first
}

type flightEntry struct {
	jobID     string
	elapsedMS float64
}

// NewFlightRecorder opens (creating if needed) the recording directory
// and rebuilds the ring index from any flight.json files already there,
// so the ring's bound survives restarts.
func NewFlightRecorder(cfg FlightConfig, logger *slog.Logger) (*FlightRecorder, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	fr := &FlightRecorder{cfg: cfg, logger: logger, watches: map[string]*flightWatch{}}

	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	type onDisk struct {
		entry      flightEntry
		capturedAt time.Time
	}
	var existing []onDisk
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rec, err := fr.load(e.Name())
		if err != nil {
			continue // not a recording (or corrupt); leave it alone
		}
		existing = append(existing, onDisk{
			entry:      flightEntry{jobID: rec.JobID, elapsedMS: rec.ElapsedMS},
			capturedAt: rec.CapturedAt,
		})
	}
	sort.Slice(existing, func(i, j int) bool {
		return existing[i].capturedAt.Before(existing[j].capturedAt)
	})
	for _, d := range existing {
		fr.ring = append(fr.ring, d.entry)
	}
	fr.evictLocked()
	return fr, nil
}

// watch arms the job's watchdog: if the job is still running when the
// latency threshold passes, capture a goroutine dump and a CPU profile
// while the interesting behavior is actually happening. The returned
// stop function disarms the timer (capture already in flight completes).
func (fr *FlightRecorder) watch(job *Job) func() {
	if fr == nil {
		return func() {}
	}
	w := &flightWatch{}
	w.timer = time.AfterFunc(fr.cfg.LatencyThreshold, func() { fr.capture(job, w) })
	fr.mu.Lock()
	fr.watches[job.ID] = w
	fr.mu.Unlock()
	return func() {
		w.timer.Stop()
		fr.mu.Lock()
		delete(fr.watches, job.ID)
		fr.mu.Unlock()
	}
}

// capture runs on the watchdog timer's goroutine at the latency
// threshold: the job is officially slow, so sample the process now.
func (fr *FlightRecorder) capture(job *Job, w *flightWatch) {
	w.mu.Lock()
	w.armed = true
	w.captured = make(chan struct{})
	w.mu.Unlock()
	defer close(w.captured)

	var dump bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		_ = p.WriteTo(&dump, 2)
	}

	var profile []byte
	if cpuProfileActive.CompareAndSwap(false, true) {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err == nil {
			timer := time.NewTimer(fr.cfg.ProfileWindow)
			select {
			case <-timer.C:
			case <-job.Done():
				// Job finished mid-window: stop early so the profile
				// covers the job, not the idle pool after it.
				timer.Stop()
			}
			pprof.StopCPUProfile()
			profile = buf.Bytes()
		}
		cpuProfileActive.Store(false)
	}

	w.mu.Lock()
	w.goroutines = dump.Bytes()
	w.profile = profile
	w.mu.Unlock()
}

// observe runs after job is terminal (from finishJob) and decides
// whether to keep a recording. Reasons, most specific first: panic,
// failed, slow. Jobs that finished fine under the threshold leave
// nothing behind.
func (fr *FlightRecorder) observe(job *Job) {
	if fr == nil {
		return
	}

	job.mu.Lock()
	status := job.status
	jobErr := job.err
	started := job.started
	finished := job.finished
	panicMsg := job.panicMsg
	panicStack := job.panicStack
	job.mu.Unlock()

	var elapsed time.Duration
	if !started.IsZero() && !finished.IsZero() {
		elapsed = finished.Sub(started)
	}

	var reason string
	switch {
	case panicMsg != "":
		reason = "panic"
	case status == StatusFailed:
		reason = "failed"
	case !started.IsZero() && elapsed >= fr.cfg.LatencyThreshold:
		reason = "slow"
	default:
		return
	}

	// Collect whatever the watchdog captured. If the capture is still
	// mid-window, wait for it — this blocks only the recording path of an
	// already-terminal job, never a result.
	var goroutines, profile []byte
	fr.mu.Lock()
	w := fr.watches[job.ID]
	fr.mu.Unlock()
	if w != nil {
		w.mu.Lock()
		armed, captured := w.armed, w.captured
		w.mu.Unlock()
		if armed {
			select {
			case <-captured:
			case <-time.After(fr.cfg.ProfileWindow + 5*time.Second):
			}
			w.mu.Lock()
			goroutines, profile = w.goroutines, w.profile
			w.mu.Unlock()
		}
	}

	view := job.View()
	rec := &FlightRecord{
		JobID:         job.ID,
		TraceID:       view.TraceID,
		Reason:        reason,
		Status:        status,
		Error:         jobErr,
		ElapsedMS:     float64(elapsed) / float64(time.Millisecond),
		CapturedAt:    time.Now().UTC(),
		StagesMS:      view.StagesMS,
		Spans:         job.TraceTree(),
		Panic:         panicMsg,
		PanicStack:    string(panicStack),
		GoroutineDump: string(goroutines),
		HasCPUProfile: len(profile) > 0,
	}
	if rec.GoroutineDump == "" && len(panicStack) > 0 {
		// The watchdog never fired (instant panic): the recovered stack is
		// the best dump available.
		rec.GoroutineDump = string(panicStack)
	}

	if err := fr.store(rec, profile); err != nil {
		fr.logger.Warn("flight recording failed",
			"job", job.ID, "reason", reason, "error", err)
		return
	}
	fr.logger.Info("flight recorded",
		"job", job.ID, "trace_id", rec.TraceID, "reason", reason,
		"elapsed_ms", strconv.FormatFloat(rec.ElapsedMS, 'f', 1, 64),
		"cpu_profile", rec.HasCPUProfile)
}

// store writes the recording's directory and applies the ring bound.
func (fr *FlightRecorder) store(rec *FlightRecord, profile []byte) error {
	if !idSafe(rec.JobID) {
		return fmt.Errorf("unsafe job id %q", rec.JobID)
	}
	dir := filepath.Join(fr.cfg.Dir, rec.JobID)
	tmp := dir + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(tmp, "flight.json"), data, 0o644); err != nil {
		return err
	}
	if len(profile) > 0 {
		if err := os.WriteFile(filepath.Join(tmp, "cpu.pprof"), profile, 0o644); err != nil {
			return err
		}
	}
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := os.Rename(tmp, dir); err != nil {
		return err
	}

	fr.mu.Lock()
	defer fr.mu.Unlock()
	for i, e := range fr.ring {
		if e.jobID == rec.JobID {
			// Re-recording one job (resubmitted id after restart): replace
			// in place, no growth.
			fr.ring[i].elapsedMS = rec.ElapsedMS
			return nil
		}
	}
	fr.ring = append(fr.ring, flightEntry{jobID: rec.JobID, elapsedMS: rec.ElapsedMS})
	fr.evictLocked()
	return nil
}

// evictLocked enforces the ring bound: at most KeepLast recordings, and
// among them the KeepSlowest slowest are immune, so eviction takes the
// oldest recording outside the slow set. Callers hold fr.mu.
func (fr *FlightRecorder) evictLocked() {
	for len(fr.ring) > fr.cfg.KeepLast {
		protected := map[string]bool{}
		bySlow := make([]flightEntry, len(fr.ring))
		copy(bySlow, fr.ring)
		sort.Slice(bySlow, func(i, j int) bool { return bySlow[i].elapsedMS > bySlow[j].elapsedMS })
		for i := 0; i < fr.cfg.KeepSlowest && i < len(bySlow); i++ {
			protected[bySlow[i].jobID] = true
		}
		victim := -1
		for i, e := range fr.ring {
			if !protected[e.jobID] {
				victim = i
				break
			}
		}
		if victim < 0 {
			victim = 0 // KeepSlowest ≥ ring size cannot happen, but stay safe
		}
		id := fr.ring[victim].jobID
		fr.ring = append(fr.ring[:victim], fr.ring[victim+1:]...)
		if err := os.RemoveAll(filepath.Join(fr.cfg.Dir, id)); err != nil {
			fr.logger.Warn("flight eviction failed", "job", id, "error", err)
		}
	}
}

// load reads one recording's flight.json from disk.
func (fr *FlightRecorder) load(jobID string) (*FlightRecord, error) {
	data, err := os.ReadFile(filepath.Join(fr.cfg.Dir, jobID, "flight.json"))
	if err != nil {
		return nil, err
	}
	var rec FlightRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// List returns summaries of every recording in the ring, newest first.
func (fr *FlightRecorder) List() []FlightSummary {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	ids := make([]string, len(fr.ring))
	for i, e := range fr.ring {
		ids[i] = e.jobID
	}
	fr.mu.Unlock()
	out := make([]FlightSummary, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		rec, err := fr.load(ids[i])
		if err != nil {
			continue
		}
		out = append(out, FlightSummary{
			JobID:      rec.JobID,
			TraceID:    rec.TraceID,
			Reason:     rec.Reason,
			Status:     rec.Status,
			ElapsedMS:  rec.ElapsedMS,
			CapturedAt: rec.CapturedAt,
		})
	}
	return out
}

// Get returns one job's recording, or false when none exists.
func (fr *FlightRecorder) Get(jobID string) (*FlightRecord, bool) {
	if fr == nil || !idSafe(jobID) {
		return nil, false
	}
	fr.mu.Lock()
	found := false
	for _, e := range fr.ring {
		if e.jobID == jobID {
			found = true
			break
		}
	}
	fr.mu.Unlock()
	if !found {
		return nil, false
	}
	rec, err := fr.load(jobID)
	if err != nil {
		return nil, false
	}
	return rec, true
}
