package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"modemerge/internal/fabric"
)

func quietSlog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// slowSDC conflicts with both quickstart modes (FCLK period far beyond
// tolerance), so a three-mode request partitions into a two-mode clique
// plus a singleton — exercising both the fabric dispatch path and the
// local singleton passthrough in one job.
const slowSDC = `
create_clock -name FCLK -period 8 [get_ports clk]
set_case_analysis 0 [get_ports tmode]
set_input_delay 0.4 -clock FCLK [get_ports din]
set_output_delay 0.4 -clock FCLK [get_ports dout]
`

func threeModeRequest() *MergeRequest {
	req := quickRequest()
	req.Modes = append(req.Modes, ModeInput{Name: "slow", SDC: slowSDC})
	return req
}

func resultJSON(t *testing.T, job *Job) []byte {
	t.Helper()
	b, err := json.Marshal(job.Result())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFabricMergeByteIdentical runs the same request through a plain
// single-process server and a fabric-enabled server (coordinator with
// one local executor) and requires byte-identical results — the
// tentpole's core guarantee.
func TestFabricMergeByteIdentical(t *testing.T) {
	plain := newTestServer(t, Config{Workers: 1, Logger: quietSlog()})
	job, err := plain.Submit(threeModeRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if job.Status() != StatusDone {
		t.Fatalf("plain job: status %s, error %q", job.Status(), job.View().Error)
	}
	want := resultJSON(t, job)

	fab := newTestServer(t, Config{
		Workers: 1,
		Logger:  quietSlog(),
		Fabric:  FabricConfig{Enabled: true},
	})
	fjob, err := fab.Submit(threeModeRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, fjob)
	if fjob.Status() != StatusDone {
		t.Fatalf("fabric job: status %s, error %q", fjob.Status(), fjob.View().Error)
	}
	if got := resultJSON(t, fjob); !bytes.Equal(got, want) {
		t.Fatalf("fabric result differs from single-process result:\nfabric: %s\nplain:  %s", got, want)
	}

	st := fab.Fabric().Status()
	if !st.Enabled || st.Completed < 1 {
		t.Fatalf("fabric status after merge: %+v", st)
	}

	// The cluster gauges ride on the same scrape as the rest.
	rec := httptest.NewRecorder()
	fab.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if body := rec.Body.String(); !strings.Contains(body, "modemerged_cluster_enabled 1") {
		t.Fatalf("metrics scrape missing cluster gauges:\n%s", body)
	}
}

// TestClusterEndpointDisabled pins GET /v2/cluster on a server without a
// fabric: 200, enabled=false, empty collections (not null).
func TestClusterEndpointDisabled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Logger: quietSlog()})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v2/cluster", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v2/cluster: %d", rec.Code)
	}
	var st fabric.ClusterStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Enabled || st.Workers == nil || st.InFlight == nil {
		t.Fatalf("disabled cluster status: %s", rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"workers": []`) {
		t.Fatalf("workers should serialize as [], got %s", rec.Body.String())
	}
}

// TestFabricWorkerDeathByteIdentity is the in-process 3-node harness:
// a pure-dispatcher coordinator (no local executors) plus two worker
// nodes over real HTTP. The first worker claims the clique job and dies
// mid-clique (never completes); the lease expires, the job is
// rescheduled onto the second worker, and the finished result must be
// byte-identical to the single-process reference — SDC and report both.
func TestFabricWorkerDeathByteIdentity(t *testing.T) {
	plain := newTestServer(t, Config{Workers: 1, Logger: quietSlog()})
	ref, err := plain.Submit(quickRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ref)
	want := resultJSON(t, ref)

	s := newTestServer(t, Config{
		Workers: 1,
		Logger:  quietSlog(),
		Fabric: FabricConfig{
			Enabled:        true,
			LocalExecutors: -1, // pure dispatcher: only remote workers merge
			LeaseTTL:       500 * time.Millisecond,
			MaxAttempts:    3,
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Node 2: the doomed worker is a raw wire client so the test controls
	// its lifecycle exactly — it joins, claims the clique job, and then
	// goes silent, the observable behavior of a node dying mid-merge.
	doomed := fabric.NewClient(ts.URL, nil)
	if _, err := doomed.Join("doomed", ""); err != nil {
		t.Fatal(err)
	}

	job, err := s.Submit(quickRequest())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := doomed.Poll("doomed", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if spec == nil || len(spec.Members) != 2 {
		t.Fatalf("doomed worker claimed %+v", spec)
	}
	if st := s.Fabric().Status(); len(st.InFlight) != 1 || st.InFlight[0].Worker != "doomed" {
		t.Fatalf("cluster status after claim: %+v", st)
	}

	// Node 3: a real worker joins; after the doomed lease expires the job
	// must be stolen and completed here.
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	healthy := fabric.NewWorker(ts.URL, fabric.WorkerConfig{
		ID: "healthy", PollWait: 100 * time.Millisecond, Logger: quietSlog(),
	})
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		healthy.Run(wctx) //nolint:errcheck // exits on wcancel
	}()

	waitDone(t, job)
	if job.Status() != StatusDone {
		t.Fatalf("job after worker death: status %s, error %q", job.Status(), job.View().Error)
	}
	if got := resultJSON(t, job); !bytes.Equal(got, want) {
		t.Fatalf("rescheduled merge differs from reference:\ngot:  %s\nwant: %s", got, want)
	}

	st := s.Fabric().Status()
	if st.Retries < 1 {
		t.Fatalf("expected ≥1 retry after worker death, status %+v", st)
	}
	var healthyRow *fabric.WorkerStatus
	for i := range st.Workers {
		if st.Workers[i].ID == "healthy" {
			healthyRow = &st.Workers[i]
		}
	}
	if healthyRow == nil || healthyRow.Completed != 1 {
		t.Fatalf("healthy worker row: %+v (status %+v)", healthyRow, st)
	}

	// The cluster view over HTTP matches the in-process snapshot.
	resp, err := http.Get(ts.URL + "/v2/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire fabric.ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if !wire.Enabled || wire.Retries < 1 || len(wire.Workers) != 2 {
		t.Fatalf("GET /v2/cluster: %+v", wire)
	}

	wcancel()
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("healthy worker did not stop")
	}
}

// TestFabricShutdownFailsPendingCliques pins drain behavior: with a
// pure-dispatcher fabric and no workers, a submitted job parks on the
// clique queue; shutting down must fail it promptly (fabric closed)
// rather than hang the drain until the job timeout.
func TestFabricShutdownFailsPendingCliques(t *testing.T) {
	s := New(Config{
		Workers: 1,
		Logger:  quietSlog(),
		Fabric:  FabricConfig{Enabled: true, LocalExecutors: -1},
	})
	job, err := s.Submit(quickRequest())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the clique job is actually queued on the fabric.
	deadline := time.Now().Add(10 * time.Second)
	for s.Fabric().Status().Pending == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	s.Shutdown(ctx) //nolint:errcheck // forced drain is the point
	waitDone(t, job)
	if st := job.Status(); st == StatusDone {
		t.Fatalf("job with no workers finished done: %+v", job.View())
	}
}

func fmtMode(i int) ModeInput {
	return ModeInput{Name: fmt.Sprintf("func%d", i), SDC: funcSDC}
}
