package service

// The API gate: docs/openapi.yaml is hand-written (no YAML dependency
// in this module), so these tests hold it to the server with plain text
// checks — every served /v2 route must be documented, every documented
// path must be served, and every stable error code must appear in the
// spec. CI runs this package, so drifting the spec or the router alone
// fails the build.

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

const openapiPath = "../../docs/openapi.yaml"

// openapiPaths extracts the path keys of the spec's `paths:` section:
// lines indented exactly two spaces, starting with /, ending with a
// colon.
func openapiPaths(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(openapiPath)
	if err != nil {
		t.Fatalf("reading the OpenAPI document: %v", err)
	}
	pathKey := regexp.MustCompile(`^  (/[^\s:]*):\s*$`)
	inPaths := false
	out := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(line, "paths:"):
			inPaths = true
			continue
		case inPaths && len(line) > 0 && line[0] != ' ' && line[0] != '#':
			inPaths = false // next top-level section
		}
		if !inPaths {
			continue
		}
		if m := pathKey.FindStringSubmatch(line); m != nil {
			out[m[1]] = true
		}
	}
	if len(out) == 0 {
		t.Fatal("no paths found in the OpenAPI document — has its structure changed?")
	}
	return out
}

// TestOpenAPICoversV2Routes: served ⊆ documented and documented ⊆
// served, on the path portion of the route patterns.
func TestOpenAPICoversV2Routes(t *testing.T) {
	documented := openapiPaths(t)

	served := map[string]bool{}
	for _, pattern := range V2Routes() {
		_, path, ok := strings.Cut(pattern, " ")
		if !ok {
			t.Fatalf("route pattern %q has no method", pattern)
		}
		served[path] = true
	}

	for path := range served {
		if !documented[path] {
			t.Errorf("served route %s is not documented in docs/openapi.yaml", path)
		}
	}
	for path := range documented {
		if !served[path] {
			t.Errorf("documented path %s is not served (see service.V2Routes)", path)
		}
	}
	if t.Failed() {
		t.Logf("served: %v", sorted(served))
		t.Logf("documented: %v", sorted(documented))
	}
}

// TestOpenAPIDocumentsErrorCodes: every stable error code the handlers
// can emit appears in the spec's ErrorResponse enum (and vice versa the
// enum lists no unknown codes).
func TestOpenAPIDocumentsErrorCodes(t *testing.T) {
	data, err := os.ReadFile(openapiPath)
	if err != nil {
		t.Fatal(err)
	}
	spec := string(data)
	for _, code := range []string{
		codeInvalidRequest, codePayloadTooLarge, codeNotFound, codeConflict,
		codeIdempotencyMismatch, codeRateLimited, codeUnavailable,
	} {
		if !strings.Contains(spec, "- "+code) {
			t.Errorf("error code %q is not in the OpenAPI ErrorResponse enum", code)
		}
	}
}

// TestOpenAPIVersionHeader pins the top-level document shape the text
// extraction above depends on.
func TestOpenAPIVersionHeader(t *testing.T) {
	data, err := os.ReadFile(openapiPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "openapi: 3.1.0") {
		t.Error("docs/openapi.yaml does not declare openapi: 3.1.0")
	}
	if !strings.Contains(string(data), "\npaths:\n") {
		t.Error("docs/openapi.yaml has no top-level paths: section")
	}
}

func sorted(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
