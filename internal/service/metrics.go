package service

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics holds the service counters and per-stage timing aggregates. A
// Server owns one instance; every update also mirrors into the
// process-global aggregate published at /debug/vars, so per-server stats
// (served at /v1/stats) stay isolated while expvar shows the whole
// process.
type Metrics struct {
	parent *Metrics

	JobsQueued   atomic.Int64
	JobsRunning  atomic.Int64
	JobsDone     atomic.Int64
	JobsFailed   atomic.Int64
	JobsCanceled atomic.Int64

	CacheHitsResult atomic.Int64
	CacheHitsDesign atomic.Int64
	CacheMisses     atomic.Int64

	mu     sync.Mutex
	stages map[string]*stageStat
}

type stageStat struct {
	Count   int64
	TotalNs int64
	MaxNs   int64
}

// processMetrics aggregates every server in the process for /debug/vars.
var processMetrics = newMetrics(nil)

func init() {
	expvar.Publish("modemerged", expvar.Func(func() any { return processMetrics.Snapshot() }))
}

func newMetrics(parent *Metrics) *Metrics {
	return &Metrics{parent: parent, stages: map[string]*stageStat{}}
}

func (m *Metrics) add(c func(*Metrics) *atomic.Int64, delta int64) {
	c(m).Add(delta)
	if m.parent != nil {
		c(m.parent).Add(delta)
	}
}

// ObserveStage records one stage execution time.
func (m *Metrics) ObserveStage(stage string, d time.Duration) {
	m.mu.Lock()
	s := m.stages[stage]
	if s == nil {
		s = &stageStat{}
		m.stages[stage] = s
	}
	s.Count++
	s.TotalNs += int64(d)
	if int64(d) > s.MaxNs {
		s.MaxNs = int64(d)
	}
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.ObserveStage(stage, d)
	}
}

// StageSnapshot is the JSON view of one stage's timing aggregate.
type StageSnapshot struct {
	Stage   string  `json:"stage"`
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	AvgMS   float64 `json:"avg_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// Snapshot renders the counters and stage aggregates as a JSON-friendly
// map (used both by /v1/stats and the expvar func).
func (m *Metrics) Snapshot() map[string]any {
	out := map[string]any{
		"jobs_queued":       m.JobsQueued.Load(),
		"jobs_running":      m.JobsRunning.Load(),
		"jobs_done":         m.JobsDone.Load(),
		"jobs_failed":       m.JobsFailed.Load(),
		"jobs_canceled":     m.JobsCanceled.Load(),
		"cache_hits_result": m.CacheHitsResult.Load(),
		"cache_hits_design": m.CacheHitsDesign.Load(),
		"cache_misses":      m.CacheMisses.Load(),
	}
	m.mu.Lock()
	stages := make([]StageSnapshot, 0, len(m.stages))
	for name, s := range m.stages {
		ms := func(ns int64) float64 { return float64(ns) / 1e6 }
		avg := int64(0)
		if s.Count > 0 {
			avg = s.TotalNs / s.Count
		}
		stages = append(stages, StageSnapshot{
			Stage: name, Count: s.Count,
			TotalMS: ms(s.TotalNs), AvgMS: ms(avg), MaxMS: ms(s.MaxNs),
		})
	}
	m.mu.Unlock()
	sort.Slice(stages, func(i, j int) bool { return stages[i].Stage < stages[j].Stage })
	out["stages"] = stages
	return out
}
