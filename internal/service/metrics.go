package service

import (
	"expvar"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"modemerge/internal/incr"
	"modemerge/internal/obs"
)

// incrHitGranularities fixes the label set of the incremental-cache
// hit-latency histograms, so every granularity's family exists from the
// first scrape (zero observations) instead of appearing on first hit.
var incrHitGranularities = []incr.Granularity{
	incr.GranContext, incr.GranPair, incr.GranClique, incr.GranETM, incr.GranMergedCtx,
}

// incrHitBuckets are the hit-latency histogram bounds in seconds. Cache
// hits are lock-acquire + map-lookup fast paths, so the resolution sits
// well below a millisecond (with a tail for disk-store promotions).
var incrHitBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 5e-3, 2.5e-2, 0.1,
}

// Metrics holds the service counters, per-stage timing aggregates and
// latency histograms. A Server owns one instance; every update also
// mirrors into the process-global aggregate published at /debug/vars, so
// per-server stats (served at /v1/stats and /metrics) stay isolated while
// expvar shows the whole process.
type Metrics struct {
	parent *Metrics

	JobsQueued   atomic.Int64
	JobsRunning  atomic.Int64
	JobsDone     atomic.Int64
	JobsFailed   atomic.Int64
	JobsCanceled atomic.Int64

	CacheHitsResult atomic.Int64
	CacheHitsDesign atomic.Int64
	CacheMisses     atomic.Int64

	// mergeParallelism is the configured intra-merge worker bound,
	// surfaced as a gauge so operators can correlate latency with the
	// parallelism setting.
	mergeParallelism atomic.Int64

	queueWait *obs.Histogram

	// incrHitHists times incremental-cache hits per granularity. The map
	// is fixed at construction (all granularities, see
	// incrHitGranularities), so concurrent Observe needs no lock.
	incrHitHists map[incr.Granularity]*obs.Histogram

	mu         sync.Mutex
	stages     map[string]*stageStat
	stageHists map[string]*obs.Histogram
	// incrSources are the incremental sub-merge caches feeding this
	// instance's incr_cache snapshot; the process aggregate sums every
	// server's cache.
	incrSources []*incr.Stats
}

type stageStat struct {
	Count   int64
	TotalNs int64
	MaxNs   int64
}

// processMetrics aggregates every server in the process for /debug/vars.
var processMetrics = newMetrics(nil)

func init() {
	expvar.Publish("modemerged", expvar.Func(func() any { return processMetrics.Snapshot() }))
}

func newMetrics(parent *Metrics) *Metrics {
	m := &Metrics{
		parent:       parent,
		queueWait:    obs.NewHistogram(obs.DurationBuckets...),
		incrHitHists: map[incr.Granularity]*obs.Histogram{},
		stages:       map[string]*stageStat{},
		stageHists:   map[string]*obs.Histogram{},
	}
	for _, g := range incrHitGranularities {
		m.incrHitHists[g] = obs.NewHistogram(incrHitBuckets...)
	}
	return m
}

func (m *Metrics) add(c func(*Metrics) *atomic.Int64, delta int64) {
	c(m).Add(delta)
	if m.parent != nil {
		c(m.parent).Add(delta)
	}
}

// AddIncrSource registers an incremental cache's counters with this
// instance (and, transitively, the process aggregate).
func (m *Metrics) AddIncrSource(s *incr.Stats) {
	m.mu.Lock()
	m.incrSources = append(m.incrSources, s)
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.AddIncrSource(s)
	}
}

// incrSnapshot sums the registered incremental caches' counters.
func (m *Metrics) incrSnapshot() incr.StatsSnapshot {
	m.mu.Lock()
	sources := m.incrSources
	m.mu.Unlock()
	var out incr.StatsSnapshot
	for _, s := range sources {
		snap := s.Snapshot()
		out.ContextHits += snap.ContextHits
		out.ContextMisses += snap.ContextMisses
		out.PairHits += snap.PairHits
		out.PairMisses += snap.PairMisses
		out.CliqueHits += snap.CliqueHits
		out.CliqueMisses += snap.CliqueMisses
	}
	return out
}

// SetMergeParallelism records the server's configured intra-merge
// parallelism (mirrored to the process aggregate; last server wins there).
func (m *Metrics) SetMergeParallelism(n int) {
	m.mergeParallelism.Store(int64(n))
	if m.parent != nil {
		m.parent.SetMergeParallelism(n)
	}
}

// ObserveQueueWait records how long one job sat in the queue before a
// worker picked it up.
func (m *Metrics) ObserveQueueWait(d time.Duration) {
	m.queueWait.Observe(d.Seconds())
	if m.parent != nil {
		m.parent.ObserveQueueWait(d)
	}
}

// ObserveIncrHit records one incremental-cache hit's lookup latency.
// Wired as the cache's hit observer (incr.Cache.SetHitObserver), so it
// runs inline on the merge workers' hot path — fixed-map lookup plus
// one atomic histogram update, no locks.
func (m *Metrics) ObserveIncrHit(g incr.Granularity, d time.Duration) {
	if h, ok := m.incrHitHists[g]; ok {
		h.Observe(d.Seconds())
	}
	if m.parent != nil {
		m.parent.ObserveIncrHit(g, d)
	}
}

// ObserveStage records one stage execution time.
func (m *Metrics) ObserveStage(stage string, d time.Duration) {
	m.mu.Lock()
	s := m.stages[stage]
	if s == nil {
		s = &stageStat{}
		m.stages[stage] = s
	}
	s.Count++
	s.TotalNs += int64(d)
	if int64(d) > s.MaxNs {
		s.MaxNs = int64(d)
	}
	h := m.stageHists[stage]
	if h == nil {
		h = obs.NewHistogram(obs.DurationBuckets...)
		m.stageHists[stage] = h
	}
	m.mu.Unlock()
	h.Observe(d.Seconds())
	if m.parent != nil {
		m.parent.ObserveStage(stage, d)
	}
}

// StageSnapshot is the JSON view of one stage's timing aggregate.
type StageSnapshot struct {
	Stage   string  `json:"stage"`
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	AvgMS   float64 `json:"avg_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// QueueWaitSnapshot summarizes the queue-wait histogram.
type QueueWaitSnapshot struct {
	Count int64   `json:"count"`
	AvgMS float64 `json:"avg_ms"`
}

// RuntimeSnapshot is the Go runtime health section of the stats
// snapshot: sampled at snapshot time, not accumulated.
type RuntimeSnapshot struct {
	Goroutines     int     `json:"goroutines"`
	HeapInuseBytes uint64  `json:"heap_inuse_bytes"`
	LastGCPauseMS  float64 `json:"last_gc_pause_ms"`
	NumGC          uint32  `json:"num_gc"`
}

// sampleRuntime reads the runtime health gauges. ReadMemStats is a
// stop-the-world of microseconds — fine at scrape/snapshot frequency,
// never called on the merge path.
func sampleRuntime() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out := RuntimeSnapshot{
		Goroutines:     runtime.NumGoroutine(),
		HeapInuseBytes: ms.HeapInuse,
		NumGC:          ms.NumGC,
	}
	if ms.NumGC > 0 {
		out.LastGCPauseMS = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e6
	}
	return out
}

// StatsSnapshot is the single typed view of the service counters, shared
// verbatim by GET /v1/stats and the expvar "modemerged" variable so the
// two surfaces can never drift apart.
type StatsSnapshot struct {
	JobsQueued   int64 `json:"jobs_queued"`
	JobsRunning  int64 `json:"jobs_running"`
	JobsDone     int64 `json:"jobs_done"`
	JobsFailed   int64 `json:"jobs_failed"`
	JobsCanceled int64 `json:"jobs_canceled"`

	CacheHitsResult int64 `json:"cache_hits_result"`
	CacheHitsDesign int64 `json:"cache_hits_design"`
	CacheMisses     int64 `json:"cache_misses"`

	// IncrCache breaks the incremental sub-merge cache down by
	// granularity (per-mode contexts, pair verdicts, clique artifacts).
	IncrCache incr.StatsSnapshot `json:"incr_cache"`

	MergeParallelism int64 `json:"merge_parallelism"`

	// Runtime samples Go runtime health at snapshot time.
	Runtime RuntimeSnapshot `json:"runtime"`

	QueueWait QueueWaitSnapshot `json:"queue_wait"`
	Stages    []StageSnapshot   `json:"stages"`
}

// Snapshot captures the counters and stage aggregates.
func (m *Metrics) Snapshot() StatsSnapshot {
	out := StatsSnapshot{
		JobsQueued:       m.JobsQueued.Load(),
		JobsRunning:      m.JobsRunning.Load(),
		JobsDone:         m.JobsDone.Load(),
		JobsFailed:       m.JobsFailed.Load(),
		JobsCanceled:     m.JobsCanceled.Load(),
		CacheHitsResult:  m.CacheHitsResult.Load(),
		CacheHitsDesign:  m.CacheHitsDesign.Load(),
		CacheMisses:      m.CacheMisses.Load(),
		IncrCache:        m.incrSnapshot(),
		MergeParallelism: m.mergeParallelism.Load(),
		Runtime:          sampleRuntime(),
	}
	qw := m.queueWait.Snapshot()
	out.QueueWait.Count = int64(qw.Count)
	if qw.Count > 0 {
		out.QueueWait.AvgMS = qw.Sum / float64(qw.Count) * 1e3
	}
	m.mu.Lock()
	stages := make([]StageSnapshot, 0, len(m.stages))
	for name, s := range m.stages {
		ms := func(ns int64) float64 { return float64(ns) / 1e6 }
		avg := int64(0)
		if s.Count > 0 {
			avg = s.TotalNs / s.Count
		}
		stages = append(stages, StageSnapshot{
			Stage: name, Count: s.Count,
			TotalMS: ms(s.TotalNs), AvgMS: ms(avg), MaxMS: ms(s.MaxNs),
		})
	}
	m.mu.Unlock()
	sort.Slice(stages, func(i, j int) bool { return stages[i].Stage < stages[j].Stage })
	out.Stages = stages
	return out
}

// WritePrometheus renders the counters and histograms in Prometheus text
// exposition format (served at GET /metrics).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	pw := obs.NewPromWriter(w)
	pw.Counter("modemerged_jobs_total", "Jobs by terminal (or queued/running transition) state.",
		obs.Series{Labels: []string{"state", "queued"}, Value: float64(m.JobsQueued.Load())},
		obs.Series{Labels: []string{"state", "done"}, Value: float64(m.JobsDone.Load())},
		obs.Series{Labels: []string{"state", "failed"}, Value: float64(m.JobsFailed.Load())},
		obs.Series{Labels: []string{"state", "canceled"}, Value: float64(m.JobsCanceled.Load())})
	pw.Gauge("modemerged_jobs_running", "Jobs currently executing on the worker pool.",
		obs.Series{Value: float64(m.JobsRunning.Load())})
	pw.Gauge("modemerged_merge_parallelism", "Configured intra-merge worker pool bound.",
		obs.Series{Value: float64(m.mergeParallelism.Load())})
	pw.Counter("modemerged_cache_events_total", "Cache hits and misses by cache.",
		obs.Series{Labels: []string{"cache", "result", "event", "hit"}, Value: float64(m.CacheHitsResult.Load())},
		obs.Series{Labels: []string{"cache", "design", "event", "hit"}, Value: float64(m.CacheHitsDesign.Load())},
		obs.Series{Labels: []string{"cache", "result", "event", "miss"}, Value: float64(m.CacheMisses.Load())})
	ic := m.incrSnapshot()
	pw.Counter("modemerged_incr_cache_events_total",
		"Incremental sub-merge cache hits and misses by granularity.",
		obs.Series{Labels: []string{"granularity", "context", "event", "hit"}, Value: float64(ic.ContextHits)},
		obs.Series{Labels: []string{"granularity", "context", "event", "miss"}, Value: float64(ic.ContextMisses)},
		obs.Series{Labels: []string{"granularity", "pair", "event", "hit"}, Value: float64(ic.PairHits)},
		obs.Series{Labels: []string{"granularity", "pair", "event", "miss"}, Value: float64(ic.PairMisses)},
		obs.Series{Labels: []string{"granularity", "clique", "event", "hit"}, Value: float64(ic.CliqueHits)},
		obs.Series{Labels: []string{"granularity", "clique", "event", "miss"}, Value: float64(ic.CliqueMisses)})
	rt := sampleRuntime()
	pw.Gauge("modemerged_runtime_goroutines", "Goroutines currently live in the process.",
		obs.Series{Value: float64(rt.Goroutines)})
	pw.Gauge("modemerged_runtime_heap_inuse_bytes", "Heap bytes in in-use spans.",
		obs.Series{Value: float64(rt.HeapInuseBytes)})
	pw.Gauge("modemerged_runtime_last_gc_pause_seconds", "Duration of the most recent GC stop-the-world pause.",
		obs.Series{Value: rt.LastGCPauseMS / 1e3})
	pw.Histogram("modemerged_queue_wait_seconds", "Time jobs spend queued before a worker picks them up.",
		obs.HistSeries{Snap: m.queueWait.Snapshot()})
	incrHitSeries := make([]obs.HistSeries, 0, len(incrHitGranularities))
	for _, g := range incrHitGranularities {
		incrHitSeries = append(incrHitSeries, obs.HistSeries{
			Labels: []string{"granularity", string(g)},
			Snap:   m.incrHitHists[g].Snapshot(),
		})
	}
	pw.Histogram("modemerged_incr_cache_hit_seconds",
		"Incremental sub-merge cache hit lookup latency by granularity.", incrHitSeries...)

	m.mu.Lock()
	names := make([]string, 0, len(m.stageHists))
	for name := range m.stageHists {
		names = append(names, name)
	}
	sort.Strings(names)
	series := make([]obs.HistSeries, 0, len(names))
	for _, name := range names {
		series = append(series, obs.HistSeries{
			Labels: []string{"stage", name},
			Snap:   m.stageHists[name].Snapshot(),
		})
	}
	m.mu.Unlock()
	pw.Histogram("modemerged_stage_seconds", "Merge pipeline stage latency.", series...)
	return pw.Err()
}
