package service

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"modemerge/internal/core"
	"modemerge/internal/library"
	"modemerge/internal/obs"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle: Queued → Running → one of Done / Failed / Canceled.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// ModeInput is one SDC mode of a merge request.
type ModeInput struct {
	Name string `json:"name"`
	SDC  string `json:"sdc"`
}

// CornerInput is one operating corner of an MCMM scenario matrix
// (library.Corner over the wire): multiplicative derates on the nominal
// delay model plus an optional SDC overlay appended to every mode in
// that corner. Scale values of zero mean 1.0.
type CornerInput struct {
	Name        string  `json:"name"`
	DelayScale  float64 `json:"delay_scale,omitempty"`
	EarlyScale  float64 `json:"early_scale,omitempty"`
	LateScale   float64 `json:"late_scale,omitempty"`
	MarginScale float64 `json:"margin_scale,omitempty"`
	SDC         string  `json:"sdc,omitempty"`
}

// RequestOptions mirrors the tunable subset of core.Options.
type RequestOptions struct {
	Tolerance           float64 `json:"tolerance,omitempty"`
	Workers             int     `json:"workers,omitempty"`
	MaxRefineIterations int     `json:"max_refine_iterations,omitempty"`
}

// MergeRequest is the POST /v1/merge payload.
type MergeRequest struct {
	// Verilog is the structural netlist source (required).
	Verilog string `json:"verilog"`
	// Top selects the top module (default: inferred).
	Top string `json:"top,omitempty"`
	// Library is mini-library-format cell source (default: built-in).
	Library string `json:"library,omitempty"`
	// Modes are the SDC modes to merge (at least one).
	Modes []ModeInput `json:"modes"`
	// Corners defines the MCMM scenario matrix: the merge analyzes every
	// mode in every corner (#modes × #corners scenarios) and refines to
	// the across-corner worst case. Empty means corner-less merging —
	// byte-identical to the pre-corner API. Corner names must be unique:
	// a duplicate name would duplicate every "mode@corner" scenario key.
	Corners []CornerInput `json:"corners,omitempty"`
	// Options tunes the merge flow.
	Options RequestOptions `json:"options"`
	// Validate runs the equivalence check on each merged clique
	// (default true).
	Validate *bool `json:"validate,omitempty"`
	// TimeoutMS bounds the job's execution time, counted from the moment
	// a worker picks it up. 0 uses the server default; values above the
	// server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// testPanic makes the worker panic right after the tracer is
	// installed. Unexported so it is unreachable from JSON payloads;
	// only the flight-recorder tests set it (same pattern as
	// core.Options.Inject fault injection).
	testPanic bool
}

func (r *MergeRequest) validateRequest() error {
	if r.Verilog == "" {
		return fmt.Errorf("verilog source is required")
	}
	if len(r.Modes) == 0 {
		return fmt.Errorf("at least one mode is required")
	}
	seen := map[string]bool{}
	for i, m := range r.Modes {
		if m.Name == "" {
			return fmt.Errorf("mode %d: name is required", i)
		}
		if m.SDC == "" {
			return fmt.Errorf("mode %q: sdc text is required", m.Name)
		}
		if seen[m.Name] {
			return fmt.Errorf("duplicate mode name %q", m.Name)
		}
		seen[m.Name] = true
	}
	if err := library.ValidateCorners(r.coreCorners()); err != nil {
		return fmt.Errorf("scenario matrix: %w", err)
	}
	return nil
}

// coreCorners maps the request's corner inputs to library corners.
func (r *MergeRequest) coreCorners() []library.Corner {
	if len(r.Corners) == 0 {
		return nil
	}
	out := make([]library.Corner, len(r.Corners))
	for i, c := range r.Corners {
		out[i] = library.Corner{
			Name: c.Name, DelayScale: c.DelayScale, EarlyScale: c.EarlyScale,
			LateScale: c.LateScale, MarginScale: c.MarginScale, SDC: c.SDC,
		}
	}
	return out
}

func (r *MergeRequest) wantValidate() bool { return r.Validate == nil || *r.Validate }

// resultKey content-addresses a request: identical design + library +
// modes + options (+ validate switch) share one cached result.
func (r *MergeRequest) resultKey() string {
	parts := []string{
		"lib", r.Library,
		"top", r.Top,
		"v", r.Verilog,
		"opt", fmt.Sprintf("%g|%d|%v", r.Options.Tolerance, r.Options.MaxRefineIterations, r.wantValidate()),
	}
	// Mode order is part of the key: clique seeding and merged-mode
	// naming follow submission order, so reordered mode lists are
	// different jobs.
	for _, m := range r.Modes {
		parts = append(parts, "mode", m.Name, m.SDC)
	}
	// The corner set is part of the key only when present, so corner-less
	// requests keep their historical digests (idempotency keys and result
	// caches survive the API addition).
	if len(r.Corners) > 0 {
		parts = append(parts, "corners", library.CornerSetKey(r.coreCorners()))
	}
	return contentHash(parts...)
}

// designKey content-addresses only the parse inputs.
func (r *MergeRequest) designKey() string {
	return contentHash("lib", r.Library, "top", r.Top, "v", r.Verilog)
}

// MergedMode is one merged output mode.
type MergedMode struct {
	Name string `json:"name"`
	SDC  string `json:"sdc"`
}

// EquivalenceReport summarizes the equivalence check of one merged clique.
type EquivalenceReport struct {
	Merged      string   `json:"merged"`
	Equivalent  bool     `json:"equivalent"`
	Matched     int      `json:"matched_groups"`
	Pessimistic int      `json:"pessimistic_groups"`
	Optimistic  []string `json:"optimistic_mismatches,omitempty"`
	Unresolved  int      `json:"unresolved"`
}

// MatrixEntry is one cell of the reduced scenario matrix: a merged mode
// deployed in one corner. The input matrix has #modes × #corners
// scenarios; the output has #cliques × #corners entries.
type MatrixEntry struct {
	// Mode is the merged mode's name, Corner the corner's.
	Mode   string `json:"mode"`
	Corner string `json:"corner"`
	// SDC is the effective deployed constraint text: the merged mode's
	// SDC with the corner's overlay appended — exactly the text the
	// merge refined this scenario's context from.
	SDC string `json:"sdc"`
	// Scenarios are the member scenario keys ("mode@corner") this entry
	// covers: the clique's member modes, each in this entry's corner.
	Scenarios []string `json:"scenarios"`
}

// Result is the final payload of a finished merge job.
type Result struct {
	// Merged holds one mode per merge clique (singletons pass through).
	Merged []MergedMode `json:"merged"`
	// Reports are the per-clique merge reports, parallel to Merged.
	Reports []*core.Report `json:"reports"`
	// Groups lists the clique members by mode name, parallel to Merged.
	Groups [][]string `json:"groups"`
	// Conflicts explains non-mergeable mode pairs.
	Conflicts []core.NonMergeable `json:"conflicts,omitempty"`
	// Equivalence holds one report per validated multi-mode clique.
	Equivalence []EquivalenceReport `json:"equivalence,omitempty"`
	// Matrix is the reduced scenario matrix, merged-mode-major then
	// corner order; present only on corner (scenario-matrix) requests.
	Matrix []MatrixEntry `json:"matrix,omitempty"`
}

// Job is one queued merge. All mutable fields are guarded by mu; the
// HTTP layer reads them through snapshots.
type Job struct {
	ID string

	// digest is the request's content address (resultKey), set at submit
	// time and immutable after. Identical submissions share a digest, so
	// clients can correlate jobs with inputs and the idempotency layer
	// can detect key reuse across different payloads.
	digest string

	// traceID is the job's distributed-trace identity, set at submit time
	// and immutable after: either ingested from the request's W3C
	// traceparent header or freshly generated. Every span the job records,
	// every exported span record and every slog line carries it.
	traceID obs.TraceID

	// req is set before the job is enqueued and read only by the worker.
	req *MergeRequest

	// ctx governs the job end to end; cancel aborts it (user cancel or
	// server drain). The per-job execution deadline wraps ctx when a
	// worker picks the job up.
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	status   Status
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	cacheHit bool
	stage    string // pipeline stage currently executing
	stages   map[string]time.Duration
	result   *Result
	// tracer collects the job's span tree while it executes; it stays
	// readable after the job finishes (GET /v1/jobs/{id}/trace).
	tracer *obs.Tracer
	// panicMsg/panicStack record a worker panic for the flight recorder.
	panicMsg   string
	panicStack []byte

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

func newJob(id string, ctx context.Context, cancel context.CancelFunc) *Job {
	return &Job{
		ID:      id,
		ctx:     ctx,
		cancel:  cancel,
		status:  StatusQueued,
		created: time.Now(),
		stages:  map[string]time.Duration{},
		done:    make(chan struct{}),
	}
}

// Cancel requests cooperative cancellation of the job.
func (j *Job) Cancel() { j.cancel() }

// TraceID returns the job's distributed-trace identity.
func (j *Job) TraceID() obs.TraceID { return j.traceID }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns the job's current state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the result once the job is done (nil otherwise).
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// markRunning transitions the job to running and returns how long it sat
// in the queue.
func (j *Job) markRunning() time.Duration {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	wait := j.started.Sub(j.created)
	j.mu.Unlock()
	return wait
}

func (j *Job) addStage(stage string, d time.Duration) {
	j.mu.Lock()
	j.stages[stage] += d
	j.mu.Unlock()
}

// noteStage records the pipeline stage the job is currently in, so crash
// logs can name it.
func (j *Job) noteStage(stage string) {
	j.mu.Lock()
	j.stage = stage
	j.mu.Unlock()
}

// notePanic records the panic value and goroutine stack captured by the
// worker's recover, before the job is marked terminal.
func (j *Job) notePanic(msg string, stack []byte) {
	j.mu.Lock()
	j.panicMsg = msg
	j.panicStack = stack
	j.mu.Unlock()
}

// currentStage returns the stage last noted by the worker.
func (j *Job) currentStage() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stage
}

// setTracer installs the job's tracer when execution starts.
func (j *Job) setTracer(tr *obs.Tracer) {
	j.mu.Lock()
	j.tracer = tr
	j.mu.Unlock()
}

// TraceTree returns the job's span forest (nil before execution starts).
func (j *Job) TraceTree() []*obs.SpanView {
	j.mu.Lock()
	tr := j.tracer
	j.mu.Unlock()
	return tr.Tree()
}

// finish moves the job to a terminal state. It reports false (and does
// nothing) when the job is already terminal, so late or duplicate
// completions cannot overwrite the first outcome or re-close done.
func (j *Job) finish(status Status, result *Result, err error) bool {
	j.mu.Lock()
	switch j.status {
	case StatusDone, StatusFailed, StatusCanceled:
		j.mu.Unlock()
		return false
	}
	j.status = status
	j.result = result
	if err != nil {
		j.err = err.Error()
	}
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel() // release the context's timer resources
	close(j.done)
	return true
}

// JobView is the JSON snapshot served at GET /v1/jobs/{id}.
type JobView struct {
	ID        string            `json:"id"`
	Digest    string            `json:"digest,omitempty"`
	TraceID   string            `json:"trace_id,omitempty"`
	Status    Status            `json:"status"`
	Error     string            `json:"error,omitempty"`
	Created   time.Time         `json:"created"`
	Started   *time.Time        `json:"started,omitempty"`
	Finished  *time.Time        `json:"finished,omitempty"`
	CacheHit  bool              `json:"cache_hit"`
	StagesMS  map[string]string `json:"stage_times_ms,omitempty"`
	HasResult bool              `json:"has_result"`
}

// View snapshots the job for JSON serving.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.ID,
		Digest:   j.digest,
		Status:   j.status,
		Error:    j.err,
		Created:  j.created,
		CacheHit: j.cacheHit,
	}
	if j.traceID.IsValid() {
		v.TraceID = j.traceID.String()
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if len(j.stages) > 0 {
		v.StagesMS = make(map[string]string, len(j.stages))
		for stage, d := range j.stages {
			v.StagesMS[stage] = strconv.FormatFloat(float64(d)/1e6, 'f', 3, 64)
		}
	}
	v.HasResult = j.result != nil
	return v
}
