package service

// /v2 scenario-matrix API tests: request validation on POST /v2/matrix,
// idempotency-key semantics shared with /v2/merge, every error path of
// GET /v2/jobs/{id}/matrix, pagination over the reduced matrix, and the
// acceptance round trip — a 4-corner × 8-mode generated design whose
// matrix carries per-scenario provenance, plus byte-compatibility of a
// single-neutral-corner merge with the corner-less one.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"modemerge/internal/gen"
	"modemerge/internal/netlist"
)

// matrixRequest is quickRequest plus a minimal two-corner matrix axis.
func matrixRequest() *MergeRequest {
	req := quickRequest()
	req.Corners = []CornerInput{
		{Name: "tc"},
		{Name: "wc", DelayScale: 1.2, LateScale: 1.1, MarginScale: 1.5},
	}
	return req
}

// getMatrix fetches one matrix page and decodes it.
func getMatrix(t *testing.T, url string) matrixResponse {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	var page matrixResponse
	decodeBody(t, resp, http.StatusOK, &page)
	return page
}

func TestV2MatrixRequestValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// /v2/matrix without corners: the route exists to make the matrix
	// contract explicit, so a corner-less body is rejected up front.
	body, _ := json.Marshal(quickRequest())
	e := decodeEnvelope(t, postJSON(t, ts.URL+"/v2/matrix", body, ""),
		http.StatusBadRequest, codeInvalidRequest)
	if e.Message == "" {
		t.Fatal("empty message on corner-less /v2/matrix submit")
	}

	// An unnamed corner fails ValidateCorners on either submit route.
	req := matrixRequest()
	req.Corners[1].Name = ""
	body, _ = json.Marshal(req)
	for _, route := range []string{"/v2/matrix", "/v2/merge"} {
		e = decodeEnvelope(t, postJSON(t, ts.URL+route, body, ""),
			http.StatusBadRequest, codeInvalidRequest)
		if want := "corner 1: name required"; !strings.Contains(e.Message, want) {
			t.Fatalf("%s error = %q, want mention of %q", route, e.Message, want)
		}
	}

	// Duplicate corner names are rejected too.
	req = matrixRequest()
	req.Corners[1].Name = req.Corners[0].Name
	body, _ = json.Marshal(req)
	e = decodeEnvelope(t, postJSON(t, ts.URL+"/v2/matrix", body, ""),
		http.StatusBadRequest, codeInvalidRequest)
	if want := `duplicate corner name "tc"`; !strings.Contains(e.Message, want) {
		t.Fatalf("error = %q, want mention of %q", e.Message, want)
	}
}

func TestV2MatrixIdempotency(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(matrixRequest())
	var first submitResponseV2
	decodeBody(t, postJSON(t, ts.URL+"/v2/matrix", body, "mkey-1"), http.StatusAccepted, &first)

	// Same key, same payload: the original job replays with 200.
	var replay submitResponseV2
	decodeBody(t, postJSON(t, ts.URL+"/v2/matrix", body, "mkey-1"), http.StatusOK, &replay)
	if replay.ID != first.ID || replay.Digest != first.Digest {
		t.Fatalf("replay = %+v, want original job %+v", replay, first)
	}

	// Same key, different corner set: idempotency mismatch.
	other := matrixRequest()
	other.Corners[1].DelayScale = 1.3
	body2, _ := json.Marshal(other)
	e := decodeEnvelope(t, postJSON(t, ts.URL+"/v2/matrix", body2, "mkey-1"),
		http.StatusConflict, codeIdempotencyMismatch)
	if e.Details["job_id"] != first.ID {
		t.Fatalf("details = %v, want job_id %s", e.Details, first.ID)
	}

	// The corner axis is part of the content address: the same modes
	// without corners digest differently, so the result cache can never
	// serve a corner-less merge for a matrix submission or vice versa.
	cornerless, _ := json.Marshal(quickRequest())
	var plain submitResponseV2
	decodeBody(t, postJSON(t, ts.URL+"/v2/merge", cornerless, ""), http.StatusAccepted, &plain)
	if plain.Digest == first.Digest {
		t.Fatalf("corner-bearing and corner-less payloads share digest %s", first.Digest)
	}
}

func TestV2MatrixErrorPaths(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Unknown job id.
	resp, err := http.Get(ts.URL + "/v2/jobs/j999999/matrix")
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusNotFound, codeNotFound)

	// A job that is not done yet is a conflict, mirroring /result.
	slow := matrixRequest()
	slow.Verilog = bigVerilog(5000)
	body, _ := json.Marshal(slow)
	var sub submitResponseV2
	decodeBody(t, postJSON(t, ts.URL+"/v2/matrix", body, ""), http.StatusAccepted, &sub)
	resp, err = http.Get(ts.URL + "/v2/jobs/" + sub.ID + "/matrix")
	if err != nil {
		t.Fatal(err)
	}
	e := decodeEnvelope(t, resp, http.StatusConflict, codeConflict)
	if got := e.Details["status"]; got != string(StatusQueued) && got != string(StatusRunning) {
		t.Fatalf("details.status = %v, want queued or running", got)
	}
	resp = postJSON(t, ts.URL+"/v2/jobs/"+sub.ID+"/cancel", nil, "")
	resp.Body.Close()
	if job, ok := s.Job(sub.ID); ok {
		waitDone(t, job)
	}

	// A done corner-less job has no matrix: 404, not an empty page.
	body, _ = json.Marshal(quickRequest())
	var plain submitResponseV2
	decodeBody(t, postJSON(t, ts.URL+"/v2/merge", body, ""), http.StatusAccepted, &plain)
	job, _ := s.Job(plain.ID)
	waitDone(t, job)
	resp, err = http.Get(ts.URL + "/v2/jobs/" + plain.ID + "/matrix")
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusNotFound, codeNotFound)

	// Malformed paging parameters on a done matrix job.
	body, _ = json.Marshal(matrixRequest())
	var msub submitResponseV2
	decodeBody(t, postJSON(t, ts.URL+"/v2/matrix", body, ""), http.StatusAccepted, &msub)
	mjob, _ := s.Job(msub.ID)
	waitDone(t, mjob)
	for _, bad := range []string{"?limit=0", "?limit=501", "?limit=abc", "?cursor=-1", "?cursor=xyz"} {
		resp, err = http.Get(ts.URL + "/v2/jobs/" + msub.ID + "/matrix" + bad)
		if err != nil {
			t.Fatal(err)
		}
		decodeEnvelope(t, resp, http.StatusBadRequest, codeInvalidRequest)
	}

	// A cursor past the end is a valid empty page, not an error: cursors
	// are resume positions, and the end position is reachable.
	page := getMatrix(t, ts.URL+"/v2/jobs/"+msub.ID+"/matrix?cursor=1000")
	if len(page.Entries) != 0 || page.NextCursor != "" {
		t.Fatalf("past-the-end page = %+v, want empty with no cursor", page)
	}
}

// TestV2MatrixEndToEnd is the acceptance round trip: an 8-mode family on
// a generated multi-domain design crossed with 4 corners submits through
// POST /v2/matrix, and the finished job pages out a reduced scenario
// matrix whose entries carry per-scenario provenance — every one of the
// 8×4 scenarios appears exactly once, under its clique's merged mode in
// its own corner, with the corner overlay appended to the deployed SDC.
func TestV2MatrixEndToEnd(t *testing.T) {
	dspec := gen.DesignSpec{Name: "mx_gen", Seed: 77, Domains: 2, BlocksPerDomain: 2,
		Stages: 2, RegsPerStage: 2, CloudDepth: 1, CrossPaths: 2, IOPairs: 2}
	fspec := gen.FamilySpec{Groups: 2, ModesPerGroup: []int{5, 3}, BasePeriod: 2, Corners: 4}
	g, err := gen.Generate(dspec)
	if err != nil {
		t.Fatal(err)
	}

	req := &MergeRequest{Verilog: netlist.WriteVerilog(g.Design)}
	for _, m := range g.Modes(fspec) {
		req.Modes = append(req.Modes, ModeInput{Name: m.Name, SDC: m.Text})
	}
	for _, crn := range g.CornerSet(fspec) {
		req.Corners = append(req.Corners, CornerInput{
			Name: crn.Name, DelayScale: crn.DelayScale, EarlyScale: crn.EarlyScale,
			LateScale: crn.LateScale, MarginScale: crn.MarginScale, SDC: crn.SDC,
		})
	}

	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(req)
	var sub submitResponseV2
	decodeBody(t, postJSON(t, ts.URL+"/v2/matrix", body, ""), http.StatusAccepted, &sub)
	job, ok := s.Job(sub.ID)
	if !ok {
		t.Fatal("submitted job not found")
	}
	waitDone(t, job)
	if job.Status() != StatusDone {
		t.Fatalf("job ended %s: %s", job.Status(), job.View().Error)
	}

	var result Result
	resp, err := http.Get(ts.URL + "/v2/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, http.StatusOK, &result)
	if len(result.Merged) != fspec.Groups {
		t.Fatalf("merged = %d modes, want %d (groups %v)", len(result.Merged), fspec.Groups, result.Groups)
	}
	// Per-clique reports carry the corner axis as provenance.
	for i, rep := range result.Reports {
		if len(rep.Corners) != fspec.Corners {
			t.Fatalf("report %d corners = %v, want the %d submitted corner names", i, rep.Corners, fspec.Corners)
		}
	}

	// Page the matrix out in small pages and reassemble it.
	var entries []MatrixEntry
	url := ts.URL + "/v2/jobs/" + sub.ID + "/matrix?limit=3"
	for {
		page := getMatrix(t, url)
		if page.Total != fspec.Groups*fspec.Corners {
			t.Fatalf("matrix total = %d, want %d cliques x %d corners", page.Total, fspec.Groups, fspec.Corners)
		}
		entries = append(entries, page.Entries...)
		if page.NextCursor == "" {
			break
		}
		url = ts.URL + "/v2/jobs/" + sub.ID + "/matrix?limit=3&cursor=" + page.NextCursor
	}
	if len(entries) != fspec.Groups*fspec.Corners {
		t.Fatalf("paged out %d entries, want %d", len(entries), fspec.Groups*fspec.Corners)
	}
	// One request with no paging must agree with the paged walk.
	whole := getMatrix(t, ts.URL+"/v2/jobs/"+sub.ID+"/matrix?limit=500")
	if len(whole.Entries) != len(entries) {
		t.Fatalf("unpaged walk = %d entries, paged = %d", len(whole.Entries), len(entries))
	}
	for i := range entries {
		if entries[i].Mode != whole.Entries[i].Mode || entries[i].Corner != whole.Entries[i].Corner ||
			entries[i].SDC != whole.Entries[i].SDC {
			t.Fatalf("entry %d differs between paged and unpaged walks", i)
		}
	}

	// Scenario coverage: every (member mode, corner) pair exactly once,
	// filed under the clique that absorbed the member.
	memberClique := map[string]int{}
	for ci, grp := range result.Groups {
		for _, m := range grp {
			memberClique[m] = ci
		}
	}
	seen := map[string]bool{}
	for _, e := range entries {
		for _, sc := range e.Scenarios {
			if seen[sc] {
				t.Fatalf("scenario %s appears twice in the matrix", sc)
			}
			seen[sc] = true
		}
		if e.SDC == "" {
			t.Fatalf("entry %s@%s has an empty deployed SDC", e.Mode, e.Corner)
		}
	}
	for _, m := range req.Modes {
		for _, crn := range req.Corners {
			key := m.Name + "@" + crn.Name
			if !seen[key] {
				t.Fatalf("scenario %s missing from the matrix", key)
			}
			// The scenario must sit under its member's merged clique mode.
			want := result.Merged[memberClique[m.Name]].Name
			found := false
			for _, e := range entries {
				if e.Corner != crn.Name {
					continue
				}
				for _, sc := range e.Scenarios {
					if sc == key {
						if e.Mode != want {
							t.Fatalf("scenario %s filed under %s, want %s", key, e.Mode, want)
						}
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("scenario %s not filed under any entry", key)
			}
		}
	}

	// Corner overlays ride along: an entry in an overlay-bearing corner
	// embeds the overlay text; the neutral corner's entry is exactly the
	// merged base mode.
	for _, e := range entries {
		var crn *CornerInput
		for i := range req.Corners {
			if req.Corners[i].Name == e.Corner {
				crn = &req.Corners[i]
			}
		}
		if crn == nil {
			t.Fatalf("entry names unknown corner %s", e.Corner)
		}
		if crn.SDC != "" && !strings.Contains(e.SDC, crn.SDC) {
			t.Fatalf("entry %s@%s is missing the corner overlay", e.Mode, e.Corner)
		}
		if crn.SDC == "" {
			for _, mm := range result.Merged {
				if mm.Name == e.Mode && mm.SDC != e.SDC {
					t.Fatalf("neutral-corner entry %s@%s differs from the merged base mode", e.Mode, e.Corner)
				}
			}
		}
	}
}

// TestV2MatrixSingleNeutralCornerByteCompat pins the compatibility
// contract at the API layer: submitting the same modes with one neutral
// corner through /v2/matrix must produce byte-identical merged SDC to
// the corner-less /v2/merge submission — the corner axis degenerates
// cleanly instead of perturbing the historical output.
func TestV2MatrixSingleNeutralCornerByteCompat(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	run := func(req *MergeRequest, route string) *Result {
		body, _ := json.Marshal(req)
		var sub submitResponseV2
		decodeBody(t, postJSON(t, ts.URL+route, body, ""), http.StatusAccepted, &sub)
		job, _ := s.Job(sub.ID)
		waitDone(t, job)
		if job.Status() != StatusDone {
			t.Fatalf("%s job ended %s: %s", route, job.Status(), job.View().Error)
		}
		var result Result
		resp, err := http.Get(ts.URL + "/v2/jobs/" + sub.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, resp, http.StatusOK, &result)
		return &result
	}

	plain := run(quickRequest(), "/v2/merge")
	single := matrixRequest()
	single.Corners = single.Corners[:1] // one neutral corner, no overlay
	matrixed := run(single, "/v2/matrix")

	if len(plain.Merged) != len(matrixed.Merged) {
		t.Fatalf("merged counts differ: %d vs %d", len(plain.Merged), len(matrixed.Merged))
	}
	for i := range plain.Merged {
		if plain.Merged[i].SDC != matrixed.Merged[i].SDC {
			t.Fatalf("merged mode %d differs between corner-less and single-neutral-corner runs:\n--- corner-less\n%s\n--- matrix\n%s",
				i, plain.Merged[i].SDC, matrixed.Merged[i].SDC)
		}
	}
	// And the matrix itself is one entry per clique, each byte-equal to
	// the merged base mode.
	if got, want := len(matrixed.Matrix), len(matrixed.Merged); got != want {
		t.Fatalf("matrix entries = %d, want %d", got, want)
	}
	for i, e := range matrixed.Matrix {
		if e.SDC != matrixed.Merged[i].SDC {
			t.Fatalf("matrix entry %d differs from its merged mode", i)
		}
	}
}
