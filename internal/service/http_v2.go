package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"modemerge/internal/fabric"
	"modemerge/internal/obs"
)

// The /v2 API serves the same job machinery as /v1 behind a uniform
// error envelope and precise status codes:
//
//	{"error": {"code": "...", "message": "...", "details": {...}}}
//
// Codes are stable API surface (see docs/api.md and docs/openapi.yaml):
// invalid_request (400), payload_too_large (413), not_found (404),
// conflict (409), idempotency_mismatch (409), rate_limited (429),
// unavailable (503).
const (
	codeInvalidRequest      = "invalid_request"
	codePayloadTooLarge     = "payload_too_large"
	codeNotFound            = "not_found"
	codeConflict            = "conflict"
	codeIdempotencyMismatch = "idempotency_mismatch"
	codeRateLimited         = "rate_limited"
	codeUnavailable         = "unavailable"
)

// v2Error is the envelope body of every /v2 error response.
type v2Error struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

type v2ErrorResponse struct {
	Error v2Error `json:"error"`
}

func writeErrorV2(w http.ResponseWriter, status int, code, msg string, details map[string]any) {
	writeJSON(w, status, v2ErrorResponse{Error: v2Error{Code: code, Message: msg, Details: details}})
}

// v2Routes is the authoritative route table of the /v2 API; Handler
// registers exactly these patterns and docs/openapi.yaml documents
// exactly these paths (pinned by TestOpenAPICoversV2Routes).
var v2Routes = []string{
	"POST /v2/merge",
	"POST /v2/matrix",
	"GET /v2/jobs",
	"GET /v2/jobs/{id}",
	"GET /v2/jobs/{id}/result",
	"GET /v2/jobs/{id}/matrix",
	"GET /v2/jobs/{id}/trace",
	"POST /v2/jobs/{id}/cancel",
	"GET /v2/jobs/{id}/flight",
	"GET /v2/flights",
	"GET /v2/stats",
	"GET /v2/cluster",
}

// V2Routes lists the /v2 route patterns served by Handler (method,
// space, path — net/http ServeMux pattern syntax).
func V2Routes() []string { return append([]string(nil), v2Routes...) }

func (s *Server) registerV2(mux *http.ServeMux) {
	handlers := map[string]http.HandlerFunc{
		"POST /v2/merge":            s.handleSubmitV2,
		"POST /v2/matrix":           s.handleSubmitMatrixV2,
		"GET /v2/jobs":              s.handleJobsListV2,
		"GET /v2/jobs/{id}":         s.handleJobV2,
		"GET /v2/jobs/{id}/result":  s.handleResultV2,
		"GET /v2/jobs/{id}/matrix":  s.handleJobMatrixV2,
		"GET /v2/jobs/{id}/trace":   s.handleTraceV2,
		"POST /v2/jobs/{id}/cancel": s.handleCancelV2,
		"GET /v2/jobs/{id}/flight":  s.handleFlightV2,
		"GET /v2/flights":           s.handleFlightsV2,
		"GET /v2/stats":             s.handleStats,
		"GET /v2/cluster":           s.handleClusterV2,
	}
	for _, pattern := range v2Routes {
		mux.HandleFunc(pattern, withTraceContext(handlers[pattern]))
	}
}

// traceCtxKey keys the ingested W3C trace id in the request context.
type traceCtxKey struct{}

// withTraceContext implements W3C Trace Context on every /v2 route: a
// valid incoming traceparent header's trace id is adopted (so the job
// joins the caller's distributed trace), an absent or malformed header
// gets a fresh id, and the response always carries a traceparent header
// naming the trace this server acted in.
func withTraceContext(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		traceID, _, err := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if err != nil {
			traceID = obs.NewTraceID()
		}
		w.Header().Set("traceparent", obs.FormatTraceparent(traceID, obs.NewSpanID()))
		ctx := context.WithValue(r.Context(), traceCtxKey{}, traceID)
		h(w, r.WithContext(ctx))
	}
}

// requestTraceID returns the trace id withTraceContext stored on the
// request (zero when the middleware did not run, e.g. /v1 routes).
func requestTraceID(r *http.Request) obs.TraceID {
	id, _ := r.Context().Value(traceCtxKey{}).(obs.TraceID)
	return id
}

// submitResponseV2 extends the v1 submit payload with the request's
// content digest and the job's trace id so clients can correlate jobs
// with inputs and with their own distributed traces.
type submitResponseV2 struct {
	ID      string `json:"id"`
	Status  Status `json:"status"`
	Cached  bool   `json:"cached"`
	Digest  string `json:"digest"`
	TraceID string `json:"trace_id,omitempty"`
}

func submitViewV2(job *Job) submitResponseV2 {
	view := job.View()
	return submitResponseV2{
		ID: job.ID, Status: view.Status, Cached: view.CacheHit,
		Digest: view.Digest, TraceID: view.TraceID,
	}
}

// idemEntry records one Idempotency-Key's first use.
type idemEntry struct {
	digest string
	jobID  string
}

func (s *Server) handleSubmitV2(w http.ResponseWriter, r *http.Request) {
	s.submitV2(w, r, false)
}

// handleSubmitMatrixV2 is POST /v2/matrix: a merge submission that
// requires an MCMM scenario matrix (at least one corner). It shares the
// whole submit pipeline with POST /v2/merge — same idempotency layer,
// same digests, same job machinery — so a matrix job replayed through
// either route with the same Idempotency-Key resolves to one job.
func (s *Server) handleSubmitMatrixV2(w http.ResponseWriter, r *http.Request) {
	s.submitV2(w, r, true)
}

func (s *Server) submitV2(w http.ResponseWriter, r *http.Request, requireCorners bool) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	var req MergeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErrorV2(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
				map[string]any{"limit_bytes": tooBig.Limit})
			return
		}
		writeErrorV2(w, http.StatusBadRequest, codeInvalidRequest, "invalid request body: "+err.Error(), nil)
		return
	}
	if requireCorners && len(req.Corners) == 0 {
		writeErrorV2(w, http.StatusBadRequest, codeInvalidRequest,
			"scenario matrix requires at least one corner (use POST /v2/merge for corner-less merges)", nil)
		return
	}

	idemKey := r.Header.Get("Idempotency-Key")
	if idemKey != "" {
		// Serialize check-then-submit so concurrent retries with one key
		// create exactly one job.
		s.idemMu.Lock()
		defer s.idemMu.Unlock()
		if v, ok := s.idem.get(idemKey); ok {
			e := v.(idemEntry)
			if e.digest != req.resultKey() {
				writeErrorV2(w, http.StatusConflict, codeIdempotencyMismatch,
					"Idempotency-Key was first used with a different request payload",
					map[string]any{"key": idemKey, "job_id": e.jobID})
				return
			}
			if job, ok := s.Job(e.jobID); ok {
				// Replay: same key, same payload — return the original job.
				writeJSON(w, http.StatusOK, submitViewV2(job))
				return
			}
			// The job aged out of history; fall through and resubmit.
		}
	}

	job, err := s.SubmitTraced(&req, requestTraceID(r))
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeErrorV2(w, http.StatusTooManyRequests, codeRateLimited, err.Error(), nil)
		return
	case errors.Is(err, ErrDraining):
		writeErrorV2(w, http.StatusServiceUnavailable, codeUnavailable, err.Error(), nil)
		return
	case err != nil:
		writeErrorV2(w, http.StatusBadRequest, codeInvalidRequest, err.Error(), nil)
		return
	}
	if idemKey != "" {
		s.idem.put(idemKey, idemEntry{digest: job.digest, jobID: job.ID})
	}
	writeJSON(w, http.StatusAccepted, submitViewV2(job))
}

// jobsListResponse is the GET /v2/jobs payload. NextCursor is set when
// more jobs exist beyond this page; pass it back as ?cursor= to resume.
type jobsListResponse struct {
	Jobs       []JobView `json:"jobs"`
	NextCursor string    `json:"next_cursor,omitempty"`
}

// jobIDLess orders job ids "j%06d" by sequence number: shorter ids sort
// first, equal lengths lexicographically, so ids past j999999 still
// order correctly.
func jobIDLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

func (s *Server) handleJobsListV2(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 50
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > 500 {
			writeErrorV2(w, http.StatusBadRequest, codeInvalidRequest,
				"limit must be an integer between 1 and 500", map[string]any{"limit": raw})
			return
		}
		limit = n
	}
	var statusFilter Status
	if raw := q.Get("status"); raw != "" {
		switch Status(raw) {
		case StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCanceled:
			statusFilter = Status(raw)
		default:
			writeErrorV2(w, http.StatusBadRequest, codeInvalidRequest,
				"unknown status filter", map[string]any{"status": raw})
			return
		}
	}
	cursor := q.Get("cursor")
	if cursor != "" && !idSafe(cursor) {
		writeErrorV2(w, http.StatusBadRequest, codeInvalidRequest, "malformed cursor", nil)
		return
	}

	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobIDLess(jobs[i].ID, jobs[k].ID) })

	resp := jobsListResponse{Jobs: []JobView{}}
	for _, j := range jobs {
		if cursor != "" && !jobIDLess(cursor, j.ID) {
			continue // at or before the cursor: already served
		}
		view := j.View()
		if statusFilter != "" && view.Status != statusFilter {
			continue
		}
		if len(resp.Jobs) == limit {
			resp.NextCursor = resp.Jobs[limit-1].ID
			break
		}
		resp.Jobs = append(resp.Jobs, view)
	}
	writeJSON(w, http.StatusOK, resp)
}

// lookupJobV2 is lookupJob with the /v2 error envelope.
func (s *Server) lookupJobV2(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	if !idSafe(id) {
		writeErrorV2(w, http.StatusBadRequest, codeInvalidRequest, "malformed job id", nil)
		return nil, false
	}
	job, ok := s.Job(id)
	if !ok {
		writeErrorV2(w, http.StatusNotFound, codeNotFound, "unknown job "+id,
			map[string]any{"id": id})
		return nil, false
	}
	return job, true
}

func (s *Server) handleJobV2(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.lookupJobV2(w, r); ok {
		writeJSON(w, http.StatusOK, job.View())
	}
}

func (s *Server) handleResultV2(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJobV2(w, r)
	if !ok {
		return
	}
	view := job.View()
	switch view.Status {
	case StatusDone:
		writeJSON(w, http.StatusOK, job.Result())
	case StatusFailed, StatusCanceled:
		writeErrorV2(w, http.StatusConflict, codeConflict,
			"job "+job.ID+" is "+string(view.Status)+": "+view.Error,
			map[string]any{"id": job.ID, "status": view.Status})
	default:
		writeErrorV2(w, http.StatusConflict, codeConflict,
			"job "+job.ID+" is still "+string(view.Status),
			map[string]any{"id": job.ID, "status": view.Status})
	}
}

// matrixResponse is the GET /v2/jobs/{id}/matrix payload: one page of
// the reduced scenario matrix. NextCursor is set when more entries exist
// beyond this page; pass it back as ?cursor= to resume.
type matrixResponse struct {
	ID         string        `json:"id"`
	Total      int           `json:"total"`
	Entries    []MatrixEntry `json:"entries"`
	NextCursor string        `json:"next_cursor,omitempty"`
}

// handleJobMatrixV2 serves a done job's reduced scenario matrix with
// cursor pagination (the full matrix is #cliques × #corners entries of
// complete SDC texts — large designs want pages, not one payload). The
// cursor is the positional index of the first entry to serve: matrix
// order is deterministic (merged-mode-major, corner order as submitted),
// so positions are stable across requests.
func (s *Server) handleJobMatrixV2(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJobV2(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	limit := 50
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > 500 {
			writeErrorV2(w, http.StatusBadRequest, codeInvalidRequest,
				"limit must be an integer between 1 and 500", map[string]any{"limit": raw})
			return
		}
		limit = n
	}
	offset := 0
	if raw := q.Get("cursor"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeErrorV2(w, http.StatusBadRequest, codeInvalidRequest,
				"malformed cursor", map[string]any{"cursor": raw})
			return
		}
		offset = n
	}

	view := job.View()
	if view.Status != StatusDone {
		if view.Status == StatusFailed || view.Status == StatusCanceled {
			writeErrorV2(w, http.StatusConflict, codeConflict,
				"job "+job.ID+" is "+string(view.Status)+": "+view.Error,
				map[string]any{"id": job.ID, "status": view.Status})
		} else {
			writeErrorV2(w, http.StatusConflict, codeConflict,
				"job "+job.ID+" is still "+string(view.Status),
				map[string]any{"id": job.ID, "status": view.Status})
		}
		return
	}
	result := job.Result()
	if result == nil || len(result.Matrix) == 0 {
		writeErrorV2(w, http.StatusNotFound, codeNotFound,
			"job "+job.ID+" has no scenario matrix (submitted without corners)",
			map[string]any{"id": job.ID})
		return
	}

	resp := matrixResponse{ID: job.ID, Total: len(result.Matrix), Entries: []MatrixEntry{}}
	if offset < len(result.Matrix) {
		end := offset + limit
		if end > len(result.Matrix) {
			end = len(result.Matrix)
		}
		resp.Entries = append(resp.Entries, result.Matrix[offset:end]...)
		if end < len(result.Matrix) {
			resp.NextCursor = strconv.Itoa(end)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTraceV2(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJobV2(w, r)
	if !ok {
		return
	}
	tree := job.TraceTree()
	if tree == nil {
		tree = []*obs.SpanView{}
	}
	writeJSON(w, http.StatusOK, traceResponse{ID: job.ID, Status: job.Status(), Trace: tree})
}

// flightsResponse is the GET /v2/flights payload.
type flightsResponse struct {
	Flights []FlightSummary `json:"flights"`
}

// handleFlightsV2 lists the flight recorder's ring, newest first. A
// disabled recorder serves an empty list rather than an error, so
// clients need no capability probe.
func (s *Server) handleFlightsV2(w http.ResponseWriter, r *http.Request) {
	flights := s.flights.List()
	if flights == nil {
		flights = []FlightSummary{}
	}
	writeJSON(w, http.StatusOK, flightsResponse{Flights: flights})
}

// handleFlightV2 serves one job's flight recording. 404 when the job
// never triggered a recording (or the recorder is disabled) — the job
// itself may still exist at GET /v2/jobs/{id}.
func (s *Server) handleFlightV2(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !idSafe(id) {
		writeErrorV2(w, http.StatusBadRequest, codeInvalidRequest, "malformed job id", nil)
		return
	}
	rec, ok := s.flights.Get(id)
	if !ok {
		writeErrorV2(w, http.StatusNotFound, codeNotFound,
			"no flight recording for job "+id, map[string]any{"id": id})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleCancelV2 requests cancellation; unlike /v1 (which always accepts)
// a job already in a terminal state is a 409 conflict, so clients can
// distinguish "will stop" from "already over".
func (s *Server) handleCancelV2(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJobV2(w, r)
	if !ok {
		return
	}
	switch status := job.Status(); status {
	case StatusDone, StatusFailed, StatusCanceled:
		writeErrorV2(w, http.StatusConflict, codeConflict,
			"job "+job.ID+" is already "+string(status),
			map[string]any{"id": job.ID, "status": status})
	default:
		job.Cancel()
		writeJSON(w, http.StatusAccepted, job.View())
	}
}

// handleClusterV2 serves the merge fabric's cluster view: registered
// workers, queued and in-flight clique jobs, and the steal/retry/
// completion counters. With the fabric disabled it reports
// enabled=false with empty collections (200, not 404 — the route is
// always present, the feature is a runtime mode).
func (s *Server) handleClusterV2(w http.ResponseWriter, r *http.Request) {
	if s.fabric == nil {
		writeJSON(w, http.StatusOK, fabric.ClusterStatus{
			Workers:  []fabric.WorkerStatus{},
			InFlight: []fabric.InFlight{},
		})
		return
	}
	writeJSON(w, http.StatusOK, s.fabric.Status())
}
