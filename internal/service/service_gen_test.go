package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"modemerge/internal/gen"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
)

// TestEndToEndGeneratedDesign submits a synthetic multi-domain design
// from internal/gen — the same generator the differential fuzzing harness
// samples — through the full HTTP job flow: two clock domains with gated
// blocks and cross-domain paths, and a two-group mode family that must
// merge into exactly two cliques, both validated equivalent.
func TestEndToEndGeneratedDesign(t *testing.T) {
	dspec := gen.DesignSpec{Name: "svc_gen", Seed: 77, Domains: 2, BlocksPerDomain: 2,
		Stages: 2, RegsPerStage: 2, CloudDepth: 1, CrossPaths: 2, IOPairs: 2}
	fspec := gen.FamilySpec{Groups: 2, ModesPerGroup: []int{3, 2}, BasePeriod: 2}
	g, err := gen.Generate(dspec)
	if err != nil {
		t.Fatal(err)
	}

	req := &MergeRequest{Verilog: netlist.WriteVerilog(g.Design)}
	for _, m := range g.Modes(fspec) {
		req.Modes = append(req.Modes, ModeInput{Name: m.Name, SDC: m.Text})
	}

	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/merge", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	decodeBody(t, resp, http.StatusAccepted, &sub)
	if sub.ID == "" {
		t.Fatalf("submit = %+v, want job id", sub)
	}

	var view JobView
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, resp, http.StatusOK, &view)
		if view.Status == StatusDone || view.Status == StatusFailed || view.Status == StatusCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", view.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.Status != StatusDone {
		t.Fatalf("job = %+v, want done", view)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var result Result
	decodeBody(t, resp, http.StatusOK, &result)

	// The family is built as two mutually non-mergeable groups; each must
	// collapse into one merged mode covering all its members.
	if len(result.Merged) != fspec.Groups {
		t.Fatalf("merged = %d modes, want %d (groups %v)", len(result.Merged), fspec.Groups, result.Groups)
	}
	total := 0
	for _, grp := range result.Groups {
		total += len(grp)
	}
	if total != fspec.TotalModes() {
		t.Fatalf("groups %v cover %d modes, want %d", result.Groups, total, fspec.TotalModes())
	}
	if len(result.Equivalence) != fspec.Groups {
		t.Fatalf("equivalence reports = %d, want %d", len(result.Equivalence), fspec.Groups)
	}
	for i, eq := range result.Equivalence {
		if !eq.Equivalent {
			t.Errorf("clique %d (%s) not equivalent: %+v", i, result.Merged[i].Name, eq)
		}
	}

	// Every merged SDC must parse against the generated design and carry
	// clocks from both domains plus the test clock namespace.
	design, err := netlist.ParseVerilog(req.Verilog, library.Default(), "")
	if err != nil {
		t.Fatal(err)
	}
	for _, mm := range result.Merged {
		merged, _, err := sdc.Parse(mm.Name, mm.SDC, design)
		if err != nil {
			t.Fatalf("merged SDC %s does not parse: %v", mm.Name, err)
		}
		if len(merged.Clocks) < dspec.Domains {
			t.Errorf("merged mode %s has %d clocks, want >= %d", mm.Name, len(merged.Clocks), dspec.Domains)
		}
	}
}
