package service

import (
	"encoding/json"
	"errors"
	"expvar"
	"io"
	"net/http"

	"modemerge/internal/fabric"
	"modemerge/internal/obs"
)

// maxRequestBytes caps POST /v1/merge bodies (netlists are text; 32 MiB
// is far beyond anything this flow handles in one job).
const maxRequestBytes = 32 << 20

// Handler returns the service's HTTP API. The /v2 surface (documented
// in docs/api.md and docs/openapi.yaml) is the current one:
//
//	POST /v2/merge            submit a job (202 + {id, status, cached, digest});
//	                          honors Idempotency-Key
//	GET  /v2/jobs             list jobs (cursor pagination, ?status= filter)
//	GET  /v2/jobs/{id}        job status snapshot
//	GET  /v2/jobs/{id}/result finished result (409 until done)
//	GET  /v2/jobs/{id}/trace  the job's span tree (stage timings, counters)
//	POST /v2/jobs/{id}/cancel request cancellation (409 when already terminal)
//	GET  /v2/jobs/{id}/flight the job's flight recording (404 when none)
//	GET  /v2/flights          the flight recorder's ring, newest first
//	GET  /v2/stats            this server's counters and stage timings
//
// Every /v2 route speaks W3C Trace Context: a valid traceparent request
// header's trace id is adopted (jobs join the caller's trace) and every
// response carries a traceparent header.
// Errors on /v2 use a uniform envelope with stable codes (see http_v2.go).
// The /v1 routes remain as a deprecated thin shim with their original
// response shapes and send a Deprecation header. Unversioned:
//
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             liveness probe
//	GET  /debug/vars          process-wide expvar (includes "modemerged")
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/merge", deprecatedV1(s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", deprecatedV1(s.handleJob))
	mux.HandleFunc("GET /v1/jobs/{id}/result", deprecatedV1(s.handleResult))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", deprecatedV1(s.handleTrace))
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", deprecatedV1(s.handleCancel))
	mux.HandleFunc("GET /v1/stats", deprecatedV1(s.handleStats))
	s.registerV2(mux)
	if s.fabric != nil {
		// Cluster-internal wire API (join/poll/complete + blob
		// passthrough); versioned by path, documented in docs/api.md.
		mux.Handle("/fabric/v1/", s.fabric.Handler())
	}
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// deprecatedV1 marks a /v1 response as deprecated (RFC 9745) and points
// clients at the /v2 successor without changing the response body.
func deprecatedV1(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "@1755043200") // 2025-08-13, the /v2 release
		w.Header().Set("Link", "<docs/api.md>; rel=\"deprecation\", </v2>; rel=\"successor-version\"")
		h(w, r)
	}
}

type submitResponse struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
	Cached bool   `json:"cached"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	var req MergeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	job, err := s.Submit(&req)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	view := job.View()
	writeJSON(w, http.StatusAccepted, submitResponse{ID: job.ID, Status: view.Status, Cached: view.CacheHit})
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	if !idSafe(id) {
		writeError(w, http.StatusBadRequest, "malformed job id")
		return nil, false
	}
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return nil, false
	}
	return job, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.lookupJob(w, r); ok {
		writeJSON(w, http.StatusOK, job.View())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	view := job.View()
	switch view.Status {
	case StatusDone:
		writeJSON(w, http.StatusOK, job.Result())
	case StatusFailed, StatusCanceled:
		writeError(w, http.StatusConflict, "job "+job.ID+" is "+string(view.Status)+": "+view.Error)
	default:
		writeError(w, http.StatusConflict, "job "+job.ID+" is still "+string(view.Status))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, job.View())
}

// traceResponse is the GET /v1/jobs/{id}/trace payload.
type traceResponse struct {
	ID     string          `json:"id"`
	Status Status          `json:"status"`
	Trace  []*obs.SpanView `json:"trace"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	tree := job.TraceTree()
	if tree == nil {
		tree = []*obs.SpanView{}
	}
	writeJSON(w, http.StatusOK, traceResponse{ID: job.ID, Status: job.Status(), Trace: tree})
}

// statsResponse extends the shared snapshot with queue occupancy; the
// snapshot part is identical to the expvar "modemerged" variable.
type statsResponse struct {
	StatsSnapshot
	Queue DrainTimeoutStatus `json:"queue"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		StatsSnapshot: s.metrics.Snapshot(),
		Queue:         s.QueueStatus(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
	s.writeClusterMetrics(w)
}

// writeClusterMetrics appends the modemerged_cluster_* family to a
// Prometheus scrape. The gauges exist on every server (enabled=0 when
// no fabric runs) so dashboards need no existence checks.
func (s *Server) writeClusterMetrics(w io.Writer) {
	var st fabric.ClusterStatus
	if s.fabric != nil {
		st = s.fabric.Status()
	}
	pw := obs.NewPromWriter(w)
	pw.Gauge("modemerged_cluster_enabled", "Whether this server coordinates a merge fabric.",
		obs.Series{Value: boolGauge(st.Enabled)})
	pw.Gauge("modemerged_cluster_workers", "Remote merge workers currently registered.",
		obs.Series{Value: float64(len(st.Workers))})
	pw.Gauge("modemerged_cluster_pending_cliques", "Clique jobs queued awaiting a worker.",
		obs.Series{Value: float64(st.Pending)})
	pw.Gauge("modemerged_cluster_inflight_cliques", "Clique jobs currently leased to workers.",
		obs.Series{Value: float64(len(st.InFlight))})
	pw.Counter("modemerged_cluster_steals_total", "Clique jobs claimed by remote workers.",
		obs.Series{Value: float64(st.Steals)})
	pw.Counter("modemerged_cluster_retries_total", "Clique jobs requeued after lease expiry or lost artifacts.",
		obs.Series{Value: float64(st.Retries)})
	pw.Counter("modemerged_cluster_cliques_total", "Clique jobs by terminal outcome.",
		obs.Series{Labels: []string{"outcome", "completed"}, Value: float64(st.Completed)},
		obs.Series{Labels: []string{"outcome", "failed"}, Value: float64(st.Failed)})
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
