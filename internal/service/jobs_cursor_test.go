package service

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"
)

// listPage fetches one GET /v2/jobs page directly against the handler.
func listPage(t *testing.T, s *Server, cursor string, limit int) jobsListResponse {
	t.Helper()
	url := "/v2/jobs?limit=" + itoa(limit)
	if cursor != "" {
		url += "&cursor=" + cursor
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	if rec.Code != 200 {
		t.Fatalf("GET %s: %d %s", url, rec.Code, rec.Body.String())
	}
	var resp jobsListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func itoa(n int) string { return strconv.Itoa(n) }

// submitBatch submits n distinct quick jobs and waits for them all.
func submitBatch(t *testing.T, s *Server, start, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	jobs := make([]*Job, 0, n)
	for i := start; i < start+n; i++ {
		req := quickRequest()
		req.Modes[0] = fmtMode(i) // distinct digest per job, same design
		job, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
		jobs = append(jobs, job)
	}
	for _, j := range jobs {
		waitDone(t, j)
	}
	return ids
}

// TestJobsCursorStableUnderEviction is the regression test for cursor
// pagination racing the bounded finished-job history: eviction between
// page fetches must never duplicate an entry or skip a job that is
// still in the table. The cursor is a job id compared by jobIDLess (not
// a positional offset), so pages resume correctly even when every job
// served on an earlier page has since been evicted.
func TestJobsCursorStableUnderEviction(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:         2,
		JobHistoryLimit: 4,
		Logger:          quietSlog(),
	})

	submitBatch(t, s, 0, 6) // history holds only the newest 4 of these

	seen := map[string]bool{}
	var pages [][]JobView
	page := listPage(t, s, "", 2)
	pages = append(pages, page.Jobs)

	// Between pages, churn the history: six more finished jobs evict
	// everything that was listed on page one (and more).
	submitBatch(t, s, 100, 6)

	cursor := page.NextCursor
	for cursor != "" {
		page = listPage(t, s, cursor, 2)
		pages = append(pages, page.Jobs)
		cursor = page.NextCursor
	}

	last := ""
	for _, jobs := range pages {
		for _, j := range jobs {
			if seen[j.ID] {
				t.Fatalf("job %s served twice across pages", j.ID)
			}
			seen[j.ID] = true
			if last != "" && !jobIDLess(last, j.ID) {
				t.Fatalf("page order regressed: %s after %s", j.ID, last)
			}
			last = j.ID
		}
	}

	// Every job still in the table and past the first page's cursor must
	// have been served by the later pages — eviction may hide old jobs,
	// never surviving ones.
	firstCursor := pages[0][len(pages[0])-1].ID
	s.mu.Lock()
	var missing []string
	for id := range s.jobs {
		if jobIDLess(firstCursor, id) && !seen[id] {
			missing = append(missing, id)
		}
	}
	s.mu.Unlock()
	if len(missing) > 0 {
		t.Fatalf("live jobs skipped by cursor pagination: %v", missing)
	}
}
