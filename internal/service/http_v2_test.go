package service

// /v2 API surface tests: the error envelope's shape and codes on every
// failure path, Idempotency-Key semantics, jobs-list pagination and
// filtering, and the /v1 deprecation headers. The happy path is shared
// with /v1 (same job machinery) and covered end-to-end there.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"
)

// postJSON posts body to url with optional Idempotency-Key.
func postJSON(t *testing.T, url string, body []byte, idemKey string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeEnvelope asserts the response is a /v2 error with the wanted
// status and code, and returns the envelope for detail checks.
func decodeEnvelope(t *testing.T, resp *http.Response, wantStatus int, wantCode string) v2Error {
	t.Helper()
	var env v2ErrorResponse
	decodeBody(t, resp, wantStatus, &env)
	if env.Error.Code != wantCode {
		t.Fatalf("error code = %q, want %q (message: %s)", env.Error.Code, wantCode, env.Error.Message)
	}
	if env.Error.Message == "" {
		t.Fatal("error envelope has an empty message")
	}
	return env.Error
}

func TestV2SubmitHappyPath(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(quickRequest())
	resp := postJSON(t, ts.URL+"/v2/merge", body, "")
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/v2 response carries a Deprecation header")
	}
	var sub submitResponseV2
	decodeBody(t, resp, http.StatusAccepted, &sub)
	if sub.ID == "" || sub.Digest == "" || sub.Cached {
		t.Fatalf("submit = %+v, want fresh job with id and digest", sub)
	}

	job, ok := s.Job(sub.ID)
	if !ok {
		t.Fatal("submitted job not found")
	}
	waitDone(t, job)

	var view JobView
	r2, err := http.Get(ts.URL + "/v2/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, r2, http.StatusOK, &view)
	if view.Status != StatusDone || view.Digest != sub.Digest {
		t.Fatalf("job view = %+v, want done with digest %s", view, sub.Digest)
	}

	var result Result
	r3, err := http.Get(ts.URL + "/v2/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, r3, http.StatusOK, &result)
	if len(result.Merged) == 0 {
		t.Fatalf("result has no merged modes: %+v", result)
	}

	var trace traceResponse
	r4, err := http.Get(ts.URL + "/v2/jobs/" + sub.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, r4, http.StatusOK, &trace)
	if trace.ID != sub.ID || len(trace.Trace) == 0 {
		t.Fatalf("trace = id %s with %d spans, want %s with spans", trace.ID, len(trace.Trace), sub.ID)
	}
}

func TestV2MalformedJSON(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v2/merge", []byte(`{"verilog": `), "")
	decodeEnvelope(t, resp, http.StatusBadRequest, codeInvalidRequest)

	// Unknown fields are rejected too (DisallowUnknownFields).
	resp = postJSON(t, ts.URL+"/v2/merge", []byte(`{"bogus_field": 1}`), "")
	decodeEnvelope(t, resp, http.StatusBadRequest, codeInvalidRequest)
}

func TestV2OversizedBody(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A syntactically valid prefix followed by > maxRequestBytes of
	// padding, so the size cap (not the JSON parser) must trip.
	body := append([]byte(`{"verilog": "`), bytes.Repeat([]byte("x"), maxRequestBytes+1)...)
	resp := postJSON(t, ts.URL+"/v2/merge", body, "")
	e := decodeEnvelope(t, resp, http.StatusRequestEntityTooLarge, codePayloadTooLarge)
	if lim, ok := e.Details["limit_bytes"].(float64); !ok || int(lim) != maxRequestBytes {
		t.Fatalf("details.limit_bytes = %v, want %d", e.Details["limit_bytes"], maxRequestBytes)
	}
}

func TestV2UnknownAndMalformedJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, route := range []string{"/v2/jobs/j999999", "/v2/jobs/j999999/result", "/v2/jobs/j999999/trace"} {
		resp, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		e := decodeEnvelope(t, resp, http.StatusNotFound, codeNotFound)
		if e.Details["id"] != "j999999" {
			t.Fatalf("%s: details.id = %v, want j999999", route, e.Details["id"])
		}
	}

	// idSafe rejects path separators; %5C is an escaped backslash, which
	// the mux passes through as one {id} segment.
	resp, err := http.Get(ts.URL + "/v2/jobs/ba%5Cd")
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusBadRequest, codeInvalidRequest)
}

func TestV2ResultBeforeDone(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := quickRequest()
	req.Verilog = bigVerilog(5000)
	body, _ := json.Marshal(req)
	var sub submitResponseV2
	decodeBody(t, postJSON(t, ts.URL+"/v2/merge", body, ""), http.StatusAccepted, &sub)

	resp, err := http.Get(ts.URL + "/v2/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	e := decodeEnvelope(t, resp, http.StatusConflict, codeConflict)
	if got := e.Details["status"]; got != string(StatusQueued) && got != string(StatusRunning) {
		t.Fatalf("details.status = %v, want queued or running", got)
	}

	// Cancel while non-terminal is accepted...
	resp = postJSON(t, ts.URL+"/v2/jobs/"+sub.ID+"/cancel", nil, "")
	var view JobView
	decodeBody(t, resp, http.StatusAccepted, &view)
	job, _ := s.Job(sub.ID)
	waitDone(t, job)

	// ...and the canceled job's result stays a 409 conflict.
	resp, err = http.Get(ts.URL + "/v2/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusConflict, codeConflict)
}

func TestV2CancelAfterDone(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(quickRequest())
	var sub submitResponseV2
	decodeBody(t, postJSON(t, ts.URL+"/v2/merge", body, ""), http.StatusAccepted, &sub)
	job, _ := s.Job(sub.ID)
	waitDone(t, job)
	if job.Status() != StatusDone {
		t.Fatalf("job ended %s, want done", job.Status())
	}

	resp := postJSON(t, ts.URL+"/v2/jobs/"+sub.ID+"/cancel", nil, "")
	e := decodeEnvelope(t, resp, http.StatusConflict, codeConflict)
	if e.Details["status"] != string(StatusDone) {
		t.Fatalf("details.status = %v, want done", e.Details["status"])
	}
}

func TestV2Idempotency(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(quickRequest())
	var first submitResponseV2
	decodeBody(t, postJSON(t, ts.URL+"/v2/merge", body, "key-1"), http.StatusAccepted, &first)

	// Replay with the same key and payload: 200 with the original job.
	var replay submitResponseV2
	decodeBody(t, postJSON(t, ts.URL+"/v2/merge", body, "key-1"), http.StatusOK, &replay)
	if replay.ID != first.ID || replay.Digest != first.Digest {
		t.Fatalf("replay = %+v, want original job %+v", replay, first)
	}

	// Same key, different payload: conflict naming the original job.
	other := quickRequest()
	other.Modes[0].Name = "func_b"
	body2, _ := json.Marshal(other)
	resp := postJSON(t, ts.URL+"/v2/merge", body2, "key-1")
	e := decodeEnvelope(t, resp, http.StatusConflict, codeIdempotencyMismatch)
	if e.Details["key"] != "key-1" || e.Details["job_id"] != first.ID {
		t.Fatalf("details = %v, want key key-1 and job_id %s", e.Details, first.ID)
	}

	// A different key with the same payload is an independent submit.
	resp = postJSON(t, ts.URL+"/v2/merge", body, "key-2")
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh key status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestV2JobsPaginationAndFilter(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 5
	var ids []string
	for i := 0; i < n; i++ {
		req := quickRequest()
		req.Modes[0].Name = fmt.Sprintf("func_%d", i) // distinct digests
		job, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
		waitDone(t, job)
	}
	sort.Strings(ids)

	// Walk pages of 2: 2 + 2 + 1, cursors chaining, ids ascending.
	var got []string
	cursor := ""
	for page := 0; ; page++ {
		url := ts.URL + "/v2/jobs?limit=2"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var list jobsListResponse
		decodeBody(t, resp, http.StatusOK, &list)
		for _, v := range list.Jobs {
			got = append(got, v.ID)
		}
		if list.NextCursor == "" {
			break
		}
		cursor = list.NextCursor
		if page > n {
			t.Fatal("pagination does not terminate")
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("job ids not ascending: %v", got)
	}
	if strings.Join(got, ",") != strings.Join(ids, ",") {
		t.Fatalf("paged ids = %v, want %v", got, ids)
	}

	// Status filter: all jobs are done; no job is canceled.
	for filter, want := range map[string]int{"done": n, "canceled": 0} {
		resp, err := http.Get(ts.URL + "/v2/jobs?status=" + filter)
		if err != nil {
			t.Fatal(err)
		}
		var list jobsListResponse
		decodeBody(t, resp, http.StatusOK, &list)
		if len(list.Jobs) != want {
			t.Fatalf("status=%s returned %d jobs, want %d", filter, len(list.Jobs), want)
		}
	}

	// Invalid query parameters are envelope 400s.
	for _, q := range []string{"?limit=0", "?limit=501", "?limit=abc", "?status=bogus", "?cursor=ba%5Cd"} {
		resp, err := http.Get(ts.URL + "/v2/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		decodeEnvelope(t, resp, http.StatusBadRequest, codeInvalidRequest)
	}
}

func TestV2QueueFullRateLimited(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single worker with a slow blocker and wait until it is
	// actually running — only then is the queue slot the sole capacity.
	blocker := quickRequest()
	blocker.Verilog = bigVerilog(5000)
	bjob, err := s.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	defer bjob.Cancel()
	for deadline := time.Now().Add(10 * time.Second); bjob.Status() == StatusQueued; {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Fill the one queue slot, then the next distinct submission must
	// bounce with 429 + Retry-After in the v2 envelope.
	submit := func(i int) *http.Response {
		req := quickRequest()
		req.Modes[0].Name = fmt.Sprintf("func_%d", i)
		body, _ := json.Marshal(req)
		return postJSON(t, ts.URL+"/v2/merge", body, "")
	}
	resp := submit(0)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue-filling submission: status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	resp = submit(1)
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	decodeEnvelope(t, resp, http.StatusTooManyRequests, codeRateLimited)
}

func TestV1DeprecationHeaders(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats status = %d", resp.StatusCode)
	}
	if dep := resp.Header.Get("Deprecation"); !strings.HasPrefix(dep, "@") {
		t.Errorf("Deprecation header = %q, want @<unix-ts>", dep)
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, `rel="successor-version"`) {
		t.Errorf("Link header = %q, want a successor-version relation", link)
	}

	// /v2/stats serves the same counters without the deprecation marker
	// and includes the incremental-cache section.
	resp2, err := http.Get(ts.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Header.Get("Deprecation") != "" {
		t.Error("/v2/stats carries a Deprecation header")
	}
	var stats map[string]json.RawMessage
	decodeBody(t, resp2, http.StatusOK, &stats)
	if _, ok := stats["incr_cache"]; !ok {
		t.Errorf("/v2/stats missing incr_cache section: %v", keys(stats))
	}
}

func keys(m map[string]json.RawMessage) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestV2RoutesRegistered drives every advertised /v2 pattern and expects
// anything but 404/405 — i.e. V2Routes() and the mux agree.
func TestV2RoutesRegistered(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, pattern := range V2Routes() {
		method, path, _ := strings.Cut(pattern, " ")
		path = strings.ReplaceAll(path, "{id}", "j000000")
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			// 404 is fine only as a not_found envelope for the fake job id,
			// never a mux miss (which serves text/plain).
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
				t.Errorf("%s: not registered (plain 404)", pattern)
			}
		}
		if resp.StatusCode == http.StatusMethodNotAllowed {
			t.Errorf("%s: method not allowed", pattern)
		}
	}
}

// TestV2StatsExpvarParity mirrors TestStatsExpvarParity for /v2: the
// /v2/stats payload must carry exactly the StatsSnapshot keys plus
// "queue".
func TestV2StatsExpvarParity(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Run one job so counters are warm.
	job, err := s.Submit(quickRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	time.Sleep(10 * time.Millisecond)

	resp, err := http.Get(ts.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]json.RawMessage
	decodeBody(t, resp, http.StatusOK, &stats)

	snap, err := json.Marshal(s.metrics.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snapKeys map[string]json.RawMessage
	if err := json.Unmarshal(snap, &snapKeys); err != nil {
		t.Fatal(err)
	}
	for k := range snapKeys {
		if _, ok := stats[k]; !ok {
			t.Errorf("/v2/stats missing snapshot key %q", k)
		}
	}
	if _, ok := stats["queue"]; !ok {
		t.Error("/v2/stats missing queue section")
	}
}
