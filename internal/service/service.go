// Package service is the long-running merge service behind cmd/modemerged:
// an HTTP JSON API that accepts merge jobs (Verilog netlist + cell library
// + N SDC modes), runs them through the timing-graph merging flow on a
// bounded worker pool, and serves results asynchronously.
//
// Design:
//
//   - A bounded queue feeds a fixed worker pool; submissions beyond the
//     queue depth are rejected with 503 so load sheds at the edge instead
//     of piling up.
//   - Two content-addressed caches make repeated submissions near-free:
//     prepared designs (parsed netlist + library + built timing graph,
//     keyed by the parse inputs) and finished results (keyed by the full
//     request). Concurrent first submissions of one design parse it once.
//   - Every job runs under a context.Context carrying a per-job execution
//     deadline; cancellation propagates through core.MergeAll and
//     core.CheckEquivalence into the STA worker pools, so canceled jobs
//     release their workers promptly.
//   - Shutdown drains cooperatively: submissions stop, queued and running
//     jobs get the drain grace period, then everything still running is
//     canceled and marked canceled.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"modemerge/internal/core"
	"modemerge/internal/fabric"
	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/obs"
	"modemerge/internal/pipeline"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

// Config tunes a Server.
type Config struct {
	// Workers is the merge worker pool size (concurrent jobs). Default:
	// GOMAXPROCS.
	Workers int
	// MergeParallelism bounds the intra-merge worker pools inside each
	// job (core.Options.Parallelism): the sharded endpoint loops, the
	// pass-2/3 relation queries and the pairwise mergeability analysis.
	// Merged output is byte-identical for every setting. Default:
	// GOMAXPROCS.
	MergeParallelism int
	// QueueDepth bounds queued (not yet running) jobs. Default 64.
	QueueDepth int
	// DefaultJobTimeout applies when a request carries no timeout_ms.
	// Default 2m.
	DefaultJobTimeout time.Duration
	// MaxJobTimeout clamps request timeouts. Default 15m.
	MaxJobTimeout time.Duration
	// DesignCacheSize bounds the prepared-design cache. Default 32.
	DesignCacheSize int
	// ResultCacheSize bounds the finished-result cache. Default 256.
	ResultCacheSize int
	// JobHistoryLimit bounds how many finished (done/failed/canceled)
	// jobs stay available for status polling; beyond it the oldest
	// terminal jobs are evicted from the job table. Default 1024.
	JobHistoryLimit int
	// IncrCacheSize bounds the incremental sub-merge cache (per-mode
	// timing contexts, pair verdicts, clique artifacts — see
	// internal/incr) shared by all jobs. Default 4096 entries.
	IncrCacheSize int
	// IncrCacheDir persists pair verdicts and clique artifacts on disk so
	// warm-start reruns survive restarts. Empty = memory only. An
	// unusable directory logs a warning and degrades to memory only.
	IncrCacheDir string
	// Logger receives structured job lifecycle logs. Default:
	// slog.Default().
	Logger *slog.Logger
	// SpanExporter, when set, receives every finished job's span records
	// (OTLP-flavored — see obs.SpanRecord) once the job reaches a
	// terminal state. Export runs on the worker after the job is already
	// terminal, so a slow exporter never delays a result. Nil disables
	// export at zero cost.
	SpanExporter obs.SpanExporter
	// Flight configures the merge flight recorder: automatic capture of
	// span tree, stage counters, CPU profile and goroutine dump for jobs
	// that run slow, fail or panic. Zero value disables recording.
	Flight FlightConfig
	// Fabric configures the distributed merge fabric. Zero value:
	// disabled — per-clique merges run in-process on one pipeline worker,
	// exactly the sequential order the single-process path always had.
	Fabric FabricConfig
}

// FabricConfig enables the coordinator role of the distributed merge
// fabric: multi-mode clique merges are published to a work-stealing
// queue served under /fabric/v1/, where remote merge workers
// (modemerged -role worker -join <addr>) and the coordinator's own
// local executors compete for them. Merged output stays byte-identical
// to the single-process path at any worker count.
type FabricConfig struct {
	// Enabled turns the coordinator on.
	Enabled bool
	// LocalExecutors is how many coordinator-side goroutines also pull
	// clique jobs, so a cluster of one makes progress before any worker
	// joins. 0 means the default of 1; -1 disables local execution
	// (pure dispatcher — jobs wait for remote workers).
	LocalExecutors int
	// DispatchWidth bounds how many clique jobs one merge job keeps in
	// flight on the fabric at once (the ParMap fan-out width). Default 8.
	DispatchWidth int
	// LeaseTTL is how long a claimed clique job may go silent before the
	// worker is presumed dead and the job is requeued. Default 30s.
	LeaseTTL time.Duration
	// MaxAttempts bounds executions of one clique job across lease
	// expiries before it fails permanently. Default 3.
	MaxAttempts int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MergeParallelism <= 0 {
		c.MergeParallelism = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultJobTimeout <= 0 {
		c.DefaultJobTimeout = 2 * time.Minute
	}
	if c.MaxJobTimeout <= 0 {
		c.MaxJobTimeout = 15 * time.Minute
	}
	if c.DesignCacheSize <= 0 {
		c.DesignCacheSize = 32
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 256
	}
	if c.JobHistoryLimit <= 0 {
		c.JobHistoryLimit = 1024
	}
	if c.Fabric.DispatchWidth <= 0 {
		c.Fabric.DispatchWidth = 8
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// ErrQueueFull rejects submissions when the queue is at capacity.
var ErrQueueFull = errors.New("service: job queue is full")

// ErrDraining rejects submissions during shutdown.
var ErrDraining = errors.New("service: server is draining")

// Server is one merge service instance.
type Server struct {
	cfg     Config
	metrics *Metrics
	logger  *slog.Logger
	flights *FlightRecorder // nil when disabled

	designs *designCache
	results *lruCache
	incr    *incr.Cache
	fabric  *fabric.Coordinator // nil when the fabric is disabled

	// idem maps Idempotency-Key values to the submitted request digest
	// and job id; idemMu serializes the check-then-submit sequence so
	// concurrent retries with one key create one job.
	idem   *lruCache
	idemMu sync.Mutex

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // terminal job ids, oldest first, len ≤ JobHistoryLimit
	draining bool

	queue chan *Job
	wg    sync.WaitGroup

	seq atomic.Int64
}

// New starts a Server with its worker pool running.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		metrics:    newMetrics(processMetrics),
		logger:     cfg.Logger,
		designs:    newDesignCache(cfg.DesignCacheSize),
		results:    newLRU(cfg.ResultCacheSize),
		incr:       incr.New(cfg.IncrCacheSize),
		idem:       newLRU(1024),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		jobs:       map[string]*Job{},
		queue:      make(chan *Job, cfg.QueueDepth),
	}
	if cfg.IncrCacheDir != "" {
		if _, err := s.incr.WithDisk(cfg.IncrCacheDir); err != nil {
			cfg.Logger.Warn("incremental cache disk store disabled",
				"dir", cfg.IncrCacheDir, "error", err)
		}
	}
	if cfg.Fabric.Enabled {
		// Coordinator and workers must share one artifact store: reuse the
		// incremental cache's write-through store (disk when IncrCacheDir
		// is set) so every locally merged clique is already published, or
		// install an in-memory store when the cache had none.
		store := s.incr.Store()
		if store == nil {
			store = incr.NewMemStore()
			s.incr.WithStore(store)
		}
		locals := cfg.Fabric.LocalExecutors
		switch {
		case locals == 0:
			locals = 1
		case locals < 0:
			locals = 0
		}
		s.fabric = fabric.NewCoordinator(store, fabric.CoordinatorConfig{
			LeaseTTL:       cfg.Fabric.LeaseTTL,
			MaxAttempts:    cfg.Fabric.MaxAttempts,
			LocalExecutors: locals,
			Logger:         cfg.Logger,
		})
	}
	if cfg.Flight.Dir != "" {
		fr, err := NewFlightRecorder(cfg.Flight, cfg.Logger)
		if err != nil {
			cfg.Logger.Warn("flight recorder disabled", "dir", cfg.Flight.Dir, "error", err)
		} else {
			s.flights = fr
		}
	}
	s.metrics.AddIncrSource(s.incr.Stats())
	s.incr.SetHitObserver(s.metrics.ObserveIncrHit)
	s.metrics.SetMergeParallelism(cfg.MergeParallelism)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the server's counters (used by /v1/stats and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// IncrCache exposes the shared incremental sub-merge cache.
func (s *Server) IncrCache() *incr.Cache { return s.incr }

// Fabric exposes the merge fabric coordinator (nil when disabled).
func (s *Server) Fabric() *fabric.Coordinator { return s.fabric }

// Job looks a job up by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Submit validates and enqueues a merge request. When the result cache
// already holds the answer the returned job is immediately done (status
// StatusDone, cache_hit=true) without touching the queue.
func (s *Server) Submit(req *MergeRequest) (*Job, error) {
	return s.SubmitTraced(req, obs.TraceID{})
}

// SubmitTraced is Submit continuing an existing distributed trace: the
// job adopts traceID (the id a /v2 request carried in its traceparent
// header) so its spans, exported records and log lines all join the
// caller's trace. An invalid (zero) id gets a fresh random one.
func (s *Server) SubmitTraced(req *MergeRequest, traceID obs.TraceID) (*Job, error) {
	if err := req.validateRequest(); err != nil {
		return nil, err
	}
	if !traceID.IsValid() {
		traceID = obs.NewTraceID()
	}
	id := fmt.Sprintf("j%06d", s.seq.Add(1))
	jobCtx, jobCancel := context.WithCancel(s.baseCtx)
	job := newJob(id, jobCtx, jobCancel)
	job.digest = req.resultKey()
	job.traceID = traceID

	if cached, ok := s.results.get(job.digest); ok {
		job.mu.Lock()
		job.cacheHit = true
		job.mu.Unlock()
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			jobCancel()
			return nil, ErrDraining
		}
		s.jobs[id] = job
		s.mu.Unlock()
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.CacheHitsResult }, 1)
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsDone }, 1)
		s.finishJob(job, StatusDone, cached.(*Result), nil)
		return job, nil
	}

	job.req = req
	// The draining check and the enqueue must be one atomic step: Shutdown
	// sets draining and closes the queue under the same lock, so checking
	// and sending outside it could send on a closed channel.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		jobCancel()
		return nil, ErrDraining
	}
	select {
	case s.queue <- job:
		s.jobs[id] = job
		s.mu.Unlock()
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.CacheMisses }, 1)
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsQueued }, 1)
		return job, nil
	default:
		s.mu.Unlock()
		jobCancel()
		return nil, ErrQueueFull
	}
}

// finishJob moves a job to a terminal state and records it in the
// finished-job history, evicting the oldest terminal jobs beyond
// JobHistoryLimit so s.jobs cannot grow without bound. Once the job is
// terminal its spans are exported and the flight recorder decides
// whether to keep a recording — both strictly after the result is
// visible, so neither can delay or alter it.
func (s *Server) finishJob(job *Job, status Status, result *Result, err error) {
	if !job.finish(status, result, err) {
		return
	}
	s.mu.Lock()
	s.finished = append(s.finished, job.ID)
	for len(s.finished) > s.cfg.JobHistoryLimit {
		delete(s.jobs, s.finished[0])
		s.finished[0] = ""
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
	s.exportJobSpans(job)
	s.flights.observe(job)
}

// exportJobSpans hands the finished job's span records to the
// configured exporter. Cache-hit jobs never execute and have no tracer;
// they export nothing.
func (s *Server) exportJobSpans(job *Job) {
	exp := s.cfg.SpanExporter
	if exp == nil {
		return
	}
	job.mu.Lock()
	tr := job.tracer
	job.mu.Unlock()
	if tr == nil {
		return
	}
	if err := exp.ExportSpans(tr.Records()); err != nil {
		s.logger.Warn("span export failed", "job", job.ID,
			"trace_id", job.traceID.String(), "error", err)
	}
}

// worker drains the queue until it closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one job end to end. Every log line it emits carries
// the job's trace id, so one grep joins slog records with the exported
// spans and the /v2 trace endpoint.
func (s *Server) runJob(job *Job) {
	logger := s.logger.With("job", job.ID, "trace_id", job.traceID.String())
	defer func() {
		if r := recover(); r != nil {
			// A panic in the merge flow on one job's input must not take
			// down the daemon: fail the job and keep the worker alive.
			stack := debug.Stack()
			logger.Error("job panicked",
				"stage", job.currentStage(), "panic", r, "stack", string(stack))
			job.notePanic(fmt.Sprint(r), stack)
			s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsFailed }, 1)
			s.finishJob(job, StatusFailed, nil, fmt.Errorf("internal error: %v", r))
		}
	}()
	if job.ctx.Err() != nil {
		// Canceled (or drained) while still queued.
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsCanceled }, 1)
		s.finishJob(job, StatusCanceled, nil, job.ctx.Err())
		return
	}
	req := job.req
	timeout := s.cfg.DefaultJobTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxJobTimeout {
		timeout = s.cfg.MaxJobTimeout
	}
	ctx, cancel := context.WithTimeout(job.ctx, timeout)
	defer cancel()

	wait := job.markRunning()
	s.metrics.ObserveQueueWait(wait)
	s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsRunning }, 1)
	defer s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsRunning }, -1)
	logger.Info("job started",
		"modes", len(req.Modes), "queue_wait_ms", wait.Milliseconds())

	// The flight watchdog arms once the job is running: if it is still
	// going when the latency threshold passes, the recorder captures a
	// CPU profile and goroutine dump mid-flight.
	stopWatch := s.flights.watch(job)
	defer stopWatch()

	start := time.Now()
	result, err := s.execute(ctx, job, req)
	elapsed := time.Since(start)
	var pe *pipeline.PanicError
	switch {
	case err == nil:
		s.results.put(req.resultKey(), result)
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsDone }, 1)
		s.finishJob(job, StatusDone, result, nil)
		logger.Info("job done", "elapsed_ms", elapsed.Milliseconds())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsCanceled }, 1)
		s.finishJob(job, StatusCanceled, nil, err)
		logger.Info("job canceled",
			"stage", job.currentStage(), "elapsed_ms", elapsed.Milliseconds())
	case errors.As(err, &pe):
		// A panic on a pipeline stage goroutine surfaces as an error from
		// Group.Wait; map it onto the same crash accounting the worker's
		// own recover gives in-goroutine panics.
		logger.Error("job panicked",
			"stage", job.currentStage(), "panic", pe.Value, "stack", string(pe.Stack))
		job.notePanic(fmt.Sprint(pe.Value), pe.Stack)
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsFailed }, 1)
		s.finishJob(job, StatusFailed, nil, fmt.Errorf("internal error: %v", pe.Value))
	default:
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsFailed }, 1)
		s.finishJob(job, StatusFailed, nil, err)
		logger.Warn("job failed",
			"stage", job.currentStage(),
			"elapsed_ms", elapsed.Milliseconds(), "error", err)
	}
}

// execute runs the parse → merge → validate pipeline for one job.
func (s *Server) execute(ctx context.Context, job *Job, req *MergeRequest) (*Result, error) {
	observe := func(stage string, d time.Duration) {
		job.addStage(stage, d)
		s.metrics.ObserveStage(stage, d)
	}

	// The job's tracer records the whole pipeline as one span tree, served
	// at GET /v1/jobs/{id}/trace after (and during) execution. It carries
	// the job's trace id so exported spans join the submitter's trace.
	tracer := obs.NewTracerWithID(job.traceID)
	job.setTracer(tracer)
	root := tracer.Start("job")
	root.SetAttr("job_id", job.ID)
	defer root.Finish()
	if req.testPanic {
		panic("test-injected panic")
	}

	// Parse (or reuse) the design, then parse the modes against it. The
	// shared singleflight build runs under the server's base context, not
	// the job's, so one job's cancellation cannot poison the cache entry;
	// the waiter still leaves promptly when its own ctx is done.
	job.noteStage("parse")
	parseSpan := root.Child("parse")
	parseStart := time.Now()
	prep, hit, err := s.designs.get(ctx, req.designKey(), func() (*preparedDesign, error) {
		return prepareDesign(s.baseCtx, req)
	})
	if hit {
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.CacheHitsDesign }, 1)
		parseSpan.Add("design_cache_hit", 1)
	}
	if err != nil {
		parseSpan.Finish()
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		parseSpan.Finish()
		return nil, err
	}
	modes := make([]*sdc.Mode, len(req.Modes))
	for i, m := range req.Modes {
		mode, _, err := sdc.Parse(m.Name, m.SDC, prep.design)
		if err != nil {
			parseSpan.Finish()
			return nil, fmt.Errorf("mode %s: %w", m.Name, err)
		}
		modes[i] = mode
	}
	parseSpan.Add("modes", int64(len(modes)))
	parseSpan.Finish()
	observe("parse", time.Since(parseStart))

	job.noteStage("merge")
	corners := req.coreCorners()
	opt := core.Options{
		Tolerance:           req.Options.Tolerance,
		MaxRefineIterations: req.Options.MaxRefineIterations,
		Parallelism:         s.cfg.MergeParallelism,
		Corners:             corners,
		STA:                 sta.Options{Workers: req.Options.Workers},
		StageHook:           observe,
		Trace:               root,
		Cache:               s.incr,
	}
	mb, cliques, err := core.PlanMerge(prep.graph, modes, opt)
	if err != nil {
		return nil, err
	}
	merged, reports, err := s.mergeCliques(ctx, req, prep, modes, cliques, opt)
	if err != nil {
		return nil, err
	}
	result := &Result{
		Reports:   reports,
		Groups:    mb.GroupNames(cliques),
		Conflicts: mb.Conflicts,
	}
	for _, m := range merged {
		result.Merged = append(result.Merged, MergedMode{Name: m.Name, SDC: sdc.Write(m)})
	}

	// On scenario-matrix requests, reduce the #modes × #corners input
	// matrix to #cliques × #corners deployable entries: each merged mode
	// deployed in each corner (merged text + that corner's overlay), with
	// the member scenario keys it covers as provenance.
	if len(corners) > 0 {
		for ci, m := range result.Merged {
			for _, crn := range corners {
				text := m.SDC
				if crn.SDC != "" {
					text += "\n" + crn.SDC + "\n"
				}
				entry := MatrixEntry{Mode: m.Name, Corner: crn.Name, SDC: text}
				for _, member := range result.Groups[ci] {
					entry.Scenarios = append(entry.Scenarios, member+"@"+crn.Name)
				}
				result.Matrix = append(result.Matrix, entry)
			}
		}
	}

	if req.wantValidate() {
		job.noteStage("validate")
		validateSpan := root.Child("validate")
		defer validateSpan.Finish()
		validateStart := time.Now()
		for ci, clique := range cliques {
			if len(clique) < 2 {
				continue
			}
			group := make([]*sdc.Mode, len(clique))
			for i, mi := range clique {
				group[i] = modes[mi]
			}
			vopt := opt
			vopt.Trace = validateSpan.Child("validate:" + merged[ci].Name)
			res, err := core.CheckEquivalence(ctx, prep.graph, group, merged[ci], vopt)
			vopt.Trace.Finish()
			if err != nil {
				return nil, fmt.Errorf("validating %s: %w", merged[ci].Name, err)
			}
			result.Equivalence = append(result.Equivalence, EquivalenceReport{
				Merged:      merged[ci].Name,
				Equivalent:  res.Equivalent(),
				Matched:     res.MatchedGroups,
				Pessimistic: res.PessimisticGroups,
				Optimistic:  res.OptimisticMismatches,
				Unresolved:  len(res.Unresolved),
			})
		}
		observe("validate", time.Since(validateStart))
	}
	return result, nil
}

// cliqueOut is one merged clique flowing through the merge stage.
type cliqueOut struct {
	mode   *sdc.Mode
	report *core.Report
}

// mergeCliques is the per-clique merge stage of the job pipeline,
// expressed as a typed dataflow: Emit(clique indices) → ParMap(merge) →
// Collect, with ordered fan-in so assembly order equals clique order.
// Without a fabric the stage runs one worker wide — the exact
// sequential loop core.MergeAll runs, byte for byte. With a fabric,
// multi-mode cliques are published to the work-stealing queue (up to
// DispatchWidth in flight) and merged by whichever node is free first;
// singletons pass straight through. Determinism of the merge engine
// plus order preservation keeps the output byte-identical either way.
func (s *Server) mergeCliques(ctx context.Context, req *MergeRequest, prep *preparedDesign, modes []*sdc.Mode, cliques [][]int, opt core.Options) ([]*sdc.Mode, []*core.Report, error) {
	width := 1
	if s.fabric != nil {
		width = s.cfg.Fabric.DispatchWidth
	}
	pg, _ := pipeline.NewGroup(ctx)
	idx := make([]int, len(cliques))
	for i := range idx {
		idx[i] = i
	}
	in := pipeline.Emit(pg, 1, idx...)
	outs := pipeline.ParMap(pg, 1, width, in, func(cx context.Context, ci int) (cliqueOut, error) {
		group := make([]*sdc.Mode, len(cliques[ci]))
		for i, mi := range cliques[ci] {
			group[i] = modes[mi]
		}
		if s.fabric != nil && len(group) > 1 {
			m, rep, err := s.mergeOnFabric(cx, req, prep, group, opt)
			return cliqueOut{mode: m, report: rep}, err
		}
		m, rep, err := core.MergeClique(cx, prep.graph, group, opt)
		return cliqueOut{mode: m, report: rep}, err
	})
	collected := pipeline.Collect(pg, outs)
	if err := pg.Wait(); err != nil {
		return nil, nil, err
	}
	merged := make([]*sdc.Mode, len(*collected))
	reports := make([]*core.Report, len(*collected))
	for i, o := range *collected {
		merged[i] = o.mode
		reports[i] = o.report
	}
	return merged, reports, nil
}

// mergeOnFabric runs one multi-mode clique on the distributed fabric:
// build the self-contained spec, address it by its content key, submit
// to the coordinator (which short-circuits on a stored artifact, dedups
// concurrent identical submissions and retries worker deaths), and
// decode the artifact bytes. The span mirrors the one core.MergeClique
// opens locally, so job traces keep their shape across deployments.
func (s *Server) mergeOnFabric(ctx context.Context, req *MergeRequest, prep *preparedDesign, group []*sdc.Mode, opt core.Options) (*sdc.Mode, *core.Report, error) {
	names := make([]string, len(group))
	members := make([]fabric.Mode, len(group))
	for i, m := range group {
		names[i] = m.Name
		// Canonical member texts: the worker re-parses and re-writes them,
		// and sdc.Write∘Parse is stable, so both sides compute one key.
		members[i] = fabric.Mode{Name: m.Name, SDC: sdc.Write(m)}
	}
	span := opt.Trace.Child("merge:" + strings.Join(names, "+"))
	defer span.Finish()
	span.SetAttr("design", prep.graph.Design.Name)
	span.SetAttr("members", strings.Join(names, ","))
	span.SetAttr("fabric", "1")
	spec := fabric.Spec{
		Key:                 core.CliqueKey(prep.graph, opt, group),
		Verilog:             req.Verilog,
		Top:                 req.Top,
		Library:             req.Library,
		MergedName:          opt.MergedName,
		Tolerance:           opt.Tolerance,
		MaxRefineIterations: opt.MaxRefineIterations,
		STAWorkers:          opt.STA.Workers,
		Corners:             fabric.WireCorners(opt.Corners),
		Members:             members,
	}
	b, err := s.fabric.Exec(ctx, spec)
	if err != nil {
		return nil, nil, fmt.Errorf("merging %v: %w", names, err)
	}
	m, rep, err := core.DecodeCliqueArtifact(b, prep.graph)
	if err != nil {
		return nil, nil, fmt.Errorf("merging %v: decoding artifact: %w", names, err)
	}
	return m, rep, nil
}

// prepareDesign parses the library and netlist and builds the timing
// graph; the result is immutable and shared across jobs. ctx is checked
// between the pipeline steps so a canceled build releases its goroutine
// instead of grinding through a potentially huge design.
func prepareDesign(ctx context.Context, req *MergeRequest) (*preparedDesign, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lib := library.Default()
	if req.Library != "" {
		parsed, err := library.Parse(req.Library)
		if err != nil {
			return nil, fmt.Errorf("library: %w", err)
		}
		lib = parsed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	design, err := netlist.ParseVerilog(req.Verilog, lib, req.Top)
	if err != nil {
		return nil, fmt.Errorf("verilog: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, err := design.Validate(); err != nil {
		return nil, fmt.Errorf("design: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, err := graph.Build(design)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	return &preparedDesign{lib: lib, design: design, graph: g}, nil
}

// Shutdown drains the server: no new submissions, queued and running jobs
// get until ctx is done to finish, then everything left is canceled. It
// returns nil on a clean drain or ctx.Err() when the grace period ran
// out (all jobs are still accounted for: late ones finish canceled).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		s.closeFabric()
		return nil
	case <-ctx.Done():
		// Grace period over: cancel every job (running ones abort
		// cooperatively through their contexts) and wait for workers.
		s.baseCancel()
		<-done
		s.closeFabric()
		return ctx.Err()
	}
}

// closeFabric stops the merge fabric coordinator once no job can submit
// new clique work (workers drained), failing anything still queued with
// fabric.ErrClosed.
func (s *Server) closeFabric() {
	if s.fabric != nil {
		s.fabric.Close()
	}
}

// DrainTimeoutStatus summarizes queue state for /v1/stats.
type DrainTimeoutStatus struct {
	Draining bool `json:"draining"`
	Queued   int  `json:"queued"`
	Jobs     int  `json:"jobs"`
}

// QueueStatus snapshots queue occupancy.
func (s *Server) QueueStatus() DrainTimeoutStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return DrainTimeoutStatus{Draining: s.draining, Queued: len(s.queue), Jobs: len(s.jobs)}
}

// idSafe reports whether a job id is well-formed (defense for path
// parameters).
func idSafe(id string) bool {
	return id != "" && !strings.ContainsAny(id, "/\\")
}
