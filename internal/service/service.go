// Package service is the long-running merge service behind cmd/modemerged:
// an HTTP JSON API that accepts merge jobs (Verilog netlist + cell library
// + N SDC modes), runs them through the timing-graph merging flow on a
// bounded worker pool, and serves results asynchronously.
//
// Design:
//
//   - A bounded queue feeds a fixed worker pool; submissions beyond the
//     queue depth are rejected with 503 so load sheds at the edge instead
//     of piling up.
//   - Two content-addressed caches make repeated submissions near-free:
//     prepared designs (parsed netlist + library + built timing graph,
//     keyed by the parse inputs) and finished results (keyed by the full
//     request). Concurrent first submissions of one design parse it once.
//   - Every job runs under a context.Context carrying a per-job execution
//     deadline; cancellation propagates through core.MergeAll and
//     core.CheckEquivalence into the STA worker pools, so canceled jobs
//     release their workers promptly.
//   - Shutdown drains cooperatively: submissions stop, queued and running
//     jobs get the drain grace period, then everything still running is
//     canceled and marked canceled.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"modemerge/internal/core"
	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/obs"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

// Config tunes a Server.
type Config struct {
	// Workers is the merge worker pool size (concurrent jobs). Default:
	// GOMAXPROCS.
	Workers int
	// MergeParallelism bounds the intra-merge worker pools inside each
	// job (core.Options.Parallelism): the sharded endpoint loops, the
	// pass-2/3 relation queries and the pairwise mergeability analysis.
	// Merged output is byte-identical for every setting. Default:
	// GOMAXPROCS.
	MergeParallelism int
	// QueueDepth bounds queued (not yet running) jobs. Default 64.
	QueueDepth int
	// DefaultJobTimeout applies when a request carries no timeout_ms.
	// Default 2m.
	DefaultJobTimeout time.Duration
	// MaxJobTimeout clamps request timeouts. Default 15m.
	MaxJobTimeout time.Duration
	// DesignCacheSize bounds the prepared-design cache. Default 32.
	DesignCacheSize int
	// ResultCacheSize bounds the finished-result cache. Default 256.
	ResultCacheSize int
	// JobHistoryLimit bounds how many finished (done/failed/canceled)
	// jobs stay available for status polling; beyond it the oldest
	// terminal jobs are evicted from the job table. Default 1024.
	JobHistoryLimit int
	// IncrCacheSize bounds the incremental sub-merge cache (per-mode
	// timing contexts, pair verdicts, clique artifacts — see
	// internal/incr) shared by all jobs. Default 4096 entries.
	IncrCacheSize int
	// IncrCacheDir persists pair verdicts and clique artifacts on disk so
	// warm-start reruns survive restarts. Empty = memory only. An
	// unusable directory logs a warning and degrades to memory only.
	IncrCacheDir string
	// Logger receives structured job lifecycle logs. Default:
	// slog.Default().
	Logger *slog.Logger
	// SpanExporter, when set, receives every finished job's span records
	// (OTLP-flavored — see obs.SpanRecord) once the job reaches a
	// terminal state. Export runs on the worker after the job is already
	// terminal, so a slow exporter never delays a result. Nil disables
	// export at zero cost.
	SpanExporter obs.SpanExporter
	// Flight configures the merge flight recorder: automatic capture of
	// span tree, stage counters, CPU profile and goroutine dump for jobs
	// that run slow, fail or panic. Zero value disables recording.
	Flight FlightConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MergeParallelism <= 0 {
		c.MergeParallelism = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultJobTimeout <= 0 {
		c.DefaultJobTimeout = 2 * time.Minute
	}
	if c.MaxJobTimeout <= 0 {
		c.MaxJobTimeout = 15 * time.Minute
	}
	if c.DesignCacheSize <= 0 {
		c.DesignCacheSize = 32
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 256
	}
	if c.JobHistoryLimit <= 0 {
		c.JobHistoryLimit = 1024
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// ErrQueueFull rejects submissions when the queue is at capacity.
var ErrQueueFull = errors.New("service: job queue is full")

// ErrDraining rejects submissions during shutdown.
var ErrDraining = errors.New("service: server is draining")

// Server is one merge service instance.
type Server struct {
	cfg     Config
	metrics *Metrics
	logger  *slog.Logger
	flights *FlightRecorder // nil when disabled

	designs *designCache
	results *lruCache
	incr    *incr.Cache

	// idem maps Idempotency-Key values to the submitted request digest
	// and job id; idemMu serializes the check-then-submit sequence so
	// concurrent retries with one key create one job.
	idem   *lruCache
	idemMu sync.Mutex

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // terminal job ids, oldest first, len ≤ JobHistoryLimit
	draining bool

	queue chan *Job
	wg    sync.WaitGroup

	seq atomic.Int64
}

// New starts a Server with its worker pool running.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		metrics:    newMetrics(processMetrics),
		logger:     cfg.Logger,
		designs:    newDesignCache(cfg.DesignCacheSize),
		results:    newLRU(cfg.ResultCacheSize),
		incr:       incr.New(cfg.IncrCacheSize),
		idem:       newLRU(1024),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		jobs:       map[string]*Job{},
		queue:      make(chan *Job, cfg.QueueDepth),
	}
	if cfg.IncrCacheDir != "" {
		if _, err := s.incr.WithDisk(cfg.IncrCacheDir); err != nil {
			cfg.Logger.Warn("incremental cache disk store disabled",
				"dir", cfg.IncrCacheDir, "error", err)
		}
	}
	if cfg.Flight.Dir != "" {
		fr, err := NewFlightRecorder(cfg.Flight, cfg.Logger)
		if err != nil {
			cfg.Logger.Warn("flight recorder disabled", "dir", cfg.Flight.Dir, "error", err)
		} else {
			s.flights = fr
		}
	}
	s.metrics.AddIncrSource(s.incr.Stats())
	s.incr.SetHitObserver(s.metrics.ObserveIncrHit)
	s.metrics.SetMergeParallelism(cfg.MergeParallelism)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the server's counters (used by /v1/stats and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// IncrCache exposes the shared incremental sub-merge cache.
func (s *Server) IncrCache() *incr.Cache { return s.incr }

// Job looks a job up by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Submit validates and enqueues a merge request. When the result cache
// already holds the answer the returned job is immediately done (status
// StatusDone, cache_hit=true) without touching the queue.
func (s *Server) Submit(req *MergeRequest) (*Job, error) {
	return s.SubmitTraced(req, obs.TraceID{})
}

// SubmitTraced is Submit continuing an existing distributed trace: the
// job adopts traceID (the id a /v2 request carried in its traceparent
// header) so its spans, exported records and log lines all join the
// caller's trace. An invalid (zero) id gets a fresh random one.
func (s *Server) SubmitTraced(req *MergeRequest, traceID obs.TraceID) (*Job, error) {
	if err := req.validateRequest(); err != nil {
		return nil, err
	}
	if !traceID.IsValid() {
		traceID = obs.NewTraceID()
	}
	id := fmt.Sprintf("j%06d", s.seq.Add(1))
	jobCtx, jobCancel := context.WithCancel(s.baseCtx)
	job := newJob(id, jobCtx, jobCancel)
	job.digest = req.resultKey()
	job.traceID = traceID

	if cached, ok := s.results.get(job.digest); ok {
		job.mu.Lock()
		job.cacheHit = true
		job.mu.Unlock()
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			jobCancel()
			return nil, ErrDraining
		}
		s.jobs[id] = job
		s.mu.Unlock()
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.CacheHitsResult }, 1)
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsDone }, 1)
		s.finishJob(job, StatusDone, cached.(*Result), nil)
		return job, nil
	}

	job.req = req
	// The draining check and the enqueue must be one atomic step: Shutdown
	// sets draining and closes the queue under the same lock, so checking
	// and sending outside it could send on a closed channel.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		jobCancel()
		return nil, ErrDraining
	}
	select {
	case s.queue <- job:
		s.jobs[id] = job
		s.mu.Unlock()
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.CacheMisses }, 1)
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsQueued }, 1)
		return job, nil
	default:
		s.mu.Unlock()
		jobCancel()
		return nil, ErrQueueFull
	}
}

// finishJob moves a job to a terminal state and records it in the
// finished-job history, evicting the oldest terminal jobs beyond
// JobHistoryLimit so s.jobs cannot grow without bound. Once the job is
// terminal its spans are exported and the flight recorder decides
// whether to keep a recording — both strictly after the result is
// visible, so neither can delay or alter it.
func (s *Server) finishJob(job *Job, status Status, result *Result, err error) {
	if !job.finish(status, result, err) {
		return
	}
	s.mu.Lock()
	s.finished = append(s.finished, job.ID)
	for len(s.finished) > s.cfg.JobHistoryLimit {
		delete(s.jobs, s.finished[0])
		s.finished[0] = ""
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
	s.exportJobSpans(job)
	s.flights.observe(job)
}

// exportJobSpans hands the finished job's span records to the
// configured exporter. Cache-hit jobs never execute and have no tracer;
// they export nothing.
func (s *Server) exportJobSpans(job *Job) {
	exp := s.cfg.SpanExporter
	if exp == nil {
		return
	}
	job.mu.Lock()
	tr := job.tracer
	job.mu.Unlock()
	if tr == nil {
		return
	}
	if err := exp.ExportSpans(tr.Records()); err != nil {
		s.logger.Warn("span export failed", "job", job.ID,
			"trace_id", job.traceID.String(), "error", err)
	}
}

// worker drains the queue until it closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one job end to end. Every log line it emits carries
// the job's trace id, so one grep joins slog records with the exported
// spans and the /v2 trace endpoint.
func (s *Server) runJob(job *Job) {
	logger := s.logger.With("job", job.ID, "trace_id", job.traceID.String())
	defer func() {
		if r := recover(); r != nil {
			// A panic in the merge flow on one job's input must not take
			// down the daemon: fail the job and keep the worker alive.
			stack := debug.Stack()
			logger.Error("job panicked",
				"stage", job.currentStage(), "panic", r, "stack", string(stack))
			job.notePanic(fmt.Sprint(r), stack)
			s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsFailed }, 1)
			s.finishJob(job, StatusFailed, nil, fmt.Errorf("internal error: %v", r))
		}
	}()
	if job.ctx.Err() != nil {
		// Canceled (or drained) while still queued.
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsCanceled }, 1)
		s.finishJob(job, StatusCanceled, nil, job.ctx.Err())
		return
	}
	req := job.req
	timeout := s.cfg.DefaultJobTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxJobTimeout {
		timeout = s.cfg.MaxJobTimeout
	}
	ctx, cancel := context.WithTimeout(job.ctx, timeout)
	defer cancel()

	wait := job.markRunning()
	s.metrics.ObserveQueueWait(wait)
	s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsRunning }, 1)
	defer s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsRunning }, -1)
	logger.Info("job started",
		"modes", len(req.Modes), "queue_wait_ms", wait.Milliseconds())

	// The flight watchdog arms once the job is running: if it is still
	// going when the latency threshold passes, the recorder captures a
	// CPU profile and goroutine dump mid-flight.
	stopWatch := s.flights.watch(job)
	defer stopWatch()

	start := time.Now()
	result, err := s.execute(ctx, job, req)
	elapsed := time.Since(start)
	switch {
	case err == nil:
		s.results.put(req.resultKey(), result)
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsDone }, 1)
		s.finishJob(job, StatusDone, result, nil)
		logger.Info("job done", "elapsed_ms", elapsed.Milliseconds())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsCanceled }, 1)
		s.finishJob(job, StatusCanceled, nil, err)
		logger.Info("job canceled",
			"stage", job.currentStage(), "elapsed_ms", elapsed.Milliseconds())
	default:
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.JobsFailed }, 1)
		s.finishJob(job, StatusFailed, nil, err)
		logger.Warn("job failed",
			"stage", job.currentStage(),
			"elapsed_ms", elapsed.Milliseconds(), "error", err)
	}
}

// execute runs the parse → merge → validate pipeline for one job.
func (s *Server) execute(ctx context.Context, job *Job, req *MergeRequest) (*Result, error) {
	observe := func(stage string, d time.Duration) {
		job.addStage(stage, d)
		s.metrics.ObserveStage(stage, d)
	}

	// The job's tracer records the whole pipeline as one span tree, served
	// at GET /v1/jobs/{id}/trace after (and during) execution. It carries
	// the job's trace id so exported spans join the submitter's trace.
	tracer := obs.NewTracerWithID(job.traceID)
	job.setTracer(tracer)
	root := tracer.Start("job")
	root.SetAttr("job_id", job.ID)
	defer root.Finish()
	if req.testPanic {
		panic("test-injected panic")
	}

	// Parse (or reuse) the design, then parse the modes against it. The
	// shared singleflight build runs under the server's base context, not
	// the job's, so one job's cancellation cannot poison the cache entry;
	// the waiter still leaves promptly when its own ctx is done.
	job.noteStage("parse")
	parseSpan := root.Child("parse")
	parseStart := time.Now()
	prep, hit, err := s.designs.get(ctx, req.designKey(), func() (*preparedDesign, error) {
		return prepareDesign(s.baseCtx, req)
	})
	if hit {
		s.metrics.add(func(m *Metrics) *atomic.Int64 { return &m.CacheHitsDesign }, 1)
		parseSpan.Add("design_cache_hit", 1)
	}
	if err != nil {
		parseSpan.Finish()
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		parseSpan.Finish()
		return nil, err
	}
	modes := make([]*sdc.Mode, len(req.Modes))
	for i, m := range req.Modes {
		mode, _, err := sdc.Parse(m.Name, m.SDC, prep.design)
		if err != nil {
			parseSpan.Finish()
			return nil, fmt.Errorf("mode %s: %w", m.Name, err)
		}
		modes[i] = mode
	}
	parseSpan.Add("modes", int64(len(modes)))
	parseSpan.Finish()
	observe("parse", time.Since(parseStart))

	job.noteStage("merge")
	corners := req.coreCorners()
	opt := core.Options{
		Tolerance:           req.Options.Tolerance,
		MaxRefineIterations: req.Options.MaxRefineIterations,
		Parallelism:         s.cfg.MergeParallelism,
		Corners:             corners,
		STA:                 sta.Options{Workers: req.Options.Workers},
		StageHook:           observe,
		Trace:               root,
		Cache:               s.incr,
	}
	merged, reports, mb, err := core.MergeAll(ctx, prep.graph, modes, opt)
	if err != nil {
		return nil, err
	}

	cliques := mb.Cliques()
	result := &Result{
		Reports:   reports,
		Groups:    mb.GroupNames(cliques),
		Conflicts: mb.Conflicts,
	}
	for _, m := range merged {
		result.Merged = append(result.Merged, MergedMode{Name: m.Name, SDC: sdc.Write(m)})
	}

	// On scenario-matrix requests, reduce the #modes × #corners input
	// matrix to #cliques × #corners deployable entries: each merged mode
	// deployed in each corner (merged text + that corner's overlay), with
	// the member scenario keys it covers as provenance.
	if len(corners) > 0 {
		for ci, m := range result.Merged {
			for _, crn := range corners {
				text := m.SDC
				if crn.SDC != "" {
					text += "\n" + crn.SDC + "\n"
				}
				entry := MatrixEntry{Mode: m.Name, Corner: crn.Name, SDC: text}
				for _, member := range result.Groups[ci] {
					entry.Scenarios = append(entry.Scenarios, member+"@"+crn.Name)
				}
				result.Matrix = append(result.Matrix, entry)
			}
		}
	}

	if req.wantValidate() {
		job.noteStage("validate")
		validateSpan := root.Child("validate")
		defer validateSpan.Finish()
		validateStart := time.Now()
		for ci, clique := range cliques {
			if len(clique) < 2 {
				continue
			}
			group := make([]*sdc.Mode, len(clique))
			for i, mi := range clique {
				group[i] = modes[mi]
			}
			vopt := opt
			vopt.Trace = validateSpan.Child("validate:" + merged[ci].Name)
			res, err := core.CheckEquivalence(ctx, prep.graph, group, merged[ci], vopt)
			vopt.Trace.Finish()
			if err != nil {
				return nil, fmt.Errorf("validating %s: %w", merged[ci].Name, err)
			}
			result.Equivalence = append(result.Equivalence, EquivalenceReport{
				Merged:      merged[ci].Name,
				Equivalent:  res.Equivalent(),
				Matched:     res.MatchedGroups,
				Pessimistic: res.PessimisticGroups,
				Optimistic:  res.OptimisticMismatches,
				Unresolved:  len(res.Unresolved),
			})
		}
		observe("validate", time.Since(validateStart))
	}
	return result, nil
}

// prepareDesign parses the library and netlist and builds the timing
// graph; the result is immutable and shared across jobs. ctx is checked
// between the pipeline steps so a canceled build releases its goroutine
// instead of grinding through a potentially huge design.
func prepareDesign(ctx context.Context, req *MergeRequest) (*preparedDesign, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lib := library.Default()
	if req.Library != "" {
		parsed, err := library.Parse(req.Library)
		if err != nil {
			return nil, fmt.Errorf("library: %w", err)
		}
		lib = parsed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	design, err := netlist.ParseVerilog(req.Verilog, lib, req.Top)
	if err != nil {
		return nil, fmt.Errorf("verilog: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, err := design.Validate(); err != nil {
		return nil, fmt.Errorf("design: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, err := graph.Build(design)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	return &preparedDesign{lib: lib, design: design, graph: g}, nil
}

// Shutdown drains the server: no new submissions, queued and running jobs
// get until ctx is done to finish, then everything left is canceled. It
// returns nil on a clean drain or ctx.Err() when the grace period ran
// out (all jobs are still accounted for: late ones finish canceled).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		// Grace period over: cancel every job (running ones abort
		// cooperatively through their contexts) and wait for workers.
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// DrainTimeoutStatus summarizes queue state for /v1/stats.
type DrainTimeoutStatus struct {
	Draining bool `json:"draining"`
	Queued   int  `json:"queued"`
	Jobs     int  `json:"jobs"`
}

// QueueStatus snapshots queue occupancy.
func (s *Server) QueueStatus() DrainTimeoutStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return DrainTimeoutStatus{Draining: s.draining, Queued: len(s.queue), Jobs: len(s.jobs)}
}

// idSafe reports whether a job id is well-formed (defense for path
// parameters).
func idSafe(id string) bool {
	return id != "" && !strings.ContainsAny(id, "/\\")
}
