package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"modemerge/internal/obs"
)

// flightDir returns the recording directory for one test. CI sets
// MODEMERGE_FLIGHT_DIR so recordings survive the run and can be
// uploaded as artifacts when the suite fails; locally it is a temp dir.
func flightDir(t *testing.T) string {
	t.Helper()
	if base := os.Getenv("MODEMERGE_FLIGHT_DIR"); base != "" {
		dir := filepath.Join(base, t.Name())
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// pollFlight polls GET /v2/jobs/{id}/flight until the recording appears
// (it is written strictly after the job turns terminal, so the Done
// channel alone is not enough).
func pollFlight(t *testing.T, baseURL, jobID string) *FlightRecord {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/v2/jobs/" + jobID + "/flight")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var rec FlightRecord
			decodeBody(t, resp, http.StatusOK, &rec)
			return &rec
		}
		resp.Body.Close()
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("no flight recording for job %s", jobID)
	return nil
}

// TestTraceparentEndToEnd submits over /v2 with a W3C traceparent header
// and verifies the trace id follows the job everywhere: the submit
// response (header and body), the job view, the exported NDJSON span
// records, and the structured log lines.
func TestTraceparentEndToEnd(t *testing.T) {
	ndjson := filepath.Join(t.TempDir(), "spans.ndjson")
	exporter, err := obs.NewFileExporter(ndjson)
	if err != nil {
		t.Fatal(err)
	}
	defer exporter.Close()

	var logBuf bytes.Buffer
	var logMu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&lockedWriter{mu: &logMu, w: &logBuf}, nil))
	s := newTestServer(t, Config{Workers: 1, Logger: logger, SpanExporter: exporter})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	body, _ := json.Marshal(quickRequest())
	req, _ := http.NewRequest("POST", ts.URL+"/v2/merge", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("traceparent"); !strings.Contains(got, traceID) {
		t.Errorf("response traceparent = %q, want trace id %s", got, traceID)
	}
	var submitted submitResponseV2
	decodeBody(t, resp, http.StatusAccepted, &submitted)
	if submitted.TraceID != traceID {
		t.Fatalf("submit trace_id = %q, want %q", submitted.TraceID, traceID)
	}

	job, ok := s.Job(submitted.ID)
	if !ok {
		t.Fatalf("job %s not found", submitted.ID)
	}
	waitDone(t, job)
	if got := job.TraceID().String(); got != traceID {
		t.Errorf("job trace id = %s, want %s", got, traceID)
	}

	// Export happens after the job is terminal; poll the NDJSON file.
	var records []obs.SpanRecord
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && len(records) == 0 {
		records = records[:0]
		if f, err := os.Open(ndjson); err == nil {
			sc := bufio.NewScanner(f)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				var rec obs.SpanRecord
				if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
					t.Fatalf("bad NDJSON line: %v", err)
				}
				records = append(records, rec)
			}
			f.Close()
		}
		if len(records) == 0 {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if len(records) == 0 {
		t.Fatal("no span records exported")
	}
	for _, rec := range records {
		if rec.TraceID != traceID {
			t.Errorf("exported span %s has trace id %s, want %s", rec.Name, rec.TraceID, traceID)
		}
	}

	logs := func() string {
		logMu.Lock()
		defer logMu.Unlock()
		return logBuf.String()
	}()
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "job="+submitted.ID) && !strings.Contains(line, "trace_id="+traceID) {
			t.Errorf("log line for the job lacks its trace id: %s", line)
		}
	}
	if !strings.Contains(logs, "trace_id="+traceID) {
		t.Errorf("no log line carries trace_id=%s; logs:\n%s", traceID, logs)
	}
}

// TestTraceparentMalformedGetsFreshID: a garbage traceparent header must
// not be adopted — the job gets a fresh valid trace id and the response
// still carries a well-formed traceparent.
func TestTraceparentMalformedGetsFreshID(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(quickRequest())
	req, _ := http.NewRequest("POST", ts.URL+"/v2/merge", bytes.NewReader(body))
	req.Header.Set("traceparent", "00-zzzz-not-a-trace-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := obs.ParseTraceparent(resp.Header.Get("traceparent")); err != nil {
		t.Errorf("response traceparent %q is malformed: %v", resp.Header.Get("traceparent"), err)
	}
	var submitted submitResponseV2
	decodeBody(t, resp, http.StatusAccepted, &submitted)
	if _, err := obs.ParseTraceID(submitted.TraceID); err != nil {
		t.Errorf("submit trace_id %q invalid: %v", submitted.TraceID, err)
	}
}

// TestFlightRecorderSlowJob: a job crossing the latency threshold gets a
// retrievable recording with span tree, mid-flight goroutine dump and
// CPU profile.
func TestFlightRecorderSlowJob(t *testing.T) {
	dir := flightDir(t)
	s := newTestServer(t, Config{
		Workers: 1,
		Flight: FlightConfig{
			Dir:              dir,
			LatencyThreshold: time.Millisecond,
			ProfileWindow:    50 * time.Millisecond,
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := quickRequest()
	req.Verilog = bigVerilog(1500)
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if got := job.Status(); got != StatusDone {
		t.Fatalf("job status = %s, want done", got)
	}

	rec := pollFlight(t, ts.URL, job.ID)
	if rec.Reason != "slow" {
		t.Errorf("reason = %q, want slow", rec.Reason)
	}
	if rec.TraceID != job.TraceID().String() {
		t.Errorf("flight trace id = %s, want %s", rec.TraceID, job.TraceID())
	}
	if len(rec.Spans) == 0 {
		t.Error("flight has no span tree")
	}
	if rec.GoroutineDump == "" {
		t.Error("flight has no goroutine dump")
	} else if !strings.Contains(rec.GoroutineDump, "goroutine") {
		t.Errorf("goroutine dump looks wrong: %.100s", rec.GoroutineDump)
	}
	if !rec.HasCPUProfile {
		t.Error("flight has no CPU profile")
	} else if fi, err := os.Stat(filepath.Join(dir, job.ID, "cpu.pprof")); err != nil || fi.Size() == 0 {
		t.Errorf("cpu.pprof missing or empty on disk: %v", err)
	}

	// The recording also shows up in the ring listing.
	resp, err := http.Get(ts.URL + "/v2/flights")
	if err != nil {
		t.Fatal(err)
	}
	var list flightsResponse
	decodeBody(t, resp, http.StatusOK, &list)
	found := false
	for _, f := range list.Flights {
		if f.JobID == job.ID && f.Reason == "slow" {
			found = true
		}
	}
	if !found {
		t.Errorf("job %s missing from /v2/flights: %+v", job.ID, list.Flights)
	}
}

// TestFlightRecorderPanicJob: a panicking worker leaves a recording with
// the recovered panic value and stack.
func TestFlightRecorderPanicJob(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1,
		Flight:  FlightConfig{Dir: flightDir(t)},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := quickRequest()
	req.testPanic = true
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if got := job.Status(); got != StatusFailed {
		t.Fatalf("job status = %s, want failed", got)
	}

	rec := pollFlight(t, ts.URL, job.ID)
	if rec.Reason != "panic" {
		t.Errorf("reason = %q, want panic", rec.Reason)
	}
	if !strings.Contains(rec.Panic, "test-injected panic") {
		t.Errorf("panic value = %q, want test-injected panic", rec.Panic)
	}
	if !strings.Contains(rec.PanicStack, "runJob") {
		t.Errorf("panic stack does not name runJob: %.200s", rec.PanicStack)
	}
	if rec.GoroutineDump == "" {
		t.Error("flight has no goroutine dump (panic stack fallback expected)")
	}
}

// TestFlightRingBound churns many recordings through a small ring and
// checks the bound holds on disk and in memory, with the slowest
// recordings protected from eviction.
func TestFlightRingBound(t *testing.T) {
	dir := t.TempDir()
	fr, err := NewFlightRecorder(FlightConfig{
		Dir: dir, KeepLast: 5, KeepSlowest: 2,
	}, slog.Default())
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 40; i++ {
		elapsed := float64(i % 7) // ids j…35 (5000ms) etc. vary slowness
		if i == 3 {
			elapsed = 5000 // the outlier eviction must never flush
		}
		rec := &FlightRecord{
			JobID:      fmt.Sprintf("j%06d", i),
			Reason:     "slow",
			Status:     StatusDone,
			ElapsedMS:  elapsed,
			CapturedAt: time.Now().UTC(),
		}
		if err := fr.store(rec, nil); err != nil {
			t.Fatal(err)
		}

		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		dirs := 0
		for _, e := range entries {
			if e.IsDir() {
				dirs++
			}
		}
		if dirs > 5 {
			t.Fatalf("after %d stores: %d recordings on disk, ring bound is 5", i+1, dirs)
		}
	}

	if _, ok := fr.Get("j000003"); !ok {
		t.Error("the slowest recording (j000003, 5000ms) was evicted")
	}
	if got := len(fr.List()); got > 5 {
		t.Errorf("ring lists %d recordings, bound is 5", got)
	}
}

// TestFlightRecorderDeterminism: merged output must be byte-identical
// with the recorder and exporter on versus fully off.
func TestFlightRecorderDeterminism(t *testing.T) {
	run := func(cfg Config) *Result {
		s := newTestServer(t, cfg)
		req := quickRequest()
		req.Verilog = bigVerilog(300)
		job, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, job)
		if job.Status() != StatusDone {
			t.Fatalf("job status = %s, want done", job.Status())
		}
		return job.Result()
	}

	exporter, err := obs.NewFileExporter(filepath.Join(t.TempDir(), "spans.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer exporter.Close()
	instrumented := run(Config{
		Workers:      1,
		SpanExporter: exporter,
		Flight: FlightConfig{
			Dir:              t.TempDir(),
			LatencyThreshold: time.Millisecond,
			ProfileWindow:    20 * time.Millisecond,
		},
	})
	plain := run(Config{Workers: 1})

	a, _ := json.Marshal(instrumented.Merged)
	b, _ := json.Marshal(plain.Merged)
	if !bytes.Equal(a, b) {
		t.Errorf("merged output differs with recorder on:\n%s\nvs off:\n%s", a, b)
	}
}
