package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"modemerge/internal/obs"
)

// submitAndWait pushes the quickstart request through the server and
// returns the finished job.
func submitAndWait(t *testing.T, s *Server) *Job {
	t.Helper()
	job, err := s.Submit(quickRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if got := job.Status(); got != StatusDone {
		t.Fatalf("job status = %s, want done", got)
	}
	return job
}

// TestStatsExpvarParity pins /v1/stats to the shared StatsSnapshot: the
// handler must serve exactly the snapshot's JSON keys plus "queue". A
// field added to one surface but not the other fails here.
func TestStatsExpvarParity(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	submitAndWait(t, s)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]json.RawMessage
	decodeBody(t, resp, http.StatusOK, &stats)

	snapJSON, err := json.Marshal(s.Metrics().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(snapJSON, &snap); err != nil {
		t.Fatal(err)
	}

	for k := range snap {
		if _, ok := stats[k]; !ok {
			t.Errorf("/v1/stats is missing snapshot key %q", k)
		}
	}
	for k := range stats {
		if k == "queue" {
			continue
		}
		if _, ok := snap[k]; !ok {
			t.Errorf("/v1/stats key %q is not part of StatsSnapshot", k)
		}
	}
	if _, ok := stats["queue"]; !ok {
		t.Error("/v1/stats is missing the queue key")
	}
}

// TestMetricsEndpoint asserts GET /metrics serves Prometheus text with
// the counter and histogram families after a job ran.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	submitAndWait(t, s)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE modemerged_jobs_total counter",
		`modemerged_jobs_total{state="done"} 1`,
		"# TYPE modemerged_jobs_running gauge",
		"# TYPE modemerged_queue_wait_seconds histogram",
		"modemerged_queue_wait_seconds_count 1",
		"# TYPE modemerged_stage_seconds histogram",
		`modemerged_stage_seconds_bucket{stage="prelim",le="+Inf"} 1`,
		`modemerged_stage_seconds_count{stage="parse"} 1`,
		"# TYPE modemerged_runtime_goroutines gauge",
		"# TYPE modemerged_runtime_heap_inuse_bytes gauge",
		"# TYPE modemerged_runtime_last_gc_pause_seconds gauge",
		"# TYPE modemerged_incr_cache_hit_seconds histogram",
		// Every granularity's series exists even at zero observations,
		// so dashboards never see the family appear out of nowhere.
		`modemerged_incr_cache_hit_seconds_count{granularity="ctx"}`,
		`modemerged_incr_cache_hit_seconds_count{granularity="pair"}`,
		`modemerged_incr_cache_hit_seconds_count{granularity="clique"}`,
		`modemerged_incr_cache_hit_seconds_count{granularity="etm"}`,
		`modemerged_incr_cache_hit_seconds_count{granularity="mctx"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}
}

// TestTraceEndpoint asserts GET /v1/jobs/{id}/trace returns the full,
// well-formed span tree of a finished job.
func TestTraceEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	job := submitAndWait(t, s)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var tr traceResponse
	decodeBody(t, resp, http.StatusOK, &tr)
	if tr.ID != job.ID || tr.Status != StatusDone {
		t.Fatalf("trace header = %+v", tr)
	}
	if len(tr.Trace) != 1 || tr.Trace[0].Name != "job" {
		t.Fatalf("trace roots = %d, want single job root", len(tr.Trace))
	}
	if err := obs.CheckWellFormed(tr.Trace); err != nil {
		t.Fatalf("trace not well-formed: %v", err)
	}
	names := map[string]bool{}
	var walk func(vs []*obs.SpanView)
	walk = func(vs []*obs.SpanView) {
		for _, v := range vs {
			names[v.Name] = true
			walk(v.Children)
		}
	}
	walk(tr.Trace)
	for _, want := range []string{"parse", "mergeability", "prelim", "clock_refine", "data_refine", "validate"} {
		if !names[want] {
			t.Errorf("trace is missing a %q span (have %v)", want, names)
		}
	}

	// A cache-hit job never executes, so its trace is empty but served.
	hit, err := s.Submit(quickRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, hit)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + hit.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var tr2 traceResponse
	decodeBody(t, resp, http.StatusOK, &tr2)
	if len(tr2.Trace) != 0 {
		t.Errorf("cache-hit trace has %d roots, want 0", len(tr2.Trace))
	}
}

// TestJobLogsCarryJobID asserts the structured logs emitted while a job
// runs carry the job id on start and completion.
func TestJobLogsCarryJobID(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{mu: &mu, w: &buf}, nil))
	s := newTestServer(t, Config{Workers: 1, Logger: logger})
	job := submitAndWait(t, s)

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{`"msg":"job started"`, `"msg":"job done"`, `"job":"` + job.ID + `"`} {
		if !strings.Contains(out, want) {
			t.Errorf("logs missing %q:\n%s", want, out)
		}
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
