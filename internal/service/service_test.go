package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
)

// quickVerilog is the quickstart design: two registers clocked through a
// mux selecting a functional or a test clock.
const quickVerilog = `
module quick (clk, tclk, tmode, din, dout);
  input clk, tclk, tmode, din;
  output dout;
  wire gck, q1, n1;
  MUX2 ckmux (.I0(clk), .I1(tclk), .S(tmode), .Z(gck));
  DFF r1 (.CP(gck), .D(din), .Q(q1));
  INV u1 (.A(q1), .Z(n1));
  DFF r2 (.CP(gck), .D(n1), .Q(dout));
endmodule
`

const funcSDC = `
create_clock -name FCLK -period 2 [get_ports clk]
set_case_analysis 0 [get_ports tmode]
set_input_delay 0.4 -clock FCLK [get_ports din]
set_output_delay 0.4 -clock FCLK [get_ports dout]
`

const testSDC = `
create_clock -name TCLK -period 10 [get_ports tclk]
set_case_analysis 1 [get_ports tmode]
set_input_delay 1.0 -clock TCLK [get_ports din]
set_output_delay 1.0 -clock TCLK [get_ports dout]
set_multicycle_path 2 -setup -from [get_clocks TCLK]
`

func quickRequest() *MergeRequest {
	return &MergeRequest{
		Verilog: quickVerilog,
		Modes: []ModeInput{
			{Name: "func", SDC: funcSDC},
			{Name: "test", SDC: testSDC},
		},
	}
}

// bigVerilog builds a long register chain so a merge job reliably takes
// longer than a millisecond-scale deadline.
func bigVerilog(stages int) string {
	var b strings.Builder
	b.WriteString("module big (clk, tclk, tmode, din, dout);\n")
	b.WriteString("  input clk, tclk, tmode, din;\n  output dout;\n  wire gck;\n")
	b.WriteString("  MUX2 ckmux (.I0(clk), .I1(tclk), .S(tmode), .Z(gck));\n")
	prev := "din"
	for i := 0; i < stages; i++ {
		fmt.Fprintf(&b, "  wire q%d, n%d;\n", i, i)
		fmt.Fprintf(&b, "  DFF r%d (.CP(gck), .D(%s), .Q(q%d));\n", i, prev, i)
		fmt.Fprintf(&b, "  INV u%d (.A(q%d), .Z(n%d));\n", i, i, i)
		prev = fmt.Sprintf("n%d", i)
	}
	fmt.Fprintf(&b, "  BUF ob (.A(%s), .Z(dout));\nendmodule\n", prev)
	return b.String()
}

func waitDone(t *testing.T, job *Job) {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish (status %s)", job.ID, job.Status())
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// TestEndToEndHTTP drives the whole API over HTTP: submit the quickstart
// design, poll the job to completion, fetch the result, parse the merged
// SDC, and confirm both the equivalence verdict and the result cache.
func TestEndToEndHTTP(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(quickRequest())
	resp, err := http.Post(ts.URL+"/v1/merge", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	decodeBody(t, resp, http.StatusAccepted, &sub)
	if sub.ID == "" || sub.Cached {
		t.Fatalf("submit = %+v, want fresh job with id", sub)
	}

	// Poll until the job reaches a terminal state.
	var view JobView
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, resp, http.StatusOK, &view)
		if view.Status == StatusDone || view.Status == StatusFailed || view.Status == StatusCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", view.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.Status != StatusDone {
		t.Fatalf("job = %+v, want done", view)
	}
	if len(view.StagesMS) == 0 {
		t.Errorf("job view has no stage timings: %+v", view)
	}
	for _, stage := range []string{"parse", "mergeability", "prelim", "validate"} {
		if _, ok := view.StagesMS[stage]; !ok {
			t.Errorf("stage %q missing from timings %v", stage, view.StagesMS)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var result Result
	decodeBody(t, resp, http.StatusOK, &result)
	if len(result.Merged) != 1 {
		t.Fatalf("merged = %d modes, want 1 (groups %v)", len(result.Merged), result.Groups)
	}

	// The merged SDC must parse cleanly against the design.
	design, err := netlist.ParseVerilog(quickVerilog, library.Default(), "")
	if err != nil {
		t.Fatal(err)
	}
	merged, _, err := sdc.Parse(result.Merged[0].Name, result.Merged[0].SDC, design)
	if err != nil {
		t.Fatalf("merged SDC does not parse: %v\n%s", err, result.Merged[0].SDC)
	}
	if len(merged.Clocks) < 2 {
		t.Errorf("merged mode has %d clocks, want both FCLK and TCLK", len(merged.Clocks))
	}
	if len(result.Equivalence) != 1 || !result.Equivalence[0].Equivalent {
		t.Fatalf("equivalence = %+v, want one equivalent report", result.Equivalence)
	}

	// Resubmitting the identical request must come straight from cache.
	resp, err = http.Post(ts.URL+"/v1/merge", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub2 submitResponse
	decodeBody(t, resp, http.StatusAccepted, &sub2)
	if !sub2.Cached || sub2.Status != StatusDone {
		t.Fatalf("resubmit = %+v, want cached done", sub2)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	decodeBody(t, resp, http.StatusOK, &stats)
	if hits, _ := stats["cache_hits_result"].(float64); hits < 1 {
		t.Errorf("cache_hits_result = %v, want >= 1 (stats %v)", stats["cache_hits_result"], stats)
	}
	if done, _ := stats["jobs_done"].(float64); done < 2 {
		t.Errorf("jobs_done = %v, want >= 2", stats["jobs_done"])
	}

	// Liveness and expvar endpoints respond.
	for _, path := range []string{"/healthz", "/debug/vars"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestConcurrentSubmissions exercises the worker pool and both cache
// layers: many clients submit a mix of identical and distinct requests
// at once.
func TestConcurrentSubmissions(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	const clients = 12
	jobs := make([]*Job, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := quickRequest()
			// Same design throughout; every third request varies the
			// tolerance so it is a distinct result key on the shared
			// parsed design.
			if i%3 == 0 {
				req.Options.Tolerance = 0.01 + float64(i)/1000
			}
			job, err := s.Submit(req)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = job
		}(i)
	}
	wg.Wait()

	for i, job := range jobs {
		if job == nil {
			continue
		}
		waitDone(t, job)
		if st := job.Status(); st != StatusDone {
			t.Errorf("job %d = %s, want done", i, st)
		}
		if job.Result() == nil {
			t.Errorf("job %d has no result", i)
		}
	}

	m := s.Metrics()
	if got := m.JobsDone.Load(); got != clients {
		t.Errorf("jobs_done = %d, want %d", got, clients)
	}
	// All requests share one design: every submission after the first
	// entry exists hits the design cache or the result cache.
	if m.CacheHitsDesign.Load() == 0 && m.CacheHitsResult.Load() == 0 {
		t.Errorf("no cache hits at all across %d identical-design jobs", clients)
	}
}

// TestCancellationNoLeak submits a large job with a 1ms deadline and
// verifies it reports canceled without leaking goroutines.
func TestCancellationNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{Workers: 2})
	req := quickRequest()
	req.Verilog = bigVerilog(1500)
	req.Modes[0].Name = "func"
	req.TimeoutMS = 1
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if st := job.Status(); st != StatusCanceled {
		t.Fatalf("job status = %s, want canceled (a 1500-stage merge finished in 1ms?)", st)
	}
	if s.Metrics().JobsCanceled.Load() != 1 {
		t.Errorf("jobs_canceled = %d, want 1", s.Metrics().JobsCanceled.Load())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Goroutine count must settle back to the baseline: the canceled
	// job's STA workers and the pool itself all exit.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestExplicitCancelWhileQueued cancels a job stuck behind a busy worker.
func TestExplicitCancelWhileQueued(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	// Occupy the single worker with a long job.
	blocker := quickRequest()
	blocker.Verilog = bigVerilog(800)
	bjob, err := s.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}

	victim, err := s.Submit(quickRequest())
	if err != nil {
		t.Fatal(err)
	}
	victim.Cancel()
	waitDone(t, victim)
	if st := victim.Status(); st != StatusCanceled {
		t.Fatalf("victim = %s, want canceled", st)
	}

	bjob.Cancel()
	waitDone(t, bjob)
}

// TestSubmitValidation rejects malformed requests before queuing.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cases := []*MergeRequest{
		{},
		{Verilog: quickVerilog},
		{Verilog: quickVerilog, Modes: []ModeInput{{Name: "", SDC: funcSDC}}},
		{Verilog: quickVerilog, Modes: []ModeInput{{Name: "a", SDC: ""}}},
		{Verilog: quickVerilog, Modes: []ModeInput{{Name: "a", SDC: funcSDC}, {Name: "a", SDC: testSDC}}},
	}
	for i, req := range cases {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
}

// TestQueueFull sheds load once the queue is at capacity.
func TestQueueFull(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	blocker := quickRequest()
	blocker.Verilog = bigVerilog(5000)
	bjob, err := s.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker actually picked the blocker up, then fill
	// the queue; one more distinct submission must be rejected.
	for deadline := time.Now().Add(10 * time.Second); bjob.Status() == StatusQueued; {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	second := quickRequest()
	second.Options.Tolerance = 0.011
	if _, err := s.Submit(second); err != nil {
		t.Fatalf("queued submission rejected early: %v", err)
	}
	overflow := quickRequest()
	overflow.Options.Tolerance = 0.012
	if _, err := s.Submit(overflow); err == nil {
		t.Fatal("overflow submission accepted, want ErrQueueFull")
	}

	bjob.Cancel()
}

// TestResultKeyOrderMatters keeps mode order part of the result address.
func TestResultKeyOrderMatters(t *testing.T) {
	a := quickRequest()
	b := quickRequest()
	b.Modes[0], b.Modes[1] = b.Modes[1], b.Modes[0]
	if a.resultKey() == b.resultKey() {
		t.Error("reordered modes share a result key")
	}
	if a.resultKey() != quickRequest().resultKey() {
		t.Error("identical requests have different result keys")
	}
	if a.designKey() != b.designKey() {
		t.Error("same design must share a design key regardless of modes")
	}
}

// TestContentHashLengthPrefix guards against concatenation collisions.
func TestContentHashLengthPrefix(t *testing.T) {
	if contentHash("ab", "c") == contentHash("a", "bc") {
		t.Error("contentHash collides across part boundaries")
	}
}

// TestLRUEviction bounds the cache at its capacity.
func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.put("a", 1)
	c.put("b", 2)
	c.put("c", 3)
	if _, ok := c.get("a"); ok {
		t.Error("oldest entry survived eviction")
	}
	if v, ok := c.get("b"); !ok || v.(int) != 2 {
		t.Error("recent entry evicted")
	}
	// Touch b, insert d: c (now oldest) must go.
	c.put("d", 4)
	if _, ok := c.get("c"); ok {
		t.Error("LRU order ignores recency")
	}
}

// TestSubmitShutdownRace hammers Submit concurrently with Shutdown: no
// submission may panic (send on closed queue) and every accepted job must
// still reach a terminal state.
func TestSubmitShutdownRace(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		s := New(Config{Workers: 2, QueueDepth: 4})
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			accepted []*Job
		)
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for k := 0; k < 8; k++ {
					job, err := s.Submit(quickRequest())
					if err != nil {
						// ErrDraining / ErrQueueFull are the expected
						// rejections under contention.
						continue
					}
					mu.Lock()
					accepted = append(accepted, job)
					mu.Unlock()
				}
			}()
		}
		close(start)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("iter %d: shutdown: %v", iter, err)
		}
		cancel()
		wg.Wait()
		for _, job := range accepted {
			waitDone(t, job)
		}
	}
}

// TestJobHistoryBounded keeps the job table from growing without bound:
// terminal jobs beyond JobHistoryLimit are evicted, oldest first.
func TestJobHistoryBounded(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, JobHistoryLimit: 4})

	first, err := s.Submit(quickRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)
	// Every further identical submission is a result-cache hit and
	// finishes instantly — but must still be pruned from the job table.
	for i := 0; i < 20; i++ {
		job, err := s.Submit(quickRequest())
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, job)
	}
	if n := s.QueueStatus().Jobs; n > 4 {
		t.Errorf("job table holds %d entries, want <= JobHistoryLimit 4", n)
	}
	if _, ok := s.Job(first.ID); ok {
		t.Errorf("oldest finished job %s still retained past the history limit", first.ID)
	}
}

// TestWorkerPanicRecovery confirms a panicking job is marked failed and
// does not take the worker (or the process) down.
func TestWorkerPanicRecovery(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	// A job with no request panics inside runJob (nil dereference); the
	// recover path must fail the job instead of crashing.
	ctx, cancel := context.WithCancel(context.Background())
	bad := newJob("jpanic", ctx, cancel)
	s.runJob(bad)
	if st := bad.Status(); st != StatusFailed {
		t.Fatalf("panicked job = %s, want failed", st)
	}
	if got := s.Metrics().JobsFailed.Load(); got != 1 {
		t.Errorf("jobs_failed = %d, want 1", got)
	}

	// The pool still serves real work afterwards.
	job, err := s.Submit(quickRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if st := job.Status(); st != StatusDone {
		t.Fatalf("follow-up job = %s, want done", st)
	}
}

func decodeBody(t *testing.T, resp *http.Response, wantStatus int, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("status = %d, want %d: %s", resp.StatusCode, wantStatus, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
