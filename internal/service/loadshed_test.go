package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestLoadShedBurst is the load-shed smoke test: a burst of concurrent
// POST /v2/merge submissions with idempotency keys against a tiny queue
// must drain through the documented envelope — every response is an
// accept (202/200) or a shed (429 rate_limited with Retry-After; 503
// only while draining) — with zero dropped-but-accepted jobs (every
// accepted id reaches a terminal state and stays queryable) and no
// goroutine leak once the server drains.
func TestLoadShedBurst(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{
		Workers:    1,
		QueueDepth: 2,
		Logger:     quietSlog(),
	})
	ts := httptest.NewServer(s.Handler())

	const burst = 24
	type outcome struct {
		status int
		body   []byte
	}
	outcomes := make([]outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := quickRequest()
			req.Modes[0] = fmtMode(i) // distinct payloads: no result-cache shortcut
			payload, _ := json.Marshal(req)
			hreq, _ := http.NewRequest("POST", ts.URL+"/v2/merge", bytes.NewReader(payload))
			hreq.Header.Set("Content-Type", "application/json")
			hreq.Header.Set("Idempotency-Key", fmt.Sprintf("burst-%d", i))
			resp, err := http.DefaultClient.Do(hreq)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body) //nolint:errcheck // test buffer
			outcomes[i] = outcome{status: resp.StatusCode, body: buf.Bytes()}
		}(i)
	}
	wg.Wait()

	var accepted []string
	var acceptedIdx []int
	shed := 0
	for i, o := range outcomes {
		switch o.status {
		case http.StatusAccepted, http.StatusOK:
			var sub submitResponseV2
			if err := json.Unmarshal(o.body, &sub); err != nil || sub.ID == "" {
				t.Fatalf("accept response %d unparseable: %s", i, o.body)
			}
			accepted = append(accepted, sub.ID)
			acceptedIdx = append(acceptedIdx, i)
		case http.StatusTooManyRequests:
			shed++
			var env v2ErrorResponse
			if err := json.Unmarshal(o.body, &env); err != nil || env.Error.Code != codeRateLimited {
				t.Fatalf("shed response %d lacks rate_limited envelope: %s", i, o.body)
			}
		default:
			t.Fatalf("burst response %d: unexpected status %d: %s", i, o.status, o.body)
		}
	}
	if len(accepted) == 0 {
		t.Fatal("burst accepted nothing")
	}
	if shed == 0 {
		t.Fatalf("queue depth 2 with %d submissions shed nothing (accepted %d)", burst, len(accepted))
	}

	// Zero dropped-but-accepted: every accepted job reaches a terminal
	// state and remains queryable.
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range accepted {
		for {
			resp, err := http.Get(ts.URL + "/v2/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var view JobView
			err = json.NewDecoder(resp.Body).Decode(&view)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || err != nil {
				t.Fatalf("accepted job %s not queryable: %d %v", id, resp.StatusCode, err)
			}
			if view.Status == StatusDone || view.Status == StatusFailed || view.Status == StatusCanceled {
				if view.Status != StatusDone {
					t.Fatalf("accepted job %s ended %s: %s", id, view.Status, view.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("accepted job %s stuck in %s", id, view.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Idempotent replay after the burst: the same key + payload as an
	// accepted submission returns the original job, not a new one.
	req := quickRequest()
	req.Modes[0] = fmtMode(acceptedIdx[0])
	payload, _ := json.Marshal(req)
	hreq, _ := http.NewRequest("POST", ts.URL+"/v2/merge", bytes.NewReader(payload))
	hreq.Header.Set("Idempotency-Key", fmt.Sprintf("burst-%d", acceptedIdx[0]))
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var replay submitResponseV2
	json.NewDecoder(resp.Body).Decode(&replay) //nolint:errcheck // checked below
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || replay.ID != accepted[0] {
		t.Fatalf("idempotent replay: status %d id %s (want 200 %s)", resp.StatusCode, replay.ID, accepted[0])
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// No goroutine leak once drained (allow slack for runtime/test
	// helpers that settle asynchronously).
	var after int
	for i := 0; i < 100; i++ {
		after = runtime.NumGoroutine()
		if after <= before+5 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before burst, %d after drain", before, after)
}
