package sta

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"modemerge/internal/graph"
	"modemerge/internal/relation"
	"modemerge/internal/sdc"
)

// EndpointResult is the worst-slack summary of one timing endpoint.
type EndpointResult struct {
	Node graph.NodeID
	Name string
	// Setup (max) analysis.
	HasSetup      bool
	SetupSlack    float64
	SetupLaunch   string
	SetupCapture  string
	CapturePeriod float64
	// Hold (min) analysis.
	HasHold   bool
	HoldSlack float64
}

// AnalyzeEndpoints computes worst setup and hold slack for every endpoint,
// in parallel. Cancelling cx stops the worker pool between endpoints; the
// returned slice is then partial (unvisited entries stay zero) and the
// caller must consult cx.Err() before trusting it.
func (ctx *Context) AnalyzeEndpoints(cx context.Context) []EndpointResult {
	sp := ctx.Opt.Span.Child("analyze_endpoints")
	defer sp.Finish()
	ends := ctx.G.Endpoints()
	sp.Add("endpoints", int64(len(ends)))
	results := make([]EndpointResult, len(ends))
	tags := ctx.tags() // force propagation before fan-out

	// Results are index-addressed, so the shard fan-out is deterministic
	// for any worker count; each shard reports under its own child span.
	workers := ctx.Opt.WorkerCount(len(ends))
	var wg sync.WaitGroup
	chunk := (len(ends) + workers - 1) / workers
	if chunk < 1 {
		chunk = 1
	}
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(ends) {
			break
		}
		hi := lo + chunk
		if hi > len(ends) {
			hi = len(ends)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wsp := sp.Child(fmt.Sprintf("shard_%d", w))
			defer wsp.Finish()
			for i := lo; i < hi; i++ {
				if cx.Err() != nil {
					return
				}
				results[i] = ctx.analyzeEndpoint(ends[i], tags[ends[i]])
			}
			wsp.Add("endpoints", int64(hi-lo))
		}(w, lo, hi)
	}
	wg.Wait()
	return results
}

// analyzeEndpoint runs every (data tag × capture clock) check at one
// endpoint and keeps the worst slacks.
func (ctx *Context) analyzeEndpoint(end graph.NodeID, m tagMap) EndpointResult {
	res := EndpointResult{Node: end, Name: ctx.G.Node(end).Name,
		SetupSlack: math.Inf(1), HoldSlack: math.Inf(1)}
	if len(m.entries) == 0 {
		return res
	}
	node := ctx.G.Node(end)

	setupMargin, holdMargin := 0.0, 0.0
	var captures []ClockAtNode
	isPort := node.Port != nil
	if node.IsRegData {
		for _, ai := range ctx.G.CheckArcs(end) {
			a := ctx.G.Arc(ai)
			if ctx.ArcDisabled[ai] {
				continue
			}
			switch a.Kind {
			case graph.SetupArc:
				setupMargin = math.Max(setupMargin, ctx.cornerMargin(a.Lib.Margin))
			case graph.HoldArc:
				holdMargin = math.Max(holdMargin, ctx.cornerMargin(a.Lib.Margin))
			}
		}
		captures = ctx.CaptureClocksAt(end)
	} else if isPort {
		captures = ctx.CaptureClocksAt(end)
	}

	for _, te := range m.entries {
		tag, arr := te.tag, te.arr
		if tag.launch == NoClock {
			// Unclocked arrivals are only checked against point-to-point
			// delay exceptions.
			ctx.pointToPointChecks(&res, end, tag, arr)
			continue
		}
		for _, ct := range captures {
			if ctx.Exclusive(tag.launch, ct.Clock) {
				continue
			}
			sm, hm := setupMargin, holdMargin
			if isPort {
				sm, hm = ctx.portMargins(end, ct.Clock)
			}
			ctx.checkPair(&res, end, tag, arr, ct, sm, hm)
		}
	}
	return res
}

// portMargins derives setup/hold margins from the output delays that
// reference the capture clock.
func (ctx *Context) portMargins(end graph.NodeID, capture ClockID) (setup, hold float64) {
	setup, hold = 0, 0
	for _, d := range ctx.outputDelays(end) {
		cid := NoClock
		if d.Clock != "" {
			if c, ok := ctx.clockByName[d.Clock]; ok {
				cid = c
			}
		}
		if cid != capture {
			continue
		}
		if d.Level != sdc.MinOnly {
			setup = math.Max(setup, d.Value)
		}
		if d.Level != sdc.MaxOnly {
			hold = math.Max(hold, -d.Value)
		}
	}
	return ctx.cornerMargin(setup), ctx.cornerMargin(hold)
}

// cornerMargin applies the analysis corner's margin derate; the nominal
// corner-less path returns the margin untouched.
func (ctx *Context) cornerMargin(m float64) float64 {
	if c := ctx.Opt.Corner; c != nil {
		return m * c.MarginFactor()
	}
	return m
}

// pointToPointChecks applies set_max_delay/set_min_delay to unclocked
// paths.
func (ctx *Context) pointToPointChecks(res *EndpointResult, end graph.NodeID, tag dataTag, arr arrival) {
	for _, e := range ctx.exc.completed(tag.vec, end, NoClock, tag.trans, relation.Setup) {
		if e.Kind == sdc.MaxDelay {
			slack := e.Value - arr.max
			if !res.HasSetup || slack < res.SetupSlack {
				res.HasSetup = true
				res.SetupSlack = slack
				res.SetupLaunch = "(none)"
				res.SetupCapture = "(none)"
				res.CapturePeriod = 0
			}
		}
	}
	for _, e := range ctx.exc.completed(tag.vec, end, NoClock, tag.trans, relation.Hold) {
		if e.Kind == sdc.MinDelay {
			slack := arr.min - e.Value
			if !res.HasHold || slack < res.HoldSlack {
				res.HasHold = true
				res.HoldSlack = slack
			}
		}
	}
}

// checkPair runs setup and hold checks for one (tag, capture) pair.
func (ctx *Context) checkPair(res *EndpointResult, end graph.NodeID, tag dataTag, arr arrival, ct ClockAtNode, setupMargin, holdMargin float64) {
	launch := ctx.Clocks[tag.launch]
	capture := ctx.Clocks[ct.Clock]

	// Setup side.
	setupExcs := ctx.exc.completed(tag.vec, end, ct.Clock, tag.trans, relation.Setup)
	setupWinner := sdc.Winner(setupExcs)
	mSetup := 1
	setupIsFP := false
	setupMaxDelay := math.NaN()
	if setupWinner != nil {
		switch setupWinner.Kind {
		case sdc.FalsePath:
			setupIsFP = true
		case sdc.MulticyclePath:
			mSetup = setupWinner.Multiplier
		case sdc.MaxDelay:
			setupMaxDelay = setupWinner.Value
		}
	}

	launchEdgeTime := launch.RiseTime()
	if tag.launchEdge == sdc.EdgeFall {
		launchEdgeTime = launch.FallTime()
	}
	capEdgeTime := capture.RiseTime()
	if ct.Inv {
		capEdgeTime = capture.FallTime()
	}

	// Clock latencies: for propagated clocks the network delay is already
	// inside the data arrival (launch) / the capture tag (capture).
	launchLatMax := launch.SrcLatMax
	launchLatMin := launch.SrcLatMin
	if !launch.Propagated {
		launchLatMax += launch.LatMax
		launchLatMin += launch.LatMin
	}
	capLatMin := capture.SrcLatMin
	capLatMax := capture.SrcLatMax
	if capture.Propagated {
		capLatMin += ct.ArrMin
		capLatMax += ct.ArrMax
	} else {
		capLatMin += capture.LatMin
		capLatMax += capture.LatMax
	}

	uncSetup, uncHold := capture.UncSetup, capture.UncHold
	if v, ok := ctx.interUnc[[2]ClockID{tag.launch, ct.Clock}]; ok {
		uncSetup, uncHold = v[0], v[1]
	}

	sep, ok := ctx.separation(launch, launchEdgeTime, capture, capEdgeTime)
	if !ok {
		return
	}

	if !setupIsFP {
		var slack float64
		if !math.IsNaN(setupMaxDelay) {
			slack = setupMaxDelay - arr.max - setupMargin
		} else {
			// Everything is relative to the launch edge: sep is the
			// capture−launch edge separation, the multicycle shifts the
			// capture edge by whole capture periods. Latch endpoints may
			// borrow through their transparency window.
			required := sep + float64(mSetup-1)*capture.Period() + capLatMin - uncSetup - setupMargin
			required += ctx.borrowAllowance(end, ct)
			arrive := launchLatMax + arr.max
			slack = required - arrive
		}
		if !res.HasSetup || slack < res.SetupSlack {
			res.HasSetup = true
			res.SetupSlack = slack
			res.SetupLaunch = launch.Def.Name
			res.SetupCapture = capture.Def.Name
			res.CapturePeriod = capture.Period()
		}
	}

	// Hold side.
	holdExcs := ctx.exc.completed(tag.vec, end, ct.Clock, tag.trans, relation.Hold)
	holdWinner := sdc.Winner(holdExcs)
	mHold := 0
	holdIsFP := false
	holdMinDelay := math.NaN()
	if holdWinner != nil {
		switch holdWinner.Kind {
		case sdc.FalsePath:
			holdIsFP = true
		case sdc.MulticyclePath:
			mHold = holdWinner.Multiplier
		case sdc.MinDelay:
			holdMinDelay = holdWinner.Value
		}
	}
	if !holdIsFP {
		var slack float64
		if !math.IsNaN(holdMinDelay) {
			slack = arr.min - holdMinDelay - holdMargin
		} else {
			// The hold capture edge sits one capture period before the
			// setup edge (default mHold=0); a hold multicycle pushes it
			// back further. All relative to the launch edge.
			setupEdge := sep + float64(mSetup-1)*capture.Period()
			holdEdge := setupEdge - float64(1+mHold)*capture.Period()
			slack = (launchLatMin + arr.min) - (holdEdge + capLatMax + uncHold + holdMargin)
		}
		if !res.HasHold || slack < res.HoldSlack {
			res.HasHold = true
			res.HoldSlack = slack
		}
	}
}

// separation computes the worst (smallest positive) launch-to-capture
// edge separation over the two clock waveforms' hyperperiod.
func (ctx *Context) separation(launch *ClockInfo, launchEdge float64, capture *ClockInfo, capEdge float64) (float64, bool) {
	pl, pc := launch.Period(), capture.Period()
	if pl <= 0 || pc <= 0 {
		return 0, false
	}
	n := 1
	if diff := math.Abs(pl - pc); diff > 1e-12 {
		// Number of launch repetitions to cover the hyperperiod.
		h := hyperperiod(pl, pc, float64(ctx.Opt.MaxLaunchEdges)*pl)
		if h <= 0 {
			// No rational relation within the cap: fall back to the
			// smallest period as a pessimistic separation.
			return math.Min(pl, pc), true
		}
		n = int(math.Round(h / pl))
		if n < 1 {
			n = 1
		}
	}
	const eps = 1e-9
	best := math.Inf(1)
	for j := 0; j < n; j++ {
		l := launchEdge + float64(j)*pl
		// Smallest capture edge strictly after l.
		k := math.Ceil((l + eps - capEdge) / pc)
		c := capEdge + k*pc
		if sep := c - l; sep < best {
			best = sep
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// hyperperiod returns the least common multiple of two periods, or 0 when
// it exceeds the cap or the periods have no small rational relation.
func hyperperiod(a, b, cap_ float64) float64 {
	const scale = 1e6
	ia, ib := int64(math.Round(a*scale)), int64(math.Round(b*scale))
	if ia <= 0 || ib <= 0 {
		return 0
	}
	g := gcd64(ia, ib)
	l := ia / g * ib
	h := float64(l) / scale
	if h > cap_ {
		return 0
	}
	return h
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Summarize folds endpoint results into totals.
func Summarize(results []EndpointResult) (worstSetup, worstHold float64, checkedEndpoints int) {
	worstSetup, worstHold = math.Inf(1), math.Inf(1)
	for _, r := range results {
		if r.HasSetup || r.HasHold {
			checkedEndpoints++
		}
		if r.HasSetup && r.SetupSlack < worstSetup {
			worstSetup = r.SetupSlack
		}
		if r.HasHold && r.HoldSlack < worstHold {
			worstHold = r.HoldSlack
		}
	}
	return worstSetup, worstHold, checkedEndpoints
}

// SortBySetupSlack orders results most critical first; endpoints with no
// setup check sort last.
func SortBySetupSlack(results []EndpointResult) {
	sort.Slice(results, func(i, j int) bool {
		a, b := results[i], results[j]
		if a.HasSetup != b.HasSetup {
			return a.HasSetup
		}
		if !a.HasSetup {
			return a.Name < b.Name
		}
		if a.SetupSlack != b.SetupSlack {
			return a.SetupSlack < b.SetupSlack
		}
		return a.Name < b.Name
	})
}

// FormatEndpoint renders one endpoint result line.
func FormatEndpoint(r EndpointResult) string {
	setup, hold := "   -   ", "   -   "
	if r.HasSetup {
		setup = fmt.Sprintf("%7.3f", r.SetupSlack)
	}
	if r.HasHold {
		hold = fmt.Sprintf("%7.3f", r.HoldSlack)
	}
	return fmt.Sprintf("%-40s setup %s  hold %s  (%s -> %s)", r.Name, setup, hold, r.SetupLaunch, r.SetupCapture)
}
