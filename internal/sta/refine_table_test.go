package sta

import (
	"reflect"
	"sort"
	"testing"

	"modemerge/internal/graph"
)

// TestExtraClocksTable drives the §3.1.8 clock-refinement BFS through its
// edge cases on the paper circuit's clock network (clk1 fans out directly
// to the register clock pins and, through mux1, to rZ/CP):
//
//   - stop-propagation on reconvergent clock paths: a clock blocked on one
//     branch must survive on parallel branches, the frontier must hold only
//     the *first* blocked node of each branch (on-the-fly blocking), and
//     the mux's non-unate polarity split must not duplicate frontier nodes;
//   - generated clocks crossing the muxed network: a generated clock
//     replaces (or, with -add, joins) its master at the mux output, and a
//     master blocked before the generation point gates the generated clock
//     out of existence — no phantom frontier for a clock that never forms;
//   - disable vs. stop-sense choice: an arc or node already removed by
//     set_disable_timing carries no clock, so refinement never asks for a
//     stop_propagation there — the frontier stays empty.
func TestExtraClocksTable(t *testing.T) {
	const twoClocks = `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 20 [get_ports clk2]
`
	const genClock = twoClocks + `
create_generated_clock -name gdiv -source [get_ports clk1] -divide_by 2 [get_pins mux1/Z]
`
	const genClockAdd = twoClocks + `
create_generated_clock -name gdiv -source [get_ports clk1] -divide_by 2 -add -master_clock clkA [get_pins mux1/Z]
`
	cases := []struct {
		name string
		src  string
		// block maps clock name → node names where justify refuses it;
		// every other (node, clock) pair is justified.
		block map[string][]string
		// want maps clock name → expected frontier nodes (sorted by name).
		// Clocks absent here must not appear in the frontier at all.
		want map[string][]string
		// wantOrder, when set, pins the frontier's clock order (clock
		// definition order — must not vary run to run).
		wantOrder []string
	}{
		{
			name:  "all_justified_no_frontier",
			src:   twoClocks,
			block: nil,
			want:  map[string][]string{},
		},
		{
			name: "branch_block_stops_at_first_node",
			// clkA is refused at the mux output and at the register clock
			// pin behind it. Only the first node of the branch may appear:
			// blocking is applied on the fly, so rZ/CP never sees clkA.
			// The mux is non-unate (both polarities arrive), which must
			// not duplicate the frontier entry.
			src:   twoClocks,
			block: map[string][]string{"clkA": {"mux1/Z", "rZ/CP"}},
			want:  map[string][]string{"clkA": {"mux1/Z"}},
		},
		{
			name:  "downstream_block_leaves_upstream_alone",
			src:   twoClocks,
			block: map[string][]string{"clkA": {"rZ/CP"}},
			want:  map[string][]string{"clkA": {"rZ/CP"}},
		},
		{
			name: "reconvergent_branches_blocked_independently",
			// clk1 fans out to rX/CP directly and to rZ/CP through the
			// mux. Refusing clkA on both branches yields one frontier node
			// per branch; the downstream rZ/CP refusal is shadowed by the
			// mux1/Z block upstream of it.
			src:   twoClocks,
			block: map[string][]string{"clkA": {"rX/CP", "mux1/Z", "rZ/CP"}},
			want:  map[string][]string{"clkA": {"mux1/Z", "rX/CP"}},
		},
		{
			name: "generated_clock_crosses_mux",
			// gdiv replaces its master clkA at the mux output (no -add),
			// so past the mux only gdiv can be blocked; the clkA refusal
			// at rZ/CP never triggers because clkA no longer reaches it.
			src:   genClock,
			block: map[string][]string{"gdiv": {"rZ/CP"}, "clkA": {"rZ/CP"}},
			want:  map[string][]string{"gdiv": {"rZ/CP"}},
		},
		{
			name: "generated_clock_add_keeps_master",
			// With -add both clkA and gdiv cross the mux; refusing both at
			// rZ/CP yields two frontiers at the same node, in clock
			// definition order regardless of map iteration.
			src: genClockAdd,
			block: map[string][]string{
				"clkA": {"rZ/CP"},
				"gdiv": {"rZ/CP"},
			},
			want: map[string][]string{
				"clkA": {"rZ/CP"},
				"gdiv": {"rZ/CP"},
			},
			wantOrder: []string{"clkA", "gdiv"},
		},
		{
			name: "blocked_master_gates_generated_clock",
			// clkA refused at its own root port: it never propagates, the
			// master is never found at the generation point, and gdiv is
			// never born — it must not show up in the frontier even though
			// justify would refuse it everywhere downstream.
			src: genClock,
			block: map[string][]string{
				"clkA": {"clk1"},
				"gdiv": {"mux1/Z", "rZ/CP"},
			},
			want: map[string][]string{"clkA": {"clk1"}},
		},
		{
			name: "disabled_arc_needs_no_stop_sense",
			// The merged mode already carries set_disable_timing on the
			// mux's I0→Z arc (e.g. inherited from every individual mode),
			// so clkA never reaches mux1/Z and refinement must not emit a
			// redundant stop_propagation on top of the disable.
			src: twoClocks + `
set_disable_timing -from I0 -to Z [get_cells mux1]
`,
			block: map[string][]string{"clkA": {"mux1/Z", "rZ/CP"}},
			want:  map[string][]string{},
		},
		{
			name: "disabled_node_needs_no_stop_sense",
			// Same choice at node granularity: a pin-level disable kills
			// every arc through mux1/Z, for clkB from the I1 leg too.
			src: twoClocks + `
set_disable_timing [get_pins mux1/Z]
`,
			block: map[string][]string{
				"clkA": {"mux1/Z", "rZ/CP"},
				"clkB": {"mux1/Z", "rZ/CP"},
			},
			want: map[string][]string{},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ctx := ctxFor(t, tc.src)
			blocked := map[string]map[graph.NodeID]bool{}
			for clock, nodes := range tc.block {
				m := map[graph.NodeID]bool{}
				for _, n := range nodes {
					m[nodeID(t, ctx, n)] = true
				}
				blocked[clock] = m
			}
			frontiers := ctx.ExtraClocks(func(n graph.NodeID, clock string) bool {
				return !blocked[clock][n]
			})

			got := map[string][]string{}
			var gotOrder []string
			for _, f := range frontiers {
				if _, dup := got[f.Clock]; dup {
					t.Errorf("clock %s appears in two frontiers", f.Clock)
				}
				gotOrder = append(gotOrder, f.Clock)
				names := make([]string, len(f.Nodes))
				for i, n := range f.Nodes {
					names[i] = ctx.G.Node(n).Name
				}
				sort.Strings(names)
				got[f.Clock] = names
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("frontiers = %v, want %v", got, tc.want)
			}
			if tc.wantOrder != nil && !reflect.DeepEqual(gotOrder, tc.wantOrder) {
				t.Errorf("frontier clock order = %v, want %v", gotOrder, tc.wantOrder)
			}
		})
	}
}
