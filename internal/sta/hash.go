package sta

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"strconv"

	"modemerge/internal/graph"
	"modemerge/internal/sdc"
)

// Fingerprint is the content address of an analysis context: the timing
// graph's digest, the mode's resolved SDC text (sdc.Write is a canonical
// deterministic rendering, so semantically identical re-parses hash
// equal), and the one analysis option that changes results
// (MaxLaunchEdges — worker count and tracing only change how the same
// answer is computed). Two NewContext calls with equal fingerprints
// produce contexts with identical analysis results, which is what lets
// the incremental engine (internal/incr) reuse a built context instead
// of rebuilding it.
func Fingerprint(g *graph.Graph, mode *sdc.Mode, opt Options) string {
	return FingerprintText(g, sdc.Write(mode), opt)
}

// FingerprintText is Fingerprint for callers that already rendered the
// mode's SDC text (avoids re-writing the mode per lookup).
func FingerprintText(g *graph.Graph, modeText string, opt Options) string {
	maxEdges := opt.MaxLaunchEdges
	if maxEdges <= 0 {
		maxEdges = 64
	}
	h := sha256.New()
	var n [8]byte
	for _, p := range []string{g.Fingerprint(), modeText, strconv.Itoa(maxEdges)} {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stamp is the serializable identity + shape summary of a built context.
// The incremental engine stores it beside cached artifacts so a cache
// consumer can assert that a reused context really matches the inputs it
// claims (a cheap integrity check, not a substitute for the key), and
// explain/trace surfaces can cite which context a cached result came
// from without holding the context itself.
type Stamp struct {
	// Fingerprint is the context's content address (see Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Mode is the mode name the context was built for.
	Mode string `json:"mode"`
	// Clocks, DisabledArcs and Warnings summarize the resolved shape.
	Clocks       int `json:"clocks"`
	DisabledArcs int `json:"disabled_arcs"`
	Warnings     int `json:"warnings"`
}

// Stamp computes the context's stamp.
func (ctx *Context) Stamp() Stamp {
	disabled := 0
	for _, d := range ctx.ArcDisabled {
		if d {
			disabled++
		}
	}
	return Stamp{
		Fingerprint:  Fingerprint(ctx.G, ctx.Mode, ctx.Opt),
		Mode:         ctx.Mode.Name,
		Clocks:       len(ctx.Clocks),
		DisabledArcs: disabled,
		Warnings:     len(ctx.Warnings),
	}
}

// MarshalBinary serializes the stamp (JSON under the hood) for the disk
// cache.
func (s Stamp) MarshalBinary() ([]byte, error) { return json.Marshal(s) }

// UnmarshalBinary restores a serialized stamp.
func (s *Stamp) UnmarshalBinary(b []byte) error { return json.Unmarshal(b, s) }
