package sta

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"sort"
	"strconv"

	"modemerge/internal/graph"
	"modemerge/internal/relation"
	"modemerge/internal/sdc"
)

// Fingerprint is the content address of an analysis context: the timing
// graph's digest, the mode's resolved SDC text (sdc.Write is a canonical
// deterministic rendering, so semantically identical re-parses hash
// equal), and the one analysis option that changes results
// (MaxLaunchEdges — worker count and tracing only change how the same
// answer is computed). Two NewContext calls with equal fingerprints
// produce contexts with identical analysis results, which is what lets
// the incremental engine (internal/incr) reuse a built context instead
// of rebuilding it.
func Fingerprint(g *graph.Graph, mode *sdc.Mode, opt Options) string {
	return FingerprintText(g, sdc.Write(mode), opt)
}

// FingerprintText is Fingerprint for callers that already rendered the
// mode's SDC text (avoids re-writing the mode per lookup).
func FingerprintText(g *graph.Graph, modeText string, opt Options) string {
	maxEdges := opt.MaxLaunchEdges
	if maxEdges <= 0 {
		maxEdges = 64
	}
	parts := []string{g.Fingerprint(), modeText, strconv.Itoa(maxEdges)}
	// The corner changes analysis results, so it is part of the content
	// address. Nil keeps the historical 3-part hash so corner-less
	// fingerprints (and the disk caches keyed by them) stay stable.
	if opt.Corner != nil {
		parts = append(parts, "corner", opt.Corner.Key())
	}
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RelationFingerprint content-hashes one endpoint's relation map in a
// canonical order (keys via SortRelKeys, states sorted by kind/mult/
// value, every field length-prefixed) and reports whether every state
// set is a singleton. Two maps fingerprint equal iff they have the same
// key set with equal state sets per key, independent of map iteration
// and state insertion order — which is what lets the refinement passes
// compare endpoints across modes by hash instead of by pairwise map
// walks.
func RelationFingerprint(rels map[RelKey]relation.Set) (sum string, allSingle bool) {
	keys := make([]RelKey, 0, len(rels))
	for k := range rels {
		keys = append(keys, k)
	}
	sortRelKeys(keys)
	h := sha256.New()
	var n [8]byte
	put := func(p string) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	allSingle = true
	for _, k := range keys {
		put(k.Start)
		put(k.End)
		put(k.Launch)
		put(k.Capture)
		put(strconv.Itoa(int(k.Check)))
		set := rels[k]
		if set.Len() != 1 {
			allSingle = false
		}
		states := set.States()
		// States() sorts by restrictiveness rank, which can tie across
		// kinds; re-sort by raw fields for a canonical serialization.
		sort.Slice(states, func(i, j int) bool {
			a, b := states[i], states[j]
			if a.Kind != b.Kind {
				return a.Kind < b.Kind
			}
			if a.Mult != b.Mult {
				return a.Mult < b.Mult
			}
			return a.Value < b.Value
		})
		put(strconv.Itoa(len(states)))
		for _, st := range states {
			put(strconv.Itoa(int(st.Kind)))
			put(strconv.Itoa(st.Mult))
			put(strconv.FormatFloat(st.Value, 'g', -1, 64))
		}
	}
	return hex.EncodeToString(h.Sum(nil)), allSingle
}

// Stamp is the serializable identity + shape summary of a built context.
// The incremental engine stores it beside cached artifacts so a cache
// consumer can assert that a reused context really matches the inputs it
// claims (a cheap integrity check, not a substitute for the key), and
// explain/trace surfaces can cite which context a cached result came
// from without holding the context itself.
type Stamp struct {
	// Fingerprint is the context's content address (see Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Mode is the mode name the context was built for.
	Mode string `json:"mode"`
	// Clocks, DisabledArcs and Warnings summarize the resolved shape.
	Clocks       int `json:"clocks"`
	DisabledArcs int `json:"disabled_arcs"`
	Warnings     int `json:"warnings"`
}

// Stamp computes the context's stamp.
func (ctx *Context) Stamp() Stamp {
	disabled := 0
	for _, d := range ctx.ArcDisabled {
		if d {
			disabled++
		}
	}
	return Stamp{
		Fingerprint:  Fingerprint(ctx.G, ctx.Mode, ctx.Opt),
		Mode:         ctx.Mode.Name,
		Clocks:       len(ctx.Clocks),
		DisabledArcs: disabled,
		Warnings:     len(ctx.Warnings),
	}
}

// MarshalBinary serializes the stamp (JSON under the hood) for the disk
// cache.
func (s Stamp) MarshalBinary() ([]byte, error) { return json.Marshal(s) }

// UnmarshalBinary restores a serialized stamp.
func (s *Stamp) UnmarshalBinary(b []byte) error { return json.Unmarshal(b, s) }
