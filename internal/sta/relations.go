package sta

import (
	"context"
	"fmt"
	"sync"

	"modemerge/internal/graph"
	"modemerge/internal/relation"
	"modemerge/internal/sdc"
)

// RelKey identifies one timing-relationship path group. Clock names are in
// the context's local namespace; the merging core maps them into the
// merged namespace before comparing across modes.
type RelKey struct {
	Start   string // "*" at endpoint granularity
	End     string
	Launch  string
	Capture string
	Check   relation.CheckType
}

// EndpointRelations computes pass-1 timing relationships: for every
// endpoint and (launch clock, capture clock, check side), the set of
// constraint states over all paths reaching it. Path groups with no live
// paths are absent; callers treat absence as "not timed" (false).
//
// The endpoint loop shards across Opt.Workers goroutines, each folding a
// contiguous endpoint range into a private map under its own child span;
// the shards then reduce in shard order. Relation keys embed the endpoint
// name (RelKey.End), so shard key sets are disjoint and the reduced map —
// and everything derived from it — is identical to the sequential result
// for any worker count. Cancelling cx aborts the loop early; the returned
// map is then partial and the caller must consult cx.Err() before
// trusting it.
func (ctx *Context) EndpointRelations(cx context.Context) map[RelKey]relation.Set {
	sp := ctx.Opt.Span.Child("endpoint_relations")
	defer sp.Finish()
	tags := ctx.tags() // force propagation before fan-out
	ends := ctx.G.Endpoints()
	sp.Add("endpoints", int64(len(ends)))

	workers := ctx.Opt.WorkerCount(len(ends))
	if workers <= 1 {
		out := map[RelKey]relation.Set{}
		for _, end := range ends {
			if cx.Err() != nil {
				return out
			}
			ctx.accumulateRelations(out, end, tags[end], "*")
		}
		sp.Add("path_groups", int64(len(out)))
		return out
	}

	shards := make([]map[RelKey]relation.Set, workers)
	chunk := (len(ends) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(ends) {
			break
		}
		hi := min(lo+chunk, len(ends))
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wsp := sp.Child(fmt.Sprintf("shard_%d", w))
			defer wsp.Finish()
			out := map[RelKey]relation.Set{}
			for i := lo; i < hi; i++ {
				if cx.Err() != nil {
					break
				}
				ctx.accumulateRelations(out, ends[i], tags[ends[i]], "*")
			}
			wsp.Add("endpoints", int64(hi-lo))
			wsp.Add("path_groups", int64(len(out)))
			shards[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	out := map[RelKey]relation.Set{}
	for _, shard := range shards {
		for k, set := range shard {
			out[k] = set
		}
	}
	sp.Add("path_groups", int64(len(out)))
	return out
}

// StartEndRelations computes pass-2 timing relationships for one
// endpoint: path groups keyed by concrete startpoint. Propagation is
// restricted to the endpoint's fan-in cone with startpoint tracking.
func (ctx *Context) StartEndRelations(end graph.NodeID) map[RelKey]relation.Set {
	cone := ctx.G.BackwardReach([]graph.NodeID{end})
	tags := ctx.getTagArray()
	touched := ctx.propagateInto(propOpts{withStart: true, nodeFilter: cone}, tags)
	out := map[RelKey]relation.Set{}
	ctx.accumulateRelations(out, end, tags[end], "")
	ctx.putTagArray(tags, touched)
	return out
}

// accumulateRelations folds one endpoint's tags into relation sets.
// startLabel overrides the start field ("*" for pass 1); when empty the
// tag's tracked startpoint name is used.
func (ctx *Context) accumulateRelations(out map[RelKey]relation.Set, end graph.NodeID, m tagMap, startLabel string) {
	if len(m.entries) == 0 {
		return
	}
	endName := ctx.G.Node(end).Name
	captures := ctx.CaptureClocksAt(end)
	for _, te := range m.entries {
		tag := te.tag
		if tag.launch == NoClock {
			continue
		}
		start := startLabel
		if start == "" {
			if tag.start < 0 {
				start = "*"
			} else {
				start = ctx.G.Node(tag.start).Name
			}
		}
		launchName := ctx.Clocks[tag.launch].Def.Name
		for _, ct := range captures {
			capName := ctx.Clocks[ct.Clock].Def.Name
			for _, check := range []relation.CheckType{relation.Setup, relation.Hold} {
				key := RelKey{Start: start, End: endName, Launch: launchName, Capture: capName, Check: check}
				var st relation.State
				if ctx.Exclusive(tag.launch, ct.Clock) {
					st = relation.StateFalse
				} else {
					winner := sdc.Winner(ctx.exc.completed(tag.vec, end, ct.Clock, tag.trans, check))
					st = stateOf(winner)
					if winner != nil {
						// Normalize kinds that do not apply to this side.
						switch {
						case check == relation.Setup && winner.Kind == sdc.MinDelay:
							st = relation.StateValid
						case check == relation.Hold && winner.Kind == sdc.MaxDelay:
							st = relation.StateValid
						}
					}
				}
				set := out[key]
				set.Add(st)
				out[key] = set
			}
		}
	}
}

// ThroughRel is the pass-3 result for one candidate through node between a
// startpoint and an endpoint.
type ThroughRel struct {
	Node graph.NodeID
	Name string
	// States holds the per-(launch, capture, check) state sets of all
	// paths start→node→end. Keys carry Start and End names.
	States map[RelKey]relation.Set
	// Ambiguous marks nodes where some exception matched only part of the
	// through paths — a finer granularity than pass 3 would be required,
	// which the algorithm does not expect (paper: "No ambiguity is
	// expected at this phase").
	Ambiguous bool
}

// suffix-completion status for the pass-3 DP.
type suffStatus int8

const (
	suffNone suffStatus = iota
	suffAll
	suffSome
)

func combineSuff(a, b suffStatus) suffStatus {
	if a == b {
		return a
	}
	return suffSome
}

// ThroughRelations computes pass-3 timing relationships: for every node on
// a path between start and end, the constraint states of the path subset
// through that node. It combines forward tags (prefix exception progress)
// with a backward all/none/some completion DP per exception.
func (ctx *Context) ThroughRelations(start, end graph.NodeID) []ThroughRel {
	g := ctx.G
	fwd := g.ForwardReach([]graph.NodeID{start})
	bwd := g.BackwardReach([]graph.NodeID{end})
	cone := make([]bool, g.NumNodes())
	var coneNodes []graph.NodeID
	for _, id := range g.Topo() {
		if fwd[id] && bwd[id] {
			cone[id] = true
			coneNodes = append(coneNodes, id)
		}
	}
	if len(coneNodes) == 0 {
		return nil
	}

	tags := ctx.getTagArray()
	touched := ctx.propagateInto(propOpts{
		withStart:  true,
		nodeFilter: cone,
		seedFilter: func(s graph.NodeID) bool { return s == start },
	}, tags)
	defer ctx.putTagArray(tags, touched)

	// Backward DP per exception: status[n][p] with p = progress after n.
	nExc := len(ctx.exc.matchers)
	type excDP struct {
		full          int8
		edgeSensitive bool
		status        map[graph.NodeID][]suffStatus
	}
	dps := make([]excDP, nExc)
	for i := range dps {
		m := &ctx.exc.matchers[i]
		dp := excDP{full: int8(len(m.throughs)), status: map[graph.NodeID][]suffStatus{}}
		if m.toEdge != sdc.EdgeBoth {
			dp.edgeSensitive = true
		}
		for _, e := range m.thruEdges {
			if e != sdc.EdgeBoth {
				dp.edgeSensitive = true
			}
		}
		dps[i] = dp
	}
	// Reverse topological order over cone nodes.
	for ci := len(coneNodes) - 1; ci >= 0; ci-- {
		n := coneNodes[ci]
		for i := range dps {
			dp := &dps[i]
			m := &ctx.exc.matchers[i]
			st := make([]suffStatus, dp.full+1)
			for p := int8(0); p <= dp.full; p++ {
				if n == end {
					if p == dp.full {
						st[p] = suffAll
					} else {
						st[p] = suffNone
					}
					continue
				}
				first := true
				var acc suffStatus
				for _, ai := range g.OutArcs(n) {
					if ctx.ArcDisabled[ai] {
						continue
					}
					a := g.Arc(ai)
					if !cone[a.To] || a.Kind == graph.LaunchArc && n != start {
						continue
					}
					succ := a.To
					pp := advanceOne(m, p, succ, sdc.EdgeBoth)
					sStat := dp.status[succ][pp]
					if first {
						acc = sStat
						first = false
					} else {
						acc = combineSuff(acc, sStat)
					}
				}
				if first {
					acc = suffNone
				}
				st[p] = acc
			}
			dp.status[n] = st
		}
	}

	endName := g.Node(end).Name
	startName := g.Node(start).Name
	captures := ctx.CaptureClocksAt(end)
	liveBwd := ctx.liveBackwardReach(end)
	var out []ThroughRel
	for _, n := range coneNodes {
		m := tags[n]
		if len(m.entries) == 0 || !liveBwd[n] {
			// No live paths start→n or n→end in this mode: the node's
			// path subset is empty here and contributes no states.
			continue
		}
		tr := ThroughRel{Node: n, Name: g.Node(n).Name, States: map[RelKey]relation.Set{}}
		for _, te := range m.entries {
			tag := te.tag
			if tag.launch == NoClock {
				continue
			}
			launchName := ctx.Clocks[tag.launch].Def.Name
			vec := ctx.exc.vec(tag.vec)
			for _, ct := range captures {
				capName := ctx.Clocks[ct.Clock].Def.Name
				for _, check := range []relation.CheckType{relation.Setup, relation.Hold} {
					key := RelKey{Start: startName, End: endName, Launch: launchName, Capture: capName, Check: check}
					if ctx.Exclusive(tag.launch, ct.Clock) {
						set := tr.States[key]
						set.Add(relation.StateFalse)
						tr.States[key] = set
						continue
					}
					var winners []*sdc.Exception
					ambiguous := false
					for i := range dps {
						dp := &dps[i]
						mi := &ctx.exc.matchers[i]
						if vec[i] == progDead || !mi.appliesTo(check) {
							continue
						}
						toAcc := len(mi.toNodes) == 0 && len(mi.toClocks) == 0 ||
							mi.toNodes[end] || mi.toClocks[ct.Clock]
						if !toAcc {
							continue
						}
						var stat suffStatus
						if n == end {
							if vec[i] == dp.full {
								stat = suffAll
							} else {
								stat = suffNone
							}
						} else {
							stat = dp.status[n][vec[i]]
						}
						if dp.edgeSensitive && stat != suffNone {
							ambiguous = true
							continue
						}
						switch stat {
						case suffAll:
							winners = append(winners, mi.e)
						case suffSome:
							ambiguous = true
						}
					}
					set := tr.States[key]
					if ambiguous {
						tr.Ambiguous = true
						// Record both possibilities so comparisons see an
						// ambiguous (multi-state) set.
						set.Add(relation.StateValid)
						set.Add(relation.StateFalse)
					} else {
						set.Add(stateOf(sdc.Winner(winners)))
					}
					tr.States[key] = set
				}
			}
		}
		out = append(out, tr)
	}
	return out
}

// liveBackwardReach marks the nodes from which the endpoint is reachable
// over arcs live in this mode (disabled arcs, disabled nodes and
// case-constant nodes block).
func (ctx *Context) liveBackwardReach(end graph.NodeID) []bool {
	g := ctx.G
	mark := make([]bool, g.NumNodes())
	if ctx.NodeDisabled[end] || ctx.Consts[end].Known() {
		return mark
	}
	mark[end] = true
	stack := []graph.NodeID{end}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ai := range g.InArcs(id) {
			if ctx.ArcDisabled[ai] {
				continue
			}
			from := g.Arc(ai).From
			if mark[from] || ctx.NodeDisabled[from] || ctx.Consts[from].Known() {
				continue
			}
			mark[from] = true
			stack = append(stack, from)
		}
	}
	return mark
}

// RelationTable renders a relation map as sorted rows (debug/report aid).
func RelationTable(rels map[RelKey]relation.Set) []string {
	var keys []RelKey
	for k := range rels {
		keys = append(keys, k)
	}
	sortRelKeys(keys)
	var out []string
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s -> %s [%s/%s %s]: %s",
			k.Start, k.End, k.Launch, k.Capture, k.Check, rels[k].String()))
	}
	return out
}

func sortRelKeys(keys []RelKey) {
	less := func(a, b RelKey) bool {
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Launch != b.Launch {
			return a.Launch < b.Launch
		}
		if a.Capture != b.Capture {
			return a.Capture < b.Capture
		}
		return a.Check < b.Check
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}
