package sta

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"

	"modemerge/internal/graph"
	"modemerge/internal/relation"
	"modemerge/internal/sdc"
)

// RelKey identifies one timing-relationship path group. Clock names are in
// the context's local namespace; the merging core maps them into the
// merged namespace before comparing across modes.
type RelKey struct {
	Start   string // "*" at endpoint granularity
	End     string
	Launch  string
	Capture string
	Check   relation.CheckType
}

// EndpointRelations computes pass-1 timing relationships: for every
// endpoint and (launch clock, capture clock, check side), the set of
// constraint states over all paths reaching it. Path groups with no live
// paths are absent; callers treat absence as "not timed" (false).
//
// The endpoint loop shards across Opt.Workers goroutines, each folding a
// contiguous endpoint range into a private map under its own child span;
// the shards then reduce in shard order. Relation keys embed the endpoint
// name (RelKey.End), so shard key sets are disjoint and the reduced map —
// and everything derived from it — is identical to the sequential result
// for any worker count. Per-endpoint results come from the context's
// relation memo (relcache.go) unless DisableRelationMemo, so repeated
// calls across refinement iterations are pure map assembly. Cancelling cx
// aborts the loop early; the returned map is then partial and the caller
// must consult cx.Err() before trusting it.
func (ctx *Context) EndpointRelations(cx context.Context) map[RelKey]relation.Set {
	sp := ctx.Opt.Span.Child("endpoint_relations")
	defer sp.Finish()
	tags := ctx.tags() // force propagation before fan-out
	ends := ctx.G.Endpoints()
	sp.Add("endpoints", int64(len(ends)))
	hits0, misses0 := ctx.RelCacheStats()
	defer func() {
		hits1, misses1 := ctx.RelCacheStats()
		sp.Add("cache_hits", hits1-hits0)
		sp.Add("cache_misses", misses1-misses0)
	}()

	fold := func(out map[RelKey]relation.Set, end graph.NodeID) {
		if ctx.Opt.DisableRelationMemo {
			ctx.accumulateRelations(out, end, tags[end], "*")
			return
		}
		for k, set := range ctx.EndpointRelationsAt(end) {
			out[k] = set
		}
	}

	workers := ctx.Opt.WorkerCount(len(ends))
	if workers <= 1 {
		out := map[RelKey]relation.Set{}
		for _, end := range ends {
			if cx.Err() != nil {
				return out
			}
			fold(out, end)
		}
		sp.Add("path_groups", int64(len(out)))
		return out
	}

	shards := make([]map[RelKey]relation.Set, workers)
	chunk := (len(ends) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(ends) {
			break
		}
		hi := min(lo+chunk, len(ends))
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wsp := sp.Child(fmt.Sprintf("shard_%d", w))
			defer wsp.Finish()
			out := map[RelKey]relation.Set{}
			for i := lo; i < hi; i++ {
				if cx.Err() != nil {
					break
				}
				fold(out, ends[i])
			}
			wsp.Add("endpoints", int64(hi-lo))
			wsp.Add("path_groups", int64(len(out)))
			shards[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	out := map[RelKey]relation.Set{}
	for _, shard := range shards {
		for k, set := range shard {
			out[k] = set
		}
	}
	sp.Add("path_groups", int64(len(out)))
	return out
}

// StartEndRelations computes pass-2 timing relationships for one
// endpoint: path groups keyed by concrete startpoint. The memoized path
// reads the endpoint's tags off the shared start-tracked full propagation
// (every propagation path into bwd(end) stays inside bwd(end), so the
// full run's tags at the endpoint equal the cone-restricted run's — see
// relcache.go); DisableRelationMemo restores the per-call propagation
// restricted to the endpoint's fan-in cone.
func (ctx *Context) StartEndRelations(end graph.NodeID) map[RelKey]relation.Set {
	if ctx.Opt.DisableRelationMemo {
		out := map[RelKey]relation.Set{}
		ctx.coneStartAccumulate(out, end)
		return out
	}
	rc := ctx.relSlots()
	if p := rc.startEnd[end].Load(); p != nil {
		rc.hits.Add(1)
		return *p
	}
	out := map[RelKey]relation.Set{}
	if rc.startTagsReady.Load() {
		ctx.accumulateRelations(out, end, rc.startTags[end], "")
	} else {
		// Shared start-tracked propagation not forced: a handful of cold
		// endpoints (a warm re-merge's invalidation frontier) is cheaper
		// served by per-endpoint cone propagations, which produce the
		// identical map (see relcache.go).
		ctx.coneStartAccumulate(out, end)
	}
	rc.startEnd[end].Store(&out)
	rc.misses.Add(1)
	return out
}

// coneStartAccumulate folds one endpoint's start-tracked relations from a
// propagation restricted to the endpoint's fan-in cone.
func (ctx *Context) coneStartAccumulate(out map[RelKey]relation.Set, end graph.NodeID) {
	cone := ctx.G.BackwardReach([]graph.NodeID{end})
	tags := ctx.getTagArray()
	touched := ctx.propagateInto(propOpts{withStart: true, nodeFilter: cone}, tags)
	ctx.accumulateRelations(out, end, tags[end], "")
	ctx.putTagArray(tags, touched)
}

// accumulateRelations folds one endpoint's tags into relation sets.
// startLabel overrides the start field ("*" for pass 1); when empty the
// tag's tracked startpoint name is used.
//
// Entries group by (startpoint, launch clock) first: a relation key is a
// function of exactly that pair (plus the loop's capture/check), so each
// key's state set folds from one group — with a single map write per key
// instead of a read-modify-write per tag entry, and with the
// completed()/Winner computation memoized per (vec, trans, capture,
// check), which start-tracked tag sets repeat heavily across startpoints.
// States still Add in tag-entry order within the group, so every set's
// first-insertion order — and thus Set.String() everywhere downstream —
// is byte-identical to the naive per-entry fold.
func (ctx *Context) accumulateRelations(out map[RelKey]relation.Set, end graph.NodeID, m tagMap, startLabel string) {
	if len(m.entries) == 0 {
		return
	}
	endName := ctx.G.Node(end).Name
	captures := ctx.CaptureClocksAt(end)
	// Group key: the tag's startpoint, or one shared bucket when
	// startLabel overrides it (distinct startpoints would collapse onto
	// the same relation key, and splitting them could reorder state
	// insertion).
	type groupKey struct {
		start  graph.NodeID
		launch ClockID
	}
	// Two-pass grouping into one exact-size index arena: assign each
	// entry a dense group id, count, then fill — no per-group slice
	// growth. Group order is first-appearance order, entry order is
	// preserved within each group.
	gidOf := make(map[groupKey]int32)
	var order []groupKey
	var counts []int32
	entryGid := make([]int32, len(m.entries))
	used := 0
	for i := range m.entries {
		tag := m.entries[i].tag
		if tag.launch == NoClock {
			entryGid[i] = -1
			continue
		}
		gk := groupKey{start: tag.start, launch: tag.launch}
		if startLabel != "" {
			gk.start = -2
		}
		gid, seen := gidOf[gk]
		if !seen {
			gid = int32(len(order))
			gidOf[gk] = gid
			order = append(order, gk)
			counts = append(counts, 0)
		}
		entryGid[i] = gid
		counts[gid]++
		used++
	}
	idxArena := make([]int32, used)
	groupIdx := make([][]int32, len(order))
	{
		off := int32(0)
		for gid, c := range counts {
			groupIdx[gid] = idxArena[off : off : off+c]
			off += c
		}
		for i, gid := range entryGid {
			if gid >= 0 {
				groupIdx[gid] = append(groupIdx[gid], int32(i))
			}
		}
	}
	// stateRow memoizes, per distinct (vec, trans), the winner state for
	// every (capture, check) combination — one map lookup per tag entry
	// in the fold below instead of one per combination.
	checks := [2]relation.CheckType{relation.Setup, relation.Hold}
	type rowKey struct {
		vec   int32
		trans sdc.EdgeSel
	}
	rowMemo := make(map[rowKey][]relation.State)
	stateRow := func(vec int32, trans sdc.EdgeSel) []relation.State {
		k := rowKey{vec: vec, trans: trans}
		if row, ok := rowMemo[k]; ok {
			return row
		}
		row := make([]relation.State, 2*len(captures))
		for ci, ct := range captures {
			for hi, check := range checks {
				winner := sdc.Winner(ctx.exc.completed(vec, end, ct.Clock, trans, check))
				st := stateOf(winner)
				if winner != nil {
					// Normalize kinds that do not apply to this side.
					switch {
					case check == relation.Setup && winner.Kind == sdc.MinDelay:
						st = relation.StateValid
					case check == relation.Hold && winner.Kind == sdc.MaxDelay:
						st = relation.StateValid
					}
				}
				row[2*ci+hi] = st
			}
		}
		rowMemo[k] = row
		return row
	}
	var rows [][]relation.State // scratch, reused across groups
	for gi, gk := range order {
		start := startLabel
		if start == "" {
			if gk.start < 0 {
				start = "*"
			} else {
				start = ctx.G.Node(gk.start).Name
			}
		}
		launchName := ctx.Clocks[gk.launch].Def.Name
		idxs := groupIdx[gi]
		rows = rows[:0]
		for _, i := range idxs {
			tag := m.entries[i].tag
			rows = append(rows, stateRow(tag.vec, tag.trans))
		}
		for ci, ct := range captures {
			capName := ctx.Clocks[ct.Clock].Def.Name
			excl := ctx.Exclusive(gk.launch, ct.Clock)
			for hi, check := range checks {
				key := RelKey{Start: start, End: endName, Launch: launchName, Capture: capName, Check: check}
				set := out[key]
				if excl {
					set.Add(relation.StateFalse)
				} else {
					for _, row := range rows {
						set.Add(row[2*ci+hi])
					}
				}
				out[key] = set
			}
		}
	}
}

// ThroughRel is the pass-3 result for one candidate through node between a
// startpoint and an endpoint.
type ThroughRel struct {
	Node graph.NodeID
	Name string
	// States holds the per-(launch, capture, check) state sets of all
	// paths start→node→end. Keys carry Start and End names.
	States map[RelKey]relation.Set
	// Ambiguous marks nodes where some exception matched only part of the
	// through paths — a finer granularity than pass 3 would be required,
	// which the algorithm does not expect (paper: "No ambiguity is
	// expected at this phase").
	Ambiguous bool
}

// suffix-completion status for the pass-3 DP.
type suffStatus int8

const (
	suffNone suffStatus = iota
	suffAll
	suffSome
)

func combineSuff(a, b suffStatus) suffStatus {
	if a == b {
		return a
	}
	return suffSome
}

// ThroughRelations computes pass-3 timing relationships: for every node on
// a path between start and end, the constraint states of the path subset
// through that node. It combines forward tags (prefix exception progress)
// with a backward all/none/some completion DP per exception. Results are
// memoized per (start, end) pair; the memoized path reads cone tags off
// the shared start-tracked propagation filtered by startpoint (identical
// tag set and insertion order, see relcache.go), while
// DisableRelationMemo restores the per-call seeded cone propagation. The
// returned slice is shared and must not be mutated.
func (ctx *Context) ThroughRelations(start, end graph.NodeID) []ThroughRel {
	if ctx.Opt.DisableRelationMemo {
		return ctx.throughRelations(start, end, false)
	}
	rc := ctx.relSlots()
	key := [2]graph.NodeID{start, end}
	if v, ok := rc.through.Load(key); ok {
		rc.hits.Add(1)
		return v.([]ThroughRel)
	}
	// Read the shared start-tracked tags only when already forced; a cold
	// context serves the pair from a seeded cone propagation instead of
	// paying a full-design propagation (identical results either way).
	out := ctx.throughRelations(start, end, rc.startTagsReady.Load())
	rc.through.Store(key, out)
	rc.misses.Add(1)
	return out
}

func (ctx *Context) throughRelations(start, end graph.NodeID, useSharedTags bool) []ThroughRel {
	g := ctx.G
	fwd := g.ForwardReach([]graph.NodeID{start})
	bwd := g.BackwardReach([]graph.NodeID{end})
	cone := make([]bool, g.NumNodes())
	var coneNodes []graph.NodeID
	for _, id := range g.Topo() {
		if fwd[id] && bwd[id] {
			cone[id] = true
			coneNodes = append(coneNodes, id)
		}
	}
	if len(coneNodes) == 0 {
		return nil
	}

	var entriesAt func(graph.NodeID) []tagEntry
	if useSharedTags {
		ctx.startTagsAll()
		entriesAt = func(n graph.NodeID) []tagEntry { return ctx.startEntriesAt(n, start) }
	} else {
		tags := ctx.getTagArray()
		touched := ctx.propagateInto(propOpts{
			withStart:  true,
			nodeFilter: cone,
			seedFilter: func(s graph.NodeID) bool { return s == start },
		}, tags)
		defer ctx.putTagArray(tags, touched)
		entriesAt = func(n graph.NodeID) []tagEntry { return tags[n].entries }
	}

	// Backward DP per exception: status[n][p] with p = progress after n.
	// The DP for one matcher is independent of the others, so it computes
	// lazily on first consultation — a tag's progress vector leaves most
	// matchers dead, and dead matchers are never consulted.
	nExc := len(ctx.exc.matchers)
	type excDP struct {
		full          int8
		edgeSensitive bool
		status        map[graph.NodeID][]suffStatus // nil until ensured
	}
	dps := make([]excDP, nExc)
	for i := range dps {
		m := &ctx.exc.matchers[i]
		dp := excDP{full: int8(len(m.throughs))}
		if m.toEdge != sdc.EdgeBoth {
			dp.edgeSensitive = true
		}
		for _, e := range m.thruEdges {
			if e != sdc.EdgeBoth {
				dp.edgeSensitive = true
			}
		}
		dps[i] = dp
	}
	ensureDP := func(i int32) *excDP {
		dp := &dps[i]
		if dp.status != nil {
			return dp
		}
		m := &ctx.exc.matchers[i]
		dp.status = make(map[graph.NodeID][]suffStatus, len(coneNodes))
		// Reverse topological order over cone nodes.
		for ci := len(coneNodes) - 1; ci >= 0; ci-- {
			n := coneNodes[ci]
			st := make([]suffStatus, dp.full+1)
			for p := int8(0); p <= dp.full; p++ {
				if n == end {
					if p == dp.full {
						st[p] = suffAll
					} else {
						st[p] = suffNone
					}
					continue
				}
				first := true
				var acc suffStatus
				for _, ai := range g.OutArcs(n) {
					if ctx.ArcDisabled[ai] {
						continue
					}
					a := g.Arc(ai)
					if !cone[a.To] || a.Kind == graph.LaunchArc && n != start {
						continue
					}
					succ := a.To
					pp := advanceOne(m, p, succ, sdc.EdgeBoth)
					sStat := dp.status[succ][pp]
					if first {
						acc = sStat
						first = false
					} else {
						acc = combineSuff(acc, sStat)
					}
				}
				if first {
					acc = suffNone
				}
				st[p] = acc
			}
			dp.status[n] = st
		}
		return dp
	}

	endName := g.Node(end).Name
	startName := g.Node(start).Name
	captures := ctx.CaptureClocksAt(end)
	liveBwd := ctx.liveBwdMemo(end)

	// Per-node state sets accumulate in a dense (launch, capture, check)
	// scratch matrix instead of a RelKey-keyed map: every key of one
	// node's States shares Start/End, so the map's read-modify-write per
	// (entry, capture, check) — each hashing a four-string key — collapses
	// to an index. The map materializes once per node; each cell's state
	// insertion order is untouched (same Add sequence as before).
	checks := [2]relation.CheckType{relation.Setup, relation.Hold}
	nCaps := len(captures)
	cells := make([]relation.Set, len(ctx.Clocks)*nCaps*2)
	cellGen := make([]int32, len(cells))
	gen := int32(0)
	var touched []int32

	var out []ThroughRel
	for _, n := range coneNodes {
		entries := entriesAt(n)
		if len(entries) == 0 || !liveBwd[n] {
			// No live paths start→n or n→end in this mode: the node's
			// path subset is empty here and contributes no states.
			continue
		}
		tr := ThroughRel{Node: n, Name: g.Node(n).Name}
		gen++
		touched = touched[:0]
		for _, te := range entries {
			tag := te.tag
			if tag.launch == NoClock {
				continue
			}
			vec := ctx.exc.vec(tag.vec)
			alive := ctx.exc.aliveCandidates(tag.vec)
			for ci, ct := range captures {
				for hi, check := range checks {
					idx := (int(tag.launch)*nCaps+ci)*2 + hi
					if cellGen[idx] != gen {
						cellGen[idx] = gen
						cells[idx] = relation.Set{}
						touched = append(touched, int32(idx))
					}
					set := &cells[idx]
					if ctx.Exclusive(tag.launch, ct.Clock) {
						set.Add(relation.StateFalse)
						continue
					}
					var winners []*sdc.Exception
					ambiguous := false
					for _, i := range alive {
						mi := &ctx.exc.matchers[i]
						if !mi.appliesTo(check) {
							continue
						}
						toAcc := len(mi.toNodes) == 0 && len(mi.toClocks) == 0 ||
							mi.toNodes[end] || mi.toClocks[ct.Clock]
						if !toAcc {
							continue
						}
						dp := ensureDP(i)
						var stat suffStatus
						if n == end {
							if vec[i] == dp.full {
								stat = suffAll
							} else {
								stat = suffNone
							}
						} else {
							stat = dp.status[n][vec[i]]
						}
						if dp.edgeSensitive && stat != suffNone {
							ambiguous = true
							continue
						}
						switch stat {
						case suffAll:
							winners = append(winners, mi.e)
						case suffSome:
							ambiguous = true
						}
					}
					if ambiguous {
						tr.Ambiguous = true
						// Record both possibilities so comparisons see an
						// ambiguous (multi-state) set.
						set.Add(relation.StateValid)
						set.Add(relation.StateFalse)
					} else {
						set.Add(stateOf(sdc.Winner(winners)))
					}
				}
			}
		}
		tr.States = make(map[RelKey]relation.Set, len(touched))
		for _, idx := range touched {
			launch := ClockID(int(idx) / (nCaps * 2))
			ci := (int(idx) / 2) % nCaps
			hi := int(idx) % 2
			key := RelKey{
				Start:   startName,
				End:     endName,
				Launch:  ctx.Clocks[launch].Def.Name,
				Capture: ctx.Clocks[captures[ci].Clock].Def.Name,
				Check:   checks[hi],
			}
			tr.States[key] = cells[idx]
		}
		out = append(out, tr)
	}
	return out
}

// liveBackwardReach marks the nodes from which the endpoint is reachable
// over arcs live in this mode (disabled arcs, disabled nodes and
// case-constant nodes block).
func (ctx *Context) liveBackwardReach(end graph.NodeID) []bool {
	g := ctx.G
	mark := make([]bool, g.NumNodes())
	if ctx.NodeDisabled[end] || ctx.Consts[end].Known() {
		return mark
	}
	mark[end] = true
	stack := []graph.NodeID{end}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ai := range g.InArcs(id) {
			if ctx.ArcDisabled[ai] {
				continue
			}
			from := g.Arc(ai).From
			if mark[from] || ctx.NodeDisabled[from] || ctx.Consts[from].Known() {
				continue
			}
			mark[from] = true
			stack = append(stack, from)
		}
	}
	return mark
}

// RelationTable renders a relation map as sorted rows (debug/report aid).
func RelationTable(rels map[RelKey]relation.Set) []string {
	var keys []RelKey
	for k := range rels {
		keys = append(keys, k)
	}
	sortRelKeys(keys)
	var out []string
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s -> %s [%s/%s %s]: %s",
			k.Start, k.End, k.Launch, k.Capture, k.Check, rels[k].String()))
	}
	return out
}

// SortRelKeys sorts relation keys by (End, Start, Launch, Capture,
// Check) — the deterministic comparison order shared by the refinement
// passes and the relation fingerprint.
func SortRelKeys(keys []RelKey) { sortRelKeys(keys) }

func sortRelKeys(keys []RelKey) {
	slices.SortFunc(keys, func(a, b RelKey) int {
		if c := strings.Compare(a.End, b.End); c != 0 {
			return c
		}
		if c := strings.Compare(a.Start, b.Start); c != 0 {
			return c
		}
		if c := strings.Compare(a.Launch, b.Launch); c != 0 {
			return c
		}
		if c := strings.Compare(a.Capture, b.Capture); c != 0 {
			return c
		}
		return int(a.Check) - int(b.Check)
	})
}
