package sta

import (
	"sort"

	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
)

// Frontier records where an unjustified clock first appears during a
// refinement traversal: the clock name and the nodes to block it at.
type Frontier struct {
	Clock string
	Nodes []graph.NodeID
}

// ExtraClocks re-propagates this context's clocks through the clock
// network, asking the justify callback at every node whether each clock is
// allowed there (i.e. present at that node in at least one individual
// mode). Unjustified clocks are blocked on the spot — exactly the paper's
// §3.1.8 breadth-first clock refinement — and the blocking frontier is
// returned so the merger can emit set_clock_sense -stop_propagation
// constraints. Blocking is applied on the fly, so downstream nodes only
// see justified clocks and the frontier is minimal.
func (ctx *Context) ExtraClocks(justify func(node graph.NodeID, clock string) bool) []Frontier {
	g := ctx.G
	type key = clockKey
	tags := make([]map[key]bool, g.NumNodes())
	frontier := map[string][]graph.NodeID{}
	var order []string

	rootAt := map[graph.NodeID][]ClockID{}
	genAt := map[graph.NodeID][]ClockID{}
	for _, c := range ctx.Clocks {
		for _, n := range c.SrcNodes {
			if c.Def.Generated {
				genAt[n] = append(genAt[n], c.ID)
			} else {
				rootAt[n] = append(rootAt[n], c.ID)
			}
		}
	}

	for _, id := range g.Topo() {
		cur := map[key]bool{}
		if !ctx.NodeDisabled[id] && !ctx.Consts[id].Known() {
			for _, ai := range g.InArcs(id) {
				if ctx.ArcDisabled[ai] {
					continue
				}
				a := g.Arc(ai)
				if a.Kind == graph.LaunchArc {
					continue
				}
				for t := range tags[a.From] {
					switch a.Unate() {
					case library.PositiveUnate:
						cur[key{t.clock, t.inv}] = true
					case library.NegativeUnate:
						cur[key{t.clock, !t.inv}] = true
					default:
						cur[key{t.clock, false}] = true
						cur[key{t.clock, true}] = true
					}
				}
			}
		}
		for _, gid := range genAt[id] {
			gc := ctx.Clocks[gid]
			masterID, ok := ctx.clockByName[gc.Def.Master]
			if ok {
				found := false
				for t := range cur {
					if t.clock == masterID {
						found = true
						if !gc.Def.Add {
							delete(cur, t)
						}
					}
				}
				if found {
					cur[key{gid, gc.Def.Invert}] = true
				}
			}
		}
		for _, cid := range rootAt[id] {
			if !ctx.Consts[id].Known() && !ctx.NodeDisabled[id] {
				cur[key{cid, false}] = true
			}
		}
		// Justify every clock present; block the unjustified ones here.
		// Visit keys in (clock, polarity) order: when several clocks are
		// first blocked at the same node, the frontier order — and with it
		// the merged SDC's set_clock_sense order — must not depend on map
		// iteration.
		keys := make([]key, 0, len(cur))
		for t := range cur {
			keys = append(keys, t)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].clock != keys[j].clock {
				return keys[i].clock < keys[j].clock
			}
			return !keys[i].inv && keys[j].inv
		})
		blocked := map[ClockID]bool{}
		for _, t := range keys {
			if blocked[t.clock] {
				delete(cur, t)
				continue
			}
			name := ctx.Clocks[t.clock].Def.Name
			if !justify(id, name) {
				blocked[t.clock] = true
				if _, seen := frontier[name]; !seen {
					order = append(order, name)
				}
				frontier[name] = append(frontier[name], id)
				delete(cur, t)
			}
		}
		// A second sweep: blocking one polarity removes the other too.
		for t := range cur {
			if blocked[t.clock] {
				delete(cur, t)
			}
		}
		if len(cur) > 0 {
			tags[id] = cur
		}
	}

	out := make([]Frontier, 0, len(order))
	for _, name := range order {
		out = append(out, Frontier{Clock: name, Nodes: frontier[name]})
	}
	return out
}

// FlowFrontier describes where unjustified launch-clock data flows must
// be blocked: whole nodes (every path of the clock through them dies) and
// individual from→to hops (only that arc dies — e.g. the deselected leg
// of a scan mux whose select is cased differently across modes).
type FlowFrontier struct {
	Clock string
	Nodes []graph.NodeID
	Arcs  [][2]graph.NodeID
}

// ExtraLaunchFlows propagates launch-clock identities through the data
// network at arc granularity — the paper's §3.2 first data-refinement
// step. seedJustify is asked whether some individual mode launches the
// clock at a seed node (register output or input port); arcJustify is
// asked whether some individual mode actually propagates the clock's data
// across a given arc. Unjustified flows are blocked on the fly so the
// frontier stays minimal, then blocked hops collapse to node blocks where
// every attempted flow into (preferred, matching the paper's pin lists)
// or out of a node died.
func (ctx *Context) ExtraLaunchFlows(
	seedJustify func(node graph.NodeID, clock string) bool,
	arcJustify func(arc int32, clock string) bool,
) []FlowFrontier {
	g := ctx.G
	// tags is a node×clock presence matrix: row id*nc..id*nc+nc-1 holds
	// which launch clocks reach node id. Clock counts are tiny, so flat
	// bool rows beat one map per node, and iterating a row visits clocks
	// in ClockID order for free — the order the frontier (and with it the
	// merged SDC's false-path order) must follow regardless of how the
	// flows were discovered.
	nc := len(ctx.Clocks)
	tags := make([]bool, g.NumNodes()*nc)

	// Per-(node,clock) attempt/block counters, same flat layout.
	inAttempt := make([]int32, g.NumNodes()*nc)
	inBlocked := make([]int32, g.NumNodes()*nc)
	outAttempt := make([]int32, g.NumNodes()*nc)
	outBlocked := make([]int32, g.NumNodes()*nc)
	blockedArcs := map[ClockID][]int32{}
	blockedSeeds := map[ClockID][]graph.NodeID{}
	var clockOrder []ClockID
	seenClock := make([]bool, nc)
	noteClock := func(c ClockID) {
		if !seenClock[c] {
			seenClock[c] = true
			clockOrder = append(clockOrder, c)
		}
	}

	for _, id := range g.Topo() {
		if ctx.NodeDisabled[id] || ctx.Consts[id].Known() {
			continue
		}
		cur := tags[int(id)*nc : int(id)*nc+nc]
		addSeed := func(c ClockID) {
			name := ctx.Clocks[c].Def.Name
			if seedJustify(id, name) {
				cur[c] = true
			} else {
				noteClock(c)
				blockedSeeds[c] = append(blockedSeeds[c], id)
			}
		}
		for _, ai := range g.InArcs(id) {
			if ctx.ArcDisabled[ai] {
				continue
			}
			a := g.Arc(ai)
			if a.Kind == graph.LaunchArc {
				// Launch: the clocks at the register clock pin become
				// launch clocks of the data at the output.
				for _, ct := range ctx.ClockTags[a.From] {
					if !cur[ct.Clock] {
						addSeed(ct.Clock)
					}
				}
				continue
			}
			from := int(a.From) * nc
			for c := ClockID(0); int(c) < nc; c++ {
				if !tags[from+int(c)] {
					continue
				}
				name := ctx.Clocks[c].Def.Name
				outAttempt[from+int(c)]++
				inAttempt[int(id)*nc+int(c)]++
				if arcJustify(ai, name) {
					cur[c] = true
				} else {
					noteClock(c)
					outBlocked[from+int(c)]++
					inBlocked[int(id)*nc+int(c)]++
					blockedArcs[c] = append(blockedArcs[c], ai)
				}
			}
		}
		node := g.Node(id)
		if node.Port != nil && node.Port.Dir == netlist.In {
			for _, d := range ctx.inputDelays(id) {
				if d.Clock != "" {
					if cid, ok := ctx.clockByName[d.Clock]; ok && !cur[cid] {
						addSeed(cid)
					}
				}
			}
		}
	}

	var out []FlowFrontier
	for _, c := range clockOrder {
		f := FlowFrontier{Clock: ctx.Clocks[c].Def.Name}
		nodeChosen := map[graph.NodeID]bool{}
		for _, n := range blockedSeeds[c] {
			if !nodeChosen[n] {
				nodeChosen[n] = true
				f.Nodes = append(f.Nodes, n)
			}
		}
		for _, ai := range blockedArcs[c] {
			a := g.Arc(ai)
			if nodeChosen[a.From] || nodeChosen[a.To] {
				continue
			}
			// Prefer blocking at the sink when every attempted in-flow
			// died and nothing else (seed) revives the clock there.
			to := int(a.To)*nc + int(c)
			if inBlocked[to] == inAttempt[to] && !tags[to] {
				nodeChosen[a.To] = true
				f.Nodes = append(f.Nodes, a.To)
				continue
			}
			fr := int(a.From)*nc + int(c)
			if outBlocked[fr] == outAttempt[fr] {
				nodeChosen[a.From] = true
				f.Nodes = append(f.Nodes, a.From)
				continue
			}
			f.Arcs = append(f.Arcs, [2]graph.NodeID{a.From, a.To})
		}
		// Drop arc blocks made redundant by later node choices.
		var arcs [][2]graph.NodeID
		for _, pair := range f.Arcs {
			if !nodeChosen[pair[0]] && !nodeChosen[pair[1]] {
				arcs = append(arcs, pair)
			}
		}
		f.Arcs = arcs
		if len(f.Nodes) > 0 || len(f.Arcs) > 0 {
			out = append(out, f)
		}
	}
	return out
}

// LaunchClockTable returns, for each requested clock name, a node-indexed
// presence vector: whether data launched by that clock reaches the node
// (full-design propagation). Unknown or empty names yield nil rows. One
// pass over the cached tags replaces per-query entry scans — the merger's
// flow justification asks this question once per arc per clock.
func (ctx *Context) LaunchClockTable(names []string) [][]bool {
	rows := make([][]bool, len(names))
	rowsOf := make([][]int32, len(ctx.Clocks))
	any := false
	for i, name := range names {
		if name == "" {
			continue
		}
		if cid, ok := ctx.clockByName[name]; ok {
			rows[i] = make([]bool, ctx.G.NumNodes())
			rowsOf[cid] = append(rowsOf[cid], int32(i))
			any = true
		}
	}
	if !any {
		return rows
	}
	for id, m := range ctx.tags() {
		for _, te := range m.entries {
			if te.tag.launch == NoClock {
				continue
			}
			for _, ri := range rowsOf[te.tag.launch] {
				rows[ri][id] = true
			}
		}
	}
	return rows
}

// HasLaunchClockAt reports whether data launched by the named clock
// reaches the node in this mode.
func (ctx *Context) HasLaunchClockAt(id graph.NodeID, name string) bool {
	cid, ok := ctx.clockByName[name]
	if !ok {
		return false
	}
	for _, te := range ctx.tags()[id].entries {
		if te.tag.launch == cid {
			return true
		}
	}
	return false
}

// ArcDisabledAt exposes arc liveness for the merger's cross-mode flow
// justification (arc indices are shared across contexts on one graph).
func (ctx *Context) ArcDisabledAt(ai int32) bool { return ctx.ArcDisabled[ai] }

// LaunchClocksAt returns the distinct launch-clock names of the data tags
// present at a node (full-design propagation).
func (ctx *Context) LaunchClocksAt(id graph.NodeID) []string {
	seen := map[ClockID]bool{}
	var out []string
	for _, te := range ctx.tags()[id].entries {
		if te.tag.launch == NoClock || seen[te.tag.launch] {
			continue
		}
		seen[te.tag.launch] = true
		out = append(out, ctx.Clocks[te.tag.launch].Def.Name)
	}
	sortStringsInPlace(out)
	return out
}

func sortStringsInPlace(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ConstPortsNeverTiming returns input ports that are case-constant (so
// they never launch data), used by the merger to infer set_disable_timing
// when case statements are dropped.
func (ctx *Context) ConstPortsNeverTiming() []string {
	var out []string
	for _, p := range ctx.G.Design.Ports {
		if p.Dir != netlist.In {
			continue
		}
		if id, ok := ctx.G.NodeByName(p.Name); ok && ctx.Consts[id].Known() {
			out = append(out, p.Name)
		}
	}
	return out
}

// ConstValueAt returns the case-analysis constant at a named node.
func (ctx *Context) ConstValueAt(name string) (library.Logic, bool) {
	id, ok := ctx.G.NodeByName(name)
	if !ok {
		return library.LX, false
	}
	v := ctx.Consts[id]
	return v, v.Known()
}

// HasDirectCase reports whether a node carries a direct set_case_analysis.
func (ctx *Context) HasDirectCase(name string) (library.Logic, bool) {
	id, ok := ctx.G.NodeByName(name)
	if !ok {
		return library.LX, false
	}
	v, has := ctx.forcedCase[id]
	return v, has
}

// StartpointLaunchClocks returns the clock names that can launch paths
// anchored at the given -from object in this mode: for register pins, the
// clocks present at the register's clock pin; for input ports, the
// reference clocks of their input delays.
func (ctx *Context) StartpointLaunchClocks(pinName string) []string {
	id, ok := ctx.G.NodeByName(pinName)
	if !ok {
		return nil
	}
	id = expandStartpoint(ctx.G, id)
	node := ctx.G.Node(id)
	if node.IsRegClock {
		return ctx.ClockNamesAt(id)
	}
	if node.Port != nil {
		var out []string
		seen := map[string]bool{}
		for _, d := range ctx.inputDelays(id) {
			if d.Clock != "" && !seen[d.Clock] {
				seen[d.Clock] = true
				out = append(out, d.Clock)
			}
		}
		return out
	}
	return nil
}

// AllClockNames lists every clock defined in this mode.
func (ctx *Context) AllClockNames() []string {
	out := make([]string, len(ctx.Clocks))
	for i, c := range ctx.Clocks {
		out[i] = c.Def.Name
	}
	return out
}
