package sta_test

import (
	"context"
	"fmt"
	"log"

	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

// ExampleContext_AnalyzeEndpoints runs STA on the paper's example circuit
// and reports its most critical endpoint.
func ExampleContext_AnalyzeEndpoints() {
	design := gen.PaperCircuit()
	g, err := graph.Build(design)
	if err != nil {
		log.Fatal(err)
	}
	mode, _, err := sdc.Parse("func", `
create_clock -name clkA -period 2 [get_ports clk1]
set_clock_uncertainty 0.1 [get_clocks clkA]
`, design)
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := sta.NewContext(g, mode, sta.Options{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	results := ctx.AnalyzeEndpoints(context.Background())
	sta.SortBySetupSlack(results)
	worst := results[0]
	fmt.Printf("worst endpoint %s (%s -> %s)\n", worst.Name, worst.SetupLaunch, worst.SetupCapture)
	fmt.Printf("positive slack: %v\n", worst.SetupSlack > 0)
	// Output:
	// worst endpoint rY/D (clkA -> clkA)
	// positive slack: true
}

// ExampleContext_EndpointRelations computes the paper's Table 1.
func ExampleContext_EndpointRelations() {
	design := gen.PaperCircuit()
	g, _ := graph.Build(design)
	mode, _, err := sdc.Parse("set1", `
create_clock -name clkA -period 10 [get_ports clk1]
set_multicycle_path 2 -through [get_pins inv1/Z]
set_false_path -through [get_pins and1/Z]
`, design)
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := sta.NewContext(g, mode, sta.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rels := ctx.EndpointRelations(context.Background())
	for _, end := range []string{"rX/D", "rY/D", "rZ/D"} {
		key := sta.RelKey{Start: "*", End: end, Launch: "clkA", Capture: "clkA"}
		fmt.Printf("%s: %s\n", end, rels[key])
	}
	// Output:
	// rX/D: MCP(2)
	// rY/D: FP
	// rZ/D: V
}
