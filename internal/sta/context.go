// Package sta is the static timing analysis substrate: per-mode analysis
// contexts with case-analysis constant propagation, clock propagation
// through the clock network, tag-based data propagation with exception
// matching, setup/hold slack analysis, and the timing-relationship
// computations (endpoint, startpoint–endpoint, and through-point
// granularity) that the mode-merging 3-pass algorithm consumes.
package sta

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/obs"
	"modemerge/internal/sdc"
)

// ClockID indexes Context.Clocks.
type ClockID int32

// NoClock marks the absence of a clock.
const NoClock ClockID = -1

// ClockInfo is a resolved clock of one analysis context.
type ClockInfo struct {
	ID  ClockID
	Def *sdc.Clock
	// SrcNodes are the graph nodes the clock is rooted on.
	SrcNodes []graph.NodeID
	// Propagated is set by set_propagated_clock.
	Propagated bool
	// Ideal-mode network latency and source latency (min/max).
	LatMin, LatMax       float64
	SrcLatMin, SrcLatMax float64
	// Simple (non inter-clock) uncertainties.
	UncSetup, UncHold float64
}

// Period returns the clock period.
func (c *ClockInfo) Period() float64 { return c.Def.Period }

// RiseTime and FallTime return the waveform edges.
func (c *ClockInfo) RiseTime() float64 { return c.Def.Waveform[0] }

// FallTime returns the falling edge time.
func (c *ClockInfo) FallTime() float64 { return c.Def.Waveform[1] }

// ClockAtNode is one clock present at a node of the clock network.
type ClockAtNode struct {
	Clock ClockID
	// Inv is true when the clock arrives inverted at the node.
	Inv bool
	// ArrMin/ArrMax are the propagated network arrival bounds.
	ArrMin, ArrMax float64
}

// Options tunes an analysis context.
type Options struct {
	// Workers bounds the whole-design worker pools (endpoint slack
	// analysis and the sharded endpoint-relation loop); 0 means
	// GOMAXPROCS, 1 forces the sequential path.
	Workers int
	// MaxLaunchEdges caps the hyperperiod expansion when relating two
	// clock waveforms; 0 means the default of 64.
	MaxLaunchEdges int
	// Span, when set, is the parent under which the whole-design analysis
	// loops (EndpointRelations, AnalyzeEndpoints) record child spans.
	// Per-endpoint queries stay uninstrumented — they run in tight
	// parallel loops where per-call spans would swamp the trace. Nil
	// disables tracing.
	Span *obs.Span
	// DisableRelationMemo forces every relation query back onto the
	// uncached per-query propagation path (pass 2/3 re-propagate the
	// endpoint cone per call, pass 1 rebuilds its map per call). Results
	// are byte-identical either way — this is a debug/equivalence-test
	// knob, excluded from Fingerprint like Workers and Span.
	DisableRelationMemo bool
	// Corner selects the operating corner the context analyzes: its
	// derates scale the delay calculation and check margins. Nil means
	// the nominal corner-less analysis (bit-identical to builds that
	// predate corners — no factors are applied at all). Unlike the
	// knobs above, the corner changes analysis results, so it is part
	// of Fingerprint.
	Corner *library.Corner
}

// WorkerCount resolves Workers against n work items: at least 1, at most
// n, defaulting to GOMAXPROCS when Workers is 0.
func (o Options) WorkerCount(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Context is the per-mode analysis state: one design + one SDC mode.
type Context struct {
	G    *graph.Graph
	Mode *sdc.Mode
	Opt  Options

	Clocks      []*ClockInfo
	clockByName map[string]ClockID

	// Consts holds the case-analysis constant value per node.
	Consts []library.Logic
	// ArcDisabled marks arcs removed by disable_timing, constants or
	// clock-group handling.
	ArcDisabled []bool
	// NodeDisabled marks nodes disabled by set_disable_timing.
	NodeDisabled []bool

	// ClockTags lists the clocks present at each node of the clock
	// network (after stop_propagation and constant blocking).
	ClockTags [][]ClockAtNode

	// exclusive[a][b] reports that clocks a and b never time a path
	// together (set_clock_groups).
	exclusive [][]bool
	// interUnc holds inter-clock uncertainties: [launch][capture] →
	// (setup, hold), represented sparsely.
	interUnc map[[2]ClockID][2]float64

	// ioByPort indexes input/output delays by port node.
	ioByPort map[graph.NodeID][]*sdc.IODelay

	exc *excSet

	// forcedCase records the direct case-analysis values by node.
	forcedCase map[graph.NodeID]library.Logic

	// dataTags holds the forward data propagation result (lazy,
	// concurrency-safe via tagsOnce).
	dataTags []tagMap
	tagsOnce sync.Once
	// tagArrayPool recycles node-indexed tag arrays for restricted
	// propagations (see getTagArray).
	tagArrayPool sync.Pool

	// clockActive caches per-clock activity (lazy, once-protected so a
	// context cached by the incremental engine can be shared by
	// concurrent merges; see ClockActive).
	clockActive []bool
	activeGuard sync.Once

	// rel memoizes relation-query results (shared start-tracked
	// propagation, per-endpoint pass-1/2 maps, per-pair pass-3 slices and
	// live-path profiles); see relcache.go.
	rel relCache

	// borrowNode/borrowClock hold set_max_time_borrow limits.
	borrowNode  map[graph.NodeID]float64
	borrowClock map[ClockID]float64

	// delays/slews hold the per-mode delay-calculation result (see
	// delaycalc.go).
	delays []arcDelay
	slews  []float64

	// Warnings collects non-fatal analysis notes. preExcWarnings counts
	// the warnings emitted before exception compilation, so a derived
	// context (DeriveExceptionsOnly) can re-run exception compilation
	// without duplicating the earlier notes.
	Warnings       []string
	preExcWarnings int
}

// NewContext resolves a mode against a design's timing graph: clocks,
// constants, disabled arcs and clock propagation. Data propagation runs
// lazily on first use.
func NewContext(g *graph.Graph, mode *sdc.Mode, opt Options) (*Context, error) {
	if opt.MaxLaunchEdges <= 0 {
		opt.MaxLaunchEdges = 64
	}
	ctx := &Context{
		G:           g,
		Mode:        mode,
		Opt:         opt,
		clockByName: make(map[string]ClockID),
		interUnc:    make(map[[2]ClockID][2]float64),
		ioByPort:    make(map[graph.NodeID][]*sdc.IODelay),
	}
	if err := ctx.resolveClocks(); err != nil {
		return nil, err
	}
	if err := ctx.applyEnvironment(); err != nil {
		return nil, err
	}
	if err := ctx.resolveBorrows(); err != nil {
		return nil, err
	}
	ctx.propagateConstants()
	ctx.disableConstArcs()
	ctx.computeDelays()
	if err := ctx.propagateClocks(); err != nil {
		return nil, err
	}
	if err := ctx.buildExclusive(); err != nil {
		return nil, err
	}
	ctx.preExcWarnings = len(ctx.Warnings)
	ctx.exc = newExcSet(ctx)
	return ctx, nil
}

// DeriveExceptionsOnly builds the analysis context of a mode that differs
// from prev's mode ONLY in its timing exceptions. Everything NewContext
// derives ahead of exception compilation — clocks, case constants,
// disables, delays, clock propagation, exclusivity, borrows — depends on
// the other mode sections alone, so the derived context shares those
// (immutable after construction) and re-runs only exception compilation.
// This is the refinement loop's rebuild fast path: each iteration appends
// corrective false paths and nothing else. Lazy state (data propagations,
// the relation memo) starts empty; the caller transfers still-valid
// relation results via AdoptRelationResults. The caller is responsible
// for the only-exceptions-changed precondition — a mode edited anywhere
// else must go through NewContext.
func DeriveExceptionsOnly(prev *Context, mode *sdc.Mode, opt Options) *Context {
	if opt.MaxLaunchEdges <= 0 {
		opt.MaxLaunchEdges = 64
	}
	ctx := &Context{
		G:            prev.G,
		Mode:         mode,
		Opt:          opt,
		Clocks:       prev.Clocks,
		clockByName:  prev.clockByName,
		Consts:       prev.Consts,
		ArcDisabled:  prev.ArcDisabled,
		NodeDisabled: prev.NodeDisabled,
		ClockTags:    prev.ClockTags,
		exclusive:    prev.exclusive,
		interUnc:     prev.interUnc,
		ioByPort:     prev.ioByPort,
		forcedCase:   prev.forcedCase,
		borrowNode:   prev.borrowNode,
		borrowClock:  prev.borrowClock,
		delays:       prev.delays,
		slews:        prev.slews,
		// Pre-exception warnings carry over; exception compilation below
		// re-emits its own for the full (old + new) exception list, exactly
		// as a fresh NewContext would. Clip so later appends reallocate.
		Warnings: prev.Warnings[:prev.preExcWarnings:prev.preExcWarnings],
	}
	ctx.preExcWarnings = len(ctx.Warnings)
	ctx.exc = newExcSet(ctx)
	return ctx
}

// ClockByName returns the clock id for a name.
func (ctx *Context) ClockByName(name string) (ClockID, bool) {
	id, ok := ctx.clockByName[name]
	return id, ok
}

// Clock returns the clock info for an id.
func (ctx *Context) Clock(id ClockID) *ClockInfo { return ctx.Clocks[id] }

// Exclusive reports whether two clocks never time a path together.
func (ctx *Context) Exclusive(a, b ClockID) bool {
	if a == NoClock || b == NoClock {
		return false
	}
	return ctx.exclusive[a][b]
}

func (ctx *Context) warnf(format string, args ...any) {
	ctx.Warnings = append(ctx.Warnings, fmt.Sprintf(format, args...))
}

func (ctx *Context) resolveClocks() error {
	for _, def := range ctx.Mode.Clocks {
		id := ClockID(len(ctx.Clocks))
		info := &ClockInfo{ID: id, Def: def}
		for _, src := range def.Sources {
			node, ok := ctx.G.NodeByName(src.Name)
			if !ok {
				return fmt.Errorf("clock %s: source %q not in design", def.Name, src.Name)
			}
			info.SrcNodes = append(info.SrcNodes, node)
		}
		ctx.Clocks = append(ctx.Clocks, info)
		ctx.clockByName[def.Name] = id
	}
	// Latencies.
	for _, lat := range ctx.Mode.ClockLatencies {
		for _, name := range lat.Clocks {
			id, ok := ctx.clockByName[name]
			if !ok {
				return fmt.Errorf("set_clock_latency: unknown clock %q", name)
			}
			c := ctx.Clocks[id]
			if lat.Source {
				applyMinMax(&c.SrcLatMin, &c.SrcLatMax, lat.Value, lat.Level)
			} else {
				applyMinMax(&c.LatMin, &c.LatMax, lat.Value, lat.Level)
			}
		}
		// Pin latencies are accepted but folded into the clock's network
		// latency conservatively.
		for _, pin := range lat.Pins {
			ctx.warnf("set_clock_latency on pin %s treated as clock network latency", pin.Name)
		}
	}
	// Uncertainties.
	for _, unc := range ctx.Mode.ClockUncertainties {
		if unc.FromClock != "" {
			from, ok1 := ctx.clockByName[unc.FromClock]
			to, ok2 := ctx.clockByName[unc.ToClock]
			if !ok1 || !ok2 {
				return fmt.Errorf("set_clock_uncertainty: unknown clock in -from/-to")
			}
			key := [2]ClockID{from, to}
			v := ctx.interUnc[key]
			if unc.Setup {
				v[0] = math.Max(v[0], unc.Value)
			}
			if unc.Hold {
				v[1] = math.Max(v[1], unc.Value)
			}
			ctx.interUnc[key] = v
			continue
		}
		for _, name := range unc.Clocks {
			id, ok := ctx.clockByName[name]
			if !ok {
				return fmt.Errorf("set_clock_uncertainty: unknown clock %q", name)
			}
			c := ctx.Clocks[id]
			if unc.Setup {
				c.UncSetup = math.Max(c.UncSetup, unc.Value)
			}
			if unc.Hold {
				c.UncHold = math.Max(c.UncHold, unc.Value)
			}
		}
		for _, pin := range unc.Pins {
			ctx.warnf("set_clock_uncertainty on pin %s ignored; use clocks", pin.Name)
		}
	}
	// Propagated clocks.
	for _, pc := range ctx.Mode.PropagatedClocks {
		for _, name := range pc.Clocks {
			id, ok := ctx.clockByName[name]
			if !ok {
				return fmt.Errorf("set_propagated_clock: unknown clock %q", name)
			}
			ctx.Clocks[id].Propagated = true
		}
		if len(pc.Pins) > 0 {
			// Propagating from a pin applies to all clocks through it;
			// conservatively propagate every clock.
			for _, c := range ctx.Clocks {
				c.Propagated = true
			}
		}
	}
	return nil
}

func applyMinMax(minV, maxV *float64, v float64, level sdc.MinMax) {
	switch level {
	case sdc.MinOnly:
		*minV = v
	case sdc.MaxOnly:
		*maxV = v
	default:
		*minV, *maxV = v, v
	}
}

// applyEnvironment resolves case analysis, disable_timing and IO delays
// onto graph structures.
func (ctx *Context) applyEnvironment() error {
	n := ctx.G.NumNodes()
	ctx.Consts = make([]library.Logic, n)
	ctx.NodeDisabled = make([]bool, n)
	ctx.ArcDisabled = make([]bool, ctx.G.NumArcs())

	forced := make(map[graph.NodeID]library.Logic)
	for _, ca := range ctx.Mode.Cases {
		for _, obj := range ca.Objects {
			id, ok := ctx.G.NodeByName(obj.Name)
			if !ok {
				return fmt.Errorf("set_case_analysis: object %q not in design", obj.Name)
			}
			if prev, dup := forced[id]; dup && prev != ca.Value {
				return fmt.Errorf("set_case_analysis: conflicting values on %q", obj.Name)
			}
			forced[id] = ca.Value
		}
	}
	ctx.forcedCase = forced

	for _, dis := range ctx.Mode.Disables {
		for _, obj := range dis.Objects {
			switch obj.Kind {
			case sdc.PortObj, sdc.PinObj:
				id, ok := ctx.G.NodeByName(obj.Name)
				if !ok {
					return fmt.Errorf("set_disable_timing: object %q not in design", obj.Name)
				}
				ctx.NodeDisabled[id] = true
			case sdc.CellObj:
				inst := ctx.G.Design.InstByName(obj.Name)
				if inst == nil {
					return fmt.Errorf("set_disable_timing: no cell %q", obj.Name)
				}
				ctx.disableCellArcs(inst, dis.FromPin, dis.ToPin)
			}
		}
	}
	// Node disables imply disabling every arc touching the node.
	for i := int32(0); i < int32(ctx.G.NumArcs()); i++ {
		a := ctx.G.Arc(i)
		if ctx.NodeDisabled[a.From] || ctx.NodeDisabled[a.To] {
			ctx.ArcDisabled[i] = true
		}
	}

	for _, d := range ctx.Mode.IODelays {
		if d.Clock != "" {
			if _, ok := ctx.clockByName[d.Clock]; !ok {
				return fmt.Errorf("io delay: unknown clock %q", d.Clock)
			}
		}
		for _, p := range d.Ports {
			id, ok := ctx.G.NodeByName(p.Name)
			if !ok {
				return fmt.Errorf("io delay: object %q not in design", p.Name)
			}
			ctx.ioByPort[id] = append(ctx.ioByPort[id], d)
		}
	}
	return nil
}

// disableCellArcs disables the instance's arcs, optionally filtered by
// from/to pin names.
func (ctx *Context) disableCellArcs(inst *netlist.Instance, fromPin, toPin string) {
	for i := int32(0); i < int32(ctx.G.NumArcs()); i++ {
		a := ctx.G.Arc(i)
		if a.Kind == graph.NetArc {
			continue
		}
		fromNode := ctx.G.Node(a.From)
		if fromNode.Inst != inst {
			continue
		}
		if fromPin != "" && inst.Cell.Pins[fromNode.Pin].Name != fromPin {
			continue
		}
		toNode := ctx.G.Node(a.To)
		if toPin != "" && inst.Cell.Pins[toNode.Pin].Name != toPin {
			continue
		}
		ctx.ArcDisabled[i] = true
	}
}

// propagateConstants computes case-analysis constants over the graph.
func (ctx *Context) propagateConstants() {
	g := ctx.G
	for _, id := range g.Topo() {
		if v, ok := ctx.forcedCase[id]; ok {
			ctx.Consts[id] = v
			continue
		}
		node := g.Node(id)
		switch {
		case node.Inst != nil && node.Inst.Cell.Pins[node.Pin].Dir == library.Output:
			fn, ok := node.Inst.Cell.Functions[node.Inst.Cell.Pins[node.Pin].Name]
			if !ok {
				ctx.Consts[id] = library.LX // sequential output
				continue
			}
			inst := node.Inst
			ctx.Consts[id] = fn.Eval(func(pinName string) library.Logic {
				for i, p := range inst.Cell.Pins {
					if p.Name == pinName {
						if nid, ok := g.NodeByName(inst.PinName(i)); ok {
							return ctx.Consts[nid]
						}
					}
				}
				return library.LX
			})
		default:
			// Input pin or port: value comes over net arcs from the
			// driver.
			val := library.LX
			for _, ai := range g.InArcs(id) {
				a := g.Arc(ai)
				if a.Kind == graph.NetArc {
					val = ctx.Consts[a.From]
					break
				}
			}
			ctx.Consts[id] = val
		}
	}
}

// disableConstArcs removes arcs that cannot toggle: either endpoint is
// constant, or the cell function is insensitive to the input under the
// constants (e.g. the deselected leg of a mux whose select is cased, or
// an AND input gated by a constant 0 side input).
func (ctx *Context) disableConstArcs() {
	g := ctx.G
	for i := int32(0); i < int32(g.NumArcs()); i++ {
		a := g.Arc(i)
		if a.Kind == graph.SetupArc || a.Kind == graph.HoldArc {
			continue
		}
		if ctx.Consts[a.From].Known() || ctx.Consts[a.To].Known() {
			ctx.ArcDisabled[i] = true
			continue
		}
		if a.Kind != graph.CellArc {
			continue
		}
		toNode := g.Node(a.To)
		inst := toNode.Inst
		fn, ok := inst.Cell.Functions[inst.Cell.Pins[toNode.Pin].Name]
		if !ok {
			continue
		}
		fromPin := inst.Cell.Pins[g.Node(a.From).Pin].Name
		sensitive := fn.Sensitive(fromPin, func(pinName string) library.Logic {
			for pi, p := range inst.Cell.Pins {
				if p.Name == pinName {
					if nid, ok := g.NodeByName(inst.PinName(pi)); ok {
						return ctx.Consts[nid]
					}
				}
			}
			return library.LX
		})
		if !sensitive {
			ctx.ArcDisabled[i] = true
		}
	}
}

// buildExclusive fills the clock exclusivity matrix from set_clock_groups.
func (ctx *Context) buildExclusive() error {
	n := len(ctx.Clocks)
	ctx.exclusive = make([][]bool, n)
	for i := range ctx.exclusive {
		ctx.exclusive[i] = make([]bool, n)
	}
	for _, cg := range ctx.Mode.ClockGroups {
		groupOf := make(map[ClockID]int)
		for gi, names := range cg.Groups {
			for _, name := range names {
				id, ok := ctx.clockByName[name]
				if !ok {
					return fmt.Errorf("set_clock_groups: unknown clock %q", name)
				}
				groupOf[id] = gi
			}
		}
		for a, ga := range groupOf {
			for b, gb := range groupOf {
				if ga != gb {
					ctx.exclusive[a][b] = true
				}
			}
		}
	}
	return nil
}
