package sta

import (
	"math"

	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
)

// dataTag identifies one class of timing paths at a node: launch clock,
// launching clock edge, current data transition and the exception progress
// vector. Start is the startpoint node when start-tracking is enabled
// (pass-2 analysis) and -1 otherwise — classic tag-based STA merges
// startpoints whose exception behaviour is identical.
type dataTag struct {
	launch     ClockID
	launchEdge sdc.EdgeSel
	trans      sdc.EdgeSel
	start      graph.NodeID // -1 unless start tracking
	vec        int32
}

// arrival carries the min/max path arrival for one tag.
type arrival struct{ min, max float64 }

// tagEntry pairs a tag with its arrival bounds.
type tagEntry struct {
	tag dataTag
	arr arrival
}

// tagMap is the tag set of one node: a slice (cheap to allocate and
// iterate) with a hash index built lazily once the set grows past the
// point where linear scans lose (start-tracked pass-2 propagations can
// hold hundreds of tags per node).
type tagMap = tagSet

type tagSet struct {
	entries []tagEntry
	index   map[dataTag]int32
}

const tagIndexThreshold = 16

// reserve pre-sizes the entry slice for an expected entry count (an
// upper bound: duplicate tags collapse). The hash index still builds
// lazily at the threshold — pre-creating it per node costs more in map
// allocation than the linear pre-index scans it would save.
func (m *tagSet) reserve(n int) {
	if n == 0 || m.entries != nil {
		return
	}
	m.entries = make([]tagEntry, 0, n)
}

func (m *tagSet) add(t dataTag, a arrival) {
	if m.index == nil {
		for i := range m.entries {
			if m.entries[i].tag == t {
				m.entries[i].arr.merge(a)
				return
			}
		}
		m.entries = append(m.entries, tagEntry{tag: t, arr: a})
		if len(m.entries) > tagIndexThreshold {
			m.index = make(map[dataTag]int32, 2*len(m.entries))
			for i := range m.entries {
				m.index[m.entries[i].tag] = int32(i)
			}
		}
		return
	}
	if i, ok := m.index[t]; ok {
		m.entries[i].arr.merge(a)
		return
	}
	m.index[t] = int32(len(m.entries))
	m.entries = append(m.entries, tagEntry{tag: t, arr: a})
}

// merge widens the arrival window.
func (a *arrival) merge(b arrival) {
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// propOpts configures a data propagation run.
type propOpts struct {
	// withStart tags paths with their startpoint.
	withStart bool
	// nodeFilter, when non-nil, restricts propagation to marked nodes.
	nodeFilter []bool
	// seedFilter, when non-nil, restricts which startpoints seed tags.
	seedFilter func(graph.NodeID) bool
}

// tags returns the cached full-design data propagation. When the shared
// start-tracked propagation has already been forced, the plain tags
// derive from it by collapsing the start field instead of re-propagating:
// tag advancement never reads the startpoint, so collapsing a node's
// start-tracked entries (first-occurrence order, arrival windows merged)
// yields exactly the plain propagation's entries in its insertion order —
// the same induction as the cone/full equivalence in relcache.go, with
// the start dimension in place of the cone restriction.
func (ctx *Context) tags() []tagMap {
	ctx.tagsOnce.Do(func() {
		if !ctx.Opt.DisableRelationMemo && ctx.rel.startTagsReady.Load() {
			ctx.dataTags = collapseStartTags(ctx.rel.startTags)
		} else {
			ctx.dataTags = ctx.propagate(propOpts{})
		}
		ctx.rel.tagsReady.Store(true)
	})
	return ctx.dataTags
}

// collapseStartTags folds a start-tracked propagation into the plain
// (start-free) one: per node, drop the start field, dedup to first
// occurrence, merge arrival windows of collapsed duplicates.
func collapseStartTags(src []tagMap) []tagMap {
	out := make([]tagMap, len(src))
	for id := range src {
		entries := src[id].entries
		if len(entries) == 0 {
			continue
		}
		var m tagSet
		m.reserve(len(entries))
		for _, te := range entries {
			t := te.tag
			t.start = -1
			m.add(t, te.arr)
		}
		out[id] = m
	}
	return out
}

// getTagArray borrows a zeroed node-indexed tag array from the context
// pool; putTagArray returns it after the caller cleared the touched
// entries. Pooling matters: pass-2 runs one restricted propagation per
// ambiguous endpoint, and a fresh O(nodes) array per call is pure GC
// churn.
func (ctx *Context) getTagArray() []tagMap {
	if v := ctx.tagArrayPool.Get(); v != nil {
		return v.([]tagMap)
	}
	return make([]tagMap, ctx.G.NumNodes())
}

func (ctx *Context) putTagArray(out []tagMap, touched []graph.NodeID) {
	for _, id := range touched {
		out[id] = tagMap{}
	}
	ctx.tagArrayPool.Put(out)
}

// propagate performs forward data propagation over the timing graph.
//
// Paths are launched at register clock pins (one tag per clock present at
// the pin, via the clk→Q launch arc) and at input ports carrying
// set_input_delay (one tag per reference clock). Tags move over net and
// combinational arcs, transitions follow arc unateness, and exception
// progress vectors advance at every traversed node.
func (ctx *Context) propagate(o propOpts) []tagMap {
	out := make([]tagMap, ctx.G.NumNodes())
	ctx.propagateInto(o, out)
	return out
}

// propagateInto is propagate writing into a caller-provided (zeroed)
// array; it returns the node ids it stored tags at, so the caller can
// clear and recycle the array.
func (ctx *Context) propagateInto(o propOpts, out []tagMap) (touched []graph.NodeID) {
	g := ctx.G
	allow := func(id graph.NodeID) bool {
		return o.nodeFilter == nil || o.nodeFilter[id]
	}
	startOf := func(s graph.NodeID) graph.NodeID {
		if o.withStart {
			return s
		}
		return -1
	}

	for _, id := range g.Topo() {
		if !allow(id) || ctx.NodeDisabled[id] || ctx.Consts[id].Known() {
			continue
		}
		var m tagMap
		node := g.Node(id)

		// Upper-bound the node's tag count from its in-arc sources so the
		// set allocates once (and indexes up front past the threshold).
		est := 0
		for _, ai := range g.InArcs(id) {
			if ctx.ArcDisabled[ai] {
				continue
			}
			a := g.Arc(ai)
			if !allow(a.From) {
				continue
			}
			if a.Kind == graph.LaunchArc {
				est += 2 * len(ctx.ClockTags[a.From])
				continue
			}
			switch a.Unate() {
			case library.PositiveUnate, library.NegativeUnate:
				est += len(out[a.From].entries)
			default:
				est += 2 * len(out[a.From].entries)
			}
		}
		m.reserve(est)

		// Arc-driven tags.
		for _, ai := range g.InArcs(id) {
			if ctx.ArcDisabled[ai] {
				continue
			}
			a := g.Arc(ai)
			if !allow(a.From) {
				continue
			}
			if a.Kind == graph.LaunchArc {
				// Launch: clock tags at the register clock pin become
				// data tags at the output.
				cpNode := a.From
				if o.seedFilter != nil && !o.seedFilter(cpNode) {
					continue
				}
				for _, ct := range ctx.ClockTags[cpNode] {
					launchEdge := sdc.EdgeRise
					if ct.Inv {
						launchEdge = sdc.EdgeFall
					}
					base := arrival{0, 0}
					if ctx.Clocks[ct.Clock].Propagated {
						base = arrival{ct.ArrMin, ct.ArrMax}
					}
					for _, trans := range []sdc.EdgeSel{sdc.EdgeRise, sdc.EdgeFall} {
						vec := ctx.exc.seedVec(cpNode, ct.Clock, launchEdge, launchEdge)
						vec = ctx.exc.advance(vec, id, trans)
						d := &ctx.delays[ai]
						m.add(dataTag{
							launch:     ct.Clock,
							launchEdge: launchEdge,
							trans:      trans,
							start:      startOf(cpNode),
							vec:        vec,
						}, arrival{base.min + d.sel(trans, false), base.max + d.sel(trans, true)})
					}
				}
				continue
			}
			for _, te := range out[a.From].entries {
				switch a.Unate() {
				case library.PositiveUnate:
					ctx.emit(&m, te.tag, te.tag.trans, id, ai, te.arr)
				case library.NegativeUnate:
					ctx.emit(&m, te.tag, flip(te.tag.trans), id, ai, te.arr)
				default:
					ctx.emit(&m, te.tag, sdc.EdgeRise, id, ai, te.arr)
					ctx.emit(&m, te.tag, sdc.EdgeFall, id, ai, te.arr)
				}
			}
		}

		// Input-port seeds.
		if node.Port != nil && node.Port.Dir == netlist.In {
			if o.seedFilter == nil || o.seedFilter(id) {
				ctx.seedInputPort(&m, id, startOf(id))
			}
		}

		if len(m.entries) > 0 {
			out[id] = m
			touched = append(touched, id)
		}
	}
	return touched
}

// emit adds a tag advanced through node id with the given transition,
// applying the arc's corner delays for that transition.
func (ctx *Context) emit(m *tagMap, t dataTag, trans sdc.EdgeSel, id graph.NodeID, ai int32, base arrival) {
	d := &ctx.delays[ai]
	nt := t
	nt.trans = trans
	nt.vec = ctx.exc.advance(t.vec, id, trans)
	m.add(nt, arrival{base.min + d.sel(trans, false), base.max + d.sel(trans, true)})
}

func flip(e sdc.EdgeSel) sdc.EdgeSel {
	switch e {
	case sdc.EdgeRise:
		return sdc.EdgeFall
	case sdc.EdgeFall:
		return sdc.EdgeRise
	default:
		return sdc.EdgeBoth
	}
}

// seedInputPort seeds tags for a port's input delays. Delays on the same
// reference clock and edge combine (min of mins, max of maxes).
func (ctx *Context) seedInputPort(m *tagMap, id graph.NodeID, start graph.NodeID) {
	type key struct {
		clock ClockID
		edge  sdc.EdgeSel
	}
	acc := map[key]arrival{}
	for _, d := range ctx.inputDelays(id) {
		cid := NoClock
		if d.Clock != "" {
			if c, ok := ctx.clockByName[d.Clock]; ok {
				cid = c
			}
		}
		edge := sdc.EdgeRise
		if d.ClockFall {
			edge = sdc.EdgeFall
		}
		k := key{cid, edge}
		a, have := acc[k]
		switch d.Level {
		case sdc.MinOnly:
			if !have {
				a = arrival{d.Value, math.Inf(-1)}
			} else if d.Value < a.min {
				a.min = d.Value
			}
		case sdc.MaxOnly:
			if !have {
				a = arrival{math.Inf(1), d.Value}
			} else if d.Value > a.max {
				a.max = d.Value
			}
		default:
			if !have {
				a = arrival{d.Value, d.Value}
			} else {
				if d.Value < a.min {
					a.min = d.Value
				}
				if d.Value > a.max {
					a.max = d.Value
				}
			}
		}
		acc[k] = a
	}
	for k, a := range acc {
		if math.IsInf(a.min, 1) {
			a.min = a.max
		}
		if math.IsInf(a.max, -1) {
			a.max = a.min
		}
		for _, trans := range []sdc.EdgeSel{sdc.EdgeRise, sdc.EdgeFall} {
			vec := ctx.exc.seedVec(id, k.clock, k.edge, trans)
			m.add(dataTag{
				launch:     k.clock,
				launchEdge: k.edge,
				trans:      trans,
				start:      start,
				vec:        vec,
			}, a)
		}
	}
}
