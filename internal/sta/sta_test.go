package sta

import (
	"context"
	"math"
	"testing"

	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/relation"
	"modemerge/internal/sdc"
)

// ctxFor builds an analysis context for the paper circuit with the given
// SDC source.
func ctxFor(t *testing.T, src string) *Context {
	t.Helper()
	d := gen.PaperCircuit()
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	mode, _, err := sdc.Parse("test", src, d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(g, mode, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func nodeID(t *testing.T, ctx *Context, name string) graph.NodeID {
	t.Helper()
	id, ok := ctx.G.NodeByName(name)
	if !ok {
		t.Fatalf("no node %q", name)
	}
	return id
}

func clockNamesAt(ctx *Context, t *testing.T, node string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, n := range ctx.ClockNamesAt(nodeID(t, ctx, node)) {
		out[n] = true
	}
	return out
}

func TestConstantPropagation(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_case_analysis 0 [get_ports sel1]
set_case_analysis 1 [get_ports sel2]
`)
	// xor1: 0^1 = 1 → mux select = 1.
	if v, _ := ctx.ConstValueAt("xor1/Z"); v != library.L1 {
		t.Errorf("xor1/Z = %v, want 1", v)
	}
	if v, _ := ctx.ConstValueAt("mux1/S"); v != library.L1 {
		t.Errorf("mux1/S = %v, want 1", v)
	}
	// mux output: I1 = clk2 = X → not constant.
	if v, known := ctx.ConstValueAt("mux1/Z"); known {
		t.Errorf("mux1/Z = %v, want unknown", v)
	}
	// Unrelated data stays unknown.
	if _, known := ctx.ConstValueAt("rA/Q"); known {
		t.Error("rA/Q must be unknown")
	}
}

func TestConstantThroughGates(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_case_analysis 0 rB/Q
`)
	// and1: n1 & 0 = 0.
	if v, _ := ctx.ConstValueAt("and1/Z"); v != library.L0 {
		t.Errorf("and1/Z = %v, want 0", v)
	}
	// inv2: !0 = 1.
	if v, _ := ctx.ConstValueAt("inv2/Z"); v != library.L1 {
		t.Errorf("inv2/Z = %v, want 1", v)
	}
}

func TestClockPropagationNoCases(t *testing.T) {
	// Constraint Set 1 situation: one clock on clk1 reaches all six
	// registers (rZ through the mux, whose select toggles).
	ctx := ctxFor(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	for _, cp := range []string{"rA/CP", "rB/CP", "rC/CP", "rX/CP", "rY/CP", "rZ/CP"} {
		if !clockNamesAt(ctx, t, cp)["clkA"] {
			t.Errorf("clkA missing at %s", cp)
		}
	}
	// The clock does not leak into the data network.
	if len(clockNamesAt(ctx, t, "inv1/Z")) != 0 {
		t.Error("clock leaked into data network at inv1/Z")
	}
}

func TestClockBlockedByCaseOnMuxSelect(t *testing.T) {
	// Set 3: sel cases make the mux select constant 1 → clkA (on I0)
	// cannot pass; clkB (on I1 via clk2) can.
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 20 [get_ports clk2]
set_case_analysis 0 [get_ports sel1]
set_case_analysis 1 [get_ports sel2]
`)
	at := clockNamesAt(ctx, t, "rZ/CP")
	if at["clkA"] {
		t.Error("clkA must be blocked at the mux (select=1)")
	}
	if !at["clkB"] {
		t.Error("clkB must reach rZ/CP")
	}
	// Other registers still see clkA.
	if !clockNamesAt(ctx, t, "rA/CP")["clkA"] {
		t.Error("clkA missing at rA/CP")
	}
}

func TestStopPropagation(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_clock_sense -stop_propagation -clock [get_clocks clkA] [get_pins mux1/Z]
`)
	if clockNamesAt(ctx, t, "rZ/CP")["clkA"] {
		t.Error("clkA must not pass the stop_propagation point")
	}
	if clockNamesAt(ctx, t, "mux1/Z")["clkA"] {
		t.Error("clkA must be absent at the blocking node itself")
	}
	if !clockNamesAt(ctx, t, "rA/CP")["clkA"] {
		t.Error("clkA must still reach rA/CP")
	}
}

func TestGeneratedClock(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_generated_clock -name gdiv -source [get_ports clk1] -divide_by 2 [get_pins mux1/Z]
`)
	at := clockNamesAt(ctx, t, "rZ/CP")
	if !at["gdiv"] {
		t.Error("generated clock must reach rZ/CP")
	}
	if at["clkA"] {
		t.Error("master must be replaced by the generated clock downstream")
	}
	id, _ := ctx.ClockByName("gdiv")
	if got := ctx.Clock(id).Period(); got != 20 {
		t.Errorf("gdiv period = %g, want 20", got)
	}
}

func TestDisableTimingBlocksClock(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_disable_timing [get_pins mux1/I0]
`)
	if clockNamesAt(ctx, t, "rZ/CP")["clkA"] {
		t.Error("clkA must be blocked by disable_timing on mux1/I0")
	}
}

// Table 1 of the paper: Constraint Set 1 relations at the endpoints.
func TestTable1Relations(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_multicycle_path 2 -through [get_pins inv1/Z]
set_false_path -through [get_pins and1/Z]
`)
	rels := ctx.EndpointRelations(context.Background())
	get := func(end string) relation.Set {
		return rels[RelKey{Start: "*", End: end, Launch: "clkA", Capture: "clkA", Check: relation.Setup}]
	}
	if s := get("rX/D"); !s.Equal(relation.NewSet(relation.MCP(2))) {
		t.Errorf("rX/D = %v, want MCP(2)", s)
	}
	if s := get("rY/D"); !s.Equal(relation.NewSet(relation.StateFalse)) {
		t.Errorf("rY/D = %v, want FP (false path overrides MCP)", s)
	}
	if s := get("rZ/D"); !s.Equal(relation.NewSet(relation.StateValid)) {
		t.Errorf("rZ/D = %v, want V", s)
	}
}

// Constraint Set 6 pass 1 (Table 2): per-endpoint comparison inputs.
func TestSet6ModeARelations(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -to rX/D
set_false_path -to rY/D
set_false_path -through inv3/Z
`)
	rels := ctx.EndpointRelations(context.Background())
	get := func(end string) relation.Set {
		return rels[RelKey{Start: "*", End: end, Launch: "clkA", Capture: "clkA", Check: relation.Setup}]
	}
	if s := get("rX/D"); !s.Equal(relation.NewSet(relation.StateFalse)) {
		t.Errorf("mode A rX/D = %v, want FP", s)
	}
	if s := get("rY/D"); !s.Equal(relation.NewSet(relation.StateFalse)) {
		t.Errorf("mode A rY/D = %v, want FP", s)
	}
	// rZ/D: the inv3 path is false, the and2/A path valid → {FP, V}.
	if s := get("rZ/D"); !s.Equal(relation.NewSet(relation.StateFalse, relation.StateValid)) {
		t.Errorf("mode A rZ/D = %v, want FP+V", s)
	}
}

func TestSet6ModeBRelations(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -from rA/CP
set_false_path -to rZ/D
`)
	rels := ctx.EndpointRelations(context.Background())
	get := func(end string) relation.Set {
		return rels[RelKey{Start: "*", End: end, Launch: "clkA", Capture: "clkA", Check: relation.Setup}]
	}
	if s := get("rX/D"); !s.Equal(relation.NewSet(relation.StateFalse)) {
		t.Errorf("mode B rX/D = %v, want FP (only rA feeds rX)", s)
	}
	if s := get("rY/D"); !s.Equal(relation.NewSet(relation.StateFalse, relation.StateValid)) {
		t.Errorf("mode B rY/D = %v, want FP+V (rA false, rB valid)", s)
	}
	if s := get("rZ/D"); !s.Equal(relation.NewSet(relation.StateFalse)) {
		t.Errorf("mode B rZ/D = %v, want FP", s)
	}
}

// Pass-2 granularity (Table 3): startpoint-resolved relations at rY/D.
func TestStartEndRelations(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -from rA/CP
set_false_path -to rZ/D
`)
	end := nodeID(t, ctx, "rY/D")
	rels := ctx.StartEndRelations(end)
	get := func(start string) relation.Set {
		return rels[RelKey{Start: start, End: "rY/D", Launch: "clkA", Capture: "clkA", Check: relation.Setup}]
	}
	if s := get("rA/CP"); !s.Equal(relation.NewSet(relation.StateFalse)) {
		t.Errorf("rA/CP→rY/D = %v, want FP", s)
	}
	if s := get("rB/CP"); !s.Equal(relation.NewSet(relation.StateValid)) {
		t.Errorf("rB/CP→rY/D = %v, want V", s)
	}
}

// Pass-3 granularity (Table 4): through-point relations between rC/CP and
// rZ/D under mode A of Constraint Set 6.
func TestThroughRelations(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -through inv3/Z
`)
	start := nodeID(t, ctx, "rC/CP")
	end := nodeID(t, ctx, "rZ/D")
	rels := ctx.ThroughRelations(start, end)
	byName := map[string]ThroughRel{}
	for _, r := range rels {
		byName[r.Name] = r
	}
	key := RelKey{Start: "rC/CP", End: "rZ/D", Launch: "clkA", Capture: "clkA", Check: relation.Setup}
	// Paths through and2/A (direct leg): valid.
	if r, ok := byName["and2/A"]; !ok {
		t.Fatal("and2/A missing from through relations")
	} else if s := r.States[key]; !s.Equal(relation.NewSet(relation.StateValid)) {
		t.Errorf("through and2/A = %v, want V", s)
	}
	// Paths through inv3/A: all false.
	if r, ok := byName["inv3/A"]; !ok {
		t.Fatal("inv3/A missing from through relations")
	} else if s := r.States[key]; !s.Equal(relation.NewSet(relation.StateFalse)) {
		t.Errorf("through inv3/A = %v, want FP", s)
	}
	// Reconvergence point and2/Z sees both path classes → {FP, V}.
	if r, ok := byName["and2/Z"]; !ok {
		t.Fatal("and2/Z missing")
	} else if s := r.States[key]; s.Len() != 2 {
		t.Errorf("through and2/Z = %v, want two states", s)
	}
}

func TestSlackBasics(t *testing.T) {
	ctx := ctxFor(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	results := ctx.AnalyzeEndpoints(context.Background())
	byName := map[string]EndpointResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	rx := byName["rX/D"]
	if !rx.HasSetup {
		t.Fatal("rX/D has no setup check")
	}
	// Period 10, path delay well under 1 → slack close to 10.
	if rx.SetupSlack < 8 || rx.SetupSlack > 10 {
		t.Errorf("rX/D setup slack = %g, want ≈9.x", rx.SetupSlack)
	}
	if rx.SetupLaunch != "clkA" || rx.SetupCapture != "clkA" || rx.CapturePeriod != 10 {
		t.Errorf("rX/D clocks = %s→%s period %g", rx.SetupLaunch, rx.SetupCapture, rx.CapturePeriod)
	}
	if !rx.HasHold {
		t.Error("rX/D has no hold check")
	}
	// Hold slack = min path delay − hold margin > 0 here.
	if rx.HoldSlack <= 0 {
		t.Errorf("rX/D hold slack = %g, want positive", rx.HoldSlack)
	}
}

func TestSlackScalesWithPeriod(t *testing.T) {
	slackAt := func(period string) float64 {
		ctx := ctxFor(t, `create_clock -name clkA -period `+period+` [get_ports clk1]`)
		for _, r := range ctx.AnalyzeEndpoints(context.Background()) {
			if r.Name == "rX/D" {
				return r.SetupSlack
			}
		}
		t.Fatal("rX/D missing")
		return 0
	}
	s10, s2 := slackAt("10"), slackAt("2")
	if math.Abs((s10-s2)-8) > 1e-6 {
		t.Errorf("slack difference %g, want 8 (period delta)", s10-s2)
	}
}

func TestMulticycleRelaxesSetup(t *testing.T) {
	base := ctxFor(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	mcp := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_multicycle_path 2 -setup -to [get_pins rX/D]
`)
	get := func(ctx *Context) float64 {
		for _, r := range ctx.AnalyzeEndpoints(context.Background()) {
			if r.Name == "rX/D" {
				return r.SetupSlack
			}
		}
		return math.NaN()
	}
	if diff := get(mcp) - get(base); math.Abs(diff-10) > 1e-6 {
		t.Errorf("MCP(2) changed slack by %g, want +10 (one period)", diff)
	}
}

func TestFalsePathRemovesCheck(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -to [get_pins rX/D]
`)
	for _, r := range ctx.AnalyzeEndpoints(context.Background()) {
		if r.Name == "rX/D" && (r.HasSetup || r.HasHold) {
			t.Errorf("rX/D still checked under false path: %+v", r)
		}
	}
}

func TestMaxDelayOverride(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_max_delay 0.1 -to [get_pins rX/D]
`)
	for _, r := range ctx.AnalyzeEndpoints(context.Background()) {
		if r.Name == "rX/D" {
			if !r.HasSetup {
				t.Fatal("no setup check")
			}
			// Path delay > 0.1 → negative slack.
			if r.SetupSlack >= 0 {
				t.Errorf("max_delay 0.1 slack = %g, want negative", r.SetupSlack)
			}
		}
	}
}

func TestClockUncertaintyTightensSetup(t *testing.T) {
	base := ctxFor(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	unc := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_clock_uncertainty -setup 0.5 [get_clocks clkA]
`)
	get := func(ctx *Context) float64 {
		for _, r := range ctx.AnalyzeEndpoints(context.Background()) {
			if r.Name == "rX/D" {
				return r.SetupSlack
			}
		}
		return math.NaN()
	}
	if diff := get(base) - get(unc); math.Abs(diff-0.5) > 1e-9 {
		t.Errorf("uncertainty changed slack by %g, want 0.5", diff)
	}
}

func TestIODelayPaths(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_input_delay 2.0 -clock clkA [get_ports in1]
set_output_delay 3.0 -clock clkA [get_ports out1]
`)
	results := ctx.AnalyzeEndpoints(context.Background())
	var rAD, out1 EndpointResult
	for _, r := range results {
		switch r.Name {
		case "rA/D":
			rAD = r
		case "out1":
			out1 = r
		}
	}
	if !rAD.HasSetup {
		t.Fatal("input-delay path to rA/D not checked")
	}
	// slack ≈ 10 − 2 − small delays.
	if rAD.SetupSlack < 7 || rAD.SetupSlack > 8.2 {
		t.Errorf("rA/D setup slack = %g, want ≈7.9", rAD.SetupSlack)
	}
	if !out1.HasSetup {
		t.Fatal("output port not checked")
	}
	if out1.SetupSlack < 5 || out1.SetupSlack > 7.5 {
		t.Errorf("out1 setup slack = %g, want ≈6.x (10−3−delays)", out1.SetupSlack)
	}
}

func TestExclusiveClockGroups(t *testing.T) {
	// Both clocks on clk1 (Set 5 style): without groups, cross-clock
	// paths are timed; with physically_exclusive they are not.
	base := ctxFor(t, `
create_clock -name ClkA -period 2 [get_ports clk1]
create_clock -name ClkB -period 1 -add [get_ports clk1]
`)
	excl := ctxFor(t, `
create_clock -name ClkA -period 2 [get_ports clk1]
create_clock -name ClkB -period 1 -add [get_ports clk1]
set_clock_groups -physically_exclusive -group [get_clocks ClkA] -group [get_clocks ClkB]
`)
	worstBase, _, _ := Summarize(base.AnalyzeEndpoints(context.Background()))
	worstExcl, _, _ := Summarize(excl.AnalyzeEndpoints(context.Background()))
	// Cross-clock ClkA→ClkB with period 1 vs 2 gives a tighter relation
	// than same-clock; exclusivity must relax the worst slack.
	if worstExcl < worstBase {
		t.Errorf("exclusive groups made things worse: %g vs %g", worstExcl, worstBase)
	}
	// Relations must show FP for cross pairs under exclusivity.
	rels := excl.EndpointRelations(context.Background())
	s := rels[RelKey{Start: "*", End: "rX/D", Launch: "ClkA", Capture: "ClkB", Check: relation.Setup}]
	if !s.Equal(relation.NewSet(relation.StateFalse)) {
		t.Errorf("exclusive cross relation = %v, want FP", s)
	}
}

func TestDifferentPeriodsSeparation(t *testing.T) {
	ctx := ctxFor(t, `create_clock -name c -period 10 [get_ports clk1]`)
	c10 := &ClockInfo{Def: &sdc.Clock{Name: "a", Period: 10, Waveform: []float64{0, 5}}}
	c4 := &ClockInfo{Def: &sdc.Clock{Name: "b", Period: 4, Waveform: []float64{0, 2}}}
	// Same clock: separation = period.
	sep, ok := ctx.separation(c10, 0, c10, 0)
	if !ok || math.Abs(sep-10) > 1e-9 {
		t.Errorf("same-clock sep = %g, want 10", sep)
	}
	// 10 vs 4: edges at 0,4,8,12,16,20 vs launches 0,10. Launch 10 →
	// next capture 12: sep 2.
	sep, ok = ctx.separation(c10, 0, c4, 0)
	if !ok || math.Abs(sep-2) > 1e-9 {
		t.Errorf("10→4 sep = %g, want 2", sep)
	}
	// 4 → 10: launches 0,4,8,12,16; captures 0,10,20. 8→10: sep 2.
	sep, ok = ctx.separation(c4, 0, c10, 0)
	if !ok || math.Abs(sep-2) > 1e-9 {
		t.Errorf("4→10 sep = %g, want 2", sep)
	}
}

func TestExtraClocksRefinement(t *testing.T) {
	// Merged-style context with both clocks and no cases; individual
	// modes never let clkA through the mux (select always 1).
	merged := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 20 [get_ports clk2]
`)
	// Justification: clkA allowed everywhere except past the mux.
	muxZ := nodeID(t, merged, "mux1/Z")
	rzCP := nodeID(t, merged, "rZ/CP")
	blockedAt := map[graph.NodeID]bool{muxZ: true, rzCP: true}
	frontiers := merged.ExtraClocks(func(n graph.NodeID, clock string) bool {
		if clock != "clkA" {
			return true
		}
		return !blockedAt[n]
	})
	if len(frontiers) != 1 || frontiers[0].Clock != "clkA" {
		t.Fatalf("frontiers = %+v", frontiers)
	}
	// The frontier must be exactly the first blocked node (mux1/Z), not
	// downstream nodes.
	if len(frontiers[0].Nodes) != 1 || frontiers[0].Nodes[0] != muxZ {
		names := []string{}
		for _, n := range frontiers[0].Nodes {
			names = append(names, merged.G.Node(n).Name)
		}
		t.Errorf("frontier nodes = %v, want [mux1/Z]", names)
	}
}

func TestExtraLaunchFlowsRefinement(t *testing.T) {
	// Constraint Set 5 situation: merged has ClkA and ClkB on clk1, no
	// case on rB/Q. Individual justification: ClkB-launched data never
	// appears at rB/Q, and never crosses into and1/Z (the AND output is
	// constant in the only mode that has ClkB).
	merged := ctxFor(t, `
create_clock -name ClkA -period 2 [get_ports clk1]
create_clock -name ClkB -period 1 -add [get_ports clk1]
`)
	rbQ := nodeID(t, merged, "rB/Q")
	and1Z := nodeID(t, merged, "and1/Z")
	dead := map[graph.NodeID]bool{rbQ: true, and1Z: true}
	seedJustify := func(n graph.NodeID, clock string) bool {
		if clock != "ClkB" {
			return true
		}
		return !dead[n]
	}
	arcJustify := func(ai int32, clock string) bool {
		if clock != "ClkB" {
			return true
		}
		return !dead[merged.G.Arc(ai).To]
	}
	frontiers := merged.ExtraLaunchFlows(seedJustify, arcJustify)
	if len(frontiers) != 1 || frontiers[0].Clock != "ClkB" {
		t.Fatalf("frontiers = %+v", frontiers)
	}
	f := frontiers[0]
	names := map[string]bool{}
	for _, n := range f.Nodes {
		names[merged.G.Node(n).Name] = true
	}
	// Frontier: rB/Q (unjustified seed) and and1/Z (every attempted
	// in-flow blocked) — the paper's CSTR6 pin list.
	if !names["rB/Q"] || !names["and1/Z"] {
		t.Errorf("frontier nodes = %v (arcs %v), want rB/Q and and1/Z", names, f.Arcs)
	}
	if names["inv2/Z"] || names["rY/D"] {
		t.Errorf("frontier leaked downstream: %v", names)
	}
	if len(f.Arcs) != 0 {
		t.Errorf("expected pure node blocks, got arcs %v", f.Arcs)
	}
}

func TestExtraLaunchFlowsArcGranularity(t *testing.T) {
	// A mux-like situation: the flow into one leg of and1 is dead (the
	// arc and1/B→and1/Z), but and1/Z itself legitimately carries the
	// clock via and1/A. The frontier must be the individual hop.
	merged := ctxFor(t, `
create_clock -name ClkA -period 2 [get_ports clk1]
create_clock -name ClkB -period 1 -add [get_ports clk1]
`)
	and1B := nodeID(t, merged, "and1/B")
	and1Z := nodeID(t, merged, "and1/Z")
	seedJustify := func(graph.NodeID, string) bool { return true }
	arcJustify := func(ai int32, clock string) bool {
		if clock != "ClkB" {
			return true
		}
		a := merged.G.Arc(ai)
		return !(a.From == and1B && a.To == and1Z)
	}
	frontiers := merged.ExtraLaunchFlows(seedJustify, arcJustify)
	if len(frontiers) != 1 {
		t.Fatalf("frontiers = %+v", frontiers)
	}
	f := frontiers[0]
	// and1/Z still receives ClkB via and1/A, and and1/B has a justified
	// escape? No: and1/B's only out-arc is the blocked one, so the
	// from-node collapse applies.
	names := map[string]bool{}
	for _, n := range f.Nodes {
		names[merged.G.Node(n).Name] = true
	}
	if !names["and1/B"] || len(f.Arcs) != 0 {
		t.Errorf("expected node block at and1/B; nodes=%v arcs=%v", names, f.Arcs)
	}
}

func TestAnalysisParallelMatchesSerial(t *testing.T) {
	src := `
create_clock -name clkA -period 10 [get_ports clk1]
set_input_delay 1 -clock clkA [get_ports in1]
set_output_delay 1 -clock clkA [get_ports out1]
set_multicycle_path 2 -through [get_pins inv1/Z]
`
	serial := ctxFor(t, src)
	serial.Opt.Workers = 1
	parallel := ctxFor(t, src)
	parallel.Opt.Workers = 8
	rs, rp := serial.AnalyzeEndpoints(context.Background()), parallel.AnalyzeEndpoints(context.Background())
	if len(rs) != len(rp) {
		t.Fatalf("result counts differ: %d vs %d", len(rs), len(rp))
	}
	for i := range rs {
		if rs[i] != rp[i] {
			t.Errorf("endpoint %s differs: %+v vs %+v", rs[i].Name, rs[i], rp[i])
		}
	}
}

func TestWarningsForUnknownExceptionObjects(t *testing.T) {
	// A -from clock that does not exist in this mode must warn, not
	// fail — exactly what uniquified merged exceptions rely on.
	d := gen.PaperCircuit()
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	mode, _, err := sdc.Parse("m", `create_clock -name clkA -period 10 [get_ports clk1]`, d)
	if err != nil {
		t.Fatal(err)
	}
	// Inject an exception referencing a foreign clock.
	mode.Exceptions = append(mode.Exceptions, &sdc.Exception{
		Kind: sdc.FalsePath,
		From: &sdc.PointList{Clocks: []string{"ghost"}},
		To:   &sdc.PointList{},
	})
	ctx, err := NewContext(g, mode, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Warnings) == 0 {
		t.Error("expected a warning for the unknown -from clock")
	}
	// The exception must be inert: rX/D still valid.
	rels := ctx.EndpointRelations(context.Background())
	s := rels[RelKey{Start: "*", End: "rX/D", Launch: "clkA", Capture: "clkA", Check: relation.Setup}]
	if !s.Equal(relation.NewSet(relation.StateValid)) {
		t.Errorf("rX/D = %v, want V", s)
	}
}

func TestConstPortsNeverTiming(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_case_analysis 0 [get_ports sel1]
`)
	ports := ctx.ConstPortsNeverTiming()
	if len(ports) != 1 || ports[0] != "sel1" {
		t.Errorf("const ports = %v, want [sel1]", ports)
	}
}
