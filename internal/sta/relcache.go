package sta

import (
	"slices"
	"sync"
	"sync/atomic"

	"modemerge/internal/graph"
	"modemerge/internal/relation"
)

// relCache memoizes the relation-query results of one context so the
// 3-pass refinement (and the equivalence checker) never re-derives the
// same propagation twice. Everything in here is derived state: it is
// computed lazily, idempotently, and only from the context's immutable
// analysis results, so concurrent queries may race benignly (both sides
// compute the same value; one store wins).
//
// Three layers:
//
//   - startTags is one full-design start-tracked data propagation shared
//     by every pass-2/3 query. The per-endpoint cone-restricted
//     propagation it replaces visits only bwd(end) — but any propagation
//     path from a seed to a cone node provably stays inside the cone
//     (an arc x→n with n ∈ bwd(end) puts x ∈ bwd(end) too), so the full
//     propagation's tag entries at end, filtered by startpoint, are the
//     restricted run's entries in the same first-insertion order.
//   - pass1/startEnd/through memoize finished per-endpoint (per-pair)
//     relation results, keyed by node id. Callers must treat returned
//     maps and slices as immutable.
//   - profile memoizes per-(start,end) live-path structure for the
//     pass-3 reconvergence prune (see PairProfile).
type relCache struct {
	slotsOnce sync.Once
	// pass1/startEnd hold one atomic slot per graph node (only endpoint
	// slots are ever filled). Lock-free: loads and idempotent stores.
	pass1    []atomic.Pointer[map[RelKey]relation.Set]
	startEnd []atomic.Pointer[map[RelKey]relation.Set]
	through  sync.Map // [2]graph.NodeID{start,end} → []ThroughRel
	profile  sync.Map // [2]graph.NodeID{start,end} → PairProfile
	liveBwd  sync.Map // graph.NodeID end → []bool live backward reach

	startTagsOnce  sync.Once
	startTags      []tagMap
	startTagsReady atomic.Bool
	tagsReady      atomic.Bool // ctx.tags() full propagation forced

	topoOnce sync.Once
	topoIdx  []int32

	// startIdx memoizes, per node, the shared start-tracked tag entries
	// grouped by startpoint (entry order preserved within each group) —
	// pass-3 queries filter the same nodes' tags once per (start, end)
	// pair, and a grouped index turns each filter into one lookup.
	startIdx sync.Map // graph.NodeID → map[graph.NodeID][]tagEntry

	hits, misses atomic.Int64
}

// relSlots lazily sizes the per-node memo slots.
func (ctx *Context) relSlots() *relCache {
	rc := &ctx.rel
	rc.slotsOnce.Do(func() {
		n := ctx.G.NumNodes()
		rc.pass1 = make([]atomic.Pointer[map[RelKey]relation.Set], n)
		rc.startEnd = make([]atomic.Pointer[map[RelKey]relation.Set], n)
	})
	return rc
}

// startTagsAll returns the shared start-tracked full propagation.
func (ctx *Context) startTagsAll() []tagMap {
	rc := &ctx.rel
	rc.startTagsOnce.Do(func() {
		rc.startTags = ctx.propagate(propOpts{withStart: true})
		rc.startTagsReady.Store(true)
	})
	return rc.startTags
}

// topoIndex returns each node's position in the topological order
// (lazy, shared).
func (ctx *Context) topoIndex() []int32 {
	rc := &ctx.rel
	rc.topoOnce.Do(func() {
		idx := make([]int32, ctx.G.NumNodes())
		for i, n := range ctx.G.Topo() {
			idx[n] = int32(i)
		}
		rc.topoIdx = idx
	})
	return rc.topoIdx
}

// startEntriesAt returns the shared start-tracked tag entries of node n
// launched at the given startpoint, in propagation insertion order — the
// exact subsequence a per-start filter of the full tag set would yield.
func (ctx *Context) startEntriesAt(n, start graph.NodeID) []tagEntry {
	rc := &ctx.rel
	if v, ok := rc.startIdx.Load(n); ok {
		return v.(map[graph.NodeID][]tagEntry)[start]
	}
	byStart := map[graph.NodeID][]tagEntry{}
	for _, te := range ctx.startTagsAll()[n].entries {
		byStart[te.tag.start] = append(byStart[te.tag.start], te)
	}
	rc.startIdx.Store(n, byStart)
	return byStart[start]
}

// liveBwdMemo memoizes liveBackwardReach per endpoint: liveness depends
// only on disables and case constants, never on exceptions, so entries
// stay valid across exception-only rebuilds (and transfer with
// AdoptRelationResults).
func (ctx *Context) liveBwdMemo(end graph.NodeID) []bool {
	if ctx.Opt.DisableRelationMemo {
		return ctx.liveBackwardReach(end)
	}
	rc := &ctx.rel
	if v, ok := rc.liveBwd.Load(end); ok {
		return v.([]bool)
	}
	b := ctx.liveBackwardReach(end)
	rc.liveBwd.Store(end, b)
	return b
}

// WarmStartRelations forces the shared start-tracked propagation so that
// subsequent StartEndRelations/ThroughRelations calls on this context are
// pure accumulation. Under DisableRelationMemo it is a no-op (every query
// re-propagates, as the slow path demands).
func (ctx *Context) WarmStartRelations() {
	if ctx.Opt.DisableRelationMemo {
		return
	}
	ctx.startTagsAll()
}

// WarmEndpointRelations forces the full (non-start-tracked) propagation
// that pass-1 queries read.
func (ctx *Context) WarmEndpointRelations() {
	ctx.tags()
}

// RelCacheStats returns the memo hit/miss counters (monotonic, atomic).
func (ctx *Context) RelCacheStats() (hits, misses int64) {
	return ctx.rel.hits.Load(), ctx.rel.misses.Load()
}

// EndpointRelationsAt computes (or recalls) the pass-1 relation map of a
// single endpoint. The returned map is shared and must not be mutated.
// When the full propagation has not been forced (WarmEndpointRelations),
// a miss is served by a propagation restricted to the endpoint's fan-in
// cone — identical tags at the endpoint, in identical insertion order
// (every propagation path into bwd(end) stays inside bwd(end)).
func (ctx *Context) EndpointRelationsAt(end graph.NodeID) map[RelKey]relation.Set {
	if ctx.Opt.DisableRelationMemo {
		out := map[RelKey]relation.Set{}
		ctx.accumulateRelations(out, end, ctx.tags()[end], "*")
		return out
	}
	rc := ctx.relSlots()
	if p := rc.pass1[end].Load(); p != nil {
		rc.hits.Add(1)
		return *p
	}
	out := make(map[RelKey]relation.Set, 16)
	if rc.tagsReady.Load() {
		ctx.accumulateRelations(out, end, ctx.dataTags[end], "*")
	} else {
		cone := ctx.G.BackwardReach([]graph.NodeID{end})
		tags := ctx.getTagArray()
		touched := ctx.propagateInto(propOpts{nodeFilter: cone}, tags)
		ctx.accumulateRelations(out, end, tags[end], "*")
		ctx.putTagArray(tags, touched)
	}
	rc.pass1[end].Store(&out)
	rc.misses.Add(1)
	return out
}

// MissingEndpointRelations counts the given endpoints without a memoized
// pass-1 relation map — the refinement's warm policy forces the full
// propagation only when the count is large enough to amortize it.
func (ctx *Context) MissingEndpointRelations(ends []graph.NodeID) int {
	if ctx.Opt.DisableRelationMemo {
		return len(ends)
	}
	rc := ctx.relSlots()
	n := 0
	for _, end := range ends {
		if rc.pass1[end].Load() == nil {
			n++
		}
	}
	return n
}

// MissingStartEndRelations counts the given endpoints without a memoized
// pass-2 relation map.
func (ctx *Context) MissingStartEndRelations(ends []graph.NodeID) int {
	if ctx.Opt.DisableRelationMemo {
		return len(ends)
	}
	rc := ctx.relSlots()
	n := 0
	for _, end := range ends {
		if rc.startEnd[end].Load() == nil {
			n++
		}
	}
	return n
}

// PairProfile summarizes the live path structure between a startpoint and
// an endpoint: whether any live path exists, whether the live cone
// diverges anywhere (more than one live route), and a hash of the live
// cone's node set. Pass 3 uses it to skip pairs that provably cannot
// need a through-point fix: when every context's live cone is
// divergence-free and all contexts with a live path share the same cone,
// every interior node sees exactly the pass-2 path set, so pass 3 can
// only repeat pass 2's ambiguity and emit nothing.
type PairProfile struct {
	// HasLive: at least one live start→end path exists in this context.
	HasLive bool
	// Divergent: some live node has two or more live out-arcs inside the
	// live cone.
	Divergent bool
	// LiveHash fingerprints the live cone's node-id set (FNV-1a over ids
	// in topological order). Only meaningful when HasLive.
	LiveHash uint64
}

// PairProfile computes (or recalls) the live-path profile for one pair.
// Liveness depends only on disables and case constants — never on timing
// exceptions — so profiles stay valid across exception-only rebuilds.
func (ctx *Context) PairProfile(start, end graph.NodeID) PairProfile {
	rc := &ctx.rel
	key := [2]graph.NodeID{start, end}
	if v, ok := rc.profile.Load(key); ok {
		return v.(PairProfile)
	}
	p := ctx.pairProfile(start, end)
	rc.profile.Store(key, p)
	return p
}

func (ctx *Context) pairProfile(start, end graph.NodeID) PairProfile {
	g := ctx.G
	if ctx.NodeDisabled[start] || ctx.Consts[start].Known() {
		return PairProfile{}
	}
	bwd := ctx.liveBwdMemo(end)
	if !bwd[start] {
		return PairProfile{}
	}
	// Live forward reach from the startpoint, mirroring propagation's arc
	// rules: disabled arcs block, launch arcs leave only the startpoint
	// itself, disabled and case-constant nodes block. The walk is bounded
	// by bwd(end): any live forward path to a node of bwd(end) stays
	// inside bwd(end), so restricting the DFS marks exactly the live cone
	// fwd ∩ bwd.
	live := make([]bool, g.NumNodes())
	live[start] = true
	liveNodes := []graph.NodeID{start}
	stack := []graph.NodeID{start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ai := range g.OutArcs(id) {
			if ctx.ArcDisabled[ai] {
				continue
			}
			a := g.Arc(ai)
			if a.Kind == graph.LaunchArc && id != start {
				continue
			}
			if live[a.To] || !bwd[a.To] || ctx.NodeDisabled[a.To] || ctx.Consts[a.To].Known() {
				continue
			}
			live[a.To] = true
			liveNodes = append(liveNodes, a.To)
			stack = append(stack, a.To)
		}
	}
	if !live[end] {
		return PairProfile{}
	}
	topoIdx := ctx.topoIndex()
	slices.SortFunc(liveNodes, func(a, b graph.NodeID) int { return int(topoIdx[a]) - int(topoIdx[b]) })
	prof := PairProfile{HasLive: true, LiveHash: 1469598103934665603} // FNV-1a offset
	for _, n := range liveNodes {
		prof.LiveHash ^= uint64(n)
		prof.LiveHash *= 1099511628211
		liveOut := 0
		for _, ai := range g.OutArcs(n) {
			if ctx.ArcDisabled[ai] {
				continue
			}
			a := g.Arc(ai)
			if a.Kind == graph.LaunchArc && n != start {
				continue
			}
			if live[a.To] {
				liveOut++
			}
		}
		if liveOut >= 2 {
			prof.Divergent = true
		}
	}
	return prof
}

// AdoptRelationResults transfers memoized relation results from a
// previous context for the same graph into this one — the refinement
// loop's cross-iteration reuse. keepEnd selects the endpoints whose
// results are still valid (endpoints NOT forward-reachable from any
// newly added exception's pins: a new exception can only complete at an
// endpoint its pins reach, so relation results elsewhere are untouched
// by an exception-only rebuild). Pair profiles transfer unconditionally
// — liveness never depends on exceptions.
//
// Results are name/state data with no reference to the source context's
// clock ids or exception vectors, so adopting them is a plain copy.
func (ctx *Context) AdoptRelationResults(prev *Context, keepEnd func(graph.NodeID) bool) {
	if prev == nil || prev.G != ctx.G ||
		ctx.Opt.DisableRelationMemo || prev.Opt.DisableRelationMemo {
		return
	}
	rc, prc := ctx.relSlots(), prev.relSlots()
	for i := range prc.pass1 {
		id := graph.NodeID(i)
		if !keepEnd(id) {
			continue
		}
		if p := prc.pass1[i].Load(); p != nil {
			rc.pass1[i].Store(p)
		}
		if p := prc.startEnd[i].Load(); p != nil {
			rc.startEnd[i].Store(p)
		}
	}
	prc.through.Range(func(k, v any) bool {
		if keepEnd(k.([2]graph.NodeID)[1]) {
			rc.through.Store(k, v)
		}
		return true
	})
	prc.profile.Range(func(k, v any) bool {
		rc.profile.Store(k, v)
		return true
	})
	prc.liveBwd.Range(func(k, v any) bool {
		rc.liveBwd.Store(k, v)
		return true
	})
}
