package sta

import (
	"fmt"

	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
)

// Delay calculation runs once per analysis context — it depends on the
// mode's environment constraints (set_load on ports, set_input_transition
// and set_drive on inputs), so every STA run pays for it, exactly as a
// production engine re-times each scenario. The model is a wire-load slew
// model:
//
//	load(net)   = Σ sink pin caps + wireload(fanout) + set_load(ports)
//	slew(out)   = slewIntrinsic + slewPerCap·load         (cell outputs)
//	delay(arc)  = intrinsic + slope·load + slewSens·slew(in)
//
// Net arcs contribute no delay of their own (the wire is folded into the
// driver's load) but forward the driver's slew.
// Each delay arc gets four values — rise/fall × early/late — as a
// production delay calculator produces; falling output transitions are
// slightly slower (NMOS/PMOS asymmetry) and the early corner is derated.
const (
	defaultInputSlew = 0.05
	slewIntrinsic    = 0.03
	slewPerCap       = 0.015
	slewSens         = 0.25
	fallFactor       = 1.08
	earlyDerate      = 0.92
)

// arcDelay carries the four delay-calculation corners of one arc.
type arcDelay struct {
	// [0] rise, [1] fall output transition; each early (min) and late
	// (max).
	riseMin, riseMax float64
	fallMin, fallMax float64
}

// sel picks the corner for a transition and analysis side.
func (d *arcDelay) sel(trans sdc.EdgeSel, late bool) float64 {
	switch {
	case trans == sdc.EdgeFall && late:
		return d.fallMax
	case trans == sdc.EdgeFall:
		return d.fallMin
	case late:
		return d.riseMax
	default:
		return d.riseMin
	}
}

// computeDelays fills ctx.delays (per arc) and ctx.slews (per node).
func (ctx *Context) computeDelays() {
	g := ctx.G
	d := g.Design

	// Mode-dependent extra port loads.
	portLoad := map[*netlist.Net]float64{}
	for _, l := range ctx.Mode.Loads {
		for _, ref := range l.Ports {
			if p := d.PortByName(ref.Name); p != nil {
				portLoad[p.Net] += l.Value
			}
		}
	}
	netLoad := make([]float64, len(d.Nets))
	for _, n := range d.Nets {
		netLoad[n.Index] = n.LoadCap() + d.Lib.WireLoad.Cap(n.Fanout()) + portLoad[n]
	}

	// Input port slews from set_input_transition (max) or the drive
	// model; default otherwise.
	inSlew := map[graph.NodeID]float64{}
	for _, tr := range ctx.Mode.InputTransitions {
		for _, ref := range tr.Ports {
			if id, ok := g.NodeByName(ref.Name); ok {
				if tr.Level != sdc.MinOnly && tr.Value > inSlew[id] {
					inSlew[id] = tr.Value
				}
			}
		}
	}
	for _, dc := range ctx.Mode.DrivingCells {
		if dc.CellName == "" {
			// set_drive: slew ≈ R·C of the port net.
			for _, ref := range dc.Ports {
				if id, ok := g.NodeByName(ref.Name); ok {
					if p := d.PortByName(ref.Name); p != nil {
						s := dc.Resistance * netLoad[p.Net.Index] * 0.1
						if s > inSlew[id] {
							inSlew[id] = s
						}
					}
				}
			}
		}
	}

	// Corner derates: a nil corner applies no multiplications at all,
	// keeping the nominal path bit-identical to corner-less builds.
	earlyScale, lateScale := 1.0, 1.0
	if c := ctx.Opt.Corner; c != nil {
		earlyScale = c.DelayFactor() * c.EarlyFactor()
		lateScale = c.DelayFactor() * c.LateFactor()
	}

	ctx.delays = make([]arcDelay, g.NumArcs())
	ctx.slews = make([]float64, g.NumNodes())
	for _, id := range g.Topo() {
		node := g.Node(id)
		slew := 0.0
		switch {
		case node.Port != nil && node.Port.Dir == netlist.In:
			slew = defaultInputSlew
			if s, ok := inSlew[id]; ok {
				slew = s
			}
		default:
			// Max slew over incoming propagation arcs; output pins also
			// compute their own driven slew below.
			for _, ai := range g.InArcs(id) {
				a := g.Arc(ai)
				if a.Kind == graph.SetupArc || a.Kind == graph.HoldArc {
					continue
				}
				if s := ctx.slews[a.From]; s > slew {
					slew = s
				}
			}
		}
		// A driven cell output regenerates the slew from its load.
		if node.Inst != nil && node.Inst.Cell.Pins[node.Pin].Dir == library.Output {
			load := 0.0
			if net := node.Inst.Conns[node.Pin]; net != nil {
				load = netLoad[net.Index]
			}
			slew = slewIntrinsic + slewPerCap*load
		}
		ctx.slews[id] = slew
		// Delays of arcs leaving this node use its slew.
		for _, ai := range g.OutArcs(id) {
			a := g.Arc(ai)
			switch a.Kind {
			case graph.CellArc, graph.LaunchArc:
				load := 0.0
				toNode := g.Node(a.To)
				if net := toNode.Inst.Conns[toNode.Pin]; net != nil {
					load = netLoad[net.Index]
				}
				rise := a.Lib.Intrinsic + a.Lib.Slope*load + slewSens*slew
				fall := rise * fallFactor
				d := arcDelay{
					riseMin: rise * earlyDerate, riseMax: rise,
					fallMin: fall * earlyDerate, fallMax: fall,
				}
				if ctx.Opt.Corner != nil {
					d.riseMin *= earlyScale
					d.fallMin *= earlyScale
					d.riseMax *= lateScale
					d.fallMax *= lateScale
				}
				ctx.delays[ai] = d
			case graph.NetArc:
				// Wire delay folded into the driver; zero corners.
			}
		}
	}
}

// ArcDelayAt returns the mode-resolved late rise delay of an arc (the
// representative value for reports).
func (ctx *Context) ArcDelayAt(ai int32) float64 { return ctx.delays[ai].riseMax }

// SlewAt returns the computed transition time at a node.
func (ctx *Context) SlewAt(id graph.NodeID) float64 { return ctx.slews[id] }

// Latch time borrowing: a level-sensitive endpoint's setup check moves to
// the closing edge of the capture clock, letting the data borrow up to
// the transparency window (bounded by set_max_time_borrow).

// resolveBorrows indexes set_max_time_borrow constraints.
func (ctx *Context) resolveBorrows() error {
	for _, mtb := range ctx.Mode.MaxTimeBorrows {
		for _, name := range mtb.Clocks {
			id, ok := ctx.clockByName[name]
			if !ok {
				return fmt.Errorf("set_max_time_borrow: unknown clock %q", name)
			}
			ctx.setBorrowClock(id, mtb.Value)
		}
		for _, obj := range mtb.Objects {
			switch obj.Kind {
			case sdc.PinObj, sdc.PortObj:
				id, ok := ctx.G.NodeByName(obj.Name)
				if !ok {
					return fmt.Errorf("set_max_time_borrow: object %q not in design", obj.Name)
				}
				ctx.setBorrowNode(id, mtb.Value)
			case sdc.CellObj:
				inst := ctx.G.Design.InstByName(obj.Name)
				if inst == nil {
					return fmt.Errorf("set_max_time_borrow: no cell %q", obj.Name)
				}
				for _, dp := range inst.Cell.DataPins() {
					if id, ok := ctx.G.NodeByName(inst.Name + "/" + dp); ok {
						ctx.setBorrowNode(id, mtb.Value)
					}
				}
			}
		}
	}
	return nil
}

func (ctx *Context) setBorrowNode(id graph.NodeID, v float64) {
	if ctx.borrowNode == nil {
		ctx.borrowNode = map[graph.NodeID]float64{}
	}
	if have, ok := ctx.borrowNode[id]; !ok || v < have {
		ctx.borrowNode[id] = v
	}
}

func (ctx *Context) setBorrowClock(id ClockID, v float64) {
	if ctx.borrowClock == nil {
		ctx.borrowClock = map[ClockID]float64{}
	}
	if have, ok := ctx.borrowClock[id]; !ok || v < have {
		ctx.borrowClock[id] = v
	}
}

// borrowAllowance returns the setup-time borrow available at a latch
// endpoint captured by the given clock tag: the transparency window,
// clipped by any set_max_time_borrow. Zero for edge-triggered endpoints.
func (ctx *Context) borrowAllowance(end graph.NodeID, ct ClockAtNode) float64 {
	node := ctx.G.Node(end)
	if node.Inst == nil || !node.Inst.Cell.Level {
		return 0
	}
	c := ctx.Clocks[ct.Clock]
	width := c.FallTime() - c.RiseTime()
	if ct.Inv {
		width = c.Period() - width
	}
	if width < 0 {
		width = 0
	}
	borrow := width
	if lim, ok := ctx.borrowClock[ct.Clock]; ok && lim < borrow {
		borrow = lim
	}
	if lim, ok := ctx.borrowNode[end]; ok && lim < borrow {
		borrow = lim
	}
	return borrow
}
