package sta

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/relation"
	"modemerge/internal/sdc"
)

func endpointResult(t *testing.T, ctx *Context, name string) EndpointResult {
	t.Helper()
	for _, r := range ctx.AnalyzeEndpoints(context.Background()) {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("endpoint %s not found", name)
	return EndpointResult{}
}

func TestClockLatencyShiftsSlack(t *testing.T) {
	base := ctxFor(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	// Symmetric latency on launch and capture of the same clock cancels
	// for reg-to-reg paths.
	lat := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_clock_latency 1.0 [get_clocks clkA]
`)
	b := endpointResult(t, base, "rX/D")
	l := endpointResult(t, lat, "rX/D")
	if math.Abs(b.SetupSlack-l.SetupSlack) > 1e-9 {
		t.Errorf("symmetric latency changed reg-to-reg slack: %g vs %g", b.SetupSlack, l.SetupSlack)
	}
	// Min/max latency split introduces pessimism: launch late, capture
	// early.
	skewed := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_clock_latency -min 0.5 [get_clocks clkA]
set_clock_latency -max 1.5 [get_clocks clkA]
`)
	s := endpointResult(t, skewed, "rX/D")
	if diff := b.SetupSlack - s.SetupSlack; math.Abs(diff-1.0) > 1e-9 {
		t.Errorf("latency window pessimism = %g, want 1.0", diff)
	}
}

func TestSourceLatencyAppliesToBothPaths(t *testing.T) {
	base := ctxFor(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	src := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_clock_latency -source 2.0 [get_clocks clkA]
`)
	b := endpointResult(t, base, "rX/D")
	s := endpointResult(t, src, "rX/D")
	if math.Abs(b.SetupSlack-s.SetupSlack) > 1e-9 {
		t.Errorf("symmetric source latency changed slack: %g vs %g", b.SetupSlack, s.SetupSlack)
	}
}

func TestPropagatedClockUsesNetworkArrival(t *testing.T) {
	ideal := ctxFor(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	prop := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_propagated_clock [get_clocks clkA]
`)
	// rZ is clocked through the mux (real network delay); rA..rY are
	// directly on the port. Reg-to-reg launch/capture skew between a
	// direct-port launch (rC) and mux-delayed capture (rZ) should give
	// propagated mode MORE slack at rZ/D (capture arrives later).
	i := endpointResult(t, ideal, "rZ/D")
	p := endpointResult(t, prop, "rZ/D")
	if p.SetupSlack <= i.SetupSlack {
		t.Errorf("propagated capture skew should relax rZ/D setup: ideal %g, propagated %g",
			i.SetupSlack, p.SetupSlack)
	}
	// Hold moves the other way at rZ/D (late capture hurts hold).
	if p.HoldSlack >= i.HoldSlack {
		t.Errorf("propagated capture skew should tighten rZ/D hold: ideal %g, propagated %g",
			i.HoldSlack, p.HoldSlack)
	}
}

func TestHoldMulticycle(t *testing.T) {
	base := ctxFor(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	// MCP 2 setup without hold adjustment pushes the hold edge out by one
	// period (the PT default), making hold fail; adding -hold 1 restores
	// the zero-cycle hold check.
	mcpOnly := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_multicycle_path 2 -setup -to [get_pins rX/D]
`)
	mcpHold := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_multicycle_path 2 -setup -to [get_pins rX/D]
set_multicycle_path 1 -hold -to [get_pins rX/D]
`)
	b := endpointResult(t, base, "rX/D")
	m := endpointResult(t, mcpOnly, "rX/D")
	h := endpointResult(t, mcpHold, "rX/D")
	if diff := b.HoldSlack - m.HoldSlack; math.Abs(diff-10) > 1e-9 {
		t.Errorf("setup-only MCP moved hold by %g, want 10 (one period)", diff)
	}
	if math.Abs(h.HoldSlack-b.HoldSlack) > 1e-9 {
		t.Errorf("-hold 1 should restore the base hold edge: %g vs %g", h.HoldSlack, b.HoldSlack)
	}
	if math.Abs(h.SetupSlack-m.SetupSlack) > 1e-9 {
		t.Error("-hold must not change the setup edge")
	}
}

func TestMinDelayHoldOverride(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_min_delay 5 -to [get_pins rX/D]
`)
	r := endpointResult(t, ctx, "rX/D")
	if !r.HasHold {
		t.Fatal("no hold check")
	}
	// Path min delay well under 5 → negative hold slack.
	if r.HoldSlack >= 0 {
		t.Errorf("min_delay 5 hold slack = %g, want negative", r.HoldSlack)
	}
}

func TestGeneratedClockSlack(t *testing.T) {
	// rZ captured by a /2 clock: effective capture period doubles.
	base := ctxFor(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	gdiv := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_generated_clock -name gdiv -source [get_ports clk1] -divide_by 2 [get_pins mux1/Z]
`)
	b := endpointResult(t, base, "rZ/D")
	g := endpointResult(t, gdiv, "rZ/D")
	if !g.HasSetup || g.SetupCapture != "gdiv" {
		t.Fatalf("rZ/D not captured by gdiv: %+v", g)
	}
	// Launch clkA (p10) → capture gdiv (p20, edges at 0,10,20…): the
	// worst separation stays 10, so slack matches the base case.
	if math.Abs(g.SetupSlack-b.SetupSlack) > 1e-9 {
		t.Errorf("divided capture slack %g, want %g", g.SetupSlack, b.SetupSlack)
	}
	if g.CapturePeriod != 20 {
		t.Errorf("capture period = %g, want 20", g.CapturePeriod)
	}
}

func TestFallingEdgeCaptureThroughInverter(t *testing.T) {
	// Drive rZ's clock through the mux normally, but add an inversion by
	// reusing set 4's case to select… instead, test polarity handling
	// with a negative-unate path: clkA through inv? The paper circuit has
	// no inverter in the clock path, so check polarity bookkeeping via
	// clock tags on a non-unate select instead.
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 10 [get_ports clk2]
`)
	id := nodeID(t, ctx, "rZ/CP")
	for _, tag := range ctx.ClocksAt(id) {
		if tag.Inv {
			t.Errorf("clock %d arrives inverted through the mux data leg", tag.Clock)
		}
	}
}

func TestInterClockUncertaintyApplies(t *testing.T) {
	base := ctxFor(t, `
create_clock -name clkA -period 2 [get_ports clk1]
create_clock -name clkB -period 2 -add [get_ports clk1]
`)
	unc := ctxFor(t, `
create_clock -name clkA -period 2 [get_ports clk1]
create_clock -name clkB -period 2 -add [get_ports clk1]
set_clock_uncertainty -from [get_clocks clkA] -to [get_clocks clkB] 0.7
`)
	// Worst setup across endpoints must tighten by exactly 0.7 if the
	// worst pair is clkA→clkB; both clocks are identical so cross pairs
	// behave like same-clock pairs.
	wb, _, _ := Summarize(base.AnalyzeEndpoints(context.Background()))
	wu, _, _ := Summarize(unc.AnalyzeEndpoints(context.Background()))
	if diff := wb - wu; math.Abs(diff-0.7) > 1e-9 {
		t.Errorf("inter-clock uncertainty tightened worst slack by %g, want 0.7", diff)
	}
}

func TestDelayCalcLoadsMatter(t *testing.T) {
	base := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_output_delay 1 -clock clkA [get_ports out1]
`)
	loaded := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_output_delay 1 -clock clkA [get_ports out1]
set_load 50 [get_ports out1]
`)
	b := endpointResult(t, base, "out1")
	l := endpointResult(t, loaded, "out1")
	if l.SetupSlack >= b.SetupSlack {
		t.Errorf("set_load must slow the output path: %g vs %g", l.SetupSlack, b.SetupSlack)
	}
}

func TestDelayCalcInputTransitionMatters(t *testing.T) {
	base := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_input_delay 1 -clock clkA [get_ports in1]
`)
	slow := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_input_delay 1 -clock clkA [get_ports in1]
set_input_transition 2.0 [get_ports in1]
`)
	b := endpointResult(t, base, "rA/D")
	s := endpointResult(t, slow, "rA/D")
	if s.SetupSlack >= b.SetupSlack {
		t.Errorf("slow input transition must slow the path: %g vs %g", s.SetupSlack, b.SetupSlack)
	}
}

func TestRiseFallCorners(t *testing.T) {
	ctx := ctxFor(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	// Every delay arc: fall ≥ rise, max ≥ min, all positive.
	g := ctx.G
	for ai := int32(0); ai < int32(g.NumArcs()); ai++ {
		a := g.Arc(ai)
		if a.Kind != graph.CellArc && a.Kind != graph.LaunchArc {
			continue
		}
		d := ctx.delays[ai]
		if d.riseMin <= 0 || d.riseMax < d.riseMin || d.fallMax < d.fallMin || d.fallMin < d.riseMin {
			t.Fatalf("arc %s->%s corners inconsistent: %+v",
				g.Node(a.From).Name, g.Node(a.To).Name, d)
		}
	}
}

func TestSlewMonotoneAlongPath(t *testing.T) {
	ctx := ctxFor(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	for _, name := range []string{"in1", "bufin/Z", "rA/Q", "inv1/Z"} {
		id := nodeID(t, ctx, name)
		if ctx.SlewAt(id) <= 0 {
			t.Errorf("slew at %s = %g, want positive", name, ctx.SlewAt(id))
		}
	}
}

func TestSeparationProperties(t *testing.T) {
	ctx := ctxFor(t, `create_clock -name c -period 10 [get_ports clk1]`)
	mk := func(period float64) *ClockInfo {
		return &ClockInfo{Def: &sdc.Clock{Name: "x", Period: period, Waveform: []float64{0, period / 2}}}
	}
	f := func(pl8, pc8 uint8) bool {
		pl := float64(pl8%32) + 1
		pc := float64(pc8%32) + 1
		sep, ok := ctx.separation(mk(pl), 0, mk(pc), 0)
		if !ok {
			return false
		}
		// Separation is positive and never exceeds the capture period.
		return sep > 0 && sep <= pc+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeparationIrrational(t *testing.T) {
	ctx := ctxFor(t, `create_clock -name c -period 10 [get_ports clk1]`)
	a := &ClockInfo{Def: &sdc.Clock{Name: "a", Period: 10, Waveform: []float64{0, 5}}}
	b := &ClockInfo{Def: &sdc.Clock{Name: "b", Period: 10 * math.Pi / 3, Waveform: []float64{0, 5 * math.Pi / 3}}}
	sep, ok := ctx.separation(a, 0, b, 0)
	if !ok || sep <= 0 {
		t.Errorf("fallback separation = %g ok=%v", sep, ok)
	}
}

func TestShiftedWaveformCapture(t *testing.T) {
	base := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_output_delay 0 -clock clkA [get_ports out1]
`)
	// Virtual capture clock with edges at 3, 13, …: data launched at 0 is
	// captured at the NEXT edge (t=3), so the separation shrinks from 10
	// to 3.
	shifted := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name vcap -period 10 -waveform {3 8}
set_output_delay 0 -clock vcap [get_ports out1]
`)
	b := endpointResult(t, base, "out1")
	s := endpointResult(t, shifted, "out1")
	if diff := s.SetupSlack - b.SetupSlack; math.Abs(diff-(-7)) > 1e-9 {
		t.Errorf("shifted capture changed slack by %g, want -7 (separation 3 instead of 10)", diff)
	}
}

func TestLiveBackwardReach(t *testing.T) {
	// A constant endpoint has no live fan-in at all (rB/Q=0 forces
	// and1/Z=0 and inv2/Z=1, so rY/D itself is constant).
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_case_analysis 0 rB/Q
`)
	end := nodeID(t, ctx, "rY/D")
	live := ctx.liveBackwardReach(end)
	for i := range live {
		if live[i] {
			t.Fatalf("constant endpoint has live node %s", ctx.G.Node(graph.NodeID(i)).Name)
		}
	}
	// A disabled arc blocks one leg without constants: rB cannot reach
	// rY/D, rA still can.
	ctx2 := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_disable_timing -from B -to Z [get_cells and1]
`)
	live2 := ctx2.liveBackwardReach(nodeID(t, ctx2, "rY/D"))
	if live2[nodeID(t, ctx2, "rB/Q")] {
		t.Error("rB/Q must not be live through the disabled and1 B arc")
	}
	if !live2[nodeID(t, ctx2, "rA/Q")] {
		t.Error("rA/Q must stay live to rY/D")
	}
	if !live2[nodeID(t, ctx2, "rY/D")] {
		t.Error("endpoint itself must be live")
	}
}

func TestThroughRelationsRespectConstants(t *testing.T) {
	// With rB/Q cased to 0, and1/Z is constant: paths rA→rY die, so the
	// through-relations between rA/CP and rY/D must be empty.
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_case_analysis 0 rB/Q
`)
	rels := ctx.ThroughRelations(nodeID(t, ctx, "rA/CP"), nodeID(t, ctx, "rY/D"))
	for _, tr := range rels {
		if len(tr.States) > 0 {
			t.Errorf("node %s reports states on a dead cone", tr.Name)
		}
	}
}

func TestMaxLaunchEdgesCap(t *testing.T) {
	d := gen.PaperCircuit()
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	mode, _, err := sdc.Parse("m", `
create_clock -name a -period 10 [get_ports clk1]
create_clock -name b -period 7 [get_ports clk2]
`, d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(g, mode, Options{MaxLaunchEdges: 2})
	if err != nil {
		t.Fatal(err)
	}
	// LCM(10,7)=70 > 2*10 → fallback to min period.
	a, _ := ctx.ClockByName("a")
	b, _ := ctx.ClockByName("b")
	sep, ok := ctx.separation(ctx.Clock(a), 0, ctx.Clock(b), 0)
	if !ok || math.Abs(sep-7) > 1e-9 {
		t.Errorf("capped separation = %g ok=%v, want fallback 7", sep, ok)
	}
}

func TestEndpointRelationsHoldSide(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -hold -to [get_pins rX/D]
`)
	rels := ctx.EndpointRelations(context.Background())
	setup := rels[RelKey{Start: "*", End: "rX/D", Launch: "clkA", Capture: "clkA", Check: relation.Setup}]
	hold := rels[RelKey{Start: "*", End: "rX/D", Launch: "clkA", Capture: "clkA", Check: relation.Hold}]
	if !setup.Equal(relation.NewSet(relation.StateValid)) {
		t.Errorf("setup side = %v, want V (-hold FP must not apply)", setup)
	}
	if !hold.Equal(relation.NewSet(relation.StateFalse)) {
		t.Errorf("hold side = %v, want FP", hold)
	}
	// And the slack view agrees.
	r := endpointResult(t, ctx, "rX/D")
	if !r.HasSetup || r.HasHold {
		t.Errorf("checks = setup %v hold %v, want setup only", r.HasSetup, r.HasHold)
	}
}

func TestDisabledEndpointNotChecked(t *testing.T) {
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_disable_timing [get_pins rX/D]
`)
	r := endpointResult(t, ctx, "rX/D")
	if r.HasSetup || r.HasHold {
		t.Errorf("disabled endpoint still checked: %+v", r)
	}
}

func TestCaseOnRegOutputKillsLaunch(t *testing.T) {
	// rA/Q=0 → inv1/Z=1 (non-controlling for and1), so only the rA leg
	// dies: rX/D (fed solely by rA via inv1) becomes constant and
	// unchecked, while rY/D stays checked through rB.
	ctx := ctxFor(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_case_analysis 0 rA/Q
`)
	r := endpointResult(t, ctx, "rX/D")
	if r.HasSetup {
		t.Errorf("rX/D checked despite constant source: %+v", r)
	}
	r = endpointResult(t, ctx, "rY/D")
	if !r.HasSetup {
		t.Error("rY/D must still be checked via rB")
	}
}

func TestContextOnGeneratedDesign(t *testing.T) {
	g, err := gen.Generate(gen.DesignSpec{Name: "s", Seed: 11, Domains: 2, BlocksPerDomain: 2,
		Stages: 3, RegsPerStage: 4, CloudDepth: 2, CrossPaths: 2})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := graph.Build(g.Design)
	if err != nil {
		t.Fatal(err)
	}
	for _, ms := range g.Modes(gen.FamilySpec{Groups: 1, ModesPerGroup: []int{3}, BasePeriod: 2}) {
		mode, _, err := sdc.Parse(ms.Name, ms.Text, g.Design)
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := NewContext(tg, mode, Options{})
		if err != nil {
			t.Fatalf("mode %s: %v", ms.Name, err)
		}
		results := ctx.AnalyzeEndpoints(context.Background())
		_, _, checked := Summarize(results)
		if checked == 0 {
			t.Errorf("mode %s checks no endpoints", ms.Name)
		}
	}
}

func TestTraceWorstArrival(t *testing.T) {
	ctx := ctxFor(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	end := nodeID(t, ctx, "rY/D")
	p, ok := ctx.TraceWorstArrival(end)
	if !ok {
		t.Fatal("no path traced")
	}
	if p.Launch != "clkA" {
		t.Errorf("launch = %q", p.Launch)
	}
	if len(p.Steps) < 4 {
		t.Fatalf("path too short: %v", p.Steps)
	}
	// The path runs launch→capture: first step is a clock pin, last is
	// the endpoint.
	if p.Steps[len(p.Steps)-1].Node != "rY/D" {
		t.Errorf("path does not end at rY/D: %s", p.Steps[len(p.Steps)-1].Node)
	}
	first := p.Steps[0].Node
	if first != "rA/CP" && first != "rB/CP" {
		t.Errorf("path does not start at a launch clock pin: %s", first)
	}
	// Arrivals are nondecreasing and increments sum to the final arrival.
	sum := p.Steps[0].Arrival
	for i := 1; i < len(p.Steps); i++ {
		if p.Steps[i].Arrival+1e-9 < p.Steps[i-1].Arrival {
			t.Errorf("arrival decreases at %s", p.Steps[i].Node)
		}
		sum += p.Steps[i].Incr
	}
	final := p.Steps[len(p.Steps)-1].Arrival
	if math.Abs(sum-final) > 1e-6 {
		t.Errorf("increments sum to %g, arrival is %g", sum, final)
	}
	if p.String() == "" {
		t.Error("empty rendering")
	}
}

func TestTraceNoPath(t *testing.T) {
	ctx := ctxFor(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	// rA/D has no clocked arrival (no input delay on in1).
	end := nodeID(t, ctx, "rA/D")
	if _, ok := ctx.TraceWorstArrival(end); ok {
		t.Error("traced a path where none is clocked")
	}
}

// latchCircuit builds reg → cloud → latch for borrowing tests.
func latchCtx(t *testing.T, sdcSrc string) *Context {
	t.Helper()
	b := netlist.NewBuilder("latchy", library.Default())
	b.Port("clk", netlist.In)
	b.Port("din", netlist.In)
	b.Inst("DFF", "r1", map[string]string{"CP": "clk", "D": "din", "Q": "q1"})
	b.Inst("INV", "u1", map[string]string{"A": "q1", "Z": "n1"})
	b.Inst("LATCH", "l1", map[string]string{"G": "clk", "D": "n1", "Q": "lq"})
	b.Inst("DFF", "r2", map[string]string{"CP": "clk", "D": "lq", "Q": "q2"})
	d := b.MustBuild()
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	mode, _, err := sdc.Parse("m", sdcSrc, d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(g, mode, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestLatchTimeBorrowing(t *testing.T) {
	base := latchCtx(t, `create_clock -name c -period 10 [get_ports clk]`)
	var latch, flop EndpointResult
	for _, r := range base.AnalyzeEndpoints(context.Background()) {
		switch r.Name {
		case "l1/D":
			latch = r
		case "r2/D":
			flop = r
		}
	}
	if !latch.HasSetup || !flop.HasSetup {
		t.Fatalf("checks missing: latch=%v flop=%v", latch.HasSetup, flop.HasSetup)
	}
	// The latch endpoint borrows the transparency window (half period =
	// 5) relative to an equivalent flop check; margins differ slightly
	// between cells, so compare with tolerance.
	gain := latch.SetupSlack - flop.SetupSlack
	if gain < 4.5 || gain > 5.5 {
		t.Errorf("latch borrow gain = %g, want ≈5 (half period)", gain)
	}
}

func TestMaxTimeBorrowLimits(t *testing.T) {
	limited := latchCtx(t, `
create_clock -name c -period 10 [get_ports clk]
set_max_time_borrow 1.5 [get_pins l1/D]
`)
	zero := latchCtx(t, `
create_clock -name c -period 10 [get_ports clk]
set_max_time_borrow 0 [get_clocks c]
`)
	get := func(ctx *Context) float64 {
		for _, r := range ctx.AnalyzeEndpoints(context.Background()) {
			if r.Name == "l1/D" {
				return r.SetupSlack
			}
		}
		t.Fatal("l1/D missing")
		return 0
	}
	base := latchCtx(t, `create_clock -name c -period 10 [get_ports clk]`)
	full := get(base)
	lim := get(limited)
	none := get(zero)
	if math.Abs((full-lim)-(5-1.5)) > 1e-9 {
		t.Errorf("borrow limit 1.5: slack delta %g, want 3.5", full-lim)
	}
	if math.Abs(full-none-5) > 1e-9 {
		t.Errorf("borrow 0: slack delta %g, want 5 (no borrowing)", full-none)
	}
}

func TestBorrowErrors(t *testing.T) {
	b := netlist.NewBuilder("e", library.Default())
	b.Port("clk", netlist.In)
	b.Inst("LATCH", "l", map[string]string{"G": "clk", "D": "clk", "Q": "q"})
	d := b.MustBuild()
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	mode := &sdc.Mode{Name: "bad", MaxTimeBorrows: []*sdc.MaxTimeBorrow{{
		Value: 1, Clocks: []string{"ghost"},
	}}}
	if _, err := NewContext(g, mode, Options{}); err == nil {
		t.Error("unknown borrow clock accepted")
	}
}
