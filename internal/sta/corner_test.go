package sta

import (
	"math"
	"testing"

	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/sdc"
)

// ctxForCorner is ctxFor with an analysis corner selected.
func ctxForCorner(t *testing.T, src string, crn *library.Corner) *Context {
	t.Helper()
	d := gen.PaperCircuit()
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	mode, _, err := sdc.Parse("test", src, d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(g, mode, Options{Corner: crn})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

const cornerSDC = `create_clock -name clkA -period 10 [get_ports clk1]`

// TestCornerDelayMonotonicity is the table-driven derate contract: a
// factor above 1 never decreases the affected delay values, a factor
// below 1 never increases them, and the untouched early/late side stays
// bit-identical to the nominal analysis.
func TestCornerDelayMonotonicity(t *testing.T) {
	nominal := ctxFor(t, cornerSDC)
	cases := []struct {
		name   string
		corner library.Corner
		// cmp(base, got) must hold per arc for the late and early values.
		late, early func(base, got float64) bool
	}{
		{"global-slow", library.Corner{Name: "s", DelayScale: 1.2},
			func(b, g float64) bool { return g >= b },
			func(b, g float64) bool { return g >= b }},
		{"global-fast", library.Corner{Name: "f", DelayScale: 0.8},
			func(b, g float64) bool { return g <= b },
			func(b, g float64) bool { return g <= b }},
		{"late-only", library.Corner{Name: "l", LateScale: 1.1},
			func(b, g float64) bool { return g >= b },
			func(b, g float64) bool { return g == b }},
		{"early-only", library.Corner{Name: "e", EarlyScale: 0.9},
			func(b, g float64) bool { return g == b },
			func(b, g float64) bool { return g <= b }},
		{"neutral", library.Corner{Name: "n"},
			func(b, g float64) bool { return g == b },
			func(b, g float64) bool { return g == b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			derated := ctxForCorner(t, cornerSDC, &tc.corner)
			for ai := int32(0); ai < int32(nominal.G.NumArcs()); ai++ {
				b, g := nominal.delays[ai], derated.delays[ai]
				if !tc.late(b.riseMax, g.riseMax) || !tc.late(b.fallMax, g.fallMax) {
					t.Fatalf("arc %d late delay violates %s contract: base=%+v got=%+v", ai, tc.name, b, g)
				}
				if !tc.early(b.riseMin, g.riseMin) || !tc.early(b.fallMin, g.fallMin) {
					t.Fatalf("arc %d early delay violates %s contract: base=%+v got=%+v", ai, tc.name, b, g)
				}
			}
		})
	}
}

// TestCornerSetupHoldAsymmetry pins which check each derate side moves:
// a late-only derate worsens setup slack (late arrivals grow) while the
// hold slack — computed from early arrivals — stays put, and an
// early-only shrink does the reverse.
func TestCornerSetupHoldAsymmetry(t *testing.T) {
	nominal := ctxFor(t, cornerSDC)
	base := endpointResult(t, nominal, "rX/D")
	cases := []struct {
		name       string
		corner     library.Corner
		setupMoves bool // setup slack must strictly decrease
		holdMoves  bool // hold slack must strictly decrease
	}{
		{"late-worsens-setup", library.Corner{Name: "wc", LateScale: 1.5}, true, false},
		{"early-worsens-hold", library.Corner{Name: "bc", EarlyScale: 0.5}, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := ctxForCorner(t, cornerSDC, &tc.corner)
			r := endpointResult(t, ctx, "rX/D")
			if tc.setupMoves && r.SetupSlack >= base.SetupSlack {
				t.Errorf("setup slack did not worsen: %g vs base %g", r.SetupSlack, base.SetupSlack)
			}
			if !tc.setupMoves && math.Abs(r.SetupSlack-base.SetupSlack) > 1e-12 {
				t.Errorf("setup slack moved: %g vs base %g", r.SetupSlack, base.SetupSlack)
			}
			if tc.holdMoves && r.HoldSlack >= base.HoldSlack {
				t.Errorf("hold slack did not worsen: %g vs base %g", r.HoldSlack, base.HoldSlack)
			}
			if !tc.holdMoves && math.Abs(r.HoldSlack-base.HoldSlack) > 1e-12 {
				t.Errorf("hold slack moved: %g vs base %g", r.HoldSlack, base.HoldSlack)
			}
		})
	}
}

// TestCornerMarginScale checks the margin derate reaches the setup/hold
// checks: scaling the library margins by k shifts the setup slack by
// exactly (k−1)·margin (the DFF setup margin is 0.08 in the builtin
// library).
func TestCornerMarginScale(t *testing.T) {
	nominal := ctxFor(t, cornerSDC)
	base := endpointResult(t, nominal, "rX/D")
	scaled := ctxForCorner(t, cornerSDC, &library.Corner{Name: "m", MarginScale: 2})
	r := endpointResult(t, scaled, "rX/D")
	if diff := base.SetupSlack - r.SetupSlack; math.Abs(diff-0.08) > 1e-9 {
		t.Errorf("setup slack shift = %g, want 0.08 (margin 0.08 doubled)", diff)
	}
	if diff := base.HoldSlack - r.HoldSlack; math.Abs(diff-0.03) > 1e-9 {
		t.Errorf("hold slack shift = %g, want 0.03 (margin 0.03 doubled)", diff)
	}
}

// TestCornerNilBitIdentity is the regression guard that a nil corner is
// the historical path bit for bit: every delay word and both slacks of a
// nil-corner context equal a pre-corner build's, which we pin by
// asserting nil and an explicitly neutral corner agree exactly (the
// neutral corner multiplies by 1.0, which is exact in IEEE 754).
func TestCornerNilBitIdentity(t *testing.T) {
	nilCtx := ctxFor(t, cornerSDC)
	neutral := ctxForCorner(t, cornerSDC, &library.Corner{Name: "typ"})
	for ai := int32(0); ai < int32(nilCtx.G.NumArcs()); ai++ {
		if nilCtx.delays[ai] != neutral.delays[ai] {
			t.Fatalf("arc %d delays differ between nil and neutral corner: %+v vs %+v",
				ai, nilCtx.delays[ai], neutral.delays[ai])
		}
	}
	a, b := endpointResult(t, nilCtx, "rX/D"), endpointResult(t, neutral, "rX/D")
	if a.SetupSlack != b.SetupSlack || a.HoldSlack != b.HoldSlack {
		t.Fatalf("slacks differ between nil and neutral corner: %+v vs %+v", a, b)
	}
}

// TestCornerFingerprint pins the content-address contract: a nil corner
// keeps the historical fingerprint, any corner changes it, and two
// corners differing in any semantic field (factors or overlay) hash
// differently while identical corners hash equal.
func TestCornerFingerprint(t *testing.T) {
	d := gen.PaperCircuit()
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	fp := func(crn *library.Corner) string {
		return FingerprintText(g, cornerSDC, Options{Corner: crn})
	}
	base := fp(nil)
	wc := library.Corner{Name: "wc", DelayScale: 1.2, SDC: "# overlay"}
	if fp(&wc) == base {
		t.Error("corner did not change the fingerprint")
	}
	same := wc
	if fp(&same) != fp(&wc) {
		t.Error("identical corners hash differently")
	}
	for name, variant := range map[string]library.Corner{
		"name":   {Name: "wc2", DelayScale: 1.2, SDC: "# overlay"},
		"factor": {Name: "wc", DelayScale: 1.3, SDC: "# overlay"},
		"early":  {Name: "wc", DelayScale: 1.2, EarlyScale: 0.9, SDC: "# overlay"},
		"margin": {Name: "wc", DelayScale: 1.2, MarginScale: 1.5, SDC: "# overlay"},
		"sdc":    {Name: "wc", DelayScale: 1.2, SDC: "# other"},
	} {
		variant := variant
		if fp(&variant) == fp(&wc) {
			t.Errorf("corner variant %q hashes equal to the original", name)
		}
	}
}
