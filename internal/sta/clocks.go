package sta

import (
	"fmt"

	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/sdc"
)

// clockKey identifies one polarity of one clock during propagation.
type clockKey struct {
	clock ClockID
	inv   bool
}

// propagateClocks walks the propagation arcs in topological order and
// computes the set of clocks (with polarity and min/max network arrival)
// present at every node. Rules:
//
//   - A root clock seeds its source nodes with arrival 0.
//   - A generated clock replaces its master at the generated clock's
//     source nodes (the master does not continue past them).
//   - Clocks traverse net and combinational cell arcs; negative-unate arcs
//     flip polarity, non-unate arcs fan out to both polarities.
//   - Clocks never cross a register (launch arcs are data-side).
//   - Constant nodes, disabled arcs and set_clock_sense -stop_propagation
//     block propagation; a stopped clock is absent from the blocking node
//     itself, matching the paper's "stops the propagation of the clock
//     from that point onwards".
func (ctx *Context) propagateClocks() error {
	g := ctx.G
	ctx.ClockTags = make([][]ClockAtNode, g.NumNodes())

	// Index seeds.
	rootAt := map[graph.NodeID][]ClockID{}
	genAt := map[graph.NodeID][]ClockID{}
	for _, c := range ctx.Clocks {
		for _, n := range c.SrcNodes {
			if c.Def.Generated {
				genAt[n] = append(genAt[n], c.ID)
			} else {
				rootAt[n] = append(rootAt[n], c.ID)
			}
		}
	}

	// Stop-propagation: node → clock set (nil set = all clocks).
	stop := map[graph.NodeID]map[ClockID]bool{}
	for _, s := range ctx.Mode.ClockSenses {
		if !s.StopPropagation {
			ctx.warnf("set_clock_sense without -stop_propagation ignored")
			continue
		}
		var clocks []ClockID
		for _, name := range s.Clocks {
			id, ok := ctx.clockByName[name]
			if !ok {
				return fmt.Errorf("set_clock_sense: unknown clock %q", name)
			}
			clocks = append(clocks, id)
		}
		for _, pin := range s.Pins {
			id, ok := g.NodeByName(pin.Name)
			if !ok {
				return fmt.Errorf("set_clock_sense: object %q not in design", pin.Name)
			}
			set := stop[id]
			if set == nil {
				set = map[ClockID]bool{}
				stop[id] = set
			}
			if len(clocks) == 0 {
				set[NoClock] = true // marker: all clocks
			}
			for _, c := range clocks {
				set[c] = true
			}
		}
	}
	stopped := func(n graph.NodeID, c ClockID) bool {
		set := stop[n]
		if set == nil {
			return false
		}
		return set[NoClock] || set[c]
	}

	type acc struct{ arrMin, arrMax float64 }
	for _, id := range g.Topo() {
		tags := map[clockKey]acc{}
		add := func(k clockKey, arrMin, arrMax float64) {
			if a, ok := tags[k]; ok {
				if arrMin < a.arrMin {
					a.arrMin = arrMin
				}
				if arrMax > a.arrMax {
					a.arrMax = arrMax
				}
				tags[k] = a
			} else {
				tags[k] = acc{arrMin, arrMax}
			}
		}
		// Incoming clock tags.
		if !ctx.NodeDisabled[id] && !ctx.Consts[id].Known() {
			for _, ai := range g.InArcs(id) {
				if ctx.ArcDisabled[ai] {
					continue
				}
				a := g.Arc(ai)
				if a.Kind == graph.LaunchArc {
					continue // clocks do not cross registers
				}
				for _, t := range ctx.ClockTags[a.From] {
					emit := func(inv bool) {
						trans := sdc.EdgeRise
						if inv {
							trans = sdc.EdgeFall
						}
						d := &ctx.delays[ai]
						add(clockKey{t.Clock, inv},
							t.ArrMin+d.sel(trans, false), t.ArrMax+d.sel(trans, true))
					}
					switch a.Unate() {
					case library.PositiveUnate:
						emit(t.Inv)
					case library.NegativeUnate:
						emit(!t.Inv)
					default:
						emit(false)
						emit(true)
					}
				}
			}
		}
		// Generated clocks start here; without -add they replace their
		// master downstream.
		if gens := genAt[id]; len(gens) > 0 {
			for _, gid := range gens {
				gc := ctx.Clocks[gid]
				masterID, ok := ctx.clockByName[gc.Def.Master]
				if !ok {
					return fmt.Errorf("generated clock %s: unknown master %q", gc.Def.Name, gc.Def.Master)
				}
				first := true
				var inherit acc
				for k, a := range tags {
					if k.clock == masterID {
						if first || a.arrMax > inherit.arrMax {
							inherit = a
						}
						first = false
						if !gc.Def.Add {
							delete(tags, k)
						}
					}
				}
				if first {
					ctx.warnf("generated clock %s: master %s does not reach source %s",
						gc.Def.Name, gc.Def.Master, g.Node(id).Name)
					continue
				}
				add(clockKey{gid, gc.Def.Invert}, inherit.arrMin, inherit.arrMax)
			}
		}
		// Root clocks seed here.
		for _, cid := range rootAt[id] {
			if !ctx.Consts[id].Known() && !ctx.NodeDisabled[id] {
				add(clockKey{cid, false}, 0, 0)
			}
		}
		// Apply stop_propagation.
		for k := range tags {
			if stopped(id, k.clock) {
				delete(tags, k)
			}
		}
		if len(tags) == 0 {
			continue
		}
		out := make([]ClockAtNode, 0, len(tags))
		for k, a := range tags {
			out = append(out, ClockAtNode{Clock: k.clock, Inv: k.inv, ArrMin: a.arrMin, ArrMax: a.arrMax})
		}
		// Deterministic order for reports and comparisons.
		sortClockTags(out)
		ctx.ClockTags[id] = out
	}
	return nil
}

func sortClockTags(tags []ClockAtNode) {
	for i := 1; i < len(tags); i++ {
		for j := i; j > 0 && lessClockTag(tags[j], tags[j-1]); j-- {
			tags[j], tags[j-1] = tags[j-1], tags[j]
		}
	}
}

func lessClockTag(a, b ClockAtNode) bool {
	if a.Clock != b.Clock {
		return a.Clock < b.Clock
	}
	return !a.Inv && b.Inv
}

// ClocksAt returns the clock tags at a node.
func (ctx *Context) ClocksAt(id graph.NodeID) []ClockAtNode { return ctx.ClockTags[id] }

// ClockNamesAt returns the (deduplicated) clock names present at a node,
// for cross-mode comparison during merging.
func (ctx *Context) ClockNamesAt(id graph.NodeID) []string {
	var out []string
	seen := map[ClockID]bool{}
	for _, t := range ctx.ClockTags[id] {
		if !seen[t.Clock] {
			seen[t.Clock] = true
			out = append(out, ctx.Clocks[t.Clock].Def.Name)
		}
	}
	return out
}

// CaptureClocksAt lists capture clock tags at a register clock pin or the
// IO-delay reference clocks at an output port.
func (ctx *Context) CaptureClocksAt(end graph.NodeID) []ClockAtNode {
	node := ctx.G.Node(end)
	if node.IsRegData {
		// The register's clock pin node.
		inst := node.Inst
		cp := inst.Cell.ClockPin()
		if cpID, ok := ctx.G.NodeByName(inst.Name + "/" + cp); ok {
			return ctx.ClockTags[cpID]
		}
		return nil
	}
	// Output port: reference clocks of its output delays, as virtual
	// capture tags with ideal arrival.
	var out []ClockAtNode
	for _, d := range ctx.ioByPort[end] {
		if d.IsInput || d.Clock == "" {
			continue
		}
		id, ok := ctx.clockByName[d.Clock]
		if !ok {
			continue
		}
		out = append(out, ClockAtNode{Clock: id, Inv: d.ClockFall})
	}
	sortClockTags(out)
	return out
}

// modeHasIODelay reports whether the port node has any matching delay.
func (ctx *Context) outputDelays(end graph.NodeID) []*sdc.IODelay {
	var out []*sdc.IODelay
	for _, d := range ctx.ioByPort[end] {
		if !d.IsInput {
			out = append(out, d)
		}
	}
	return out
}

func (ctx *Context) inputDelays(port graph.NodeID) []*sdc.IODelay {
	var out []*sdc.IODelay
	for _, d := range ctx.ioByPort[port] {
		if d.IsInput {
			out = append(out, d)
		}
	}
	return out
}

// ClockActive reports whether the clock participates in any timing check
// in this mode: it reaches at least one register clock pin, or an IO
// delay references it. Clocks that are defined but fully replaced or
// blocked are inactive — the exclusivity inference of the merger treats
// two clocks as coexisting only when both are active in the same mode.
func (ctx *Context) ClockActive(id ClockID) bool {
	ctx.activeOnce()
	return ctx.clockActive[id]
}

func (ctx *Context) activeOnce() {
	ctx.activeGuard.Do(ctx.computeActive)
}

func (ctx *Context) computeActive() {
	active := make([]bool, len(ctx.Clocks))
	for nid := range ctx.ClockTags {
		node := ctx.G.Node(graph.NodeID(nid))
		if !node.IsRegClock {
			continue
		}
		for _, t := range ctx.ClockTags[nid] {
			active[t.Clock] = true
		}
	}
	for _, delays := range ctx.ioByPort {
		for _, d := range delays {
			if d.Clock != "" {
				if cid, ok := ctx.clockByName[d.Clock]; ok {
					active[cid] = true
				}
			}
		}
	}
	ctx.clockActive = active
}
