package sta

import (
	"sync"

	"modemerge/internal/graph"
	"modemerge/internal/relation"
	"modemerge/internal/sdc"
)

// excMatcher precompiles one exception's point lists to node sets and
// clock sets for fast path matching.
type excMatcher struct {
	e *sdc.Exception

	// inert marks an exception none of whose anchors resolved in this
	// context (e.g. a uniquified exception referencing a clock that only
	// exists in another mode) — it can never match a path.
	inert bool

	fromNodes  map[graph.NodeID]bool // empty map = no pin restriction
	fromClocks map[ClockID]bool
	fromEdge   sdc.EdgeSel

	throughs  []map[graph.NodeID]bool
	thruEdges []sdc.EdgeSel

	toNodes  map[graph.NodeID]bool
	toClocks map[ClockID]bool
	toEdge   sdc.EdgeSel
}

// progress values per exception inside a vector.
const progDead = -1 // cannot match on this path (from side failed)

// excSet is the compiled exception set of a context plus the progress
// vector interner. The interner is safe for concurrent use so relation
// queries (pass-2 per-endpoint propagations) can run in parallel on one
// context.
type excSet struct {
	ctx      *Context
	matchers []excMatcher

	// nodeMatchers indexes, per node, the matchers with a through group
	// containing that node — advance() only needs to look at those. A
	// node-indexed slice, not a map: advance() consults it once per (tag,
	// arc) on every propagation, and most nodes carry no matchers.
	nodeMatchers [][]int32

	// Progress vector interning: id → vector; vectors are immutable once
	// stored. mu guards both structures.
	mu     sync.RWMutex
	vecs   [][]int8
	vecIDs map[string]int32

	// Per-vector candidate indices, computed lazily: fullByVec lists the
	// matchers fully matched by the vector (the only ones completed() can
	// return), aliveByVec the matchers not dead on it (the only ones the
	// pass-3 suffix DP can consult). Both depend on the vector alone, and
	// vectors are immutable, so the memos never invalidate. candMu guards
	// both maps.
	candMu     sync.RWMutex
	fullByVec  map[int32][]int32
	aliveByVec map[int32][]int32

	// seedVec memo: the seed is pure in its arguments (matchers are
	// immutable after compile), and every propagation re-seeds the same
	// launch pins — an O(matchers) scan plus a vector interning each
	// time. seedMu guards the map.
	seedMu   sync.RWMutex
	seedMemo map[seedKey]int32
}

type seedKey struct {
	start       graph.NodeID
	launch      ClockID
	edge, trans sdc.EdgeSel
}

func newExcSet(ctx *Context) *excSet {
	s := &excSet{ctx: ctx, vecIDs: map[string]int32{}}
	for _, e := range ctx.Mode.Exceptions {
		m := excMatcher{e: e,
			fromNodes:  map[graph.NodeID]bool{},
			fromClocks: map[ClockID]bool{},
			toNodes:    map[graph.NodeID]bool{},
			toClocks:   map[ClockID]bool{},
		}
		m.fromEdge = e.From.Edge
		m.toEdge = e.To.Edge
		for _, pin := range e.From.Pins {
			if id, ok := ctx.G.NodeByName(pin.Name); ok {
				m.fromNodes[expandStartpoint(ctx.G, id)] = true
			} else {
				ctx.warnf("%s line %d: -from object %q not in design", e.Kind, e.Line, pin.Name)
			}
		}
		for _, c := range e.From.Clocks {
			if id, ok := ctx.clockByName[c]; ok {
				m.fromClocks[id] = true
			} else {
				ctx.warnf("%s line %d: -from clock %q undefined in this mode", e.Kind, e.Line, c)
			}
		}
		for _, pin := range e.To.Pins {
			if id, ok := ctx.G.NodeByName(pin.Name); ok {
				m.toNodes[id] = true
			} else {
				ctx.warnf("%s line %d: -to object %q not in design", e.Kind, e.Line, pin.Name)
			}
		}
		for _, c := range e.To.Clocks {
			if id, ok := ctx.clockByName[c]; ok {
				m.toClocks[id] = true
			} else {
				ctx.warnf("%s line %d: -to clock %q undefined in this mode", e.Kind, e.Line, c)
			}
		}
		for _, t := range e.Throughs {
			nodes := map[graph.NodeID]bool{}
			for _, pin := range t.Pins {
				if id, ok := ctx.G.NodeByName(pin.Name); ok {
					nodes[id] = true
				} else {
					ctx.warnf("%s line %d: -through object %q not in design", e.Kind, e.Line, pin.Name)
				}
			}
			m.throughs = append(m.throughs, nodes)
			m.thruEdges = append(m.thruEdges, t.Edge)
		}
		// A side whose anchors were all specified but none resolved makes
		// the exception inert in this context.
		if !e.From.Empty() && len(m.fromNodes) == 0 && len(m.fromClocks) == 0 {
			m.inert = true
		}
		if !e.To.Empty() && len(m.toNodes) == 0 && len(m.toClocks) == 0 {
			m.inert = true
		}
		for _, nodes := range m.throughs {
			if len(nodes) == 0 {
				m.inert = true
			}
		}
		s.matchers = append(s.matchers, m)
	}
	s.nodeMatchers = make([][]int32, ctx.G.NumNodes())
	for i := range s.matchers {
		seen := map[graph.NodeID]bool{}
		for _, nodes := range s.matchers[i].throughs {
			for n := range nodes {
				if !seen[n] {
					seen[n] = true
					s.nodeMatchers[n] = append(s.nodeMatchers[n], int32(i))
				}
			}
		}
	}
	return s
}

// expandStartpoint maps a -from anchor onto the startpoint node the data
// propagation uses: a register's Q (or D) pin anchor is normalized to the
// register's clock pin, matching the paper's startpoint naming (rA/CP).
func expandStartpoint(g *graph.Graph, id graph.NodeID) graph.NodeID {
	node := g.Node(id)
	if node.Inst != nil && node.Inst.Cell.Sequential {
		cp := node.Inst.Cell.ClockPin()
		if cpID, ok := g.NodeByName(node.Inst.Name + "/" + cp); ok {
			return cpID
		}
	}
	return id
}

// Count returns the number of exceptions.
func (s *excSet) Count() int { return len(s.matchers) }

// internVec returns the id for a progress vector, interning it.
func (s *excSet) internVec(v []int8) int32 {
	key := string(int8sToBytes(v))
	s.mu.RLock()
	id, ok := s.vecIDs[key]
	s.mu.RUnlock()
	if ok {
		return id
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.vecIDs[key]; ok {
		return id
	}
	id = int32(len(s.vecs))
	s.vecs = append(s.vecs, append([]int8(nil), v...))
	s.vecIDs[key] = id
	return id
}

func int8sToBytes(v []int8) []byte {
	b := make([]byte, len(v))
	for i, x := range v {
		b[i] = byte(x)
	}
	return b
}

// vec returns the vector for an id. The returned slice is immutable.
func (s *excSet) vec(id int32) []int8 {
	s.mu.RLock()
	v := s.vecs[id]
	s.mu.RUnlock()
	return v
}

// seedVec builds the initial progress vector for a path starting at the
// given node with the given launch clock and launch edge. Exceptions whose
// from side cannot match the path are dead; others start at progress 0 and
// are immediately advanced through the startpoint node itself.
func (s *excSet) seedVec(start graph.NodeID, launch ClockID, launchEdge sdc.EdgeSel, trans sdc.EdgeSel) int32 {
	key := seedKey{start: start, launch: launch, edge: launchEdge, trans: trans}
	s.seedMu.RLock()
	id, ok := s.seedMemo[key]
	s.seedMu.RUnlock()
	if ok {
		return id
	}
	v := make([]int8, len(s.matchers))
	for i := range s.matchers {
		m := &s.matchers[i]
		if m.inert || !m.fromMatches(start, launch, launchEdge) {
			v[i] = progDead
			continue
		}
		v[i] = advanceOne(m, 0, start, trans)
	}
	id = s.internVec(v)
	s.seedMu.Lock()
	if s.seedMemo == nil {
		s.seedMemo = map[seedKey]int32{}
	}
	s.seedMemo[key] = id
	s.seedMu.Unlock()
	return id
}

// fromMatches applies the -from side. A list mixing pins and clocks is an
// OR per SDC; an empty list matches everything.
func (m *excMatcher) fromMatches(start graph.NodeID, launch ClockID, launchEdge sdc.EdgeSel) bool {
	if len(m.fromNodes) == 0 && len(m.fromClocks) == 0 {
		return true
	}
	if !edgeOK(m.fromEdge, launchEdge) {
		return false
	}
	if m.fromNodes[start] {
		return true
	}
	return launch != NoClock && m.fromClocks[launch]
}

// toMatches applies the -to side at an endpoint with a capture clock and
// the data transition there.
func (m *excMatcher) toMatches(end graph.NodeID, capture ClockID, trans sdc.EdgeSel) bool {
	if len(m.toNodes) == 0 && len(m.toClocks) == 0 {
		return true
	}
	if !edgeOK(m.toEdge, trans) {
		return false
	}
	if m.toNodes[end] {
		return true
	}
	return capture != NoClock && m.toClocks[capture]
}

func edgeOK(want, have sdc.EdgeSel) bool {
	return want == sdc.EdgeBoth || have == sdc.EdgeBoth || want == have
}

// advanceOne advances one exception's progress through a node.
func advanceOne(m *excMatcher, p int8, node graph.NodeID, trans sdc.EdgeSel) int8 {
	for int(p) < len(m.throughs) && m.throughs[p][node] && edgeOK(m.thruEdges[p], trans) {
		p++
	}
	return p
}

// advance walks a progress vector through a node, returning the interned
// id of the result (which may be the input id unchanged). Only matchers
// with a through anchor on this node can change.
func (s *excSet) advance(id int32, node graph.NodeID, trans sdc.EdgeSel) int32 {
	cands := s.nodeMatchers[node]
	if len(cands) == 0 {
		return id
	}
	v := s.vec(id)
	var out []int8
	for _, i := range cands {
		if v[i] == progDead {
			continue
		}
		np := advanceOne(&s.matchers[i], v[i], node, trans)
		if np != v[i] {
			if out == nil {
				out = append([]int8(nil), v...)
			}
			out[i] = np
		}
	}
	if out == nil {
		return id
	}
	return s.internVec(out)
}

// fullCandidates returns (memoized per vector) the ascending matcher
// indices whose through progress is complete — the only exceptions
// completed() can ever return for this vector.
func (s *excSet) fullCandidates(vecID int32) []int32 {
	s.candMu.RLock()
	cands, ok := s.fullByVec[vecID]
	s.candMu.RUnlock()
	if ok {
		return cands
	}
	v := s.vec(vecID)
	for i := range s.matchers {
		if v[i] != progDead && int(v[i]) == len(s.matchers[i].throughs) {
			cands = append(cands, int32(i))
		}
	}
	s.candMu.Lock()
	if s.fullByVec == nil {
		s.fullByVec = map[int32][]int32{}
	}
	s.fullByVec[vecID] = cands
	s.candMu.Unlock()
	return cands
}

// aliveCandidates returns (memoized per vector) the ascending matcher
// indices not dead on this vector.
func (s *excSet) aliveCandidates(vecID int32) []int32 {
	s.candMu.RLock()
	cands, ok := s.aliveByVec[vecID]
	s.candMu.RUnlock()
	if ok {
		return cands
	}
	v := s.vec(vecID)
	for i := range v {
		if v[i] != progDead {
			cands = append(cands, int32(i))
		}
	}
	s.candMu.Lock()
	if s.aliveByVec == nil {
		s.aliveByVec = map[int32][]int32{}
	}
	s.aliveByVec[vecID] = cands
	s.candMu.Unlock()
	return cands
}

// completed lists the exceptions fully matched for a path ending at end
// with the given capture clock, data transition and check side.
func (s *excSet) completed(vecID int32, end graph.NodeID, capture ClockID, trans sdc.EdgeSel, check relation.CheckType) []*sdc.Exception {
	var out []*sdc.Exception
	for _, i := range s.fullCandidates(vecID) {
		m := &s.matchers[i]
		if !m.appliesTo(check) {
			continue
		}
		if !m.toMatches(end, capture, trans) {
			continue
		}
		out = append(out, m.e)
	}
	return out
}

// appliesTo reports whether the exception applies to the setup (max) or
// hold (min) check side. set_max_delay is max-side, set_min_delay is
// min-side; -setup/-hold flags narrow false paths and multicycles.
func (m *excMatcher) appliesTo(check relation.CheckType) bool {
	switch m.e.Kind {
	case sdc.MaxDelay:
		return check == relation.Setup
	case sdc.MinDelay:
		return check == relation.Hold
	}
	switch m.e.SetupHold {
	case sdc.MaxOnly:
		return check == relation.Setup
	case sdc.MinOnly:
		return check == relation.Hold
	default:
		return true
	}
}

// stateOf resolves the winning exception into a relation state.
func stateOf(winner *sdc.Exception) relation.State {
	if winner == nil {
		return relation.StateValid
	}
	switch winner.Kind {
	case sdc.FalsePath:
		return relation.StateFalse
	case sdc.MulticyclePath:
		return relation.MCP(winner.Multiplier)
	case sdc.MaxDelay:
		return relation.MaxDelay(winner.Value)
	case sdc.MinDelay:
		return relation.MinDelay(winner.Value)
	default:
		return relation.StateValid
	}
}
