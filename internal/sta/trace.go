package sta

import (
	"fmt"
	"math"
	"strings"

	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/sdc"
)

// PathStep is one pin on a traced timing path.
type PathStep struct {
	Node    string
	Trans   sdc.EdgeSel
	Arrival float64 // cumulative max arrival at the pin
	Incr    float64 // delay increment from the previous step
}

// Path is one traced critical path.
type Path struct {
	Launch string // launch clock name ("" for unclocked)
	Steps  []PathStep
}

// String renders the path in report_timing style.
func (p *Path) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  launch clock: %s\n", p.Launch)
	fmt.Fprintf(&b, "  %-36s %5s %9s %9s\n", "point", "edge", "incr", "arrival")
	for _, s := range p.Steps {
		edge := "r"
		if s.Trans == sdc.EdgeFall {
			edge = "f"
		}
		fmt.Fprintf(&b, "  %-36s %5s %9.4f %9.4f\n", s.Node, edge, s.Incr, s.Arrival)
	}
	return b.String()
}

// TraceWorstArrival re-traces the maximum-arrival data path into an
// endpoint by walking the tag lattice backwards. It returns false when no
// clocked data reaches the endpoint.
func (ctx *Context) TraceWorstArrival(end graph.NodeID) (*Path, bool) {
	tags := ctx.tags()
	m := tags[end]
	var worst dataTag
	worstArr := math.Inf(-1)
	found := false
	for _, te := range m.entries {
		if te.tag.launch == NoClock {
			continue
		}
		if te.arr.max > worstArr {
			worst, worstArr, found = te.tag, te.arr.max, true
		}
	}
	if !found {
		return nil, false
	}
	path := &Path{Launch: ctx.Clocks[worst.launch].Def.Name}
	var rev []PathStep

	cur := end
	curTag := worst
	curArr := worstArr
	const eps = 1e-9
	for {
		rev = append(rev, PathStep{Node: ctx.G.Node(cur).Name, Trans: curTag.trans, Arrival: curArr})
		prevNode, prevTag, prevArr, incr, ok := ctx.traceStep(tags, cur, curTag, curArr, eps)
		if !ok {
			break
		}
		rev[len(rev)-1].Incr = incr
		cur, curTag, curArr = prevNode, prevTag, prevArr
	}
	// Reverse into launch→capture order.
	for i := len(rev) - 1; i >= 0; i-- {
		path.Steps = append(path.Steps, rev[i])
	}
	return path, true
}

// traceStep finds a predecessor (node, tag, arrival) explaining the
// current arrival. It returns ok=false at a path startpoint.
func (ctx *Context) traceStep(tags []tagMap, node graph.NodeID, tag dataTag, arr float64, eps float64) (graph.NodeID, dataTag, float64, float64, bool) {
	g := ctx.G
	for _, ai := range g.InArcs(node) {
		if ctx.ArcDisabled[ai] {
			continue
		}
		a := g.Arc(ai)
		d := ctx.delays[ai].sel(tag.trans, true)
		if a.Kind == graph.LaunchArc {
			// Startpoint: the launch arc from the register clock pin.
			for _, ct := range ctx.ClockTags[a.From] {
				if ct.Clock != tag.launch {
					continue
				}
				base := 0.0
				if ctx.Clocks[ct.Clock].Propagated {
					base = ct.ArrMax
				}
				if math.Abs(base+d-arr) <= eps {
					// One final step at the launching clock pin; the next
					// iteration finds no data predecessor and stops.
					return a.From, dataTag{launch: tag.launch, launchEdge: tag.launchEdge,
						trans: tag.launchEdge, start: tag.start, vec: tag.vec}, base, d, true
				}
			}
			continue
		}
		for _, pte := range tags[a.From].entries {
			pt, pa := pte.tag, pte.arr
			if pt.launch != tag.launch || pt.launchEdge != tag.launchEdge || pt.start != tag.start {
				continue
			}
			// The predecessor transition must map onto ours through the
			// arc's unateness.
			switch a.Unate() {
			case library.PositiveUnate:
				if pt.trans != tag.trans {
					continue
				}
			case library.NegativeUnate:
				if pt.trans == tag.trans {
					continue
				}
			}
			if ctx.exc.advance(pt.vec, node, tag.trans) != tag.vec {
				continue
			}
			if math.Abs(pa.max+d-arr) <= eps {
				return a.From, pt, pa.max, d, true
			}
		}
	}
	return 0, dataTag{}, 0, 0, false
}
