package etm

import (
	"strings"
	"testing"

	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

// testMaster builds the reference block: one registered path (d → r0 →
// q) plus a reconvergent combinational interface path (d → XOR2(d,
// BUF(d)) → OR with the register → q).
func testMaster(t *testing.T) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("blkm", library.Default())
	b.Port("ck", netlist.In)
	b.Port("d", netlist.In)
	b.Port("q", netlist.Out)
	b.Inst("CLKBUF", "cb", map[string]string{"A": "ck", "Z": "ckn"})
	b.Inst("DFF", "r0", map[string]string{"CP": "ckn", "D": "d", "Q": "rq"})
	b.Inst("BUF", "bf", map[string]string{"A": "d", "Z": "dbuf"})
	b.Inst("XOR2", "x0", map[string]string{"A": "d", "B": "dbuf", "Z": "xout"})
	b.Inst("OR2", "o0", map[string]string{"A": "rq", "B": "xout", "Z": "q"})
	return b.MustBuild()
}

// testHier wraps the master under a top with a clock buffer (so a
// generated clock can be defined on a real pin) and a gated data input
// (so a top-level case constant reaches the block boundary).
func testHier(t *testing.T) *netlist.HierDesign {
	t.Helper()
	master := testMaster(t)
	b := netlist.NewBuilder("htop", master.Lib)
	b.Port("clk", netlist.In)
	b.Port("din", netlist.In)
	b.Port("en", netlist.In)
	b.Port("dout", netlist.Out)
	b.Inst("CLKBUF", "gdrv", map[string]string{"A": "clk", "Z": "gck"})
	b.Inst("AND2", "gate", map[string]string{"A": "din", "B": "en", "Z": "dg"})
	top := b.MustBuild()
	return &netlist.HierDesign{
		Name: "htop", Lib: master.Lib, Top: top,
		Blocks: []*netlist.BlockInst{{
			Name: "b0", Master: master,
			Binds: map[string]string{"ck": "gck", "d": "dg", "q": "dout"},
		}},
	}
}

func flatContext(t *testing.T, h *netlist.HierDesign, name, text string) (*graph.Graph, *sta.Context) {
	t.Helper()
	flat, err := h.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(flat)
	if err != nil {
		t.Fatal(err)
	}
	mode, _, err := sdc.Parse(name, text, flat)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := sta.NewContext(g, mode, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g, ctx
}

func extractMaster(t *testing.T, master *netlist.Design) (*graph.Graph, *Model) {
	t.Helper()
	mg, err := graph.Build(master)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Extract(mg)
	if err != nil {
		t.Fatal(err)
	}
	return mg, m
}

func TestExtractModelShape(t *testing.T) {
	_, m := extractMaster(t, testMaster(t))
	if len(m.ClockIns) != 1 || m.ClockIns[0] != "ck" {
		t.Errorf("ClockIns = %v, want [ck]", m.ClockIns)
	}
	if len(m.Inputs) != 1 || m.Inputs[0] != "d" {
		t.Errorf("Inputs = %v, want [d]", m.Inputs)
	}
	if len(m.Outputs) != 1 || m.Outputs[0] != "q" {
		t.Errorf("Outputs = %v, want [q]", m.Outputs)
	}
	if len(m.CaptureClasses) != 1 || m.CaptureClasses[0] != (Class{Port: "d", Clock: "ck"}) {
		t.Errorf("CaptureClasses = %v", m.CaptureClasses)
	}
	if len(m.LaunchClasses) != 1 || m.LaunchClasses[0] != (Class{Port: "q", Clock: "ck"}) {
		t.Errorf("LaunchClasses = %v", m.LaunchClasses)
	}
	if m.RepPins["d"] == "" || !strings.Contains(m.RepPins["d"], "/") {
		t.Errorf("RepPins[d] = %q", m.RepPins["d"])
	}

	// Round-trip through the cache serialization.
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var m2 Model
	if err := m2.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if m2.Summary() != m.Summary() || m2.GraphFingerprint != m.GraphFingerprint {
		t.Error("model did not survive the serialization round-trip")
	}
}

// TestExtractReconvergentInterfacePaths: d reaches q both through
// XOR2(d, BUF(d)) branches, so the single d→q arc must report a depth
// spread.
func TestExtractReconvergentInterfacePaths(t *testing.T) {
	_, m := extractMaster(t, testMaster(t))
	if len(m.Arcs) != 1 {
		t.Fatalf("Arcs = %v, want one d→q arc", m.Arcs)
	}
	a := m.Arcs[0]
	if a.In != "d" || a.Out != "q" {
		t.Fatalf("arc = %+v", a)
	}
	if a.MinDepth >= a.MaxDepth {
		t.Errorf("reconvergence not captured: MinDepth=%d MaxDepth=%d", a.MinDepth, a.MaxDepth)
	}
}

// TestProjectGeneratedClockCrossingBoundary: a generated clock defined
// on a top-level pin must project onto the block's clock input as a
// plain clock with its resolved period and waveform.
func TestProjectGeneratedClockCrossingBoundary(t *testing.T) {
	h := testHier(t)
	_, ctx := flatContext(t, h, "m0", `
create_clock -name clk -period 2 [get_ports clk]
create_generated_clock -name gclk -source [get_ports clk] -divide_by 2 [get_pins gdrv/Z]
set_input_delay 0.5 -clock clk [get_ports din]
`)
	_, model := extractMaster(t, h.Blocks[0].Master)
	reach := ComputeReach(ctx)
	pm, text, err := ProjectMode(ctx, reach, model, "b0/", h.Blocks[0].Master)
	if err != nil {
		t.Fatal(err)
	}
	gc := pm.ClockByName("gclk")
	if gc == nil {
		t.Fatalf("generated clock did not project; got clocks %v in:\n%s", pm.ClockNames(), text)
	}
	if gc.Generated {
		t.Error("projected clock must be a plain clock, not a generated one")
	}
	if gc.Period != 4 {
		t.Errorf("projected period = %v, want resolved 4", gc.Period)
	}
	if len(gc.Sources) != 1 || gc.Sources[0].Name != "ck" {
		t.Errorf("projected sources = %v, want the ck port", gc.Sources)
	}
	// The delayed din flows into the block data input, so the projection
	// must synthesize a launch-covering input delay there.
	found := false
	for _, d := range pm.IODelays {
		if d.IsInput && len(d.Ports) == 1 && d.Ports[0].Name == "d" {
			found = true
		}
	}
	if !found {
		t.Errorf("no input delay projected onto d:\n%s", text)
	}
}

// TestProjectModeDependentBoundaryConstant: the same boundary pin is
// constant in one mode (en=0 gates it) and toggling in another; the
// projections must differ exactly there.
func TestProjectModeDependentBoundaryConstant(t *testing.T) {
	h := testHier(t)
	base := `
create_clock -name clk -period 2 [get_ports clk]
set_input_delay 0.5 -clock clk [get_ports din]
`
	_, model := extractMaster(t, h.Blocks[0].Master)
	caseOn := func(text string) []*sdc.CaseAnalysis {
		_, ctx := flatContext(t, h, "m", text)
		pm, _, err := ProjectMode(ctx, ComputeReach(ctx), model, "b0/", h.Blocks[0].Master)
		if err != nil {
			t.Fatal(err)
		}
		var out []*sdc.CaseAnalysis
		for _, c := range pm.Cases {
			for _, o := range c.Objects {
				if o.Name == "d" {
					out = append(out, c)
				}
			}
		}
		return out
	}
	if cs := caseOn(base); len(cs) != 0 {
		t.Errorf("free mode projected a boundary constant: %v", cs)
	}
	cs := caseOn(base + "set_case_analysis 0 [get_ports en]\n")
	if len(cs) != 1 || cs[0].Value != library.L0 {
		t.Fatalf("gated mode: projected cases on d = %v, want one constant 0", cs)
	}
}

// TestExtractPassThroughBlock: an empty-interior block (input wired
// straight to output) still yields a model with the port-to-port arc,
// and the abstract shell reproduces it as a combinational feed.
func TestExtractPassThroughBlock(t *testing.T) {
	b := netlist.NewBuilder("ptm", library.Default())
	b.Net("w")
	b.PortOnNet("pin", netlist.In, "w")
	b.PortOnNet("pout", netlist.Out, "w")
	master := b.MustBuild()
	_, m := extractMaster(t, master)
	if len(m.LaunchClasses)+len(m.CaptureClasses)+len(m.ClockIns) != 0 {
		t.Errorf("pass-through block has registered classes: %s", m.Summary())
	}
	if len(m.Arcs) != 1 || m.Arcs[0].In != "pin" || m.Arcs[0].Out != "pout" {
		t.Fatalf("Arcs = %v, want pin→pout", m.Arcs)
	}

	tb := netlist.NewBuilder("pttop", master.Lib)
	tb.Port("din", netlist.In)
	tb.Port("dout", netlist.Out)
	h := &netlist.HierDesign{Name: "pttop", Lib: master.Lib, Top: tb.MustBuild(),
		Blocks: []*netlist.BlockInst{{Name: "p0", Master: master,
			Binds: map[string]string{"pin": "din", "pout": "dout"}}}}
	abs, err := BuildAbstract(h, map[string]*Model{"ptm": m})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := abs.FindPin("p0/__comb0/A"); err != nil {
		t.Errorf("abstract shell missing the pass-through feed: %v", err)
	}
}

// TestExtractRejectsInternalClock: a register clocked from inside the
// block (no boundary source) must fail extraction loudly — a silent gap
// would make the hierarchical merge optimistic.
func TestExtractRejectsInternalClock(t *testing.T) {
	b := netlist.NewBuilder("badblk", library.Default())
	b.Port("d", netlist.In)
	b.Port("q", netlist.Out)
	b.Inst("TIEHI", "th", map[string]string{"Z": "ckn"})
	b.Inst("DFF", "r0", map[string]string{"CP": "ckn", "D": "d", "Q": "q"})
	master := b.MustBuild()
	mg, err := graph.Build(master)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Extract(mg); err == nil {
		t.Fatal("Extract accepted a register with no boundary clock source")
	}
}

// TestBuildAbstractShell: the shell must carry one capture register per
// capture class, one launch register per launch class, and a combiner
// driving the bound output net.
func TestBuildAbstractShell(t *testing.T) {
	h := testHier(t)
	_, m := extractMaster(t, h.Blocks[0].Master)
	abs, err := BuildAbstract(h, map[string]*Model{"blkm": m})
	if err != nil {
		t.Fatal(err)
	}
	for _, pin := range []string{"b0/__cap0/D", "b0/__cap0/CP", "b0/__lreg0/CP"} {
		if _, _, err := abs.FindPin(pin); err != nil {
			t.Errorf("abstract shell missing %s: %v", pin, err)
		}
	}
	// Top-level cells survive untouched.
	if abs.InstByName("gdrv") == nil || abs.InstByName("gate") == nil {
		t.Error("abstract top lost real top-level cells")
	}
	if _, err := graph.Build(abs); err != nil {
		t.Errorf("abstract design does not build a graph: %v", err)
	}

	// FilterMode keeps top-level statements and drops interior anchors.
	mode, _, err := sdc.Parse("m", `
create_clock -name clk -period 2 [get_ports clk]
set_input_delay 0.5 -clock clk [get_ports din]
set_false_path -from [get_ports din] -to [get_pins b0/r0/D]
`, mustFlatten(t, h))
	if err != nil {
		t.Fatal(err)
	}
	fm := FilterMode(mode, abs)
	if len(fm.Clocks) != 1 || len(fm.IODelays) != 1 {
		t.Errorf("filtered mode lost top-level statements: clocks=%d io=%d", len(fm.Clocks), len(fm.IODelays))
	}
	if len(fm.Exceptions) != 0 {
		t.Errorf("filtered mode kept an interior-anchored exception: %v", fm.Exceptions)
	}
}

func mustFlatten(t *testing.T, h *netlist.HierDesign) *netlist.Design {
	t.Helper()
	d, err := h.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	return d
}
