package etm

import (
	"fmt"
	"strings"

	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
)

// BuildAbstract synthesizes the abstract top: the real top-level cells,
// nets and ports of the hierarchical design, with every block instance
// replaced by a shell built from its extracted model —
//
//   - one capture register per capture class (clock pin on the bound
//     clock net, data pin on the bound input net),
//   - one launch register per launch class, and
//   - an OR-tree combiner driving each bound output net from the block's
//     launch registers and combinational interface arcs.
//
// The shell times a superset of the flat design's cross-block relations:
// interface arcs and launch/capture classes are structural maxima over
// all modes, so any flat path through the block boundary has an abstract
// counterpart through the same top-level pins. Refinements justified on
// the abstract design and anchored to real top-level pins are therefore
// sound on the flat design.
func BuildAbstract(h *netlist.HierDesign, models map[string]*Model) (*netlist.Design, error) {
	b := netlist.NewBuilder(h.Name+"_abstract", h.Lib)
	for _, p := range h.Top.Ports {
		b.Port(p.Name, p.Dir)
	}
	for _, inst := range h.Top.Insts {
		conns := make(map[string]string, len(inst.Conns))
		for i, net := range inst.Conns {
			if net != nil {
				conns[inst.Cell.Pins[i].Name] = net.Name
			}
		}
		b.Inst(inst.Cell.Name, inst.Name, conns)
	}
	for _, blk := range h.Blocks {
		mdl := models[blk.Master.Name]
		if mdl == nil {
			return nil, fmt.Errorf("etm: no model for master %s (block %s)", blk.Master.Name, blk.Name)
		}
		shellBlock(b, blk, mdl)
	}
	return b.Build()
}

// shellBlock emits one block instance's shell cells into the builder.
func shellBlock(b *netlist.Builder, blk *netlist.BlockInst, mdl *Model) {
	// Capture registers: bound input net → D, bound clock net → CP.
	for i, c := range mdl.CaptureClasses {
		b.Inst("DFF", fmt.Sprintf("%s/__cap%d", blk.Name, i), map[string]string{
			"CP": blk.BindOf(c.Clock),
			"D":  blk.BindOf(c.Port),
		})
	}
	// Launch registers: Q goes to an intermediate net that the output
	// combiner picks up; D loops back so the cell has no dangling input.
	launchNet := map[string][]string{} // output port → lreg Q nets
	for i, c := range mdl.LaunchClasses {
		q := fmt.Sprintf("%s/__lq%d", blk.Name, i)
		b.Inst("DFF", fmt.Sprintf("%s/__lreg%d", blk.Name, i), map[string]string{
			"CP": blk.BindOf(c.Clock),
			"D":  q,
			"Q":  q,
		})
		launchNet[c.Port] = append(launchNet[c.Port], q)
	}
	// Output combiners: OR together the launch registers and the bound
	// nets of the combinational interface arcs feeding each output.
	arcSrc := map[string][]string{}
	for _, a := range mdl.Arcs {
		arcSrc[a.Out] = append(arcSrc[a.Out], blk.BindOf(a.In))
	}
	comb := 0
	for _, out := range mdl.Outputs {
		srcs := append(append([]string{}, launchNet[out]...), arcSrc[out]...)
		target := blk.BindOf(out)
		switch len(srcs) {
		case 0:
			// Undriven output: nothing inside the block reaches it.
		case 1:
			b.Inst("BUF", fmt.Sprintf("%s/__comb%d", blk.Name, comb),
				map[string]string{"A": srcs[0], "Z": target})
			comb++
		default:
			acc := srcs[0]
			for i := 1; i < len(srcs); i++ {
				z := target
				if i < len(srcs)-1 {
					z = fmt.Sprintf("%s/__or%d", blk.Name, comb)
				}
				b.Inst("OR2", fmt.Sprintf("%s/__comb%d", blk.Name, comb),
					map[string]string{"A": acc, "B": srcs[i], "Z": z})
				acc = z
				comb++
			}
		}
	}
}

// FilterMode restricts a flat member mode to the statements whose object
// references all resolve in the abstract design: top-level clocks, IO
// delays, exceptions, cases and disables survive; anything anchored on
// block-interior pins is dropped. Dropping a relaxation or a constant
// only makes the abstract member time *more* relations than the flat
// member — the safe direction for refinement harvested from the abstract
// merge.
func FilterMode(m *sdc.Mode, d *netlist.Design) *sdc.Mode {
	resolves := func(r sdc.ObjRef) bool {
		switch r.Kind {
		case sdc.PortObj:
			return d.PortByName(r.Name) != nil
		case sdc.CellObj:
			return d.InstByName(r.Name) != nil
		default:
			if !strings.Contains(r.Name, "/") {
				return d.PortByName(r.Name) != nil
			}
			_, _, err := d.FindPin(r.Name)
			return err == nil
		}
	}
	allResolve := func(refs []sdc.ObjRef) bool {
		for _, r := range refs {
			if !resolves(r) {
				return false
			}
		}
		return true
	}
	out := &sdc.Mode{Name: m.Name}
	clockKept := map[string]bool{}
	for _, c := range m.Clocks {
		ok := allResolve(c.Sources) && allResolve(c.MasterPins)
		if ok && c.Generated && c.Master != "" && !clockKept[c.Master] {
			ok = false
		}
		if ok {
			cc := *c
			out.Clocks = append(out.Clocks, &cc)
			clockKept[c.Name] = true
		}
	}
	pointOK := func(pl *sdc.PointList) bool {
		if pl.Empty() {
			return true
		}
		for _, c := range pl.Clocks {
			if !clockKept[c] {
				return false
			}
		}
		return allResolve(pl.Pins)
	}
	for _, e := range m.Exceptions {
		ok := pointOK(e.From) && pointOK(e.To)
		for _, t := range e.Throughs {
			ok = ok && pointOK(t)
		}
		if ok {
			out.Exceptions = append(out.Exceptions, e.Clone())
		}
	}
	for _, ca := range m.Cases {
		if allResolve(ca.Objects) {
			cc := *ca
			out.Cases = append(out.Cases, &cc)
		}
	}
	for _, dt := range m.Disables {
		if allResolve(dt.Objects) {
			cc := *dt
			out.Disables = append(out.Disables, &cc)
		}
	}
	for _, io := range m.IODelays {
		if clockKept[io.Clock] && allResolve(io.Ports) {
			cc := *io
			out.IODelays = append(out.IODelays, &cc)
		}
	}
	for _, cg := range m.ClockGroups {
		ok := true
		for _, grp := range cg.Groups {
			for _, c := range grp {
				if !clockKept[c] {
					ok = false
				}
			}
		}
		if ok {
			cc := *cg
			out.ClockGroups = append(out.ClockGroups, &cc)
		}
	}
	return out
}
