// Package etm extracts per-block interface timing models — the
// hierarchical abstraction of Li et al. (arXiv 1705.02610, 1705.04981)
// applied to mode merging: a block's combinational interior collapses
// into boundary pins, interface arcs and launch/capture classes, so
// per-block mode merges and an abstract-top merge can stand in for one
// flat whole-chip merge (see internal/core's hierarchical path).
//
// A Model is purely structural (mode-independent) and deterministic for
// a given master graph, which makes it content-addressable: the model
// bytes are cached in internal/incr under the "etm" granularity, keyed
// by the master graph's fingerprint.
package etm

import (
	"encoding/json"
	"fmt"
	"sort"
)

// InterfaceArc summarizes the combinational paths from one boundary
// input to one boundary output: no register crossing, depth counted in
// propagation arcs. MinDepth < MaxDepth implies reconvergence or
// unbalanced cones between the two pins.
type InterfaceArc struct {
	In       string `json:"in"`
	Out      string `json:"out"`
	MinDepth int    `json:"min_depth"`
	MaxDepth int    `json:"max_depth"`
}

// Class ties a boundary data port to the boundary clock input that
// times it: a launch class says "registers clocked from Clock launch
// into Port", a capture class says "data entering Port is captured by
// registers clocked from Clock".
type Class struct {
	Port  string `json:"port"`
	Clock string `json:"clock"`
}

// Model is the extracted interface timing model of one block master.
type Model struct {
	// Block is the master design name.
	Block string `json:"block"`
	// GraphFingerprint content-addresses the master timing graph the
	// model was extracted from.
	GraphFingerprint string `json:"graph_fingerprint"`

	// Inputs / Outputs / ClockIns partition the boundary ports by role.
	// A port that feeds both register clock pins and data logic appears
	// in ClockIns and Inputs.
	Inputs   []string `json:"inputs"`
	Outputs  []string `json:"outputs"`
	ClockIns []string `json:"clock_ins"`

	// RepPins maps each boundary port to a representative interior pin
	// ("inst/pin") on the port's net — the flat-graph node where
	// per-mode boundary annotations (clock tags, case constants, launch
	// sets) are read during projection.
	RepPins map[string]string `json:"rep_pins"`

	// Arcs are the input→output combinational interface arcs.
	Arcs []InterfaceArc `json:"arcs"`

	// LaunchClasses (output × clock-in) and CaptureClasses (input ×
	// clock-in) are the registered interface relations the abstract top
	// models with shell registers.
	LaunchClasses  []Class `json:"launch_classes"`
	CaptureClasses []Class `json:"capture_classes"`
}

// IsClockIn reports whether the port feeds register clock pins.
func (m *Model) IsClockIn(port string) bool {
	for _, c := range m.ClockIns {
		if c == port {
			return true
		}
	}
	return false
}

// MarshalBinary serializes the model for the incremental disk cache.
func (m *Model) MarshalBinary() ([]byte, error) { return json.Marshal(m) }

// UnmarshalBinary restores a serialized model.
func (m *Model) UnmarshalBinary(b []byte) error { return json.Unmarshal(b, m) }

// Summary renders a one-line shape description for reports.
func (m *Model) Summary() string {
	return fmt.Sprintf("block %s: %d in, %d out, %d clock, %d arcs, %d launch, %d capture",
		m.Block, len(m.Inputs), len(m.Outputs), len(m.ClockIns),
		len(m.Arcs), len(m.LaunchClasses), len(m.CaptureClasses))
}

func sortClasses(cs []Class) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Port != cs[j].Port {
			return cs[i].Port < cs[j].Port
		}
		return cs[i].Clock < cs[j].Clock
	})
}
