package etm

import (
	"fmt"
	"sort"

	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
)

// Extract builds the interface timing model of a block master from its
// timing graph. The analysis is structural: combinational reachability
// (never crossing a register's launch arc), register-to-boundary clock
// tracing, and interface depth counting. It fails loudly when a
// register's clock pin cannot be traced back to a boundary port —
// internally generated clocks are outside the model's vocabulary, and a
// silent gap there would make the hierarchical merge optimistic.
func Extract(g *graph.Graph) (*Model, error) {
	m := &Model{
		Block:            g.Design.Name,
		GraphFingerprint: g.Fingerprint(),
		RepPins:          map[string]string{},
	}

	// Boundary port nodes, in design port order (deterministic).
	type portNode struct {
		name string
		id   graph.NodeID
		in   bool
	}
	var ports []portNode
	for _, p := range g.Design.Ports {
		id, ok := g.NodeByName(p.Name)
		if !ok {
			continue // dangling port with no net activity
		}
		ports = append(ports, portNode{name: p.Name, id: id, in: p.Dir == netlist.In})
	}

	// Representative interior pins: first instance input pin on each
	// port's net.
	for _, p := range g.Design.Ports {
		if p.Net == nil {
			continue
		}
		for _, c := range p.Net.Conns {
			if c.Inst.Cell.Pins[c.Pin].Dir == library.Input {
				m.RepPins[p.Name] = c.Inst.PinName(c.Pin)
				break
			}
		}
	}

	// Forward combinational closure per input port: stop at launch arcs
	// so registers cut the traversal. Collect reached output ports,
	// register clock pins (→ the port is a clock input) and register
	// data pins (→ capture classes).
	cpClockIns := map[graph.NodeID][]string{} // reg clock pin → clock-in ports
	type fwd struct {
		outs    map[string][2]int // output port → min/max depth
		capture []graph.NodeID    // reached reg data pins
		clockin bool
	}
	fwdOf := map[string]*fwd{}
	for _, p := range ports {
		if !p.in {
			continue
		}
		f := &fwd{outs: map[string][2]int{}}
		fwdOf[p.name] = f
		// Depth DP over the topological order restricted to the
		// combinational cone of the port.
		depth := map[graph.NodeID][2]int{p.id: {0, 0}}
		for _, n := range g.Topo() {
			d, ok := depth[n]
			if !ok {
				continue
			}
			node := g.Node(n)
			if node.IsRegClock {
				f.clockin = true
				cpClockIns[n] = append(cpClockIns[n], p.name)
				continue // the clock network ends at the register
			}
			if node.IsRegData {
				f.capture = append(f.capture, n)
				continue // data is captured; no combinational continuation
			}
			if node.Port != nil && node.Port.Dir == netlist.Out {
				if prev, ok := f.outs[node.Port.Name]; ok {
					f.outs[node.Port.Name] = [2]int{min2(prev[0], d[0]), max2(prev[1], d[1])}
				} else {
					f.outs[node.Port.Name] = [2]int{d[0], d[1]}
				}
			}
			for _, ai := range g.OutArcs(n) {
				a := g.Arc(ai)
				if a.Kind == graph.LaunchArc {
					continue
				}
				nd := [2]int{d[0] + 1, d[1] + 1}
				if prev, ok := depth[a.To]; ok {
					nd = [2]int{min2(prev[0], nd[0]), max2(prev[1], nd[1])}
				}
				depth[a.To] = nd
			}
		}
	}

	// Classify ports.
	for _, p := range ports {
		if p.in {
			f := fwdOf[p.name]
			if f.clockin {
				m.ClockIns = append(m.ClockIns, p.name)
			}
			if !f.clockin || len(f.capture) > 0 || len(f.outs) > 0 {
				m.Inputs = append(m.Inputs, p.name)
			}
		} else {
			m.Outputs = append(m.Outputs, p.name)
		}
	}

	// Every register clock pin must trace to a boundary clock input.
	for _, n := range g.Topo() {
		if g.Node(n).IsRegClock && len(cpClockIns[n]) == 0 {
			return nil, fmt.Errorf("etm: block %s: register clock pin %s has no boundary clock source",
				m.Block, g.Node(n).Name)
		}
	}

	// Interface arcs, in (input, output) order.
	for _, p := range ports {
		if !p.in {
			continue
		}
		f := fwdOf[p.name]
		outs := make([]string, 0, len(f.outs))
		for o := range f.outs {
			outs = append(outs, o)
		}
		sort.Strings(outs)
		for _, o := range outs {
			d := f.outs[o]
			m.Arcs = append(m.Arcs, InterfaceArc{In: p.name, Out: o, MinDepth: d[0], MaxDepth: d[1]})
		}
	}

	// Capture classes: input port × clock-in of each reached register.
	capSeen := map[Class]bool{}
	for _, p := range ports {
		if !p.in {
			continue
		}
		for _, dn := range fwdOf[p.name].capture {
			for _, ai := range g.CheckArcs(dn) {
				cp := g.Arc(ai).To
				for _, ck := range cpClockIns[cp] {
					c := Class{Port: p.name, Clock: ck}
					if !capSeen[c] {
						capSeen[c] = true
						m.CaptureClasses = append(m.CaptureClasses, c)
					}
				}
			}
		}
	}
	sortClasses(m.CaptureClasses)

	// Launch classes: backward from each output port, stopping at launch
	// arcs, whose source register's clock-ins define the class.
	launchSeen := map[Class]bool{}
	for _, p := range ports {
		if p.in {
			continue
		}
		seen := map[graph.NodeID]bool{p.id: true}
		stack := []graph.NodeID{p.id}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, ai := range g.InArcs(n) {
				a := g.Arc(ai)
				if a.Kind == graph.LaunchArc {
					for _, ck := range cpClockIns[a.From] {
						c := Class{Port: p.name, Clock: ck}
						if !launchSeen[c] {
							launchSeen[c] = true
							m.LaunchClasses = append(m.LaunchClasses, c)
						}
					}
					continue
				}
				if !seen[a.From] {
					seen[a.From] = true
					stack = append(stack, a.From)
				}
			}
		}
	}
	sortClasses(m.LaunchClasses)
	return m, nil
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
