package etm

import (
	"fmt"
	"sort"
	"strings"

	"modemerge/internal/graph"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

// Reach is a per-node over-approximation of the launch clocks whose data
// can arrive at each node of a flat analysis context: a clock-bitset
// forward propagation seeded at register launch arcs and delayed input
// ports. It deliberately ignores timing exceptions (a false path does
// not remove the clock from the set), so the set at any node is a
// superset of the clocks that actually launch timed paths there — the
// safe direction for boundary projection (see ProjectMode).
type Reach struct {
	ctx  *sta.Context
	bits []uint64
	// over is set when the context has more clocks than the bitset can
	// hold; every query then over-approximates to "all clocks".
	over bool
}

// ComputeReach runs the forward propagation for one flat context.
func ComputeReach(ctx *sta.Context) *Reach {
	r := &Reach{ctx: ctx}
	if len(ctx.Clocks) > 64 {
		r.over = true
		return r
	}
	g := ctx.G
	r.bits = make([]uint64, g.NumNodes())
	tagBits := func(id graph.NodeID) uint64 {
		var b uint64
		for _, t := range ctx.ClocksAt(id) {
			b |= 1 << uint(t.Clock)
		}
		return b
	}
	// Seed delayed input ports with their reference clocks.
	for _, d := range ctx.Mode.IODelays {
		if !d.IsInput {
			continue
		}
		cid, ok := ctx.ClockByName(d.Clock)
		if !ok {
			continue
		}
		for _, p := range d.Ports {
			if id, ok := g.NodeByName(p.Name); ok {
				r.bits[id] |= 1 << uint(cid)
			}
		}
	}
	for _, n := range g.Topo() {
		if ctx.NodeDisabled[n] || ctx.Consts[n].Known() {
			continue
		}
		for _, ai := range g.OutArcs(n) {
			a := g.Arc(ai)
			switch a.Kind {
			case graph.SetupArc, graph.HoldArc:
				continue
			case graph.LaunchArc:
				// The register's output carries whatever clocks reach
				// its clock pin.
				r.bits[a.To] |= tagBits(n)
			default:
				if !ctx.ArcDisabledAt(ai) {
					r.bits[a.To] |= r.bits[n]
				}
			}
		}
	}
	return r
}

// ClockNamesAt returns the sorted launch-clock names reaching the node.
func (r *Reach) ClockNamesAt(id graph.NodeID) []string {
	var out []string
	if r.over {
		for _, c := range r.ctx.Clocks {
			out = append(out, c.Def.Name)
		}
	} else {
		b := r.bits[id]
		for i := 0; b != 0; i++ {
			if b&1 != 0 {
				out = append(out, r.ctx.Clocks[i].Def.Name)
			}
			b >>= 1
		}
	}
	sort.Strings(out)
	return out
}

// InvSuffix marks a boundary clock that arrives inverted at the block:
// the projected clock keeps the flat name plus this suffix and carries
// the pre-inverted waveform, so interior propagation reproduces the flat
// edge times without an inversion in the projected clock network.
const InvSuffix = "__inv"

// ProjectMode restricts one flat member mode to a block instance,
// producing a mode for the block master that is never *looser* than the
// flat member seen from inside the block:
//
//   - boundary clocks are re-created on the clock-in ports with the exact
//     flat tags at the ports' representative interior pins (generated
//     clocks become plain clocks with their resolved waveform; inverted
//     arrivals become "<name>__inv" with swapped edges),
//   - boundary case constants are read from the flat constant solution,
//   - member statements whose object references all live inside the block
//     are kept with the instance prefix stripped,
//   - every data input gets zero-valued input delays for the
//     over-approximated set of launch clocks reaching it in the flat
//     design (launch-only clocks materialize as virtual clocks), and
//   - no output delays: interior→output paths stay untimed in the block
//     merge, so the block contributes no refinement for them (the
//     abstract top covers cross-block paths instead).
//
// Statements that cannot be projected exactly are dropped, which only
// makes the projected member stricter — the direction that keeps
// harvested refinements sound (see internal/core's hierarchical path).
// The returned mode is written and re-parsed against the master, so it
// is validated and its text is canonical (usable as a cache key).
func ProjectMode(flat *sta.Context, reach *Reach, model *Model, prefix string, master *netlist.Design) (*sdc.Mode, string, error) {
	m := &sdc.Mode{Name: flat.Mode.Name}
	g := flat.G

	repNode := func(port string) (graph.NodeID, bool) {
		rp, ok := model.RepPins[port]
		if !ok {
			return 0, false
		}
		return g.NodeByName(prefix + rp)
	}

	// Boundary clocks from the flat tags at each clock-in port.
	type projClock struct {
		period   float64
		waveform []float64
		ports    []string
	}
	clocks := map[string]*projClock{}
	for _, p := range model.ClockIns {
		id, ok := repNode(p)
		if !ok {
			continue
		}
		for _, tag := range flat.ClocksAt(id) {
			def := flat.Clock(tag.Clock).Def
			name, wf := def.Name, def.Waveform
			if tag.Inv {
				if len(wf) != 2 {
					continue // cannot express the inversion; drop (stricter)
				}
				name += InvSuffix
				wf = []float64{wf[1], wf[0] + def.Period}
			}
			pc := clocks[name]
			if pc == nil {
				pc = &projClock{period: def.Period, waveform: wf}
				clocks[name] = pc
			}
			pc.ports = append(pc.ports, p)
		}
	}

	// Boundary case constants from the flat constant solution.
	caseDone := map[string]bool{}
	boundaryConst := map[string]bool{}
	for _, p := range append(append([]string{}, model.Inputs...), model.ClockIns...) {
		if caseDone[p] {
			continue
		}
		caseDone[p] = true
		id, ok := repNode(p)
		if !ok {
			continue
		}
		if c := flat.Consts[id]; c.Known() {
			boundaryConst[p] = true
			m.Cases = append(m.Cases, &sdc.CaseAnalysis{
				Value:   c,
				Objects: []sdc.ObjRef{{Kind: sdc.PortObj, Name: p}},
			})
		}
	}

	// Launch sets at the data inputs → zero input delays; clocks that
	// only launch (never reach a clock-in) become virtual clocks.
	for _, p := range model.Inputs {
		if boundaryConst[p] {
			continue // a constant port times nothing
		}
		id, ok := repNode(p)
		if !ok {
			continue
		}
		for _, cn := range reach.ClockNamesAt(id) {
			if clocks[cn] == nil {
				cid, ok := flat.ClockByName(cn)
				if !ok {
					continue
				}
				def := flat.Clock(cid).Def
				clocks[cn] = &projClock{period: def.Period, waveform: def.Waveform}
			}
			m.IODelays = append(m.IODelays, &sdc.IODelay{
				IsInput: true,
				Clock:   cn,
				Add:     true,
				Ports:   []sdc.ObjRef{{Kind: sdc.PortObj, Name: p}},
			})
		}
	}

	// Emit the clock definitions sorted by name; -add everywhere so
	// multiple clocks on one port coexist.
	names := make([]string, 0, len(clocks))
	for n := range clocks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pc := clocks[n]
		srcs := make([]sdc.ObjRef, 0, len(pc.ports))
		seen := map[string]bool{}
		sort.Strings(pc.ports)
		for _, p := range pc.ports {
			if !seen[p] {
				seen[p] = true
				srcs = append(srcs, sdc.ObjRef{Kind: sdc.PortObj, Name: p})
			}
		}
		m.Clocks = append(m.Clocks, &sdc.Clock{
			Name: n, Period: pc.period,
			Waveform: append([]float64(nil), pc.waveform...),
			Sources:  srcs, Add: true,
		})
	}

	// Block-owned member statements, prefix-stripped. A reference that
	// does not project drops the whole statement (stricter member).
	stripRefs := func(refs []sdc.ObjRef) ([]sdc.ObjRef, bool) {
		out := make([]sdc.ObjRef, 0, len(refs))
		for _, r := range refs {
			if r.Kind == sdc.PortObj || !strings.HasPrefix(r.Name, prefix) {
				return nil, false
			}
			out = append(out, sdc.ObjRef{Kind: r.Kind, Name: strings.TrimPrefix(r.Name, prefix)})
		}
		return out, true
	}
	stripPoints := func(pl *sdc.PointList) (*sdc.PointList, bool) {
		if pl.Empty() {
			return pl.Clone(), true
		}
		q := &sdc.PointList{Edge: pl.Edge}
		for _, c := range pl.Clocks {
			if clocks[c] == nil {
				return nil, false // clock absent (or inverted) in the projection
			}
			q.Clocks = append(q.Clocks, c)
		}
		var ok bool
		if q.Pins, ok = stripRefs(pl.Pins); !ok && len(pl.Pins) > 0 {
			return nil, false
		}
		return q, true
	}
	for _, e := range flat.Mode.Exceptions {
		c := e.Clone()
		var ok bool
		if c.From, ok = stripPoints(e.From); !ok {
			continue
		}
		if c.To, ok = stripPoints(e.To); !ok {
			continue
		}
		c.Throughs = c.Throughs[:0]
		ok = true
		for _, t := range e.Throughs {
			q, tok := stripPoints(t)
			if !tok {
				ok = false
				break
			}
			c.Throughs = append(c.Throughs, q)
		}
		if !ok || (c.From.Empty() && c.To.Empty() && len(c.Throughs) == 0) {
			continue
		}
		m.Exceptions = append(m.Exceptions, c)
	}
	for _, ca := range flat.Mode.Cases {
		if objs, ok := stripRefs(ca.Objects); ok && len(objs) > 0 {
			m.Cases = append(m.Cases, &sdc.CaseAnalysis{Value: ca.Value, Objects: objs})
		}
	}
	for _, d := range flat.Mode.Disables {
		if objs, ok := stripRefs(d.Objects); ok && len(objs) > 0 {
			m.Disables = append(m.Disables, &sdc.DisableTiming{
				Objects: objs, FromPin: d.FromPin, ToPin: d.ToPin, Comment: d.Comment,
			})
		}
	}

	// Canonicalize: write and re-parse against the master, validating
	// every projected reference.
	text := sdc.Write(m)
	parsed, _, err := sdc.Parse(m.Name, text, master)
	if err != nil {
		return nil, "", fmt.Errorf("etm: projecting %s onto %s: %w", flat.Mode.Name, model.Block, err)
	}
	return parsed, text, nil
}
