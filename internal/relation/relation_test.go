package relation

import (
	"testing"
	"testing/quick"
)

func TestStateString(t *testing.T) {
	cases := []struct {
		s    State
		want string
	}{
		{StateValid, "V"},
		{StateFalse, "FP"},
		{MCP(2), "MCP(2)"},
		{MaxDelay(5), "MAX(5)"},
		{MinDelay(0.5), "MIN(0.5)"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestMoreRestrictive(t *testing.T) {
	cases := []struct{ a, b, want State }{
		{StateValid, StateFalse, StateValid},
		{StateFalse, StateValid, StateValid},
		{MCP(2), StateValid, StateValid},
		{MCP(2), MCP(3), MCP(2)},
		{MCP(2), StateFalse, MCP(2)},
		{MaxDelay(3), MaxDelay(5), MaxDelay(3)},
		{MaxDelay(3), StateFalse, MaxDelay(3)},
		{StateFalse, StateFalse, StateFalse},
		{MinDelay(2), MinDelay(1), MinDelay(2)}, // larger min-delay is tighter
	}
	for _, c := range cases {
		if got := MoreRestrictive(c.a, c.b); got != c.want {
			t.Errorf("MoreRestrictive(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMoreRestrictiveCommutativeIdempotent(t *testing.T) {
	states := []State{StateValid, StateFalse, MCP(2), MCP(3), MCP(5), MaxDelay(1), MaxDelay(9), MinDelay(0.1)}
	for _, a := range states {
		for _, b := range states {
			ab, ba := MoreRestrictive(a, b), MoreRestrictive(b, a)
			if ab != ba {
				t.Errorf("not commutative: %v vs %v → %v / %v", a, b, ab, ba)
			}
			if MoreRestrictive(a, a) != a {
				t.Errorf("not idempotent for %v", a)
			}
			// result is one of the inputs
			if ab != a && ab != b {
				t.Errorf("result %v not in inputs %v, %v", ab, a, b)
			}
		}
	}
}

func TestMergeTargetAssociative(t *testing.T) {
	f := func(picks []uint8) bool {
		states := []State{StateValid, StateFalse, MCP(2), MCP(3), MaxDelay(4)}
		if len(picks) < 2 {
			return true
		}
		var modes []State
		for _, p := range picks {
			modes = append(modes, states[int(p)%len(states)])
		}
		// Fold left equals fold right.
		left := MergeTarget(modes)
		right := modes[len(modes)-1]
		for i := len(modes) - 2; i >= 0; i-- {
			right = MoreRestrictive(modes[i], right)
		}
		return left == right
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetBasics(t *testing.T) {
	var s Set
	if !s.Empty() || s.String() != "-" {
		t.Error("zero set must be empty and print '-'")
	}
	s.Add(StateValid)
	s.Add(StateFalse)
	s.Add(StateValid) // dedup
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
	if !s.Contains(StateFalse) || s.Contains(MCP(2)) {
		t.Error("Contains wrong")
	}
	if _, ok := s.Single(); ok {
		t.Error("two-element set reported single")
	}
	// States sorted most restrictive first: V before FP.
	got := s.States()
	if got[0] != StateValid || got[1] != StateFalse {
		t.Errorf("States() = %v", got)
	}
	if s.String() != "V, FP" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSetEqual(t *testing.T) {
	a := NewSet(StateValid, StateFalse)
	b := NewSet(StateFalse, StateValid)
	c := NewSet(StateValid)
	if !a.Equal(b) {
		t.Error("order must not matter")
	}
	if a.Equal(c) {
		t.Error("different sets reported equal")
	}
	var d Set
	d.AddSet(a)
	if !d.Equal(a) {
		t.Error("AddSet lost states")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		target, merged Set
		want           CompareResult
	}{
		{NewSet(StateFalse), NewSet(StateValid), Mismatch},
		{NewSet(StateValid), NewSet(StateValid), Match},
		{NewSet(StateFalse, StateValid), NewSet(StateValid), Ambiguous},
		{NewSet(StateFalse, StateValid), NewSet(StateFalse, StateValid), Ambiguous},
		{NewSet(MCP(2)), NewSet(MCP(2)), Match},
		{NewSet(MCP(2)), NewSet(MCP(3)), Mismatch},
	}
	for _, c := range cases {
		if got := Compare(c.target, c.merged); got != c.want {
			t.Errorf("Compare(%v,%v) = %v, want %v", c.target, c.merged, got, c.want)
		}
	}
}

func TestCompareResultString(t *testing.T) {
	if Match.String() != "M" || Mismatch.String() != "X" || Ambiguous.String() != "A" {
		t.Error("result strings wrong")
	}
}

func TestRelGroupKey(t *testing.T) {
	a := Rel{Start: "*", End: "rX/D", Launch: "clkA", Capture: "clkA", Check: Setup}
	b := Rel{Start: "*", End: "rX/D", Launch: "clkA", Capture: "clkA", Check: Setup, States: NewSet(StateFalse)}
	if a.GroupKey() != b.GroupKey() {
		t.Error("states must not affect group key")
	}
	c := Rel{Start: "*", End: "rX/D", Launch: "clkA", Capture: "clkA", Check: Hold}
	if a.GroupKey() == c.GroupKey() {
		t.Error("check type must affect group key")
	}
}

func TestMergeTargetPaperSemantics(t *testing.T) {
	// Path false in all modes → false in merged.
	if got := MergeTarget([]State{StateFalse, StateFalse}); got != StateFalse {
		t.Errorf("all-FP → %v", got)
	}
	// Path valid in one mode → must be timed.
	if got := MergeTarget([]State{StateFalse, StateValid}); got != StateValid {
		t.Errorf("FP+V → %v", got)
	}
	// MCP(2) in one mode, valid in another → single-cycle governs.
	if got := MergeTarget([]State{MCP(2), StateValid}); got != StateValid {
		t.Errorf("MCP+V → %v", got)
	}
	// MCP(2) and MCP(3) → tighter multiplier.
	if got := MergeTarget([]State{MCP(3), MCP(2)}); got != MCP(2) {
		t.Errorf("MCP3+MCP2 → %v", got)
	}
	// FP in one mode, MCP in other → MCP governs.
	if got := MergeTarget([]State{StateFalse, MCP(2)}); got != MCP(2) {
		t.Errorf("FP+MCP → %v", got)
	}
}

func TestRelaxedAntisymmetric(t *testing.T) {
	states := []State{StateValid, StateFalse, MCP(2), MCP(3), MCP(5),
		MaxDelay(1), MaxDelay(9), MinDelay(0.1), MinDelay(2)}
	for _, a := range states {
		for _, b := range states {
			if a == b {
				if Relaxed(a, b) {
					t.Errorf("Relaxed(%v,%v) true on equal states", a, b)
				}
				continue
			}
			if Relaxed(a, b) && Relaxed(b, a) {
				t.Errorf("Relaxed symmetric for %v, %v", a, b)
			}
		}
	}
}

func TestRelaxedSemantics(t *testing.T) {
	cases := []struct {
		merged, target State
		want           bool
	}{
		{StateFalse, StateValid, true},  // dropping a check is optimistic
		{StateValid, StateFalse, false}, // extra check is pessimistic
		{MCP(3), MCP(2), true},          // looser multicycle
		{MCP(2), MCP(3), false},         // tighter multicycle
		{MCP(2), StateValid, true},      // Valid ≡ MCP(1)
		{StateValid, MCP(2), false},
		{MaxDelay(5), MaxDelay(3), true}, // looser bound
		{MaxDelay(3), MaxDelay(5), false},
		{MinDelay(1), MinDelay(2), true}, // smaller min-delay is looser
		{MinDelay(2), MinDelay(1), false},
		{MaxDelay(3), StateValid, false}, // extra bound assumed tighter
		{StateValid, MaxDelay(3), true},  // dropped bound is optimistic
		{StateFalse, MCP(2), true},
		{MCP(2), StateFalse, false},
	}
	for _, c := range cases {
		if got := Relaxed(c.merged, c.target); got != c.want {
			t.Errorf("Relaxed(%v, %v) = %v, want %v", c.merged, c.target, got, c.want)
		}
	}
}
