// Package relation defines timing relationships, the paper's §2 core
// abstraction: the constraint state of a set of timing paths identified by
// startpoint, endpoint, launch clock, capture clock, rise/fall type and
// min/max (setup/hold) check type.
//
// Relation states form a restrictiveness order used to compute the
// merged-mode target: a path's merged state must equal the most
// restrictive of its per-mode states over the modes that time it —
// "timed iff timed in at least one mode, never more optimistic than any
// mode that times it".
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is the constraint state kind of a set of paths.
type Kind int8

// State kinds.
const (
	// Valid: paths are timed single-cycle, no exception applies.
	Valid Kind = iota
	// Multicycle: a set_multicycle_path governs the paths.
	Multicycle
	// MaxDelayK / MinDelayK: a set_max_delay / set_min_delay governs.
	MaxDelayK
	MinDelayK
	// False: paths are false (set_false_path, exclusive clock groups, or
	// case-analysis/disable kill) — not timed.
	False
)

// State is one constraint state: the kind plus its parameter.
type State struct {
	Kind  Kind
	Mult  int     // Multicycle multiplier
	Value float64 // Max/MinDelay value
}

// Common states.
var (
	StateValid = State{Kind: Valid}
	StateFalse = State{Kind: False}
)

// MCP returns a multicycle state.
func MCP(mult int) State { return State{Kind: Multicycle, Mult: mult} }

// MaxDelay returns a max-delay state.
func MaxDelay(v float64) State { return State{Kind: MaxDelayK, Value: v} }

// MinDelay returns a min-delay state.
func MinDelay(v float64) State { return State{Kind: MinDelayK, Value: v} }

// String renders the state in the paper's table notation.
func (s State) String() string {
	switch s.Kind {
	case Valid:
		return "V"
	case Multicycle:
		return fmt.Sprintf("MCP(%d)", s.Mult)
	case MaxDelayK:
		return fmt.Sprintf("MAX(%g)", s.Value)
	case MinDelayK:
		return fmt.Sprintf("MIN(%g)", s.Value)
	case False:
		return "FP"
	default:
		return fmt.Sprintf("State(%d)", int(s.Kind))
	}
}

// restrictiveness returns a sortable rank: lower = more restrictive.
// Valid (single cycle) is the tightest check; false path is no check at
// all. Multicycle relaxes with the multiplier. Delay overrides sit
// between: a smaller max-delay is tighter.
func restrictRank(s State) float64 {
	switch s.Kind {
	case Valid:
		return 0
	case MinDelayK:
		// A larger min-delay is a tighter hold-side bound; rank
		// decreases as value grows.
		return 1 - s.Value/1e9
	case MaxDelayK:
		return 2 + s.Value/1e9
	case Multicycle:
		return 10 + float64(s.Mult)
	case False:
		return 1e18
	default:
		return 1e17
	}
}

// MoreRestrictive returns the more restrictive of two states.
func MoreRestrictive(a, b State) State {
	if restrictRank(b) < restrictRank(a) {
		return b
	}
	return a
}

// Relaxed reports whether the merged state is more relaxed (optimistic)
// than the target state — the unsafe direction for sign-off. The partial
// order: false path relaxes everything; a larger multicycle multiplier
// relaxes a smaller one (Valid ≡ MCP(1)); a larger max-delay or smaller
// min-delay relaxes its counterpart. Explicit delay bounds are assumed
// tighter than cycle-based checks (they are in any practical SDC), so a
// merged mode that adds a delay bound is pessimistic, while one that
// drops a target's delay bound is optimistic.
func Relaxed(merged, target State) bool {
	if merged == target {
		return false
	}
	if merged.Kind == False {
		return true
	}
	if target.Kind == False {
		return false // merged times paths the target does not: pessimistic
	}
	mcpOf := func(s State) (int, bool) {
		switch s.Kind {
		case Valid:
			return 1, true
		case Multicycle:
			return s.Mult, true
		}
		return 0, false
	}
	if mm, ok := mcpOf(merged); ok {
		if tm, ok2 := mcpOf(target); ok2 {
			return mm > tm
		}
	}
	if merged.Kind == MaxDelayK && target.Kind == MaxDelayK {
		return merged.Value > target.Value
	}
	if merged.Kind == MinDelayK && target.Kind == MinDelayK {
		return merged.Value < target.Value
	}
	if merged.Kind == MaxDelayK || merged.Kind == MinDelayK {
		return false // extra delay bound tightens: pessimistic
	}
	return true // cycle-based merged vs delay-bounded target: optimistic
}

// Set is a small set of states.
type Set struct {
	states []State
}

// NewSet builds a set from states.
func NewSet(states ...State) Set {
	var s Set
	for _, st := range states {
		s.Add(st)
	}
	return s
}

// Add inserts a state if not present.
func (s *Set) Add(st State) {
	for _, have := range s.states {
		if have == st {
			return
		}
	}
	s.states = append(s.states, st)
}

// AddSet inserts every state of other.
func (s *Set) AddSet(other Set) {
	for _, st := range other.states {
		s.Add(st)
	}
}

// Len returns the number of distinct states.
func (s Set) Len() int { return len(s.states) }

// Empty reports whether the set has no states.
func (s Set) Empty() bool { return len(s.states) == 0 }

// States returns the states sorted by restrictiveness (most first).
func (s Set) States() []State {
	out := append([]State(nil), s.states...)
	sort.Slice(out, func(i, j int) bool { return restrictRank(out[i]) < restrictRank(out[j]) })
	return out
}

// Contains reports membership.
func (s Set) Contains(st State) bool {
	for _, have := range s.states {
		if have == st {
			return true
		}
	}
	return false
}

// Single returns the only state, if the set is a singleton.
func (s Set) Single() (State, bool) {
	if len(s.states) == 1 {
		return s.states[0], true
	}
	return State{}, false
}

// Equal reports set equality (order independent).
func (s Set) Equal(other Set) bool {
	if len(s.states) != len(other.states) {
		return false
	}
	for _, st := range s.states {
		if !other.Contains(st) {
			return false
		}
	}
	return true
}

// String renders the set in the paper's table notation ("FP, V").
func (s Set) String() string {
	if len(s.states) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(s.states))
	for _, st := range s.States() {
		parts = append(parts, st.String())
	}
	return strings.Join(parts, ", ")
}

// CheckType distinguishes the min/max (hold/setup) side of a relation.
type CheckType int8

// Check types.
const (
	Setup CheckType = iota // max-path analysis
	Hold                   // min-path analysis
)

func (c CheckType) String() string {
	if c == Hold {
		return "hold"
	}
	return "setup"
}

// Rel is one timing relationship row: the constraint states of all paths
// in a group identified by the other fields. Start is "*" at endpoint
// (pass 1) granularity; Through is set only at pass-3 granularity.
type Rel struct {
	Start   string
	Through string
	End     string
	Launch  string // launch clock (merged-mode name space)
	Capture string // capture clock
	Check   CheckType
	States  Set
}

// GroupKey identifies the path group independent of states.
func (r *Rel) GroupKey() string {
	return r.Start + "\x00" + r.Through + "\x00" + r.End + "\x00" +
		r.Launch + "\x00" + r.Capture + "\x00" + r.Check.String()
}

// CompareResult is the outcome of comparing individual-mode and merged
// relation state sets, per the paper's Tables 2–4.
type CompareResult int8

// Compare results.
const (
	Match CompareResult = iota
	Mismatch
	Ambiguous
)

func (c CompareResult) String() string {
	switch c {
	case Match:
		return "M"
	case Mismatch:
		return "X"
	default:
		return "A"
	}
}

// Compare compares the target (individual-mode) and merged state sets for
// one path group. A pair of identical singletons matches; differing
// singletons mismatch; anything with multiple states on either side is
// ambiguous and must be refined at a finer granularity.
func Compare(target, merged Set) CompareResult {
	ts, tok := target.Single()
	ms, mok := merged.Single()
	if tok && mok {
		if ts == ms {
			return Match
		}
		return Mismatch
	}
	return Ambiguous
}

// MergeTarget folds per-mode states of one path group into the merged
// target state: the most restrictive state over the modes that time the
// group; False only when every mode agrees the group is false (or dead).
// The modes slice holds one state per mode in which the group's clocks
// exist; it must be non-empty.
func MergeTarget(modes []State) State {
	out := modes[0]
	for _, st := range modes[1:] {
		out = MoreRestrictive(out, st)
	}
	return out
}
