package incr

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestHashLengthPrefixed(t *testing.T) {
	// Different part boundaries over the same concatenated bytes must not
	// collide: the length prefix makes ("ab","c") ≠ ("a","bc").
	if Hash("ab", "c") == Hash("a", "bc") {
		t.Fatal("hash collides across part boundaries")
	}
	if Hash("x") != Hash("x") {
		t.Fatal("hash is not deterministic")
	}
	if Hash() == Hash("") {
		t.Fatal("zero parts collides with one empty part")
	}
	if len(Hash("x")) != 64 {
		t.Fatalf("expected 64 hex chars, got %d", len(Hash("x")))
	}
}

func TestCacheObjectRoundTrip(t *testing.T) {
	c := New(16)
	if _, ok := c.GetObject(GranContext, "k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.PutObject(GranContext, "k", 42)
	v, ok := c.GetObject(GranContext, "k")
	if !ok || v.(int) != 42 {
		t.Fatalf("got %v %v, want 42 true", v, ok)
	}
	// Granularities are separate namespaces.
	if _, ok := c.GetObject(GranPair, "k"); ok {
		t.Fatal("key leaked across granularities")
	}
	s := c.Stats().Snapshot()
	if s.ContextHits != 1 || s.ContextMisses != 1 || s.PairMisses != 1 {
		t.Fatalf("unexpected stats: %+v", s)
	}
}

func TestCacheBytesRoundTrip(t *testing.T) {
	c := New(16)
	c.PutBytes(GranClique, "a", []byte("payload"))
	b, ok := c.GetBytes(GranClique, "a")
	if !ok || string(b) != "payload" {
		t.Fatalf("got %q %v", b, ok)
	}
	s := c.Stats().Snapshot()
	if s.CliqueHits != 1 || s.CliqueMisses != 0 {
		t.Fatalf("unexpected stats: %+v", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(16) // minimum capacity
	for i := 0; i < 20; i++ {
		c.PutObject(GranContext, fmt.Sprintf("k%d", i), i)
	}
	if c.Len() != 16 {
		t.Fatalf("len = %d, want 16", c.Len())
	}
	if _, ok := c.GetObject(GranContext, "k0"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := c.GetObject(GranContext, "k19"); !ok {
		t.Fatal("newest entry evicted")
	}
	// Touching an entry protects it from the next eviction round.
	c2 := New(16)
	for i := 0; i < 16; i++ {
		c2.PutObject(GranContext, fmt.Sprintf("k%d", i), i)
	}
	c2.GetObject(GranContext, "k0") // promote
	c2.PutObject(GranContext, "new", 1)
	if _, ok := c2.GetObject(GranContext, "k0"); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c2.GetObject(GranContext, "k1"); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestInvalidatePrefixAndClear(t *testing.T) {
	c := New(16)
	c.PutObject(GranContext, "aa1", 1)
	c.PutObject(GranContext, "aa2", 2)
	c.PutObject(GranContext, "bb1", 3)
	c.PutObject(GranPair, "aa1", 4)
	if n := c.InvalidatePrefix(GranContext, "aa"); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if _, ok := c.GetObject(GranContext, "bb1"); !ok {
		t.Fatal("unrelated entry invalidated")
	}
	if _, ok := c.GetObject(GranPair, "aa1"); !ok {
		t.Fatal("other granularity invalidated")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("len after Clear = %d", c.Len())
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := New(16).WithDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Hash("some", "content")
	c.PutBytes(GranClique, key, []byte("artifact"))

	// A fresh cache over the same directory sees the entry (memory miss,
	// disk hit), proving the write-through persisted.
	c2, err := New(16).WithDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := c2.GetBytes(GranClique, key)
	if !ok || string(b) != "artifact" {
		t.Fatalf("disk round-trip: got %q %v", b, ok)
	}
	// The disk hit still counts as a cache hit.
	if s := c2.Stats().Snapshot(); s.CliqueHits != 1 {
		t.Fatalf("unexpected stats: %+v", s)
	}
	// Objects never go to disk.
	c.PutObject(GranContext, key, 1)
	c3, err := New(16).WithDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.GetObject(GranContext, key); ok {
		t.Fatal("object leaked to disk store")
	}
}

func TestDiskStoreRejectsHostileKeys(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "a/b", `a\b`, "."} {
		if err := ds.Put(string(GranClique), key, []byte("x")); err == nil {
			t.Fatalf("Put accepted hostile key %q", key)
		}
		if _, err := ds.Get(string(GranClique), key); err == nil {
			t.Fatalf("Get accepted hostile key %q", key)
		}
	}
	// Nothing outside dir was created.
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape")); err == nil {
		t.Fatal("hostile key escaped the cache directory")
	}
}

func TestDiskStoreIgnoresCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := New(16).WithDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Hash("k")
	c.PutBytes(GranPair, key, []byte("good"))
	// Simulate a removed payload: a fresh cache must treat it as a miss.
	path := filepath.Join(dir, string(GranPair), key[:2], key)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	c2, err := New(16).WithDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.GetBytes(GranPair, key); ok {
		t.Fatal("hit on removed disk entry")
	}
}

func TestCacheConcurrency(t *testing.T) {
	c := New(64)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%32)
				c.PutBytes(GranPair, k, []byte{byte(i)})
				c.GetBytes(GranPair, k)
				c.PutObject(GranContext, k, i)
				c.GetObject(GranContext, k)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func TestHitObserver(t *testing.T) {
	c := New(16)
	type obsd struct {
		g Granularity
		d time.Duration
	}
	var got []obsd
	c.SetHitObserver(func(g Granularity, d time.Duration) {
		got = append(got, obsd{g, d})
	})

	c.PutObject(GranContext, "k", 1)
	c.PutBytes(GranPair, "p", []byte("ok"))
	if _, ok := c.GetObject(GranContext, "missing"); ok {
		t.Fatal("unexpected hit")
	}
	c.GetObject(GranContext, "k")
	c.GetBytes(GranPair, "p")

	if len(got) != 2 {
		t.Fatalf("observer saw %d hits, want 2 (misses must not report): %+v", len(got), got)
	}
	if got[0].g != GranContext || got[1].g != GranPair {
		t.Fatalf("granularities = %v, %v", got[0].g, got[1].g)
	}
	for _, o := range got {
		if o.d < 0 {
			t.Fatalf("negative hit latency %v", o.d)
		}
	}

	// Disk-promotion hits report too: evict the memory copy, then hit via disk.
	dir := t.TempDir()
	if _, err := c.WithDisk(dir); err != nil {
		t.Fatal(err)
	}
	c.PutBytes(GranClique, "cliq01", []byte("artifact"))
	c.Clear()
	if _, ok := c.GetBytes(GranClique, "cliq01"); !ok {
		t.Fatal("disk promotion miss")
	}
	if last := got[len(got)-1]; last.g != GranClique {
		t.Fatalf("disk-promotion hit not observed, last = %+v", last)
	}

	// Removing the observer stops reporting without breaking lookups.
	n := len(got)
	c.SetHitObserver(nil)
	if _, ok := c.GetBytes(GranClique, "cliq01"); !ok {
		t.Fatal("lookup broke after observer removal")
	}
	if len(got) != n {
		t.Fatal("observer fired after removal")
	}
}
