// Package incr is the incremental re-merge engine's content-addressed
// sub-merge cache. Every input of the merging flow — the timing graph,
// each mode's resolved SDC text, the merge options — hashes to a stable
// digest, and the flow's intermediate products are cached at three
// granularities keyed by those digests:
//
//   - per-mode sta timing contexts (memory only: a built context is a
//     large pointer-rich structure that is cheap to share and expensive
//     to serialize),
//   - pairwise mergeability verdicts from the mock-merge analysis,
//   - per-clique preliminary-merge + refinement artifacts (the merged
//     SDC text plus the full merge report).
//
// Editing one mode of N therefore re-runs only that mode's context
// build, its N−1 mergeability pairs, and the cliques containing it —
// everything else is a cache hit. Keys are content addresses, so
// invalidation is automatic: a changed input simply hashes to a new key
// and the stale entry ages out of the LRU. Explicit invalidation
// (InvalidatePrefix, Clear) exists for operators who want to drop state
// eagerly.
//
// The cache is safe for concurrent use. An optional artifact store (see
// BlobStore: disk, in-memory, or S3-style HTTP backends) persists the
// serializable granularities (pair verdicts and clique artifacts) across
// processes, which is what makes warm CLI reruns (`modemerge
// -cache-dir`) near-instant and lets a distributed merge fabric share
// per-clique artifacts between coordinator and workers.
package incr

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Granularity names one cached sub-merge product class. It prefixes
// every key, so one store serves all three granularities without
// collisions.
type Granularity string

// The cache granularities of the incremental engine.
const (
	// GranContext caches built per-mode sta analysis contexts. Memory
	// only: entries are live Go object graphs shared read-only between
	// merges (see internal/sta on why sharing is safe).
	GranContext Granularity = "ctx"
	// GranPair caches pairwise mergeability verdicts ("" = mergeable,
	// otherwise the first conflict reason).
	GranPair Granularity = "pair"
	// GranClique caches the merged SDC text + report of one merge
	// clique — the whole preliminary-merge + refinement pipeline.
	GranClique Granularity = "clique"
	// GranETM caches hierarchical-merge products: extracted interface
	// timing models keyed by the master graph fingerprint, and per-block
	// refinement harvests keyed by master fingerprint + options +
	// projected member texts. Both serialize, so they ride the disk
	// write-through like cliques.
	GranETM Granularity = "etm"
	// GranMergedCtx caches merged-mode analysis contexts built during
	// refinement, keyed by the merged SDC text at each iteration. Memory
	// only, like GranContext, but counted separately so the per-mode
	// context reuse contract stays observable on its own counters.
	GranMergedCtx Granularity = "mctx"
)

// Hash is the cache's content address: SHA-256 over length-prefixed
// parts, so no concatenation of parts can collide with a different
// split of the same bytes.
func Hash(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats counts hits and misses per granularity. All fields are atomic;
// read them through Snapshot.
type Stats struct {
	ContextHits, ContextMisses     atomic.Int64
	PairHits, PairMisses           atomic.Int64
	CliqueHits, CliqueMisses       atomic.Int64
	ETMHits, ETMMisses             atomic.Int64
	MergedCtxHits, MergedCtxMisses atomic.Int64
}

// StatsSnapshot is the JSON-ready view of Stats.
type StatsSnapshot struct {
	ContextHits     int64 `json:"context_hits"`
	ContextMisses   int64 `json:"context_misses"`
	PairHits        int64 `json:"pair_hits"`
	PairMisses      int64 `json:"pair_misses"`
	CliqueHits      int64 `json:"clique_hits"`
	CliqueMisses    int64 `json:"clique_misses"`
	ETMHits         int64 `json:"etm_hits"`
	ETMMisses       int64 `json:"etm_misses"`
	MergedCtxHits   int64 `json:"merged_ctx_hits,omitempty"`
	MergedCtxMisses int64 `json:"merged_ctx_misses,omitempty"`
}

func (s *Stats) hit(g Granularity) {
	switch g {
	case GranContext:
		s.ContextHits.Add(1)
	case GranPair:
		s.PairHits.Add(1)
	case GranClique:
		s.CliqueHits.Add(1)
	case GranETM:
		s.ETMHits.Add(1)
	case GranMergedCtx:
		s.MergedCtxHits.Add(1)
	}
}

func (s *Stats) miss(g Granularity) {
	switch g {
	case GranContext:
		s.ContextMisses.Add(1)
	case GranPair:
		s.PairMisses.Add(1)
	case GranClique:
		s.CliqueMisses.Add(1)
	case GranETM:
		s.ETMMisses.Add(1)
	case GranMergedCtx:
		s.MergedCtxMisses.Add(1)
	}
}

// Snapshot reads the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		ContextHits:     s.ContextHits.Load(),
		ContextMisses:   s.ContextMisses.Load(),
		PairHits:        s.PairHits.Load(),
		PairMisses:      s.PairMisses.Load(),
		CliqueHits:      s.CliqueHits.Load(),
		CliqueMisses:    s.CliqueMisses.Load(),
		ETMHits:         s.ETMHits.Load(),
		ETMMisses:       s.ETMMisses.Load(),
		MergedCtxHits:   s.MergedCtxHits.Load(),
		MergedCtxMisses: s.MergedCtxMisses.Load(),
	}
}

// Cache is one incremental sub-merge cache: a bounded in-memory LRU over
// all three granularities plus an optional BlobStore behind the
// serializable ones. The zero value is not usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	store BlobStore // optional artifact store; nil = memory only
	stats Stats

	// hitObserver, when set, receives the lookup latency of every cache
	// hit with its granularity — the service feeds these into its
	// per-granularity hit-latency histograms. Nil costs nothing: the
	// lookup paths only read the clock when an observer is installed.
	hitObserver atomic.Pointer[func(Granularity, time.Duration)]
}

type entry struct {
	key   string
	value any
	bytes bool // value is []byte (serializable granularity)
}

// New creates a memory-only cache holding at most capacity entries
// across all granularities (minimum 16; default 4096 when capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	if capacity < 16 {
		capacity = 16
	}
	return &Cache{cap: capacity, order: list.New(), entries: map[string]*list.Element{}}
}

// WithDisk layers a filesystem artifact store under the serializable
// granularities (pair verdicts, clique artifacts). It is a thin adapter
// over WithStore with the DiskStore backend.
func (c *Cache) WithDisk(dir string) (*Cache, error) {
	d, err := NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	return c.WithStore(d), nil
}

// WithStore layers an artifact store under the serializable
// granularities: GetBytes falls through to the store on a memory miss
// and promotes hits back into memory; PutBytes writes through. The store
// may be shared with other caches and other processes — entries are
// content-addressed, so cross-process sharing needs no coordination.
func (c *Cache) WithStore(s BlobStore) *Cache {
	c.mu.Lock()
	c.store = s
	c.mu.Unlock()
	return c
}

// Store returns the cache's artifact store (nil when memory only).
func (c *Cache) Store() BlobStore {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

// Stats exposes the hit/miss counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// SetHitObserver installs (or, with nil, removes) the hit-latency
// callback. The observer must be fast and safe for concurrent use — it
// runs inline on every hit of every merge worker.
func (c *Cache) SetHitObserver(fn func(Granularity, time.Duration)) {
	if fn == nil {
		c.hitObserver.Store(nil)
		return
	}
	c.hitObserver.Store(&fn)
}

// observeHit reports one hit's lookup latency. start is zero when the
// lookup path skipped the clock because no observer was installed at
// entry; re-check is deliberate so a racing SetHitObserver never
// produces a garbage duration.
func (c *Cache) observeHit(g Granularity, start time.Time) {
	if start.IsZero() {
		return
	}
	if fn := c.hitObserver.Load(); fn != nil {
		(*fn)(g, time.Since(start))
	}
}

// hitStart returns the clock reading lookups use to time hits, or zero
// when no observer is installed (skipping the syscall).
func (c *Cache) hitStart() time.Time {
	if c.hitObserver.Load() != nil {
		return time.Now()
	}
	return time.Time{}
}

func fullKey(g Granularity, key string) string { return string(g) + "\x00" + key }

// GetObject looks an in-memory object up (context granularity). It never
// consults the disk store.
func (c *Cache) GetObject(g Granularity, key string) (any, bool) {
	start := c.hitStart()
	// The value must be read under the lock: put overwrites entry.value
	// in place when a key is re-stored.
	c.mu.Lock()
	el, ok := c.entries[fullKey(g, key)]
	var v any
	if ok {
		c.order.MoveToFront(el)
		v = el.Value.(*entry).value
	}
	c.mu.Unlock()
	if !ok {
		c.stats.miss(g)
		return nil, false
	}
	c.stats.hit(g)
	c.observeHit(g, start)
	return v, true
}

// PutObject stores an in-memory object (context granularity).
func (c *Cache) PutObject(g Granularity, key string, v any) {
	c.put(fullKey(g, key), v, false)
}

// GetBytes looks a serialized value up: memory first, then the artifact
// store (when configured), promoting store hits into memory.
func (c *Cache) GetBytes(g Granularity, key string) ([]byte, bool) {
	start := c.hitStart()
	fk := fullKey(g, key)
	c.mu.Lock()
	el, ok := c.entries[fk]
	var v []byte
	if ok {
		c.order.MoveToFront(el)
		v = el.Value.(*entry).value.([]byte)
	}
	store := c.store
	c.mu.Unlock()
	if ok {
		c.stats.hit(g)
		c.observeHit(g, start)
		return v, true
	}
	if store != nil {
		if b, err := store.Get(string(g), key); err == nil {
			c.put(fk, b, true)
			c.stats.hit(g)
			c.observeHit(g, start)
			return b, true
		}
	}
	c.stats.miss(g)
	return nil, false
}

// PutBytes stores a serialized value, writing through to the artifact
// store when one is configured.
func (c *Cache) PutBytes(g Granularity, key string, b []byte) {
	c.put(fullKey(g, key), b, true)
	c.mu.Lock()
	store := c.store
	c.mu.Unlock()
	if store != nil {
		store.Put(string(g), key, b) //nolint:errcheck // cache write-through is best effort
	}
}

func (c *Cache) put(fk string, v any, isBytes bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fk]; ok {
		e := el.Value.(*entry)
		e.value, e.bytes = v, isBytes
		c.order.MoveToFront(el)
		return
	}
	c.entries[fk] = c.order.PushFront(&entry{key: fk, value: v, bytes: isBytes})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*entry).key)
	}
}

// Len reports the in-memory entry count across all granularities.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// InvalidatePrefix drops every in-memory entry of the granularity whose
// key starts with the prefix (e.g. a design fingerprint), and reports
// how many entries were dropped. The disk store is left alone — its
// entries are content-addressed and simply stop being referenced.
func (c *Cache) InvalidatePrefix(g Granularity, prefix string) int {
	fp := fullKey(g, prefix)
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*entry); strings.HasPrefix(e.key, fp) {
			c.order.Remove(el)
			delete(c.entries, e.key)
			n++
		}
		el = next
	}
	return n
}

// Clear drops every in-memory entry.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = map[string]*list.Element{}
}
