package incr

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// DiskStore persists serialized cache values under a directory, one file
// per entry at <dir>/<granularity>/<key[:2]>/<key>. Entries are
// content-addressed so there is nothing to invalidate: stale values are
// simply never looked up again. Writes go through a temp file + rename,
// so concurrent processes sharing one cache directory never observe a
// torn entry. The store performs no garbage collection; deleting the
// directory (or any subtree) is always safe.
type DiskStore struct {
	dir string
}

// NewDiskStore opens (creating if needed) a disk store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("incr: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("incr: create cache dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// path maps (granularity, key) to the entry's file path; keys are hex
// digests, but anything path-hostile is rejected by validKey.
func (d *DiskStore) path(gran, key string) (string, bool) {
	if !validKey(gran) || !validKey(key) || len(key) < 3 {
		return "", false
	}
	return filepath.Join(d.dir, gran, key[:2], key), true
}

func validKey(s string) bool {
	if s == "" || strings.ContainsAny(s, "/\\") || s == "." || s == ".." {
		return false
	}
	return true
}

// Get reads one entry; ok is false when absent (or unreadable).
func (d *DiskStore) Get(gran, key string) ([]byte, bool) {
	p, ok := d.path(gran, key)
	if !ok {
		return nil, false
	}
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	return b, true
}

// Put writes one entry atomically (temp file + rename).
func (d *DiskStore) Put(gran, key string, val []byte) error {
	p, ok := d.path(gran, key)
	if !ok {
		return fmt.Errorf("incr: invalid cache key %q/%q", gran, key)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}
