package incr

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// DiskStore is the filesystem BlobStore: one file per entry at
// <dir>/<granularity>/<key[:2]>/<key>. Entries are content-addressed so
// there is nothing to invalidate: stale values are simply never looked
// up again. Writes go through a temp file + rename, so concurrent
// processes sharing one cache directory never observe a torn entry. The
// store performs no garbage collection; deleting the directory (or any
// subtree) is always safe.
type DiskStore struct {
	dir string
}

// NewDiskStore opens (creating if needed) a disk store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("incr: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("incr: create cache dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// path maps (granularity, key) to the entry's file path; keys are hex
// digests, but anything path-hostile is rejected by validBlobAddr.
func (d *DiskStore) path(gran, key string) (string, bool) {
	if !validBlobAddr(gran, key) {
		return "", false
	}
	return filepath.Join(d.dir, gran, key[:2], key), true
}

func validKey(s string) bool {
	if s == "" || strings.ContainsAny(s, "/\\") || s == "." || s == ".." {
		return false
	}
	return true
}

// Get implements BlobStore.
func (d *DiskStore) Get(gran, key string) ([]byte, error) {
	p, ok := d.path(gran, key)
	if !ok {
		return nil, ErrInvalidKey
	}
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, ErrNotFound
	}
	return b, nil
}

// Put implements BlobStore (atomic: temp file + rename).
func (d *DiskStore) Put(gran, key string, val []byte) error {
	p, ok := d.path(gran, key)
	if !ok {
		return fmt.Errorf("%w: %q/%q", ErrInvalidKey, gran, key)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// Stat implements BlobStore.
func (d *DiskStore) Stat(gran, key string) (BlobInfo, error) {
	p, ok := d.path(gran, key)
	if !ok {
		return BlobInfo{}, ErrInvalidKey
	}
	fi, err := os.Stat(p)
	if err != nil {
		return BlobInfo{}, ErrNotFound
	}
	return BlobInfo{Key: key, Size: fi.Size()}, nil
}

// List implements BlobStore: walks the granularity's shard directories.
func (d *DiskStore) List(gran, prefix string) ([]BlobInfo, error) {
	if !validKey(gran) {
		return nil, ErrInvalidKey
	}
	root := filepath.Join(d.dir, gran)
	shards, err := os.ReadDir(root)
	if err != nil {
		return []BlobInfo{}, nil // granularity never written
	}
	out := []BlobInfo{}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		// A shard can only hold keys starting with its 2-char name.
		if prefix != "" && len(prefix) >= 2 && shard.Name() != prefix[:2] {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(root, shard.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || strings.HasPrefix(name, ".tmp-") || !strings.HasPrefix(name, prefix) {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			out = append(out, BlobInfo{Key: name, Size: info.Size()})
		}
	}
	return out, nil
}
