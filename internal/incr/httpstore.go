package incr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// HTTPStore is an S3-style HTTP object client implementing BlobStore:
// objects live at <base>/<granularity>/<key> and respond to GET (read),
// PUT (write), HEAD (stat) and GET <base>/<granularity>/?prefix= (list,
// JSON array of BlobInfo). It is the remote half of a shared artifact
// store — NewBlobHandler serves the same protocol over any local
// BlobStore, so a merge coordinator can export its store to workers with
// two lines, and the same client would speak to any S3-compatible
// gateway exposing that surface.
type HTTPStore struct {
	base   string
	client *http.Client
}

// NewHTTPStore creates a client for the blob service rooted at baseURL
// (e.g. "http://coordinator:8080/fabric/v1/blobs"). A nil client uses a
// dedicated client with a 30s timeout.
func NewHTTPStore(baseURL string, client *http.Client) *HTTPStore {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPStore{base: strings.TrimRight(baseURL, "/"), client: client}
}

func (s *HTTPStore) url(gran, key string) string {
	return s.base + "/" + url.PathEscape(gran) + "/" + url.PathEscape(key)
}

// Get implements BlobStore.
func (s *HTTPStore) Get(gran, key string) ([]byte, error) {
	if !validBlobAddr(gran, key) {
		return nil, ErrInvalidKey
	}
	resp, err := s.client.Get(s.url(gran, key))
	if err != nil {
		return nil, fmt.Errorf("incr: blob get: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return io.ReadAll(resp.Body)
	case http.StatusNotFound:
		return nil, ErrNotFound
	default:
		return nil, fmt.Errorf("incr: blob get: unexpected status %s", resp.Status)
	}
}

// Put implements BlobStore.
func (s *HTTPStore) Put(gran, key string, val []byte) error {
	if !validBlobAddr(gran, key) {
		return ErrInvalidKey
	}
	req, err := http.NewRequest(http.MethodPut, s.url(gran, key), bytes.NewReader(val))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("incr: blob put: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated &&
		resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("incr: blob put: unexpected status %s", resp.Status)
	}
	return nil
}

// Stat implements BlobStore.
func (s *HTTPStore) Stat(gran, key string) (BlobInfo, error) {
	if !validBlobAddr(gran, key) {
		return BlobInfo{}, ErrInvalidKey
	}
	resp, err := s.client.Head(s.url(gran, key))
	if err != nil {
		return BlobInfo{}, fmt.Errorf("incr: blob stat: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return BlobInfo{Key: key, Size: resp.ContentLength}, nil
	case http.StatusNotFound:
		return BlobInfo{}, ErrNotFound
	default:
		return BlobInfo{}, fmt.Errorf("incr: blob stat: unexpected status %s", resp.Status)
	}
}

// List implements BlobStore.
func (s *HTTPStore) List(gran, prefix string) ([]BlobInfo, error) {
	if !validKey(gran) {
		return nil, ErrInvalidKey
	}
	u := s.base + "/" + url.PathEscape(gran) + "/?prefix=" + url.QueryEscape(prefix)
	resp, err := s.client.Get(u)
	if err != nil {
		return nil, fmt.Errorf("incr: blob list: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("incr: blob list: unexpected status %s", resp.Status)
	}
	var out []BlobInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("incr: blob list: %w", err)
	}
	return out, nil
}

// maxBlobBytes caps one PUT body on the serving side. Clique artifacts
// are SDC text + a JSON report; 32 MiB matches the service's request
// cap.
const maxBlobBytes = 32 << 20

// NewBlobHandler serves the HTTPStore protocol over any BlobStore:
// mount it under a prefix (http.StripPrefix) and point NewHTTPStore at
// that URL. Paths are <granularity>/<key> for GET/PUT/HEAD and
// <granularity>/?prefix= for list.
func NewBlobHandler(store BlobStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gran, key, ok := splitBlobPath(r.URL.Path)
		if !ok {
			http.Error(w, "malformed blob path", http.StatusBadRequest)
			return
		}
		// List: trailing slash (empty key) with GET.
		if key == "" {
			if r.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			infos, err := store.List(gran, r.URL.Query().Get("prefix"))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(infos) //nolint:errcheck // client gone
			return
		}
		switch r.Method {
		case http.MethodGet:
			b, err := store.Get(gran, key)
			if err != nil {
				blobError(w, err)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(b) //nolint:errcheck // client gone
		case http.MethodHead:
			info, err := store.Stat(gran, key)
			if err != nil {
				blobError(w, err)
				return
			}
			w.Header().Set("Content-Length", fmt.Sprint(info.Size))
			w.WriteHeader(http.StatusOK)
		case http.MethodPut:
			b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
			if err != nil {
				http.Error(w, "blob too large", http.StatusRequestEntityTooLarge)
				return
			}
			if err := store.Put(gran, key, b); err != nil {
				blobError(w, err)
				return
			}
			w.WriteHeader(http.StatusCreated)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// splitBlobPath parses "<gran>/<key>" ("" key = list). The handler is
// mounted with StripPrefix, so the leading slash may or may not remain.
func splitBlobPath(p string) (gran, key string, ok bool) {
	p = strings.TrimPrefix(p, "/")
	gran, key, found := strings.Cut(p, "/")
	if !found || gran == "" {
		return "", "", false
	}
	if g, err := url.PathUnescape(gran); err == nil {
		gran = g
	}
	if k, err := url.PathUnescape(key); err == nil {
		key = k
	}
	return gran, key, true
}

// blobError maps store errors to HTTP statuses.
func blobError(w http.ResponseWriter, err error) {
	switch {
	case err == ErrNotFound:
		http.Error(w, "not found", http.StatusNotFound)
	case err == ErrInvalidKey:
		http.Error(w, "invalid key", http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
