package incr

import (
	"errors"
	"sort"
	"strings"
	"sync"
)

// BlobStore is the pluggable artifact-store interface behind the cache's
// serializable granularities (pair verdicts, clique artifacts, ETM
// models). Entries are content-addressed — a (granularity, key) pair
// names immutable bytes — so every backend shares the same semantics:
// Put is an idempotent overwrite with identical content, Get of a key
// that was ever Put returns exactly those bytes, and there is nothing to
// invalidate. This is what lets one store serve many processes: a merge
// coordinator and its remote workers can share artifacts through any
// backend without coordination beyond the key.
//
// Implementations in this package: DiskStore (one file per entry),
// MemStore (in-process map, for tests and single-run sharing) and
// HTTPStore (S3-style HTTP object client, served by NewBlobHandler).
// All methods must be safe for concurrent use.
type BlobStore interface {
	// Get reads one blob. A missing key returns ErrNotFound.
	Get(gran, key string) ([]byte, error)
	// Put writes one blob. Writes must be atomic: concurrent readers
	// never observe a torn entry.
	Put(gran, key string, val []byte) error
	// Stat reports a blob's existence and size without reading it. A
	// missing key returns ErrNotFound.
	Stat(gran, key string) (BlobInfo, error)
	// List enumerates the blobs of one granularity whose key starts with
	// prefix (empty prefix lists all), in unspecified order.
	List(gran, prefix string) ([]BlobInfo, error)
}

// BlobInfo describes one stored blob.
type BlobInfo struct {
	Key  string `json:"key"`
	Size int64  `json:"size"`
}

// ErrNotFound reports a Get or Stat of a key the store does not hold.
var ErrNotFound = errors.New("incr: blob not found")

// ErrInvalidKey reports a granularity or key a store cannot address
// (empty, path-hostile, or too short to shard).
var ErrInvalidKey = errors.New("incr: invalid blob key")

// validBlobAddr checks a (granularity, key) pair for store use; every
// backend applies the same rule so a blob written through one backend is
// addressable through any other.
func validBlobAddr(gran, key string) bool {
	return validKey(gran) && validKey(key) && len(key) >= 3
}

// MemStore is an in-memory BlobStore: a concurrency-safe map with no
// eviction. It backs tests and in-process artifact sharing (e.g. an
// in-process multi-node fabric harness) where disk round trips are
// unwanted.
type MemStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
}

// NewMemStore creates an empty in-memory blob store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: map[string][]byte{}}
}

func memKey(gran, key string) string { return gran + "/" + key }

// Get implements BlobStore.
func (s *MemStore) Get(gran, key string) ([]byte, error) {
	if !validBlobAddr(gran, key) {
		return nil, ErrInvalidKey
	}
	s.mu.RLock()
	b, ok := s.blobs[memKey(gran, key)]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// Put implements BlobStore.
func (s *MemStore) Put(gran, key string, val []byte) error {
	if !validBlobAddr(gran, key) {
		return ErrInvalidKey
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	s.blobs[memKey(gran, key)] = cp
	s.mu.Unlock()
	return nil
}

// Stat implements BlobStore.
func (s *MemStore) Stat(gran, key string) (BlobInfo, error) {
	if !validBlobAddr(gran, key) {
		return BlobInfo{}, ErrInvalidKey
	}
	s.mu.RLock()
	b, ok := s.blobs[memKey(gran, key)]
	s.mu.RUnlock()
	if !ok {
		return BlobInfo{}, ErrNotFound
	}
	return BlobInfo{Key: key, Size: int64(len(b))}, nil
}

// List implements BlobStore.
func (s *MemStore) List(gran, prefix string) ([]BlobInfo, error) {
	if !validKey(gran) {
		return nil, ErrInvalidKey
	}
	pfx := gran + "/"
	s.mu.RLock()
	out := []BlobInfo{}
	for k, b := range s.blobs {
		if strings.HasPrefix(k, pfx) && strings.HasPrefix(k[len(pfx):], prefix) {
			out = append(out, BlobInfo{Key: k[len(pfx):], Size: int64(len(b))})
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Len reports the number of stored blobs across all granularities.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}
