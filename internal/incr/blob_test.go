package incr

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestBlobStoreConformance runs every backend through the same
// contract: Get/Put/Stat/List semantics, ErrNotFound on absent keys,
// hostile-key rejection.
func TestBlobStoreConformance(t *testing.T) {
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemStore()
	blobSrv := httptest.NewServer(http.StripPrefix("/blobs", NewBlobHandler(NewMemStore())))
	defer blobSrv.Close()

	backends := map[string]BlobStore{
		"disk": disk,
		"mem":  mem,
		"http": NewHTTPStore(blobSrv.URL+"/blobs", nil),
	}
	for name, store := range backends {
		t.Run(name, func(t *testing.T) {
			k1 := Hash("one")
			k2 := Hash("two")
			if _, err := store.Get("pair", k1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get of absent key: err = %v, want ErrNotFound", err)
			}
			if _, err := store.Stat("pair", k1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Stat of absent key: err = %v, want ErrNotFound", err)
			}
			if err := store.Put("pair", k1, []byte("alpha")); err != nil {
				t.Fatal(err)
			}
			if err := store.Put("pair", k2, []byte("beta-longer")); err != nil {
				t.Fatal(err)
			}
			b, err := store.Get("pair", k1)
			if err != nil || string(b) != "alpha" {
				t.Fatalf("Get = %q, %v", b, err)
			}
			info, err := store.Stat("pair", k2)
			if err != nil || info.Size != int64(len("beta-longer")) || info.Key != k2 {
				t.Fatalf("Stat = %+v, %v", info, err)
			}
			// Overwrite with identical content is idempotent.
			if err := store.Put("pair", k1, []byte("alpha")); err != nil {
				t.Fatal(err)
			}
			all, err := store.List("pair", "")
			if err != nil || len(all) != 2 {
				t.Fatalf("List all = %v, %v", all, err)
			}
			only, err := store.List("pair", k1[:4])
			if err != nil || len(only) != 1 || only[0].Key != k1 {
				t.Fatalf("List prefix = %v, %v", only, err)
			}
			empty, err := store.List("clique", "")
			if err != nil || len(empty) != 0 {
				t.Fatalf("List of unwritten granularity = %v, %v", empty, err)
			}
			for _, bad := range []string{"", "a/b", `a\b`, "..", "xy"} {
				if err := store.Put("pair", bad, []byte("x")); err == nil {
					t.Fatalf("Put accepted hostile key %q", bad)
				}
				if _, err := store.Get("pair", bad); err == nil {
					t.Fatalf("Get accepted hostile key %q", bad)
				}
			}
		})
	}
}

// TestCacheWithStoreSharing: two caches sharing one BlobStore exchange
// serialized entries (the coordinator/worker artifact-sharing shape).
func TestCacheWithStoreSharing(t *testing.T) {
	shared := NewMemStore()
	a := New(16).WithStore(shared)
	b := New(16).WithStore(shared)
	key := Hash("clique", "artifact")
	a.PutBytes(GranClique, key, []byte("merged sdc"))
	got, ok := b.GetBytes(GranClique, key)
	if !ok || string(got) != "merged sdc" {
		t.Fatalf("shared store fall-through: got %q %v", got, ok)
	}
	if s := b.Stats().Snapshot(); s.CliqueHits != 1 {
		t.Fatalf("store hit not counted: %+v", s)
	}
	// Objects never reach the store.
	a.PutObject(GranContext, key, 42)
	if _, ok := b.GetObject(GranContext, key); ok {
		t.Fatal("object leaked into the shared store")
	}
	if shared.Len() != 1 {
		t.Fatalf("store holds %d blobs, want 1", shared.Len())
	}
}

// TestHTTPStoreOverDisk drives the HTTP client against a handler backed
// by a DiskStore, proving client and server compose with any backend.
func TestHTTPStoreOverDisk(t *testing.T) {
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.StripPrefix("/store", NewBlobHandler(disk)))
	defer srv.Close()
	remote := NewHTTPStore(srv.URL+"/store", nil)

	key := Hash("payload")
	if err := remote.Put("clique", key, []byte("artifact-bytes")); err != nil {
		t.Fatal(err)
	}
	// Visible locally (same bytes on disk) and remotely.
	local, err := disk.Get("clique", key)
	if err != nil || string(local) != "artifact-bytes" {
		t.Fatalf("disk view: %q, %v", local, err)
	}
	got, err := remote.Get("clique", key)
	if err != nil || string(got) != "artifact-bytes" {
		t.Fatalf("remote view: %q, %v", got, err)
	}
}
