package sdc

import (
	"fmt"
	"strings"
)

// Write renders a mode back to SDC text. The output re-parses to an
// equivalent mode and is the final artifact of the merging flow.
func Write(m *Mode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Mode: %s\n", m.Name)

	for _, c := range m.Clocks {
		b.WriteString(writeClock(c))
	}
	for _, g := range m.ClockGroups {
		b.WriteString(writeClockGroups(g))
	}
	for _, l := range m.ClockLatencies {
		b.WriteString(writeClockLatency(l))
	}
	for _, u := range m.ClockUncertainties {
		b.WriteString(writeClockUncertainty(u))
	}
	for _, t := range m.ClockTransitions {
		b.WriteString(writeClockTransition(t))
	}
	for _, s := range m.ClockSenses {
		b.WriteString(writeClockSense(s))
	}
	for _, pc := range m.PropagatedClocks {
		b.WriteString(writePropagatedClock(pc))
	}
	for _, ca := range m.Cases {
		fmt.Fprintf(&b, "set_case_analysis %s %s\n", ca.Value, objectArgs(ca.Objects))
	}
	for _, d := range m.Disables {
		b.WriteString(writeDisable(d))
	}
	for _, d := range m.IODelays {
		b.WriteString(writeIODelay(d))
	}
	for _, t := range m.InputTransitions {
		fmt.Fprintf(&b, "set_input_transition%s %g %s\n", minMaxFlag(t.Level), t.Value, objectArgs(t.Ports))
	}
	for _, l := range m.Loads {
		fmt.Fprintf(&b, "set_load %g %s\n", l.Value, objectArgs(l.Ports))
	}
	for _, dc := range m.DrivingCells {
		if dc.CellName != "" {
			fmt.Fprintf(&b, "set_driving_cell -lib_cell %s %s\n", dc.CellName, objectArgs(dc.Ports))
		} else {
			fmt.Fprintf(&b, "set_drive %g %s\n", dc.Resistance, objectArgs(dc.Ports))
		}
	}
	for _, mtb := range m.MaxTimeBorrows {
		fmt.Fprintf(&b, "set_max_time_borrow %g %s\n", mtb.Value, clockAndPinArgs(mtb.Clocks, mtb.Objects))
	}
	for _, e := range m.Exceptions {
		b.WriteString(WriteException(e))
	}
	return b.String()
}

func writeClock(c *Clock) string {
	var b strings.Builder
	if c.Generated {
		fmt.Fprintf(&b, "create_generated_clock -name %s -source %s", quoteName(c.Name), objectArgs(c.MasterPins))
		if c.Master != "" {
			fmt.Fprintf(&b, " -master_clock %s", quoteName(c.Master))
		}
		if c.DivideBy > 1 {
			fmt.Fprintf(&b, " -divide_by %d", c.DivideBy)
		}
		if c.MultiplyBy > 1 {
			fmt.Fprintf(&b, " -multiply_by %d", c.MultiplyBy)
		}
		if c.Invert {
			b.WriteString(" -invert")
		}
	} else {
		fmt.Fprintf(&b, "create_clock -name %s -period %g", quoteName(c.Name), c.Period)
		if len(c.Waveform) == 2 && (c.Waveform[0] != 0 || c.Waveform[1] != c.Period/2) {
			fmt.Fprintf(&b, " -waveform {%g %g}", c.Waveform[0], c.Waveform[1])
		}
	}
	if c.Add {
		b.WriteString(" -add")
	}
	if c.Comment != "" {
		fmt.Fprintf(&b, " -comment %q", c.Comment)
	}
	if len(c.Sources) > 0 {
		fmt.Fprintf(&b, " %s", objectArgs(c.Sources))
	}
	b.WriteString("\n")
	return b.String()
}

func writeClockGroups(g *ClockGroups) string {
	var b strings.Builder
	b.WriteString("set_clock_groups")
	if g.Name != "" {
		fmt.Fprintf(&b, " -name %s", quoteName(g.Name))
	}
	fmt.Fprintf(&b, " -%s", g.Kind)
	for _, grp := range g.Groups {
		fmt.Fprintf(&b, " -group [get_clocks {%s}]", strings.Join(grp, " "))
	}
	b.WriteString("\n")
	return b.String()
}

func writeClockLatency(l *ClockLatency) string {
	var b strings.Builder
	b.WriteString("set_clock_latency")
	if l.Source {
		b.WriteString(" -source")
	}
	b.WriteString(minMaxFlag(l.Level))
	switch l.Edge {
	case EdgeRise:
		b.WriteString(" -rise")
	case EdgeFall:
		b.WriteString(" -fall")
	}
	fmt.Fprintf(&b, " %g %s\n", l.Value, clockAndPinArgs(l.Clocks, l.Pins))
	return b.String()
}

func writeClockUncertainty(u *ClockUncertainty) string {
	var b strings.Builder
	b.WriteString("set_clock_uncertainty")
	if u.Setup && !u.Hold {
		b.WriteString(" -setup")
	}
	if u.Hold && !u.Setup {
		b.WriteString(" -hold")
	}
	if u.FromClock != "" {
		fmt.Fprintf(&b, " -from [get_clocks %s] -to [get_clocks %s] %g\n",
			quoteName(u.FromClock), quoteName(u.ToClock), u.Value)
		return b.String()
	}
	fmt.Fprintf(&b, " %g %s\n", u.Value, clockAndPinArgs(u.Clocks, u.Pins))
	return b.String()
}

func writeClockTransition(t *ClockTransition) string {
	return fmt.Sprintf("set_clock_transition%s %g [get_clocks {%s}]\n",
		minMaxFlag(t.Level), t.Value, strings.Join(t.Clocks, " "))
}

func writeClockSense(s *ClockSense) string {
	var b strings.Builder
	b.WriteString("set_clock_sense")
	if s.StopPropagation {
		b.WriteString(" -stop_propagation")
	}
	if s.Positive {
		b.WriteString(" -positive")
	}
	if s.Negative {
		b.WriteString(" -negative")
	}
	if len(s.Clocks) > 0 {
		fmt.Fprintf(&b, " -clock [get_clocks {%s}]", strings.Join(s.Clocks, " "))
	}
	fmt.Fprintf(&b, " %s", objectArgs(s.Pins))
	if s.Comment != "" {
		fmt.Fprintf(&b, " ;# %s", s.Comment)
	}
	b.WriteString("\n")
	return b.String()
}

func writePropagatedClock(pc *PropagatedClock) string {
	return fmt.Sprintf("set_propagated_clock %s\n", clockAndPinArgs(pc.Clocks, pc.Pins))
}

func writeDisable(d *DisableTiming) string {
	var b strings.Builder
	b.WriteString("set_disable_timing")
	if d.FromPin != "" {
		fmt.Fprintf(&b, " -from %s", quoteName(d.FromPin))
	}
	if d.ToPin != "" {
		fmt.Fprintf(&b, " -to %s", quoteName(d.ToPin))
	}
	fmt.Fprintf(&b, " %s", objectArgs(d.Objects))
	if d.Comment != "" {
		fmt.Fprintf(&b, " ;# %s", d.Comment)
	}
	b.WriteString("\n")
	return b.String()
}

func writeIODelay(d *IODelay) string {
	var b strings.Builder
	if d.IsInput {
		b.WriteString("set_input_delay")
	} else {
		b.WriteString("set_output_delay")
	}
	fmt.Fprintf(&b, " %g", d.Value)
	if d.Clock != "" {
		fmt.Fprintf(&b, " -clock [get_clocks %s]", quoteName(d.Clock))
	}
	if d.ClockFall {
		b.WriteString(" -clock_fall")
	}
	b.WriteString(minMaxFlag(d.Level))
	if d.Add {
		b.WriteString(" -add_delay")
	}
	fmt.Fprintf(&b, " %s\n", objectArgs(d.Ports))
	return b.String()
}

// WriteException renders a single exception command.
func WriteException(e *Exception) string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	switch e.Kind {
	case MulticyclePath:
		fmt.Fprintf(&b, " %d", e.Multiplier)
		if e.Start {
			b.WriteString(" -start")
		}
	case MaxDelay, MinDelay:
		fmt.Fprintf(&b, " %g", e.Value)
	}
	switch e.SetupHold {
	case MaxOnly:
		b.WriteString(" -setup")
	case MinOnly:
		b.WriteString(" -hold")
	}
	b.WriteString(pointFlag("from", e.From))
	for _, t := range e.Throughs {
		b.WriteString(pointFlag("through", t))
	}
	b.WriteString(pointFlag("to", e.To))
	if e.Comment != "" {
		fmt.Fprintf(&b, " -comment %q", e.Comment)
	}
	b.WriteString("\n")
	return b.String()
}

func pointFlag(base string, pl *PointList) string {
	if pl.Empty() {
		return ""
	}
	flag := base
	switch pl.Edge {
	case EdgeRise:
		flag = "rise_" + base
	case EdgeFall:
		flag = "fall_" + base
	}
	var parts []string
	if len(pl.Clocks) > 0 {
		parts = append(parts, fmt.Sprintf("[get_clocks {%s}]", strings.Join(pl.Clocks, " ")))
	}
	if len(pl.Pins) > 0 {
		parts = append(parts, objectArgs(pl.Pins))
	}
	inner := parts[0]
	if len(parts) > 1 {
		inner = "[list " + strings.Join(parts, " ") + "]"
	}
	return fmt.Sprintf(" -%s %s", flag, inner)
}

// objectArgs renders typed references as the appropriate query commands.
func objectArgs(refs []ObjRef) string {
	var ports, pins, cells []string
	for _, r := range refs {
		switch r.Kind {
		case PortObj:
			ports = append(ports, r.Name)
		case PinObj:
			pins = append(pins, r.Name)
		case CellObj:
			cells = append(cells, r.Name)
		case ClockObj:
			// clocks are written via get_clocks by the callers
		}
	}
	var parts []string
	if len(ports) > 0 {
		parts = append(parts, fmt.Sprintf("[get_ports {%s}]", strings.Join(ports, " ")))
	}
	if len(pins) > 0 {
		parts = append(parts, fmt.Sprintf("[get_pins {%s}]", strings.Join(pins, " ")))
	}
	if len(cells) > 0 {
		parts = append(parts, fmt.Sprintf("[get_cells {%s}]", strings.Join(cells, " ")))
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "[list " + strings.Join(parts, " ") + "]"
}

func clockAndPinArgs(clocks []string, pins []ObjRef) string {
	var parts []string
	if len(clocks) > 0 {
		parts = append(parts, fmt.Sprintf("[get_clocks {%s}]", strings.Join(clocks, " ")))
	}
	if len(pins) > 0 {
		parts = append(parts, objectArgs(pins))
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "[list " + strings.Join(parts, " ") + "]"
}

func minMaxFlag(m MinMax) string {
	switch m {
	case MinOnly:
		return " -min"
	case MaxOnly:
		return " -max"
	default:
		return ""
	}
}

func quoteName(n string) string {
	if strings.ContainsAny(n, " \t[]{}$\"") {
		return "{" + n + "}"
	}
	return n
}
