package sdc_test

import (
	"fmt"
	"log"

	"modemerge/internal/gen"
	"modemerge/internal/sdc"
)

// ExampleParse parses an SDC script (with Tcl loops and variables)
// against a design and prints the resolved constraints.
func ExampleParse() {
	design := gen.PaperCircuit()
	mode, ignored, err := sdc.Parse("func", `
set PERIOD 10
create_clock -name clkA -period $PERIOD [get_ports clk1]
set_units -time ns
foreach pin {inv1/Z and1/Z} {
    set_false_path -through [get_pins $pin]
}
`, design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clock %s period %g\n", mode.Clocks[0].Name, mode.Clocks[0].Period)
	fmt.Printf("%d exceptions, ignored commands: %v\n", len(mode.Exceptions), ignored)
	fmt.Print(sdc.WriteException(mode.Exceptions[0]))
	// Output:
	// clock clkA period 10
	// 2 exceptions, ignored commands: [set_units]
	// set_false_path -through [get_pins {inv1/Z}]
}

// ExampleWrite round-trips a mode through SDC text.
func ExampleWrite() {
	design := gen.PaperCircuit()
	mode, _, err := sdc.Parse("m", `
create_clock -name clkA -period 4 [get_ports clk1]
set_case_analysis 0 [get_ports sel1]
`, design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sdc.Write(mode))
	// Output:
	// # Mode: m
	// create_clock -name clkA -period 4 [get_ports {clk1}]
	// set_case_analysis 0 [get_ports {sel1}]
}
