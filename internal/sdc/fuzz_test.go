package sdc

import (
	"testing"

	"modemerge/internal/library"
	"modemerge/internal/netlist"
)

// fuzzVerilog is the quickstart design from examples/quickstart: two
// registers clocked through a functional/test clock mux. Small enough to
// parse fast, rich enough (ports, pins, clocks, hierarchy-free nets) that
// object queries in fuzzed SDC can actually resolve.
const fuzzVerilog = `
module quick (clk, tclk, tmode, din, dout);
  input clk, tclk, tmode, din;
  output dout;
  wire gck, q1, n1;
  MUX2 ckmux (.I0(clk), .I1(tclk), .S(tmode), .Z(gck));
  DFF r1 (.CP(gck), .D(din), .Q(q1));
  INV u1 (.A(q1), .Z(n1));
  DFF r2 (.CP(gck), .D(n1), .Q(dout));
endmodule
`

// FuzzParseSDC feeds arbitrary SDC text to the parser against a fixed
// design. The property is "no panic, no hang": every input must produce a
// mode or an error within the interpreter budgets.
func FuzzParseSDC(f *testing.F) {
	design, err := netlist.ParseVerilog(fuzzVerilog, library.Default(), "quick")
	if err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		// examples/quickstart functional and test modes.
		"create_clock -name FCLK -period 2 [get_ports clk]\n" +
			"set_case_analysis 0 [get_ports tmode]\n" +
			"set_input_delay 0.4 -clock FCLK [get_ports din]\n" +
			"set_output_delay 0.4 -clock FCLK [get_ports dout]\n",
		"create_clock -name TCLK -period 10 [get_ports tclk]\n" +
			"set_case_analysis 1 [get_ports tmode]\n" +
			"set_input_delay 1.0 -clock TCLK [get_ports din]\n" +
			"set_output_delay 1.0 -clock TCLK [get_ports dout]\n" +
			"set_multicycle_path 2 -setup -from [get_clocks TCLK]\n",
		// Command-surface coverage: every family the parser registers.
		"create_clock -period 2 -waveform {0 1} [get_ports clk]\n" +
			"create_generated_clock -name G -source [get_ports clk] -divide_by 2 [get_pins r1/Q]\n" +
			"set_clock_groups -physically_exclusive -group {FCLK} -group {G}\n",
		"create_clock -name C -period 2 [get_ports clk]\n" +
			"set_clock_latency 0.3 [get_clocks C]\n" +
			"set_clock_latency -source -late 0.5 [get_clocks C]\n" +
			"set_clock_uncertainty 0.1 [get_clocks C]\n" +
			"set_clock_uncertainty -from [get_clocks C] -to [get_clocks C] 0.2\n" +
			"set_clock_transition 0.05 [get_clocks C]\n" +
			"set_clock_sense -stop_propagation [get_pins ckmux/Z]\n" +
			"set_propagated_clock [get_clocks C]\n",
		"set_false_path -from [get_pins r1/CP] -through [get_pins u1/Z] -to [get_pins r2/D]\n" +
			"set_max_delay 1.5 -from [get_ports din]\n" +
			"set_min_delay 0.1 -to [get_ports dout]\n",
		"set_disable_timing [get_pins ckmux/I1]\n" +
			"set_input_transition 0.08 [get_ports din]\n" +
			"set_load 0.02 [get_ports dout]\n" +
			"set_drive 1.2 [get_ports din]\n" +
			"set_driving_cell -lib_cell BUF [get_ports din]\n" +
			"set_max_time_borrow 0.5 [get_pins r1/D]\n",
		"foreach p {din tmode} {\n  set_input_transition 0.1 [get_ports $p]\n}\n",
		"set_units -time ns\nset sdc_version 2.1\n",
		// Malformed shapes that must error, not crash.
		"create_clock",
		"create_clock -period x [get_ports clk]",
		"set_false_path -setup -hold",
		"set_input_delay -clock",
		"set_case_analysis 2 [get_ports tmode]",
		"get_ports {*}",
		"set_multicycle_path -1 -from [get_clocks nosuch]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		p := NewParser("fuzz", design)
		p.Interp().MaxSteps = 10000
		_ = p.Eval(src) // must not panic or hang
	})
}
