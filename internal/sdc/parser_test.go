package sdc

import (
	"strings"
	"testing"

	"modemerge/internal/gen"
	"modemerge/internal/library"
)

func parseOK(t *testing.T, src string) *Mode {
	t.Helper()
	m, _, err := Parse("test", src, gen.PaperCircuit())
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return m
}

func parseErr(t *testing.T, src string) {
	t.Helper()
	if _, _, err := Parse("test", src, gen.PaperCircuit()); err == nil {
		t.Errorf("expected parse error for:\n%s", src)
	}
}

func TestCreateClock(t *testing.T) {
	m := parseOK(t, `create_clock -name clkA -period 10 [get_ports clk1]`)
	if len(m.Clocks) != 1 {
		t.Fatalf("clocks = %d", len(m.Clocks))
	}
	c := m.Clocks[0]
	if c.Name != "clkA" || c.Period != 10 {
		t.Errorf("clock = %+v", c)
	}
	if len(c.Waveform) != 2 || c.Waveform[0] != 0 || c.Waveform[1] != 5 {
		t.Errorf("waveform = %v", c.Waveform)
	}
	if len(c.Sources) != 1 || c.Sources[0] != (ObjRef{PortObj, "clk1"}) {
		t.Errorf("sources = %v", c.Sources)
	}
}

func TestCreateClockDefaults(t *testing.T) {
	m := parseOK(t, `create_clock -period 4 [get_ports clk2]`)
	if m.Clocks[0].Name != "clk2" {
		t.Errorf("default name = %q, want clk2", m.Clocks[0].Name)
	}
	// Virtual clock needs -name.
	m2 := parseOK(t, `create_clock -period 4 -name vclk`)
	if !m2.Clocks[0].Virtual() {
		t.Error("expected virtual clock")
	}
	parseErr(t, `create_clock -period 4`)
	parseErr(t, `create_clock -name x [get_ports clk1]`)
	parseErr(t, `create_clock -period -3 -name x`)
	parseErr(t, `create_clock -period 10 -waveform {2 1} -name x`)
}

func TestCreateClockReplaceAndAdd(t *testing.T) {
	// Without -add, the second clock on clk1 replaces the first.
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 20 [get_ports clk1]
`)
	if len(m.Clocks) != 1 || m.Clocks[0].Name != "clkB" {
		t.Errorf("clocks = %v", m.ClockNames())
	}
	// With -add both survive.
	m2 := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 20 -add [get_ports clk1]
`)
	if len(m2.Clocks) != 2 {
		t.Errorf("clocks = %v", m2.ClockNames())
	}
	// Duplicate names rejected.
	parseErr(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkA -period 20 [get_ports clk2]
`)
}

func TestCreateGeneratedClock(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_generated_clock -name gdiv -source [get_ports clk1] -divide_by 2 [get_pins mux1/Z]
`)
	g := m.ClockByName("gdiv")
	if g == nil || !g.Generated {
		t.Fatal("generated clock missing")
	}
	if g.Master != "clkA" || g.Period != 20 || g.DivideBy != 2 {
		t.Errorf("generated = %+v", g)
	}
	parseErr(t, `create_generated_clock -name g -source [get_ports clk1] [get_pins mux1/Z]`)
	parseErr(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_generated_clock -name g -source [get_ports clk1] -divide_by 0 [get_pins mux1/Z]`)
}

func TestGetObjectsGlob(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk*]
`)
	if len(m.Clocks[0].Sources) != 2 {
		t.Errorf("glob clk* matched %v", m.Clocks[0].Sources)
	}
	parseErr(t, `create_clock -name c -period 1 [get_ports nonexistent*]`)
	parseErr(t, `create_clock -name c -period 1 [get_ports bogus]`)
}

func TestGlobFunction(t *testing.T) {
	cases := []struct {
		pat, name string
		want      bool
	}{
		{"clk*", "clk1", true},
		{"clk*", "cl", false},
		{"r?/CP", "rA/CP", true},
		{"r?/CP", "rAB/CP", false},
		{"*", "anything", true},
		{"d[3]", "d[3]", true}, // brackets literal
		{"d[*]", "d[12]", true},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "aXbY", false},
	}
	for _, c := range cases {
		if got := Glob(c.pat, c.name); got != c.want {
			t.Errorf("Glob(%q,%q) = %v, want %v", c.pat, c.name, got, c.want)
		}
	}
}

func TestCaseAnalysis(t *testing.T) {
	m := parseOK(t, `
set_case_analysis 0 [get_ports sel1]
set_case_analysis 1 [get_pins mux1/S]
`)
	if len(m.Cases) != 2 {
		t.Fatalf("cases = %d", len(m.Cases))
	}
	if m.Cases[0].Value != library.L0 || m.Cases[0].Objects[0].Name != "sel1" {
		t.Errorf("case0 = %+v", m.Cases[0])
	}
	if m.Cases[1].Value != library.L1 || m.Cases[1].Objects[0].Kind != PinObj {
		t.Errorf("case1 = %+v", m.Cases[1])
	}
	parseErr(t, `set_case_analysis 2 [get_ports sel1]`)
	parseErr(t, `set_case_analysis 0`)
}

func TestBareNameResolution(t *testing.T) {
	// Pins and ports given without get_* must resolve.
	m := parseOK(t, `
create_clock -name clkA -period 10 clk1
set_case_analysis 0 sel1
set_false_path -through and1/Z
`)
	if m.Clocks[0].Sources[0].Kind != PortObj {
		t.Errorf("bare port resolved to %v", m.Clocks[0].Sources[0])
	}
	if m.Exceptions[0].Throughs[0].Pins[0] != (ObjRef{PinObj, "and1/Z"}) {
		t.Errorf("bare pin resolved to %v", m.Exceptions[0].Throughs[0].Pins[0])
	}
	// A clock sharing a port name: bare reference in -from prefers clock.
	m2 := parseOK(t, `
create_clock -name clk1 -period 10 [get_ports clk1]
set_false_path -from clk1
`)
	if len(m2.Exceptions[0].From.Clocks) != 1 {
		t.Errorf("bare name did not prefer clock: %+v", m2.Exceptions[0].From)
	}
}

func TestExceptions(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_multicycle_path 2 -through [get_pins inv1/Z]
set_false_path -through [get_pins and1/Z]
set_false_path -from [get_pins rA/CP] -to [get_pins rY/D]
set_max_delay 5.5 -from [get_clocks clkA] -to [get_ports out1]
set_min_delay 0.2 -to [get_pins rX/D]
set_multicycle_path 1 -hold -from [get_pins rA/CP]
`)
	if len(m.Exceptions) != 6 {
		t.Fatalf("exceptions = %d", len(m.Exceptions))
	}
	mcp := m.Exceptions[0]
	if mcp.Kind != MulticyclePath || mcp.Multiplier != 2 || len(mcp.Throughs) != 1 {
		t.Errorf("mcp = %+v", mcp)
	}
	fp2 := m.Exceptions[2]
	if fp2.From.Pins[0].Name != "rA/CP" || fp2.To.Pins[0].Name != "rY/D" {
		t.Errorf("fp2 = %+v from=%+v to=%+v", fp2, fp2.From, fp2.To)
	}
	md := m.Exceptions[3]
	if md.Kind != MaxDelay || md.Value != 5.5 || md.From.Clocks[0] != "clkA" {
		t.Errorf("max_delay = %+v", md)
	}
	hold := m.Exceptions[5]
	if hold.SetupHold != MinOnly {
		t.Errorf("hold mcp SetupHold = %v", hold.SetupHold)
	}
	parseErr(t, `set_false_path`)
	parseErr(t, `set_multicycle_path -from [get_pins rA/CP]`)
	parseErr(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -through [get_clocks clkA]`)
}

func TestExceptionThroughOrder(t *testing.T) {
	m := parseOK(t, `set_false_path -through [get_pins inv1/Z] -through [get_pins and1/Z]`)
	e := m.Exceptions[0]
	if len(e.Throughs) != 2 {
		t.Fatalf("throughs = %d", len(e.Throughs))
	}
	if e.Throughs[0].Pins[0].Name != "inv1/Z" || e.Throughs[1].Pins[0].Name != "and1/Z" {
		t.Errorf("through order wrong: %v then %v", e.Throughs[0].Pins, e.Throughs[1].Pins)
	}
}

func TestRiseFallPoints(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -rise_from [get_clocks clkA] -fall_to [get_pins rX/D]
`)
	e := m.Exceptions[0]
	if e.From.Edge != EdgeRise || e.To.Edge != EdgeFall {
		t.Errorf("edges = %v, %v", e.From.Edge, e.To.Edge)
	}
}

func TestIODelays(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_input_delay 2.0 -clock clkA [get_ports in1]
set_output_delay 1.5 -clock [get_clocks clkA] -min [get_ports out1]
set_input_delay 2.5 -clock clkA -add_delay -clock_fall [get_ports in1]
`)
	if len(m.IODelays) != 3 {
		t.Fatalf("iodelays = %d", len(m.IODelays))
	}
	in := m.IODelays[0]
	if !in.IsInput || in.Value != 2 || in.Clock != "clkA" || in.Ports[0].Name != "in1" {
		t.Errorf("input delay = %+v", in)
	}
	out := m.IODelays[1]
	if out.IsInput || out.Level != MinOnly {
		t.Errorf("output delay = %+v", out)
	}
	add := m.IODelays[2]
	if !add.Add || !add.ClockFall {
		t.Errorf("add delay = %+v", add)
	}
	parseErr(t, `set_input_delay 2.0 -clock nosuchclock [get_ports in1]`)
}

func TestClockGroups(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 20 [get_ports clk2]
set_clock_groups -physically_exclusive -name g1 -group [get_clocks clkA] -group [get_clocks clkB]
`)
	g := m.ClockGroups[0]
	if g.Kind != PhysicallyExclusive || len(g.Groups) != 2 || g.Groups[0][0] != "clkA" {
		t.Errorf("groups = %+v", g)
	}
	parseErr(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_clock_groups -physically_exclusive -group [get_clocks clkA]`)
	parseErr(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 20 [get_ports clk2]
set_clock_groups -group [get_clocks clkA] -group [get_clocks clkB]`)
}

func TestClockConstraints(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_clock_latency 0.5 [get_clocks clkA]
set_clock_latency -source -min 0.2 [get_clocks clkA]
set_clock_uncertainty 0.1 [get_clocks clkA]
set_clock_uncertainty -setup 0.15 [get_clocks clkA]
set_clock_transition 0.08 [get_clocks clkA]
set_propagated_clock [get_clocks clkA]
`)
	if len(m.ClockLatencies) != 2 || len(m.ClockUncertainties) != 2 ||
		len(m.ClockTransitions) != 1 || len(m.PropagatedClocks) != 1 {
		t.Errorf("counts: lat=%d unc=%d tr=%d prop=%d",
			len(m.ClockLatencies), len(m.ClockUncertainties),
			len(m.ClockTransitions), len(m.PropagatedClocks))
	}
	if m.ClockLatencies[1].Level != MinOnly || !m.ClockLatencies[1].Source {
		t.Errorf("latency = %+v", m.ClockLatencies[1])
	}
	u := m.ClockUncertainties[1]
	if !u.Setup || u.Hold {
		t.Errorf("uncertainty = %+v", u)
	}
}

func TestInterClockUncertainty(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 20 [get_ports clk2]
set_clock_uncertainty -from [get_clocks clkA] -to [get_clocks clkB] 0.3
`)
	u := m.ClockUncertainties[0]
	if u.FromClock != "clkA" || u.ToClock != "clkB" || u.Value != 0.3 {
		t.Errorf("uncertainty = %+v", u)
	}
}

func TestClockSense(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_clock_sense -stop_propagation -clock [get_clocks clkA] [get_pins mux1/Z]
`)
	s := m.ClockSenses[0]
	if !s.StopPropagation || s.Clocks[0] != "clkA" || s.Pins[0].Name != "mux1/Z" {
		t.Errorf("sense = %+v", s)
	}
}

func TestDisableTiming(t *testing.T) {
	m := parseOK(t, `
set_disable_timing [get_ports sel1]
set_disable_timing [get_pins and1/A]
set_disable_timing -from I0 -to Z [get_cells mux1]
`)
	if len(m.Disables) != 3 {
		t.Fatalf("disables = %d", len(m.Disables))
	}
	if m.Disables[2].FromPin != "I0" || m.Disables[2].ToPin != "Z" {
		t.Errorf("arc disable = %+v", m.Disables[2])
	}
	parseErr(t, `set_disable_timing -from A -to Z [get_ports sel1]`)
}

func TestDriveLoad(t *testing.T) {
	m := parseOK(t, `
set_input_transition 0.1 [get_ports in1]
set_load 3.5 [get_ports out1]
set_drive 0.7 [get_ports in1]
set_driving_cell -lib_cell BUF [get_ports sel1]
`)
	if len(m.InputTransitions) != 1 || len(m.Loads) != 1 || len(m.DrivingCells) != 2 {
		t.Errorf("counts: tr=%d load=%d drv=%d",
			len(m.InputTransitions), len(m.Loads), len(m.DrivingCells))
	}
}

func TestIgnoredCommands(t *testing.T) {
	m, ignored, err := Parse("t", `
set_units -time ns
set_operating_conditions typical
set_wire_load_model -name small
set_max_transition 0.5 [current_design]
group_path -name io -from [all_inputs]
`, gen.PaperCircuit())
	if err != nil {
		t.Fatal(err)
	}
	if len(ignored) < 5 {
		t.Errorf("ignored = %v", ignored)
	}
	_ = m
}

func TestAllQueries(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_input_delay 1 -clock clkA [all_inputs]
set_output_delay 1 -clock clkA [all_outputs]
set_false_path -from [all_registers -clock_pins] -to [all_registers -data_pins]
`)
	// all_inputs includes clk1, clk2, in1, sel1, sel2 (5 ports).
	if len(m.IODelays[0].Ports) != 5 {
		t.Errorf("all_inputs gave %d ports", len(m.IODelays[0].Ports))
	}
	if len(m.IODelays[1].Ports) != 1 {
		t.Errorf("all_outputs gave %d ports", len(m.IODelays[1].Ports))
	}
	e := m.Exceptions[0]
	if len(e.From.Pins) != 6 || len(e.To.Pins) != 6 {
		t.Errorf("all_registers: from=%d to=%d pins", len(e.From.Pins), len(e.To.Pins))
	}
}

func TestVariablesAndExpr(t *testing.T) {
	m := parseOK(t, `
set PERIOD 10
create_clock -name clkA -period $PERIOD [get_ports clk1]
create_clock -name clkB -period [expr $PERIOD * 2] [get_ports clk2]
`)
	if m.Clocks[0].Period != 10 || m.Clocks[1].Period != 20 {
		t.Errorf("periods = %g, %g", m.Clocks[0].Period, m.Clocks[1].Period)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	src := `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 20 -waveform {5 15} -add [get_ports clk1]
create_generated_clock -name gdiv -source [get_ports clk1] -master_clock clkA -divide_by 2 [get_pins mux1/Z]
set_clock_groups -physically_exclusive -name cg -group [get_clocks clkA] -group [get_clocks clkB]
set_clock_latency 0.5 [get_clocks clkA]
set_clock_latency -source -min 0.2 [get_clocks clkB]
set_clock_uncertainty -setup 0.1 [get_clocks clkA]
set_clock_transition 0.05 [get_clocks clkA]
set_clock_sense -stop_propagation -clock [get_clocks clkA] [get_pins mux1/Z]
set_propagated_clock [get_clocks clkA]
set_case_analysis 0 [get_ports sel1]
set_disable_timing [get_ports sel2]
set_input_delay 2 -clock [get_clocks clkA] [get_ports in1]
set_output_delay 2 -clock [get_clocks clkB] -add_delay [get_ports out1]
set_input_transition 0.1 [get_ports in1]
set_load 2 [get_ports out1]
set_driving_cell -lib_cell BUF [get_ports in1]
set_false_path -from [get_pins rA/CP] -to [get_pins rY/D]
set_multicycle_path 2 -through [get_pins inv1/Z]
set_max_delay 4 -from [get_clocks clkA] -through [get_pins and1/Z] -to [get_pins rY/D]
set_min_delay 0.5 -to [get_pins rX/D]
set_multicycle_path 1 -hold -from [get_clocks clkA]
`
	m1 := parseOK(t, src)
	text := Write(m1)
	m2, _, err := Parse("test", text, gen.PaperCircuit())
	if err != nil {
		t.Fatalf("re-parse failed: %v\nwritten:\n%s", err, text)
	}
	if len(m2.Clocks) != len(m1.Clocks) ||
		len(m2.Exceptions) != len(m1.Exceptions) ||
		len(m2.Cases) != len(m1.Cases) ||
		len(m2.IODelays) != len(m1.IODelays) ||
		len(m2.ClockGroups) != len(m1.ClockGroups) ||
		len(m2.ClockLatencies) != len(m1.ClockLatencies) ||
		len(m2.ClockSenses) != len(m1.ClockSenses) {
		t.Fatalf("counts changed after round trip:\n%s", text)
	}
	for i := range m1.Exceptions {
		if m1.Exceptions[i].Key() != m2.Exceptions[i].Key() {
			t.Errorf("exception %d key changed:\n  %s\n  %s", i,
				m1.Exceptions[i].Key(), m2.Exceptions[i].Key())
		}
	}
	for i := range m1.Clocks {
		c1, c2 := m1.Clocks[i], m2.Clocks[i]
		if c1.Name != c2.Name || c1.WaveformKey() != c2.WaveformKey() || c1.SourceKey() != c2.SourceKey() {
			t.Errorf("clock %d changed: %+v vs %+v", i, c1, c2)
		}
	}
}

func TestPrecedence(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_false_path -through [get_pins and1/Z]
set_multicycle_path 2 -through [get_pins inv1/Z]
set_multicycle_path 3 -from [get_clocks clkA]
set_multicycle_path 4 -from [get_pins rA/CP]
set_max_delay 5 -through [get_pins inv1/Z]
`)
	fp, mcpT, mcpC, mcpP, md := m.Exceptions[0], m.Exceptions[1], m.Exceptions[2], m.Exceptions[3], m.Exceptions[4]
	if w := Winner([]*Exception{mcpT, fp}); w != fp {
		t.Error("FP must beat MCP")
	}
	if w := Winner([]*Exception{mcpT, md}); w != md {
		t.Error("max_delay must beat MCP")
	}
	if w := Winner([]*Exception{fp, md}); w != fp {
		t.Error("FP must beat max_delay")
	}
	if w := Winner([]*Exception{mcpC, mcpP}); w != mcpP {
		t.Error("-from pin must beat -from clock")
	}
	if w := Winner([]*Exception{mcpT, mcpC}); w != mcpC {
		t.Error("-from clock must beat through-only")
	}
	if Winner(nil) != nil {
		t.Error("Winner(nil) must be nil")
	}
}

func TestPrecedencePessimism(t *testing.T) {
	a := &Exception{Kind: MulticyclePath, Multiplier: 3, From: &PointList{}, To: &PointList{}}
	b := &Exception{Kind: MulticyclePath, Multiplier: 2, From: &PointList{}, To: &PointList{}}
	if w := Winner([]*Exception{a, b}); w != b {
		t.Error("smaller MCP multiplier must win ties")
	}
	c := &Exception{Kind: MaxDelay, Value: 5, From: &PointList{}, To: &PointList{}}
	d := &Exception{Kind: MaxDelay, Value: 3, From: &PointList{}, To: &PointList{}}
	if w := Winner([]*Exception{c, d}); w != d {
		t.Error("smaller max_delay must win ties")
	}
	e := &Exception{Kind: MinDelay, Value: 1, From: &PointList{}, To: &PointList{}}
	f := &Exception{Kind: MinDelay, Value: 2, From: &PointList{}, To: &PointList{}}
	if w := Winner([]*Exception{e, f}); w != f {
		t.Error("larger min_delay must win ties")
	}
}

func TestExceptionClone(t *testing.T) {
	m := parseOK(t, `set_false_path -from [get_pins rA/CP] -through [get_pins and1/Z] -to [get_pins rY/D]`)
	e := m.Exceptions[0]
	c := e.Clone()
	c.From.Pins[0].Name = "changed"
	c.Throughs[0].Pins[0].Name = "changed"
	if e.From.Pins[0].Name != "rA/CP" || e.Throughs[0].Pins[0].Name != "and1/Z" {
		t.Error("Clone did not deep-copy")
	}
	if e.Key() == c.Key() {
		t.Error("keys should differ after mutation")
	}
}

func TestIncrementalParse(t *testing.T) {
	p := NewParser("inc", gen.PaperCircuit())
	if err := p.Eval(`create_clock -name clkA -period 10 [get_ports clk1]`); err != nil {
		t.Fatal(err)
	}
	if err := p.Eval(`set_false_path -from [get_clocks clkA]`); err != nil {
		t.Fatal(err)
	}
	if len(p.Mode().Clocks) != 1 || len(p.Mode().Exceptions) != 1 {
		t.Error("incremental parse lost constraints")
	}
}

func TestErrorHasLine(t *testing.T) {
	_, _, err := Parse("t", "create_clock -name a -period 10 [get_ports clk1]\nset_false_path -from [get_pins nope/X]\n", gen.PaperCircuit())
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not carry line info", err)
	}
}

func TestNegativeValuePositional(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_input_delay -0.5 -clock clkA [get_ports in1]
`)
	if m.IODelays[0].Value != -0.5 {
		t.Errorf("negative delay = %g", m.IODelays[0].Value)
	}
}

func TestClockWaveformKey(t *testing.T) {
	a := &Clock{Period: 10, Waveform: []float64{0, 5}}
	b := &Clock{Period: 10, Waveform: []float64{0, 5}}
	c := &Clock{Period: 10, Waveform: []float64{2, 7}}
	if a.WaveformKey() != b.WaveformKey() {
		t.Error("identical waveforms must share keys")
	}
	if a.WaveformKey() == c.WaveformKey() {
		t.Error("shifted waveform must differ")
	}
}

func TestSourceKeyOrderIndependent(t *testing.T) {
	a := &Clock{Sources: []ObjRef{{PortObj, "p1"}, {PortObj, "p2"}}}
	b := &Clock{Sources: []ObjRef{{PortObj, "p2"}, {PortObj, "p1"}}}
	if a.SourceKey() != b.SourceKey() {
		t.Error("SourceKey must be order independent")
	}
}
