package sdc

import (
	"fmt"
	"strings"

	"modemerge/internal/netlist"
)

// Glob reports whether name matches pattern. Only '*' (any run) and '?'
// (any single character) are special; '[' and ']' are literal so bus-bit
// names like "d[3]" match verbatim, as SDC tools treat them.
func Glob(pattern, name string) bool {
	return globMatch(pattern, name)
}

func globMatch(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '*':
			for len(p) > 0 && p[0] == '*' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if globMatch(p, s[i:]) {
					return true
				}
			}
			return false
		case '?':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}

func hasWildcard(p string) bool { return strings.ContainsAny(p, "*?") }

// Resolver resolves SDC object queries against a design plus the clocks
// defined so far during a parse.
type Resolver struct {
	Design *netlist.Design
	// ClockNames returns currently defined clock names; wired to the mode
	// being parsed.
	ClockNames func() []string
}

// Ports resolves get_ports patterns.
func (r *Resolver) Ports(patterns []string) ([]ObjRef, error) {
	var out []ObjRef
	for _, pat := range patterns {
		if !hasWildcard(pat) {
			if r.Design.PortByName(pat) == nil {
				return nil, fmt.Errorf("get_ports: no port matches %q", pat)
			}
			out = append(out, ObjRef{PortObj, pat})
			continue
		}
		matched := false
		for _, p := range r.Design.Ports {
			if globMatch(pat, p.Name) {
				out = append(out, ObjRef{PortObj, p.Name})
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("get_ports: no port matches %q", pat)
		}
	}
	return out, nil
}

// Pins resolves get_pins patterns of the form inst/PIN (hierarchy is
// already flattened, so '/' occurs inside instance names too; the glob is
// applied to the whole flat pin name).
func (r *Resolver) Pins(patterns []string) ([]ObjRef, error) {
	var out []ObjRef
	for _, pat := range patterns {
		if !hasWildcard(pat) {
			if _, _, err := r.Design.FindPin(pat); err != nil {
				return nil, fmt.Errorf("get_pins: %v", err)
			}
			out = append(out, ObjRef{PinObj, pat})
			continue
		}
		matched := false
		for _, inst := range r.Design.Insts {
			for i := range inst.Cell.Pins {
				name := inst.PinName(i)
				if globMatch(pat, name) {
					out = append(out, ObjRef{PinObj, name})
					matched = true
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("get_pins: no pin matches %q", pat)
		}
	}
	return out, nil
}

// Cells resolves get_cells patterns to instance references.
func (r *Resolver) Cells(patterns []string) ([]ObjRef, error) {
	var out []ObjRef
	for _, pat := range patterns {
		if !hasWildcard(pat) {
			if r.Design.InstByName(pat) == nil {
				return nil, fmt.Errorf("get_cells: no cell matches %q", pat)
			}
			out = append(out, ObjRef{CellObj, pat})
			continue
		}
		matched := false
		for _, inst := range r.Design.Insts {
			if globMatch(pat, inst.Name) {
				out = append(out, ObjRef{CellObj, inst.Name})
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("get_cells: no cell matches %q", pat)
		}
	}
	return out, nil
}

// Clocks resolves get_clocks patterns against the defined clocks.
func (r *Resolver) Clocks(patterns []string) ([]ObjRef, error) {
	names := r.ClockNames()
	var out []ObjRef
	for _, pat := range patterns {
		matched := false
		for _, n := range names {
			if n == pat || hasWildcard(pat) && globMatch(pat, n) {
				out = append(out, ObjRef{ClockObj, n})
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("get_clocks: no clock matches %q", pat)
		}
	}
	return out, nil
}

// AllInputs returns every input port.
func (r *Resolver) AllInputs() []ObjRef {
	var out []ObjRef
	for _, p := range r.Design.Ports {
		if p.Dir == netlist.In {
			out = append(out, ObjRef{PortObj, p.Name})
		}
	}
	return out
}

// AllOutputs returns every output port.
func (r *Resolver) AllOutputs() []ObjRef {
	var out []ObjRef
	for _, p := range r.Design.Ports {
		if p.Dir == netlist.Out {
			out = append(out, ObjRef{PortObj, p.Name})
		}
	}
	return out
}

// AllRegisters returns sequential instances, or their clock/data/output
// pins when the corresponding flag is set.
func (r *Resolver) AllRegisters(clockPins, dataPins, outputPins bool) []ObjRef {
	var out []ObjRef
	for _, inst := range r.Design.Insts {
		if !inst.Cell.Sequential {
			continue
		}
		switch {
		case clockPins:
			if cp := inst.Cell.ClockPin(); cp != "" {
				out = append(out, ObjRef{PinObj, inst.Name + "/" + cp})
			}
		case dataPins:
			for _, dp := range inst.Cell.DataPins() {
				out = append(out, ObjRef{PinObj, inst.Name + "/" + dp})
			}
		case outputPins:
			for _, op := range inst.Cell.Outputs() {
				out = append(out, ObjRef{PinObj, inst.Name + "/" + op})
			}
		default:
			out = append(out, ObjRef{CellObj, inst.Name})
		}
	}
	return out
}

// AllClocks returns every defined clock.
func (r *Resolver) AllClocks() []ObjRef {
	var out []ObjRef
	for _, n := range r.ClockNames() {
		out = append(out, ObjRef{ClockObj, n})
	}
	return out
}

// EncodeRefs renders typed references as the Tcl-collection encoding used
// between query commands and consuming commands ("kind:name" elements).
func EncodeRefs(refs []ObjRef) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = r.String()
	}
	return out
}

// DecodeElem decodes one collection element. Elements produced by query
// commands carry a "kind:" prefix; bare names written directly in a
// constraint are resolved with the given preference order (first match
// wins): clock, then port, then pin, then cell.
func (r *Resolver) DecodeElem(elem string, prefer ...ObjKind) (ObjRef, error) {
	for _, kind := range []ObjKind{PinObj, PortObj, ClockObj, CellObj} {
		prefix := kind.String() + ":"
		if strings.HasPrefix(elem, prefix) {
			return ObjRef{kind, elem[len(prefix):]}, nil
		}
	}
	if len(prefer) == 0 {
		prefer = []ObjKind{ClockObj, PortObj, PinObj, CellObj}
	}
	for _, kind := range prefer {
		switch kind {
		case ClockObj:
			for _, n := range r.ClockNames() {
				if n == elem {
					return ObjRef{ClockObj, elem}, nil
				}
			}
		case PortObj:
			if r.Design.PortByName(elem) != nil {
				return ObjRef{PortObj, elem}, nil
			}
		case PinObj:
			if _, _, err := r.Design.FindPin(elem); err == nil {
				return ObjRef{PinObj, elem}, nil
			}
		case CellObj:
			if r.Design.InstByName(elem) != nil {
				return ObjRef{CellObj, elem}, nil
			}
		}
	}
	return ObjRef{}, fmt.Errorf("cannot resolve object %q", elem)
}
