// Package sdc implements the Synopsys Design Constraints subset the mode
// merging flow consumes: an object model for parsed constraints, a parser
// built on the tcl interpreter with design-object queries (get_ports,
// get_pins, get_clocks, …), exception precedence rules, and an SDC writer.
//
// A Mode is the parsed form of one SDC file: one timing mode of the
// design. Constraints reference design objects by resolved name; clock
// references are by clock name.
package sdc

import (
	"fmt"
	"strings"

	"modemerge/internal/library"
)

// ObjKind is the kind of a resolved design object reference.
type ObjKind int8

// Object kinds.
const (
	PinObj ObjKind = iota
	PortObj
	ClockObj
	CellObj
)

func (k ObjKind) String() string {
	switch k {
	case PinObj:
		return "pin"
	case PortObj:
		return "port"
	case ClockObj:
		return "clock"
	case CellObj:
		return "cell"
	default:
		return fmt.Sprintf("ObjKind(%d)", int(k))
	}
}

// ObjRef is a typed reference to a design object.
type ObjRef struct {
	Kind ObjKind
	Name string
}

func (o ObjRef) String() string { return o.Kind.String() + ":" + o.Name }

// Clock is a create_clock or create_generated_clock definition.
type Clock struct {
	Name   string
	Period float64
	// Waveform holds the edge times (rise, fall, …); len is even. For a
	// simple 50% clock it is [0, Period/2].
	Waveform []float64
	// Sources are the ports/pins the clock is defined on; empty for a
	// virtual clock.
	Sources []ObjRef
	// Add marks -add (do not replace other clocks on the same source).
	Add bool

	// Generated clock fields.
	Generated  bool
	Master     string // master clock name (resolved)
	MasterPins []ObjRef
	DivideBy   int
	MultiplyBy int
	Invert     bool

	Line    int
	Comment string
}

// WaveformKey returns a canonical string for period+waveform equality.
func (c *Clock) WaveformKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%.9g", c.Period)
	for _, w := range c.Waveform {
		fmt.Fprintf(&b, ",%.9g", w)
	}
	return b.String()
}

// SourceKey returns a canonical string for the source pin set.
func (c *Clock) SourceKey() string {
	names := make([]string, len(c.Sources))
	for i, s := range c.Sources {
		names[i] = s.String()
	}
	sortStrings(names)
	return strings.Join(names, "|")
}

// GenKey canonicalizes the generated-clock derivation for duplicate
// detection (master + factors + inversion).
func (c *Clock) GenKey() string {
	if !c.Generated {
		return ""
	}
	return fmt.Sprintf("g:%s/d%d/m%d/i%v", c.Master, c.DivideBy, c.MultiplyBy, c.Invert)
}

// Virtual reports whether the clock has no sources.
func (c *Clock) Virtual() bool { return len(c.Sources) == 0 }

// MinMax selects min, max or both for constraints that carry the flags.
type MinMax int8

// MinMax values.
const (
	MinMaxBoth MinMax = iota
	MinOnly
	MaxOnly
)

func (m MinMax) String() string {
	switch m {
	case MinOnly:
		return "min"
	case MaxOnly:
		return "max"
	default:
		return "minmax"
	}
}

// EdgeSel selects rise, fall or both edges.
type EdgeSel int8

// EdgeSel values.
const (
	EdgeBoth EdgeSel = iota
	EdgeRise
	EdgeFall
)

func (e EdgeSel) String() string {
	switch e {
	case EdgeRise:
		return "rise"
	case EdgeFall:
		return "fall"
	default:
		return "both"
	}
}

// PointList is the contents of a -from / -through / -to specification: a
// mix of clock references and pin/port references, plus an edge selector
// (-rise_from etc.).
type PointList struct {
	Clocks []string
	Pins   []ObjRef // pins and ports
	Edge   EdgeSel
}

// Empty reports whether the list holds no objects.
func (p *PointList) Empty() bool {
	return p == nil || len(p.Clocks) == 0 && len(p.Pins) == 0
}

// Clone deep-copies the point list.
func (p *PointList) Clone() *PointList {
	if p == nil {
		return nil
	}
	q := &PointList{Edge: p.Edge}
	q.Clocks = append(q.Clocks, p.Clocks...)
	q.Pins = append(q.Pins, p.Pins...)
	return q
}

// Key canonicalizes a point list for structural comparison.
func (p *PointList) Key() string {
	if p.Empty() {
		return ""
	}
	parts := make([]string, 0, len(p.Clocks)+len(p.Pins))
	for _, c := range p.Clocks {
		parts = append(parts, "c:"+c)
	}
	for _, pin := range p.Pins {
		parts = append(parts, pin.String())
	}
	sortStrings(parts)
	return p.Edge.String() + "{" + strings.Join(parts, ",") + "}"
}

// ExceptionKind classifies a timing exception command.
type ExceptionKind int8

// Exception kinds.
const (
	FalsePath ExceptionKind = iota
	MulticyclePath
	MaxDelay
	MinDelay
)

func (k ExceptionKind) String() string {
	switch k {
	case FalsePath:
		return "set_false_path"
	case MulticyclePath:
		return "set_multicycle_path"
	case MaxDelay:
		return "set_max_delay"
	case MinDelay:
		return "set_min_delay"
	default:
		return fmt.Sprintf("ExceptionKind(%d)", int(k))
	}
}

// Exception is a path exception: set_false_path, set_multicycle_path,
// set_max_delay or set_min_delay.
type Exception struct {
	Kind     ExceptionKind
	From     *PointList
	Throughs []*PointList // ordered through groups
	To       *PointList

	// Multiplier is the multicycle multiplier; Start selects -start
	// (launch-clock cycles) semantics.
	Multiplier int
	Start      bool
	// Value is the set_max_delay / set_min_delay value.
	Value float64
	// SetupHold selects -setup / -hold application (multicycle, false
	// path). MinMaxBoth applies to both checks.
	SetupHold MinMax

	Line    int
	Comment string
}

// Key canonicalizes an exception for structural equality across modes.
func (e *Exception) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|sh=%s|", e.Kind, e.SetupHold)
	switch e.Kind {
	case MulticyclePath:
		fmt.Fprintf(&b, "m=%d,start=%v|", e.Multiplier, e.Start)
	case MaxDelay, MinDelay:
		fmt.Fprintf(&b, "v=%.9g|", e.Value)
	}
	fmt.Fprintf(&b, "from=%s|", e.From.Key())
	for _, t := range e.Throughs {
		fmt.Fprintf(&b, "thru=%s|", t.Key())
	}
	fmt.Fprintf(&b, "to=%s", e.To.Key())
	return b.String()
}

// Clone deep-copies the exception.
func (e *Exception) Clone() *Exception {
	c := *e
	c.From = e.From.Clone()
	c.To = e.To.Clone()
	c.Throughs = nil
	for _, t := range e.Throughs {
		c.Throughs = append(c.Throughs, t.Clone())
	}
	return &c
}

// CaseAnalysis is a set_case_analysis constraint.
type CaseAnalysis struct {
	Value   library.Logic
	Objects []ObjRef // pins/ports
	Line    int
}

// DisableTiming is a set_disable_timing constraint on ports, pins or
// whole instances (optionally one cell arc via -from/-to pin names).
type DisableTiming struct {
	Objects  []ObjRef
	FromPin  string // cell-internal arc selection (with instance objects)
	ToPin    string
	Line     int
	Comment  string
	Inferred bool // added by the merger, not the user
}

// Key canonicalizes a disable for intersection across modes.
func (d *DisableTiming) Key() string {
	names := make([]string, len(d.Objects))
	for i, o := range d.Objects {
		names[i] = o.String()
	}
	sortStrings(names)
	return strings.Join(names, ",") + "|" + d.FromPin + ">" + d.ToPin
}

// IODelay is a set_input_delay or set_output_delay constraint.
type IODelay struct {
	IsInput   bool
	Value     float64
	Clock     string
	ClockFall bool
	Level     MinMax
	Add       bool
	Ports     []ObjRef
	Line      int
}

// Key canonicalizes an IO delay for union across modes (clock name mapped
// by the caller first).
func (d *IODelay) Key() string {
	names := make([]string, len(d.Ports))
	for i, o := range d.Ports {
		names[i] = o.String()
	}
	sortStrings(names)
	return fmt.Sprintf("in=%v|v=%.9g|c=%s|cf=%v|l=%s|%s",
		d.IsInput, d.Value, d.Clock, d.ClockFall, d.Level, strings.Join(names, ","))
}

// ExclusiveKind is the set_clock_groups relation kind.
type ExclusiveKind int8

// ExclusiveKind values.
const (
	PhysicallyExclusive ExclusiveKind = iota
	LogicallyExclusive
	Asynchronous
)

func (k ExclusiveKind) String() string {
	switch k {
	case PhysicallyExclusive:
		return "physically_exclusive"
	case LogicallyExclusive:
		return "logically_exclusive"
	default:
		return "asynchronous"
	}
}

// ClockGroups is a set_clock_groups constraint.
type ClockGroups struct {
	Name   string
	Kind   ExclusiveKind
	Groups [][]string // clock names per -group
	Line   int
}

// ClockLatency is a set_clock_latency constraint.
type ClockLatency struct {
	Value  float64
	Level  MinMax
	Source bool
	Edge   EdgeSel
	Clocks []string
	Pins   []ObjRef
	Line   int
}

// ClockUncertainty is a set_clock_uncertainty constraint; either simple
// (on clocks/pins) or inter-clock (-from/-to).
type ClockUncertainty struct {
	Value     float64
	Setup     bool
	Hold      bool
	Clocks    []string
	Pins      []ObjRef
	FromClock string
	ToClock   string
	Line      int
}

// ClockTransition is a set_clock_transition constraint.
type ClockTransition struct {
	Value  float64
	Level  MinMax
	Clocks []string
	Line   int
}

// ClockSense is a set_clock_sense (or set_sense -type clock) constraint;
// the merger uses -stop_propagation.
type ClockSense struct {
	StopPropagation bool
	Positive        bool
	Negative        bool
	Clocks          []string
	Pins            []ObjRef
	Line            int
	Comment         string
}

// PropagatedClock is a set_propagated_clock constraint.
type PropagatedClock struct {
	Clocks []string
	Pins   []ObjRef
	Line   int
}

// InputTransition is a set_input_transition constraint.
type InputTransition struct {
	Value float64
	Level MinMax
	Ports []ObjRef
	Line  int
}

// PortLoad is a set_load constraint on ports.
type PortLoad struct {
	Value float64
	Ports []ObjRef
	Line  int
}

// DrivingCell is a set_driving_cell (or set_drive, with Resistance set)
// constraint on input ports.
type DrivingCell struct {
	CellName   string
	Resistance float64 // set_drive value; 0 when a cell is named
	Ports      []ObjRef
	Line       int
}

// Mode is one parsed SDC constraint set: one timing mode.
type Mode struct {
	Name string

	Clocks             []*Clock
	Exceptions         []*Exception
	Cases              []*CaseAnalysis
	Disables           []*DisableTiming
	IODelays           []*IODelay
	ClockGroups        []*ClockGroups
	ClockLatencies     []*ClockLatency
	ClockUncertainties []*ClockUncertainty
	ClockTransitions   []*ClockTransition
	ClockSenses        []*ClockSense
	PropagatedClocks   []*PropagatedClock
	InputTransitions   []*InputTransition
	Loads              []*PortLoad
	DrivingCells       []*DrivingCell
	MaxTimeBorrows     []*MaxTimeBorrow
}

// ClockByName returns the clock with the given name, or nil.
func (m *Mode) ClockByName(name string) *Clock {
	for _, c := range m.Clocks {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ClockNames returns all clock names in definition order.
func (m *Mode) ClockNames() []string {
	out := make([]string, len(m.Clocks))
	for i, c := range m.Clocks {
		out[i] = c.Name
	}
	return out
}

func sortStrings(s []string) {
	// insertion sort: lists here are tiny and this avoids importing sort
	// into the hot Key() paths repeatedly (and keeps allocations flat).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// MaxTimeBorrow is a set_max_time_borrow constraint limiting latch time
// borrowing on clocks, pins or cells.
type MaxTimeBorrow struct {
	Value   float64
	Clocks  []string
	Objects []ObjRef
	Line    int
}
