package sdc

import (
	"fmt"
	"strconv"
	"strings"

	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/tcl"
)

// Parser evaluates an SDC script against a design, producing a Mode.
type Parser struct {
	design *netlist.Design
	mode   *Mode
	res    *Resolver
	interp *tcl.Interp
	// Ignored records commands that were accepted but have no timing
	// meaning for the merging flow (set_units, …).
	Ignored []string
}

// Parse evaluates one SDC script as the named mode. It returns the parsed
// mode and the list of accepted-but-ignored commands.
func Parse(modeName, src string, d *netlist.Design) (*Mode, []string, error) {
	p := NewParser(modeName, d)
	if err := p.Eval(src); err != nil {
		return nil, p.Ignored, err
	}
	return p.Mode(), p.Ignored, nil
}

// NewParser builds a parser for incremental evaluation (several files into
// one mode).
func NewParser(modeName string, d *netlist.Design) *Parser {
	p := &Parser{
		design: d,
		mode:   &Mode{Name: modeName},
		interp: tcl.New(),
	}
	p.res = &Resolver{Design: d, ClockNames: func() []string { return p.mode.ClockNames() }}
	p.register()
	return p
}

// Mode returns the mode parsed so far.
func (p *Parser) Mode() *Mode { return p.mode }

// Eval evaluates additional SDC source into the mode.
func (p *Parser) Eval(src string) error {
	_, err := p.interp.Eval(src)
	return err
}

// Interp exposes the underlying interpreter (for variable injection).
func (p *Parser) Interp() *tcl.Interp { return p.interp }

// args is a parsed command argument set.
type args struct {
	cmd    string
	flags  map[string][]string // flag name (no '-') → values, "" for bare
	order  []string            // flags in occurrence order (for -through/-group)
	pos    []string
	parser *Parser
}

// flagSpec describes one accepted flag; V means it takes a value.
type flagSpec map[string]bool

// parseArgs splits words into flags and positionals per the spec.
func (p *Parser) parseArgs(cmd string, words []string, spec flagSpec) (*args, error) {
	a := &args{cmd: cmd, flags: map[string][]string{}, parser: p}
	for i := 0; i < len(words); i++ {
		w := words[i]
		if len(w) > 1 && w[0] == '-' && !isNumber(w) {
			name := w[1:]
			hasVal, ok := spec[name]
			if !ok {
				// SDC accepts unambiguous option abbreviations (-p for
				// -period).
				var full string
				for cand := range spec {
					if strings.HasPrefix(cand, name) {
						if full != "" {
							return nil, fmt.Errorf("%s: ambiguous option -%s (-%s or -%s)", cmd, name, full, cand)
						}
						full = cand
					}
				}
				if full == "" {
					return nil, fmt.Errorf("%s: unknown option -%s", cmd, name)
				}
				name = full
				hasVal = spec[full]
			}
			val := ""
			if hasVal {
				if i+1 >= len(words) {
					return nil, fmt.Errorf("%s: -%s requires a value", cmd, name)
				}
				i++
				val = words[i]
			}
			a.flags[name] = append(a.flags[name], val)
			a.order = append(a.order, name+"\x00"+val)
		} else {
			a.pos = append(a.pos, w)
		}
	}
	return a, nil
}

func isNumber(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

func (a *args) has(name string) bool { _, ok := a.flags[name]; return ok }

func (a *args) str(name string) string {
	if v, ok := a.flags[name]; ok && len(v) > 0 {
		return v[len(v)-1]
	}
	return ""
}

func (a *args) float(name string) (float64, error) {
	v, err := strconv.ParseFloat(a.str(name), 64)
	if err != nil {
		return 0, fmt.Errorf("%s: -%s: bad number %q", a.cmd, name, a.str(name))
	}
	return v, nil
}

func (a *args) int(name string) (int, error) {
	v, err := strconv.Atoi(a.str(name))
	if err != nil {
		return 0, fmt.Errorf("%s: -%s: bad integer %q", a.cmd, name, a.str(name))
	}
	return v, nil
}

// posFloat interprets positional i as a float.
func (a *args) posFloat(i int) (float64, error) {
	if i >= len(a.pos) {
		return 0, fmt.Errorf("%s: missing value argument", a.cmd)
	}
	v, err := strconv.ParseFloat(a.pos[i], 64)
	if err != nil {
		return 0, fmt.Errorf("%s: bad value %q", a.cmd, a.pos[i])
	}
	return v, nil
}

// flattenList splits a possibly nested Tcl list into leaf elements.
// Object names never contain whitespace, so an element that still splits
// is a sublist (e.g. produced by [list [get_clocks …] [get_pins …]]).
func flattenList(s string) []string {
	var out []string
	for _, elem := range tcl.SplitList(s) {
		if parts := tcl.SplitList(elem); len(parts) > 1 || len(parts) == 1 && parts[0] != elem {
			out = append(out, flattenList(elem)...)
		} else {
			out = append(out, elem)
		}
	}
	return out
}

// objects decodes a whitespace/Tcl list of object elements with the given
// kind preference, restricted to allowed kinds if any are given.
func (a *args) objects(list string, allowed ...ObjKind) ([]ObjRef, error) {
	var out []ObjRef
	for _, elem := range flattenList(list) {
		ref, err := a.parser.res.DecodeElem(elem, allowed...)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", a.cmd, err)
		}
		if len(allowed) > 0 {
			ok := false
			for _, k := range allowed {
				if ref.Kind == k {
					ok = true
					break
				}
			}
			if !ok {
				return nil, fmt.Errorf("%s: object %q has kind %s, not allowed here", a.cmd, ref.Name, ref.Kind)
			}
		}
		out = append(out, ref)
	}
	return out, nil
}

// positionalObjects decodes all positional words as one object list.
func (a *args) positionalObjects(allowed ...ObjKind) ([]ObjRef, error) {
	var out []ObjRef
	for _, w := range a.pos {
		refs, err := a.objects(w, allowed...)
		if err != nil {
			return nil, err
		}
		out = append(out, refs...)
	}
	return out, nil
}

// pointList decodes a -from/-through/-to value into clocks and pins.
func (a *args) pointList(list string, edge EdgeSel) (*PointList, error) {
	pl := &PointList{Edge: edge}
	for _, elem := range flattenList(list) {
		ref, err := a.parser.res.DecodeElem(elem)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", a.cmd, err)
		}
		switch ref.Kind {
		case ClockObj:
			pl.Clocks = append(pl.Clocks, ref.Name)
		case PinObj, PortObj:
			pl.Pins = append(pl.Pins, ref)
		case CellObj:
			// A cell in a point list stands for its pins: clock pins on
			// the from side, data pins on the to side; approximate with
			// all pins via the graph-side expansion, storing the instance
			// output/input pins here.
			inst := a.parser.design.InstByName(ref.Name)
			for i := range inst.Cell.Pins {
				pl.Pins = append(pl.Pins, ObjRef{PinObj, inst.PinName(i)})
			}
		}
	}
	return pl, nil
}

func (p *Parser) errLine() int { return p.interp.Line }

// register installs every supported SDC command plus the query commands.
func (p *Parser) register() {
	reg := func(name string, fn func(a *args) (string, error), spec flagSpec) {
		p.interp.Register(name, func(i *tcl.Interp, words []string) (string, error) {
			a, err := p.parseArgs(name, words, spec)
			if err != nil {
				return "", err
			}
			return fn(a)
		})
	}

	// ---- object queries ----
	queryFlags := flagSpec{"quiet": false, "regexp": false, "nocase": false, "hierarchical": false, "filter": true, "of_objects": true}
	p.interp.Register("get_ports", p.queryCmd(func(pats []string) ([]ObjRef, error) { return p.res.Ports(pats) }, queryFlags))
	p.interp.Register("get_pins", p.queryCmd(func(pats []string) ([]ObjRef, error) { return p.res.Pins(pats) }, queryFlags))
	p.interp.Register("get_cells", p.queryCmd(func(pats []string) ([]ObjRef, error) { return p.res.Cells(pats) }, queryFlags))
	p.interp.Register("get_clocks", p.queryCmd(func(pats []string) ([]ObjRef, error) { return p.res.Clocks(pats) }, queryFlags))
	p.interp.Register("all_inputs", func(i *tcl.Interp, words []string) (string, error) {
		return tcl.JoinList(EncodeRefs(p.res.AllInputs())), nil
	})
	p.interp.Register("all_outputs", func(i *tcl.Interp, words []string) (string, error) {
		return tcl.JoinList(EncodeRefs(p.res.AllOutputs())), nil
	})
	p.interp.Register("all_clocks", func(i *tcl.Interp, words []string) (string, error) {
		return tcl.JoinList(EncodeRefs(p.res.AllClocks())), nil
	})
	reg("all_registers", func(a *args) (string, error) {
		refs := p.res.AllRegisters(a.has("clock_pins"), a.has("data_pins"), a.has("output_pins"))
		return tcl.JoinList(EncodeRefs(refs)), nil
	}, flagSpec{"clock_pins": false, "data_pins": false, "output_pins": false})

	// ---- clocks ----
	reg("create_clock", p.cmdCreateClock, flagSpec{
		"period": true, "name": true, "waveform": true, "add": false, "comment": true})
	reg("create_generated_clock", p.cmdCreateGeneratedClock, flagSpec{
		"name": true, "source": true, "divide_by": true, "multiply_by": true,
		"invert": false, "add": false, "master_clock": true, "comment": true,
		"edges": true, "duty_cycle": true})
	reg("set_clock_groups", p.cmdClockGroups, flagSpec{
		"name": true, "physically_exclusive": false, "logically_exclusive": false,
		"asynchronous": false, "allow_paths": false, "group": true, "comment": true})
	reg("set_clock_latency", p.cmdClockLatency, flagSpec{
		"source": false, "min": false, "max": false, "rise": false, "fall": false,
		"early": false, "late": false})
	reg("set_clock_uncertainty", p.cmdClockUncertainty, flagSpec{
		"setup": false, "hold": false, "from": true, "to": true,
		"rise_from": true, "fall_from": true, "rise_to": true, "fall_to": true})
	reg("set_clock_transition", p.cmdClockTransition, flagSpec{
		"min": false, "max": false, "rise": false, "fall": false})
	reg("set_clock_sense", p.cmdClockSense, flagSpec{
		"stop_propagation": false, "positive": false, "negative": false, "clock": true, "clocks": true})
	reg("set_sense", p.cmdClockSense, flagSpec{
		"stop_propagation": false, "positive": false, "negative": false, "clock": true, "clocks": true, "type": true})
	reg("set_propagated_clock", p.cmdPropagatedClock, flagSpec{})

	// ---- IO ----
	reg("set_input_delay", func(a *args) (string, error) { return p.cmdIODelay(a, true) }, flagSpec{
		"clock": true, "clock_fall": false, "min": false, "max": false,
		"add_delay": false, "rise": false, "fall": false, "network_latency_included": false,
		"source_latency_included": false})
	reg("set_output_delay", func(a *args) (string, error) { return p.cmdIODelay(a, false) }, flagSpec{
		"clock": true, "clock_fall": false, "min": false, "max": false,
		"add_delay": false, "rise": false, "fall": false, "network_latency_included": false,
		"source_latency_included": false})

	// ---- environment ----
	reg("set_case_analysis", p.cmdCaseAnalysis, flagSpec{})
	reg("set_disable_timing", p.cmdDisableTiming, flagSpec{"from": true, "to": true})
	reg("set_input_transition", p.cmdInputTransition, flagSpec{
		"min": false, "max": false, "rise": false, "fall": false})
	reg("set_load", p.cmdLoad, flagSpec{"pin_load": false, "wire_load": false, "min": false, "max": false})
	reg("set_drive", p.cmdDrive, flagSpec{"min": false, "max": false, "rise": false, "fall": false})
	reg("set_max_time_borrow", p.cmdMaxTimeBorrow, flagSpec{})
	reg("set_driving_cell", p.cmdDrivingCell, flagSpec{
		"lib_cell": true, "library": true, "pin": true, "from_pin": true,
		"input_transition_rise": true, "input_transition_fall": true, "min": false, "max": false})

	// ---- exceptions ----
	excFlags := flagSpec{
		"from": true, "to": true, "through": true,
		"rise_from": true, "fall_from": true, "rise_to": true, "fall_to": true,
		"rise_through": true, "fall_through": true,
		"setup": false, "hold": false, "rise": false, "fall": false, "comment": true,
	}
	reg("set_false_path", func(a *args) (string, error) { return p.cmdException(a, FalsePath) }, excFlags)
	mcpFlags := flagSpec{}
	for k, v := range excFlags {
		mcpFlags[k] = v
	}
	mcpFlags["start"] = false
	mcpFlags["end"] = false
	reg("set_multicycle_path", func(a *args) (string, error) { return p.cmdException(a, MulticyclePath) }, mcpFlags)
	reg("set_max_delay", func(a *args) (string, error) { return p.cmdException(a, MaxDelay) }, excFlags)
	reg("set_min_delay", func(a *args) (string, error) { return p.cmdException(a, MinDelay) }, excFlags)

	// ---- accepted but ignored ----
	for _, name := range []string{
		"set_units", "set_operating_conditions", "set_wire_load_model",
		"set_wire_load_mode", "set_max_fanout", "set_max_transition",
		"set_max_capacitance", "set_min_capacitance", "group_path",
		"set_timing_derate", "set_max_area", "current_design", "set_hierarchy_separator",
	} {
		name := name
		p.interp.Register(name, func(i *tcl.Interp, words []string) (string, error) {
			p.Ignored = append(p.Ignored, name)
			return "", nil
		})
	}
}

// queryCmd wraps a resolver query as a Tcl command.
func (p *Parser) queryCmd(fn func(patterns []string) ([]ObjRef, error), spec flagSpec) tcl.Command {
	return func(i *tcl.Interp, words []string) (string, error) {
		var pats []string
		for j := 0; j < len(words); j++ {
			w := words[j]
			if len(w) > 1 && w[0] == '-' {
				if takesVal, ok := spec[w[1:]]; ok {
					if takesVal {
						j++
					}
					continue
				}
				return "", fmt.Errorf("unknown option %s", w)
			}
			pats = append(pats, tcl.SplitList(w)...)
		}
		refs, err := fn(pats)
		if err != nil {
			return "", err
		}
		return tcl.JoinList(EncodeRefs(refs)), nil
	}
}

func (p *Parser) cmdCreateClock(a *args) (string, error) {
	if !a.has("period") {
		return "", fmt.Errorf("create_clock: -period is required")
	}
	period, err := a.float("period")
	if err != nil {
		return "", err
	}
	if period <= 0 {
		return "", fmt.Errorf("create_clock: period must be positive")
	}
	c := &Clock{Period: period, Add: a.has("add"), Line: p.errLine(), Comment: a.str("comment")}
	c.Name = a.str("name")
	if a.has("waveform") {
		for _, w := range tcl.SplitList(a.str("waveform")) {
			v, err := strconv.ParseFloat(w, 64)
			if err != nil {
				return "", fmt.Errorf("create_clock: bad waveform value %q", w)
			}
			c.Waveform = append(c.Waveform, v)
		}
		if len(c.Waveform) != 2 {
			return "", fmt.Errorf("create_clock: waveform must have exactly 2 edges")
		}
		if c.Waveform[1] <= c.Waveform[0] || c.Waveform[0] < 0 || c.Waveform[1] > period {
			return "", fmt.Errorf("create_clock: invalid waveform %v for period %g", c.Waveform, period)
		}
	} else {
		c.Waveform = []float64{0, period / 2}
	}
	srcs, err := a.positionalObjects(PortObj, PinObj)
	if err != nil {
		return "", err
	}
	c.Sources = srcs
	if c.Name == "" {
		if len(srcs) == 0 {
			return "", fmt.Errorf("create_clock: -name required for virtual clocks")
		}
		c.Name = srcs[0].Name
	}
	return "", p.addClock(c)
}

func (p *Parser) cmdCreateGeneratedClock(a *args) (string, error) {
	c := &Clock{Generated: true, Add: a.has("add"), Invert: a.has("invert"),
		Line: p.errLine(), Comment: a.str("comment")}
	c.Name = a.str("name")
	if !a.has("source") {
		return "", fmt.Errorf("create_generated_clock: -source is required")
	}
	masterPins, err := a.objects(a.str("source"), PortObj, PinObj)
	if err != nil {
		return "", err
	}
	c.MasterPins = masterPins
	if a.has("divide_by") {
		if c.DivideBy, err = a.int("divide_by"); err != nil {
			return "", err
		}
		if c.DivideBy < 1 {
			return "", fmt.Errorf("create_generated_clock: -divide_by must be >= 1")
		}
	}
	if a.has("multiply_by") {
		if c.MultiplyBy, err = a.int("multiply_by"); err != nil {
			return "", err
		}
		if c.MultiplyBy < 1 {
			return "", fmt.Errorf("create_generated_clock: -multiply_by must be >= 1")
		}
	}
	if c.DivideBy == 0 && c.MultiplyBy == 0 {
		c.DivideBy = 1
	}
	c.Master = a.str("master_clock")
	srcs, err := a.positionalObjects(PortObj, PinObj)
	if err != nil {
		return "", err
	}
	if len(srcs) == 0 {
		return "", fmt.Errorf("create_generated_clock: source objects required")
	}
	c.Sources = srcs
	if c.Name == "" {
		c.Name = srcs[0].Name
	}
	// Resolve master by pin if not named: find a clock defined on the
	// -source pins.
	if c.Master == "" {
		for _, mc := range p.mode.Clocks {
			for _, s := range mc.Sources {
				for _, mp := range masterPins {
					if s.Name == mp.Name {
						c.Master = mc.Name
					}
				}
			}
		}
		if c.Master == "" {
			return "", fmt.Errorf("create_generated_clock %s: cannot resolve master clock from -source; use -master_clock", c.Name)
		}
	} else if p.mode.ClockByName(c.Master) == nil {
		return "", fmt.Errorf("create_generated_clock %s: unknown master clock %q", c.Name, c.Master)
	}
	// Derive the waveform from the master.
	master := p.mode.ClockByName(c.Master)
	c.Period = master.Period
	if c.DivideBy > 1 {
		c.Period = master.Period * float64(c.DivideBy)
	}
	if c.MultiplyBy > 1 {
		c.Period = master.Period / float64(c.MultiplyBy)
	}
	c.Waveform = []float64{0, c.Period / 2}
	if c.Invert {
		c.Waveform = []float64{c.Period / 2, c.Period}
	}
	return "", p.addClock(c)
}

func (p *Parser) addClock(c *Clock) error {
	if existing := p.mode.ClockByName(c.Name); existing != nil {
		return fmt.Errorf("clock %q already defined (line %d)", c.Name, existing.Line)
	}
	// Without -add, a new clock replaces clocks previously defined on the
	// same source objects.
	if !c.Add && len(c.Sources) > 0 {
		srcSet := map[string]bool{}
		for _, s := range c.Sources {
			srcSet[s.Name] = true
		}
		var kept []*Clock
		for _, other := range p.mode.Clocks {
			overlap := false
			for _, s := range other.Sources {
				if srcSet[s.Name] {
					overlap = true
					break
				}
			}
			if !overlap {
				kept = append(kept, other)
			}
		}
		p.mode.Clocks = kept
	}
	p.mode.Clocks = append(p.mode.Clocks, c)
	return nil
}

func (p *Parser) cmdClockGroups(a *args) (string, error) {
	g := &ClockGroups{Name: a.str("name"), Line: p.errLine()}
	switch {
	case a.has("physically_exclusive"):
		g.Kind = PhysicallyExclusive
	case a.has("logically_exclusive"):
		g.Kind = LogicallyExclusive
	case a.has("asynchronous"):
		g.Kind = Asynchronous
	default:
		return "", fmt.Errorf("set_clock_groups: one of -physically_exclusive/-logically_exclusive/-asynchronous required")
	}
	for _, v := range a.flags["group"] {
		refs, err := a.objects(v, ClockObj)
		if err != nil {
			return "", err
		}
		var names []string
		for _, r := range refs {
			names = append(names, r.Name)
		}
		g.Groups = append(g.Groups, names)
	}
	if len(g.Groups) < 2 {
		return "", fmt.Errorf("set_clock_groups: at least two -group lists required")
	}
	p.mode.ClockGroups = append(p.mode.ClockGroups, g)
	return "", nil
}

func minMaxOf(a *args) MinMax {
	switch {
	case a.has("min") && !a.has("max"):
		return MinOnly
	case a.has("max") && !a.has("min"):
		return MaxOnly
	default:
		return MinMaxBoth
	}
}

func edgeOf(a *args) EdgeSel {
	switch {
	case a.has("rise") && !a.has("fall"):
		return EdgeRise
	case a.has("fall") && !a.has("rise"):
		return EdgeFall
	default:
		return EdgeBoth
	}
}

func (p *Parser) cmdClockLatency(a *args) (string, error) {
	v, err := a.posFloat(0)
	if err != nil {
		return "", err
	}
	lat := &ClockLatency{Value: v, Level: minMaxOf(a), Source: a.has("source"),
		Edge: edgeOf(a), Line: p.errLine()}
	if a.has("early") {
		lat.Level = MinOnly
	}
	if a.has("late") {
		lat.Level = MaxOnly
	}
	for _, w := range a.pos[1:] {
		refs, err := a.objects(w)
		if err != nil {
			return "", err
		}
		for _, r := range refs {
			if r.Kind == ClockObj {
				lat.Clocks = append(lat.Clocks, r.Name)
			} else {
				lat.Pins = append(lat.Pins, r)
			}
		}
	}
	if len(lat.Clocks) == 0 && len(lat.Pins) == 0 {
		return "", fmt.Errorf("set_clock_latency: objects required")
	}
	p.mode.ClockLatencies = append(p.mode.ClockLatencies, lat)
	return "", nil
}

func (p *Parser) cmdClockUncertainty(a *args) (string, error) {
	v, err := a.posFloat(0)
	if err != nil {
		return "", err
	}
	u := &ClockUncertainty{Value: v, Setup: a.has("setup"), Hold: a.has("hold"), Line: p.errLine()}
	if !u.Setup && !u.Hold {
		u.Setup, u.Hold = true, true
	}
	fromFlag := firstNonEmpty(a.str("from"), a.str("rise_from"), a.str("fall_from"))
	toFlag := firstNonEmpty(a.str("to"), a.str("rise_to"), a.str("fall_to"))
	if fromFlag != "" || toFlag != "" {
		if fromFlag == "" || toFlag == "" {
			return "", fmt.Errorf("set_clock_uncertainty: -from and -to must be given together")
		}
		fromRefs, err := a.objects(fromFlag, ClockObj)
		if err != nil {
			return "", err
		}
		toRefs, err := a.objects(toFlag, ClockObj)
		if err != nil {
			return "", err
		}
		if len(fromRefs) != 1 || len(toRefs) != 1 {
			return "", fmt.Errorf("set_clock_uncertainty: exactly one clock per -from/-to supported")
		}
		u.FromClock, u.ToClock = fromRefs[0].Name, toRefs[0].Name
		p.mode.ClockUncertainties = append(p.mode.ClockUncertainties, u)
		return "", nil
	}
	for _, w := range a.pos[1:] {
		refs, err := a.objects(w)
		if err != nil {
			return "", err
		}
		for _, r := range refs {
			if r.Kind == ClockObj {
				u.Clocks = append(u.Clocks, r.Name)
			} else {
				u.Pins = append(u.Pins, r)
			}
		}
	}
	if len(u.Clocks) == 0 && len(u.Pins) == 0 {
		return "", fmt.Errorf("set_clock_uncertainty: objects required")
	}
	p.mode.ClockUncertainties = append(p.mode.ClockUncertainties, u)
	return "", nil
}

func firstNonEmpty(ss ...string) string {
	for _, s := range ss {
		if s != "" {
			return s
		}
	}
	return ""
}

func (p *Parser) cmdClockTransition(a *args) (string, error) {
	v, err := a.posFloat(0)
	if err != nil {
		return "", err
	}
	tr := &ClockTransition{Value: v, Level: minMaxOf(a), Line: p.errLine()}
	for _, w := range a.pos[1:] {
		refs, err := a.objects(w, ClockObj)
		if err != nil {
			return "", err
		}
		for _, r := range refs {
			tr.Clocks = append(tr.Clocks, r.Name)
		}
	}
	if len(tr.Clocks) == 0 {
		return "", fmt.Errorf("set_clock_transition: clocks required")
	}
	p.mode.ClockTransitions = append(p.mode.ClockTransitions, tr)
	return "", nil
}

func (p *Parser) cmdClockSense(a *args) (string, error) {
	s := &ClockSense{StopPropagation: a.has("stop_propagation"),
		Positive: a.has("positive"), Negative: a.has("negative"), Line: p.errLine()}
	clockList := firstNonEmpty(a.str("clock"), a.str("clocks"))
	if clockList != "" {
		refs, err := a.objects(clockList, ClockObj)
		if err != nil {
			return "", err
		}
		for _, r := range refs {
			s.Clocks = append(s.Clocks, r.Name)
		}
	}
	pins, err := a.positionalObjects(PinObj, PortObj)
	if err != nil {
		return "", err
	}
	if len(pins) == 0 {
		return "", fmt.Errorf("set_clock_sense: pins required")
	}
	s.Pins = pins
	p.mode.ClockSenses = append(p.mode.ClockSenses, s)
	return "", nil
}

func (p *Parser) cmdPropagatedClock(a *args) (string, error) {
	pc := &PropagatedClock{Line: p.errLine()}
	refs, err := a.positionalObjects()
	if err != nil {
		return "", err
	}
	for _, r := range refs {
		if r.Kind == ClockObj {
			pc.Clocks = append(pc.Clocks, r.Name)
		} else {
			pc.Pins = append(pc.Pins, r)
		}
	}
	if len(pc.Clocks) == 0 && len(pc.Pins) == 0 {
		return "", fmt.Errorf("set_propagated_clock: objects required")
	}
	p.mode.PropagatedClocks = append(p.mode.PropagatedClocks, pc)
	return "", nil
}

func (p *Parser) cmdIODelay(a *args, isInput bool) (string, error) {
	v, err := a.posFloat(0)
	if err != nil {
		return "", err
	}
	d := &IODelay{IsInput: isInput, Value: v, Level: minMaxOf(a),
		ClockFall: a.has("clock_fall"), Add: a.has("add_delay"), Line: p.errLine()}
	if a.has("clock") {
		refs, err := a.objects(a.str("clock"), ClockObj)
		if err != nil {
			return "", err
		}
		if len(refs) != 1 {
			return "", fmt.Errorf("%s: exactly one -clock required", a.cmd)
		}
		d.Clock = refs[0].Name
	}
	for _, w := range a.pos[1:] {
		refs, err := a.objects(w, PortObj, PinObj)
		if err != nil {
			return "", err
		}
		d.Ports = append(d.Ports, refs...)
	}
	if len(d.Ports) == 0 {
		return "", fmt.Errorf("%s: ports required", a.cmd)
	}
	p.mode.IODelays = append(p.mode.IODelays, d)
	return "", nil
}

func (p *Parser) cmdCaseAnalysis(a *args) (string, error) {
	if len(a.pos) < 2 {
		return "", fmt.Errorf("set_case_analysis: want value and objects")
	}
	var val library.Logic
	switch a.pos[0] {
	case "0", "zero":
		val = library.L0
	case "1", "one":
		val = library.L1
	default:
		return "", fmt.Errorf("set_case_analysis: bad value %q", a.pos[0])
	}
	ca := &CaseAnalysis{Value: val, Line: p.errLine()}
	for _, w := range a.pos[1:] {
		refs, err := a.objects(w, PortObj, PinObj)
		if err != nil {
			return "", err
		}
		ca.Objects = append(ca.Objects, refs...)
	}
	p.mode.Cases = append(p.mode.Cases, ca)
	return "", nil
}

func (p *Parser) cmdDisableTiming(a *args) (string, error) {
	d := &DisableTiming{FromPin: a.str("from"), ToPin: a.str("to"), Line: p.errLine()}
	refs, err := a.positionalObjects(PortObj, PinObj, CellObj)
	if err != nil {
		return "", err
	}
	if len(refs) == 0 {
		return "", fmt.Errorf("set_disable_timing: objects required")
	}
	if (d.FromPin != "" || d.ToPin != "") && refs[0].Kind != CellObj {
		return "", fmt.Errorf("set_disable_timing: -from/-to require cell objects")
	}
	d.Objects = refs
	p.mode.Disables = append(p.mode.Disables, d)
	return "", nil
}

func (p *Parser) cmdInputTransition(a *args) (string, error) {
	v, err := a.posFloat(0)
	if err != nil {
		return "", err
	}
	tr := &InputTransition{Value: v, Level: minMaxOf(a), Line: p.errLine()}
	for _, w := range a.pos[1:] {
		refs, err := a.objects(w, PortObj)
		if err != nil {
			return "", err
		}
		tr.Ports = append(tr.Ports, refs...)
	}
	if len(tr.Ports) == 0 {
		return "", fmt.Errorf("set_input_transition: ports required")
	}
	p.mode.InputTransitions = append(p.mode.InputTransitions, tr)
	return "", nil
}

func (p *Parser) cmdLoad(a *args) (string, error) {
	v, err := a.posFloat(0)
	if err != nil {
		return "", err
	}
	ld := &PortLoad{Value: v, Line: p.errLine()}
	for _, w := range a.pos[1:] {
		refs, err := a.objects(w, PortObj)
		if err != nil {
			return "", err
		}
		ld.Ports = append(ld.Ports, refs...)
	}
	if len(ld.Ports) == 0 {
		return "", fmt.Errorf("set_load: ports required")
	}
	p.mode.Loads = append(p.mode.Loads, ld)
	return "", nil
}

func (p *Parser) cmdDrive(a *args) (string, error) {
	v, err := a.posFloat(0)
	if err != nil {
		return "", err
	}
	dc := &DrivingCell{Resistance: v, Line: p.errLine()}
	for _, w := range a.pos[1:] {
		refs, err := a.objects(w, PortObj)
		if err != nil {
			return "", err
		}
		dc.Ports = append(dc.Ports, refs...)
	}
	if len(dc.Ports) == 0 {
		return "", fmt.Errorf("set_drive: ports required")
	}
	p.mode.DrivingCells = append(p.mode.DrivingCells, dc)
	return "", nil
}

func (p *Parser) cmdMaxTimeBorrow(a *args) (string, error) {
	v, err := a.posFloat(0)
	if err != nil {
		return "", err
	}
	if v < 0 {
		return "", fmt.Errorf("set_max_time_borrow: value must be non-negative")
	}
	mtb := &MaxTimeBorrow{Value: v, Line: p.errLine()}
	for _, w := range a.pos[1:] {
		refs, err := a.objects(w)
		if err != nil {
			return "", err
		}
		for _, r := range refs {
			if r.Kind == ClockObj {
				mtb.Clocks = append(mtb.Clocks, r.Name)
			} else {
				mtb.Objects = append(mtb.Objects, r)
			}
		}
	}
	if len(mtb.Clocks) == 0 && len(mtb.Objects) == 0 {
		return "", fmt.Errorf("set_max_time_borrow: objects required")
	}
	p.mode.MaxTimeBorrows = append(p.mode.MaxTimeBorrows, mtb)
	return "", nil
}

func (p *Parser) cmdDrivingCell(a *args) (string, error) {
	dc := &DrivingCell{CellName: a.str("lib_cell"), Line: p.errLine()}
	if dc.CellName == "" {
		return "", fmt.Errorf("set_driving_cell: -lib_cell required")
	}
	refs, err := a.positionalObjects(PortObj)
	if err != nil {
		return "", err
	}
	if len(refs) == 0 {
		return "", fmt.Errorf("set_driving_cell: ports required")
	}
	dc.Ports = refs
	p.mode.DrivingCells = append(p.mode.DrivingCells, dc)
	return "", nil
}

func (p *Parser) cmdException(a *args, kind ExceptionKind) (string, error) {
	e := &Exception{Kind: kind, Line: p.errLine(), Comment: a.str("comment"), Multiplier: 1}
	switch kind {
	case MulticyclePath:
		m, err := a.posFloat(0)
		if err != nil {
			return "", err
		}
		e.Multiplier = int(m)
		if float64(e.Multiplier) != m || e.Multiplier < 0 {
			return "", fmt.Errorf("set_multicycle_path: bad multiplier %q", a.pos[0])
		}
		e.Start = a.has("start")
		a.pos = a.pos[1:]
	case MaxDelay, MinDelay:
		v, err := a.posFloat(0)
		if err != nil {
			return "", err
		}
		e.Value = v
		a.pos = a.pos[1:]
	}
	if len(a.pos) != 0 {
		return "", fmt.Errorf("%s: unexpected positional arguments %v", a.cmd, a.pos)
	}
	switch {
	case a.has("setup") && !a.has("hold"):
		e.SetupHold = MaxOnly
	case a.has("hold") && !a.has("setup"):
		e.SetupHold = MinOnly
	default:
		e.SetupHold = MinMaxBoth
	}
	var err error
	if e.From, err = p.excPoint(a, "from", "rise_from", "fall_from"); err != nil {
		return "", err
	}
	if e.To, err = p.excPoint(a, "to", "rise_to", "fall_to"); err != nil {
		return "", err
	}
	// -through groups in occurrence order (including rise/fall variants).
	for _, entry := range a.order {
		sep := strings.IndexByte(entry, '\x00')
		name, val := entry[:sep], entry[sep+1:]
		var edge EdgeSel
		switch name {
		case "through":
			edge = EdgeBoth
		case "rise_through":
			edge = EdgeRise
		case "fall_through":
			edge = EdgeFall
		default:
			continue
		}
		pl, err := a.pointList(val, edge)
		if err != nil {
			return "", err
		}
		if len(pl.Clocks) > 0 {
			return "", fmt.Errorf("%s: clocks are not valid in -through", a.cmd)
		}
		if pl.Empty() {
			return "", fmt.Errorf("%s: empty -through list", a.cmd)
		}
		e.Throughs = append(e.Throughs, pl)
	}
	if e.From.Empty() && e.To.Empty() && len(e.Throughs) == 0 {
		return "", fmt.Errorf("%s: at least one of -from/-through/-to required", a.cmd)
	}
	p.mode.Exceptions = append(p.mode.Exceptions, e)
	return "", nil
}

// excPoint assembles a -from or -to point list from the base flag and its
// rise/fall variants.
func (p *Parser) excPoint(a *args, base, riseName, fallName string) (*PointList, error) {
	var out *PointList
	for _, f := range []struct {
		flag string
		edge EdgeSel
	}{{base, EdgeBoth}, {riseName, EdgeRise}, {fallName, EdgeFall}} {
		if !a.has(f.flag) {
			continue
		}
		pl, err := a.pointList(a.str(f.flag), f.edge)
		if err != nil {
			return nil, err
		}
		if out != nil {
			return nil, fmt.Errorf("%s: multiple -%s variants not supported", a.cmd, base)
		}
		out = pl
	}
	if out == nil {
		out = &PointList{}
	}
	return out, nil
}
