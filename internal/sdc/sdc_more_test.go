package sdc

import (
	"strings"
	"testing"

	"modemerge/internal/gen"
)

func TestQueryFlagsIgnored(t *testing.T) {
	// Common query flags must parse without affecting resolution.
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports -quiet clk1]
set_false_path -through [get_pins -hierarchical and1/Z]
set_disable_timing [get_cells -quiet mux1]
`)
	if len(m.Clocks) != 1 || len(m.Exceptions) != 1 || len(m.Disables) != 1 {
		t.Errorf("query flags broke parsing: %+v", m)
	}
}

func TestSetSenseAlias(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_sense -type clock -stop_propagation -clock [get_clocks clkA] [get_pins mux1/Z]
`)
	if len(m.ClockSenses) != 1 || !m.ClockSenses[0].StopPropagation {
		t.Errorf("set_sense alias failed: %+v", m.ClockSenses)
	}
}

func TestFlagAbbreviations(t *testing.T) {
	m := parseOK(t, `
create_clock -p 10 -n clkA [get_ports clk1]
set_multicycle_path 2 -se -from [get_clocks clkA]
`)
	if m.Clocks[0].Name != "clkA" || m.Clocks[0].Period != 10 {
		t.Errorf("abbreviated create_clock failed: %+v", m.Clocks[0])
	}
	if m.Exceptions[0].SetupHold != MaxOnly {
		t.Errorf("-se did not resolve to -setup")
	}
	// -w uniquely abbreviates -waveform.
	m2 := parseOK(t, `create_clock -name c -period 10 -w {0 5} [get_ports clk1]`)
	if m2.Clocks[0].Waveform[1] != 5 {
		t.Errorf("-w abbreviation failed: %v", m2.Clocks[0].Waveform)
	}
}

func TestAmbiguousAbbreviation(t *testing.T) {
	// set_clock_latency has -min and -max: "-m" is ambiguous.
	parseErr(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_clock_latency -m 1 [get_clocks clkA]
`)
}

func TestWriteEveryConstraintKind(t *testing.T) {
	d := gen.PaperCircuit()
	src := `
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name vclk -period 5
create_generated_clock -name g2 -source [get_ports clk1] -divide_by 2 -invert [get_pins mux1/Z]
set_clock_groups -logically_exclusive -group [get_clocks clkA] -group [get_clocks g2]
set_clock_latency -source -max 0.4 [get_clocks clkA]
set_clock_uncertainty -hold 0.05 [get_clocks clkA]
set_clock_transition -min 0.02 [get_clocks clkA]
set_clock_sense -stop_propagation -clock [get_clocks g2] [get_pins mux1/Z]
set_propagated_clock [get_clocks clkA]
set_case_analysis 1 [get_ports sel2]
set_disable_timing -from I0 -to Z [get_cells mux1]
set_input_delay 1.5 -clock vclk -clock_fall -min [get_ports in1]
set_output_delay 2.5 -clock vclk -add_delay [get_ports out1]
set_input_transition -max 0.2 [get_ports in1]
set_load 4 [get_ports out1]
set_drive 1.2 [get_ports sel1]
set_driving_cell -lib_cell INV [get_ports sel2]
set_false_path -rise_from [get_clocks clkA] -fall_to [get_pins rX/D]
set_multicycle_path 3 -start -setup -from [get_clocks clkA]
set_max_delay 7 -through [get_pins and1/Z] -to [get_ports out1]
set_min_delay 0.1 -from [get_pins rB/CP]
`
	m1, _, err := Parse("all", src, d)
	if err != nil {
		t.Fatal(err)
	}
	text := Write(m1)
	m2, _, err := Parse("all2", text, d)
	if err != nil {
		t.Fatalf("written SDC does not re-parse: %v\n%s", err, text)
	}
	// Spot-check semantic fields survive the round trip.
	g2 := m2.ClockByName("g2")
	if g2 == nil || !g2.Invert || g2.DivideBy != 2 {
		t.Errorf("generated clock lost detail: %+v", g2)
	}
	if m2.ClockGroups[0].Kind != LogicallyExclusive {
		t.Errorf("clock group kind lost")
	}
	if !m2.ClockLatencies[0].Source || m2.ClockLatencies[0].Level != MaxOnly {
		t.Errorf("latency flags lost: %+v", m2.ClockLatencies[0])
	}
	if m2.ClockTransitions[0].Level != MinOnly {
		t.Errorf("transition level lost")
	}
	if m2.Disables[0].FromPin != "I0" || m2.Disables[0].ToPin != "Z" {
		t.Errorf("arc disable lost: %+v", m2.Disables[0])
	}
	in := m2.IODelays[0]
	if !in.ClockFall || in.Level != MinOnly || in.Clock != "vclk" {
		t.Errorf("input delay flags lost: %+v", in)
	}
	if m2.IODelays[1].Add != true {
		t.Errorf("add_delay lost")
	}
	var mcp *Exception
	for _, e := range m2.Exceptions {
		if e.Kind == MulticyclePath {
			mcp = e
		}
	}
	if mcp == nil || !mcp.Start || mcp.Multiplier != 3 || mcp.SetupHold != MaxOnly {
		t.Errorf("mcp flags lost: %+v", mcp)
	}
	for i := range m1.Exceptions {
		if m1.Exceptions[i].Key() != m2.Exceptions[i].Key() {
			t.Errorf("exception %d changed: %s vs %s", i, m1.Exceptions[i].Key(), m2.Exceptions[i].Key())
		}
	}
}

func TestGeneratedClockEdgesFlagAccepted(t *testing.T) {
	// -edges/-duty_cycle are accepted (values consumed) even though the
	// simplified waveform derivation ignores them.
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
create_generated_clock -name g -source [get_ports clk1] -edges {1 3 5} [get_pins mux1/Z]
`)
	if m.ClockByName("g") == nil {
		t.Fatal("generated clock lost")
	}
}

func TestVirtualClockNoSources(t *testing.T) {
	m := parseOK(t, `create_clock -name v -period 4 -waveform {1 3}`)
	c := m.Clocks[0]
	if !c.Virtual() || c.Waveform[0] != 1 || c.Waveform[1] != 3 {
		t.Errorf("virtual clock = %+v", c)
	}
	// Round trip keeps the waveform.
	m2, _, err := Parse("v2", Write(m), gen.PaperCircuit())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Clocks[0].WaveformKey() != c.WaveformKey() {
		t.Error("waveform lost in round trip")
	}
}

func TestCommentFlag(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 -comment "main clock" [get_ports clk1]
set_false_path -to [get_pins rX/D] -comment "cdc"
`)
	if m.Clocks[0].Comment != "main clock" {
		t.Errorf("clock comment = %q", m.Clocks[0].Comment)
	}
	if m.Exceptions[0].Comment != "cdc" {
		t.Errorf("exception comment = %q", m.Exceptions[0].Comment)
	}
	// Comments survive writing.
	text := Write(m)
	if !strings.Contains(text, "cdc") {
		t.Errorf("comment lost:\n%s", text)
	}
}

func TestMulticlockWaveformValidation(t *testing.T) {
	parseErr(t, `create_clock -name x -period 10 -waveform {0 5 7} [get_ports clk1]`)
	parseErr(t, `create_clock -name x -period 10 -waveform {0 12} [get_ports clk1]`)
	parseErr(t, `create_clock -name x -period 10 -waveform {-1 5} [get_ports clk1]`)
}

func TestCellInPointListExpands(t *testing.T) {
	m := parseOK(t, `set_false_path -through [get_cells and1]`)
	// A cell in a point list expands to its pins.
	pins := m.Exceptions[0].Throughs[0].Pins
	if len(pins) != 3 { // A, B, Z
		t.Errorf("cell expanded to %d pins, want 3: %v", len(pins), pins)
	}
}

func TestDecodeElemPreferenceOrder(t *testing.T) {
	d := gen.PaperCircuit()
	p := NewParser("t", d)
	if err := p.Eval(`create_clock -name in1 -period 5 [get_ports clk1]`); err != nil {
		t.Fatal(err)
	}
	// "in1" is both a port and (now) a clock: -from prefers the clock.
	if err := p.Eval(`set_false_path -from in1`); err != nil {
		t.Fatal(err)
	}
	e := p.Mode().Exceptions[0]
	if len(e.From.Clocks) != 1 || e.From.Clocks[0] != "in1" {
		t.Errorf("bare name preferred %v over the clock", e.From)
	}
}

func TestIgnoredCommandsDoNotLeakState(t *testing.T) {
	p := NewParser("t", gen.PaperCircuit())
	if err := p.Eval("set_units -time ns -capacitance pF"); err != nil {
		t.Fatal(err)
	}
	if len(p.Ignored) != 1 {
		t.Errorf("ignored = %v", p.Ignored)
	}
	m := p.Mode()
	if len(m.Clocks)+len(m.Exceptions)+len(m.Cases) != 0 {
		t.Error("ignored command mutated the mode")
	}
}

func TestMaxTimeBorrowCommand(t *testing.T) {
	m := parseOK(t, `
create_clock -name clkA -period 10 [get_ports clk1]
set_max_time_borrow 2.5 [get_clocks clkA]
set_max_time_borrow 1 [get_pins rX/D]
`)
	if len(m.MaxTimeBorrows) != 2 {
		t.Fatalf("borrows = %d", len(m.MaxTimeBorrows))
	}
	if m.MaxTimeBorrows[0].Clocks[0] != "clkA" || m.MaxTimeBorrows[0].Value != 2.5 {
		t.Errorf("borrow[0] = %+v", m.MaxTimeBorrows[0])
	}
	if m.MaxTimeBorrows[1].Objects[0].Name != "rX/D" {
		t.Errorf("borrow[1] = %+v", m.MaxTimeBorrows[1])
	}
	parseErr(t, `set_max_time_borrow -1 [get_pins rX/D]`)
	parseErr(t, `set_max_time_borrow 1`)
	// Round trip.
	m2, _, err := Parse("rt", Write(m), gen.PaperCircuit())
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.MaxTimeBorrows) != 2 {
		t.Errorf("borrows lost in round trip:\n%s", Write(m))
	}
}
