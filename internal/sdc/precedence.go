package sdc

// Exception precedence follows the standard SDC rules the paper's Table 1
// discussion relies on ("false-path overrides the multicycle-path"):
//
//  1. Command rank: set_false_path beats set_max_delay/set_min_delay,
//     which beat set_multicycle_path.
//  2. Within one command, point specificity wins: pin/port -from or -to
//     anchors beat clock anchors, which beat unanchored sides; -through
//     groups break remaining ties.
//  3. Among equally specific survivors the tool must still be
//     deterministic and pessimistic: the smallest multicycle multiplier,
//     the smallest max-delay, the largest min-delay.

// KindRank returns the command rank (higher overrides lower).
func KindRank(k ExceptionKind) int {
	switch k {
	case FalsePath:
		return 3
	case MaxDelay, MinDelay:
		return 2
	case MulticyclePath:
		return 1
	default:
		return 0
	}
}

// Specificity scores the from/to/through anchoring of an exception; a
// higher score is more specific and wins within one command rank.
func (e *Exception) Specificity() int {
	score := 0
	switch {
	case len(e.From.Pins) > 0:
		score += 400
	case len(e.From.Clocks) > 0:
		score += 200
	}
	switch {
	case len(e.To.Pins) > 0:
		score += 40
	case len(e.To.Clocks) > 0:
		score += 20
	}
	score += len(e.Throughs)
	return score
}

// Winner picks the exception that governs a path matched by all the
// candidates, or nil for an empty slice.
func Winner(cands []*Exception) *Exception {
	var best *Exception
	for _, e := range cands {
		if best == nil {
			best = e
			continue
		}
		kr, kb := KindRank(e.Kind), KindRank(best.Kind)
		switch {
		case kr > kb:
			best = e
		case kr < kb:
			// keep best
		default:
			sr, sb := e.Specificity(), best.Specificity()
			switch {
			case sr > sb:
				best = e
			case sr < sb:
				// keep best
			default:
				best = pessimistic(best, e)
			}
		}
	}
	return best
}

// pessimistic picks the tighter of two equally ranked exceptions.
func pessimistic(a, b *Exception) *Exception {
	switch a.Kind {
	case MulticyclePath:
		if b.Kind == MulticyclePath && b.Multiplier < a.Multiplier {
			return b
		}
	case MaxDelay:
		if b.Kind == MaxDelay && b.Value < a.Value {
			return b
		}
	case MinDelay:
		if b.Kind == MinDelay && b.Value > a.Value {
			return b
		}
	}
	return a
}
