package gen

import (
	"fmt"
	"math/rand"

	"modemerge/internal/library"
	"modemerge/internal/netlist"
)

// HierSpec parameterizes a synthetic hierarchical design: one shared
// block master instantiated BlocksPerDomain times in each clock domain,
// stitched by a top netlist carrying the clock muxes, clock gates,
// cross-domain capture registers and IO pads. Sharing one master across
// every instance is what makes the extracted-timing-model (ETM) path
// pay off: per-block analysis runs once per distinct (master, projected
// modes) pair, not once per instance.
type HierSpec struct {
	Name string
	Seed int64
	// Domains is the number of clock domains.
	Domains int
	// BlocksPerDomain is the number of block instances per domain.
	BlocksPerDomain int
	// Stages / RegsPerStage / CloudDepth size the master's interior
	// pipeline, exactly like DesignSpec sizes a flat block.
	Stages       int
	RegsPerStage int
	CloudDepth   int
	// CrossPaths adds top-level registers capturing one domain's block
	// output with the next domain's gated clock.
	CrossPaths int
	// IOPairs is the number of data input/output port pairs per domain,
	// and also the master's interface width.
	IOPairs int
}

// Validate fills defaults and sanity-checks the spec.
func (s *HierSpec) Validate() error {
	if s.Name == "" {
		s.Name = "hsynth"
	}
	if s.Domains <= 0 {
		s.Domains = 2
	}
	if s.BlocksPerDomain <= 0 {
		s.BlocksPerDomain = 2
	}
	if s.Stages <= 0 {
		s.Stages = 3
	}
	if s.RegsPerStage <= 0 {
		s.RegsPerStage = 4
	}
	if s.CloudDepth <= 0 {
		s.CloudDepth = 3
	}
	if s.CrossPaths < 0 || s.IOPairs < 0 {
		return fmt.Errorf("gen: negative path counts")
	}
	if s.IOPairs == 0 {
		s.IOPairs = 2
	}
	return nil
}

// CellEstimate approximates the flattened cell count.
func (s HierSpec) CellEstimate() int {
	perMaster := s.Stages*s.RegsPerStage*(2+s.CloudDepth) + 4*s.IOPairs + 2
	return s.Domains*(s.BlocksPerDomain*perMaster+10) + s.CrossPaths*2
}

// HierGenerated bundles the hierarchical design with the flattened view
// and the structural handles the mode generator needs. The embedded
// Generated carries flat (prefixed) instance names, so Modes /
// ModesWithExtra and the difftest perturbation machinery work unchanged
// on the flattened design.
type HierGenerated struct {
	Generated
	Hier *netlist.HierDesign
}

// blockName names the instance of block b in domain d.
func blockName(d, b int) string { return fmt.Sprintf("b_d%d_%d", d, b) }

// GenerateHier builds the hierarchical synthetic design
// deterministically from the spec's seed: same seed, same design bytes
// (see WriteVerilogHier golden coverage).
func GenerateHier(spec HierSpec) (*HierGenerated, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	master := genMaster(spec, rng)

	tb := netlist.NewBuilder(spec.Name, library.Default())
	g := &HierGenerated{}
	g.Spec = DesignSpec{
		Name: spec.Name, Seed: spec.Seed, Domains: spec.Domains,
		BlocksPerDomain: spec.BlocksPerDomain, Stages: spec.Stages,
		RegsPerStage: spec.RegsPerStage, CloudDepth: spec.CloudDepth,
		CrossPaths: spec.CrossPaths, IOPairs: spec.IOPairs,
	}
	g.TestClock = "test_clk"
	g.TestMode = "test_mode"
	g.ScanEn = "scan_en"
	tb.Port(g.TestClock, netlist.In)
	tb.Port(g.TestMode, netlist.In)
	tb.Port(g.ScanEn, netlist.In)
	tb.Port("scan_in", netlist.In)
	tb.Port("scan_out", netlist.Out)

	h := &netlist.HierDesign{Name: spec.Name, Lib: library.Default()}
	lastStage := spec.Stages - 1

	// Per-domain clock trees: mux between the functional and test clock,
	// then a buffered root. Domain 0's buffer is named d0_clkbuf — the
	// generated-clock anchor testCaptureMode relies on.
	rootNets := make([]string, spec.Domains)
	for d := 0; d < spec.Domains; d++ {
		clkPort := fmt.Sprintf("clk_%d", d)
		tb.Port(clkPort, netlist.In)
		g.ClockPorts = append(g.ClockPorts, clkPort)
		muxOut := fmt.Sprintf("d%d_muxclk", d)
		rootNets[d] = fmt.Sprintf("d%d_clk", d)
		tb.Inst("MUX2", fmt.Sprintf("d%d_clkmux", d), map[string]string{
			"I0": clkPort, "I1": g.TestClock, "S": g.TestMode, "Z": muxOut})
		tb.Inst("CLKBUF", fmt.Sprintf("d%d_clkbuf", d), map[string]string{
			"A": muxOut, "Z": rootNets[d]})
	}

	// Block instances: clock gate at top, data chained block to block
	// inside each domain, scan chained across all blocks.
	scanNet := "scan_in"
	type xsrc struct {
		fromReg string // flat launch register inside the block
		net     string // top net carrying the block output
		domain  int
	}
	var xsrcs []xsrc
	for d := 0; d < spec.Domains; d++ {
		g.BlockEnables = append(g.BlockEnables, nil)
		g.BlockFirstRegs = append(g.BlockFirstRegs, nil)
		g.BlockLastRegs = append(g.BlockLastRegs, nil)
		g.DataIn = append(g.DataIn, nil)
		g.DataOut = append(g.DataOut, nil)
		var cur []string
		for i := 0; i < spec.IOPairs; i++ {
			in := fmt.Sprintf("di_d%d_%d", d, i)
			tb.Port(in, netlist.In)
			g.DataIn[d] = append(g.DataIn[d], in)
			cur = append(cur, in)
		}
		for blk := 0; blk < spec.BlocksPerDomain; blk++ {
			name := blockName(d, blk)
			enPort := fmt.Sprintf("d%d_b%d_en", d, blk)
			tb.Port(enPort, netlist.In)
			g.BlockEnables[d] = append(g.BlockEnables[d], enPort)
			enNet := fmt.Sprintf("d%d_b%d_ennet", d, blk)
			gclk := fmt.Sprintf("d%d_b%d_gclk", d, blk)
			tb.Inst("OR2", fmt.Sprintf("d%d_b%d_enor", d, blk), map[string]string{
				"A": enPort, "B": g.TestMode, "Z": enNet})
			tb.Inst("ICG", fmt.Sprintf("d%d_b%d_icg", d, blk), map[string]string{
				"CK": rootNets[d], "EN": enNet, "GCK": gclk})

			binds := map[string]string{"ck": gclk, "se": g.ScanEn, "si": scanNet}
			var outs []string
			for i := 0; i < spec.IOPairs; i++ {
				binds[fmt.Sprintf("d%d", i)] = cur[i]
				q := fmt.Sprintf("%s_q%d", name, i)
				tb.Net(q)
				binds[fmt.Sprintf("q%d", i)] = q
				outs = append(outs, q)
			}
			scanNet = name + "_so"
			tb.Net(scanNet)
			binds["so"] = scanNet
			h.Blocks = append(h.Blocks, &netlist.BlockInst{Name: name, Master: master, Binds: binds})

			g.BlockFirstRegs[d] = append(g.BlockFirstRegs[d], name+"/s0_r0")
			last := fmt.Sprintf("%s/s%d_r%d", name, lastStage, spec.RegsPerStage-1)
			g.BlockLastRegs[d] = append(g.BlockLastRegs[d], last)
			xsrcs = append(xsrcs, xsrc{
				fromReg: fmt.Sprintf("%s/s%d_r0", name, lastStage),
				net:     outs[0],
				domain:  d,
			})
			cur = outs
		}
		for i, net := range cur {
			out := fmt.Sprintf("do_d%d_%d", d, i)
			tb.Port(out, netlist.Out)
			g.DataOut[d] = append(g.DataOut[d], out)
			tb.Inst("BUF", fmt.Sprintf("d%d_obuf%d", d, i), map[string]string{
				"A": net, "Z": out})
		}
	}
	tb.Inst("BUF", "so_obuf", map[string]string{"A": scanNet, "Z": "scan_out"})

	// Cross-domain paths: a top-level register captures one domain's
	// block output with the next domain's gated clock.
	for i := 0; i < spec.CrossPaths; i++ {
		src := xsrcs[i%len(xsrcs)]
		toDomain := (src.domain + 1) % spec.Domains
		toGclk := fmt.Sprintf("d%d_b%d_gclk", toDomain, i%spec.BlocksPerDomain)
		xd := fmt.Sprintf("x%d_d", i)
		tb.Inst("BUF", fmt.Sprintf("x%d_buf", i), map[string]string{
			"A": src.net, "Z": xd})
		xreg := fmt.Sprintf("x%d_reg", i)
		tb.Inst("DFF", xreg, map[string]string{"CP": toGclk, "D": xd})
		g.CrossRegPairs = append(g.CrossRegPairs, [2]string{src.fromReg, xreg})
	}

	top, err := tb.Build()
	if err != nil {
		return nil, fmt.Errorf("gen: hier top: %w", err)
	}
	h.Top = top
	g.Hier = h
	flat, err := h.Flatten()
	if err != nil {
		return nil, fmt.Errorf("gen: flatten: %w", err)
	}
	g.Design = flat
	return g, nil
}

// genMaster builds the shared block master: a buffered clock input, a
// scan-chained register pipeline with random combinational clouds, and
// reconvergent input→output bypass logic so the interface is not purely
// registered.
func genMaster(spec HierSpec, rng *rand.Rand) *netlist.Design {
	b := netlist.NewBuilder("hblk", library.Default())
	b.Port("ck", netlist.In)
	b.Port("se", netlist.In)
	b.Port("si", netlist.In)
	w := spec.IOPairs
	var dports []string
	for i := 0; i < w; i++ {
		p := fmt.Sprintf("d%d", i)
		b.Port(p, netlist.In)
		dports = append(dports, p)
	}
	b.Inst("CLKBUF", "ckbuf", map[string]string{"A": "ck", "Z": "cknet"})

	comb := []string{"AND2", "OR2", "NAND2", "NOR2", "XOR2", "AOI21", "OAI21"}
	newNetID := 0
	newNet := func() string {
		newNetID++
		return fmt.Sprintf("n%d", newNetID)
	}
	cur := dports
	scanQ := "si"
	for st := 0; st < spec.Stages; st++ {
		// Cloud: CloudDepth layers of random 2-input cells narrowing or
		// widening toward RegsPerStage signals.
		width := len(cur)
		for k := 0; k < spec.CloudDepth; k++ {
			next := make([]string, spec.RegsPerStage)
			for r := 0; r < spec.RegsPerStage; r++ {
				cell := comb[rng.Intn(len(comb))]
				z := newNet()
				conns := map[string]string{"Z": z}
				pins := []string{"A", "B", "C"}
				cellPins := 2
				if cell == "AOI21" || cell == "OAI21" {
					cellPins = 3
				}
				for p := 0; p < cellPins; p++ {
					conns[pins[p]] = cur[(r+p*rng.Intn(width)+p)%width]
				}
				b.Inst(cell, fmt.Sprintf("s%d_c%d_%d", st, k, r), conns)
				next[r] = z
			}
			cur = next
			width = len(cur)
		}
		// Registers with scan muxes.
		regQ := make([]string, spec.RegsPerStage)
		for r := 0; r < spec.RegsPerStage; r++ {
			dn := newNet()
			q := fmt.Sprintf("s%d_r%d_q", st, r)
			b.Inst("MUX2", fmt.Sprintf("s%d_r%d_smux", st, r), map[string]string{
				"I0": cur[r%len(cur)], "I1": scanQ, "S": "se", "Z": dn})
			b.Inst("DFF", fmt.Sprintf("s%d_r%d", st, r), map[string]string{
				"CP": "cknet", "D": dn, "Q": q})
			regQ[r] = q
			scanQ = q
		}
		cur = regQ
	}
	// Outputs: registered result OR-ed with two reconvergent bypass
	// paths from the data inputs (BUF + XOR both rooted at d[i]), so
	// every output port carries both launch-class and interface-arc
	// timing.
	for i := 0; i < w; i++ {
		bp1 := newNet()
		bp2 := newNet()
		b.Inst("BUF", fmt.Sprintf("bp%d_buf", i), map[string]string{
			"A": dports[i], "Z": bp1})
		b.Inst("XOR2", fmt.Sprintf("bp%d_xor", i), map[string]string{
			"A": dports[i], "B": dports[(i+1)%w], "Z": bp2})
		q := fmt.Sprintf("q%d", i)
		b.Port(q, netlist.Out)
		b.Inst("OR3", fmt.Sprintf("out%d_or", i), map[string]string{
			"A": cur[i%len(cur)], "B": bp1, "C": bp2, "Z": q})
	}
	b.Port("so", netlist.Out)
	b.Inst("BUF", "so_buf", map[string]string{"A": scanQ, "Z": "so"})
	return b.MustBuild()
}
