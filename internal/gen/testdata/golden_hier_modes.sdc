### g0_m0
# mode g0_m0
foreach __p {di_d0_0 di_d0_1 di_d1_0 di_d1_1} {
  set_input_transition 0.05 [get_ports $__p]
}
create_clock -name clk_d0 -period 2 [get_ports clk_0]
create_clock -name clk_d1 -period 4 [get_ports clk_1]
set_case_analysis 0 [get_ports test_mode]
set_case_analysis 0 [get_ports scan_en]
set_case_analysis 1 [get_ports d0_b0_en]
set_case_analysis 1 [get_ports d0_b1_en]
set_case_analysis 1 [get_ports d1_b0_en]
set_case_analysis 1 [get_ports d1_b1_en]
set_input_delay 0.4 -clock clk_d0 [get_ports di_d0_0]
set_input_delay 0.4 -clock clk_d0 [get_ports di_d0_1]
set_output_delay 0.4 -clock clk_d0 [get_ports do_d0_0]
set_output_delay 0.4 -clock clk_d0 [get_ports do_d0_1]
set_input_delay 0.4 -clock clk_d1 [get_ports di_d1_0]
set_input_delay 0.4 -clock clk_d1 [get_ports di_d1_1]
set_output_delay 0.4 -clock clk_d1 [get_ports do_d1_0]
set_output_delay 0.4 -clock clk_d1 [get_ports do_d1_1]
set_false_path -from [get_pins b_d0_0/s1_r0/CP] -to [get_pins x0_reg/D]
set_false_path -from [get_pins b_d0_1/s1_r0/CP] -to [get_pins x1_reg/D]
set_multicycle_path 2 -setup -from [get_pins b_d0_0/s1_r2/CP]

### g0_m1
# mode g0_m1
foreach __p {di_d0_0 di_d0_1 di_d1_0 di_d1_1} {
  set_input_transition 0.05 [get_ports $__p]
}
create_clock -name scan_clk -period 8 [get_ports test_clk]
set_case_analysis 1 [get_ports test_mode]
set_case_analysis 1 [get_ports scan_en]
set_case_analysis 1 [get_ports d0_b0_en]
set_case_analysis 1 [get_ports d0_b1_en]
set_case_analysis 1 [get_ports d1_b0_en]
set_case_analysis 1 [get_ports d1_b1_en]
set_input_delay 2 -clock scan_clk [get_ports di_d0_0]
set_input_delay 2 -clock scan_clk [get_ports di_d0_1]
set_input_delay 2 -clock scan_clk [get_ports di_d1_0]
set_input_delay 2 -clock scan_clk [get_ports di_d1_1]
set_output_delay 2 -clock scan_clk [get_ports do_d0_0]
set_output_delay 2 -clock scan_clk [get_ports do_d0_1]
set_output_delay 2 -clock scan_clk [get_ports do_d1_0]
set_output_delay 2 -clock scan_clk [get_ports do_d1_1]
set_clock_uncertainty 0.1 [get_clocks scan_clk]

### g0_m2
# mode g0_m2
foreach __p {di_d0_0 di_d0_1 di_d1_0 di_d1_1} {
  set_input_transition 0.05 [get_ports $__p]
}
create_clock -name clk_d0 -period 2 [get_ports clk_0]
create_clock -name clk_d1 -period 4 [get_ports clk_1]
create_generated_clock -name cap_div2 -source [get_ports clk_0] -divide_by 2 [get_pins d0_clkbuf/Z]
set_case_analysis 0 [get_ports test_mode]
set_case_analysis 0 [get_ports scan_en]
set_case_analysis 1 [get_ports d0_b0_en]
set_case_analysis 0 [get_ports d0_b1_en]
set_case_analysis 1 [get_ports d1_b0_en]
set_case_analysis 0 [get_ports d1_b1_en]
set_input_delay 0.4 -clock clk_d0 [get_ports di_d0_0]
set_input_delay 0.4 -clock clk_d0 [get_ports di_d0_1]
set_output_delay 0.4 -clock clk_d0 [get_ports do_d0_0]
set_output_delay 0.4 -clock clk_d0 [get_ports do_d0_1]
set_input_delay 0.4 -clock clk_d1 [get_ports di_d1_0]
set_input_delay 0.4 -clock clk_d1 [get_ports di_d1_1]
set_output_delay 0.4 -clock clk_d1 [get_ports do_d1_0]
set_output_delay 0.4 -clock clk_d1 [get_ports do_d1_1]
set_false_path -from [get_pins b_d0_0/s1_r0/CP] -to [get_pins x0_reg/D]
set_false_path -from [get_pins b_d0_1/s1_r0/CP] -to [get_pins x1_reg/D]

### g1_m0
# mode g1_m0
foreach __p {di_d0_0 di_d0_1 di_d1_0 di_d1_1} {
  set_input_transition 0.2 [get_ports $__p]
}
create_clock -name clk_d0 -period 2 [get_ports clk_0]
create_clock -name clk_d1 -period 4 [get_ports clk_1]
set_case_analysis 0 [get_ports test_mode]
set_case_analysis 0 [get_ports scan_en]
set_case_analysis 1 [get_ports d0_b0_en]
set_case_analysis 1 [get_ports d0_b1_en]
set_case_analysis 1 [get_ports d1_b0_en]
set_case_analysis 1 [get_ports d1_b1_en]
set_input_delay 0.4 -clock clk_d0 [get_ports di_d0_0]
set_input_delay 0.4 -clock clk_d0 [get_ports di_d0_1]
set_output_delay 0.4 -clock clk_d0 [get_ports do_d0_0]
set_output_delay 0.4 -clock clk_d0 [get_ports do_d0_1]
set_input_delay 0.4 -clock clk_d1 [get_ports di_d1_0]
set_input_delay 0.4 -clock clk_d1 [get_ports di_d1_1]
set_output_delay 0.4 -clock clk_d1 [get_ports do_d1_0]
set_output_delay 0.4 -clock clk_d1 [get_ports do_d1_1]
set_false_path -from [get_pins b_d0_0/s1_r0/CP] -to [get_pins x0_reg/D]
set_false_path -from [get_pins b_d0_1/s1_r0/CP] -to [get_pins x1_reg/D]
set_multicycle_path 2 -setup -from [get_pins b_d0_0/s1_r2/CP]

