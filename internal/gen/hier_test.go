package gen

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"modemerge/internal/graph"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
)

// goldenHierSpec is the fixed hierarchical spec locked byte-for-byte;
// the same caveats as goldenSpec apply (committed corpus reproducers
// depend on Seed → design stability). Regenerate deliberately with
//
//	go test ./internal/gen -run HierGolden -update
func goldenHierSpec() (HierSpec, FamilySpec) {
	return HierSpec{Name: "hgolden", Seed: 4321, Domains: 2, BlocksPerDomain: 2,
			Stages: 2, RegsPerStage: 3, CloudDepth: 2, CrossPaths: 2, IOPairs: 2},
		FamilySpec{Groups: 2, ModesPerGroup: []int{3, 1}, BasePeriod: 2}
}

// TestGenerateHierGolden locks the hierarchical Verilog (masters + top)
// and the mode SDC text for one spec. Byte stability is what makes
// content-addressed ETM caching valid across processes: the master's
// rendered bytes are the cache key's design half.
func TestGenerateHierGolden(t *testing.T) {
	hspec, fspec := goldenHierSpec()
	g, err := GenerateHier(hspec)
	if err != nil {
		t.Fatal(err)
	}
	var sdcText bytes.Buffer
	for _, m := range g.Modes(fspec) {
		fmt.Fprintf(&sdcText, "### %s\n%s\n", m.Name, m.Text)
	}
	got := map[string][]byte{
		"golden_hier.v":         []byte(netlist.WriteVerilogHier(g.Hier)),
		"golden_hier_modes.sdc": sdcText.Bytes(),
	}
	for name, data := range got {
		path := filepath.Join("testdata", name)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (run with -update to create): %v", err)
		}
		if !bytes.Equal(want, data) {
			t.Errorf("%s: generated output differs from golden file; if the change is deliberate, regenerate with -update", name)
		}
	}
}

// TestGenerateHierByteStable regenerates the hierarchical golden spec
// repeatedly in one process.
func TestGenerateHierByteStable(t *testing.T) {
	hspec, fspec := goldenHierSpec()
	render := func() string {
		g, err := GenerateHier(hspec)
		if err != nil {
			t.Fatal(err)
		}
		out := netlist.WriteVerilogHier(g.Hier)
		for _, m := range g.Modes(fspec) {
			out += m.Text
		}
		return out
	}
	first := render()
	for i := 0; i < 5; i++ {
		if render() != first {
			t.Fatalf("generation %d produced different bytes for the same seed", i+1)
		}
	}
}

// TestGenerateHierUsable checks the flattened design builds a timing
// graph and every emitted mode parses against it — i.e. the flat
// handles (prefixed register names, top port names) all resolve.
func TestGenerateHierUsable(t *testing.T) {
	hspec, fspec := goldenHierSpec()
	g, err := GenerateHier(hspec)
	if err != nil {
		t.Fatal(err)
	}
	if g.Hier.Stats().Cells != g.Design.Stats().Cells {
		t.Errorf("cell count: hier=%d flat=%d", g.Hier.Stats().Cells, g.Design.Stats().Cells)
	}
	tg, err := graph.Build(g.Design)
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	if tg.NumNodes() == 0 {
		t.Fatal("empty graph")
	}
	modes := g.Modes(fspec)
	if len(modes) != fspec.TotalModes() {
		t.Fatalf("modes = %d, want %d", len(modes), fspec.TotalModes())
	}
	for _, m := range modes {
		if _, _, err := sdc.Parse(m.Name, m.Text, g.Design); err != nil {
			t.Errorf("mode %s: %v", m.Name, err)
		}
	}
	// Shared master: every block instance references the same design.
	for _, blk := range g.Hier.Blocks {
		if blk.Master != g.Hier.Blocks[0].Master {
			t.Errorf("block %s does not share the master", blk.Name)
		}
	}
}
