package gen

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"modemerge/internal/netlist"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenSpec is the fixed spec whose generated output is locked byte-for-
// byte. Any change to this file means generator output changed for EVERY
// seed: committed difftest corpus reproducers silently stop reproducing
// their original designs. Bump deliberately and regenerate with
//
//	go test ./internal/gen -run Golden -update
func goldenSpec() (DesignSpec, FamilySpec) {
	return DesignSpec{Name: "golden", Seed: 1234, Domains: 2, BlocksPerDomain: 2,
			Stages: 2, RegsPerStage: 3, CloudDepth: 2, CrossPaths: 2, IOPairs: 2},
		FamilySpec{Groups: 2, ModesPerGroup: []int{3, 1}, BasePeriod: 2}
}

// TestGenerateGolden locks the generated Verilog and mode SDC text for one
// spec. Generate must be byte-stable for a fixed Seed: the design text, the
// mode texts, and their order may not depend on map iteration or any other
// per-process state.
func TestGenerateGolden(t *testing.T) {
	dspec, fspec := goldenSpec()
	g, err := Generate(dspec)
	if err != nil {
		t.Fatal(err)
	}
	var sdcText bytes.Buffer
	for _, m := range g.Modes(fspec) {
		fmt.Fprintf(&sdcText, "### %s\n%s\n", m.Name, m.Text)
	}
	got := map[string][]byte{
		"golden.v":         []byte(netlist.WriteVerilog(g.Design)),
		"golden_modes.sdc": sdcText.Bytes(),
	}
	for name, data := range got {
		path := filepath.Join("testdata", name)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (run with -update to create): %v", err)
		}
		if !bytes.Equal(want, data) {
			t.Errorf("%s: generated output differs from golden file; if the change is deliberate, regenerate with -update", name)
		}
	}
}

// TestGenerateByteStable regenerates the golden spec repeatedly in one
// process; any dependence on map iteration order flips bytes across runs
// long before it flips across binaries.
func TestGenerateByteStable(t *testing.T) {
	dspec, fspec := goldenSpec()
	render := func() string {
		g, err := Generate(dspec)
		if err != nil {
			t.Fatal(err)
		}
		out := netlist.WriteVerilog(g.Design)
		for _, m := range g.Modes(fspec) {
			out += m.Text
		}
		return out
	}
	first := render()
	for i := 0; i < 5; i++ {
		if render() != first {
			t.Fatalf("generation %d produced different bytes for the same seed", i+1)
		}
	}
}
