// Package gen builds the designs the experiments run on: the paper's
// Figure 1 example circuit, and seeded synthetic industrial-shaped designs
// with families of timing modes (see generator.go).
package gen

import (
	"modemerge/internal/library"
	"modemerge/internal/netlist"
)

// PaperCircuit reconstructs the example circuit of Figure 1 of the paper,
// as implied by Constraint Sets 1–6 and Tables 1–4:
//
//   - Ports: clk1, clk2, in1, sel1, sel2 (inputs), out1 (output).
//   - Registers rA, rB, rC (launching) and rX, rY, rZ (capturing).
//   - Data paths:
//     (i)   rA/Q → inv1/Z → rX/D
//     (ii)  rA/Q → inv1/Z → and1/A; and1/Z → inv2/Z → rY/D
//     (iii) rB/Q → and1/B → inv2/Z → rY/D
//     (iv)  rC/Q → and2/A → rZ/D
//     (v)   rC/Q → inv3/A; inv3/Z → and2/B → rZ/D   (reconverges at and2)
//   - in1 feeds the launching registers through bufin; rZ/Q drives out1
//     through bufout.
//   - Clock network: clk1 clocks rA, rB, rC, rX and rY directly; rZ is
//     clocked by mux1/Z with mux1 selecting between clk1 (I0) and clk2
//     (I1) under xor1(sel1, sel2) — so with {sel1=0,sel2=1} or
//     {sel1=1,sel2=0} the select is 1 and clk1's clock cannot pass.
func PaperCircuit() *netlist.Design {
	b := netlist.NewBuilder("paper_fig1", library.Default())
	b.Port("clk1", netlist.In)
	b.Port("clk2", netlist.In)
	b.Port("in1", netlist.In)
	b.Port("sel1", netlist.In)
	b.Port("sel2", netlist.In)
	b.Port("out1", netlist.Out)

	// Clock select logic and rZ clock mux.
	b.Inst("XOR2", "xor1", map[string]string{"A": "sel1", "B": "sel2", "Z": "msel"})
	b.Inst("MUX2", "mux1", map[string]string{"I0": "clk1", "I1": "clk2", "S": "msel", "Z": "gclk"})

	// Input distribution.
	b.Inst("BUF", "bufin", map[string]string{"A": "in1", "Z": "din"})

	// Launch registers.
	b.Inst("DFF", "rA", map[string]string{"CP": "clk1", "D": "din", "Q": "qa"})
	b.Inst("DFF", "rB", map[string]string{"CP": "clk1", "D": "din", "Q": "qb"})
	b.Inst("DFF", "rC", map[string]string{"CP": "clk1", "D": "din", "Q": "qc"})

	// Combinational cloud.
	b.Inst("INV", "inv1", map[string]string{"A": "qa", "Z": "n1"})
	b.Inst("AND2", "and1", map[string]string{"A": "n1", "B": "qb", "Z": "n2"})
	b.Inst("INV", "inv2", map[string]string{"A": "n2", "Z": "n3"})
	b.Inst("INV", "inv3", map[string]string{"A": "qc", "Z": "n4"})
	b.Inst("AND2", "and2", map[string]string{"A": "qc", "B": "n4", "Z": "n5"})

	// Capture registers.
	b.Inst("DFF", "rX", map[string]string{"CP": "clk1", "D": "n1", "Q": "qx"})
	b.Inst("DFF", "rY", map[string]string{"CP": "clk1", "D": "n3", "Q": "qy"})
	b.Inst("DFF", "rZ", map[string]string{"CP": "gclk", "D": "n5", "Q": "qz"})

	// Output.
	b.Inst("BUF", "bufout", map[string]string{"A": "qz", "Z": "out1"})

	return b.MustBuild()
}
