package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"modemerge/internal/library"
	"modemerge/internal/netlist"
)

// DesignSpec parameterizes a synthetic industrial-shaped design: several
// clock domains, each with a buffered clock tree, a test-clock mux and
// clock-gated functional blocks; blocks are register pipelines with
// random reconvergent combinational clouds and external scan muxes in
// front of every register.
type DesignSpec struct {
	Name string
	Seed int64
	// Domains is the number of functional clock domains.
	Domains int
	// BlocksPerDomain is the number of gated blocks per domain.
	BlocksPerDomain int
	// Stages is the pipeline depth per block.
	Stages int
	// RegsPerStage is the register count per pipeline stage.
	RegsPerStage int
	// CloudDepth is the combinational depth between stages.
	CloudDepth int
	// CrossPaths adds register paths between adjacent domains.
	CrossPaths int
	// IOPairs adds input→logic and logic→output port paths per domain.
	IOPairs int
}

// Validate fills defaults and sanity-checks the spec.
func (s *DesignSpec) Validate() error {
	if s.Name == "" {
		s.Name = "synth"
	}
	if s.Domains <= 0 {
		s.Domains = 2
	}
	if s.BlocksPerDomain <= 0 {
		s.BlocksPerDomain = 2
	}
	if s.Stages <= 0 {
		s.Stages = 3
	}
	if s.RegsPerStage <= 0 {
		s.RegsPerStage = 4
	}
	if s.CloudDepth <= 0 {
		s.CloudDepth = 3
	}
	if s.CrossPaths < 0 || s.IOPairs < 0 {
		return fmt.Errorf("gen: negative path counts")
	}
	if s.IOPairs == 0 {
		s.IOPairs = 2
	}
	return nil
}

// CellEstimate approximates the generated cell count.
func (s DesignSpec) CellEstimate() int {
	perBlock := s.Stages * s.RegsPerStage * (2 + s.CloudDepth)
	return s.Domains * (s.BlocksPerDomain*perBlock + 10)
}

// Generated bundles the design with the structural handles the mode
// generator needs.
type Generated struct {
	Design *netlist.Design
	Spec   DesignSpec

	// ClockPorts per domain, plus the shared test clock port.
	ClockPorts []string
	TestClock  string
	// TestMode and ScanEn are the global control ports.
	TestMode string
	ScanEn   string
	// BlockEnables[d][b] is the clock-gate enable port of a block.
	BlockEnables [][]string
	// BlockFirstRegs[d][b] / BlockLastRegs[d][b] name representative
	// registers (instance names) for exceptions.
	BlockFirstRegs [][]string
	BlockLastRegs  [][]string
	// CrossRegPairs lists (fromReg, toReg) register instance names of
	// cross-domain paths.
	CrossRegPairs [][2]string
	// DataIn / DataOut per domain.
	DataIn  [][]string
	DataOut [][]string
}

// Generate builds the synthetic design deterministically from the spec's
// seed.
func Generate(spec DesignSpec) (*Generated, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	b := netlist.NewBuilder(spec.Name, library.Default())
	g := &Generated{Spec: spec}

	g.TestClock = "test_clk"
	g.TestMode = "test_mode"
	g.ScanEn = "scan_en"
	b.Port(g.TestClock, netlist.In)
	b.Port(g.TestMode, netlist.In)
	b.Port(g.ScanEn, netlist.In)

	comb := []string{"AND2", "OR2", "NAND2", "NOR2", "XOR2", "AOI21", "OAI21"}

	netCount := 0
	newNet := func(prefix string) string {
		netCount++
		return fmt.Sprintf("%s_n%d", prefix, netCount)
	}

	for d := 0; d < spec.Domains; d++ {
		clkPort := fmt.Sprintf("clk_%d", d)
		b.Port(clkPort, netlist.In)
		g.ClockPorts = append(g.ClockPorts, clkPort)

		// Domain clock: mux between the functional clock and the test
		// clock, then a small buffer tree.
		dmux := fmt.Sprintf("d%d_clkmux", d)
		muxOut := newNet(dmux)
		b.Inst("MUX2", dmux, map[string]string{
			"I0": clkPort, "I1": g.TestClock, "S": g.TestMode, "Z": muxOut})
		rootBuf := fmt.Sprintf("d%d_clkbuf", d)
		rootNet := newNet(rootBuf)
		b.Inst("CLKBUF", rootBuf, map[string]string{"A": muxOut, "Z": rootNet})

		g.BlockEnables = append(g.BlockEnables, nil)
		g.BlockFirstRegs = append(g.BlockFirstRegs, nil)
		g.BlockLastRegs = append(g.BlockLastRegs, nil)
		g.DataIn = append(g.DataIn, nil)
		g.DataOut = append(g.DataOut, nil)

		// IO ports for the domain.
		var inPorts, outPorts []string
		for i := 0; i < spec.IOPairs; i++ {
			in := fmt.Sprintf("d%d_in%d", d, i)
			out := fmt.Sprintf("d%d_out%d", d, i)
			b.Port(in, netlist.In)
			b.Port(out, netlist.Out)
			inPorts = append(inPorts, in)
			outPorts = append(outPorts, out)
		}
		g.DataIn[d] = inPorts
		g.DataOut[d] = outPorts

		for blk := 0; blk < spec.BlocksPerDomain; blk++ {
			prefix := fmt.Sprintf("d%d_b%d", d, blk)
			enPort := fmt.Sprintf("%s_en", prefix)
			b.Port(enPort, netlist.In)
			g.BlockEnables[d] = append(g.BlockEnables[d], enPort)

			// Clock gate: test_mode forces the clock on.
			orName := prefix + "_enor"
			enNet := newNet(orName)
			b.Inst("OR2", orName, map[string]string{"A": enPort, "B": g.TestMode, "Z": enNet})
			icg := prefix + "_icg"
			gclk := newNet(icg)
			b.Inst("ICG", icg, map[string]string{"CK": rootNet, "EN": enNet, "GCK": gclk})

			// Pipeline stages. Stage data[i] are the nets feeding stage i.
			width := spec.RegsPerStage
			data := make([]string, width)
			for i := range data {
				src := inPorts[i%len(inPorts)]
				data[i] = src
			}
			var prevScanQ string
			for st := 0; st < spec.Stages; st++ {
				regQ := make([]string, width)
				for r := 0; r < width; r++ {
					reg := fmt.Sprintf("%s_s%d_r%d", prefix, st, r)
					q := newNet(reg)
					// External scan mux in front of D: functional data
					// or the previous register's Q under scan_en.
					si := prevScanQ
					if si == "" {
						si = inPorts[0]
					}
					smux := reg + "_smux"
					dNet := newNet(smux)
					b.Inst("MUX2", smux, map[string]string{
						"I0": data[r], "I1": si, "S": g.ScanEn, "Z": dNet})
					b.Inst("DFF", reg, map[string]string{"CP": gclk, "D": dNet, "Q": q})
					regQ[r] = q
					prevScanQ = q
					if st == 0 && r == 0 {
						g.BlockFirstRegs[d] = append(g.BlockFirstRegs[d], reg)
					}
					if st == spec.Stages-1 && r == 0 {
						g.BlockLastRegs[d] = append(g.BlockLastRegs[d], reg)
					}
				}
				// Combinational cloud to the next stage (or outputs).
				next := make([]string, width)
				cur := append([]string(nil), regQ...)
				for depth := 0; depth < spec.CloudDepth; depth++ {
					out := make([]string, width)
					for r := 0; r < width; r++ {
						cell := comb[rng.Intn(len(comb))]
						gname := fmt.Sprintf("%s_s%d_c%d_%d", prefix, st, depth, r)
						z := newNet(gname)
						conns := map[string]string{"Z": z}
						ins := library.Default().Cell(cell).Inputs()
						for k, pin := range ins {
							// Reconvergence: random fan-in from this
							// stage's signals.
							conns[pin] = cur[(r+k*rng.Intn(width)+k)%width]
						}
						b.Inst(cell, gname, conns)
						out[r] = z
					}
					cur = out
				}
				copy(next, cur)
				data = next
			}
			// Drive outputs from the last stage.
			for i, out := range outPorts {
				if blk == 0 {
					bufName := fmt.Sprintf("%s_obuf%d", prefix, i)
					b.Inst("BUF", bufName, map[string]string{"A": data[i%len(data)], "Z": out})
				}
			}
			_ = rng
		}
	}

	// Cross-domain register paths.
	for i := 0; i < spec.CrossPaths && spec.Domains > 1; i++ {
		from := i % spec.Domains
		to := (i + 1) % spec.Domains
		fromReg := g.BlockLastRegs[from][i%len(g.BlockLastRegs[from])]
		toBlk := i % len(g.BlockFirstRegs[to])
		prefix := fmt.Sprintf("x%d", i)
		// A buffer from the source register's Q into an extra capture
		// register in the target domain.
		srcInst := b.MustPinNet(fromReg, "Q")
		xbuf := prefix + "_buf"
		xnet := fmt.Sprintf("%s_n", prefix)
		b.Inst("BUF", xbuf, map[string]string{"A": srcInst, "Z": xnet})
		xreg := prefix + "_reg"
		gclkNet := b.MustPinNet(g.BlockFirstRegs[to][toBlk], "CP")
		b.Inst("DFF", xreg, map[string]string{"CP": gclkNet, "D": xnet, "Q": prefix + "_q"})
		g.CrossRegPairs = append(g.CrossRegPairs, [2]string{fromReg, xreg})
	}

	d, err := b.Build()
	if err != nil {
		return nil, err
	}
	g.Design = d
	return g, nil
}

// modeBuilder accumulates SDC text.
type modeBuilder struct {
	b strings.Builder
}

func (m *modeBuilder) addf(format string, args ...any) {
	fmt.Fprintf(&m.b, format+"\n", args...)
}

// ModeSDC is one generated timing mode as SDC text.
type ModeSDC struct {
	Name string
	Text string
}

// FamilySpec parameterizes a generated mode family. Groups are mutually
// non-mergeable (their port input-transition values differ beyond any
// reasonable tolerance); modes within a group are mergeable variants
// (functional / scan-shift / test configurations with differing cases and
// exceptions).
type FamilySpec struct {
	// Groups is the number of non-mergeable groups (the expected merged
	// mode count).
	Groups int
	// ModesPerGroup lists the size of each group; len must equal Groups.
	ModesPerGroup []int
	// BasePeriod is the fastest functional clock period.
	BasePeriod float64
	// FunctionalOnly replaces the scan-shift and test-capture variants
	// (v=1, v=2) with functional variants of the same index, so every
	// mode of a group creates the same clocks with the same periods.
	// Such families are the ones whose merged clock namespace stays
	// shared across members — the precondition for the refinement
	// engine's cross-mode fingerprint prune to fire at all.
	FunctionalOnly bool
	// Corners is the number of operating corners of the scenario matrix
	// (see CornerSet); 0 means corner-less analysis.
	Corners int
}

// TotalModes sums the group sizes.
func (f FamilySpec) TotalModes() int {
	total := 0
	for _, n := range f.ModesPerGroup {
		total += n
	}
	return total
}

// Modes generates the SDC text of every mode of the family against the
// generated design. Within a group, mode variant v cycles through:
//
//	v=0: functional — domain clocks, clock-gate enables on, per-domain IO
//	     delays, cross-domain false paths, an MCP on one block.
//	v=1: scan shift — a slow clock on the test clock port only,
//	     test_mode=1, scan_en=1.
//	v=2: test capture — domain clocks plus a divided generated clock on
//	     domain 0, test_mode=0, alternating block enables.
//	v≥3: functional variants — different block-enable cases and different
//	     per-variant false paths / multicycles.
func (g *Generated) Modes(f FamilySpec) []ModeSDC {
	return g.ModesWithExtra(f, nil)
}

// ModesWithExtra generates the family like Modes, then appends the SDC
// lines returned by extra(grp, v) to each mode's text. It is the
// perturbation hook the differential fuzzing harness uses to inject
// randomized per-mode constraints (extra exceptions, case analysis,
// disabled arcs) without re-deriving the structural handles. A nil extra
// is allowed and means no perturbation.
func (g *Generated) ModesWithExtra(f FamilySpec, extra func(grp, v int) []string) []ModeSDC {
	if f.BasePeriod <= 0 {
		f.BasePeriod = 2.0
	}
	var out []ModeSDC
	for grp := 0; grp < f.Groups; grp++ {
		// Group signature: an input-transition value incompatible across
		// groups.
		tr := 0.05 * float64(1+grp*3)
		for v := 0; v < f.ModesPerGroup[grp]; v++ {
			name := fmt.Sprintf("g%d_m%d", grp, v)
			m := &modeBuilder{}
			m.addf("# mode %s", name)
			// Real SDC files set pad constraints in Tcl loops; exercise
			// the interpreter's control flow the same way.
			m.addf("foreach __p {%s} {", strings.Join(g.allDataIns(), " "))
			m.addf("  set_input_transition %.4g [get_ports $__p]", tr)
			m.addf("}")
			switch {
			case !f.FunctionalOnly && v == 1:
				g.scanShiftMode(m, f, grp)
			case !f.FunctionalOnly && v == 2:
				g.testCaptureMode(m, f, grp)
			default:
				g.functionalMode(m, f, grp, v)
			}
			if extra != nil {
				for _, line := range extra(grp, v) {
					m.addf("%s", line)
				}
			}
			out = append(out, ModeSDC{Name: name, Text: m.b.String()})
		}
	}
	return out
}

// CornerSet renders f.Corners deterministic operating corners, modelled
// on a voltage/temperature sweep: corner 0 is the typical point (neutral
// factors, no overlay); odd corners lean slow — rising global and late
// derates, growing check margins, and an SDC overlay adding pad load on
// the data outputs; even corners lean fast — shrinking delays with an
// extra early derate, and an overlay tightening the data-input
// transitions. Overlays reference only ports (which exist in every mode
// of every family, unlike clocks) and never create clocks, as the merge
// engine requires.
func (g *Generated) CornerSet(f FamilySpec) []library.Corner {
	if f.Corners <= 0 {
		return nil
	}
	out := make([]library.Corner, f.Corners)
	for c := range out {
		crn := library.Corner{Name: fmt.Sprintf("c%d", c)}
		switch {
		case c == 0:
			// Typical: the neutral corner.
		case c%2 == 1:
			crn.DelayScale = 1 + 0.05*float64(c)
			crn.LateScale = 1.05
			crn.MarginScale = 1 + 0.1*float64(c)
			var b strings.Builder
			for d := range g.DataOut {
				for _, outp := range g.DataOut[d] {
					fmt.Fprintf(&b, "set_load %.4g [get_ports %s]\n", 0.02*float64(c+1), outp)
				}
			}
			crn.SDC = b.String()
		default:
			crn.DelayScale = 1 / (1 + 0.04*float64(c))
			crn.EarlyScale = 0.95
			var b strings.Builder
			for _, in := range g.allDataIns() {
				fmt.Fprintf(&b, "set_input_transition %.4g [get_ports %s]\n", 0.03*float64(c), in)
			}
			crn.SDC = b.String()
		}
		out[c] = crn
	}
	return out
}

func (g *Generated) allDataIns() []string {
	var out []string
	for _, ins := range g.DataIn {
		out = append(out, ins...)
	}
	return out
}

func (g *Generated) functionalMode(m *modeBuilder, f FamilySpec, grp, v int) {
	for d, port := range g.ClockPorts {
		period := f.BasePeriod * float64(d+1)
		m.addf("create_clock -name clk_d%d -period %.4g [get_ports %s]", d, period, port)
	}
	m.addf("set_case_analysis 0 [get_ports %s]", g.TestMode)
	m.addf("set_case_analysis 0 [get_ports %s]", g.ScanEn)
	// Block enables: variants disable different blocks.
	for d := range g.BlockEnables {
		for blk, en := range g.BlockEnables[d] {
			val := 1
			if (blk+v)%3 == 0 && v >= 3 {
				val = 0
			}
			m.addf("set_case_analysis %d [get_ports %s]", val, en)
		}
	}
	// IO delays referenced to the domain clocks.
	for d := range g.DataIn {
		for _, in := range g.DataIn[d] {
			m.addf("set_input_delay %.4g -clock clk_d%d [get_ports %s]", 0.2*f.BasePeriod, d, in)
		}
		for _, outp := range g.DataOut[d] {
			m.addf("set_output_delay %.4g -clock clk_d%d [get_ports %s]", 0.2*f.BasePeriod, d, outp)
		}
	}
	// Cross-domain false paths (asynchronous crossings in functional
	// mode).
	for _, pair := range g.CrossRegPairs {
		m.addf("set_false_path -from [get_pins %s/CP] -to [get_pins %s/D]", pair[0], pair[1])
	}
	// A multicycle on one block's last stage, varying per variant.
	if len(g.BlockLastRegs) > 0 && len(g.BlockLastRegs[0]) > 0 {
		blk := v % len(g.BlockLastRegs[0])
		m.addf("set_multicycle_path 2 -setup -from [get_pins %s/CP]", g.BlockLastRegs[0][blk])
	}
	// Variant-specific false path.
	if v >= 3 && len(g.BlockFirstRegs) > 0 {
		d := v % len(g.BlockFirstRegs)
		blk := v % len(g.BlockFirstRegs[d])
		m.addf("set_false_path -from [get_pins %s/CP]", g.BlockFirstRegs[d][blk])
	}
}

func (g *Generated) scanShiftMode(m *modeBuilder, f FamilySpec, grp int) {
	m.addf("create_clock -name scan_clk -period %.4g [get_ports %s]", 4*f.BasePeriod, g.TestClock)
	m.addf("set_case_analysis 1 [get_ports %s]", g.TestMode)
	m.addf("set_case_analysis 1 [get_ports %s]", g.ScanEn)
	for d := range g.BlockEnables {
		for _, en := range g.BlockEnables[d] {
			m.addf("set_case_analysis 1 [get_ports %s]", en)
		}
	}
	for _, in := range g.allDataIns() {
		m.addf("set_input_delay %.4g -clock scan_clk [get_ports %s]", f.BasePeriod, in)
	}
	for d := range g.DataOut {
		for _, outp := range g.DataOut[d] {
			m.addf("set_output_delay %.4g -clock scan_clk [get_ports %s]", f.BasePeriod, outp)
		}
	}
	m.addf("set_clock_uncertainty 0.1 [get_clocks scan_clk]")
}

func (g *Generated) testCaptureMode(m *modeBuilder, f FamilySpec, grp int) {
	for d, port := range g.ClockPorts {
		period := f.BasePeriod * float64(d+1)
		m.addf("create_clock -name clk_d%d -period %.4g [get_ports %s]", d, period, port)
	}
	// Divided capture clock on domain 0's gated tree.
	m.addf("create_generated_clock -name cap_div2 -source [get_ports %s] -divide_by 2 [get_pins d0_clkbuf/Z]",
		g.ClockPorts[0])
	m.addf("set_case_analysis 0 [get_ports %s]", g.TestMode)
	m.addf("set_case_analysis 0 [get_ports %s]", g.ScanEn)
	for d := range g.BlockEnables {
		for blk, en := range g.BlockEnables[d] {
			m.addf("set_case_analysis %d [get_ports %s]", (blk+1)%2, en)
		}
	}
	// Board-level delays are shared with the functional modes (the same
	// pads and the same reference clocks).
	for d := range g.DataIn {
		clock := fmt.Sprintf("clk_d%d", d)
		for _, in := range g.DataIn[d] {
			m.addf("set_input_delay %.4g -clock %s [get_ports %s]", 0.2*f.BasePeriod, clock, in)
		}
		for _, outp := range g.DataOut[d] {
			m.addf("set_output_delay %.4g -clock %s [get_ports %s]", 0.2*f.BasePeriod, clock, outp)
		}
	}
	for _, pair := range g.CrossRegPairs {
		m.addf("set_false_path -from [get_pins %s/CP] -to [get_pins %s/D]", pair[0], pair[1])
	}
}
