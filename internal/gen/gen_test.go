package gen

import (
	"strings"
	"testing"

	"modemerge/internal/graph"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/sdc"
)

func TestPaperCircuitStructure(t *testing.T) {
	d := PaperCircuit()
	s := d.Stats()
	if s.Sequential != 6 {
		t.Errorf("sequential = %d, want 6", s.Sequential)
	}
	for _, inst := range []string{"rA", "rB", "rC", "rX", "rY", "rZ", "inv1", "inv2", "inv3", "and1", "and2", "mux1", "xor1"} {
		if d.InstByName(inst) == nil {
			t.Errorf("instance %s missing", inst)
		}
	}
	for _, port := range []string{"clk1", "clk2", "in1", "out1", "sel1", "sel2"} {
		if d.PortByName(port) == nil {
			t.Errorf("port %s missing", port)
		}
	}
	if _, err := graph.Build(d); err != nil {
		t.Fatalf("graph build: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := DesignSpec{Name: "det", Seed: 42, Domains: 2, BlocksPerDomain: 2, Stages: 2, RegsPerStage: 3, CloudDepth: 2, CrossPaths: 2}
	g1, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := g1.Design.Stats(), g2.Design.Stats()
	if s1 != s2 {
		t.Errorf("stats differ across identical seeds: %+v vs %+v", s1, s2)
	}
	// Same instances cell-by-cell.
	for i, inst := range g1.Design.Insts {
		other := g2.Design.Insts[i]
		if inst.Name != other.Name || inst.Cell.Name != other.Cell.Name {
			t.Fatalf("instance %d differs: %s/%s vs %s/%s",
				i, inst.Name, inst.Cell.Name, other.Name, other.Cell.Name)
		}
	}
}

func TestGenerateDifferentSeeds(t *testing.T) {
	a, err := Generate(DesignSpec{Name: "a", Seed: 1, Domains: 1, BlocksPerDomain: 1, Stages: 2, RegsPerStage: 4, CloudDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DesignSpec{Name: "b", Seed: 2, Domains: 1, BlocksPerDomain: 1, Stages: 2, RegsPerStage: 4, CloudDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Design.Insts {
		if a.Design.Insts[i].Cell.Name != b.Design.Insts[i].Cell.Name {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical cell sequences")
	}
}

func TestGeneratedDesignBuildsGraph(t *testing.T) {
	g, err := Generate(DesignSpec{Name: "g", Seed: 7, Domains: 3, BlocksPerDomain: 2, Stages: 3, RegsPerStage: 4, CloudDepth: 2, CrossPaths: 3})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := graph.Build(g.Design)
	if err != nil {
		t.Fatal(err)
	}
	if len(tg.Endpoints()) == 0 || len(tg.Startpoints()) == 0 {
		t.Error("generated design has no timing paths")
	}
	warnings, err := g.Design.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) > 0 {
		t.Errorf("validation warnings: %v", warnings[:min(3, len(warnings))])
	}
}

func TestCellEstimate(t *testing.T) {
	spec := DesignSpec{Name: "e", Seed: 1, Domains: 2, BlocksPerDomain: 3, Stages: 4, RegsPerStage: 8, CloudDepth: 4}
	g, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Design.Stats().Cells
	est := spec.CellEstimate()
	if got < est/2 || got > est*2 {
		t.Errorf("cell estimate %d far from actual %d", est, got)
	}
}

func TestModesParse(t *testing.T) {
	g, err := Generate(DesignSpec{Name: "m", Seed: 3, Domains: 2, BlocksPerDomain: 2, Stages: 2, RegsPerStage: 3, CloudDepth: 2, CrossPaths: 2})
	if err != nil {
		t.Fatal(err)
	}
	fam := FamilySpec{Groups: 2, ModesPerGroup: []int{4, 3}, BasePeriod: 2}
	modes := g.Modes(fam)
	if len(modes) != fam.TotalModes() {
		t.Fatalf("modes = %d, want %d", len(modes), fam.TotalModes())
	}
	for _, ms := range modes {
		mode, _, err := sdc.Parse(ms.Name, ms.Text, g.Design)
		if err != nil {
			t.Fatalf("mode %s does not parse: %v\n%s", ms.Name, err, ms.Text)
		}
		if len(mode.Clocks) == 0 {
			t.Errorf("mode %s has no clocks", ms.Name)
		}
	}
}

func TestModeVariantsDiffer(t *testing.T) {
	g, err := Generate(DesignSpec{Name: "v", Seed: 5, Domains: 2, BlocksPerDomain: 2, Stages: 2, RegsPerStage: 3, CloudDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	modes := g.Modes(FamilySpec{Groups: 1, ModesPerGroup: []int{3}, BasePeriod: 2})
	// Functional vs scan-shift vs test-capture must have different clock
	// sets.
	m0, _, err := sdc.Parse("m0", modes[0].Text, g.Design)
	if err != nil {
		t.Fatal(err)
	}
	m1, _, err := sdc.Parse("m1", modes[1].Text, g.Design)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := sdc.Parse("m2", modes[2].Text, g.Design)
	if err != nil {
		t.Fatal(err)
	}
	if len(m0.Clocks) == len(m1.Clocks) && m0.Clocks[0].Name == m1.Clocks[0].Name {
		t.Error("functional and scan modes look identical")
	}
	hasGen := false
	for _, c := range m2.Clocks {
		if c.Generated {
			hasGen = true
		}
	}
	if !hasGen {
		t.Error("test-capture mode lacks a generated clock")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGeneratedDesignVerilogRoundTrip(t *testing.T) {
	g, err := Generate(DesignSpec{Name: "rt", Seed: 9, Domains: 2, BlocksPerDomain: 2,
		Stages: 2, RegsPerStage: 3, CloudDepth: 2, CrossPaths: 2})
	if err != nil {
		t.Fatal(err)
	}
	text := netlist.WriteVerilog(g.Design)
	re, err := netlist.ParseVerilog(text, library.Default(), "rt")
	if err != nil {
		t.Fatalf("generated design does not re-parse: %v", err)
	}
	if re.Stats() != g.Design.Stats() {
		t.Errorf("stats changed: %+v vs %+v", re.Stats(), g.Design.Stats())
	}
	// The re-parsed design must accept the generated modes too (this is
	// the gendesign → modemerge CLI contract).
	for _, ms := range g.Modes(FamilySpec{Groups: 1, ModesPerGroup: []int{3}, BasePeriod: 2}) {
		if _, _, err := sdc.Parse(ms.Name, ms.Text, re); err != nil {
			t.Fatalf("mode %s does not parse against the re-parsed design: %v", ms.Name, err)
		}
	}
	if _, err := graph.Build(re); err != nil {
		t.Fatal(err)
	}
}

func TestModesUseTclControlFlow(t *testing.T) {
	g, err := Generate(DesignSpec{Name: "cf", Seed: 4, Domains: 1, BlocksPerDomain: 1,
		Stages: 2, RegsPerStage: 2, CloudDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	modes := g.Modes(FamilySpec{Groups: 1, ModesPerGroup: []int{1}, BasePeriod: 2})
	if !strings.Contains(modes[0].Text, "foreach") {
		t.Error("generated SDC does not exercise control flow")
	}
	m, _, err := sdc.Parse("m", modes[0].Text, g.Design)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.InputTransitions) != len(g.allDataIns()) {
		t.Errorf("foreach produced %d transitions, want %d",
			len(m.InputTransitions), len(g.allDataIns()))
	}
}
