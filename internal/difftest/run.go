package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"modemerge/internal/core"
	"modemerge/internal/gen"
	"modemerge/internal/graph"
	"modemerge/internal/incr"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
	"modemerge/internal/relation"
	"modemerge/internal/sdc"
	"modemerge/internal/sta"
)

// Property names reported in violations.
const (
	PropEquivalence      = "equivalence"       // CheckEquivalence finds optimism
	PropRoundTrip        = "roundtrip"         // merged SDC fails Write→Parse→Write
	PropPessimism        = "pessimism"         // merged stricter than NaiveMerge
	PropConformity       = "conformity"        // merged times an endpoint all members exclude
	PropDeterminism      = "determinism"       // parallel merge differs from sequential
	PropIncremental      = "incremental"       // warm cached re-merge differs from cold
	PropHierarchical     = "hierarchical"      // ETM-driven merge optimistic or wrong cliques
	PropCornerConformity = "corner-conformity" // merged mode optimistic in some corner's scenarios
)

// maxDetails bounds the per-property detail strings kept in a violation
// list; counts stay exact.
const maxDetails = 8

// Violation is one property failure in one merged clique.
type Violation struct {
	Property string `json:"property"`
	Clique   string `json:"clique"` // merged mode name
	Count    int    `json:"count"`  // offending groups/keys under this property
	Details  []string
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s[%s] count=%d", v.Property, v.Clique, v.Count)
	for _, d := range v.Details {
		s += "\n    " + d
	}
	return s
}

// TrialResult is the outcome of running the oracle on one spec.
type TrialResult struct {
	Spec       *TrialSpec
	Modes      int
	Cliques    int
	Violations []Violation
	// Err is an infrastructure failure (generation, parse of a *generated*
	// mode, merge error) — distinct from a property violation.
	Err error
}

// Failed reports whether the trial found a property violation.
func (r *TrialResult) Failed() bool { return len(r.Violations) > 0 }

// Run generates the design and mode family from the spec, applies its
// perturbations, merges with the given fault injection, and checks the
// three properties on every merged clique. The fault injection applies
// only to the merge under test — the oracles themselves (equivalence
// check, naive baseline) always run clean.
func Run(cx context.Context, spec *TrialSpec, fault core.FaultInjection) *TrialResult {
	res := &TrialResult{Spec: spec}

	var g *gen.Generated
	var hier *netlist.HierDesign
	if spec.Hierarchical {
		// HierSpec mirrors DesignSpec field-for-field; the same structural
		// parameters size the hierarchical variant of the design.
		hg, err := gen.GenerateHier(gen.HierSpec{
			Name: spec.Design.Name, Seed: spec.Design.Seed,
			Domains: spec.Design.Domains, BlocksPerDomain: spec.Design.BlocksPerDomain,
			Stages: spec.Design.Stages, RegsPerStage: spec.Design.RegsPerStage,
			CloudDepth: spec.Design.CloudDepth, CrossPaths: spec.Design.CrossPaths,
			IOPairs: spec.Design.IOPairs,
		})
		if err != nil {
			res.Err = fmt.Errorf("generate hier: %w", err)
			return res
		}
		g, hier = &hg.Generated, hg.Hier
	} else {
		fg, err := gen.Generate(spec.Design)
		if err != nil {
			res.Err = fmt.Errorf("generate: %w", err)
			return res
		}
		g = fg
	}
	texts := g.ModesWithExtra(spec.Family, spec.ExtraHook(g))
	res.Modes = len(texts)

	var modes []*sdc.Mode
	for _, t := range texts {
		m, _, err := sdc.Parse(t.Name, t.Text, g.Design)
		if err != nil {
			res.Err = fmt.Errorf("parse generated mode %s: %w", t.Name, err)
			return res
		}
		modes = append(modes, m)
	}

	tg, err := graph.Build(g.Design)
	if err != nil {
		res.Err = fmt.Errorf("graph: %w", err)
		return res
	}

	opt := core.Options{Tolerance: spec.Tolerance, Inject: fault, Parallelism: spec.Parallelism}
	cleanOpt := core.Options{Tolerance: spec.Tolerance}

	// Corner trials merge the #modes × #corners scenario matrix. The
	// corners apply to the merge under test (and flow into the
	// determinism and incremental oracles through opt), while the oracle
	// baselines stay corner-less — relations don't depend on derates, and
	// the per-corner safety claim is checked by the corner-conformity
	// oracle on effective (overlay-applied) texts. Hierarchical trials
	// ignore the corner dimension: core rejects the combination.
	var corners []library.Corner
	if spec.Corners > 0 && !spec.Hierarchical {
		corners = spec.CornerSet(g)
		opt.Corners = corners
	}

	mergedModes, reports, mb, err := core.MergeAll(cx, tg, modes, opt)
	if err != nil {
		res.Err = fmt.Errorf("merge: %w", err)
		return res
	}
	cliques := mb.Cliques()
	res.Cliques = len(cliques)

	// Property 4: determinism — the (possibly parallel) merge above must
	// equal a fully sequential merge of the same spec byte-for-byte, both
	// the merged SDC and the explain reports. The same fault injection
	// applies to both sides, so the comparison isolates parallelism.
	if spec.Parallelism != 1 {
		res.Violations = append(res.Violations, checkDeterminism(cx, tg, modes, mergedModes, reports, opt)...)
		if err := cx.Err(); err != nil {
			res.Err = err
			return res
		}
	}

	// Property 5: incremental — merging through a content-addressed
	// sub-merge cache (cold fill, warm replay, warm after perturbing one
	// mode) must be byte-identical to cacheless merges of the same
	// inputs. The same fault injection applies to both sides, so the
	// comparison isolates the caching layer.
	if spec.Incremental {
		res.Violations = append(res.Violations, checkIncremental(cx, tg, modes, mergedModes, reports, opt)...)
		if err := cx.Err(); err != nil {
			res.Err = err
			return res
		}
	}

	// Property 6: hierarchical — the ETM-driven merge must agree with the
	// flat merge on clique structure and must never be optimistic. The
	// same fault injection applies to the hierarchical merge (it is a
	// merge under test too — that is how ETM faults become detectable);
	// the equivalence checks run clean.
	if hier != nil {
		res.Violations = append(res.Violations, checkHierarchical(cx, tg, hier, modes, mergedModes, cliques, opt, cleanOpt)...)
		if err := cx.Err(); err != nil {
			res.Err = err
			return res
		}
	}

	for i, clique := range cliques {
		if len(clique) < 2 {
			// A singleton clique's "merged" mode is the mode itself; the
			// properties hold trivially and checking it only costs time.
			continue
		}
		if err := cx.Err(); err != nil {
			res.Err = err
			return res
		}
		var members []*sdc.Mode
		for _, mi := range clique {
			members = append(members, modes[mi])
		}
		merged := mergedModes[i]
		res.Violations = append(res.Violations, checkClique(cx, tg, members, merged, corners, cleanOpt)...)
		if err := cx.Err(); err != nil {
			res.Err = err
			return res
		}
	}
	return res
}

// checkDeterminism re-merges with Parallelism=1 and compares the merged
// SDC text and explain-report JSON of every clique against the parallel
// run. Any difference is a sharding/reduction-order bug in the parallel
// engine.
func checkDeterminism(cx context.Context, tg *graph.Graph, modes []*sdc.Mode, parMerged []*sdc.Mode, parReports []*core.Report, opt core.Options) []Violation {
	seqOpt := opt
	seqOpt.Parallelism = 1
	seqMerged, seqReports, _, err := core.MergeAll(cx, tg, modes, seqOpt)
	if err != nil {
		return []Violation{{Property: PropDeterminism, Clique: "*", Count: 1,
			Details: []string{"sequential re-merge error: " + err.Error()}}}
	}
	if len(seqMerged) != len(parMerged) {
		return []Violation{{Property: PropDeterminism, Clique: "*", Count: 1,
			Details: []string{fmt.Sprintf("clique count differs: parallel %d vs sequential %d",
				len(parMerged), len(seqMerged))}}}
	}
	var out []Violation
	for i := range parMerged {
		var details []string
		if parMerged[i].Name != seqMerged[i].Name {
			details = append(details, fmt.Sprintf("merged name differs: %q vs %q",
				parMerged[i].Name, seqMerged[i].Name))
		}
		if pt, st := sdc.Write(parMerged[i]), sdc.Write(seqMerged[i]); pt != st {
			details = append(details, "merged SDC differs: "+firstDiff(pt, st))
		}
		pj, err1 := json.Marshal(parReports[i].Explain(parMerged[i].Name))
		sj, err2 := json.Marshal(seqReports[i].Explain(seqMerged[i].Name))
		if err1 != nil || err2 != nil {
			details = append(details, fmt.Sprintf("explain marshal error: %v / %v", err1, err2))
		} else if !bytes.Equal(pj, sj) {
			details = append(details, "explain JSON differs: "+firstDiff(string(pj), string(sj)))
		}
		if len(details) > 0 {
			out = append(out, Violation{Property: PropDeterminism, Clique: parMerged[i].Name,
				Count: len(details), Details: cap8(details)})
		}
	}
	return out
}

// checkHierarchical re-merges the same modes through the hierarchical
// ETM path (core.Options.Hierarchical) and holds the result to the
// issue's sign-off contract: identical clique structure, and a stitched
// merged mode that is never optimistic — neither against the member
// modes (absolute safety) nor against the flat merged mode (the stitch
// may only add pessimism relative to flat refinement, never remove
// relations the flat merge keeps).
func checkHierarchical(cx context.Context, tg *graph.Graph, hier *netlist.HierDesign, modes []*sdc.Mode, flatMerged []*sdc.Mode, flatCliques [][]int, opt, cleanOpt core.Options) []Violation {
	hopt := opt
	hopt.Hierarchical = hier
	hMerged, _, hmb, err := core.MergeAll(cx, tg, modes, hopt)
	if err != nil {
		return []Violation{{Property: PropHierarchical, Clique: "*", Count: 1,
			Details: []string{"hierarchical merge error: " + err.Error()}}}
	}
	hCliques := hmb.Cliques()
	if len(hCliques) != len(flatCliques) {
		return []Violation{{Property: PropHierarchical, Clique: "*", Count: 1,
			Details: []string{fmt.Sprintf("clique count differs: flat %d vs hierarchical %d",
				len(flatCliques), len(hCliques))}}}
	}
	var out []Violation
	for i, clique := range hCliques {
		if fmt.Sprint(clique) != fmt.Sprint(flatCliques[i]) {
			out = append(out, Violation{Property: PropHierarchical, Clique: hMerged[i].Name, Count: 1,
				Details: []string{fmt.Sprintf("clique membership differs: flat %v vs hierarchical %v",
					flatCliques[i], clique)}})
			continue
		}
		if len(clique) < 2 {
			continue // singleton: the mode itself on both sides
		}
		var members []*sdc.Mode
		for _, mi := range clique {
			members = append(members, modes[mi])
		}
		for _, ref := range []struct {
			against []*sdc.Mode
			label   string
		}{
			{members, "members"},
			{[]*sdc.Mode{flatMerged[i]}, "flat merged mode"},
		} {
			eq, err := core.CheckEquivalence(cx, tg, ref.against, hMerged[i], cleanOpt)
			switch {
			case err != nil:
				out = append(out, Violation{Property: PropHierarchical, Clique: hMerged[i].Name, Count: 1,
					Details: []string{"checker error vs " + ref.label + ": " + err.Error()}})
			case !eq.Equivalent():
				details := make([]string, 0, maxDetails)
				for _, d := range cap8(eq.OptimisticMismatches) {
					details = append(details, "vs "+ref.label+": "+d)
				}
				out = append(out, Violation{Property: PropHierarchical, Clique: hMerged[i].Name,
					Count: len(eq.OptimisticMismatches), Details: details})
			}
		}
	}
	return out
}

// checkIncremental holds the incremental re-merge engine to its
// byte-identity guarantee. The cacheless merge (baseMerged/baseReports)
// is the reference; the oracle then
//
//  1. merges the same modes through a fresh cache (cold fill) and on a
//     warm replay — both must match the reference;
//  2. perturbs one mode deterministically (an extra clock-uncertainty
//     line, i.e. "the user edited one mode file"), and compares the
//     warm incremental re-merge of the perturbed family against a cold
//     cacheless merge of it.
func checkIncremental(cx context.Context, tg *graph.Graph, modes []*sdc.Mode, baseMerged []*sdc.Mode, baseReports []*core.Report, opt core.Options) []Violation {
	violate := func(detail string) []Violation {
		return []Violation{{Property: PropIncremental, Clique: "*", Count: 1, Details: []string{detail}}}
	}
	fingerprint := func(merged []*sdc.Mode, reports []*core.Report) (string, error) {
		var b bytes.Buffer
		for i := range merged {
			b.WriteString("== " + merged[i].Name + "\n")
			b.WriteString(sdc.Write(merged[i]))
			ej, err := json.Marshal(reports[i].Explain(merged[i].Name))
			if err != nil {
				return "", err
			}
			b.Write(ej)
			b.WriteByte('\n')
		}
		return b.String(), nil
	}

	ref, err := fingerprint(baseMerged, baseReports)
	if err != nil {
		return violate("reference explain marshal error: " + err.Error())
	}
	cache := incr.New(0)
	cacheOpt := opt
	cacheOpt.Cache = cache
	for _, pass := range []string{"cold fill", "warm replay"} {
		merged, reports, _, err := core.MergeAll(cx, tg, modes, cacheOpt)
		if err != nil {
			return violate(pass + " merge error: " + err.Error())
		}
		got, err := fingerprint(merged, reports)
		if err != nil {
			return violate(pass + " explain marshal error: " + err.Error())
		}
		if got != ref {
			return violate(pass + " differs from cacheless merge: " + firstDiff(ref, got))
		}
	}
	// A single-mode family has no pairs and no multi-member cliques, so
	// there is legitimately nothing to cache; only larger families must
	// show reuse on the warm replay.
	st := cache.Stats().Snapshot()
	if len(modes) >= 2 && st.PairHits+st.CliqueHits == 0 {
		return violate("warm replay recorded no cache hits — the cache is not being consulted")
	}

	// Perturb one mode: append a clock-uncertainty line and re-parse. The
	// target index and the edit are deterministic functions of the spec,
	// so replays reproduce exactly. A clockless target can't be perturbed
	// this way; skip the phase rather than invent a different edit.
	pi := len(modes) / 2
	if len(modes[pi].Clocks) == 0 {
		return nil
	}
	text := sdc.Write(modes[pi]) + "\nset_clock_uncertainty 0.123 [get_clocks " +
		modes[pi].Clocks[0].Name + "]\n"
	pm, _, err := sdc.Parse(modes[pi].Name, text, tg.Design)
	if err != nil {
		return violate("perturbed mode does not reparse: " + err.Error())
	}
	perturbed := append([]*sdc.Mode(nil), modes...)
	perturbed[pi] = pm

	coldMerged, coldReports, _, err := core.MergeAll(cx, tg, perturbed, opt)
	if err != nil {
		return violate("cold merge of perturbed family: " + err.Error())
	}
	coldFP, err := fingerprint(coldMerged, coldReports)
	if err != nil {
		return violate("cold perturbed explain marshal error: " + err.Error())
	}
	warmMerged, warmReports, _, err := core.MergeAll(cx, tg, perturbed, cacheOpt)
	if err != nil {
		return violate("warm incremental re-merge of perturbed family: " + err.Error())
	}
	warmFP, err := fingerprint(warmMerged, warmReports)
	if err != nil {
		return violate("warm perturbed explain marshal error: " + err.Error())
	}
	if warmFP != coldFP {
		return violate("incremental re-merge after one-mode edit differs from cold merge: " +
			firstDiff(coldFP, warmFP))
	}
	return nil
}

// checkClique runs the per-clique properties on one merged clique.
func checkClique(cx context.Context, tg *graph.Graph, members []*sdc.Mode, merged *sdc.Mode, corners []library.Corner, opt core.Options) []Violation {
	var out []Violation

	// Property 1: no optimistic mismatches against the individual modes.
	// On corner trials this runs per corner on the effective
	// (overlay-applied) texts instead — a relaxation private to one corner
	// legitimately stays out of the merged base text, so the corner-less
	// comparison would be the wrong reference in both directions.
	if len(corners) > 0 {
		if v, ok := checkCornerConformity(cx, tg, members, merged, corners, opt); !ok {
			out = append(out, v)
		}
	} else {
		eq, err := core.CheckEquivalence(cx, tg, members, merged, opt)
		switch {
		case err != nil:
			out = append(out, Violation{Property: PropEquivalence, Clique: merged.Name, Count: 1,
				Details: []string{"checker error: " + err.Error()}})
		case !eq.Equivalent():
			out = append(out, Violation{Property: PropEquivalence, Clique: merged.Name,
				Count: len(eq.OptimisticMismatches), Details: cap8(eq.OptimisticMismatches)})
		}
	}

	// Property 2: the merged SDC round-trips through the parser and the
	// reparse writes back byte-identically (fixpoint after one pass).
	if v, ok := checkRoundTrip(tg, merged); !ok {
		out = append(out, v)
	}

	// Property 3: merged never more pessimistic than the naive baseline.
	if v, ok := checkPessimism(cx, tg, members, merged, opt); !ok {
		out = append(out, v)
	}

	// Property 4: endpoints every member excludes stay excluded in the
	// merged mode (the accuracy direction the naive baseline is blind to).
	if v, ok := checkConformity(cx, tg, members, merged); !ok {
		out = append(out, v)
	}
	return out
}

// checkRoundTrip verifies the merged mode survives the parser: its
// written SDC must load without error, and after one normalizing
// Parse→Write pass the text must be a fixpoint (the writer may annotate
// with `;#` comments the parser legitimately drops, so the raw first
// write is not required to be stable — only the reparsed form is).
func checkRoundTrip(tg *graph.Graph, merged *sdc.Mode) (Violation, bool) {
	text := sdc.Write(merged)
	re, _, err := sdc.Parse(merged.Name, text, tg.Design)
	if err != nil {
		return Violation{Property: PropRoundTrip, Clique: merged.Name, Count: 1,
			Details: []string{"merged SDC does not reparse: " + err.Error()}}, false
	}
	norm := sdc.Write(re)
	re2, _, err := sdc.Parse(merged.Name, norm, tg.Design)
	if err != nil {
		return Violation{Property: PropRoundTrip, Clique: merged.Name, Count: 1,
			Details: []string{"normalized merged SDC does not reparse: " + err.Error()}}, false
	}
	if again := sdc.Write(re2); again != norm {
		return Violation{Property: PropRoundTrip, Clique: merged.Name, Count: 1,
			Details: []string{"merged SDC is not a parse→write fixpoint: " + firstDiff(norm, again)}}, false
	}
	return Violation{}, true
}

// firstDiff summarizes the first divergence between two texts.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("byte %d: %q vs %q", i, clip(a[lo:]), clip(b[lo:]))
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

func clip(s string) string {
	if len(s) > 80 {
		return s[:80]
	}
	return s
}

// checkPessimism compares endpoint-granularity timing relationships of the
// merged mode against core.NaiveMerge on the same members. The naive
// baseline intersects exceptions and infers exclusivity textually, so it
// is pessimistic-or-equal everywhere the graph-based method claims to
// win; a merged relation strictly tighter than naive means the refinement
// passes regressed below the baseline. Keys where either side holds
// several distinct states are skipped — endpoint granularity cannot order
// them (the equivalence checker covers those at finer granularity).
func checkPessimism(cx context.Context, tg *graph.Graph, members []*sdc.Mode, merged *sdc.Mode, opt core.Options) (Violation, bool) {
	naive, err := core.NaiveMerge(cx, tg, members, opt)
	if err != nil {
		return Violation{Property: PropPessimism, Clique: merged.Name, Count: 1,
			Details: []string{"naive merge error: " + err.Error()}}, false
	}
	relM, err := endpointRelations(cx, tg, merged)
	if err != nil {
		return Violation{Property: PropPessimism, Clique: merged.Name, Count: 1,
			Details: []string{"merged STA error: " + err.Error()}}, false
	}
	relN, err := endpointRelations(cx, tg, naive)
	if err != nil {
		return Violation{Property: PropPessimism, Clique: merged.Name, Count: 1,
			Details: []string{"naive STA error: " + err.Error()}}, false
	}

	var details []string
	count := 0
	keys := make([]sta.RelKey, 0, len(relM))
	for k := range relM {
		keys = append(keys, k)
	}
	for k := range relN {
		if _, ok := relM[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return relKeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		mset, mpresent := relM[k]
		nset, npresent := relN[k]
		ms, mok := single(mset, mpresent)
		ns, nok := single(nset, npresent)
		if !mok || !nok {
			continue // ambiguous at this granularity
		}
		// Merged more pessimistic than naive ⇔ naive is the relaxed one.
		if relation.Relaxed(ns, ms) {
			count++
			if len(details) < maxDetails {
				details = append(details, fmt.Sprintf("%s -> %s (%s/%s %v): merged %v stricter than naive %v",
					k.Start, k.End, k.Launch, k.Capture, k.Check, ms, ns))
			}
		}
	}
	if count > 0 {
		return Violation{Property: PropPessimism, Clique: merged.Name, Count: count, Details: details}, false
	}
	return Violation{}, true
}

// checkConformity enforces the accuracy half of §3.2's endpoint contract:
// at any endpoint where *every* member mode excludes *every* path group
// (all relation keys resolve to false, absence counted as false), the
// merged mode must exclude them too. Pass 1 of the refinement guarantees
// this with a corrective false path whenever the agreed target state is
// false — the one corrective fix neither the equivalence oracle (it only
// rejects optimism) nor the naive baseline (it intersects exceptions and
// so drops the very relaxations at stake) can see missing. Endpoints
// where any member holds an ambiguous (multi-state) set are skipped:
// endpoint granularity cannot order those, and the finer-granularity
// passes own them.
func checkConformity(cx context.Context, tg *graph.Graph, members []*sdc.Mode, merged *sdc.Mode) (Violation, bool) {
	rels := make([]map[sta.RelKey]relation.Set, len(members))
	for i, m := range members {
		r, err := endpointRelations(cx, tg, m)
		if err != nil {
			return Violation{Property: PropConformity, Clique: merged.Name, Count: 1,
				Details: []string{"member STA error: " + err.Error()}}, false
		}
		rels[i] = r
	}
	relM, err := endpointRelations(cx, tg, merged)
	if err != nil {
		return Violation{Property: PropConformity, Clique: merged.Name, Count: 1,
			Details: []string{"merged STA error: " + err.Error()}}, false
	}

	// Classify each endpoint seen by any member: dead ⇔ every member key
	// at it resolves to a single false state (absent keys are false).
	type endState int
	const (
		endDead endState = iota // unanimously excluded by all members
		endLive                 // some member times some group here
		endSkip                 // ambiguous in some member
	)
	ends := map[string]endState{}
	for _, r := range rels {
		for k, set := range r {
			if st, seen := ends[k.End]; seen && st == endSkip {
				continue
			} else if !seen {
				ends[k.End] = endDead
			}
			s, ok := single(set, true)
			switch {
			case !ok:
				ends[k.End] = endSkip
			case s != relation.StateFalse:
				ends[k.End] = endLive
			}
		}
	}

	var details []string
	count := 0
	keys := make([]sta.RelKey, 0, len(relM))
	for k := range relM {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return relKeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		if st, seen := ends[k.End]; !seen || st != endDead {
			continue
		}
		ms, ok := single(relM[k], true)
		if !ok || ms == relation.StateFalse {
			continue
		}
		count++
		if len(details) < maxDetails {
			details = append(details, fmt.Sprintf("%s -> %s (%s/%s %v): merged times %v where every member is false",
				k.Start, k.End, k.Launch, k.Capture, k.Check, ms))
		}
	}
	if count > 0 {
		return Violation{Property: PropConformity, Clique: merged.Name, Count: count, Details: details}, false
	}
	return Violation{}, true
}

// checkCornerConformity is the scenario-matrix generalization of the
// equivalence oracle (§3.2 safety, per corner): for every corner, the
// merged mode deployed in that corner — its base text with the corner's
// SDC overlay appended, exactly how core builds scenario contexts — must
// never be optimistic against the member modes deployed the same way.
// The checks run corner-less over the effective texts: derates scale
// delays, not relations, so the overlay is the only part of a corner the
// relation comparison can see. This is the oracle that catches a merge
// refining against a subset of the corners (e.g. the
// merge-best-corner-only fault): a relaxation private to the surviving
// corner gets baked into the merged base text and surfaces as optimism
// in every corner that lacks it.
func checkCornerConformity(cx context.Context, tg *graph.Graph, members []*sdc.Mode, merged *sdc.Mode, corners []library.Corner, opt core.Options) (Violation, bool) {
	violate := func(detail string) (Violation, bool) {
		return Violation{Property: PropCornerConformity, Clique: merged.Name, Count: 1,
			Details: []string{detail}}, false
	}
	var details []string
	count := 0
	for i := range corners {
		crn := &corners[i]
		effMembers, effMerged := members, merged
		if crn.SDC != "" {
			effMembers = make([]*sdc.Mode, len(members))
			for j, m := range members {
				em, err := overlayMode(tg, m, crn)
				if err != nil {
					return violate(fmt.Sprintf("corner %s: member %s overlay: %v", crn.Name, m.Name, err))
				}
				effMembers[j] = em
			}
			var err error
			if effMerged, err = overlayMode(tg, merged, crn); err != nil {
				return violate(fmt.Sprintf("corner %s: merged overlay: %v", crn.Name, err))
			}
		}
		eq, err := core.CheckEquivalence(cx, tg, effMembers, effMerged, opt)
		switch {
		case err != nil:
			return violate(fmt.Sprintf("corner %s: checker error: %v", crn.Name, err))
		case !eq.Equivalent():
			count += len(eq.OptimisticMismatches)
			for _, d := range eq.OptimisticMismatches {
				if len(details) < maxDetails {
					details = append(details, "corner "+crn.Name+": "+d)
				}
			}
		}
	}
	if count > 0 {
		return Violation{Property: PropCornerConformity, Clique: merged.Name, Count: count, Details: details}, false
	}
	return Violation{}, true
}

// overlayMode rebuilds a mode with a corner's SDC overlay appended — the
// same effective-text construction core uses for scenario contexts.
func overlayMode(tg *graph.Graph, m *sdc.Mode, crn *library.Corner) (*sdc.Mode, error) {
	em, _, err := sdc.Parse(m.Name, sdc.Write(m)+"\n"+crn.SDC+"\n", tg.Design)
	return em, err
}

// single resolves a relation set to one state; a missing/empty set means
// the path group is not timed (false).
func single(s relation.Set, present bool) (relation.State, bool) {
	if !present || s.Empty() {
		return relation.StateFalse, true
	}
	return s.Single()
}

func endpointRelations(cx context.Context, tg *graph.Graph, m *sdc.Mode) (map[sta.RelKey]relation.Set, error) {
	ctx, err := sta.NewContext(tg, m, sta.Options{})
	if err != nil {
		return nil, err
	}
	rel := ctx.EndpointRelations(cx)
	if err := cx.Err(); err != nil {
		return nil, err
	}
	return rel, nil
}

func relKeyLess(a, b sta.RelKey) bool {
	if a.End != b.End {
		return a.End < b.End
	}
	if a.Launch != b.Launch {
		return a.Launch < b.Launch
	}
	if a.Capture != b.Capture {
		return a.Capture < b.Capture
	}
	if a.Check != b.Check {
		return a.Check < b.Check
	}
	return a.Start < b.Start
}

func cap8(s []string) []string {
	if len(s) > maxDetails {
		return s[:maxDetails]
	}
	return s
}
