package difftest

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"modemerge/internal/core"
	"modemerge/internal/gen"
	"modemerge/internal/sdc"
)

// TestCorpusReplay replays every committed reproducer: clean entries must
// stay clean (they pin past oracle false alarms), fault entries must
// still be caught (they pin detector power).
func TestCorpusReplay(t *testing.T) {
	corpus, err := LoadDir("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("empty corpus: testdata/corpus reproducers are expected to be committed")
	}
	for name, r := range corpus {
		r := r
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			f, err := ParseFault(r.Fault)
			if err != nil {
				t.Fatal(err)
			}
			res := Run(context.Background(), &r.Spec, f.Inject)
			if err := r.Replay(res); err != nil {
				t.Errorf("%s (found by %s): %v", name, r.FoundBy, err)
			}
		})
	}
}

// TestCorpusReplayParallel replays every committed reproducer through the
// parallel merge engine: with intra-merge sharding forced on, each entry
// must behave exactly as its sequential replay (the corpus predates the
// parallelism dimension), and the determinism oracle additionally
// cross-checks the parallel output against a sequential re-merge.
func TestCorpusReplayParallel(t *testing.T) {
	corpus, err := LoadDir("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("empty corpus: testdata/corpus reproducers are expected to be committed")
	}
	for name, r := range corpus {
		r := r
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			f, err := ParseFault(r.Fault)
			if err != nil {
				t.Fatal(err)
			}
			spec := r.Spec
			spec.Parallelism = 4
			res := Run(context.Background(), &spec, f.Inject)
			if err := r.Replay(res); err != nil {
				t.Errorf("%s (found by %s, parallelism=4): %v", name, r.FoundBy, err)
			}
		})
	}
}

// TestCorpusReplayIncremental replays every committed reproducer with the
// incremental oracle forced on: each entry must behave exactly as its
// plain replay (the corpus predates the caching dimension), and the
// oracle additionally holds the cached re-merge — cold fill, warm
// replay, and warm after a one-mode edit — byte-identical to cacheless
// merges.
func TestCorpusReplayIncremental(t *testing.T) {
	corpus, err := LoadDir("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("empty corpus: testdata/corpus reproducers are expected to be committed")
	}
	for name, r := range corpus {
		r := r
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			f, err := ParseFault(r.Fault)
			if err != nil {
				t.Fatal(err)
			}
			spec := r.Spec
			spec.Incremental = true
			res := Run(context.Background(), &spec, f.Inject)
			if err := r.Replay(res); err != nil {
				t.Errorf("%s (found by %s, incremental): %v", name, r.FoundBy, err)
			}
			for _, v := range res.Violations {
				if v.Property == PropIncremental {
					t.Errorf("%s: incremental oracle fired on a pinned reproducer: %s", name, v)
				}
			}
		})
	}
}

// TestRandomTrialsClean is the in-tree slice of the fuzz loop: a fixed
// band of seeds must produce zero property violations on the unmodified
// merge flow. cmd/modefuzz runs the same oracle over many more seeds.
func TestRandomTrialsClean(t *testing.T) {
	trials := 15
	if testing.Short() {
		trials = 4
	}
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(1000 + int64(i)))
		spec := RandomSpec(rng)
		res := Run(context.Background(), spec, core.FaultInjection{})
		if res.Err != nil {
			t.Fatalf("trial %d: %v\n  spec: %s", i, res.Err, spec)
		}
		for _, v := range res.Violations {
			t.Errorf("trial %d: %s\n  spec: %s", i, v, spec)
		}
	}
}

// TestInjectedFaultCaughtAndShrunk is the harness's own acceptance test:
// a deliberately injected merge bug (subset exceptions kept verbatim, the
// naive textual-union mistake) must be detected by the equivalence
// oracle, shrink to a minimal spec that still reproduces, and round-trip
// through a saved corpus file.
func TestInjectedFaultCaughtAndShrunk(t *testing.T) {
	cx := context.Background()
	fault, err := ParseFault("keep-subset-exceptions")
	if err != nil {
		t.Fatal(err)
	}
	if !fault.Detectable {
		t.Fatal("keep-subset-exceptions must be marked detectable")
	}

	// Hunt a failing trial over a deterministic seed band. The fault
	// fires whenever a clique's modes carry subset exceptions, which the
	// generator's functional variants produce in most specs.
	var spec *TrialSpec
	for i := int64(0); i < 20; i++ {
		rng := rand.New(rand.NewSource(7000 + i))
		s := RandomSpec(rng)
		res := Run(cx, s, fault.Inject)
		if res.Err == nil && res.Failed() {
			spec = s
			break
		}
	}
	if spec == nil {
		t.Fatal("injected fault keep-subset-exceptions was never detected in 20 trials")
	}

	shrunk := Shrink(cx, spec, fault.Inject)
	if shrunk.Size() > spec.Size() {
		t.Fatalf("shrinking grew the spec: %d -> %d", spec.Size(), shrunk.Size())
	}
	res := Run(cx, shrunk, fault.Inject)
	if res.Err != nil || !res.Failed() {
		t.Fatalf("shrunk spec no longer reproduces: err=%v violations=%d", res.Err, len(res.Violations))
	}
	sawEquiv := false
	for _, v := range res.Violations {
		if v.Property == PropEquivalence {
			sawEquiv = true
		}
	}
	if !sawEquiv {
		t.Fatalf("expected an equivalence violation from the injected optimism, got %v", res.Violations)
	}

	// The shrunk reproducer must be locally minimal: no single
	// simplification step keeps the failure.
	for _, cand := range candidates(shrunk) {
		if cand.Size() >= shrunk.Size() {
			continue
		}
		if r := Run(cx, cand, fault.Inject); r.Err == nil && r.Failed() {
			t.Fatalf("shrunk spec is not minimal: %s still fails", cand)
		}
	}

	// Save → load → replay round trip.
	dir := t.TempDir()
	repro := &Reproducer{
		Spec:             *shrunk,
		Fault:            "keep-subset-exceptions",
		ExpectViolations: true,
		Properties:       []string{PropEquivalence},
		FoundBy:          "TestInjectedFaultCaughtAndShrunk",
	}
	path, err := repro.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := loaded[filepath.Base(path)]
	if !ok {
		t.Fatalf("saved reproducer %s not found on reload", path)
	}
	if err := got.Replay(Run(cx, &got.Spec, fault.Inject)); err != nil {
		t.Fatalf("reloaded reproducer: %v", err)
	}
}

// TestShrinkKeepsPassingSpec: shrinking only applies to failures.
func TestShrinkKeepsPassingSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	spec := RandomSpec(rng)
	if got := Shrink(context.Background(), spec, core.FaultInjection{}); got != spec {
		t.Fatal("Shrink of a passing spec must return it unchanged")
	}
}

// TestPerturbRenderingAlwaysValid: any integer selectors must render to
// SDC the parser accepts on the generated design (modulo clamping).
func TestPerturbRenderingAlwaysValid(t *testing.T) {
	g, err := gen.Generate(gen.DesignSpec{Name: "p", Seed: 9, Domains: 2, BlocksPerDomain: 2,
		Stages: 1, RegsPerStage: 1, CloudDepth: 1, CrossPaths: 1, IOPairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	fam := gen.FamilySpec{Groups: 1, ModesPerGroup: []int{2}, BasePeriod: 2}
	for trial := 0; trial < 50; trial++ {
		spec := &TrialSpec{Design: g.Spec, Family: fam}
		for i := 0; i < 3; i++ {
			p := RandomPerturb(rng)
			p.D, p.B, p.D2, p.B2, p.Mode = rng.Int(), rng.Int(), rng.Int(), rng.Int(), rng.Int()
			spec.Perturbs = append(spec.Perturbs, p)
		}
		for _, m := range g.ModesWithExtra(fam, spec.ExtraHook(g)) {
			if _, _, err := sdc.Parse(m.Name, m.Text, g.Design); err != nil {
				t.Fatalf("trial %d: perturbed mode %s does not parse: %v\nperturbs: %+v",
					trial, m.Name, err, spec.Perturbs)
			}
		}
	}
}
