// Package difftest is a property-based differential fuzzing harness for
// the mode-merging flow. It samples randomized designs and mode families
// (internal/gen) plus random constraint perturbations, runs the
// timing-graph merge, and checks every merged clique against eight
// independent oracles:
//
//  1. equivalence — core.CheckEquivalence reports no optimistic
//     mismatches (the paper's §3.2 sign-off safety claim);
//  2. round-trip — the merged mode survives sdc.Write → sdc.Parse →
//     sdc.Write byte-identically (the merged SDC is real, loadable SDC);
//  3. pessimism bound — per-endpoint timing relationships of the merged
//     mode are never more pessimistic than core.NaiveMerge on the same
//     modes (the graph-based method must not lose to the textual
//     baseline it claims to beat);
//  4. conformity — endpoints that every member mode excludes entirely
//     (all path groups false) stay excluded in the merged mode (the
//     accuracy half of §3.2: the merged mode must not keep timing paths
//     no member times — a direction the intersection-based naive
//     baseline is structurally blind to);
//  5. determinism — merging with the trial's sampled worker count yields
//     byte-identical merged SDC and explain reports to the fully
//     sequential merge of the same spec (the parallel engine's
//     shard/reduce scheme must not leak scheduling order into output);
//  6. incremental — merging through a content-addressed sub-merge cache
//     (cold fill, warm replay, and a warm re-merge after editing one
//     mode) stays byte-identical to cacheless merges of the same inputs
//     (caching changes work, never results);
//  7. hierarchical — on hierarchical trials, the ETM-driven merge
//     (internal/etm extraction + per-block refinement + stitching) forms
//     the same cliques as the flat merge and its stitched modes are
//     never optimistic, neither against the member modes nor against the
//     flat merged mode (relation-equivalent up to pessimism);
//  8. corner-conformity — on corner (MCMM scenario-matrix) trials, the
//     merged mode deployed in each corner (base text + that corner's SDC
//     overlay) is never optimistic against the member modes deployed in
//     the same corner. This is the per-corner form of oracle 1, and on
//     corner trials it replaces it: relaxations private to one corner
//     make the corner-less comparison the wrong reference.
//
// Failures shrink to a minimal reproducer spec and are written as JSON
// corpus files under testdata/corpus/, which go test replays as
// deterministic regressions. cmd/modefuzz is the CLI driver.
package difftest

import (
	"encoding/json"
	"fmt"

	"modemerge/internal/gen"
	"modemerge/internal/library"
)

// Perturb is one randomized constraint added to one mode of the family.
// Selectors are free integers resolved by modulo against the generated
// design's structural handles, so every integer combination is valid and
// shrinking never produces a dangling reference.
type Perturb struct {
	// Mode selects the target mode by global index (mod total modes).
	Mode int `json:"mode"`
	// Kind is one of "false_path", "multicycle", "case", "disable".
	Kind string `json:"kind"`
	// D/B select a domain and block (mod the respective counts).
	D int `json:"d"`
	B int `json:"b"`
	// D2/B2 select the -to side of a false path.
	D2 int `json:"d2,omitempty"`
	B2 int `json:"b2,omitempty"`
	// Mult parameterizes the multicycle multiplier (2 + Mult mod 3).
	Mult int `json:"mult,omitempty"`
	// Val is the case-analysis value (mod 2).
	Val int `json:"val,omitempty"`
}

// TrialSpec is one fully serialized fuzz trial: enough to regenerate the
// exact design, mode family and perturbations deterministically.
type TrialSpec struct {
	Design    gen.DesignSpec `json:"design"`
	Family    gen.FamilySpec `json:"family"`
	Perturbs  []Perturb      `json:"perturbs,omitempty"`
	Tolerance float64        `json:"tolerance,omitempty"`
	// Parallelism bounds the merge-under-test's intra-merge worker pools
	// (core.Options.Parallelism); 0 means GOMAXPROCS, 1 forces the
	// sequential path. The engine guarantees byte-identical output for
	// any value, and the determinism oracle re-merges sequentially to
	// hold it to that. Absent in older corpus files (= 0).
	Parallelism int `json:"parallelism,omitempty"`
	// Incremental additionally runs the incremental re-merge oracle:
	// warm a sub-merge cache with a baseline merge, perturb one mode, and
	// require the warm incremental re-merge to be byte-identical to a
	// cold merge of the perturbed family (core.Options.Cache never
	// changes results, only work). Absent in older corpus files (= off).
	Incremental bool `json:"incremental,omitempty"`
	// Hierarchical generates the design with gen.GenerateHier (same
	// structural parameters, block instances of a shared master) instead
	// of gen.Generate and additionally runs the hierarchical oracle: the
	// ETM-driven merge of the flattened design must form the same cliques
	// as the flat merge and must never be optimistic against the members
	// or the flat merged mode. Absent in older corpus files (= off).
	Hierarchical bool `json:"hierarchical,omitempty"`
	// Corners sets the MCMM scenario-matrix dimension: 0 merges
	// corner-less, N ≥ 1 merges the #modes × N scenario matrix through
	// core.Options.Corners using gen.CornerSet's derate ladder. Corner
	// trials swap the corner-less equivalence oracle for the per-corner
	// corner-conformity oracle (the corner-less comparison is the wrong
	// reference once relaxations may be corner-local). Ignored on
	// hierarchical trials — core rejects the combination. Absent in
	// older corpus files (= 0).
	Corners int `json:"corners,omitempty"`
	// CornerPerturbs are constraint overlays attached to individual
	// corners: each renders like a Perturb, but the lines are appended to
	// the selected corner's SDC overlay (Perturb.Mode selects the corner,
	// mod Corners) and so apply to every mode analyzed in that corner.
	// Only the relation-relaxing false-path kinds are rendered (see
	// cornerPerturbKinds) — overlays must not create clocks and must not
	// collide with per-mode case values. Absent in older corpus files.
	CornerPerturbs []Perturb `json:"corner_perturbs,omitempty"`
}

// Clone deep-copies the spec.
func (s *TrialSpec) Clone() *TrialSpec {
	c := *s
	c.Family.ModesPerGroup = append([]int(nil), s.Family.ModesPerGroup...)
	c.Perturbs = append([]Perturb(nil), s.Perturbs...)
	c.CornerPerturbs = append([]Perturb(nil), s.CornerPerturbs...)
	return &c
}

// Size is the shrinking order: smaller specs are simpler reproducers.
func (s *TrialSpec) Size() int {
	d := s.Design
	modes := 0
	for _, n := range s.Family.ModesPerGroup {
		modes += n
	}
	return d.Domains*d.BlocksPerDomain*d.Stages*d.RegsPerStage*(1+d.CloudDepth) +
		d.CrossPaths + d.IOPairs + 10*modes + 5*len(s.Perturbs) +
		8*s.Corners + 5*len(s.CornerPerturbs)
}

// String is a compact summary for logs.
func (s *TrialSpec) String() string {
	kind := ""
	if s.Hierarchical {
		kind = " hier"
	}
	corners := ""
	if s.Corners > 0 {
		corners = fmt.Sprintf(" corners=%d/%d", s.Corners, len(s.CornerPerturbs))
	}
	return fmt.Sprintf("design{dom=%d blk=%d stg=%d reg=%d cloud=%d x=%d io=%d seed=%d%s} groups=%v perturbs=%d%s",
		s.Design.Domains, s.Design.BlocksPerDomain, s.Design.Stages, s.Design.RegsPerStage,
		s.Design.CloudDepth, s.Design.CrossPaths, s.Design.IOPairs, s.Design.Seed, kind,
		s.Family.ModesPerGroup, len(s.Perturbs), corners)
}

// MarshalIndent renders the canonical JSON form used for corpus files.
func (s *TrialSpec) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// renderPerturb emits the SDC lines for one perturbation, resolving its
// selectors against the generated design's structural handles.
func renderPerturb(g *gen.Generated, p Perturb) []string {
	nd := len(g.BlockFirstRegs)
	if nd == 0 {
		return nil
	}
	pick := func(d, b int) (int, int) {
		d = mod(d, nd)
		return d, mod(b, len(g.BlockFirstRegs[d]))
	}
	switch p.Kind {
	case "false_path":
		d, b := pick(p.D, p.B)
		d2, b2 := pick(p.D2, p.B2)
		return []string{fmt.Sprintf("set_false_path -from [get_pins %s/CP] -to [get_pins %s/D]",
			g.BlockLastRegs[d][b], g.BlockFirstRegs[d2][b2])}
	case "false_path_from":
		d, b := pick(p.D, p.B)
		return []string{fmt.Sprintf("set_false_path -from [get_pins %s/CP]",
			g.BlockLastRegs[d][b])}
	case "false_path_out":
		d, b := pick(p.D, p.B)
		d2 := mod(p.D2, len(g.DataOut))
		if len(g.DataOut[d2]) == 0 {
			return nil
		}
		port := g.DataOut[d2][mod(p.B2, len(g.DataOut[d2]))]
		return []string{fmt.Sprintf("set_false_path -from [get_pins %s/CP] -to [get_ports %s]",
			g.BlockLastRegs[d][b], port)}
	case "multicycle":
		d, b := pick(p.D, p.B)
		return []string{fmt.Sprintf("set_multicycle_path %d -setup -from [get_pins %s/CP]",
			2+mod(p.Mult, 3), g.BlockLastRegs[d][b])}
	case "case":
		// Data-input ports only: the generator's built-in modes case the
		// block-enable and test-control ports with mode-specific values,
		// and a second set_case_analysis with the opposite value inside
		// the same mode is a parse error, not a merge bug.
		port, ok := casePort(g, p)
		if !ok {
			return nil
		}
		return []string{fmt.Sprintf("set_case_analysis %d [get_ports %s]",
			mod(p.Val, 2), port)}
	case "disable":
		// The scan mux in front of a block's first register; I1 is the
		// scan-in leg (see gen.Generate's naming contract).
		d, b := pick(p.D, p.B)
		return []string{fmt.Sprintf("set_disable_timing [get_pins %s_smux/I1]",
			g.BlockFirstRegs[d][b])}
	default:
		return nil
	}
}

// casePort resolves a case perturbation's target data-input port.
func casePort(g *gen.Generated, p Perturb) (string, bool) {
	if len(g.DataIn) == 0 {
		return "", false
	}
	d := mod(p.D, len(g.DataIn))
	ports := g.DataIn[d]
	if len(ports) == 0 {
		return "", false
	}
	return ports[mod(p.B, len(ports))], true
}

// cornerPerturbKinds are the Perturb kinds rendered into corner
// overlays. Only the false-path family qualifies: overlay lines apply to
// every mode of the corner, so they must never create clocks (a corner
// invariant core enforces), never collide with per-mode case values
// ("case" could set the opposite constant a mode already cases), and
// only ever relax relations — a corner whose overlay could tighten a
// relation would make the corner-less pessimism and conformity oracles
// wrong references. CornerSet silently skips other kinds.
var cornerPerturbKinds = []string{"false_path", "false_path_from", "false_path_out"}

// CornerSet materializes the spec's corners against a generated design:
// gen.CornerSet's deterministic derate ladder (corner 0 neutral, odd
// corners slow with extra output load, even corners fast with input
// transitions), plus the spec's corner perturbations appended to the
// selected corners' SDC overlays.
func (s *TrialSpec) CornerSet(g *gen.Generated) []library.Corner {
	if s.Corners <= 0 {
		return nil
	}
	fam := s.Family
	fam.Corners = s.Corners
	corners := g.CornerSet(fam)
	for _, p := range s.CornerPerturbs {
		ok := false
		for _, k := range cornerPerturbKinds {
			if p.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			continue
		}
		ci := mod(p.Mode, len(corners))
		for _, line := range renderPerturb(g, p) {
			corners[ci].SDC += line + "\n"
		}
	}
	return corners
}

// PerturbKinds lists the valid Perturb.Kind values. false_path_from and
// false_path_out are the unscoped and output-scoped variants of
// false_path: the first kills every path leaving the selected register,
// the second only its paths into one output port. Together they let two
// modes express the same relaxation at one endpoint through textually
// different exceptions — the regime the refinement prune's merged-side
// fingerprint check exists for (and the one its fault injection breaks).
var PerturbKinds = []string{"false_path", "multicycle", "case", "disable", "false_path_from", "false_path_out"}

func mod(v, n int) int {
	if n <= 0 {
		return 0
	}
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

// ExtraHook builds the gen.ModesWithExtra callback applying the spec's
// perturbations: a perturbation targets the mode whose global index equals
// Perturb.Mode mod the family's total mode count.
func (s *TrialSpec) ExtraHook(g *gen.Generated) func(grp, v int) []string {
	if len(s.Perturbs) == 0 {
		return nil
	}
	total := s.Family.TotalModes()
	return func(grp, v int) []string {
		// Global index of (grp, v) in generation order.
		mi := 0
		for i := 0; i < grp; i++ {
			mi += s.Family.ModesPerGroup[i]
		}
		mi += v
		var out []string
		// Two case perturbations landing on the same port of the same
		// mode with opposite values would make that mode invalid SDC;
		// first one wins.
		caseVals := map[string]int{}
		for _, p := range s.Perturbs {
			if mod(p.Mode, total) != mi {
				continue
			}
			if p.Kind == "case" {
				port, ok := casePort(g, p)
				if !ok {
					continue
				}
				val := mod(p.Val, 2)
				if prev, seen := caseVals[port]; seen && prev != val {
					continue
				}
				caseVals[port] = val
			}
			out = append(out, renderPerturb(g, p)...)
		}
		return out
	}
}
