package difftest

import (
	"context"
	"path/filepath"
	"testing"

	"modemerge/internal/gen"
)

// pruneFaultSpec is a constructed reproducer for the
// prune-skip-differing-endpoints fault. Random sampling essentially never
// hits the required conjunction (0 detections in 200 seeded trials when
// this was built), so the spec is built by hand around the fault's
// mechanism:
//
//   - a functional-only two-mode group, so every mode creates the same
//     clocks and the cross-mode fingerprint prune is viable at all;
//   - both modes relax the single register→output path, but through
//     textually different exceptions (one scoped -to the port, one
//     unscoped -from the register), so the intersection-based exception
//     merge keeps neither and the merged mode still times the endpoint;
//   - the members' relation maps at that endpoint are identical
//     all-singleton false, so the clean prune check sees the merged
//     mismatch and pass 1 emits the corrective false path — while the
//     faulted prune trusts member agreement, skips the merged-side
//     check, and leaves the endpoint timed (a conformity violation).
func pruneFaultSpec() *TrialSpec {
	return &TrialSpec{
		Design: gen.DesignSpec{
			Name: "prune", Seed: 1,
			Domains: 1, BlocksPerDomain: 1, Stages: 1, RegsPerStage: 1,
			CloudDepth: 1, CrossPaths: 0, IOPairs: 1,
		},
		Family: gen.FamilySpec{
			Groups: 1, ModesPerGroup: []int{2}, BasePeriod: 2, FunctionalOnly: true,
		},
		Perturbs: []Perturb{
			{Mode: 0, Kind: "false_path_out", D: 0, B: 0},
			{Mode: 1, Kind: "false_path_from", D: 0, B: 0},
		},
	}
}

// TestPruneFaultCaughtByConformity pins detector power for the
// prune-skip-differing-endpoints fault: the constructed spec must merge
// clean without violations, must trip the conformity oracle under the
// fault, must stay minimal under shrinking, and must round-trip through
// a saved corpus file.
func TestPruneFaultCaughtByConformity(t *testing.T) {
	cx := context.Background()
	fault, err := ParseFault("prune-skip-differing-endpoints")
	if err != nil {
		t.Fatal(err)
	}
	if !fault.Detectable {
		t.Fatal("prune-skip-differing-endpoints must be marked detectable")
	}
	spec := pruneFaultSpec()

	clean := Run(cx, spec, Fault{}.Inject)
	if clean.Err != nil {
		t.Fatalf("clean run: %v", clean.Err)
	}
	if clean.Failed() {
		t.Fatalf("clean run must pass all properties, got %v", clean.Violations)
	}

	res := Run(cx, spec, fault.Inject)
	if res.Err != nil {
		t.Fatalf("faulted run: %v", res.Err)
	}
	sawConformity := false
	for _, v := range res.Violations {
		if v.Property == PropConformity {
			sawConformity = true
		}
	}
	if !sawConformity {
		t.Fatalf("expected a conformity violation from the faulted prune, got %v", res.Violations)
	}

	// The hand-built spec must already be locally minimal: shrinking may
	// not find a smaller failing spec, and no single simplification step
	// keeps the failure.
	shrunk := Shrink(cx, spec, fault.Inject)
	if shrunk.Size() < spec.Size() {
		t.Fatalf("constructed spec is not minimal: shrank %d -> %d to %s",
			spec.Size(), shrunk.Size(), shrunk)
	}
	for _, cand := range candidates(spec) {
		if cand.Size() >= spec.Size() {
			continue
		}
		if r := Run(cx, cand, fault.Inject); r.Err == nil && r.Failed() {
			t.Fatalf("constructed spec is not minimal: %s still fails", cand)
		}
	}

	// Save → load → replay round trip, mirroring the committed corpus
	// entry for this fault.
	dir := t.TempDir()
	repro := &Reproducer{
		Spec:             *spec,
		Fault:            "prune-skip-differing-endpoints",
		ExpectViolations: true,
		Properties:       []string{PropConformity},
		FoundBy:          "TestPruneFaultCaughtByConformity",
	}
	path, err := repro.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := loaded[filepath.Base(path)]
	if !ok {
		t.Fatalf("saved reproducer %s not found on reload", path)
	}
	if err := got.Replay(Run(cx, &got.Spec, fault.Inject)); err != nil {
		t.Fatalf("reloaded reproducer: %v", err)
	}
}
