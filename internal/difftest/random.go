package difftest

import (
	"math/rand"

	"modemerge/internal/gen"
)

// RandomSpec samples one trial spec from the rng. Sizes are kept small:
// the oracle runs full STA relation extraction per mode, and small
// designs both run faster and shrink to more readable reproducers, while
// still covering multiple domains, gated blocks, cross-domain paths and
// multi-group families.
func RandomSpec(rng *rand.Rand) *TrialSpec {
	d := RandomDesign(rng)
	f := RandomFamily(rng)
	s := &TrialSpec{Design: d, Family: f}
	n := rng.Intn(5) // 0..4 perturbations
	for i := 0; i < n; i++ {
		s.Perturbs = append(s.Perturbs, RandomPerturb(rng))
	}
	// Each trial samples a worker count so the determinism oracle keeps
	// cross-checking the parallel engine against the sequential merge at
	// varied shardings (0 = GOMAXPROCS).
	s.Parallelism = []int{0, 1, 2, 3, 4, 8}[rng.Intn(6)]
	// About a third of the trials also exercise the incremental re-merge
	// engine (cache warm-up + one-mode perturbation + warm-vs-cold
	// byte comparison); it roughly triples a trial's merge work, so it is
	// sampled rather than always on.
	s.Incremental = rng.Intn(3) == 0
	// About a quarter of the trials generate the design hierarchically and
	// additionally hold the ETM-driven merge to the flat merge's cliques
	// and relations (the hierarchical oracle).
	s.Hierarchical = rng.Intn(4) == 0
	// About a third of the flat trials merge a 2–3 corner scenario matrix
	// (core rejects corners on hierarchical merges), usually with a couple
	// of corner-local overlay relaxations so the corner-conformity oracle
	// sees corners that genuinely disagree, not just derate ladders.
	if !s.Hierarchical && rng.Intn(3) == 0 {
		s.Corners = 2 + rng.Intn(2)
		for i, n := 0, rng.Intn(3); i < n; i++ {
			p := RandomPerturb(rng)
			p.Kind = cornerPerturbKinds[rng.Intn(len(cornerPerturbKinds))]
			s.CornerPerturbs = append(s.CornerPerturbs, p)
		}
	}
	return s
}

// RandomDesign samples the structural parameters of a synthetic design.
func RandomDesign(rng *rand.Rand) gen.DesignSpec {
	return gen.DesignSpec{
		Name:            "fuzz",
		Seed:            rng.Int63(),
		Domains:         1 + rng.Intn(3),
		BlocksPerDomain: 1 + rng.Intn(2),
		Stages:          1 + rng.Intn(3),
		RegsPerStage:    1 + rng.Intn(3),
		CloudDepth:      1 + rng.Intn(2),
		CrossPaths:      rng.Intn(3),
		IOPairs:         1 + rng.Intn(2),
	}
}

// RandomFamily samples a mode family: 1–3 groups of 1–3 modes each.
func RandomFamily(rng *rand.Rand) gen.FamilySpec {
	groups := 1 + rng.Intn(3)
	f := gen.FamilySpec{Groups: groups, BasePeriod: 1 + rng.Float64()*3}
	// A third of the families are functional-only: every mode of a group
	// shares the same clocks, which is the regime where the refinement
	// engine's cross-mode fingerprint prune is viable — without these the
	// fuzzer would never execute the prune at all.
	f.FunctionalOnly = rng.Intn(3) == 0
	for i := 0; i < groups; i++ {
		f.ModesPerGroup = append(f.ModesPerGroup, 1+rng.Intn(3))
	}
	return f
}

// RandomPerturb samples one constraint perturbation. Kinds are limited to
// constraints whose naive textual union is never *stricter* than the
// graph-based merge: false_path, multicycle, case and disable. max_delay/
// min_delay are deliberately excluded — a subset-only delay bound is kept
// (pessimistically) by the graph-based merge but dropped by the naive
// union, which would trip the pessimism-bound oracle on correct behaviour.
func RandomPerturb(rng *rand.Rand) Perturb {
	return Perturb{
		Mode: rng.Intn(1 << 16),
		Kind: PerturbKinds[rng.Intn(len(PerturbKinds))],
		D:    rng.Intn(1 << 16),
		B:    rng.Intn(1 << 16),
		D2:   rng.Intn(1 << 16),
		B2:   rng.Intn(1 << 16),
		Mult: rng.Intn(3),
		Val:  rng.Intn(2),
	}
}
