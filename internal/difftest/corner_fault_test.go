package difftest

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"modemerge/internal/core"
	"modemerge/internal/gen"
)

// cornerFaultSpec is a constructed reproducer for the
// merge-best-corner-only fault, built by hand around its mechanism:
//
//   - a two-corner scenario matrix — corner c0 neutral, corner c1 a slow
//     derate ladder — with one corner perturbation attaching an unscoped
//     false path (every path leaving the block's only register) to c0's
//     overlay;
//   - in corner c0 every mode therefore excludes the register's
//     endpoints, while in corner c1 every mode times them, so the
//     across-corner worst case keeps them timed and the clean merged
//     mode is byte-compatible with the corner-less merge;
//   - the fault truncates refinement to c0 alone, where the unanimous
//     exclusion looks global: the corrective false path gets baked into
//     the merged base text, and deployed in c1 — where no overlay
//     supplies the relaxation — the merged mode excludes paths every
//     member times: optimism the corner-conformity oracle rejects
//     (and the corner-less oracles cannot even see).
func cornerFaultSpec() *TrialSpec {
	return &TrialSpec{
		Design: gen.DesignSpec{
			Name: "corner", Seed: 1,
			Domains: 1, BlocksPerDomain: 1, Stages: 1, RegsPerStage: 1,
			CloudDepth: 1, CrossPaths: 0, IOPairs: 1,
		},
		Family: gen.FamilySpec{
			Groups: 1, ModesPerGroup: []int{2}, BasePeriod: 2, FunctionalOnly: true,
		},
		Corners:        2,
		CornerPerturbs: []Perturb{{Mode: 0, Kind: "false_path_from", D: 0, B: 0}},
	}
}

// TestCornerFaultCaughtByCornerConformity pins detector power for the
// merge-best-corner-only fault: the constructed spec must merge clean
// without violations, must trip the corner-conformity oracle under the
// fault, must stay minimal under shrinking, and must round-trip through
// a saved corpus file.
func TestCornerFaultCaughtByCornerConformity(t *testing.T) {
	cx := context.Background()
	fault, err := ParseFault("merge-best-corner-only")
	if err != nil {
		t.Fatal(err)
	}
	if !fault.Detectable {
		t.Fatal("merge-best-corner-only must be marked detectable")
	}
	spec := cornerFaultSpec()

	clean := Run(cx, spec, Fault{}.Inject)
	if clean.Err != nil {
		t.Fatalf("clean run: %v", clean.Err)
	}
	if clean.Failed() {
		t.Fatalf("clean run must pass all properties, got %v", clean.Violations)
	}

	res := Run(cx, spec, fault.Inject)
	if res.Err != nil {
		t.Fatalf("faulted run: %v", res.Err)
	}
	sawCorner := false
	for _, v := range res.Violations {
		if v.Property == PropCornerConformity {
			sawCorner = true
		}
	}
	if !sawCorner {
		t.Fatalf("expected a corner-conformity violation from the faulted matrix refinement, got %v", res.Violations)
	}

	// The hand-built spec must already be locally minimal: shrinking may
	// not find a smaller failing spec, and no single simplification step
	// keeps the failure.
	shrunk := Shrink(cx, spec, fault.Inject)
	if shrunk.Size() < spec.Size() {
		t.Fatalf("constructed spec is not minimal: shrank %d -> %d to %s",
			spec.Size(), shrunk.Size(), shrunk)
	}
	for _, cand := range candidates(spec) {
		if cand.Size() >= spec.Size() {
			continue
		}
		if r := Run(cx, cand, fault.Inject); r.Err == nil && r.Failed() {
			t.Fatalf("constructed spec is not minimal: %s still fails", cand)
		}
	}

	// Save → load → replay round trip, mirroring the committed corpus
	// entry for this fault.
	dir := t.TempDir()
	repro := &Reproducer{
		Spec:             *spec,
		Fault:            "merge-best-corner-only",
		ExpectViolations: true,
		Properties:       []string{PropCornerConformity},
		FoundBy:          "TestCornerFaultCaughtByCornerConformity",
	}
	path, err := repro.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := loaded[filepath.Base(path)]
	if !ok {
		t.Fatalf("saved reproducer %s not found on reload", path)
	}
	if err := got.Replay(Run(cx, &got.Spec, fault.Inject)); err != nil {
		t.Fatalf("reloaded reproducer: %v", err)
	}
}

// TestCornerCleanSeedSweep is the false-alarm sweep for the corner
// dimension: a fixed band of seeds, every trial forced onto a 2–3 corner
// scenario matrix with random corner-local relaxations, must produce
// zero violations and zero infrastructure errors on the unmodified merge
// flow. The sweep is what licenses running the corner-conformity oracle
// in fuzz gating — a detector that cries wolf gates nothing.
func TestCornerCleanSeedSweep(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	for i := 0; i < seeds; i++ {
		i := i
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(31000 + int64(i)))
			spec := RandomSpec(rng)
			spec.Hierarchical = false
			if spec.Corners == 0 {
				spec.Corners = 2 + rng.Intn(2)
				for j, n := 0, rng.Intn(3); j < n; j++ {
					p := RandomPerturb(rng)
					p.Kind = cornerPerturbKinds[rng.Intn(len(cornerPerturbKinds))]
					spec.CornerPerturbs = append(spec.CornerPerturbs, p)
				}
			}
			res := Run(context.Background(), spec, core.FaultInjection{})
			if res.Err != nil {
				t.Fatalf("seed %d: %v\n  spec: %s", i, res.Err, spec)
			}
			for _, v := range res.Violations {
				t.Errorf("seed %d: %s\n  spec: %s", i, v, spec)
			}
		})
	}
}
