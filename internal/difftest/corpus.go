package difftest

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"modemerge/internal/core"
)

// Reproducer is one corpus entry: a (usually shrunk) trial spec plus the
// expectation it must keep satisfying when replayed. Clean entries pin
// past false alarms — specs that once tripped an oracle incorrectly and
// must now pass. Fault entries pin detector power — specs where an
// injected merge bug must still be caught.
type Reproducer struct {
	// Spec regenerates the design, family and perturbations.
	Spec TrialSpec `json:"spec"`
	// Fault names the injected merge bug, "" for a clean merge. See
	// ParseFault for the accepted names.
	Fault string `json:"fault,omitempty"`
	// ExpectViolations: replay must find at least one violation (fault
	// entries) or none at all (clean entries).
	ExpectViolations bool `json:"expect_violations"`
	// Properties lists which oracles must fire when ExpectViolations.
	// Detail strings are NOT pinned — CheckEquivalence's mismatch listing
	// order is not deterministic, only its contents are.
	Properties []string `json:"properties,omitempty"`
	// FoundBy records provenance (e.g. "modefuzz -seed 7 -trials 100").
	FoundBy string `json:"found_by,omitempty"`
}

// Fault describes one injectable merge bug.
type Fault struct {
	Inject core.FaultInjection
	// Detectable: the oracles can catch this fault, so a fuzz run that
	// injects it must produce failures. The oracles reject optimism
	// (sign-off unsafe merges), baseline regressions, and — via the
	// conformity oracle — merged modes that keep timing endpoints every
	// member excludes; pessimism beyond those bounds is sign-off safe and
	// deliberately invisible.
	Detectable bool
	Note       string
	// Shape, when non-nil, biases a random spec toward trials that can
	// exercise the fault at all — e.g. a corner fault is invisible on
	// corner-less trials, so its power check would otherwise hinge on
	// the sampler happening to roll the right spec features. Shaping
	// changes which trials run, never what any trial asserts.
	Shape func(*TrialSpec, *rand.Rand)
}

// FaultNames maps the CLI/corpus fault names to injections.
var FaultNames = map[string]Fault{
	"keep-subset-exceptions": {
		Inject:     core.FaultInjection{KeepSubsetExceptions: true},
		Detectable: true,
		Note:       "subset exceptions join unconditionally: optimism, caught by the equivalence oracle",
	},
	"etm-keep-subset-exceptions": {
		Inject:     core.FaultInjection{ETMKeepSubsetExceptions: true},
		Detectable: true,
		Note: "hierarchical harvest keeps subset-only member exceptions: optimism on hierarchical trials, " +
			"caught by the hierarchical oracle (no effect on flat trials)",
	},
	"prune-skip-differing-endpoints": {
		Inject:     core.FaultInjection{PruneSkipDifferingEndpoints: true},
		Detectable: true,
		Note: "fingerprint prune trusts member agreement without checking the merged mode: " +
			"the pass-1 accuracy fix is skipped where the merged context still times paths every member " +
			"excludes, caught by the conformity oracle",
	},
	"merge-best-corner-only": {
		Inject:     core.FaultInjection{MergeBestCornerOnly: true},
		Detectable: true,
		Note: "scenario-matrix refinement collapses to the first corner: relaxations private to that corner " +
			"leak into the merged base text and become optimism in every corner lacking them, caught by the " +
			"corner-conformity oracle (no effect on corner-less trials)",
		// The fault only fires on corner trials whose first corner's
		// overlay relaxes something: force a corner axis and pin one
		// relaxation onto corner 0 (the corner the fault collapses to).
		// Detection stays probabilistic per trial (~3/4), just no longer
		// contingent on sampling a corner trial in the first place.
		Shape: func(s *TrialSpec, rng *rand.Rand) {
			s.Hierarchical = false
			if s.Corners == 0 {
				s.Corners = 2 + rng.Intn(2)
			}
			p := RandomPerturb(rng)
			p.Kind = "false_path_from"
			p.Mode = 0
			s.CornerPerturbs = append(s.CornerPerturbs, p)
		},
	},
	"skip-clock-refine": {
		Inject: core.FaultInjection{SkipClockRefinement: true},
		Note:   "missing clock stops over-time paths: pessimism only, sign-off safe",
	},
	"skip-data-refine": {
		Inject: core.FaultInjection{SkipDataRefinement: true},
		Note: "missing corrective false paths: pessimism, sign-off safe; the conformity oracle can catch " +
			"the subset with unanimously excluded endpoints, but random trials hit that rarely",
	},
}

// ParseFault resolves a fault name ("" means no injection).
func ParseFault(name string) (Fault, error) {
	if name == "" {
		return Fault{}, nil
	}
	if f, ok := FaultNames[name]; ok {
		return f, nil
	}
	var known []string
	for k := range FaultNames {
		known = append(known, k)
	}
	sort.Strings(known)
	return Fault{}, fmt.Errorf("unknown fault %q (known: %s)", name, strings.Join(known, ", "))
}

// Name is the content-addressed corpus file name of the reproducer.
func (r *Reproducer) Name() string {
	data, _ := json.Marshal(r.Spec)
	sum := sha256.Sum256(append(data, []byte(r.Fault)...))
	return fmt.Sprintf("%x.json", sum[:8])
}

// Save writes the reproducer under dir with its content-addressed name
// and returns the path.
func (r *Reproducer) Save(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Name())
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadDir reads every *.json reproducer under dir, sorted by file name.
// A missing directory is an empty corpus, not an error.
func LoadDir(dir string) (map[string]*Reproducer, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := map[string]*Reproducer{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var r Reproducer
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		out[e.Name()] = &r
	}
	return out, nil
}

// Replay runs the reproducer's spec with its fault and checks the pinned
// expectation. It returns the trial result plus a verdict error when the
// expectation no longer holds (nil error means the corpus entry still
// reproduces).
func (r *Reproducer) Replay(res *TrialResult) error {
	if res.Err != nil {
		return fmt.Errorf("infrastructure error: %w", res.Err)
	}
	if !r.ExpectViolations {
		if res.Failed() {
			return fmt.Errorf("expected clean run, got %d violations: %v", len(res.Violations), res.Violations)
		}
		return nil
	}
	if !res.Failed() {
		return fmt.Errorf("expected violations, merge passed all properties")
	}
	seen := map[string]bool{}
	for _, v := range res.Violations {
		seen[v.Property] = true
	}
	for _, want := range r.Properties {
		if !seen[want] {
			return fmt.Errorf("expected a %s violation, got %v", want, res.Violations)
		}
	}
	return nil
}
