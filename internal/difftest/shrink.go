package difftest

import (
	"context"

	"modemerge/internal/core"
)

// maxShrinkRuns bounds the total oracle invocations one Shrink may spend;
// each run is a full generate→merge→check cycle.
const maxShrinkRuns = 200

// Shrink reduces a failing spec to a locally minimal reproducer: no
// single simplification step keeps the failure. Greedy first-improvement
// search — each accepted candidate restarts the scan — with the oracle
// re-run (same fault injection) as the acceptance test. The returned spec
// always still fails; if the input does not fail, it is returned as is.
func Shrink(cx context.Context, spec *TrialSpec, fault core.FaultInjection) *TrialSpec {
	runs := 0
	fails := func(s *TrialSpec) bool {
		if runs >= maxShrinkRuns || cx.Err() != nil {
			return false
		}
		runs++
		r := Run(cx, s, fault)
		return r.Err == nil && r.Failed()
	}
	if !fails(spec) {
		return spec
	}
	cur := spec.Clone()
	for {
		improved := false
		for _, cand := range candidates(cur) {
			if cand.Size() >= cur.Size() {
				continue
			}
			if fails(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			return cur
		}
	}
}

// candidates enumerates one-step simplifications of the spec, most
// aggressive first (dropping whole perturbations and groups shrinks the
// search space fastest).
func candidates(s *TrialSpec) []*TrialSpec {
	var out []*TrialSpec
	add := func(f func(c *TrialSpec)) {
		c := s.Clone()
		f(c)
		out = append(out, c)
	}

	// Drop one perturbation at a time.
	for i := range s.Perturbs {
		i := i
		add(func(c *TrialSpec) {
			c.Perturbs = append(c.Perturbs[:i], c.Perturbs[i+1:]...)
		})
	}
	// Drop one corner perturbation at a time, and shed corners from the
	// scenario matrix (0 falls all the way back to corner-less merging).
	for i := range s.CornerPerturbs {
		i := i
		add(func(c *TrialSpec) {
			c.CornerPerturbs = append(c.CornerPerturbs[:i], c.CornerPerturbs[i+1:]...)
		})
	}
	if s.Corners > 0 {
		add(func(c *TrialSpec) { c.Corners-- })
	}
	// Drop one whole mode group.
	if len(s.Family.ModesPerGroup) > 1 {
		for i := range s.Family.ModesPerGroup {
			i := i
			add(func(c *TrialSpec) {
				c.Family.ModesPerGroup = append(c.Family.ModesPerGroup[:i], c.Family.ModesPerGroup[i+1:]...)
				c.Family.Groups = len(c.Family.ModesPerGroup)
			})
		}
	}
	// Remove one mode from a group.
	for i, n := range s.Family.ModesPerGroup {
		if n > 1 {
			i := i
			add(func(c *TrialSpec) { c.Family.ModesPerGroup[i]-- })
		}
	}
	// Decrement each design dimension toward its floor. Floors stay at 1
	// (0 for CrossPaths): gen.DesignSpec.Validate refills zero values with
	// larger defaults, which would grow the spec instead of shrinking it.
	dims := []struct {
		get func(c *TrialSpec) *int
		min int
	}{
		{func(c *TrialSpec) *int { return &c.Design.Domains }, 1},
		{func(c *TrialSpec) *int { return &c.Design.BlocksPerDomain }, 1},
		{func(c *TrialSpec) *int { return &c.Design.Stages }, 1},
		{func(c *TrialSpec) *int { return &c.Design.RegsPerStage }, 1},
		{func(c *TrialSpec) *int { return &c.Design.CloudDepth }, 1},
		{func(c *TrialSpec) *int { return &c.Design.CrossPaths }, 0},
		{func(c *TrialSpec) *int { return &c.Design.IOPairs }, 1},
	}
	for _, d := range dims {
		d := d
		if *d.get(s) > d.min {
			add(func(c *TrialSpec) { *d.get(c)-- })
		}
	}
	return out
}
