package graph

import (
	"testing"

	"modemerge/internal/gen"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
)

// The fingerprint is the design half of every incremental sub-merge
// cache key, including the disk-persisted clique artifacts — so it must
// be identical across independent builds of the same inputs (separate
// processes especially). Go randomizes map iteration per range loop, so
// rebuilding in-process a few times exercises the same hazard: any
// map-order dependence in parse → elaborate → Builder → Build shows up
// as a flapping digest.
func TestFingerprintStableAcrossBuilds(t *testing.T) {
	verilog := `module quick (clk, tclk, tmode, din, dout);
  input clk, tclk, tmode, din;
  output dout;
  wire gck, q1, n1;
  MUX2 ckmux (.I0(clk), .I1(tclk), .S(tmode), .Z(gck));
  DFF r1 (.CP(gck), .D(din), .Q(q1));
  INV u1 (.A(q1), .Z(n1));
  DFF r2 (.CP(gck), .D(n1), .Q(dout));
endmodule
`
	build := func() *Graph {
		d, err := netlist.ParseVerilog(verilog, library.Default(), "")
		if err != nil {
			t.Fatal(err)
		}
		g, err := Build(d)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	want := build().Fingerprint()
	for i := 0; i < 5; i++ {
		if got := build().Fingerprint(); got != want {
			t.Fatalf("parse+build %d: fingerprint %s != %s — graph construction is order-dependent", i, got, want)
		}
	}

	// Same property over the synthetic generator (Builder-driven rather
	// than parser-driven construction).
	genBuild := func() *Graph {
		g, err := Build(gen.PaperCircuit())
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	want = genBuild().Fingerprint()
	for i := 0; i < 5; i++ {
		if got := genBuild().Fingerprint(); got != want {
			t.Fatalf("gen build %d: fingerprint %s != %s — graph construction is order-dependent", i, got, want)
		}
	}
}
