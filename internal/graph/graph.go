// Package graph builds the timing graph of a flat netlist: one node per
// instance pin or top-level port, delay arcs for cell timing arcs and net
// connections, and constraint (setup/hold) arcs kept out of the
// propagation topology.
//
// The timing graph is the shared substrate for case-analysis constant
// propagation, clock propagation, timing-relationship propagation and the
// STA engine.
package graph

import (
	"fmt"
	"sync"

	"modemerge/internal/library"
	"modemerge/internal/netlist"
)

// NodeID identifies a timing graph node.
type NodeID int32

// Node is one pin of the design: an instance pin or a top-level port.
type Node struct {
	// Inst/Pin identify an instance pin; Inst is nil for port nodes.
	Inst *netlist.Instance
	Pin  int
	// Port is non-nil for top-level port nodes.
	Port *netlist.Port
	// Name is "inst/PIN" for instance pins, the port name for ports.
	Name string
	// IsRegClock marks the clock pin of a sequential cell.
	IsRegClock bool
	// IsRegData marks a data pin of a sequential cell (has a setup arc).
	IsRegData bool
	// Level is the node's depth in the propagation topology.
	Level int32
}

// IsInput reports whether the node receives a signal (instance input pin
// or design input port are signal sources; this reports sink-ness for
// instance pins and output ports).
func (n *Node) IsInput() bool {
	if n.Inst != nil {
		return n.Inst.Cell.Pins[n.Pin].Dir == library.Input
	}
	return n.Port.Dir == netlist.Out
}

// ArcKind classifies a timing graph arc.
type ArcKind int8

// Arc kinds.
const (
	// NetArc connects a driver pin to a sink pin on the same net.
	NetArc ArcKind = iota
	// CellArc is a combinational delay arc through a cell.
	CellArc
	// LaunchArc is the clock→output arc of a sequential cell.
	LaunchArc
	// SetupArc and HoldArc are constraint arcs (data pin → clock pin) and
	// are not part of the propagation topology.
	SetupArc
	HoldArc
)

func (k ArcKind) String() string {
	switch k {
	case NetArc:
		return "net"
	case CellArc:
		return "cell"
	case LaunchArc:
		return "launch"
	case SetupArc:
		return "setup"
	case HoldArc:
		return "hold"
	default:
		return fmt.Sprintf("ArcKind(%d)", int(k))
	}
}

// Arc is a timing graph arc.
type Arc struct {
	From, To NodeID
	Kind     ArcKind
	// Lib is the library arc behind a cell/launch/setup/hold arc; nil for
	// net arcs.
	Lib *library.Arc
	// Delay is the precomputed wire-load-model delay of a delay arc.
	Delay float64
}

// Unate returns the arc's unateness (net arcs are positive-unate).
func (a *Arc) Unate() library.Unateness {
	if a.Lib == nil {
		return library.PositiveUnate
	}
	return a.Lib.Unate
}

// Graph is the timing graph of one design.
type Graph struct {
	Design *netlist.Design

	nodes []Node
	arcs  []Arc
	// out/in hold indices into arcs, only for propagation arcs
	// (net/cell/launch). Constraint arcs live in checks.
	out    [][]int32
	in     [][]int32
	checks [][]int32 // per data-pin node: setup/hold arc indices

	byName map[string]NodeID
	topo   []NodeID

	starts []NodeID // register clock pins + input ports
	ends   []NodeID // register data pins + output ports

	// fp is the lazily computed content digest (see Fingerprint).
	fpOnce sync.Once
	fp     string
}

// Build constructs the timing graph for a design, precomputing wire-load
// delays. It fails on combinational loops.
func Build(d *netlist.Design) (*Graph, error) {
	g := &Graph{Design: d, byName: make(map[string]NodeID)}

	addNode := func(n Node) NodeID {
		id := NodeID(len(g.nodes))
		g.nodes = append(g.nodes, n)
		g.byName[n.Name] = id
		return id
	}

	// Instance pin nodes, then port nodes.
	pinID := make(map[*netlist.Instance][]NodeID, len(d.Insts))
	for _, inst := range d.Insts {
		ids := make([]NodeID, len(inst.Cell.Pins))
		clockPin := inst.Cell.ClockPin()
		dataPins := map[string]bool{}
		for _, dp := range inst.Cell.DataPins() {
			dataPins[dp] = true
		}
		for i, p := range inst.Cell.Pins {
			ids[i] = addNode(Node{
				Inst:       inst,
				Pin:        i,
				Name:       inst.Name + "/" + p.Name,
				IsRegClock: inst.Cell.Sequential && p.Name == clockPin,
				IsRegData:  dataPins[p.Name],
			})
		}
		pinID[inst] = ids
	}
	portID := make([]NodeID, len(d.Ports))
	for i, p := range d.Ports {
		portID[i] = addNode(Node{Port: p, Pin: -1, Name: p.Name})
	}

	g.out = make([][]int32, len(g.nodes))
	g.in = make([][]int32, len(g.nodes))
	g.checks = make([][]int32, len(g.nodes))

	addArc := func(a Arc) {
		idx := int32(len(g.arcs))
		g.arcs = append(g.arcs, a)
		switch a.Kind {
		case SetupArc, HoldArc:
			g.checks[a.From] = append(g.checks[a.From], idx)
		default:
			g.out[a.From] = append(g.out[a.From], idx)
			g.in[a.To] = append(g.in[a.To], idx)
		}
	}

	// Net load capacitance per net for the wire-load model.
	netLoad := make([]float64, len(d.Nets))
	for _, n := range d.Nets {
		netLoad[n.Index] = n.LoadCap() + d.Lib.WireLoad.Cap(n.Fanout())
	}

	// Cell arcs.
	for _, inst := range d.Insts {
		ids := pinID[inst]
		for ai := range inst.Cell.Arcs {
			la := &inst.Cell.Arcs[ai]
			var from, to NodeID = -1, -1
			for i, p := range inst.Cell.Pins {
				if p.Name == la.From {
					from = ids[i]
				}
				if p.Name == la.To {
					to = ids[i]
				}
			}
			switch la.Kind {
			case library.CombArc, library.LaunchArc:
				kind := CellArc
				if la.Kind == library.LaunchArc {
					kind = LaunchArc
				}
				delay := 0.0
				toNode := &g.nodes[to]
				if net := inst.Conns[toNode.Pin]; net != nil {
					delay = library.ArcDelay(la, netLoad[net.Index])
				} else {
					delay = la.Intrinsic
				}
				addArc(Arc{From: from, To: to, Kind: kind, Lib: la, Delay: delay})
			case library.SetupArc:
				addArc(Arc{From: from, To: to, Kind: SetupArc, Lib: la})
			case library.HoldArc:
				addArc(Arc{From: from, To: to, Kind: HoldArc, Lib: la})
			}
		}
	}

	// Net arcs: driver pin (or input port) → sink pins (and output ports).
	for _, net := range d.Nets {
		var drivers []NodeID
		var sinks []NodeID
		for _, c := range net.Conns {
			id := pinID[c.Inst][c.Pin]
			if c.Inst.Cell.Pins[c.Pin].Dir == library.Output {
				drivers = append(drivers, id)
			} else {
				sinks = append(sinks, id)
			}
		}
		for _, p := range net.Ports {
			id := portID[p.Index]
			if p.Dir == netlist.In {
				drivers = append(drivers, id)
			} else {
				sinks = append(sinks, id)
			}
		}
		for _, dr := range drivers {
			for _, s := range sinks {
				addArc(Arc{From: dr, To: s, Kind: NetArc})
			}
		}
	}

	if err := g.levelize(); err != nil {
		return nil, err
	}

	// Start/end points.
	for id := range g.nodes {
		n := &g.nodes[id]
		switch {
		case n.IsRegClock:
			g.starts = append(g.starts, NodeID(id))
		case n.Port != nil && n.Port.Dir == netlist.In:
			g.starts = append(g.starts, NodeID(id))
		}
		switch {
		case n.IsRegData:
			g.ends = append(g.ends, NodeID(id))
		case n.Port != nil && n.Port.Dir == netlist.Out:
			g.ends = append(g.ends, NodeID(id))
		}
	}
	return g, nil
}

// levelize computes a topological order over propagation arcs (Kahn) and
// node levels; it reports combinational loops.
func (g *Graph) levelize() error {
	indeg := make([]int32, len(g.nodes))
	for i := range g.nodes {
		indeg[i] = int32(len(g.in[i]))
	}
	queue := make([]NodeID, 0, len(g.nodes))
	for i := range g.nodes {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	g.topo = g.topo[:0]
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		g.topo = append(g.topo, id)
		for _, ai := range g.out[id] {
			a := &g.arcs[ai]
			if lvl := g.nodes[id].Level + 1; lvl > g.nodes[a.To].Level {
				g.nodes[a.To].Level = lvl
			}
			indeg[a.To]--
			if indeg[a.To] == 0 {
				queue = append(queue, a.To)
			}
		}
	}
	if len(g.topo) != len(g.nodes) {
		for i := range g.nodes {
			if indeg[i] > 0 {
				return fmt.Errorf("combinational loop through %s", g.nodes[i].Name)
			}
		}
	}
	return nil
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumArcs returns the arc count (including constraint arcs).
func (g *Graph) NumArcs() int { return len(g.arcs) }

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id] }

// Arc returns the arc at index i.
func (g *Graph) Arc(i int32) *Arc { return &g.arcs[i] }

// NodeByName resolves "inst/PIN" or a port name to a node.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// OutArcs returns indices of propagation arcs leaving the node.
func (g *Graph) OutArcs(id NodeID) []int32 { return g.out[id] }

// InArcs returns indices of propagation arcs entering the node.
func (g *Graph) InArcs(id NodeID) []int32 { return g.in[id] }

// CheckArcs returns the setup/hold constraint arcs whose data side is the
// given node.
func (g *Graph) CheckArcs(id NodeID) []int32 { return g.checks[id] }

// Topo returns nodes in topological order of the propagation arcs.
func (g *Graph) Topo() []NodeID { return g.topo }

// Startpoints returns register clock pins and input ports.
func (g *Graph) Startpoints() []NodeID { return g.starts }

// Endpoints returns register data pins and output ports.
func (g *Graph) Endpoints() []NodeID { return g.ends }

// ForwardReach marks all nodes reachable from the seeds over propagation
// arcs (seeds included).
func (g *Graph) ForwardReach(seeds []NodeID) []bool {
	mark := make([]bool, len(g.nodes))
	stack := append([]NodeID(nil), seeds...)
	for _, s := range seeds {
		mark[s] = true
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ai := range g.out[id] {
			to := g.arcs[ai].To
			if !mark[to] {
				mark[to] = true
				stack = append(stack, to)
			}
		}
	}
	return mark
}

// BackwardReach marks all nodes that reach the seeds over propagation arcs
// (seeds included).
func (g *Graph) BackwardReach(seeds []NodeID) []bool {
	mark := make([]bool, len(g.nodes))
	stack := append([]NodeID(nil), seeds...)
	for _, s := range seeds {
		mark[s] = true
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ai := range g.in[id] {
			from := g.arcs[ai].From
			if !mark[from] {
				mark[from] = true
				stack = append(stack, from)
			}
		}
	}
	return mark
}

// ConeBetween returns the nodes lying on some propagation path from start
// to end (inclusive), in topological order.
func (g *Graph) ConeBetween(start, end NodeID) []NodeID {
	fwd := g.ForwardReach([]NodeID{start})
	bwd := g.BackwardReach([]NodeID{end})
	var cone []NodeID
	for _, id := range g.topo {
		if fwd[id] && bwd[id] {
			cone = append(cone, id)
		}
	}
	return cone
}

// ReconvergencePoints returns the cone nodes between start and end that
// have two or more in-cone fanins — the candidate "through" points pass 3
// of the refinement algorithm inspects.
func (g *Graph) ReconvergencePoints(start, end NodeID) []NodeID {
	fwd := g.ForwardReach([]NodeID{start})
	bwd := g.BackwardReach([]NodeID{end})
	var out []NodeID
	for _, id := range g.topo {
		if !fwd[id] || !bwd[id] {
			continue
		}
		inCone := 0
		for _, ai := range g.in[id] {
			from := g.arcs[ai].From
			if fwd[from] && bwd[from] {
				inCone++
			}
		}
		if inCone >= 2 {
			out = append(out, id)
		}
	}
	return out
}
