package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"strconv"
)

// Fingerprint returns a stable content digest of the timing graph: the
// design name plus every node (name, flags) and every arc (endpoints,
// kind, precomputed delay) in construction order. Build is deterministic
// over a design, so two graphs built from byte-identical netlist +
// library inputs share one fingerprint. The digest is the design half of
// every incremental sub-merge cache key (see internal/incr); it is
// computed once, lazily, and cached on the graph.
func (g *Graph) Fingerprint() string {
	g.fpOnce.Do(func() {
		h := sha256.New()
		var buf [8]byte
		writeStr := func(s string) {
			binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
			h.Write(buf[:])
			h.Write([]byte(s))
		}
		writeInt := func(v int64) {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
		writeStr(g.Design.Name)
		writeInt(int64(len(g.nodes)))
		for i := range g.nodes {
			n := &g.nodes[i]
			writeStr(n.Name)
			flags := int64(0)
			if n.IsRegClock {
				flags |= 1
			}
			if n.IsRegData {
				flags |= 2
			}
			writeInt(flags)
		}
		writeInt(int64(len(g.arcs)))
		for i := range g.arcs {
			a := &g.arcs[i]
			writeInt(int64(a.From))
			writeInt(int64(a.To))
			writeInt(int64(a.Kind))
			writeInt(int64(math.Float64bits(a.Delay)))
			if a.Lib != nil {
				// Library arc identity: the timing numbers that feed delay
				// calculation, so a library edit changes the fingerprint
				// even when the topology is unchanged.
				writeStr(a.Lib.From + ">" + a.Lib.To + ":" + strconv.Itoa(int(a.Lib.Kind)))
				writeInt(int64(math.Float64bits(a.Lib.Intrinsic)))
				writeInt(int64(math.Float64bits(a.Lib.Slope)))
				writeInt(int64(math.Float64bits(a.Lib.Margin)))
			}
		}
		g.fp = hex.EncodeToString(h.Sum(nil))
	})
	return g.fp
}
