package graph

import (
	"testing"

	"modemerge/internal/gen"
	"modemerge/internal/library"
	"modemerge/internal/netlist"
)

func paperGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Build(gen.PaperCircuit())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildPaperCircuit(t *testing.T) {
	g := paperGraph(t)
	if g.NumNodes() == 0 || g.NumArcs() == 0 {
		t.Fatal("empty graph")
	}
	// Startpoints: 6 register CPs + 5 input ports.
	if got := len(g.Startpoints()); got != 11 {
		t.Errorf("startpoints = %d, want 11", got)
	}
	// Endpoints: 6 register D pins + 1 output port.
	if got := len(g.Endpoints()); got != 7 {
		t.Errorf("endpoints = %d, want 7", got)
	}
}

func TestNodeLookupAndKinds(t *testing.T) {
	g := paperGraph(t)
	id, ok := g.NodeByName("rA/CP")
	if !ok {
		t.Fatal("rA/CP missing")
	}
	if !g.Node(id).IsRegClock {
		t.Error("rA/CP not marked register clock")
	}
	id, ok = g.NodeByName("rX/D")
	if !ok || !g.Node(id).IsRegData {
		t.Error("rX/D not marked register data")
	}
	if _, ok := g.NodeByName("clk1"); !ok {
		t.Error("port node clk1 missing")
	}
	if _, ok := g.NodeByName("nope/X"); ok {
		t.Error("bogus lookup succeeded")
	}
}

func TestTopoOrder(t *testing.T) {
	g := paperGraph(t)
	pos := make(map[NodeID]int)
	for i, id := range g.Topo() {
		pos[id] = i
	}
	if len(pos) != g.NumNodes() {
		t.Fatalf("topo covers %d of %d nodes", len(pos), g.NumNodes())
	}
	for i := int32(0); i < int32(g.NumArcs()); i++ {
		a := g.Arc(i)
		if a.Kind == SetupArc || a.Kind == HoldArc {
			continue
		}
		if pos[a.From] >= pos[a.To] {
			t.Errorf("arc %s->%s violates topo order",
				g.Node(a.From).Name, g.Node(a.To).Name)
		}
	}
}

func TestLevels(t *testing.T) {
	g := paperGraph(t)
	for i := int32(0); i < int32(g.NumArcs()); i++ {
		a := g.Arc(i)
		if a.Kind == SetupArc || a.Kind == HoldArc {
			continue
		}
		if g.Node(a.From).Level >= g.Node(a.To).Level {
			t.Errorf("levels not increasing along %s->%s",
				g.Node(a.From).Name, g.Node(a.To).Name)
		}
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	b := netlist.NewBuilder("loop", library.Default())
	b.Inst("INV", "i1", map[string]string{"A": "n2", "Z": "n1"})
	b.Inst("INV", "i2", map[string]string{"A": "n1", "Z": "n2"})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(d); err == nil {
		t.Fatal("combinational loop not detected")
	}
}

func TestSequentialLoopOK(t *testing.T) {
	// A register in the loop breaks the combinational cycle.
	b := netlist.NewBuilder("seqloop", library.Default())
	b.Port("clk", netlist.In)
	b.Inst("DFF", "r", map[string]string{"CP": "clk", "D": "n2", "Q": "n1"})
	b.Inst("INV", "i", map[string]string{"A": "n1", "Z": "n2"})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(d); err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
}

func TestReachability(t *testing.T) {
	g := paperGraph(t)
	rACP, _ := g.NodeByName("rA/CP")
	rXD, _ := g.NodeByName("rX/D")
	rZD, _ := g.NodeByName("rZ/D")
	fwd := g.ForwardReach([]NodeID{rACP})
	if !fwd[rXD] {
		t.Error("rX/D must be reachable from rA/CP")
	}
	if fwd[rZD] {
		t.Error("rZ/D must not be reachable from rA/CP")
	}
	bwd := g.BackwardReach([]NodeID{rXD})
	if !bwd[rACP] {
		t.Error("rA/CP must reach rX/D backward")
	}
}

func TestConeBetween(t *testing.T) {
	g := paperGraph(t)
	rCCP, _ := g.NodeByName("rC/CP")
	rZD, _ := g.NodeByName("rZ/D")
	cone := g.ConeBetween(rCCP, rZD)
	names := map[string]bool{}
	for _, id := range cone {
		names[g.Node(id).Name] = true
	}
	for _, want := range []string{"rC/CP", "rC/Q", "inv3/A", "inv3/Z", "and2/A", "and2/B", "and2/Z", "rZ/D"} {
		if !names[want] {
			t.Errorf("cone missing %s (have %v)", want, names)
		}
	}
	if names["rA/Q"] || names["inv1/Z"] {
		t.Error("cone contains unrelated nodes")
	}
}

func TestReconvergencePoints(t *testing.T) {
	g := paperGraph(t)
	rCCP, _ := g.NodeByName("rC/CP")
	rZD, _ := g.NodeByName("rZ/D")
	rec := g.ReconvergencePoints(rCCP, rZD)
	found := false
	for _, id := range rec {
		if g.Node(id).Name == "and2/Z" {
			found = true
		}
	}
	if !found {
		t.Errorf("and2/Z must be a reconvergence point between rC/CP and rZ/D")
	}
}

func TestCheckArcs(t *testing.T) {
	g := paperGraph(t)
	rXD, _ := g.NodeByName("rX/D")
	checks := g.CheckArcs(rXD)
	var kinds []ArcKind
	for _, ai := range checks {
		kinds = append(kinds, g.Arc(ai).Kind)
	}
	hasSetup, hasHold := false, false
	for _, k := range kinds {
		if k == SetupArc {
			hasSetup = true
		}
		if k == HoldArc {
			hasHold = true
		}
	}
	if !hasSetup || !hasHold {
		t.Errorf("rX/D check arcs = %v", kinds)
	}
}

func TestArcDelaysPositive(t *testing.T) {
	g := paperGraph(t)
	for i := int32(0); i < int32(g.NumArcs()); i++ {
		a := g.Arc(i)
		switch a.Kind {
		case CellArc, LaunchArc:
			if a.Delay <= 0 {
				t.Errorf("delay arc %s->%s has delay %g",
					g.Node(a.From).Name, g.Node(a.To).Name, a.Delay)
			}
		case NetArc:
			if a.Delay != 0 {
				t.Errorf("net arc has nonzero delay %g", a.Delay)
			}
		}
	}
}

func TestConeSubsetProperty(t *testing.T) {
	g := paperGraph(t)
	starts := g.Startpoints()
	ends := g.Endpoints()
	for _, s := range starts {
		for _, e := range ends {
			fwd := g.ForwardReach([]NodeID{s})
			bwd := g.BackwardReach([]NodeID{e})
			cone := g.ConeBetween(s, e)
			inCone := map[NodeID]bool{}
			for _, n := range cone {
				if !fwd[n] || !bwd[n] {
					t.Fatalf("cone node %s outside fwd∩bwd for %s→%s",
						g.Node(n).Name, g.Node(s).Name, g.Node(e).Name)
				}
				inCone[n] = true
			}
			for _, r := range g.ReconvergencePoints(s, e) {
				if !inCone[r] {
					t.Fatalf("reconvergence point %s outside cone", g.Node(r).Name)
				}
			}
			if len(cone) > 0 {
				if cone[0] != s && !inCone[s] {
					t.Fatalf("start missing from nonempty cone %s→%s",
						g.Node(s).Name, g.Node(e).Name)
				}
			}
		}
	}
}

func TestReachabilityMonotone(t *testing.T) {
	g := paperGraph(t)
	// Reach from a superset of seeds is a superset of reach.
	a, _ := g.NodeByName("rA/CP")
	b, _ := g.NodeByName("rB/CP")
	ra := g.ForwardReach([]NodeID{a})
	rab := g.ForwardReach([]NodeID{a, b})
	for i := range ra {
		if ra[i] && !rab[i] {
			t.Fatalf("reach not monotone at %s", g.Node(NodeID(i)).Name)
		}
	}
}
