// Package report renders the paper's tables (1–6) and the mergeability
// figure as aligned text, shared by cmd/tables, the examples and the
// benchmark harness.
package report

import (
	"fmt"
	"strings"
	"time"

	"modemerge/internal/experiments"
)

// Table renders rows of cells with a header, padded per column.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Footer []string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range [][]string{t.Footer} {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if len(t.Footer) > 0 {
		line(sep)
		line(t.Footer)
	}
	return b.String()
}

// Seconds formats a duration the way the paper's tables do.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// Table5 renders mode-reduction results in the layout of the paper's
// Table 5.
func Table5(rows []experiments.Table5Row) string {
	t := &Table{
		Title:  "Table 5: Mode reduction and merging runtime [size → cells, time → seconds]",
		Header: []string{"Design", "Size", "# Individual", "# Merged", "% Reduction", "Merging Runtime"},
	}
	totalRed := 0.0
	for _, r := range rows {
		t.Add(r.Design, fmt.Sprintf("%d", r.Cells),
			fmt.Sprintf("%d", r.Individual), fmt.Sprintf("%d", r.Merged),
			fmt.Sprintf("%.1f", r.ReductionPct), Seconds(r.MergeTime))
		totalRed += r.ReductionPct
	}
	if len(rows) > 0 {
		t.Footer = []string{"", "", "", "Average", fmt.Sprintf("%.1f", totalRed/float64(len(rows))), ""}
	}
	return t.String()
}

// Table6 renders STA-runtime and conformity results in the layout of the
// paper's Table 6.
func Table6(rows []experiments.Table6Row) string {
	t := &Table{
		Title:  "Table 6: Overall STA runtime and QoR of merged modes [time → seconds; conformity → % endpoints within 1% of capture period]",
		Header: []string{"Design", "STA Individual", "STA Merged", "% Reduction", "Conformity"},
	}
	totalRed, totalConf := 0.0, 0.0
	for _, r := range rows {
		t.Add(r.Design, Seconds(r.IndividualSTA), Seconds(r.MergedSTA),
			fmt.Sprintf("%.1f", r.ReductionPct), fmt.Sprintf("%.2f", r.ConformityPct))
		totalRed += r.ReductionPct
		totalConf += r.ConformityPct
	}
	if n := len(rows); n > 0 {
		t.Footer = []string{"Average", "", "",
			fmt.Sprintf("%.1f", totalRed/float64(n)), fmt.Sprintf("%.2f", totalConf/float64(n))}
	}
	return t.String()
}

// Ablation renders the naive-vs-graph comparison.
func Ablation(rows []experiments.AblationRow) string {
	t := &Table{
		Title:  "Ablation: naive textual merging vs graph-based merging (conformity %)",
		Header: []string{"Design", "Graph-based", "Naive", "Refinement constraints"},
	}
	for _, r := range rows {
		t.Add(r.Design, fmt.Sprintf("%.2f", r.GraphConformity),
			fmt.Sprintf("%.2f", r.NaiveConformity), fmt.Sprintf("%d", r.GraphFalsePaths))
	}
	return t.String()
}
