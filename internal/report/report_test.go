package report

import (
	"strings"
	"testing"
	"time"

	"modemerge/internal/experiments"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Header: []string{"a", "bb", "ccc"},
		Footer: []string{"f", "", ""},
	}
	tbl.Add("1", "22", "333")
	tbl.Add("longest", "2", "3")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + sep + 2 rows + sep + footer.
	if len(lines) != 7 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All data lines share the same width alignment: the separator row
	// must be at least as long as every row.
	sep := lines[2]
	for _, l := range lines[3:5] {
		if len(l) > len(sep) {
			t.Errorf("row wider than separator:\n%s", out)
		}
	}
	if !strings.Contains(out, "longest") {
		t.Error("row content lost")
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(1500 * time.Millisecond); got != "1.500" {
		t.Errorf("Seconds = %q", got)
	}
}

func TestTable5Format(t *testing.T) {
	rows := []experiments.Table5Row{
		{Design: "A", Cells: 100, Individual: 95, Merged: 16, ReductionPct: 83.1, MergeTime: 2 * time.Second},
		{Design: "B", Cells: 200, Individual: 3, Merged: 1, ReductionPct: 66.6, MergeTime: time.Second},
	}
	out := Table5(rows)
	for _, want := range []string{"Design", "95", "16", "83.1", "2.000", "Average", "74.8"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable6Format(t *testing.T) {
	rows := []experiments.Table6Row{
		{Design: "A", IndividualSTA: time.Second, MergedSTA: 400 * time.Millisecond, ReductionPct: 60, ConformityPct: 99.9},
	}
	out := Table6(rows)
	for _, want := range []string{"1.000", "0.400", "60.0", "99.90"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table6 output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationFormat(t *testing.T) {
	rows := []experiments.AblationRow{
		{Design: "B", GraphConformity: 100, NaiveConformity: 76.19, GraphFalsePaths: 365},
	}
	out := Ablation(rows)
	for _, want := range []string{"100.00", "76.19", "365"} {
		if !strings.Contains(out, want) {
			t.Errorf("Ablation output missing %q:\n%s", want, out)
		}
	}
}
