package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrderPreserved: ParMap with many workers and adversarial per-item
// latency must still emit results in input order — the property the
// merge pipeline's byte-identity rests on.
func TestOrderPreserved(t *testing.T) {
	g, _ := NewGroup(context.Background())
	rng := rand.New(rand.NewSource(1))
	delays := make([]time.Duration, 64)
	items := make([]int, 64)
	for i := range items {
		items[i] = i
		delays[i] = time.Duration(rng.Intn(3)) * time.Millisecond
	}
	in := Emit(g, 4, items...)
	mapped := ParMap(g, 4, 8, in, func(_ context.Context, v int) (int, error) {
		time.Sleep(delays[v])
		return v * v, nil
	})
	got := Collect(g, mapped)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != len(items) {
		t.Fatalf("got %d results, want %d", len(*got), len(items))
	}
	for i, v := range *got {
		if v != i*i {
			t.Fatalf("out of order at %d: got %d, want %d", i, v, i*i)
		}
	}
}

// TestBackpressure: with a slow sink, the number of items in flight must
// stay bounded by the stage buffers — producers block rather than race
// ahead.
func TestBackpressure(t *testing.T) {
	g, _ := NewGroup(context.Background())
	var produced, consumed atomic.Int64
	var maxLag int64

	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	src := make(chan int, 1)
	g.Go(func() error {
		defer close(src)
		for _, v := range items {
			if !send(g.ctx, src, v) {
				return nil
			}
			produced.Add(1)
		}
		return nil
	})
	mapped := ParMap(g, 2, 2, src, func(_ context.Context, v int) (int, error) {
		return v, nil
	})
	Sink(g, mapped, func(_ context.Context, v int) error {
		time.Sleep(200 * time.Microsecond)
		c := consumed.Add(1)
		if lag := produced.Load() - c; lag > maxLag {
			maxLag = lag
		}
		return nil
	})
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	// Channel buffers: src 1 + order 4 + out 2 + reply slots ≈ 10. Allow
	// slack for scheduling, but a runaway producer would hit ~100.
	if maxLag > 20 {
		t.Fatalf("backpressure failed: %d items in flight", maxLag)
	}
}

// TestErrorShortCircuits: one failing item cancels the whole graph and
// Wait returns that error without deadlocking.
func TestErrorShortCircuits(t *testing.T) {
	g, _ := NewGroup(context.Background())
	boom := errors.New("boom")
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	in := Emit(g, 2, items...)
	mapped := ParMap(g, 2, 4, in, func(_ context.Context, v int) (int, error) {
		if v == 17 {
			return 0, fmt.Errorf("item %d: %w", v, boom)
		}
		return v, nil
	})
	got := Collect(g, mapped)
	err := g.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want wrapped boom", err)
	}
	if len(*got) >= len(items) {
		t.Fatal("error did not short-circuit the pipeline")
	}
}

// TestPanicCaptured: a stage panic surfaces from Wait as *PanicError
// with the panic value and a stack, instead of crashing the process.
func TestPanicCaptured(t *testing.T) {
	g, _ := NewGroup(context.Background())
	in := Emit(g, 1, 1, 2, 3)
	mapped := Map(g, 1, in, func(_ context.Context, v int) (int, error) {
		if v == 2 {
			panic("stage exploded")
		}
		return v, nil
	})
	Collect(g, mapped)
	err := g.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "stage exploded" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "pipeline") {
		t.Fatal("panic stack missing")
	}
}

// TestExternalCancel: cancelling the parent context mid-run stops the
// graph and Wait reports the context error.
func TestExternalCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g, _ := NewGroup(ctx)
	started := make(chan struct{})
	var once atomic.Bool
	items := make([]int, 100)
	in := Emit(g, 1, items...)
	mapped := Map(g, 1, in, func(c context.Context, v int) (int, error) {
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		select {
		case <-c.Done():
			return 0, c.Err()
		case <-time.After(50 * time.Millisecond):
			return v, nil
		}
	})
	Collect(g, mapped)
	<-started
	cancel()
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
}

// TestChainedStages: a multi-stage graph (emit → map → parmap → sink)
// composes and completes.
func TestChainedStages(t *testing.T) {
	g, _ := NewGroup(context.Background())
	in := Emit(g, 2, 1, 2, 3, 4, 5)
	doubled := Map(g, 2, in, func(_ context.Context, v int) (int, error) { return v * 2, nil })
	strs := ParMap(g, 2, 3, doubled, func(_ context.Context, v int) (string, error) {
		return fmt.Sprint(v), nil
	})
	var joined []string
	Sink(g, strs, func(_ context.Context, s string) error {
		joined = append(joined, s)
		return nil
	})
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(joined, ","); got != "2,4,6,8,10" {
		t.Fatalf("pipeline output = %q", got)
	}
}

// TestEmptyInput: zero items flow through cleanly.
func TestEmptyInput(t *testing.T) {
	g, _ := NewGroup(context.Background())
	in := Emit[int](g, 1)
	mapped := ParMap(g, 1, 4, in, func(_ context.Context, v int) (int, error) { return v, nil })
	got := Collect(g, mapped)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatalf("got %d results from empty input", len(*got))
	}
}
