// Package pipeline provides typed, channel-connected processing stages
// for expressing a job as a small dataflow graph: a source emits items,
// stages transform them (optionally fanned out across a bounded worker
// pool with order-preserving fan-in), and a sink collects results.
// Bounded channels give backpressure end to end — a slow downstream
// stage throttles upstream producers instead of letting work pile up —
// and every stage goroutine runs under one Group that converts the
// first error or panic into cancellation of the whole graph.
//
// The service's merge job loop is built on this package: parse →
// mergeability analysis → clique scheduling → per-clique merge (fan-out)
// → ordered assembly. Order preservation in ParMap is what keeps the
// staged pipeline byte-identical to the sequential loop it replaced.
package pipeline

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// PanicError is a panic captured on a stage goroutine, carrying the
// recovered value and the stack at the panic site. Group.Wait returns it
// as an ordinary error so callers keep their existing panic accounting
// (the service maps it back onto its crash telemetry).
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pipeline: stage panic: %v", e.Value)
}

// Group owns the goroutines of one pipeline run. The first failure
// (error, panic, or external context cancellation) cancels the group
// context; stages watch it and drain, so Wait never deadlocks on a
// poisoned graph.
type Group struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewGroup creates a stage group under parent. The returned context is
// cancelled when any stage fails or when parent is cancelled; pass it to
// long-running stage bodies that need explicit cancellation points.
func NewGroup(parent context.Context) (*Group, context.Context) {
	ctx, cancel := context.WithCancel(parent)
	return &Group{ctx: ctx, cancel: cancel}, ctx
}

// Context returns the group's cancellation context.
func (g *Group) Context() context.Context { return g.ctx }

// Go runs fn on a new goroutine with panic capture. A non-nil return
// (or a panic, wrapped as *PanicError) records the group's first error
// and cancels the group context.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if v := recover(); v != nil {
				g.fail(&PanicError{Value: v, Stack: debug.Stack()})
			}
		}()
		if err := fn(); err != nil {
			g.fail(err)
		}
	}()
}

func (g *Group) fail(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
	g.cancel()
}

// Wait blocks until every stage goroutine has returned, then reports the
// first recorded failure. When all stages succeeded but the parent
// context was cancelled, it returns the context error: the pipeline was
// interrupted, not completed.
func (g *Group) Wait() error {
	g.wg.Wait()
	interrupted := g.ctx.Err() // read before releasing our own cancel
	g.cancel()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return g.err
	}
	return interrupted
}

// send delivers v to out unless the group is cancelled first.
func send[T any](ctx context.Context, out chan<- T, v T) bool {
	select {
	case out <- v:
		return true
	case <-ctx.Done():
		return false
	}
}

// Emit starts a source stage producing the given items in order into a
// channel with the given buffer (minimum 1). The channel is closed when
// all items are emitted or the group is cancelled.
func Emit[T any](g *Group, buf int, items ...T) <-chan T {
	out := make(chan T, bufSize(buf))
	g.Go(func() error {
		defer close(out)
		for _, v := range items {
			if !send(g.ctx, out, v) {
				return nil
			}
		}
		return nil
	})
	return out
}

// Map starts a single-worker transform stage: items are processed and
// emitted strictly in input order. An error from fn fails the group and
// closes the output.
func Map[In, Out any](g *Group, buf int, in <-chan In, fn func(context.Context, In) (Out, error)) <-chan Out {
	out := make(chan Out, bufSize(buf))
	g.Go(func() error {
		defer close(out)
		for {
			v, ok, err := recv(g.ctx, in)
			if err != nil || !ok {
				return err
			}
			r, err := fn(g.ctx, v)
			if err != nil {
				return err
			}
			if !send(g.ctx, out, r) {
				return nil
			}
		}
	})
	return out
}

// ParMap starts a fan-out/fan-in transform stage: up to workers items
// are processed concurrently, and results are emitted in input order
// regardless of completion order. In-flight work is bounded by
// workers + buf, so downstream backpressure propagates upstream. An
// error from any worker fails the group; remaining workers see the
// cancelled context and stop.
func ParMap[In, Out any](g *Group, buf, workers int, in <-chan In, fn func(context.Context, In) (Out, error)) <-chan Out {
	if workers < 1 {
		workers = 1
	}
	type task struct {
		v     In
		reply chan Out
	}
	work := make(chan task)                            // unbuffered: hand-off to an idle worker
	order := make(chan chan Out, workers+bufSize(buf)) // bounds in-flight items
	out := make(chan Out, bufSize(buf))

	// Dispatcher: pair each input with a reply slot, preserving order.
	g.Go(func() error {
		defer close(work)
		defer close(order)
		for {
			v, ok, err := recv(g.ctx, in)
			if err != nil || !ok {
				return err
			}
			t := task{v: v, reply: make(chan Out, 1)}
			if !send(g.ctx, order, t.reply) {
				return nil
			}
			if !send(g.ctx, work, t) {
				return nil
			}
		}
	})
	// Workers: compute and fill reply slots, any order.
	for i := 0; i < workers; i++ {
		g.Go(func() error {
			for {
				t, ok, err := recv(g.ctx, work)
				if err != nil || !ok {
					return err
				}
				r, err := fn(g.ctx, t.v)
				if err != nil {
					return err
				}
				t.reply <- r // buffered; never blocks
			}
		})
	}
	// Fan-in: drain reply slots in dispatch order.
	g.Go(func() error {
		defer close(out)
		for {
			reply, ok, err := recv(g.ctx, order)
			if err != nil || !ok {
				return err
			}
			r, ok, err := recv(g.ctx, reply)
			if err != nil {
				return err
			}
			if !ok {
				return nil // worker died before replying; group already failing
			}
			if !send(g.ctx, out, r) {
				return nil
			}
		}
	})
	return out
}

// Collect starts a sink stage appending every item to the returned
// slice. The slice must only be read after Wait returns.
func Collect[T any](g *Group, in <-chan T) *[]T {
	out := new([]T)
	g.Go(func() error {
		for {
			v, ok, err := recv(g.ctx, in)
			if err != nil || !ok {
				return err
			}
			*out = append(*out, v)
		}
	})
	return out
}

// Sink starts a terminal stage invoking fn for every item in order.
func Sink[T any](g *Group, in <-chan T, fn func(context.Context, T) error) {
	g.Go(func() error {
		for {
			v, ok, err := recv(g.ctx, in)
			if err != nil || !ok {
				return err
			}
			if err := fn(g.ctx, v); err != nil {
				return err
			}
		}
	})
}

// recv receives one item or reports closure; a cancelled group context
// surfaces as a nil-item, nil-error stop so stages drain quietly (the
// group already records the causal error).
func recv[T any](ctx context.Context, in <-chan T) (v T, ok bool, err error) {
	select {
	case v, ok = <-in:
		return v, ok, nil
	case <-ctx.Done():
		return v, false, nil
	}
}

func bufSize(buf int) int {
	if buf < 1 {
		return 1
	}
	return buf
}
