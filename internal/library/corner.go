package library

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Corner describes one operating corner of an MCMM scenario matrix: a
// named point in the process/voltage/temperature space, expressed as
// multiplicative derates over the nominal delay model plus an optional
// SDC overlay. A scenario is a (mode, corner) pair: the mode's SDC with
// the corner's overlay appended, analyzed under the corner's derates.
//
// Scale factors of zero mean "unset" and behave as 1.0, so the zero
// Corner is the neutral corner. A nil *Corner in sta.Options selects the
// corner-less nominal path bit-for-bit (no multiplications are applied
// at all), which is the compatibility guarantee the corner-less API
// relies on.
type Corner struct {
	// Name identifies the corner ("ss_0p72v_125c", "wc", ...). Names
	// must be unique within a corner set.
	Name string

	// DelayScale scales every combinational/launch arc delay, early and
	// late alike (global process/temperature derate).
	DelayScale float64
	// EarlyScale additionally scales the early (min) delay values —
	// an OCV-style early derate (< 1 widens hold pessimism).
	EarlyScale float64
	// LateScale additionally scales the late (max) delay values
	// (> 1 widens setup pessimism).
	LateScale float64
	// MarginScale scales library setup/hold check margins (and
	// output-delay port margins), modelling corner-dependent
	// characterization guard-bands.
	MarginScale float64

	// SDC is an optional constraint overlay appended to every mode's
	// SDC text when building this corner's analysis context (clock
	// uncertainty, input transitions, extra loads...). Overlays refine
	// the environment of existing clocks and ports; they must not
	// create clocks (enforced at scenario construction).
	SDC string
}

// factorOr1 maps the zero value to the neutral factor.
func factorOr1(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// DelayFactor returns the effective global delay scale (1.0 when unset).
func (c *Corner) DelayFactor() float64 { return factorOr1(c.DelayScale) }

// EarlyFactor returns the effective early-path scale (1.0 when unset).
func (c *Corner) EarlyFactor() float64 { return factorOr1(c.EarlyScale) }

// LateFactor returns the effective late-path scale (1.0 when unset).
func (c *Corner) LateFactor() float64 { return factorOr1(c.LateScale) }

// MarginFactor returns the effective check-margin scale (1.0 when unset).
func (c *Corner) MarginFactor() float64 { return factorOr1(c.MarginScale) }

// Neutral reports whether the corner changes nothing relative to the
// nominal corner-less analysis: all factors 1.0 and no SDC overlay.
func (c *Corner) Neutral() bool {
	return c.DelayFactor() == 1 && c.EarlyFactor() == 1 &&
		c.LateFactor() == 1 && c.MarginFactor() == 1 && c.SDC == ""
}

// Key is the corner's canonical cache identity: every semantic field in
// a fixed order, floats rendered shortest-round-trip, the overlay
// content-hashed. Two corners with equal keys produce identical
// analysis results for the same mode.
func (c *Corner) Key() string {
	var b strings.Builder
	b.WriteString(c.Name)
	for _, f := range []float64{c.DelayFactor(), c.EarlyFactor(), c.LateFactor(), c.MarginFactor()} {
		b.WriteByte('|')
		b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
	}
	b.WriteByte('|')
	sum := sha256.Sum256([]byte(c.SDC))
	b.WriteString(hex.EncodeToString(sum[:8]))
	return b.String()
}

// CornerSetKey is the canonical cache identity of an ordered corner
// set; the empty string for an empty set (the corner-less path).
func CornerSetKey(corners []Corner) string {
	if len(corners) == 0 {
		return ""
	}
	keys := make([]string, len(corners))
	for i := range corners {
		keys[i] = corners[i].Key()
	}
	return strings.Join(keys, ";")
}

// ValidateCorners checks a corner set: every corner named, names
// unique. An empty set is valid (it means corner-less analysis).
func ValidateCorners(corners []Corner) error {
	seen := make(map[string]bool, len(corners))
	for i := range corners {
		name := corners[i].Name
		if name == "" {
			return fmt.Errorf("corner %d: name required", i)
		}
		if seen[name] {
			return fmt.Errorf("duplicate corner name %q", name)
		}
		seen[name] = true
	}
	return nil
}
