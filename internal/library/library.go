// Package library models the standard-cell library a timing engine works
// against: cells with pins, boolean functions over three-valued logic
// (0/1/X), timing arcs with unateness, and a wire-load delay model.
//
// A built-in primitive library (see Default) covers the gate set the
// synthetic designs and the paper's example circuit use. Custom libraries
// can be parsed from the mini library format (see Parse).
package library

import (
	"fmt"
	"sort"
)

// Logic is a three-valued logic level used by case-analysis constant
// propagation.
type Logic int8

// Logic levels.
const (
	LX Logic = iota // unknown / toggling
	L0              // constant zero
	L1              // constant one
)

// String returns "0", "1" or "X".
func (l Logic) String() string {
	switch l {
	case L0:
		return "0"
	case L1:
		return "1"
	default:
		return "X"
	}
}

// Known reports whether the level is a constant.
func (l Logic) Known() bool { return l == L0 || l == L1 }

// Not returns the logical negation, with NOT X = X.
func (l Logic) Not() Logic {
	switch l {
	case L0:
		return L1
	case L1:
		return L0
	default:
		return LX
	}
}

// PinDir is the direction of a cell pin.
type PinDir int8

// Pin directions.
const (
	Input PinDir = iota
	Output
)

func (d PinDir) String() string {
	if d == Output {
		return "output"
	}
	return "input"
}

// Unateness of a timing arc: whether a rising input causes a rising
// (positive), falling (negative) or either (non-unate) output transition.
type Unateness int8

// Unateness values.
const (
	NonUnate Unateness = iota
	PositiveUnate
	NegativeUnate
)

func (u Unateness) String() string {
	switch u {
	case PositiveUnate:
		return "positive"
	case NegativeUnate:
		return "negative"
	default:
		return "nonunate"
	}
}

// ArcKind classifies a timing arc.
type ArcKind int8

// Arc kinds.
const (
	// CombArc is a combinational input→output delay arc.
	CombArc ArcKind = iota
	// LaunchArc is the clock→output arc of a sequential cell (CP→Q).
	LaunchArc
	// SetupArc is a data-before-clock setup constraint arc (D→CP).
	SetupArc
	// HoldArc is a data-after-clock hold constraint arc (D→CP).
	HoldArc
)

func (k ArcKind) String() string {
	switch k {
	case CombArc:
		return "comb"
	case LaunchArc:
		return "launch"
	case SetupArc:
		return "setup"
	case HoldArc:
		return "hold"
	default:
		return fmt.Sprintf("ArcKind(%d)", int(k))
	}
}

// Pin describes one pin of a library cell.
type Pin struct {
	Name string
	Dir  PinDir
	// Clock marks the clock pin of a sequential cell.
	Clock bool
	// Cap is the input capacitance in library units; it contributes to the
	// load seen by the driving arc.
	Cap float64
}

// Arc is a timing arc between two pins of a cell.
type Arc struct {
	From, To  string
	Kind      ArcKind
	Unate     Unateness
	Intrinsic float64 // fixed delay component
	Slope     float64 // delay per unit of output load (comb/launch arcs)
	// Margin is the setup or hold margin for constraint arcs.
	Margin float64
}

// Cell is a library cell definition.
type Cell struct {
	Name       string
	Pins       []Pin
	Arcs       []Arc
	Sequential bool
	// Level marks a level-sensitive sequential (latch): its data setup
	// check may borrow time through the transparency window.
	Level bool
	// Functions maps each output pin to its boolean function for constant
	// propagation. Sequential outputs have no entry (their value is
	// unknown unless forced by case analysis).
	Functions map[string]Expr

	pinIndex map[string]int
}

// Pin returns the named pin, or nil.
func (c *Cell) Pin(name string) *Pin {
	if i, ok := c.pinIndex[name]; ok {
		return &c.Pins[i]
	}
	return nil
}

// Inputs returns the input pin names in declaration order.
func (c *Cell) Inputs() []string {
	var out []string
	for _, p := range c.Pins {
		if p.Dir == Input {
			out = append(out, p.Name)
		}
	}
	return out
}

// Outputs returns the output pin names in declaration order.
func (c *Cell) Outputs() []string {
	var out []string
	for _, p := range c.Pins {
		if p.Dir == Output {
			out = append(out, p.Name)
		}
	}
	return out
}

// ClockPin returns the name of the clock pin of a sequential cell, or "".
func (c *Cell) ClockPin() string {
	for _, p := range c.Pins {
		if p.Clock {
			return p.Name
		}
	}
	return ""
}

// DataPins returns the non-clock input pins that have setup arcs to the
// clock pin (the "D" pins of a sequential cell).
func (c *Cell) DataPins() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range c.Arcs {
		if a.Kind == SetupArc && !seen[a.From] {
			seen[a.From] = true
			out = append(out, a.From)
		}
	}
	sort.Strings(out)
	return out
}

// finish builds internal indexes and validates the cell.
func (c *Cell) finish() error {
	c.pinIndex = make(map[string]int, len(c.Pins))
	for i, p := range c.Pins {
		if _, dup := c.pinIndex[p.Name]; dup {
			return fmt.Errorf("cell %s: duplicate pin %s", c.Name, p.Name)
		}
		c.pinIndex[p.Name] = i
	}
	for _, a := range c.Arcs {
		from, to := c.Pin(a.From), c.Pin(a.To)
		if from == nil || to == nil {
			return fmt.Errorf("cell %s: arc %s->%s references unknown pin", c.Name, a.From, a.To)
		}
		switch a.Kind {
		case CombArc, LaunchArc:
			if from.Dir != Input || to.Dir != Output {
				return fmt.Errorf("cell %s: arc %s->%s must be input->output", c.Name, a.From, a.To)
			}
		case SetupArc, HoldArc:
			if from.Dir != Input || !to.Clock {
				return fmt.Errorf("cell %s: constraint arc %s->%s must be data->clock", c.Name, a.From, a.To)
			}
		}
	}
	for out := range c.Functions {
		p := c.Pin(out)
		if p == nil || p.Dir != Output {
			return fmt.Errorf("cell %s: function on non-output pin %s", c.Name, out)
		}
	}
	return nil
}

// WireLoad is a fanout-based wire load model: the wire capacitance seen by
// a driver is C0 + C1·fanout.
type WireLoad struct {
	C0, C1 float64
}

// Cap returns the wire capacitance for a net with the given fanout.
func (w WireLoad) Cap(fanout int) float64 {
	if fanout <= 0 {
		return 0
	}
	return w.C0 + w.C1*float64(fanout)
}

// Library is a set of cells plus the wire-load model used for delay
// calculation.
type Library struct {
	Name     string
	WireLoad WireLoad
	cells    map[string]*Cell
	names    []string
}

// NewLibrary returns an empty library with the given wire-load model.
func NewLibrary(name string, wl WireLoad) *Library {
	return &Library{Name: name, WireLoad: wl, cells: make(map[string]*Cell)}
}

// Add registers a cell, validating it.
func (l *Library) Add(c *Cell) error {
	if err := c.finish(); err != nil {
		return err
	}
	if _, dup := l.cells[c.Name]; dup {
		return fmt.Errorf("library %s: duplicate cell %s", l.Name, c.Name)
	}
	l.cells[c.Name] = c
	l.names = append(l.names, c.Name)
	return nil
}

// MustAdd is Add that panics on error; for building static libraries.
func (l *Library) MustAdd(c *Cell) {
	if err := l.Add(c); err != nil {
		panic(err)
	}
}

// Cell returns the named cell, or nil.
func (l *Library) Cell(name string) *Cell { return l.cells[name] }

// Cells returns cell names in registration order.
func (l *Library) Cells() []string { return append([]string(nil), l.names...) }

// ArcDelay computes the delay of a delay arc driving the given total load
// capacitance (sink pin caps + wire cap).
func ArcDelay(a *Arc, load float64) float64 {
	return a.Intrinsic + a.Slope*load
}
