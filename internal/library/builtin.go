package library

import "sync"

var (
	defaultOnce sync.Once
	defaultLib  *Library
)

// Default returns the built-in primitive library shared by the synthetic
// designs, the paper's example circuit and the tests. The returned library
// is shared and must not be mutated.
func Default() *Library {
	defaultOnce.Do(func() { defaultLib = buildDefault() })
	return defaultLib
}

// mustExpr parses a function or panics; for static library construction.
func mustExpr(s string) Expr {
	e, err := ParseExpr(s)
	if err != nil {
		panic(err)
	}
	return e
}

// comb builds a combinational cell whose single output Z computes fn over
// the inputs, with one delay arc per input.
func comb(name string, inputs []string, fn string, unate Unateness, intrinsic, slope float64) *Cell {
	c := &Cell{Name: name, Functions: map[string]Expr{"Z": mustExpr(fn)}}
	for _, in := range inputs {
		c.Pins = append(c.Pins, Pin{Name: in, Dir: Input, Cap: 1.0})
		c.Arcs = append(c.Arcs, Arc{From: in, To: "Z", Kind: CombArc, Unate: unate, Intrinsic: intrinsic, Slope: slope})
	}
	c.Pins = append(c.Pins, Pin{Name: "Z", Dir: Output})
	return c
}

// dff builds a flip-flop with clock pin CP, the given data pins, output Q
// (and QN when withQN), and optional async pins that act as data-side
// constraint inputs.
func dff(name string, dataPins []string, withQN bool) *Cell {
	c := &Cell{Name: name, Sequential: true, Functions: map[string]Expr{}}
	c.Pins = append(c.Pins, Pin{Name: "CP", Dir: Input, Clock: true, Cap: 1.2})
	for _, d := range dataPins {
		c.Pins = append(c.Pins, Pin{Name: d, Dir: Input, Cap: 1.0})
		c.Arcs = append(c.Arcs,
			Arc{From: d, To: "CP", Kind: SetupArc, Margin: 0.08},
			Arc{From: d, To: "CP", Kind: HoldArc, Margin: 0.03},
		)
	}
	c.Pins = append(c.Pins, Pin{Name: "Q", Dir: Output})
	c.Arcs = append(c.Arcs, Arc{From: "CP", To: "Q", Kind: LaunchArc, Unate: NonUnate, Intrinsic: 0.18, Slope: 0.014})
	if withQN {
		c.Pins = append(c.Pins, Pin{Name: "QN", Dir: Output})
		c.Arcs = append(c.Arcs, Arc{From: "CP", To: "QN", Kind: LaunchArc, Unate: NonUnate, Intrinsic: 0.20, Slope: 0.014})
	}
	return c
}

func buildDefault() *Library {
	l := NewLibrary("builtin", WireLoad{C0: 0.6, C1: 0.35})

	l.MustAdd(&Cell{Name: "TIEHI", Pins: []Pin{{Name: "Z", Dir: Output}},
		Functions: map[string]Expr{"Z": ConstExpr(L1)}})
	l.MustAdd(&Cell{Name: "TIELO", Pins: []Pin{{Name: "Z", Dir: Output}},
		Functions: map[string]Expr{"Z": ConstExpr(L0)}})

	l.MustAdd(comb("BUF", []string{"A"}, "A", PositiveUnate, 0.06, 0.010))
	l.MustAdd(comb("INV", []string{"A"}, "!A", NegativeUnate, 0.04, 0.009))
	l.MustAdd(comb("CLKBUF", []string{"A"}, "A", PositiveUnate, 0.05, 0.006))

	l.MustAdd(comb("AND2", []string{"A", "B"}, "A&B", PositiveUnate, 0.09, 0.012))
	l.MustAdd(comb("AND3", []string{"A", "B", "C"}, "A&B&C", PositiveUnate, 0.11, 0.013))
	l.MustAdd(comb("AND4", []string{"A", "B", "C", "D"}, "A&B&C&D", PositiveUnate, 0.13, 0.014))
	l.MustAdd(comb("NAND2", []string{"A", "B"}, "!(A&B)", NegativeUnate, 0.05, 0.011))
	l.MustAdd(comb("NAND3", []string{"A", "B", "C"}, "!(A&B&C)", NegativeUnate, 0.07, 0.012))
	l.MustAdd(comb("OR2", []string{"A", "B"}, "A|B", PositiveUnate, 0.10, 0.012))
	l.MustAdd(comb("OR3", []string{"A", "B", "C"}, "A|B|C", PositiveUnate, 0.12, 0.013))
	l.MustAdd(comb("OR4", []string{"A", "B", "C", "D"}, "A|B|C|D", PositiveUnate, 0.14, 0.014))
	l.MustAdd(comb("NOR2", []string{"A", "B"}, "!(A|B)", NegativeUnate, 0.06, 0.011))
	l.MustAdd(comb("NOR3", []string{"A", "B", "C"}, "!(A|B|C)", NegativeUnate, 0.08, 0.012))
	l.MustAdd(comb("XOR2", []string{"A", "B"}, "A^B", NonUnate, 0.12, 0.015))
	l.MustAdd(comb("XNOR2", []string{"A", "B"}, "!(A^B)", NonUnate, 0.12, 0.015))
	l.MustAdd(comb("AOI21", []string{"A", "B", "C"}, "!((A&B)|C)", NegativeUnate, 0.08, 0.013))
	l.MustAdd(comb("OAI21", []string{"A", "B", "C"}, "!((A|B)&C)", NegativeUnate, 0.08, 0.013))

	// 2:1 mux: Z = I0 when S=0, I1 when S=1. Data-to-output arcs are
	// positive unate (a selected input passes non-inverted — this is what
	// lets a clock keep its polarity through a clock mux); the select arc
	// is non-unate.
	mux2 := &Cell{Name: "MUX2", Functions: map[string]Expr{"Z": MuxExpr{S: VarExpr("S"), A: VarExpr("I0"), B: VarExpr("I1")}}}
	for _, in := range []string{"I0", "I1", "S"} {
		unate := PositiveUnate
		if in == "S" {
			unate = NonUnate
		}
		mux2.Pins = append(mux2.Pins, Pin{Name: in, Dir: Input, Cap: 1.0})
		mux2.Arcs = append(mux2.Arcs, Arc{From: in, To: "Z", Kind: CombArc, Unate: unate, Intrinsic: 0.11, Slope: 0.013})
	}
	mux2.Pins = append(mux2.Pins, Pin{Name: "Z", Dir: Output})
	l.MustAdd(mux2)

	// 4:1 mux with a two-bit select.
	mux4 := &Cell{Name: "MUX4", Functions: map[string]Expr{"Z": MuxExpr{
		S: VarExpr("S1"),
		A: MuxExpr{S: VarExpr("S0"), A: VarExpr("I0"), B: VarExpr("I1")},
		B: MuxExpr{S: VarExpr("S0"), A: VarExpr("I2"), B: VarExpr("I3")},
	}}}
	for _, in := range []string{"I0", "I1", "I2", "I3", "S0", "S1"} {
		unate := PositiveUnate
		if in == "S0" || in == "S1" {
			unate = NonUnate
		}
		mux4.Pins = append(mux4.Pins, Pin{Name: in, Dir: Input, Cap: 1.1})
		mux4.Arcs = append(mux4.Arcs, Arc{From: in, To: "Z", Kind: CombArc, Unate: unate, Intrinsic: 0.16, Slope: 0.015})
	}
	mux4.Pins = append(mux4.Pins, Pin{Name: "Z", Dir: Output})
	l.MustAdd(mux4)

	// Integrated clock gate: the enable is latched in silicon; for timing
	// purposes GCK follows CK gated by EN.
	icg := &Cell{Name: "ICG", Functions: map[string]Expr{"GCK": mustExpr("CK&EN")}}
	icg.Pins = []Pin{
		{Name: "CK", Dir: Input, Clock: false, Cap: 1.3},
		{Name: "EN", Dir: Input, Cap: 1.0},
		{Name: "GCK", Dir: Output},
	}
	icg.Arcs = []Arc{
		{From: "CK", To: "GCK", Kind: CombArc, Unate: PositiveUnate, Intrinsic: 0.07, Slope: 0.008},
		{From: "EN", To: "GCK", Kind: CombArc, Unate: PositiveUnate, Intrinsic: 0.09, Slope: 0.010},
	}
	l.MustAdd(icg)

	l.MustAdd(dff("DFF", []string{"D"}, false))
	l.MustAdd(dff("DFFQN", []string{"D"}, true))
	// Scan flop: functional data D, scan-in SI, scan-enable SE.
	l.MustAdd(dff("SDFF", []string{"D", "SI", "SE"}, false))
	// Reset/set flops: async pins are modeled as extra data-side inputs.
	l.MustAdd(dff("DFFR", []string{"D", "RN"}, false))
	l.MustAdd(dff("DFFS", []string{"D", "SN"}, false))

	// Level-sensitive latch: G is the (transparent-high) gate.
	latch := &Cell{Name: "LATCH", Sequential: true, Level: true, Functions: map[string]Expr{}}
	latch.Pins = []Pin{
		{Name: "G", Dir: Input, Clock: true, Cap: 1.1},
		{Name: "D", Dir: Input, Cap: 1.0},
		{Name: "Q", Dir: Output},
	}
	latch.Arcs = []Arc{
		{From: "D", To: "G", Kind: SetupArc, Margin: 0.06},
		{From: "D", To: "G", Kind: HoldArc, Margin: 0.03},
		{From: "G", To: "Q", Kind: LaunchArc, Unate: NonUnate, Intrinsic: 0.15, Slope: 0.013},
	}
	l.MustAdd(latch)

	return l
}
