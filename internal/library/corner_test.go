package library

import (
	"strings"
	"testing"
)

// TestCornerFactors pins the zero-means-1.0 defaulting of every scale
// field, which is what keeps a zero-value Corner semantically neutral.
func TestCornerFactors(t *testing.T) {
	cases := []struct {
		name                       string
		corner                     Corner
		delay, early, late, margin float64
	}{
		{"zero-value", Corner{}, 1, 1, 1, 1},
		{"explicit-ones", Corner{DelayScale: 1, EarlyScale: 1, LateScale: 1, MarginScale: 1}, 1, 1, 1, 1},
		{"delay-only", Corner{DelayScale: 1.2}, 1.2, 1, 1, 1},
		{"early-only", Corner{EarlyScale: 0.9}, 1, 0.9, 1, 1},
		{"late-only", Corner{LateScale: 1.1}, 1, 1, 1.1, 1},
		{"margin-only", Corner{MarginScale: 1.5}, 1, 1, 1, 1.5},
		{"all-set", Corner{DelayScale: 0.8, EarlyScale: 0.95, LateScale: 1.05, MarginScale: 2}, 0.8, 0.95, 1.05, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.corner
			if got := c.DelayFactor(); got != tc.delay {
				t.Errorf("DelayFactor = %g, want %g", got, tc.delay)
			}
			if got := c.EarlyFactor(); got != tc.early {
				t.Errorf("EarlyFactor = %g, want %g", got, tc.early)
			}
			if got := c.LateFactor(); got != tc.late {
				t.Errorf("LateFactor = %g, want %g", got, tc.late)
			}
			if got := c.MarginFactor(); got != tc.margin {
				t.Errorf("MarginFactor = %g, want %g", got, tc.margin)
			}
			wantNeutral := tc.delay == 1 && tc.early == 1 && tc.late == 1 && tc.margin == 1
			if got := c.Neutral(); got != wantNeutral {
				t.Errorf("Neutral = %v, want %v", got, wantNeutral)
			}
		})
	}
	overlay := Corner{SDC: "set_load 0.02 [get_ports o]"}
	if overlay.Neutral() {
		t.Error("corner with an SDC overlay must not be neutral")
	}
}

// TestCornerKey pins that Key is a faithful content address: equal
// corners share a key, and changing any semantic field changes it.
func TestCornerKey(t *testing.T) {
	base := Corner{Name: "wc", DelayScale: 1.2, EarlyScale: 0.9, LateScale: 1.1, MarginScale: 1.5, SDC: "set_load 0.02 [get_ports o]"}
	if base.Key() != base.Key() {
		t.Fatal("Key is not deterministic")
	}
	same := base
	if same.Key() != base.Key() {
		t.Error("identical corners have different keys")
	}
	variants := map[string]Corner{
		"name":   {Name: "bc", DelayScale: 1.2, EarlyScale: 0.9, LateScale: 1.1, MarginScale: 1.5, SDC: base.SDC},
		"delay":  {Name: "wc", DelayScale: 1.3, EarlyScale: 0.9, LateScale: 1.1, MarginScale: 1.5, SDC: base.SDC},
		"early":  {Name: "wc", DelayScale: 1.2, EarlyScale: 0.8, LateScale: 1.1, MarginScale: 1.5, SDC: base.SDC},
		"late":   {Name: "wc", DelayScale: 1.2, EarlyScale: 0.9, LateScale: 1.2, MarginScale: 1.5, SDC: base.SDC},
		"margin": {Name: "wc", DelayScale: 1.2, EarlyScale: 0.9, LateScale: 1.1, MarginScale: 2, SDC: base.SDC},
		"sdc":    {Name: "wc", DelayScale: 1.2, EarlyScale: 0.9, LateScale: 1.1, MarginScale: 1.5, SDC: "set_load 0.04 [get_ports o]"},
	}
	for field, v := range variants {
		if v.Key() == base.Key() {
			t.Errorf("changing %s did not change the key", field)
		}
	}
	// Explicit 1.0 factors and implicit zero factors are the same corner.
	implicit := Corner{Name: "typ"}
	explicit := Corner{Name: "typ", DelayScale: 1, EarlyScale: 1, LateScale: 1, MarginScale: 1}
	if implicit.Key() != explicit.Key() {
		t.Error("zero factors and explicit 1.0 factors produce different keys")
	}
}

// TestCornerSetKey covers the set-level cache key used by the
// incremental layer: empty set → empty string, order matters, and each
// member contributes its full key.
func TestCornerSetKey(t *testing.T) {
	if got := CornerSetKey(nil); got != "" {
		t.Errorf("CornerSetKey(nil) = %q, want empty", got)
	}
	a := Corner{Name: "a", DelayScale: 1.1}
	b := Corner{Name: "b", EarlyScale: 0.9}
	ab, ba := CornerSetKey([]Corner{a, b}), CornerSetKey([]Corner{b, a})
	if ab == ba {
		t.Error("corner order does not affect the set key")
	}
	if !strings.Contains(ab, a.Key()) || !strings.Contains(ab, b.Key()) {
		t.Error("set key does not embed member keys")
	}
	if CornerSetKey([]Corner{a}) != a.Key() {
		t.Error("singleton set key differs from the member key")
	}
}

// TestValidateCorners covers the request-validation contract shared by
// core, the service, and the CLI.
func TestValidateCorners(t *testing.T) {
	cases := []struct {
		name    string
		corners []Corner
		wantErr string
	}{
		{"nil-ok", nil, ""},
		{"empty-ok", []Corner{}, ""},
		{"single-ok", []Corner{{Name: "typ"}}, ""},
		{"multi-ok", []Corner{{Name: "wc"}, {Name: "bc"}, {Name: "typ"}}, ""},
		{"unnamed", []Corner{{Name: "wc"}, {DelayScale: 1.2}}, "name required"},
		{"duplicate", []Corner{{Name: "wc"}, {Name: "bc"}, {Name: "wc", DelayScale: 2}}, `duplicate corner name "wc"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateCorners(tc.corners)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
