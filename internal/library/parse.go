package library

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a library from the mini library format (MLF), a small
// liberty-inspired text format:
//
//	library(mylib) {
//	    wire_load { c0 0.6; c1 0.35; }
//	    cell(INV) {
//	        pin(A) { dir input; cap 1.0; }
//	        pin(Z) { dir output; function "!A"; }
//	        arc(A Z) { kind comb; unate negative; intrinsic 0.04; slope 0.009; }
//	    }
//	    cell(DFF) {
//	        sequential;
//	        pin(CP) { dir input; clock; cap 1.2; }
//	        pin(D)  { dir input; cap 1.0; }
//	        pin(Q)  { dir output; }
//	        arc(CP Q) { kind launch; intrinsic 0.18; slope 0.014; }
//	        arc(D CP) { kind setup; margin 0.08; }
//	        arc(D CP) { kind hold;  margin 0.03; }
//	    }
//	}
//
// Statements end with ';' or a newline; '#' and '//' start comments.
func Parse(src string) (*Library, error) {
	p := &mlfParser{toks: mlfTokenize(src)}
	lib, err := p.parseLibrary()
	if err != nil {
		return nil, err
	}
	return lib, nil
}

type mlfTok struct {
	text string
	line int
}

func mlfTokenize(src string) []mlfTok {
	var toks []mlfTok
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r' || c == ';':
			i++
		case c == '#' || (c == '/' && i+1 < n && src[i+1] == '/'):
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '(' || c == ')' || c == '{' || c == '}':
			toks = append(toks, mlfTok{string(c), line})
			i++
		case c == '"':
			j := i + 1
			for j < n && src[j] != '"' {
				j++
			}
			toks = append(toks, mlfTok{src[i+1 : j], line})
			if j < n {
				j++
			}
			i = j
		default:
			j := i
			for j < n && !strings.ContainsRune(" \t\r\n(){};#\"", rune(src[j])) {
				j++
			}
			toks = append(toks, mlfTok{src[i:j], line})
			i = j
		}
	}
	return toks
}

type mlfParser struct {
	toks []mlfTok
	pos  int
}

func (p *mlfParser) errf(format string, args ...any) error {
	line := 0
	if p.pos < len(p.toks) {
		line = p.toks[p.pos].line
	} else if len(p.toks) > 0 {
		line = p.toks[len(p.toks)-1].line
	}
	return fmt.Errorf("mlf line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *mlfParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos].text
	}
	return ""
}

func (p *mlfParser) next() (string, error) {
	if p.pos >= len(p.toks) {
		return "", p.errf("unexpected end of input")
	}
	t := p.toks[p.pos].text
	p.pos++
	return t, nil
}

func (p *mlfParser) expect(tok string) error {
	got, err := p.next()
	if err != nil {
		return err
	}
	if got != tok {
		p.pos--
		return p.errf("expected %q, got %q", tok, got)
	}
	return nil
}

// parseHeader parses name(arg1 arg2 ...) and returns the args.
func (p *mlfParser) parseHeader() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []string
	for p.peek() != ")" {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		args = append(args, t)
	}
	return args, p.expect(")")
}

func (p *mlfParser) parseFloat() (float64, error) {
	t, err := p.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		p.pos--
		return 0, p.errf("expected number, got %q", t)
	}
	return v, nil
}

func (p *mlfParser) parseLibrary() (*Library, error) {
	if err := p.expect("library"); err != nil {
		return nil, err
	}
	args, err := p.parseHeader()
	if err != nil {
		return nil, err
	}
	if len(args) != 1 {
		return nil, p.errf("library wants one name argument")
	}
	lib := NewLibrary(args[0], WireLoad{})
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case "}":
			p.pos++
			return lib, nil
		case "wire_load":
			p.pos++
			if err := p.parseWireLoad(lib); err != nil {
				return nil, err
			}
		case "cell":
			p.pos++
			c, err := p.parseCell()
			if err != nil {
				return nil, err
			}
			if err := lib.Add(c); err != nil {
				return nil, p.errf("%v", err)
			}
		case "":
			return nil, p.errf("unterminated library block")
		default:
			return nil, p.errf("unexpected token %q in library block", p.peek())
		}
	}
}

func (p *mlfParser) parseWireLoad(lib *Library) error {
	if err := p.expect("{"); err != nil {
		return err
	}
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		switch t {
		case "}":
			return nil
		case "c0":
			if lib.WireLoad.C0, err = p.parseFloat(); err != nil {
				return err
			}
		case "c1":
			if lib.WireLoad.C1, err = p.parseFloat(); err != nil {
				return err
			}
		default:
			return p.errf("unexpected token %q in wire_load", t)
		}
	}
}

func (p *mlfParser) parseCell() (*Cell, error) {
	args, err := p.parseHeader()
	if err != nil {
		return nil, err
	}
	if len(args) != 1 {
		return nil, p.errf("cell wants one name argument")
	}
	c := &Cell{Name: args[0], Functions: map[string]Expr{}}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t {
		case "}":
			return c, nil
		case "sequential":
			c.Sequential = true
		case "latch":
			c.Sequential = true
			c.Level = true
		case "pin":
			if err := p.parsePin(c); err != nil {
				return nil, err
			}
		case "arc":
			if err := p.parseArc(c); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected token %q in cell %s", t, c.Name)
		}
	}
}

func (p *mlfParser) parsePin(c *Cell) error {
	args, err := p.parseHeader()
	if err != nil {
		return err
	}
	if len(args) != 1 {
		return p.errf("pin wants one name argument")
	}
	pin := Pin{Name: args[0]}
	if err := p.expect("{"); err != nil {
		return err
	}
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		switch t {
		case "}":
			c.Pins = append(c.Pins, pin)
			return nil
		case "dir":
			d, err := p.next()
			if err != nil {
				return err
			}
			switch d {
			case "input":
				pin.Dir = Input
			case "output":
				pin.Dir = Output
			default:
				return p.errf("bad pin direction %q", d)
			}
		case "clock":
			pin.Clock = true
		case "cap":
			if pin.Cap, err = p.parseFloat(); err != nil {
				return err
			}
		case "function":
			f, err := p.next()
			if err != nil {
				return err
			}
			e, err := ParseExpr(f)
			if err != nil {
				return p.errf("%v", err)
			}
			c.Functions[pin.Name] = e
		default:
			return p.errf("unexpected token %q in pin %s", t, pin.Name)
		}
	}
}

func (p *mlfParser) parseArc(c *Cell) error {
	args, err := p.parseHeader()
	if err != nil {
		return err
	}
	if len(args) != 2 {
		return p.errf("arc wants (from to) arguments")
	}
	a := Arc{From: args[0], To: args[1]}
	if err := p.expect("{"); err != nil {
		return err
	}
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		switch t {
		case "}":
			c.Arcs = append(c.Arcs, a)
			return nil
		case "kind":
			k, err := p.next()
			if err != nil {
				return err
			}
			switch k {
			case "comb":
				a.Kind = CombArc
			case "launch":
				a.Kind = LaunchArc
			case "setup":
				a.Kind = SetupArc
			case "hold":
				a.Kind = HoldArc
			default:
				return p.errf("bad arc kind %q", k)
			}
		case "unate":
			u, err := p.next()
			if err != nil {
				return err
			}
			switch u {
			case "positive":
				a.Unate = PositiveUnate
			case "negative":
				a.Unate = NegativeUnate
			case "nonunate":
				a.Unate = NonUnate
			default:
				return p.errf("bad unateness %q", u)
			}
		case "intrinsic":
			if a.Intrinsic, err = p.parseFloat(); err != nil {
				return err
			}
		case "slope":
			if a.Slope, err = p.parseFloat(); err != nil {
				return err
			}
		case "margin":
			if a.Margin, err = p.parseFloat(); err != nil {
				return err
			}
		default:
			return p.errf("unexpected token %q in arc", t)
		}
	}
}

// Format renders a library back to MLF text, primarily for tooling and
// round-trip tests.
func Format(l *Library) string {
	var b strings.Builder
	fmt.Fprintf(&b, "library(%s) {\n", l.Name)
	fmt.Fprintf(&b, "  wire_load { c0 %g; c1 %g; }\n", l.WireLoad.C0, l.WireLoad.C1)
	for _, name := range l.Cells() {
		c := l.Cell(name)
		fmt.Fprintf(&b, "  cell(%s) {\n", c.Name)
		if c.Level {
			b.WriteString("    latch;\n")
		} else if c.Sequential {
			b.WriteString("    sequential;\n")
		}
		for _, pin := range c.Pins {
			fmt.Fprintf(&b, "    pin(%s) { dir %s;", pin.Name, pin.Dir)
			if pin.Clock {
				b.WriteString(" clock;")
			}
			if pin.Cap != 0 {
				fmt.Fprintf(&b, " cap %g;", pin.Cap)
			}
			if f, ok := c.Functions[pin.Name]; ok {
				fmt.Fprintf(&b, " function %q;", f.String())
			}
			b.WriteString(" }\n")
		}
		for _, a := range c.Arcs {
			fmt.Fprintf(&b, "    arc(%s %s) { kind %s;", a.From, a.To, a.Kind)
			switch a.Kind {
			case CombArc, LaunchArc:
				fmt.Fprintf(&b, " unate %s; intrinsic %g; slope %g;", a.Unate, a.Intrinsic, a.Slope)
			case SetupArc, HoldArc:
				fmt.Fprintf(&b, " margin %g;", a.Margin)
			}
			b.WriteString(" }\n")
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}
