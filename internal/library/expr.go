package library

import (
	"fmt"
	"strings"
)

// Expr is a boolean function over cell input pins, evaluated in
// three-valued logic for case-analysis constant propagation.
type Expr interface {
	// Eval computes the output level given a lookup for input pin levels.
	Eval(in func(pin string) Logic) Logic
	// Sensitive reports whether the output can change when the target pin
	// toggles, given the other inputs' levels — the arc sensitization
	// test constant propagation uses to kill arcs from unselected mux
	// inputs or gated-off gate inputs. It is pessimistic: it returns true
	// whenever sensitivity cannot be ruled out.
	Sensitive(target string, in func(pin string) Logic) bool
	// Vars appends the referenced pin names to dst.
	Vars(dst []string) []string
	// String renders the function in mini-library syntax.
	String() string
}

// VarExpr references an input pin.
type VarExpr string

// Eval implements Expr.
func (v VarExpr) Eval(in func(string) Logic) Logic { return in(string(v)) }

// Sensitive implements Expr.
func (v VarExpr) Sensitive(target string, _ func(string) Logic) bool {
	return string(v) == target
}

// Vars implements Expr.
func (v VarExpr) Vars(dst []string) []string { return append(dst, string(v)) }

func (v VarExpr) String() string { return string(v) }

// ConstExpr is a constant level (TIEHI / TIELO outputs).
type ConstExpr Logic

// Eval implements Expr.
func (c ConstExpr) Eval(func(string) Logic) Logic { return Logic(c) }

// Sensitive implements Expr.
func (c ConstExpr) Sensitive(string, func(string) Logic) bool { return false }

// Vars implements Expr.
func (c ConstExpr) Vars(dst []string) []string { return dst }

func (c ConstExpr) String() string { return Logic(c).String() }

// NotExpr is logical negation.
type NotExpr struct{ X Expr }

// Eval implements Expr.
func (n NotExpr) Eval(in func(string) Logic) Logic { return n.X.Eval(in).Not() }

// Sensitive implements Expr.
func (n NotExpr) Sensitive(target string, in func(string) Logic) bool {
	return n.X.Sensitive(target, in)
}

// Vars implements Expr.
func (n NotExpr) Vars(dst []string) []string { return n.X.Vars(dst) }

func (n NotExpr) String() string { return "!" + paren(n.X) }

// AndExpr is an n-ary AND.
type AndExpr []Expr

// Eval implements Expr: 0 dominates, else X dominates, else 1.
func (a AndExpr) Eval(in func(string) Logic) Logic {
	out := L1
	for _, x := range a {
		switch x.Eval(in) {
		case L0:
			return L0
		case LX:
			out = LX
		}
	}
	return out
}

// Sensitive implements Expr: a controlling 0 on any other term blocks the
// target.
func (a AndExpr) Sensitive(target string, in func(string) Logic) bool {
	sensitive := false
	for _, x := range a {
		if x.Sensitive(target, in) {
			sensitive = true
		} else if x.Eval(in) == L0 {
			return false
		}
	}
	return sensitive
}

// Vars implements Expr.
func (a AndExpr) Vars(dst []string) []string {
	for _, x := range a {
		dst = x.Vars(dst)
	}
	return dst
}

func (a AndExpr) String() string { return joinOp(a, "&") }

// OrExpr is an n-ary OR.
type OrExpr []Expr

// Eval implements Expr: 1 dominates, else X dominates, else 0.
func (o OrExpr) Eval(in func(string) Logic) Logic {
	out := L0
	for _, x := range o {
		switch x.Eval(in) {
		case L1:
			return L1
		case LX:
			out = LX
		}
	}
	return out
}

// Sensitive implements Expr: a controlling 1 on any other term blocks the
// target.
func (o OrExpr) Sensitive(target string, in func(string) Logic) bool {
	sensitive := false
	for _, x := range o {
		if x.Sensitive(target, in) {
			sensitive = true
		} else if x.Eval(in) == L1 {
			return false
		}
	}
	return sensitive
}

// Vars implements Expr.
func (o OrExpr) Vars(dst []string) []string {
	for _, x := range o {
		dst = x.Vars(dst)
	}
	return dst
}

func (o OrExpr) String() string { return joinOp(o, "|") }

// XorExpr is a two-input XOR.
type XorExpr struct{ A, B Expr }

// Eval implements Expr: X if either side unknown.
func (x XorExpr) Eval(in func(string) Logic) Logic {
	a, b := x.A.Eval(in), x.B.Eval(in)
	if !a.Known() || !b.Known() {
		return LX
	}
	if a != b {
		return L1
	}
	return L0
}

// Sensitive implements Expr: xor never blocks.
func (x XorExpr) Sensitive(target string, in func(string) Logic) bool {
	return x.A.Sensitive(target, in) || x.B.Sensitive(target, in)
}

// Vars implements Expr.
func (x XorExpr) Vars(dst []string) []string { return x.B.Vars(x.A.Vars(dst)) }

func (x XorExpr) String() string { return paren(x.A) + "^" + paren(x.B) }

// MuxExpr selects A when S=0, B when S=1. When S is unknown the output is
// known only if both data inputs agree on a constant.
type MuxExpr struct{ S, A, B Expr }

// Eval implements Expr.
func (m MuxExpr) Eval(in func(string) Logic) Logic {
	s := m.S.Eval(in)
	switch s {
	case L0:
		return m.A.Eval(in)
	case L1:
		return m.B.Eval(in)
	default:
		a, b := m.A.Eval(in), m.B.Eval(in)
		if a.Known() && a == b {
			return a
		}
		return LX
	}
}

// Sensitive implements Expr: a constant select deselects one data leg;
// select sensitivity requires the data legs to possibly differ.
func (m MuxExpr) Sensitive(target string, in func(string) Logic) bool {
	switch m.S.Eval(in) {
	case L0:
		return m.A.Sensitive(target, in)
	case L1:
		return m.B.Sensitive(target, in)
	default:
		if m.S.Sensitive(target, in) {
			a, b := m.A.Eval(in), m.B.Eval(in)
			if !(a.Known() && a == b) {
				return true
			}
		}
		return m.A.Sensitive(target, in) || m.B.Sensitive(target, in)
	}
}

// Vars implements Expr.
func (m MuxExpr) Vars(dst []string) []string { return m.B.Vars(m.A.Vars(m.S.Vars(dst))) }

func (m MuxExpr) String() string {
	return fmt.Sprintf("mux(%s,%s,%s)", m.S.String(), m.A.String(), m.B.String())
}

func paren(e Expr) string {
	switch e.(type) {
	case VarExpr, ConstExpr, NotExpr:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

func joinOp(es []Expr, op string) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = paren(e)
	}
	return strings.Join(parts, op)
}

// ParseExpr parses a boolean function in the mini-library syntax:
// identifiers, ! & | ^ parentheses, the constants 0 and 1, and
// mux(S,A,B). Operator precedence: ! > & > ^ > |.
func ParseExpr(s string) (Expr, error) {
	p := &exprParser{src: s}
	e, err := p.parseOr()
	if err != nil {
		return nil, fmt.Errorf("function %q: %w", s, err)
	}
	p.skip()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("function %q: trailing %q", s, p.src[p.pos:])
	}
	return e, nil
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) parseOr() (Expr, error) {
	e, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	terms := []Expr{e}
	for {
		p.skip()
		if p.pos >= len(p.src) || (p.src[p.pos] != '|' && p.src[p.pos] != '+') {
			break
		}
		p.pos++
		t, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return OrExpr(terms), nil
}

func (p *exprParser) parseXor() (Expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if p.pos >= len(p.src) || p.src[p.pos] != '^' {
			return e, nil
		}
		p.pos++
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		e = XorExpr{A: e, B: r}
	}
}

func (p *exprParser) parseAnd() (Expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	terms := []Expr{e}
	for {
		p.skip()
		if p.pos >= len(p.src) || (p.src[p.pos] != '&' && p.src[p.pos] != '*') {
			break
		}
		p.pos++
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return AndExpr(terms), nil
}

func (p *exprParser) parseUnary() (Expr, error) {
	p.skip()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("unexpected end of function")
	}
	switch p.src[p.pos] {
	case '!', '~':
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NotExpr{X: e}, nil
	case '(':
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("missing )")
		}
		p.pos++
		return e, nil
	case '0':
		p.pos++
		return ConstExpr(L0), nil
	case '1':
		p.pos++
		return ConstExpr(L1), nil
	}
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	if start == p.pos {
		return nil, fmt.Errorf("unexpected character %q", p.src[p.pos])
	}
	name := p.src[start:p.pos]
	if name == "mux" {
		p.skip()
		if p.pos < len(p.src) && p.src[p.pos] == '(' {
			p.pos++
			s, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(','); err != nil {
				return nil, err
			}
			a, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(','); err != nil {
				return nil, err
			}
			b, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(')'); err != nil {
				return nil, err
			}
			return MuxExpr{S: s, A: a, B: b}, nil
		}
	}
	return VarExpr(name), nil
}

func (p *exprParser) expect(c byte) error {
	p.skip()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
