package library

import (
	"testing"
	"testing/quick"
)

func TestLogicNot(t *testing.T) {
	if L0.Not() != L1 || L1.Not() != L0 || LX.Not() != LX {
		t.Error("Not truth table wrong")
	}
	if L0.String() != "0" || L1.String() != "1" || LX.String() != "X" {
		t.Error("String values wrong")
	}
}

func levels(m map[string]Logic) func(string) Logic {
	return func(p string) Logic {
		if v, ok := m[p]; ok {
			return v
		}
		return LX
	}
}

func TestExprEval(t *testing.T) {
	cases := []struct {
		fn   string
		in   map[string]Logic
		want Logic
	}{
		{"A&B", map[string]Logic{"A": L1, "B": L1}, L1},
		{"A&B", map[string]Logic{"A": L0}, L0},          // 0 dominates AND even with X
		{"A&B", map[string]Logic{"A": L1}, LX},          // 1 AND X = X
		{"A|B", map[string]Logic{"A": L1}, L1},          // 1 dominates OR even with X
		{"A|B", map[string]Logic{"A": L0}, LX},          // 0 OR X = X
		{"A|B", map[string]Logic{"A": L0, "B": L0}, L0}, // 0 OR 0
		{"!A", map[string]Logic{"A": L1}, L0},
		{"!A", map[string]Logic{}, LX},
		{"A^B", map[string]Logic{"A": L1, "B": L0}, L1},
		{"A^B", map[string]Logic{"A": L1}, LX},
		{"!(A&B)|C", map[string]Logic{"C": L1}, L1},
		{"mux(S,A,B)", map[string]Logic{"S": L0, "A": L1}, L1},
		{"mux(S,A,B)", map[string]Logic{"S": L1, "B": L0}, L0},
		{"mux(S,A,B)", map[string]Logic{"A": L1, "B": L1}, L1}, // X select, agreeing data
		{"mux(S,A,B)", map[string]Logic{"A": L1, "B": L0}, LX},
		{"0", nil, L0},
		{"1", nil, L1},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.fn)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", c.fn, err)
		}
		if got := e.Eval(levels(c.in)); got != c.want {
			t.Errorf("%s with %v = %v, want %v", c.fn, c.in, got, c.want)
		}
	}
}

func TestExprPrecedence(t *testing.T) {
	// ! > & > ^ > |
	e, err := ParseExpr("A|B&C")
	if err != nil {
		t.Fatal(err)
	}
	// A=0 B=1 C=0: if parsed (A|B)&C -> 0; A|(B&C) -> 0. Use A=1: (1|B)&0=0 vs 1|(..)=1.
	got := e.Eval(levels(map[string]Logic{"A": L1, "B": L1, "C": L0}))
	if got != L1 {
		t.Errorf("A|B&C misparsed: got %v", got)
	}
	e2, _ := ParseExpr("!A&B")
	got = e2.Eval(levels(map[string]Logic{"A": L0, "B": L1}))
	if got != L1 {
		t.Errorf("!A&B misparsed: got %v", got)
	}
}

func TestExprVars(t *testing.T) {
	e, err := ParseExpr("mux(S,!A,B&C)")
	if err != nil {
		t.Fatal(err)
	}
	vars := e.Vars(nil)
	want := map[string]bool{"S": true, "A": true, "B": true, "C": true}
	if len(vars) != 4 {
		t.Fatalf("vars = %v", vars)
	}
	for _, v := range vars {
		if !want[v] {
			t.Errorf("unexpected var %q", v)
		}
	}
}

func TestExprParseErrors(t *testing.T) {
	for _, bad := range []string{"", "A&", "(A", "A)", "&A", "mux(A,B)", "A %% B"} {
		if _, err := ParseExpr(bad); err == nil {
			t.Errorf("ParseExpr(%q): expected error", bad)
		}
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	for _, fn := range []string{"A&B", "!(A|B)", "A^B", "mux(S,I0,I1)", "!((A&B)|C)", "A&B&C&D"} {
		e, err := ParseExpr(fn)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := ParseExpr(e.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", e.String(), fn, err)
		}
		// Equivalence check over all input assignments in {0,1,X}^vars.
		vars := dedup(e.Vars(nil))
		if len(vars) > 4 {
			t.Fatalf("too many vars in test fn %q", fn)
		}
		assign := make(map[string]Logic)
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == len(vars) {
				return e.Eval(levels(assign)) == e2.Eval(levels(assign))
			}
			for _, l := range []Logic{L0, L1, LX} {
				assign[vars[i]] = l
				if !rec(i + 1) {
					return false
				}
			}
			return true
		}
		if !rec(0) {
			t.Errorf("round trip of %q changed semantics (printed %q)", fn, e.String())
		}
	}
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func TestDefaultLibrary(t *testing.T) {
	l := Default()
	for _, name := range []string{"INV", "BUF", "AND2", "NAND2", "OR2", "NOR2", "XOR2",
		"MUX2", "MUX4", "DFF", "SDFF", "DFFR", "LATCH", "ICG", "TIEHI", "TIELO", "CLKBUF"} {
		if l.Cell(name) == nil {
			t.Errorf("default library missing %s", name)
		}
	}
	dffc := l.Cell("DFF")
	if !dffc.Sequential {
		t.Error("DFF not sequential")
	}
	if dffc.ClockPin() != "CP" {
		t.Errorf("DFF clock pin = %q", dffc.ClockPin())
	}
	dp := dffc.DataPins()
	if len(dp) != 1 || dp[0] != "D" {
		t.Errorf("DFF data pins = %v", dp)
	}
	sdff := l.Cell("SDFF")
	if got := sdff.DataPins(); len(got) != 3 {
		t.Errorf("SDFF data pins = %v", got)
	}
	if l.Cell("MUX2").Pin("S") == nil {
		t.Error("MUX2 missing S pin")
	}
}

func TestDefaultLibraryFunctions(t *testing.T) {
	l := Default()
	and2 := l.Cell("AND2").Functions["Z"]
	if and2.Eval(levels(map[string]Logic{"A": L1, "B": L0})) != L0 {
		t.Error("AND2 function wrong")
	}
	icg := l.Cell("ICG").Functions["GCK"]
	if icg.Eval(levels(map[string]Logic{"EN": L0})) != L0 {
		t.Error("ICG with EN=0 must force GCK=0")
	}
	tiehi := l.Cell("TIEHI").Functions["Z"]
	if tiehi.Eval(levels(nil)) != L1 {
		t.Error("TIEHI must output 1")
	}
}

func TestCellValidation(t *testing.T) {
	l := NewLibrary("t", WireLoad{})
	bad := &Cell{Name: "BAD",
		Pins: []Pin{{Name: "A", Dir: Input}, {Name: "A", Dir: Output}}}
	if err := l.Add(bad); err == nil {
		t.Error("duplicate pin accepted")
	}
	bad2 := &Cell{Name: "BAD2",
		Pins: []Pin{{Name: "A", Dir: Input}, {Name: "Z", Dir: Output}},
		Arcs: []Arc{{From: "A", To: "NOPE", Kind: CombArc}}}
	if err := l.Add(bad2); err == nil {
		t.Error("arc to unknown pin accepted")
	}
	bad3 := &Cell{Name: "BAD3",
		Pins: []Pin{{Name: "A", Dir: Input}, {Name: "Z", Dir: Output}},
		Arcs: []Arc{{From: "Z", To: "A", Kind: CombArc}}}
	if err := l.Add(bad3); err == nil {
		t.Error("output->input comb arc accepted")
	}
	ok := &Cell{Name: "OK", Pins: []Pin{{Name: "A", Dir: Input}, {Name: "Z", Dir: Output}},
		Arcs: []Arc{{From: "A", To: "Z", Kind: CombArc}}}
	if err := l.Add(ok); err != nil {
		t.Errorf("valid cell rejected: %v", err)
	}
	if err := l.Add(ok); err == nil {
		t.Error("duplicate cell accepted")
	}
}

func TestWireLoad(t *testing.T) {
	wl := WireLoad{C0: 1, C1: 0.5}
	if wl.Cap(0) != 0 {
		t.Error("zero fanout must have zero wire cap")
	}
	if wl.Cap(2) != 2 {
		t.Errorf("Cap(2) = %g, want 2", wl.Cap(2))
	}
}

func TestArcDelayMonotonic(t *testing.T) {
	f := func(load1, load2 float64) bool {
		if load1 < 0 || load2 < 0 {
			return true
		}
		a := &Arc{Intrinsic: 0.1, Slope: 0.01}
		if load1 <= load2 {
			return ArcDelay(a, load1) <= ArcDelay(a, load2)
		}
		return ArcDelay(a, load1) >= ArcDelay(a, load2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMLFRoundTrip(t *testing.T) {
	src := Format(Default())
	lib, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(Format(Default())): %v", err)
	}
	if len(lib.Cells()) != len(Default().Cells()) {
		t.Fatalf("cell count %d != %d", len(lib.Cells()), len(Default().Cells()))
	}
	for _, name := range Default().Cells() {
		orig, got := Default().Cell(name), lib.Cell(name)
		if got == nil {
			t.Errorf("missing cell %s after round trip", name)
			continue
		}
		if len(got.Pins) != len(orig.Pins) || len(got.Arcs) != len(orig.Arcs) {
			t.Errorf("cell %s: pins/arcs %d/%d != %d/%d", name,
				len(got.Pins), len(got.Arcs), len(orig.Pins), len(orig.Arcs))
		}
		if got.Sequential != orig.Sequential {
			t.Errorf("cell %s: sequential flag lost", name)
		}
		if len(got.Functions) != len(orig.Functions) {
			t.Errorf("cell %s: functions lost", name)
		}
	}
	if lib.WireLoad != Default().WireLoad {
		t.Errorf("wire load %+v != %+v", lib.WireLoad, Default().WireLoad)
	}
}

func TestMLFParseErrors(t *testing.T) {
	bad := []string{
		``,
		`library() {}`,
		`library(x) { cell(A) }`,
		`library(x) { cell(A) { pin(P) { dir sideways; } } }`,
		`library(x) { cell(A) { arc(A) { } } }`,
		`library(x) { bogus }`,
		`library(x) { wire_load { c0 nan_x; } }`,
		`library(x) { cell(A) { pin(Z) { dir output; function "&&"; } } }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestMLFComments(t *testing.T) {
	src := `
# full line comment
library(c) { // trailing comment
  wire_load { c0 1; c1 2; }
  cell(B) {
    pin(A) { dir input; cap 1; }
    pin(Z) { dir output; function "A"; }
    arc(A Z) { kind comb; unate positive; intrinsic 0.1; slope 0.01; }
  }
}`
	lib, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Cell("B") == nil {
		t.Error("cell B missing")
	}
}

func TestSensitive(t *testing.T) {
	cases := []struct {
		fn     string
		target string
		in     map[string]Logic
		want   bool
	}{
		{"A&B", "A", map[string]Logic{"B": L1}, true},
		{"A&B", "A", map[string]Logic{"B": L0}, false}, // gated by controlling 0
		{"A&B", "A", nil, true},                        // B unknown: pessimistic
		{"A|B", "A", map[string]Logic{"B": L1}, false}, // gated by controlling 1
		{"A|B", "A", map[string]Logic{"B": L0}, true},
		{"A^B", "A", map[string]Logic{"B": L1}, true}, // xor never blocks
		{"!A", "A", nil, true},
		{"B", "A", nil, false},                                   // not referenced
		{"mux(S,I0,I1)", "I0", map[string]Logic{"S": L1}, false}, // deselected
		{"mux(S,I0,I1)", "I0", map[string]Logic{"S": L0}, true},
		{"mux(S,I0,I1)", "I0", nil, true},
		{"mux(S,I0,I1)", "S", map[string]Logic{"I0": L1, "I1": L1}, false}, // legs agree
		{"mux(S,I0,I1)", "S", map[string]Logic{"I0": L1, "I1": L0}, true},
		{"!((A&B)|C)", "A", map[string]Logic{"C": L1}, false}, // OR gated
		{"!((A&B)|C)", "A", map[string]Logic{"B": L1, "C": L0}, true},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.fn)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Sensitive(c.target, levels(c.in)); got != c.want {
			t.Errorf("Sensitive(%s, %s, %v) = %v, want %v", c.fn, c.target, c.in, got, c.want)
		}
	}
}
