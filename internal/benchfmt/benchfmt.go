// Package benchfmt defines the schema of the BENCH_modemerge.json
// benchmark artifact — shared by the harness that writes it (the root
// package's TestWriteBenchArtifact) and the perf-regression sentinel
// that diffs two of them (cmd/benchdiff) — plus the diff engine itself.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// StageEntry is one per-stage row of the artifact, folded from the obs
// span totals of a traced run.
type StageEntry struct {
	Stage      string `json:"stage"`
	Count      int64  `json:"count"`
	TotalNS    int64  `json:"total_ns"`
	AllocBytes int64  `json:"alloc_bytes"`
}

// ParallelEntry is one worker-count scaling datapoint: untraced MergeAll
// at a fixed core.Options.Parallelism, with the speedup against the
// sequential (workers=1) run of the same design. HostCPUs and
// GOMAXPROCS record the hardware and scheduler width the datapoint ran
// under — scaling numbers are meaningless without them.
type ParallelEntry struct {
	Workers    int     `json:"workers"`
	NsPerOp    int64   `json:"ns_per_op"`
	Speedup    float64 `json:"speedup_vs_sequential"`
	HostCPUs   int     `json:"host_cpus,omitempty"`
	GOMAXPROCS int     `json:"gomaxprocs,omitempty"`
}

// DesignEntry is one design-size section of the artifact.
// TraceOverheadPct is clamped at zero — on noisy runners the traced run
// regularly measures faster than the untraced one, and a negative
// overhead is measurement noise, not a real speedup; the raw unclamped
// value is kept alongside for honesty.
type DesignEntry struct {
	Design              string          `json:"design"`
	Cells               int             `json:"cells"`
	Modes               int             `json:"modes"`
	NsPerOp             int64           `json:"ns_per_op"`
	AllocsPerOp         int64           `json:"allocs_per_op"`
	BytesPerOp          int64           `json:"bytes_per_op"`
	UntracedNsPerOp     int64           `json:"untraced_ns_per_op"`
	TraceOverheadPct    float64         `json:"trace_overhead_pct"`
	TraceOverheadRawPct float64         `json:"trace_overhead_raw_pct,omitempty"`
	Parallel            []ParallelEntry `json:"parallel"`
	Stages              []StageEntry    `json:"stages"`
}

// IncrementalEntry records the incremental re-merge datapoint: a
// one-mode edit re-merged through a warm sub-merge cache versus the
// same merge cold.
type IncrementalEntry struct {
	Design       string  `json:"design"`
	Modes        int     `json:"modes"`
	ColdNsPerOp  int64   `json:"cold_ns_per_op"`
	WarmNsPerOp  int64   `json:"warm_ns_per_op"`
	SpeedupXCold float64 `json:"speedup_vs_cold"`
}

// HierEntry is one hierarchical datapoint: per-master ETM extraction
// cost plus hierarchical and flat merge wall time on the same flattened
// design.
type HierEntry struct {
	Design         string  `json:"design"`
	Cells          int     `json:"cells"`
	Blocks         int     `json:"blocks"`
	Masters        int     `json:"masters"`
	Modes          int     `json:"modes"`
	ExtractNsPerOp int64   `json:"extract_ns_per_op"`
	FlatNsPerOp    int64   `json:"flat_ns_per_op"`
	HierNsPerOp    int64   `json:"hier_ns_per_op"`
	HierVsFlat     float64 `json:"hier_vs_flat"`
}

// Artifact is the whole BENCH_modemerge.json document.
type Artifact struct {
	GeneratedUnix int64             `json:"generated_unix"`
	GoVersion     string            `json:"go_version"`
	NumCPU        int               `json:"num_cpu"`
	GOMAXPROCS    int               `json:"gomaxprocs,omitempty"`
	Designs       []DesignEntry     `json:"designs"`
	Incremental   *IncrementalEntry `json:"incremental,omitempty"`
	Hierarchical  []HierEntry       `json:"hierarchical,omitempty"`
}

// ReadArtifact loads one artifact from disk.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}
