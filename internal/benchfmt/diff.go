package benchfmt

import (
	"fmt"
	"io"
	"sort"
)

// DiffOptions tunes the regression verdict.
type DiffOptions struct {
	// Tolerance is the relative slowdown a metric may show before it
	// counts as a regression (0.10 = 10%). Default 0.10.
	Tolerance float64
	// MinDeltaNS is the absolute floor: a slowdown smaller than this many
	// nanoseconds is never a regression, no matter the ratio — tiny
	// stages jitter by large percentages on shared runners. Default
	// 50000 (50µs).
	MinDeltaNS int64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Tolerance <= 0 {
		o.Tolerance = 0.10
	}
	if o.MinDeltaNS <= 0 {
		o.MinDeltaNS = 50_000
	}
	return o
}

// Row is one compared metric.
type Row struct {
	// Metric names the datapoint: "<design>/<metric>" or
	// "<design>/stage/<stage>" or "<design>/J<workers>".
	Metric     string
	OldNS      int64
	NewNS      int64
	DeltaPct   float64 // (new-old)/old * 100; 0 when old is 0
	Regression bool
	Missing    bool // present in one artifact only; never a regression
}

// Report is the outcome of diffing two artifacts.
type Report struct {
	Tolerance  float64
	MinDeltaNS int64
	Rows       []Row
}

// HasRegressions reports whether any row regressed.
func (r *Report) HasRegressions() bool {
	for _, row := range r.Rows {
		if row.Regression {
			return true
		}
	}
	return false
}

// Regressions returns only the regressed rows.
func (r *Report) Regressions() []Row {
	var out []Row
	for _, row := range r.Rows {
		if row.Regression {
			out = append(out, row)
		}
	}
	return out
}

// Diff compares two artifacts metric by metric — per design × stage ×
// worker count, plus the incremental and hierarchical datapoints — and
// flags each new time that is slower than the old by more than the
// relative tolerance AND the absolute floor. Metrics present in only
// one artifact (a design or stage added or removed) are reported but
// never regressions: schema growth is not a slowdown.
func Diff(old, new_ *Artifact, opts DiffOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{Tolerance: opts.Tolerance, MinDeltaNS: opts.MinDeltaNS}

	add := func(metric string, oldNS, newNS int64, both bool) {
		row := Row{Metric: metric, OldNS: oldNS, NewNS: newNS, Missing: !both}
		if both {
			delta := newNS - oldNS
			if oldNS > 0 {
				row.DeltaPct = float64(delta) / float64(oldNS) * 100
			}
			row.Regression = oldNS > 0 && delta > opts.MinDeltaNS &&
				float64(delta) > float64(oldNS)*opts.Tolerance
		}
		rep.Rows = append(rep.Rows, row)
	}

	oldDesigns := map[string]DesignEntry{}
	for _, d := range old.Designs {
		oldDesigns[d.Design] = d
	}
	newDesigns := map[string]DesignEntry{}
	for _, d := range new_.Designs {
		newDesigns[d.Design] = d
	}
	for _, name := range unionKeys(oldDesigns, newDesigns) {
		od, oldOK := oldDesigns[name]
		nd, newOK := newDesigns[name]
		both := oldOK && newOK
		add(name+"/traced", od.NsPerOp, nd.NsPerOp, both)
		add(name+"/untraced", od.UntracedNsPerOp, nd.UntracedNsPerOp, both)

		oldPar := map[int]ParallelEntry{}
		for _, p := range od.Parallel {
			oldPar[p.Workers] = p
		}
		newPar := map[int]ParallelEntry{}
		for _, p := range nd.Parallel {
			newPar[p.Workers] = p
		}
		for _, w := range unionKeys(oldPar, newPar) {
			op, ook := oldPar[w]
			np, nok := newPar[w]
			add(fmt.Sprintf("%s/J%d", name, w), op.NsPerOp, np.NsPerOp, both && ook && nok)
		}

		// Stage totals come from one traced run each; compare
		// per-invocation averages so a count change does not read as a
		// slowdown.
		oldStages := map[string]StageEntry{}
		for _, st := range od.Stages {
			oldStages[st.Stage] = st
		}
		newStages := map[string]StageEntry{}
		for _, st := range nd.Stages {
			newStages[st.Stage] = st
		}
		perOp := func(st StageEntry) int64 {
			if st.Count <= 0 {
				return st.TotalNS
			}
			return st.TotalNS / st.Count
		}
		for _, stage := range unionKeys(oldStages, newStages) {
			os_, ook := oldStages[stage]
			ns, nok := newStages[stage]
			add(name+"/stage/"+stage, perOp(os_), perOp(ns), both && ook && nok)
		}
	}

	if old.Incremental != nil || new_.Incremental != nil {
		var oi, ni IncrementalEntry
		both := old.Incremental != nil && new_.Incremental != nil
		if old.Incremental != nil {
			oi = *old.Incremental
		}
		if new_.Incremental != nil {
			ni = *new_.Incremental
		}
		add("incremental/cold", oi.ColdNsPerOp, ni.ColdNsPerOp, both)
		add("incremental/warm", oi.WarmNsPerOp, ni.WarmNsPerOp, both)
	}

	oldHier := map[string]HierEntry{}
	for _, h := range old.Hierarchical {
		oldHier[h.Design] = h
	}
	newHier := map[string]HierEntry{}
	for _, h := range new_.Hierarchical {
		newHier[h.Design] = h
	}
	for _, name := range unionKeys(oldHier, newHier) {
		oh, ook := oldHier[name]
		nh, nok := newHier[name]
		both := ook && nok
		add("hier/"+name+"/extract", oh.ExtractNsPerOp, nh.ExtractNsPerOp, both)
		add("hier/"+name+"/flat", oh.FlatNsPerOp, nh.FlatNsPerOp, both)
		add("hier/"+name+"/hier", oh.HierNsPerOp, nh.HierNsPerOp, both)
	}

	return rep
}

// unionKeys returns the sorted union of both maps' keys.
func unionKeys[K int | string, V any](a, b map[K]V) []K {
	seen := map[K]bool{}
	var out []K
	for k := range a {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteMarkdown renders the report as a markdown document: a verdict
// line, a table of regressions (when any), and the full metric table.
func (r *Report) WriteMarkdown(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# Benchmark diff\n\n")
	p("Tolerance: %.0f%% relative, %dµs absolute floor.\n\n",
		r.Tolerance*100, r.MinDeltaNS/1000)
	if regs := r.Regressions(); len(regs) > 0 {
		p("**%d regression(s) detected.**\n\n", len(regs))
		p("| metric | old ns/op | new ns/op | delta |\n")
		p("|---|---:|---:|---:|\n")
		for _, row := range regs {
			p("| %s | %d | %d | %+.1f%% |\n", row.Metric, row.OldNS, row.NewNS, row.DeltaPct)
		}
		p("\n")
	} else {
		p("No regressions.\n\n")
	}

	p("<details><summary>All metrics</summary>\n\n")
	p("| metric | old ns/op | new ns/op | delta | status |\n")
	p("|---|---:|---:|---:|---|\n")
	for _, row := range r.Rows {
		status := "ok"
		switch {
		case row.Missing:
			status = "only in one artifact"
		case row.Regression:
			status = "**regression**"
		case row.DeltaPct < -float64(r.Tolerance)*100:
			status = "improved"
		}
		p("| %s | %d | %d | %+.1f%% | %s |\n",
			row.Metric, row.OldNS, row.NewNS, row.DeltaPct, status)
	}
	p("\n</details>\n")
	return err
}
