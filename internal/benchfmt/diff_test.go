package benchfmt

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleArtifact() *Artifact {
	return &Artifact{
		GoVersion:  "go1.24.0",
		NumCPU:     4,
		GOMAXPROCS: 4,
		Designs: []DesignEntry{
			{
				Design:          "small",
				NsPerOp:         2_400_000,
				UntracedNsPerOp: 2_350_000,
				Parallel: []ParallelEntry{
					{Workers: 1, NsPerOp: 2_400_000, Speedup: 1, HostCPUs: 4, GOMAXPROCS: 4},
					{Workers: 2, NsPerOp: 1_400_000, Speedup: 1.71, HostCPUs: 4, GOMAXPROCS: 4},
				},
				Stages: []StageEntry{
					{Stage: "merge_clique", Count: 2, TotalNS: 1_000_000},
					{Stage: "tiny", Count: 1, TotalNS: 8_000},
				},
			},
			{
				Design:          "large",
				NsPerOp:         30_000_000,
				UntracedNsPerOp: 29_000_000,
			},
		},
		Incremental:  &IncrementalEntry{Design: "medium", ColdNsPerOp: 9_000_000, WarmNsPerOp: 2_000_000},
		Hierarchical: []HierEntry{{Design: "hs", ExtractNsPerOp: 500_000, FlatNsPerOp: 4_000_000, HierNsPerOp: 2_000_000}},
	}
}

// TestDiffIdentity: diffing an artifact against itself finds nothing.
func TestDiffIdentity(t *testing.T) {
	art := sampleArtifact()
	rep := Diff(art, art, DiffOptions{})
	if rep.HasRegressions() {
		t.Fatalf("identity diff reports regressions: %+v", rep.Regressions())
	}
	if len(rep.Rows) == 0 {
		t.Fatal("identity diff produced no rows")
	}
}

// TestDiffFlagsInjectedRegression: a 20% slowdown on one design must be
// flagged at 10% tolerance, and only that metric.
func TestDiffFlagsInjectedRegression(t *testing.T) {
	old := sampleArtifact()
	slower := sampleArtifact()
	slower.Designs[0].NsPerOp = old.Designs[0].NsPerOp * 120 / 100

	rep := Diff(old, slower, DiffOptions{Tolerance: 0.10})
	if !rep.HasRegressions() {
		t.Fatal("injected 20% regression not flagged")
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Metric != "small/traced" {
		t.Fatalf("regressions = %+v, want exactly small/traced", regs)
	}
	if regs[0].DeltaPct < 19 || regs[0].DeltaPct > 21 {
		t.Errorf("delta = %.1f%%, want ~20%%", regs[0].DeltaPct)
	}
}

// TestDiffAbsoluteFloor: a big relative jump on a microscopic stage is
// noise, not a regression.
func TestDiffAbsoluteFloor(t *testing.T) {
	old := sampleArtifact()
	jittery := sampleArtifact()
	jittery.Designs[0].Stages[1].TotalNS = 24_000 // tiny stage 3x slower: +16µs

	rep := Diff(old, jittery, DiffOptions{Tolerance: 0.10, MinDeltaNS: 50_000})
	if rep.HasRegressions() {
		t.Fatalf("sub-floor jitter flagged as regression: %+v", rep.Regressions())
	}
}

// TestDiffToleranceBoundary: a slowdown inside the tolerance passes.
func TestDiffToleranceBoundary(t *testing.T) {
	old := sampleArtifact()
	slightly := sampleArtifact()
	slightly.Designs[1].NsPerOp = old.Designs[1].NsPerOp * 105 / 100 // +5%

	rep := Diff(old, slightly, DiffOptions{Tolerance: 0.10})
	if rep.HasRegressions() {
		t.Fatalf("+5%% flagged at 10%% tolerance: %+v", rep.Regressions())
	}
}

// TestDiffSchemaGrowth: designs or stages in only one artifact are
// reported but never regressions.
func TestDiffSchemaGrowth(t *testing.T) {
	old := sampleArtifact()
	grown := sampleArtifact()
	grown.Designs = append(grown.Designs, DesignEntry{Design: "huge", NsPerOp: 99_000_000})
	grown.Designs[0].Stages = append(grown.Designs[0].Stages,
		StageEntry{Stage: "new_stage", Count: 1, TotalNS: 1_000_000})

	rep := Diff(old, grown, DiffOptions{})
	if rep.HasRegressions() {
		t.Fatalf("schema growth flagged as regression: %+v", rep.Regressions())
	}
	var sawMissing bool
	for _, row := range rep.Rows {
		if row.Missing {
			sawMissing = true
		}
	}
	if !sawMissing {
		t.Error("no row marked missing for the added design/stage")
	}
}

// TestMarkdownReport renders both verdicts and names the regressed
// metric.
func TestMarkdownReport(t *testing.T) {
	old := sampleArtifact()
	slower := sampleArtifact()
	slower.Incremental.WarmNsPerOp = old.Incremental.WarmNsPerOp * 2

	rep := Diff(old, slower, DiffOptions{})
	var buf bytes.Buffer
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	for _, want := range []string{"regression(s) detected", "incremental/warm", "| metric |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}

	clean := Diff(old, old, DiffOptions{})
	buf.Reset()
	if err := clean.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No regressions.") {
		t.Errorf("clean report lacks verdict:\n%s", buf.String())
	}
}

// TestReadArtifactRoundTrip writes and re-reads an artifact.
func TestReadArtifactRoundTrip(t *testing.T) {
	art := sampleArtifact()
	path := filepath.Join(t.TempDir(), "bench.json")
	data, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Designs[0].Design != "small" || got.Designs[0].Parallel[1].GOMAXPROCS != 4 {
		t.Errorf("round trip lost fields: %+v", got.Designs[0])
	}
}

// TestReadArtifactCurrentSchema: the committed BENCH_modemerge.json (one
// directory up from the repo root perspective) must parse — the diff
// sentinel runs against it in CI.
func TestReadArtifactCurrentSchema(t *testing.T) {
	art, err := ReadArtifact("../../BENCH_modemerge.json")
	if err != nil {
		t.Fatalf("committed artifact does not parse: %v", err)
	}
	if len(art.Designs) == 0 {
		t.Error("committed artifact has no designs")
	}
}
